//===- tests/PeriodicityTest.cpp - Hyperperiod repetition property ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The paper analyzes exactly one hyperperiod because the schedule repeats
// with period L (the windows and all releases are L-periodic and the
// system is deterministic). This suite validates that assumption against
// the model itself: simulating 2L must produce a second hyperperiod that
// is an exact time-shifted copy of the first.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace swa;

namespace {

/// The schedulability-relevant content of [From, To), shifted to start at
/// zero: per-task execution intervals (zero-length dispatch artifacts at
/// window boundaries dropped, as in the criterion), FIN times and READY
/// times. Tagged tuples sort deterministically.
std::vector<std::tuple<int, int, int64_t, int64_t>>
window(const core::SystemTrace &Trace, int64_t From, int64_t To) {
  std::vector<std::tuple<int, int, int64_t, int64_t>> Out;
  std::map<int, int64_t> Open; // Task -> open interval start.
  for (const core::SysEvent &E : Trace) {
    if (E.Time < From || E.Time >= To)
      continue;
    int64_t T = E.Time - From;
    switch (E.Type) {
    case core::SysEventType::EX:
      Open[E.TaskGid] = T;
      break;
    case core::SysEventType::PR:
    case core::SysEventType::FIN: {
      auto It = Open.find(E.TaskGid);
      bool ClosedSomething = It != Open.end();
      if (ClosedSomething) {
        if (T > It->second)
          Out.push_back({0, E.TaskGid, It->second, T});
        Open.erase(It);
      }
      if (E.Type == core::SysEventType::FIN) {
        // A FIN at the exact window start that closes no interval is the
        // previous hyperperiod's deadline event (deadline == period):
        // attribute it there, not here.
        if (T == 0 && !ClosedSomething)
          break;
        Out.push_back({1, E.TaskGid, T, 0});
      }
      break;
    }
    case core::SysEventType::READY:
      Out.push_back({2, E.TaskGid, T, 0});
      break;
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

void expectPeriodic(const cfg::Config &C) {
  cfg::TimeValue L = C.hyperperiod();
  auto Model = core::buildModel(C);
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  nsa::SimOptions Opts;
  Opts.Horizon = 2 * L;
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult R = Sim.run(Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  core::SystemTrace Trace = core::mapTrace(*Model, R.Events);

  auto First = window(Trace, 0, L);
  auto Second = window(Trace, L, 2 * L);
  ASSERT_FALSE(First.empty());
  EXPECT_EQ(First, Second)
      << "the second hyperperiod differs from the first";
}

} // namespace

TEST(Periodicity, SimpleRateMonotonicSet) {
  expectPeriodic(testcfg::twoTasksOneCore());
}

TEST(Periodicity, PreemptiveWorkload) {
  expectPeriodic(testcfg::preemptionShowcase());
}

TEST(Periodicity, PartitionWindows) {
  expectPeriodic(testcfg::twoPartitionsWindows());
}

TEST(Periodicity, CrossModuleMessages) {
  expectPeriodic(testcfg::producerConsumer());
}

TEST(Periodicity, GeneratedConfigurations) {
  for (uint64_t Seed : {3u, 8u}) {
    gen::IndustrialParams P;
    P.Modules = 2;
    P.CoresPerModule = 1;
    P.PartitionsPerCore = 2;
    P.Periods = {50, 100};
    P.Seed = Seed;
    cfg::Config C = gen::industrialConfig(P);
    ASSERT_FALSE(C.validate().isFailure());
    expectPeriodic(C);
  }
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
