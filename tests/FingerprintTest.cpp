//===- tests/FingerprintTest.cpp - Fingerprint & decomposition tests -------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the search-acceleration substrate of the config search:
/// the canonical structural fingerprint (cache key), the message-graph
/// decomposition, and the component-verdict merge.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Sensitivity.h"
#include "config/Decompose.h"
#include "config/Fingerprint.h"
#include "gen/Workload.h"
#include "schedtool/ConfigSearch.h"
#include "support/UnionFind.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;

namespace {

/// Two modules, each with two same-type cores; four single-task FPPS
/// partitions, initially unbound and windowless. The playground for
/// binding-symmetry tests.
cfg::Config symmetricBase() {
  cfg::Config C;
  C.Name = "sym";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"m0c0", 0, 0});
  C.Cores.push_back({"m0c1", 0, 0});
  C.Cores.push_back({"m1c0", 1, 0});
  C.Cores.push_back({"m1c1", 1, 0});
  for (int I = 0; I < 4; ++I) {
    cfg::Partition P;
    P.Name = "p" + std::to_string(I);
    P.Scheduler = cfg::SchedulerKind::FPPS;
    P.Tasks.push_back(
        {"t" + std::to_string(I), 1 + I, {2 + I}, 20, 20});
    P.Windows.push_back({static_cast<cfg::TimeValue>(I * 5),
                         static_cast<cfg::TimeValue>(I * 5 + 5)});
    C.Partitions.push_back(std::move(P));
  }
  return C;
}

} // namespace

TEST(Fingerprint, SymmetricBindingsFoldToOneKey) {
  cfg::Config A = symmetricBase();
  A.Partitions[0].Core = 0;
  A.Partitions[1].Core = 1;
  A.Partitions[2].Core = 2;
  A.Partitions[3].Core = 3;

  // Swap the two module-0 cores and, independently, the two module-1
  // cores: a pure relabeling within each (Module, CoreType) class.
  cfg::Config B = symmetricBase();
  B.Partitions[0].Core = 1;
  B.Partitions[1].Core = 0;
  B.Partitions[2].Core = 3;
  B.Partitions[3].Core = 2;

  EXPECT_EQ(cfg::fingerprintConfig(A), cfg::fingerprintConfig(B));
  // The raw (non-canonical) fingerprints must differ — that difference is
  // how the search counts symmetry folds.
  EXPECT_NE(cfg::fingerprintConfig(A, /*CanonicalizeCores=*/false),
            cfg::fingerprintConfig(B, /*CanonicalizeCores=*/false));
}

TEST(Fingerprint, CrossClassRebindChangesTheKey) {
  cfg::Config A = symmetricBase();
  for (int I = 0; I < 4; ++I)
    A.Partitions[static_cast<size_t>(I)].Core = I;
  cfg::Config B = A;
  // Core 2 lives in module 1: moving p0 there changes message locality
  // and is NOT a symmetry.
  B.Partitions[0].Core = 2;
  EXPECT_NE(cfg::fingerprintConfig(A), cfg::fingerprintConfig(B));
}

TEST(Fingerprint, CoLocationIsPartOfTheKey) {
  cfg::Config A = symmetricBase();
  A.Partitions[0].Core = 0;
  A.Partitions[1].Core = 0; // shares the core with p0
  A.Partitions[2].Core = 2;
  A.Partitions[3].Core = 3;
  cfg::Config B = A;
  B.Partitions[1].Core = 1; // now alone on the sibling core
  EXPECT_NE(cfg::fingerprintConfig(A), cfg::fingerprintConfig(B));
}

TEST(Fingerprint, EverySemanticParameterChangesTheKey) {
  cfg::Config Base = symmetricBase();
  for (int I = 0; I < 4; ++I)
    Base.Partitions[static_cast<size_t>(I)].Core = I;
  cfg::Fingerprint F0 = cfg::fingerprintConfig(Base);

  {
    cfg::Config C = Base;
    C.Partitions[2].Tasks[0].Wcet[0] += 1;
    EXPECT_NE(cfg::fingerprintConfig(C), F0) << "wcet";
  }
  {
    cfg::Config C = Base;
    C.Partitions[1].Tasks[0].Priority += 1;
    EXPECT_NE(cfg::fingerprintConfig(C), F0) << "priority";
  }
  {
    cfg::Config C = Base;
    C.Partitions[3].Tasks[0].Deadline -= 1;
    EXPECT_NE(cfg::fingerprintConfig(C), F0) << "deadline";
  }
  {
    cfg::Config C = Base;
    C.Partitions[0].Windows[0].End += 1;
    EXPECT_NE(cfg::fingerprintConfig(C), F0) << "window";
  }
  {
    cfg::Config C = Base;
    C.Partitions[1].Scheduler = cfg::SchedulerKind::EDF;
    EXPECT_NE(cfg::fingerprintConfig(C), F0) << "scheduler";
  }
  {
    cfg::Config C = Base;
    C.Messages.push_back({{0, 0}, {1, 0}, 2, 7});
    EXPECT_NE(cfg::fingerprintConfig(C), F0) << "message";
  }
}

TEST(Fingerprint, NamesAndUnusedCoresAreIrrelevant) {
  cfg::Config A = symmetricBase();
  for (int I = 0; I < 4; ++I)
    A.Partitions[static_cast<size_t>(I)].Core = I;
  cfg::Config B = A;
  B.Name = "renamed";
  B.Partitions[0].Name = "other";
  B.Partitions[0].Tasks[0].Name = "other-task";
  B.Cores.push_back({"spare", 0, 0}); // never bound
  EXPECT_EQ(cfg::fingerprintConfig(A), cfg::fingerprintConfig(B));
}

TEST(UnionFind, GroupsAndSeparates) {
  support::UnionFind UF(5);
  EXPECT_TRUE(UF.unite(0, 1));
  EXPECT_TRUE(UF.unite(3, 4));
  EXPECT_FALSE(UF.unite(1, 0));
  EXPECT_TRUE(UF.same(0, 1));
  EXPECT_FALSE(UF.same(1, 3));
  EXPECT_TRUE(UF.unite(1, 3));
  EXPECT_TRUE(UF.same(0, 4));
  EXPECT_FALSE(UF.same(2, 0));
}

namespace {

/// A decoupled two-component system: two single-core modules, each with
/// one FPPS partition; periods 4 on component 0 and 8 on component 1, so
/// the global hyperperiod (8) is twice component 0's.
cfg::Config twoComponents() {
  cfg::Config C;
  C.Name = "two-comp";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"m0c0", 0, 0});
  C.Cores.push_back({"m1c0", 1, 0});
  cfg::Partition A;
  A.Name = "pA";
  A.Scheduler = cfg::SchedulerKind::FPPS;
  A.Core = 0;
  A.Tasks.push_back({"a", 1, {1}, 4, 4});
  A.Windows.push_back({0, 2});
  A.Windows.push_back({4, 6}); // 4-periodic pattern over L = 8
  cfg::Partition B;
  B.Name = "pB";
  B.Scheduler = cfg::SchedulerKind::FPPS;
  B.Core = 1;
  B.Tasks.push_back({"b", 1, {3}, 8, 8});
  B.Windows.push_back({0, 8});
  C.Partitions.push_back(std::move(A));
  C.Partitions.push_back(std::move(B));
  return C;
}

} // namespace

TEST(Decompose, SplitsDecoupledCoresAndTruncatesWindows) {
  cfg::Config C = twoComponents();
  ASSERT_FALSE(C.validate().isFailure());
  cfg::Decomposition D = cfg::decomposeConfig(C);
  ASSERT_TRUE(D.Decomposed);
  ASSERT_EQ(D.Components.size(), 2u);
  EXPECT_EQ(D.Horizon, 8);

  // Component 0: hyperperiod 4, the window pattern truncated to [0, 2).
  const cfg::Component &C0 = D.Components[0];
  EXPECT_EQ(C0.Sub.hyperperiod(), 4);
  ASSERT_EQ(C0.Sub.Partitions.size(), 1u);
  ASSERT_EQ(C0.Sub.Partitions[0].Windows.size(), 1u);
  EXPECT_EQ(C0.Sub.Partitions[0].Windows[0].Start, 0);
  EXPECT_EQ(C0.Sub.Partitions[0].Windows[0].End, 2);
  EXPECT_EQ(C0.GidMap, (std::vector<int32_t>{0}));
  EXPECT_FALSE(C0.Sub.validate().isFailure());

  const cfg::Component &C1 = D.Components[1];
  EXPECT_EQ(C1.Sub.hyperperiod(), 8);
  EXPECT_EQ(C1.GidMap, (std::vector<int32_t>{1}));
  EXPECT_FALSE(C1.Sub.validate().isFailure());
}

TEST(Decompose, DeclinesNonPeriodicWindows) {
  cfg::Config C = twoComponents();
  // Break component 0's periodicity: a window straddling the 4-tick
  // block boundary. Still a valid config (hyperperiod 8).
  C.Partitions[0].Windows = {{3, 5}};
  ASSERT_FALSE(C.validate().isFailure());
  EXPECT_FALSE(cfg::decomposeConfig(C).Decomposed);
  // An asymmetric pattern (different windows in the two blocks) also
  // declines.
  C.Partitions[0].Windows = {{0, 2}, {5, 7}};
  ASSERT_FALSE(C.validate().isFailure());
  EXPECT_FALSE(cfg::decomposeConfig(C).Decomposed);
}

TEST(Decompose, MessagesCoupleCores) {
  cfg::Config C = twoComponents();
  // Same-period messaging is not required for coupling; use a message
  // between the two tasks to weld the components together.
  C.Messages.push_back({{0, 0}, {1, 0}, 1, 2});
  EXPECT_FALSE(cfg::decomposeConfig(C).Decomposed);
}

TEST(Decompose, GeneratedDecoupledWorkloadSplitsPerCoreGroup) {
  gen::IndustrialParams P;
  P.Modules = 2;
  P.CoresPerModule = 2;
  P.PartitionsPerCore = 2;
  P.CoreUtilization = 0.5;
  P.MessageProbability = 0.0;
  P.Seed = 77;
  cfg::Config C = gen::industrialConfig(P);
  for (cfg::Partition &Part : C.Partitions) {
    Part.Core = -1;
    Part.Windows.clear();
  }
  ASSERT_TRUE(schedtool::bindFirstFitDecreasing(C));
  schedtool::synthesizeWindows(
      C, std::vector<double>(C.Partitions.size(), 1.5));
  ASSERT_FALSE(C.validate().isFailure());

  cfg::Decomposition D = cfg::decomposeConfig(C);
  ASSERT_TRUE(D.Decomposed);
  EXPECT_GE(D.Components.size(), 2u);
  // The gid maps must partition [0, numTasks) exactly.
  std::vector<char> Seen(static_cast<size_t>(C.numTasks()), 0);
  for (const cfg::Component &Comp : D.Components) {
    EXPECT_FALSE(Comp.Sub.validate().isFailure());
    for (int32_t G : Comp.GidMap) {
      ASSERT_GE(G, 0);
      ASSERT_LT(G, C.numTasks());
      EXPECT_EQ(Seen[static_cast<size_t>(G)], 0);
      Seen[static_cast<size_t>(G)] = 1;
    }
  }
  for (char S : Seen)
    EXPECT_EQ(S, 1);
}

TEST(Decompose, MergedVerdictMatchesMonolithic) {
  // Make the decoupled system unschedulable in one component and verify
  // the merged verdict reproduces the monolithic analysis bit for bit.
  cfg::Config C = twoComponents();
  // pB needs 6 ticks but its window grants only 4 per hyperperiod.
  C.Partitions[1].Tasks[0].Wcet[0] = 6;
  C.Partitions[1].Windows = {{0, 4}};
  ASSERT_FALSE(C.validate().isFailure());

  Result<analysis::VerdictOutcome> Mono = analysis::analyzeVerdictOnly(C);
  ASSERT_TRUE(Mono.ok()) << Mono.error().message();
  ASSERT_TRUE(Mono->decided());

  cfg::Decomposition D = cfg::decomposeConfig(C);
  ASSERT_TRUE(D.Decomposed);
  std::vector<analysis::ComponentVerdict> Parts;
  for (cfg::Component &Comp : D.Components) {
    nsa::SimOptions Opt;
    Opt.Horizon = D.Horizon;
    Result<analysis::VerdictOutcome> R =
        analysis::analyzeVerdictOnly(Comp.Sub, Opt);
    ASSERT_TRUE(R.ok()) << R.error().message();
    ASSERT_TRUE(R->decided());
    Parts.push_back({std::move(*R), Comp.GidMap});
  }
  analysis::VerdictOutcome Merged =
      analysis::mergeComponentVerdicts(Parts, C.numTasks());
  EXPECT_EQ(Merged.Schedulable, Mono->Schedulable);
  EXPECT_EQ(Merged.FailedTasks, Mono->FailedTasks);
  EXPECT_EQ(Merged.TaskFailed, Mono->TaskFailed);
  EXPECT_EQ(Merged.FirstMissTime, Mono->FirstMissTime);
  EXPECT_EQ(Merged.FirstMissTasks, Mono->FirstMissTasks);
}

TEST(EarlyExit, TruncatedRunAgreesWithFullRun) {
  // overloadedOneCore misses at t=20; the extra long-period task
  // stretches the hyperperiod to 40 so the early exit has room to save.
  cfg::Config C = testcfg::overloadedOneCore();
  C.Partitions[0].Tasks.push_back({"slow", 3, {1}, 40, 40});
  ASSERT_FALSE(C.validate().isFailure());
  Result<analysis::VerdictOutcome> Full = analysis::analyzeVerdictOnly(C);
  ASSERT_TRUE(Full.ok());
  ASSERT_TRUE(Full->decided());
  ASSERT_FALSE(Full->Schedulable);
  ASSERT_GE(Full->FirstMissTime, 0);

  nsa::SimOptions Opt;
  Opt.StopOnFirstMiss = true;
  Result<analysis::VerdictOutcome> Early =
      analysis::analyzeVerdictOnly(C, Opt);
  ASSERT_TRUE(Early.ok());
  ASSERT_TRUE(Early->decided());
  EXPECT_EQ(Early->Stop, nsa::StopReason::DeadlineMiss);
  EXPECT_FALSE(Early->Schedulable);
  EXPECT_EQ(Early->FirstMissTime, Full->FirstMissTime);
  EXPECT_EQ(Early->FirstMissTasks, Full->FirstMissTasks);
  // The truncated run does strictly less work.
  EXPECT_LT(Early->ActionCount, Full->ActionCount);
  // And observes only failures the full run also observes.
  for (size_t G = 0; G < Early->TaskFailed.size(); ++G) {
    if (Early->TaskFailed[G]) {
      EXPECT_TRUE(Full->TaskFailed[G]) << "gid " << G;
    }
  }
}

TEST(EarlyExit, SchedulableRunsAreUntouched) {
  cfg::Config C = testcfg::twoTasksOneCore();
  nsa::SimOptions Opt;
  Opt.StopOnFirstMiss = true;
  Result<analysis::VerdictOutcome> Early =
      analysis::analyzeVerdictOnly(C, Opt);
  Result<analysis::VerdictOutcome> Full = analysis::analyzeVerdictOnly(C);
  ASSERT_TRUE(Early.ok());
  ASSERT_TRUE(Full.ok());
  EXPECT_TRUE(Early->Schedulable);
  EXPECT_EQ(Early->Stop, nsa::StopReason::Completed);
  EXPECT_EQ(Early->ActionCount, Full->ActionCount);
  EXPECT_EQ(Early->FirstMissTime, -1);
  EXPECT_TRUE(Early->FirstMissTasks.empty());
}

TEST(ComponentFingerprint, OwnHyperperiodEqualsStandaloneKey) {
  // A component simulated to its own hyperperiod is indistinguishable
  // from the same config analyzed standalone, so the keys must coincide
  // — the component cache then serves standalone-analysis revisits too.
  cfg::Decomposition D = cfg::decomposeConfig(twoComponents());
  ASSERT_TRUE(D.Decomposed);
  const cfg::Config &C1 = D.Components[1].Sub; // hyperperiod 8 == L
  EXPECT_EQ(C1.hyperperiod(), D.Horizon);
  EXPECT_EQ(cfg::fingerprintComponent(C1, D.Horizon),
            cfg::fingerprintConfig(C1));
}

TEST(ComponentFingerprint, ForeignHorizonDivergesFromStandaloneKey) {
  // Component 0's hyperperiod (4) divides the global horizon (8): a run
  // to 8 observes different backlog than a run to 4, so the key must
  // separate the two — and separate every other horizon as well.
  cfg::Decomposition D = cfg::decomposeConfig(twoComponents());
  ASSERT_TRUE(D.Decomposed);
  const cfg::Config &C0 = D.Components[0].Sub; // hyperperiod 4 < L = 8
  ASSERT_EQ(C0.hyperperiod(), 4);
  cfg::Fingerprint At8 = cfg::fingerprintComponent(C0, 8);
  EXPECT_NE(At8, cfg::fingerprintConfig(C0));
  EXPECT_NE(At8, cfg::fingerprintComponent(C0, 4));
  EXPECT_NE(At8, cfg::fingerprintComponent(C0, 16));
  // At its own hyperperiod the standalone identity holds here too.
  EXPECT_EQ(cfg::fingerprintComponent(C0, 4), cfg::fingerprintConfig(C0));
}

TEST(ComponentFingerprint, CoreRelabelingFoldsLikeTheConfigKey) {
  // The canonical component key folds core relabelings exactly like
  // fingerprintConfig; the raw variant keeps them apart (the symmetry-
  // fold statistic relies on the distinction).
  cfg::Config A = symmetricBase();
  A.Partitions[0].Core = 0;
  A.Partitions[1].Core = 0;
  A.Partitions[2].Core = 2;
  A.Partitions[3].Core = 2;
  cfg::Config B = A;
  B.Partitions[0].Core = 1; // same-class sibling core
  B.Partitions[1].Core = 1;
  int64_t L = A.hyperperiod() * 2;
  EXPECT_EQ(cfg::fingerprintComponent(A, L), cfg::fingerprintComponent(B, L));
  EXPECT_NE(cfg::fingerprintComponent(A, L, /*CanonicalizeCores=*/false),
            cfg::fingerprintComponent(B, L, /*CanonicalizeCores=*/false));
}

TEST(ShapeFingerprint, WindowPlacementIsNotPartOfTheShape) {
  // The arena key must survive exactly the mutations rebindWindows can
  // patch: moving or resizing windows keeps the shape; changing the
  // window *count* (different table sizes) or the binding changes it.
  cfg::Config A = symmetricBase();
  for (int P = 0; P < 4; ++P)
    A.Partitions[static_cast<size_t>(P)].Core = P;
  cfg::Config B = A;
  B.Partitions[0].Windows = {{1, 3}}; // moved, same count
  EXPECT_EQ(cfg::fingerprintShape(A), cfg::fingerprintShape(B));
  cfg::Config C = A;
  C.Partitions[0].Windows.push_back({10, 12}); // extra window
  EXPECT_NE(cfg::fingerprintShape(A), cfg::fingerprintShape(C));
  cfg::Config E = A;
  E.Partitions[0].Core = 1; // rebind: different automaton network
  EXPECT_NE(cfg::fingerprintShape(A), cfg::fingerprintShape(E));
}

TEST(Fingerprint, SensitivityPerturbationsMoveExactlyTheRightKeys) {
  // The sensitivity probes key their VerdictCache lookups on
  // fingerprintConfig and their arena slots on fingerprintShape; the
  // perturbation builders must therefore move (or preserve) exactly the
  // keys each layer expects — a WCET or offset probe that aliased the
  // base config's cache entry would return the base verdict for a
  // perturbed workload.
  cfg::Config Base = symmetricBase();
  for (int I = 0; I < 4; ++I)
    Base.Partitions[static_cast<size_t>(I)].Core = I;
  int64_t L = Base.hyperperiod() * 2;

  // WCET inflation: a new whole-config key, a new component key (the
  // component cache would otherwise replay the uninflated verdict), and
  // a new arena shape (WCETs live in the automaton guards, not the
  // window tables rebindWindows can patch).
  cfg::Config Inflated = analysis::withWcetDelta(Base, /*TaskGid=*/0, 1);
  EXPECT_NE(cfg::fingerprintConfig(Inflated), cfg::fingerprintConfig(Base));
  EXPECT_NE(cfg::fingerprintComponent(Inflated, L),
            cfg::fingerprintComponent(Base, L));
  EXPECT_NE(cfg::fingerprintShape(Inflated), cfg::fingerprintShape(Base));

  // Window-offset shift: new config and component keys (the verdict
  // genuinely depends on placement) but the *same* shape — the offset
  // query's probes are exactly the mutation the arena exists to serve.
  cfg::Config Shifted = analysis::withWindowShift(Base, /*PartIndex=*/0, 1);
  EXPECT_NE(cfg::fingerprintConfig(Shifted), cfg::fingerprintConfig(Base));
  EXPECT_NE(cfg::fingerprintComponent(Shifted, L),
            cfg::fingerprintComponent(Base, L));
  EXPECT_EQ(cfg::fingerprintShape(Shifted), cfg::fingerprintShape(Base));

  // A zero-magnitude shift is the identity on every key.
  cfg::Config Same = analysis::withWindowShift(Base, /*PartIndex=*/0, 0);
  EXPECT_EQ(cfg::fingerprintConfig(Same), cfg::fingerprintConfig(Base));
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
