//===- tests/SchedtoolTest.cpp - Configuration search tests ----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"
#include "schedtool/ConfigSearch.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::schedtool;

namespace {

cfg::Config unboundProblem(double Utilization, uint64_t Seed) {
  gen::IndustrialParams P;
  P.Modules = 2;
  P.CoresPerModule = 2;
  P.PartitionsPerCore = 2;
  P.CoreUtilization = Utilization;
  P.Seed = Seed;
  cfg::Config C = gen::industrialConfig(P);
  for (cfg::Partition &Part : C.Partitions) {
    Part.Core = -1;
    Part.Windows.clear();
  }
  return C;
}

} // namespace

TEST(FirstFit, BindsAllPartitionsUnderCapacity) {
  cfg::Config C = unboundProblem(0.4, 1);
  ASSERT_TRUE(bindFirstFitDecreasing(C));
  for (const cfg::Partition &P : C.Partitions) {
    EXPECT_GE(P.Core, 0);
    EXPECT_LT(P.Core, static_cast<int>(C.Cores.size()));
  }
  // No core may end up over unit utilization.
  for (size_t Core = 0; Core < C.Cores.size(); ++Core) {
    double U = 0;
    for (size_t P = 0; P < C.Partitions.size(); ++P)
      if (C.Partitions[P].Core == static_cast<int>(Core))
        U += C.partitionUtilization(static_cast<int>(P));
    EXPECT_LE(U, 1.0) << "core " << Core;
  }
}

TEST(FirstFit, FailsWhenDemandExceedsCapacity) {
  cfg::Config C = testcfg::twoTasksOneCore();
  // One core, three copies of a 60%-utilization partition.
  C.Partitions[0].Tasks = {{"t", 1, {6}, 10, 10}};
  C.Partitions.push_back(C.Partitions[0]);
  C.Partitions.push_back(C.Partitions[0]);
  for (cfg::Partition &P : C.Partitions)
    P.Core = -1;
  EXPECT_FALSE(bindFirstFitDecreasing(C));
}

TEST(Windows, SynthesisProducesValidLayouts) {
  cfg::Config C = unboundProblem(0.5, 2);
  ASSERT_TRUE(bindFirstFitDecreasing(C));
  synthesizeWindows(C, std::vector<double>(C.Partitions.size(), 1.5));
  Error E = C.validate();
  EXPECT_FALSE(E.isFailure()) << E.message();
  for (const cfg::Partition &P : C.Partitions)
    EXPECT_FALSE(P.Windows.empty()) << P.Name;
}

TEST(Search, FindsScheduleAtModerateUtilization) {
  SearchProblem Problem;
  Problem.Base = unboundProblem(0.35, 3);
  Problem.Seed = 3;
  Problem.MaxIterations = 30;
  auto Res = searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  EXPECT_TRUE(Res->Found);
  EXPECT_GE(Res->ConfigurationsEvaluated, 1);
  // The returned configuration must itself re-verify as schedulable.
  auto Recheck = analysis::analyzeConfiguration(Res->Best);
  ASSERT_TRUE(Recheck.ok()) << Recheck.error().message();
  EXPECT_TRUE(Recheck->Analysis.Schedulable);
}

TEST(Search, DiscardsUnschedulableCandidates) {
  // At very high utilization the search evaluates and rejects candidates;
  // whether it succeeds is workload-dependent, but every iteration must be
  // logged and counted.
  SearchProblem Problem;
  Problem.Base = unboundProblem(0.8, 4);
  Problem.Seed = 4;
  Problem.MaxIterations = 6;
  auto Res = searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  EXPECT_GE(Res->ConfigurationsEvaluated, 1);
  EXPECT_EQ(Res->Log.empty(), false);
  if (!Res->Found) {
    EXPECT_GT(Res->BestBadness, 0);
  }
}

TEST(Search, IsDeterministicPerSeed) {
  SearchProblem Problem;
  Problem.Base = unboundProblem(0.5, 5);
  Problem.Seed = 9;
  Problem.MaxIterations = 10;
  auto A = searchConfiguration(Problem);
  auto B = searchConfiguration(Problem);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(A->Found, B->Found);
  EXPECT_EQ(A->ConfigurationsEvaluated, B->ConfigurationsEvaluated);
  EXPECT_EQ(A->Log, B->Log);
}

namespace {

void expectSameResult(const SearchResult &A, const SearchResult &B) {
  EXPECT_EQ(A.Found, B.Found);
  EXPECT_EQ(A.ConfigurationsEvaluated, B.ConfigurationsEvaluated);
  EXPECT_EQ(A.SchedulableSeen, B.SchedulableSeen);
  EXPECT_EQ(A.BestBadness, B.BestBadness);
  EXPECT_EQ(A.BestTrajectory, B.BestTrajectory);
  EXPECT_EQ(A.Log, B.Log);
  // The chosen configuration must be identical, not merely equivalent.
  ASSERT_EQ(A.Best.Partitions.size(), B.Best.Partitions.size());
  for (size_t P = 0; P < A.Best.Partitions.size(); ++P) {
    EXPECT_EQ(A.Best.Partitions[P].Core, B.Best.Partitions[P].Core);
    ASSERT_EQ(A.Best.Partitions[P].Windows.size(),
              B.Best.Partitions[P].Windows.size());
    for (size_t W = 0; W < A.Best.Partitions[P].Windows.size(); ++W) {
      EXPECT_EQ(A.Best.Partitions[P].Windows[W].Start,
                B.Best.Partitions[P].Windows[W].Start);
      EXPECT_EQ(A.Best.Partitions[P].Windows[W].End,
                B.Best.Partitions[P].Windows[W].End);
    }
  }
}

} // namespace

TEST(Search, ResultIndependentOfWorkerCount) {
  // The candidate sequence is fixed by (Seed, BatchSize) and batches are
  // reduced in candidate order, so every Workers value must produce the
  // byte-identical SearchResult — including at a utilization where the
  // search has to iterate.
  for (double Util : {0.45, 0.8}) {
    SearchProblem Problem;
    Problem.Base = unboundProblem(Util, 6);
    Problem.Seed = 13;
    Problem.MaxIterations = 12;

    Problem.Workers = 1;
    auto Serial = searchConfiguration(Problem);
    ASSERT_TRUE(Serial.ok()) << Serial.error().message();

    for (int Workers : {2, 4}) {
      Problem.Workers = Workers;
      auto Parallel = searchConfiguration(Problem);
      ASSERT_TRUE(Parallel.ok()) << Parallel.error().message();
      expectSameResult(*Serial, *Parallel);
    }
  }
}

TEST(Search, BudgetFiresAndSearchStillTerminates) {
  // A zero budget expires at every candidate's first guard check: every
  // evaluation is skipped, none aborts the batch, and the search ends
  // cleanly reporting what it skipped.
  SearchProblem Problem;
  Problem.Base = unboundProblem(0.5, 5);
  Problem.Seed = 9;
  Problem.MaxIterations = 8;
  Problem.CandidateBudgetMs = 0;
  for (int Workers : {1, 2}) {
    Problem.Workers = Workers;
    auto Res = searchConfiguration(Problem);
    ASSERT_TRUE(Res.ok()) << Res.error().message();
    EXPECT_FALSE(Res->Found);
    EXPECT_EQ(Res->ConfigurationsEvaluated, 0);
    EXPECT_GT(Res->CandidatesSkipped, 0);
    bool Logged = false;
    for (const std::string &Line : Res->Log)
      if (Line.find("skipped") != std::string::npos &&
          Line.find("budget-exceeded") != std::string::npos)
        Logged = true;
    EXPECT_TRUE(Logged) << "no skip reason in the search log";
  }
}

TEST(Search, UnfiredBudgetPreservesDeterminism) {
  // When the budget never fires the SearchResult must be byte-identical
  // to a no-budget run, for every worker count.
  SearchProblem Problem;
  Problem.Base = unboundProblem(0.45, 6);
  Problem.Seed = 13;
  Problem.MaxIterations = 12;

  Problem.Workers = 1;
  Problem.CandidateBudgetMs = -1;
  auto Baseline = searchConfiguration(Problem);
  ASSERT_TRUE(Baseline.ok()) << Baseline.error().message();

  Problem.CandidateBudgetMs = 600000; // Ten minutes: never fires here.
  for (int Workers : {1, 2, 4}) {
    Problem.Workers = Workers;
    auto Budgeted = searchConfiguration(Problem);
    ASSERT_TRUE(Budgeted.ok()) << Budgeted.error().message();
    EXPECT_EQ(Budgeted->CandidatesSkipped, 0);
    EXPECT_FALSE(Budgeted->Cancelled);
    expectSameResult(*Baseline, *Budgeted);
  }
}

TEST(Search, PreCancelledSearchStopsImmediately) {
  SearchProblem Problem;
  Problem.Base = unboundProblem(0.5, 7);
  Problem.Seed = 11;
  Problem.MaxIterations = 20;
  CancelToken Tok;
  Tok.cancel();
  Problem.Cancel = &Tok;
  auto Res = searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  EXPECT_TRUE(Res->Cancelled);
  EXPECT_FALSE(Res->Found);
  EXPECT_EQ(Res->ConfigurationsEvaluated, 0);
}

TEST(Search, VerdictOnlyAgreesWithFullAnalysis) {
  // The fast verdict path used inside the search must agree with the full
  // trace-based criterion for both schedulable and unschedulable layouts.
  for (double Util : {0.35, 0.85}) {
    cfg::Config C = unboundProblem(Util, 8);
    ASSERT_TRUE(bindFirstFitDecreasing(C));
    synthesizeWindows(C, std::vector<double>(C.Partitions.size(), 1.5));
    ASSERT_FALSE(C.validate().isFailure());

    auto Full = analysis::analyzeConfiguration(C);
    ASSERT_TRUE(Full.ok()) << Full.error().message();
    auto Fast = analysis::analyzeVerdictOnly(C);
    ASSERT_TRUE(Fast.ok()) << Fast.error().message();
    EXPECT_EQ(Fast->Schedulable, Full->Analysis.Schedulable);
    EXPECT_EQ(Fast->Schedulable, Fast->FailedTasks == 0);
  }
}

namespace {

/// Like unboundProblem but with no messages: every core group is an
/// independent component, so the decomposition layer engages.
cfg::Config decoupledProblem(double Utilization, uint64_t Seed) {
  gen::IndustrialParams P;
  P.Modules = 2;
  P.CoresPerModule = 2;
  P.PartitionsPerCore = 2;
  P.CoreUtilization = Utilization;
  P.MessageProbability = 0.0;
  P.Seed = Seed;
  cfg::Config C = gen::industrialConfig(P);
  for (cfg::Partition &Part : C.Partitions) {
    Part.Core = -1;
    Part.Windows.clear();
  }
  return C;
}

/// The per-iteration lines of the search log. The acceleration layers add
/// per-round statistics lines, so cross-flag comparisons look at these
/// (and the scalar fields); full byte-identity of the Log is only asserted
/// when the flags are held fixed.
std::vector<std::string> iterLines(const SearchResult &R) {
  std::vector<std::string> Out;
  for (const std::string &L : R.Log)
    if (L.rfind("iter ", 0) == 0)
      Out.push_back(L);
  return Out;
}

/// Everything an accelerated run must reproduce exactly: the verdict
/// stream, the counters derived from it, the trajectory and the chosen
/// configuration.
void expectSameObservable(const SearchResult &A, const SearchResult &B) {
  EXPECT_EQ(A.Found, B.Found);
  EXPECT_EQ(A.ConfigurationsEvaluated, B.ConfigurationsEvaluated);
  EXPECT_EQ(A.SchedulableSeen, B.SchedulableSeen);
  EXPECT_EQ(A.BestBadness, B.BestBadness);
  EXPECT_EQ(A.BestTrajectory, B.BestTrajectory);
  EXPECT_EQ(iterLines(A), iterLines(B));
  ASSERT_EQ(A.Best.Partitions.size(), B.Best.Partitions.size());
  for (size_t P = 0; P < A.Best.Partitions.size(); ++P) {
    EXPECT_EQ(A.Best.Partitions[P].Core, B.Best.Partitions[P].Core);
    ASSERT_EQ(A.Best.Partitions[P].Windows.size(),
              B.Best.Partitions[P].Windows.size());
    for (size_t W = 0; W < A.Best.Partitions[P].Windows.size(); ++W) {
      EXPECT_EQ(A.Best.Partitions[P].Windows[W].Start,
                B.Best.Partitions[P].Windows[W].Start);
      EXPECT_EQ(A.Best.Partitions[P].Windows[W].End,
                B.Best.Partitions[P].Windows[W].End);
    }
  }
}

SearchProblem layeredProblem(cfg::Config Base, uint64_t Seed, int Iters,
                             bool Cache, bool Early, bool Decompose) {
  SearchProblem Problem;
  Problem.Base = std::move(Base);
  Problem.Seed = Seed;
  Problem.MaxIterations = Iters;
  Problem.UseVerdictCache = Cache;
  Problem.UseEarlyExit = Early;
  Problem.UseDecomposition = Decompose;
  return Problem;
}

} // namespace

TEST(Search, AccelerationLayersAreObservationallyTransparent) {
  // Every combination of the three layers must reproduce the plain
  // search's verdict stream, trajectory, counters and chosen
  // configuration — on a workload that decomposes and at a utilization
  // where candidates fail (so the early exit actually fires).
  for (double Util : {0.45, 0.8}) {
    auto Plain = searchConfiguration(layeredProblem(
        decoupledProblem(Util, 21), 17, 12, false, false, false));
    ASSERT_TRUE(Plain.ok()) << Plain.error().message();

    for (int Mask = 1; Mask < 8; ++Mask) {
      auto Fast = searchConfiguration(layeredProblem(
          decoupledProblem(Util, 21), 17, 12, (Mask & 1) != 0,
          (Mask & 2) != 0, (Mask & 4) != 0));
      ASSERT_TRUE(Fast.ok()) << Fast.error().message();
      expectSameObservable(*Plain, *Fast);
    }
  }
}

TEST(Search, AcceleratedResultIndependentOfWorkerCount) {
  // With every layer on (the default), the SearchResult — including the
  // cache and decomposition statistics, which are serial-path facts —
  // must stay byte-identical for every worker count.
  SearchProblem Problem;
  Problem.Base = decoupledProblem(0.8, 22);
  Problem.Seed = 19;
  Problem.MaxIterations = 12;

  Problem.Workers = 1;
  auto Serial = searchConfiguration(Problem);
  ASSERT_TRUE(Serial.ok()) << Serial.error().message();

  for (int Workers : {2, 4}) {
    Problem.Workers = Workers;
    auto Parallel = searchConfiguration(Problem);
    ASSERT_TRUE(Parallel.ok()) << Parallel.error().message();
    expectSameResult(*Serial, *Parallel);
    EXPECT_EQ(Serial->CacheHits, Parallel->CacheHits);
    EXPECT_EQ(Serial->CacheMisses, Parallel->CacheMisses);
    EXPECT_EQ(Serial->SymmetryFolds, Parallel->SymmetryFolds);
    EXPECT_EQ(Serial->DuplicateCandidates, Parallel->DuplicateCandidates);
    EXPECT_EQ(Serial->DecomposedCandidates, Parallel->DecomposedCandidates);
    EXPECT_EQ(Serial->ComponentsSimulated, Parallel->ComponentsSimulated);
    EXPECT_EQ(Serial->SimulationsRun, Parallel->SimulationsRun);
  }
}

TEST(Search, PlainResultIndependentOfWorkerCount) {
  // The same guarantee with every layer off: the acceleration rewrite
  // must not have cost the original worker-count determinism.
  SearchProblem Problem;
  Problem.Base = unboundProblem(0.8, 23);
  Problem.Seed = 19;
  Problem.MaxIterations = 12;
  Problem.UseVerdictCache = false;
  Problem.UseEarlyExit = false;
  Problem.UseDecomposition = false;

  Problem.Workers = 1;
  auto Serial = searchConfiguration(Problem);
  ASSERT_TRUE(Serial.ok()) << Serial.error().message();
  for (int Workers : {2, 4}) {
    Problem.Workers = Workers;
    auto Parallel = searchConfiguration(Problem);
    ASSERT_TRUE(Parallel.ok()) << Parallel.error().message();
    expectSameResult(*Serial, *Parallel);
  }
}

TEST(Search, CacheHitsHappenAndAreCounted) {
  // At high utilization the boost vector saturates after a few rounds and
  // candidate 0 (the unperturbed adaptive state) starts repeating — the
  // cache must catch those revisits, and the statistics must be coherent:
  // every decided candidate was a hit, a miss that simulated, or an
  // intra-batch duplicate of one.
  SearchProblem Problem;
  Problem.Base = unboundProblem(0.8, 99);
  Problem.Seed = 29;
  Problem.MaxIterations = 60;
  auto Res = searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  ASSERT_GT(Res->ConfigurationsEvaluated, 0);
  ASSERT_FALSE(Res->Found); // overloaded on purpose
  EXPECT_GT(Res->CacheHits, 0);
  EXPECT_GT(Res->CacheMisses, 0);
  EXPECT_EQ(Res->ConfigurationsEvaluated,
            Res->CacheHits + Res->CacheMisses + Res->DuplicateCandidates);
  bool StatsLogged = false;
  for (const std::string &Line : Res->Log)
    if (Line.rfind("round ", 0) == 0 &&
        Line.find("cache") != std::string::npos)
      StatsLogged = true;
  EXPECT_TRUE(StatsLogged) << "no cache statistics in the search log";
}

TEST(Search, DecompositionEngagesOnDecoupledWorkloads) {
  SearchProblem Problem;
  Problem.Base = decoupledProblem(0.8, 25);
  Problem.Seed = 31;
  Problem.MaxIterations = 12;
  auto Res = searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  EXPECT_GT(Res->DecomposedCandidates, 0);
  // A decomposed candidate has at least two components, each resolved
  // against the component cache. (ComponentsSimulated can fall below
  // two-per-candidate: hits and intra-round duplicates are not re-run.)
  EXPECT_GE(Res->ComponentCacheHits + Res->ComponentCacheMisses,
            2 * Res->DecomposedCandidates);
  EXPECT_GE(Res->ComponentCacheMisses, Res->ComponentsSimulated);
  // The per-round statistics lines appear once a round completes (a
  // search that succeeds mid-round returns before logging them).
  if (!Res->Found) {
    bool StatsLogged = false;
    for (const std::string &Line : Res->Log)
      if (Line.rfind("round ", 0) == 0 &&
          Line.find("decomposed") != std::string::npos)
        StatsLogged = true;
    EXPECT_TRUE(StatsLogged) << "no decomposition statistics in the log";
  }
}

namespace {

SearchProblem incrementalProblem(cfg::Config Base, uint64_t Seed, int Iters,
                                 bool CompCache, bool Dirty, bool Reuse) {
  SearchProblem Problem;
  Problem.Base = std::move(Base);
  Problem.Seed = Seed;
  Problem.MaxIterations = Iters;
  Problem.UseComponentCache = CompCache;
  Problem.UseDirtyTracking = Dirty;
  Problem.UseInstanceReuse = Reuse;
  return Problem;
}

} // namespace

TEST(Search, IncrementalLayersAreObservationallyTransparent) {
  // Every combination of the three incremental layers (component cache,
  // dirty tracking, instance reuse) must reproduce the all-off verdict
  // stream, trajectory and chosen configuration, for every worker count
  // — on a workload that decomposes, at a utilization where candidates
  // fail and the adaptive loop actually iterates. Within one mask the
  // full SearchResult must be byte-identical across worker counts.
  std::vector<SearchResult> PerMask;
  for (int Mask = 0; Mask < 8; ++Mask) {
    SearchProblem Problem = incrementalProblem(
        decoupledProblem(0.8, 26), 23, 10, (Mask & 1) != 0, (Mask & 2) != 0,
        (Mask & 4) != 0);
    Problem.Workers = 1;
    auto Serial = searchConfiguration(Problem);
    ASSERT_TRUE(Serial.ok()) << Serial.error().message();
    for (int Workers : {2, 4}) {
      Problem.Workers = Workers;
      auto Parallel = searchConfiguration(Problem);
      ASSERT_TRUE(Parallel.ok()) << Parallel.error().message();
      expectSameResult(*Serial, *Parallel);
      EXPECT_EQ(Serial->ComponentCacheHits, Parallel->ComponentCacheHits);
      EXPECT_EQ(Serial->ComponentCacheMisses,
                Parallel->ComponentCacheMisses);
      EXPECT_EQ(Serial->DirtyComponents, Parallel->DirtyComponents);
      EXPECT_EQ(Serial->CleanComponentsReused,
                Parallel->CleanComponentsReused);
      EXPECT_EQ(Serial->ComponentsSimulated, Parallel->ComponentsSimulated);
      EXPECT_EQ(Serial->SimulationsRun, Parallel->SimulationsRun);
    }
    PerMask.push_back(std::move(*Serial));
  }
  for (int Mask = 1; Mask < 8; ++Mask) {
    expectSameObservable(PerMask[0], PerMask[static_cast<size_t>(Mask)]);
    // The layers rearrange *how* verdicts are obtained, never which
    // candidates decompose or what the whole-config cache sees.
    EXPECT_EQ(PerMask[0].CacheHits, PerMask[static_cast<size_t>(Mask)].CacheHits);
    EXPECT_EQ(PerMask[0].CacheMisses,
              PerMask[static_cast<size_t>(Mask)].CacheMisses);
    EXPECT_EQ(PerMask[0].DecomposedCandidates,
              PerMask[static_cast<size_t>(Mask)].DecomposedCandidates);
    EXPECT_EQ(PerMask[0].SimulationsRun,
              PerMask[static_cast<size_t>(Mask)].SimulationsRun);
    EXPECT_EQ(PerMask[0].StopReasonCounts,
              PerMask[static_cast<size_t>(Mask)].StopReasonCounts);
  }
  // Instance reuse alone never changes a single byte: compare each mask
  // with its reuse-flipped twin, full Log included.
  for (int Mask = 0; Mask < 4; ++Mask) {
    expectSameResult(PerMask[static_cast<size_t>(Mask)],
                     PerMask[static_cast<size_t>(Mask | 4)]);
    EXPECT_EQ(PerMask[static_cast<size_t>(Mask)].ComponentsSimulated,
              PerMask[static_cast<size_t>(Mask | 4)].ComponentsSimulated);
  }
}

TEST(Search, ComponentCacheAndDirtyTrackingEngage) {
  // On a decoupled workload with the default flags the component cache
  // must produce cross-round hits (the adaptive state mutates a few
  // components per step, the rest repeat), dirty tracking must reuse
  // clean components, and the statistics must be coherent.
  SearchProblem Problem;
  Problem.Base = decoupledProblem(0.8, 27);
  Problem.Seed = 37;
  Problem.MaxIterations = 16;
  auto Res = searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  ASSERT_GT(Res->DecomposedCandidates, 0);
  EXPECT_GT(Res->ComponentCacheHits, 0);
  EXPECT_GT(Res->ComponentCacheMisses, 0);
  EXPECT_GE(Res->ComponentCacheMisses, Res->ComponentsSimulated);
  EXPECT_GT(Res->DirtyComponents, 0);
  EXPECT_GT(Res->CleanComponentsReused, 0);
  // With both layers on, every decomposed candidate plans incrementally
  // and every planned component meets the cache exactly once.
  EXPECT_EQ(Res->ComponentCacheHits + Res->ComponentCacheMisses,
            Res->DirtyComponents + Res->CleanComponentsReused);
  if (!Res->Found) {
    bool CacheLine = false, IncLine = false;
    for (const std::string &Line : Res->Log) {
      if (Line.rfind("round ", 0) != 0)
        continue;
      if (Line.find("component cache") != std::string::npos)
        CacheLine = true;
      if (Line.find("incremental") != std::string::npos)
        IncLine = true;
    }
    EXPECT_TRUE(CacheLine) << "no component-cache statistics in the log";
    EXPECT_TRUE(IncLine) << "no incremental statistics in the log";
  }
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
