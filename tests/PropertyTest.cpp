//===- tests/PropertyTest.cpp - Property sweeps over random configs ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Parameterized sweeps over generated configurations checking the model's
// global invariants on every trace:
//
//  * window confinement: all execution happens inside the owning
//    partition's windows;
//  * core exclusivity: at most one task of a core executes at any moment;
//  * WCET exactness: completed jobs execute exactly their WCET, missed
//    jobs strictly less;
//  * message precedence: a receiver never starts before its senders'
//    completions plus the link delay;
//  * determinism: randomized interleaving orders yield the same job trace;
//  * verdict agreement between the exhaustive model checker and the
//    simulator on small configurations;
//  * XML round-trips reproduce the analysis verdict.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "configio/ConfigXml.h"
#include "gen/Workload.h"
#include "mc/ModelChecker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace swa;
using namespace swa::analysis;

namespace {

cfg::Config smallConfig(uint64_t Seed, double Utilization = 0.45) {
  gen::IndustrialParams P;
  P.Modules = 2;
  P.CoresPerModule = 1;
  P.PartitionsPerCore = 2;
  P.MinTasksPerPartition = 2;
  P.MaxTasksPerPartition = 4;
  P.Periods = {50, 100, 200};
  P.CoreUtilization = Utilization;
  P.Seed = Seed;
  return gen::industrialConfig(P);
}

class RandomConfigProperty : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RandomConfigProperty, TraceInvariantsHold) {
  cfg::Config C = smallConfig(GetParam());
  ASSERT_FALSE(C.validate().isFailure());
  auto Out = analyzeConfiguration(C);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  const AnalysisResult &R = Out->Analysis;
  ASSERT_EQ(R.TotalJobs, C.jobCount());
  EXPECT_TRUE(Out->failureFlagsConsistent());

  cfg::TimeValue L = C.hyperperiod();

  // Window confinement & core exclusivity.
  struct Busy {
    int64_t Start, End;
    int Core;
  };
  std::vector<Busy> AllIntervals;
  for (const JobStats &J : R.Jobs) {
    cfg::TaskRef Ref = C.taskRefOf(J.TaskGid);
    const cfg::Partition &P =
        C.Partitions[static_cast<size_t>(Ref.Partition)];
    for (const ExecInterval &I : J.Intervals) {
      ASSERT_LT(I.Start, I.End);
      ASSERT_GE(I.Start, 0);
      ASSERT_LE(I.End, L);
      // Every tick of the interval lies in some window of the partition.
      for (int64_t T = I.Start; T < I.End; ++T) {
        bool InWindow = false;
        for (const cfg::Window &W : P.Windows)
          if (T >= W.Start && T < W.End)
            InWindow = true;
        ASSERT_TRUE(InWindow)
            << "task " << J.TaskGid << " executed at " << T
            << " outside its windows";
      }
      AllIntervals.push_back({I.Start, I.End, P.Core});
    }
  }
  // No two intervals on one core may overlap.
  std::sort(AllIntervals.begin(), AllIntervals.end(),
            [](const Busy &A, const Busy &B) {
              return std::tie(A.Core, A.Start) < std::tie(B.Core, B.Start);
            });
  for (size_t I = 1; I < AllIntervals.size(); ++I)
    if (AllIntervals[I].Core == AllIntervals[I - 1].Core)
      ASSERT_GE(AllIntervals[I].Start, AllIntervals[I - 1].End)
          << "overlapping execution on core " << AllIntervals[I].Core;

  // WCET exactness.
  for (const JobStats &J : R.Jobs) {
    cfg::TimeValue Wcet = C.boundWcet(C.taskRefOf(J.TaskGid));
    if (J.Completed)
      EXPECT_EQ(J.ExecTotal, Wcet);
    else
      EXPECT_LT(J.ExecTotal, Wcet);
  }

  // Message precedence: receiver job k starts no earlier than sender job
  // k's finish + the effective delay (when both jobs exist and ran).
  std::map<std::pair<int, int>, const JobStats *> ByJob;
  for (const JobStats &J : R.Jobs)
    ByJob[{J.TaskGid, J.JobIndex}] = &J;
  for (const cfg::Message &M : C.Messages) {
    int SG = C.globalTaskId(M.Sender);
    int RG = C.globalTaskId(M.Receiver);
    cfg::TimeValue Delay = C.effectiveDelay(M);
    for (const JobStats &J : R.Jobs) {
      if (J.TaskGid != RG || J.Intervals.empty())
        continue;
      auto It = ByJob.find({SG, J.JobIndex});
      ASSERT_NE(It, ByJob.end());
      const JobStats *Sender = It->second;
      ASSERT_TRUE(Sender->Completed)
          << "receiver ran although its sender did not complete";
      EXPECT_GE(J.Intervals.front().Start, Sender->FinishTime + Delay)
          << "receiver job " << J.JobIndex << " of task " << RG
          << " started before data from task " << SG;
    }
  }
}

TEST_P(RandomConfigProperty, RandomizedOrdersAreTraceEquivalent) {
  cfg::Config C = smallConfig(GetParam());
  auto Ref = analyzeConfiguration(C);
  ASSERT_TRUE(Ref.ok()) << Ref.error().message();
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    Rng R(GetParam() * 1000 + Seed);
    nsa::SimOptions Opts;
    Opts.RandomOrder = &R;
    auto Out = analyzeConfiguration(C, Opts);
    ASSERT_TRUE(Out.ok()) << Out.error().message();
    EXPECT_TRUE(jobTracesEquivalent(Ref->Analysis, Out->Analysis))
        << "seed " << Seed;
  }
}

TEST_P(RandomConfigProperty, XmlRoundTripPreservesVerdict) {
  cfg::Config C = smallConfig(GetParam());
  auto Direct = analyzeConfiguration(C);
  ASSERT_TRUE(Direct.ok());
  auto Back = configio::parseConfigXml(configio::writeConfigXml(C));
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  auto Round = analyzeConfiguration(*Back);
  ASSERT_TRUE(Round.ok());
  EXPECT_EQ(Direct->Analysis.Schedulable, Round->Analysis.Schedulable);
  EXPECT_EQ(Direct->Analysis.MissedJobs, Round->Analysis.MissedJobs);
  EXPECT_TRUE(jobTracesEquivalent(Direct->Analysis, Round->Analysis));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

//===----------------------------------------------------------------------===//
// Model checker vs simulator on tiny configurations
//===----------------------------------------------------------------------===//

namespace {

class McAgreement : public ::testing::TestWithParam<uint64_t> {};

cfg::Config tinyConfig(uint64_t Seed) {
  // Small enough for exhaustive exploration: one core, 2 partitions,
  // <= 2 tasks each, short hyperperiod, mixed utilization so both
  // verdicts occur across seeds.
  Rng R(Seed);
  cfg::Config C;
  C.Name = "tiny";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"c", 0, 0});
  cfg::TimeValue Minor = 8;
  for (int PI = 0; PI < 2; ++PI) {
    cfg::Partition P;
    P.Name = "p" + std::to_string(PI);
    P.Core = 0;
    P.Scheduler =
        R.chance(0.5) ? cfg::SchedulerKind::FPPS : cfg::SchedulerKind::EDF;
    cfg::TimeValue Base = PI * Minor / 2;
    P.Windows.push_back({Base, Base + Minor / 2});
    P.Windows.push_back({Base + Minor, Base + Minor + Minor / 2});
    int NT = static_cast<int>(R.uniformInt(1, 2));
    for (int T = 0; T < NT; ++T) {
      cfg::Task Task;
      Task.Name = "t" + std::to_string(T);
      Task.Period = R.chance(0.5) ? 8 : 16;
      Task.Deadline = Task.Period;
      Task.Wcet = {R.uniformInt(1, 3)};
      Task.Priority = T + 1;
      P.Tasks.push_back(std::move(Task));
    }
    C.Partitions.push_back(std::move(P));
  }
  return C;
}

} // namespace

TEST_P(McAgreement, VerdictsMatch) {
  cfg::Config C = tinyConfig(GetParam());
  if (C.validate().isFailure())
    GTEST_SKIP();
  auto Out = analyzeConfiguration(C);
  ASSERT_TRUE(Out.ok()) << Out.error().message();

  auto Model = core::buildModel(C);
  ASSERT_TRUE(Model.ok());
  mc::ModelChecker MC(*Model->Net);
  mc::McOptions Opts;
  Opts.MaxStates = 2000000;
  mc::McResult R = MC.explore(
      Opts, mc::ModelChecker::storeNonZero(*Model->Net, "is_failed"));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.PropertyViolated, !Out->Analysis.Schedulable)
      << "MC and simulation disagree";
  // Exploration stops at the first violation, so complete-run statistics
  // are only meaningful on schedulable configurations.
  if (!R.PropertyViolated)
    EXPECT_EQ(R.DistinctFinalStates, 1u) << "nondeterministic final state";
}

INSTANTIATE_TEST_SUITE_P(Seeds, McAgreement,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28,
                                           29, 30));

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
