//===- tests/FleetSearchTest.cpp - Fleet-equality contract ------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The fleet-scale search headline contract: the fleet result is
// byte-identical to the single-process PR 9 search for every fleet
// size and per-worker thread count — exercised over the full grid
// shards {1,2,4} x workers {1,2} (in-process backend), through the
// process backend (spawned config_search workers), and through the
// crash drills: a worker killed deterministically at its first
// checkpoint commit (SWA_CRASH_AFTER) and a worker SIGKILLed by the
// coordinator mid-round, both respawned and resumed.
//
// Portfolio mode: each racing strategy's result is byte-identical to
// that strategy's solo run, and the winner pick is deterministic.
//
// Plus the plumbing: the deterministic ownership partition, and
// manifest corruption as a typed rejection.
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"
#include "schedtool/ConfigSearch.h"
#include "schedtool/Exchange.h"
#include "schedtool/FleetSearch.h"
#include "schedtool/Snapshot.h"
#include "schedtool/Strategy.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

using namespace swa;
using namespace swa::schedtool;

namespace {

/// Bindings and windows stripped so the search must discover them (the
/// SchedtoolTest/DurableSearchTest idiom).
cfg::Config unboundProblem(double Utilization, uint64_t Seed) {
  gen::IndustrialParams P;
  P.Modules = 2;
  P.CoresPerModule = 2;
  P.PartitionsPerCore = 2;
  P.CoreUtilization = Utilization;
  P.Seed = Seed;
  cfg::Config C = gen::industrialConfig(P);
  for (cfg::Partition &Part : C.Partitions) {
    Part.Core = -1;
    Part.Windows.clear();
  }
  return C;
}

/// Hard enough that the search runs all rounds (no early Found), so the
/// exchange sees real multi-round traffic.
SearchProblem hardProblem() {
  SearchProblem P;
  P.Base = unboundProblem(0.8, 4);
  P.Seed = 4;
  P.MaxIterations = 12;
  P.BatchSize = 4;
  P.Workers = 1;
  return P;
}

/// A fresh exchange directory under the test's temp space.
std::string freshDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "fleet_" + Name + "_" +
                    std::to_string(::getpid());
  ::system(("rm -rf " + Dir).c_str());
  ::mkdir(Dir.c_str(), 0777);
  return Dir;
}

std::string resultBytes(const SearchResult &R) {
  return encodeSearchResultBytes(R);
}

} // namespace

//===----------------------------------------------------------------------===//
// The ownership partition.
//===----------------------------------------------------------------------===//

TEST(Exchange, OwnershipPartitionsEveryItemExactlyOnce) {
  std::string Dir = freshDir("own");
  for (int N : {1, 2, 3, 4}) {
    std::vector<Exchange> Ex(static_cast<size_t>(N));
    for (int I = 0; I < N; ++I)
      ASSERT_FALSE(Ex[static_cast<size_t>(I)].init(Dir, I, N,
                                                   Exchange::Mode::Shard));
    for (int Round = 0; Round < 6; ++Round)
      for (int Item = 0; Item < 10; ++Item) {
        int Owners = 0;
        for (int I = 0; I < N; ++I)
          Owners += Ex[static_cast<size_t>(I)].ownsItem(Round, Item) ? 1 : 0;
        EXPECT_EQ(Owners, 1) << "round " << Round << " item " << Item
                             << " fleet " << N;
      }
  }
}

TEST(Exchange, RefusesMissingDirectory) {
  Exchange Ex;
  Error E = Ex.init(::testing::TempDir() + "no_such_dir_swa", 0, 2,
                    Exchange::Mode::Shard);
  EXPECT_TRUE(E.isFailure());
  EXPECT_EQ(E.code(), ErrorCode::Io);
}

//===----------------------------------------------------------------------===//
// The fleet-equality grid (in-process backend).
//===----------------------------------------------------------------------===//

TEST(FleetSearch, ShardGridIsByteIdenticalToSolo) {
  SearchProblem Solo = hardProblem();
  Result<SearchResult> Ref = searchConfiguration(Solo);
  ASSERT_TRUE(Ref.ok());
  std::string RefBytes = resultBytes(*Ref);

  for (int Shards : {1, 2, 4})
    for (int Workers : {1, 2}) {
      FleetProblem FP;
      FP.Problem = hardProblem();
      FP.Problem.Workers = Workers;
      FP.Shards = Shards;
      FP.ExchangeDir = freshDir("grid");
      FP.FallbackMs = 500;
      ASSERT_TRUE(FP.WorkerCommand.empty()); // in-process backend
      Result<FleetResult> Out = runFleetSearch(FP);
      ASSERT_TRUE(Out.ok()) << "shards=" << Shards << " workers=" << Workers
                            << ": " << Out.error().message();
      // Every shard — and therefore the merged result — matches the
      // single-process run byte for byte.
      EXPECT_EQ(resultBytes(Out->Res), RefBytes)
          << "shards=" << Shards << " workers=" << Workers;
      for (int I = 0; I < Shards; ++I)
        EXPECT_EQ(resultBytes(Out->ShardResults[static_cast<size_t>(I)]),
                  RefBytes)
            << "shards=" << Shards << " workers=" << Workers << " shard "
            << I;
    }
}

TEST(FleetSearch, FindingFleetMatchesSoloToo) {
  // An easy problem where the search *finds* a layout mid-stream: the
  // Found path (early return, partial rounds) must shard identically.
  SearchProblem Solo;
  Solo.Base = unboundProblem(0.55, 7);
  Solo.Seed = 7;
  Solo.MaxIterations = 40;
  Result<SearchResult> Ref = searchConfiguration(Solo);
  ASSERT_TRUE(Ref.ok());
  EXPECT_TRUE(Ref->Found);

  FleetProblem FP;
  FP.Problem = Solo;
  FP.Shards = 2;
  FP.ExchangeDir = freshDir("found");
  FP.FallbackMs = 500;
  Result<FleetResult> Out = runFleetSearch(FP);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_EQ(resultBytes(Out->Res), resultBytes(*Ref));
}

//===----------------------------------------------------------------------===//
// Portfolio mode.
//===----------------------------------------------------------------------===//

TEST(FleetSearch, PortfolioShardsMatchTheirSoloRuns) {
  const std::vector<std::string> Names = {"local", "annealing", "genetic"};
  // Long enough that the metaheuristics genuinely diverge (annealing
  // needs rejected moves, genetic needs a filled population).
  SearchProblem Portfolio = hardProblem();
  Portfolio.MaxIterations = 32;

  // Solo reference per strategy.
  std::vector<std::string> RefBytes;
  for (const std::string &Name : Names) {
    SearchProblem P = Portfolio;
    std::unique_ptr<Strategy> S = makeStrategy(Name);
    ASSERT_TRUE(S) << Name;
    P.Strat = S.get();
    Result<SearchResult> R = searchConfiguration(P);
    ASSERT_TRUE(R.ok()) << Name;
    RefBytes.push_back(resultBytes(*R));
  }
  // Distinct trajectories: otherwise the equality below would be
  // trivially satisfied by three identical searches.
  EXPECT_NE(RefBytes[0], RefBytes[2]);

  FleetProblem FP;
  FP.Problem = Portfolio;
  FP.Shards = static_cast<int>(Names.size());
  FP.M = FleetProblem::Mode::Portfolio;
  FP.Strategies = Names;
  FP.ExchangeDir = freshDir("folio");
  Result<FleetResult> Out = runFleetSearch(FP);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  for (size_t I = 0; I < Names.size(); ++I)
    EXPECT_EQ(resultBytes(Out->ShardResults[I]), RefBytes[I])
        << "strategy " << Names[I]
        << " diverged from its solo run under the shared exchange";

  // The winner pick is a pure function of the results: a second fleet
  // run picks the same winner with the same bytes.
  FleetProblem FP2 = FP;
  FP2.ExchangeDir = freshDir("folio2");
  Result<FleetResult> Out2 = runFleetSearch(FP2);
  ASSERT_TRUE(Out2.ok());
  EXPECT_EQ(Out->WinnerShard, Out2->WinnerShard);
  EXPECT_EQ(Out->WinnerStrategy, Out2->WinnerStrategy);
  EXPECT_EQ(resultBytes(Out->Res), resultBytes(Out2->Res));
}

//===----------------------------------------------------------------------===//
// Strategy checkpointing.
//===----------------------------------------------------------------------===//

TEST(FleetSearch, ResumeUnderDifferentStrategyIsTypedMismatch) {
  std::string Ckpt = ::testing::TempDir() + "strategy_swap_" +
                     std::to_string(::getpid()) + ".snap";
  std::remove(Ckpt.c_str());

  SearchProblem P = hardProblem();
  std::unique_ptr<Strategy> Ann = makeStrategy("annealing");
  P.Strat = Ann.get();
  P.CheckpointPath = Ckpt;
  ASSERT_TRUE(searchConfiguration(P).ok());

  Result<Snapshot> S = loadSnapshot(Ckpt);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S->StrategyName, "annealing");

  std::unique_ptr<Strategy> Gen = makeStrategy("genetic");
  P.Strat = Gen.get();
  P.CheckpointPath.clear();
  P.Resume = &*S;
  Result<SearchResult> R = searchConfiguration(P);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().code(), ErrorCode::SnapshotMismatch);
  std::remove(Ckpt.c_str());
}

TEST(FleetSearch, AnnealingResumeIsByteIdentical) {
  // The stateful-strategy counterpart of the PR 9 contract: interrupt an
  // annealing search mid-stream (simulated by running with checkpoints
  // and resuming from a mid-run snapshot) and the final result matches
  // the uninterrupted run — the temperature ladder resumes, not resets.
  std::string Ckpt = ::testing::TempDir() + "anneal_resume_" +
                     std::to_string(::getpid()) + ".snap";
  std::remove(Ckpt.c_str());

  SearchProblem P = hardProblem();
  std::unique_ptr<Strategy> A1 = makeStrategy("annealing");
  P.Strat = A1.get();
  Result<SearchResult> Ref = searchConfiguration(P);
  ASSERT_TRUE(Ref.ok());

  // Interrupted run: 2 of 3 rounds, then resume the rest.
  SearchProblem Half = hardProblem();
  Half.MaxIterations = 8;
  std::unique_ptr<Strategy> A2 = makeStrategy("annealing");
  Half.Strat = A2.get();
  Half.CheckpointPath = Ckpt;
  ASSERT_TRUE(searchConfiguration(Half).ok());

  Result<Snapshot> S = loadSnapshot(Ckpt);
  ASSERT_TRUE(S.ok());
  SearchProblem Rest = hardProblem();
  std::unique_ptr<Strategy> A3 = makeStrategy("annealing");
  Rest.Strat = A3.get();
  Rest.Resume = &*S;
  Result<SearchResult> Resumed = searchConfiguration(Rest);
  ASSERT_TRUE(Resumed.ok());
  EXPECT_EQ(resultBytes(*Resumed), resultBytes(*Ref));
  std::remove(Ckpt.c_str());
}

//===----------------------------------------------------------------------===//
// Process backend + crash drills. Workers are real spawned
// config_search processes (SWA_CONFIG_SEARCH_BIN, a build-time path).
//===----------------------------------------------------------------------===//

#ifdef SWA_CONFIG_SEARCH_BIN

TEST(FleetSearch, ProcessBackendMatchesSolo) {
  SearchProblem Solo = hardProblem();
  Result<SearchResult> Ref = searchConfiguration(Solo);
  ASSERT_TRUE(Ref.ok());

  FleetProblem FP;
  FP.Problem = hardProblem();
  FP.Shards = 2;
  FP.ExchangeDir = freshDir("proc");
  FP.FallbackMs = 500;
  FP.WorkerCommand = {SWA_CONFIG_SEARCH_BIN};
  Result<FleetResult> Out = runFleetSearch(FP);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_EQ(resultBytes(Out->Res), resultBytes(*Ref));
}

TEST(FleetSearch, CrashedWorkerResumesByteIdentically) {
  // Deterministic mid-fleet death: SWA_CRASH_AFTER=commit:1 makes every
  // worker die right after its first checkpoint commit (the injected-
  // crash machinery of the PR 9 fault campaign, exit code 87). The
  // coordinator respawns them with a clean environment; each finds its
  // own checkpoint, resumes mid-stream, and the fleet result must still
  // match the uninterrupted single-process run byte for byte.
  SearchProblem Solo = hardProblem();
  Result<SearchResult> Ref = searchConfiguration(Solo);
  ASSERT_TRUE(Ref.ok());

  FleetProblem FP;
  FP.Problem = hardProblem();
  FP.Shards = 2;
  FP.ExchangeDir = freshDir("crash");
  FP.FallbackMs = 500;
  FP.WorkerCommand = {SWA_CONFIG_SEARCH_BIN};
  FP.WorkerEnv = {"SWA_CRASH_AFTER=commit:1"};
  FP.MaxRestarts = 2;
  Result<FleetResult> Out = runFleetSearch(FP);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_GE(Out->Restarts, 2); // both workers died once
  EXPECT_EQ(resultBytes(Out->Res), resultBytes(*Ref));
}

TEST(FleetSearch, SigkilledWorkerResumesByteIdentically) {
  // The ungraceful variant: the coordinator SIGKILLs shard 1 the moment
  // its first checkpoint appears — mid-round, no cooperation — then
  // respawns it. Shard 0 meanwhile covers shard 1's items through the
  // fallback path, which must not perturb any result.
  SearchProblem Solo = hardProblem();
  Solo.MaxIterations = 24; // longer run: the kill lands mid-search
  Result<SearchResult> Ref = searchConfiguration(Solo);
  ASSERT_TRUE(Ref.ok());

  FleetProblem FP;
  FP.Problem = hardProblem();
  FP.Problem.MaxIterations = 24;
  FP.Shards = 2;
  FP.ExchangeDir = freshDir("kill");
  FP.FallbackMs = 300;
  FP.WorkerCommand = {SWA_CONFIG_SEARCH_BIN};
  FP.KillShardOnFirstCheckpoint = 1;
  FP.MaxRestarts = 2;
  Result<FleetResult> Out = runFleetSearch(FP);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_EQ(resultBytes(Out->Res), resultBytes(*Ref));
}

TEST(FleetSearch, ExhaustedRestartBudgetIsAnError) {
  // A worker that *always* dies must surface as a coordinator error,
  // not a hang: crash at every checkpoint commit with zero restarts.
  FleetProblem FP;
  FP.Problem = hardProblem();
  FP.Shards = 1;
  FP.ExchangeDir = freshDir("dead");
  FP.WorkerCommand = {"/nonexistent/worker/binary"};
  FP.MaxRestarts = 1;
  Result<FleetResult> Out = runFleetSearch(FP);
  ASSERT_FALSE(Out.ok());
}

#endif // SWA_CONFIG_SEARCH_BIN

//===----------------------------------------------------------------------===//
// Manifest robustness.
//===----------------------------------------------------------------------===//

TEST(FleetSearch, CorruptManifestIsTypedRejection) {
  // Produce a valid manifest via a 1-shard fleet, then flip a byte in
  // the middle and re-run a shard against it: typed error, never a
  // half-read problem.
  FleetProblem FP;
  FP.Problem = hardProblem();
  FP.Problem.MaxIterations = 4;
  FP.Shards = 1;
  FP.ExchangeDir = freshDir("corrupt");
  ASSERT_TRUE(runFleetSearch(FP).ok());

  std::string Path = FP.ExchangeDir + "/manifest";
  std::ifstream IS(Path, std::ios::binary);
  std::string Data((std::istreambuf_iterator<char>(IS)),
                   std::istreambuf_iterator<char>());
  IS.close();
  ASSERT_GT(Data.size(), 30u);
  Data[Data.size() / 2] ^= 0x40;
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS.write(Data.data(), static_cast<std::streamsize>(Data.size()));
  OS.close();

  Result<SearchResult> R = runFleetShard(FP.ExchangeDir, 0);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().code(), ErrorCode::SnapshotCorrupt);
}

TEST(FleetSearch, ShardModeRejectsStrategyPortfolio) {
  FleetProblem FP;
  FP.Problem = hardProblem();
  FP.Shards = 2;
  FP.Strategies = {"local", "annealing"};
  FP.ExchangeDir = freshDir("badmix");
  ASSERT_FALSE(runFleetSearch(FP).ok());
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
