//===- tests/DiffTest.cpp - Differential-testing harness tests -------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `difftest` label: the acceptance gate of the differential-testing
/// subsystem. Asserts (1) the fixed-seed 200-configuration campaign is
/// clean, (2) every implemented fault-injection class is detected by the
/// online invariant checker, (3) the checker is a pure observer (the
/// trace with the checker attached is byte-identical to the trace
/// without), (4) the shrinker's output is 1-minimal, (5) reproducer
/// bundles round-trip through XML and replay deterministically, (6) the
/// XML parser enforces its ParseLimits with structured errors, and
/// (7) writeConfigXml/parseConfigXml is a byte fixed point over the
/// adversarial generator's whole output distribution.
///
//===----------------------------------------------------------------------===//

#include "configio/ConfigXml.h"
#include "core/InstanceBuilder.h"
#include "difftest/Campaign.h"
#include "difftest/Oracles.h"
#include "difftest/Reproducer.h"
#include "difftest/Shrink.h"
#include "config/Decompose.h"
#include "difftest/TraceInvariants.h"
#include "gen/Adversarial.h"
#include "gen/Workload.h"
#include "nsa/Event.h"
#include "nsa/Simulator.h"
#include "obs/TraceSink.h"
#include "support/Rng.h"
#include "tests/TestConfigs.h"
#include "xml/Xml.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace swa;

namespace {

//===----------------------------------------------------------------------===//
// Campaign: the fixed-seed acceptance gate.
//===----------------------------------------------------------------------===//

TEST(DiffCampaign, FixedSeed200ConfigsClean) {
  difftest::CampaignOptions Options;
  Options.Seed = 20260806;
  Options.NumConfigs = 200;
  difftest::CampaignResult Res = difftest::runCampaign(Options);

  for (const difftest::CampaignMismatch &M : Res.Mismatches)
    ADD_FAILURE() << "config " << M.ConfigIndex << " (seed " << M.ConfigSeed
                  << ") pair=" << difftest::oraclePairName(M.Finding.Pair)
                  << "\n  expected: " << M.Finding.Expected
                  << "\n  actual:   " << M.Finding.Actual
                  << "\n  detail:   " << M.Finding.Detail;
  EXPECT_TRUE(Res.clean());

  // The draw distribution must actually exercise the harness: valid
  // configurations through the oracles, invalid ones (zero-WCET mutants)
  // through the clean-rejection assertion, and mutated XML into the
  // parser.
  EXPECT_EQ(Res.ConfigsRun + Res.RejectedConfigs, 200);
  EXPECT_GT(Res.ConfigsRun, 100);
  EXPECT_GT(Res.RejectedConfigs, 0);
  EXPECT_GT(Res.OraclePairsRun, Res.ConfigsRun); // > one pair per config.
  EXPECT_EQ(Res.XmlDocsFuzzed, 200 * 4);
}

TEST(DiffCampaign, SensitivitySlackGateOnFixedSeed100) {
  // The slack-certificate acceptance gate: on a fixed-seed 100-config
  // campaign, every decided per-task WCET slack must be certified by
  // fresh full runs — schedulable at the reported slack, verdict flipped
  // one tolerance past it (the sensitivity-slack pair asserts exactly
  // this, config by config).
  difftest::CampaignOptions Options;
  Options.Seed = 20260808;
  Options.NumConfigs = 100;
  Options.XmlFuzzPerConfig = 0; // this gate is about the oracle pairs
  difftest::CampaignResult Res = difftest::runCampaign(Options);

  for (const difftest::CampaignMismatch &M : Res.Mismatches)
    ADD_FAILURE() << "config " << M.ConfigIndex << " (seed " << M.ConfigSeed
                  << ") pair=" << difftest::oraclePairName(M.Finding.Pair)
                  << "\n  expected: " << M.Finding.Expected
                  << "\n  actual:   " << M.Finding.Actual
                  << "\n  detail:   " << M.Finding.Detail;
  EXPECT_TRUE(Res.clean());
  EXPECT_GT(Res.ConfigsRun, 50);

  // Prove the pair itself was exercised, not just gated away: the same
  // campaign with the pair disabled runs strictly fewer oracle pairs.
  Options.Oracle.EnableSensitivity = false;
  difftest::CampaignResult Without = difftest::runCampaign(Options);
  EXPECT_TRUE(Without.clean());
  EXPECT_GT(Res.OraclePairsRun, Without.OraclePairsRun);
}

TEST(DiffCampaign, DeterministicInSeed) {
  difftest::CampaignOptions Options;
  Options.Seed = 7;
  Options.NumConfigs = 20;
  difftest::CampaignResult A = difftest::runCampaign(Options);
  difftest::CampaignResult B = difftest::runCampaign(Options);
  EXPECT_EQ(A.ConfigsRun, B.ConfigsRun);
  EXPECT_EQ(A.RejectedConfigs, B.RejectedConfigs);
  EXPECT_EQ(A.OraclePairsRun, B.OraclePairsRun);
  EXPECT_EQ(A.Mismatches.size(), B.Mismatches.size());
}

//===----------------------------------------------------------------------===//
// Fault injection: the checker self-test. Every fault class must stop the
// run with StopReason::InvariantViolation; without a fault the same
// configuration must complete with zero violations.
//===----------------------------------------------------------------------===//

nsa::SimResult runWithFault(const core::BuiltModel &Model,
                            difftest::TraceInvariantChecker &Checker,
                            nsa::FaultPlan *Fault) {
  nsa::SimOptions Options;
  Options.Checker = &Checker;
  Options.Fault = Fault;
  nsa::Simulator Sim(*Model.Net);
  return Sim.run(Options);
}

TEST(DiffFaultInjection, CleanRunHasNoViolations) {
  Result<core::BuiltModel> Model =
      core::buildModel(testcfg::preemptionShowcase());
  ASSERT_TRUE(Model.ok());
  difftest::TraceInvariantChecker Checker(*Model);
  nsa::SimResult Res = runWithFault(*Model, Checker, nullptr);
  EXPECT_EQ(Res.Stop, nsa::StopReason::Completed) << Res.Error;
  EXPECT_GT(Checker.stats().StepsChecked, 0u);
  EXPECT_GT(Checker.stats().FinsChecked, 0u);
}

TEST(DiffFaultInjection, FlipVariableDetected) {
  Result<core::BuiltModel> Model =
      core::buildModel(testcfg::preemptionShowcase());
  ASSERT_TRUE(Model.ok());
  difftest::TraceInvariantChecker Checker(*Model);
  nsa::FaultPlan Fault;
  Fault.FaultKind = nsa::FaultPlan::Kind::FlipVariable;
  Fault.AtAction = 2;
  Fault.Index = 0; // is_ready[0]: the scheduler reads it every decision.
  Fault.Delta = 1;
  nsa::SimResult Res = runWithFault(*Model, Checker, &Fault);
  EXPECT_TRUE(Fault.Fired);
  EXPECT_EQ(Res.Stop, nsa::StopReason::InvariantViolation);
  EXPECT_NE(Res.Error.find("trace invariant violated"), std::string::npos)
      << Res.Error;
}

TEST(DiffFaultInjection, SkewClockDetected) {
  Result<core::BuiltModel> Model =
      core::buildModel(testcfg::preemptionShowcase());
  ASSERT_TRUE(Model.ok());
  difftest::TraceInvariantChecker Checker(*Model);
  nsa::FaultPlan Fault;
  Fault.FaultKind = nsa::FaultPlan::Kind::SkewClock;
  Fault.AtAction = 2;
  Fault.Index = 0; // The first task's period clock.
  Fault.Delta = 3;
  nsa::SimResult Res = runWithFault(*Model, Checker, &Fault);
  EXPECT_TRUE(Fault.Fired);
  EXPECT_EQ(Res.Stop, nsa::StopReason::InvariantViolation);
}

TEST(DiffFaultInjection, SkipSyncDetected) {
  Result<core::BuiltModel> Model =
      core::buildModel(testcfg::preemptionShowcase());
  ASSERT_TRUE(Model.ok());

  // Find the first binary sync action of the clean run, so the skip
  // targets an action that really has a receiver to drop. RecordInternal
  // keeps the event indices aligned with the 1-based action count. The
  // fixture has no virtual links, so any one-receiver sync is binary
  // (its broadcast sends have zero receivers).
  nsa::SimOptions Probe;
  Probe.RecordTrace = true;
  Probe.RecordInternal = true;
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult Clean = Sim.run(Probe);
  ASSERT_EQ(Clean.Stop, nsa::StopReason::Completed);
  uint64_t Target = 0;
  for (size_t I = 0; I < Clean.Events.size(); ++I) {
    const nsa::Event &E = Clean.Events[I];
    if (E.Channel >= 0 && E.Receivers.size() == 1) {
      Target = I + 1; // AtAction counts are 1-based.
      break;
    }
  }
  ASSERT_GT(Target, 0u) << "trace has no binary sync to skip";

  difftest::TraceInvariantChecker Checker(*Model);
  nsa::FaultPlan Fault;
  Fault.FaultKind = nsa::FaultPlan::Kind::SkipSync;
  Fault.AtAction = Target;
  nsa::SimResult Res = runWithFault(*Model, Checker, &Fault);
  EXPECT_TRUE(Fault.Fired);
  EXPECT_EQ(Res.Stop, nsa::StopReason::InvariantViolation);
  EXPECT_NE(Res.Error.find("receiver"), std::string::npos) << Res.Error;
}

TEST(DiffFaultInjection, EveryFaultClassDetectedOnCampaignConfigs) {
  // The self-test must hold on generator output, not just fixtures: draw
  // valid adversarial configurations and inject each fault class.
  Rng R(99);
  int Tested = 0;
  for (int Draw = 0; Draw < 40 && Tested < 5; ++Draw) {
    cfg::Config C = gen::adversarialConfig(R);
    if (C.validate()) // Error: invalid draw (e.g. a zero-WCET mutant).
      continue;
    Result<core::BuiltModel> Model = core::buildModel(C);
    if (!Model.ok())
      continue;
    // Clean baseline first: skip configurations whose clean run does not
    // complete (guard rails) — fault detection is only meaningful there.
    {
      difftest::TraceInvariantChecker Checker(*Model);
      nsa::SimResult Res = runWithFault(*Model, Checker, nullptr);
      if (Res.Stop != nsa::StopReason::Completed || Res.ActionCount < 4)
        continue;
    }
    for (nsa::FaultPlan::Kind Kind : {nsa::FaultPlan::Kind::FlipVariable,
                                      nsa::FaultPlan::Kind::SkewClock}) {
      difftest::TraceInvariantChecker Checker(*Model);
      nsa::FaultPlan Fault;
      Fault.FaultKind = Kind;
      Fault.AtAction = 2;
      Fault.Index = 0;
      Fault.Delta = 7;
      nsa::SimResult Res = runWithFault(*Model, Checker, &Fault);
      if (!Fault.Fired)
        continue;
      EXPECT_EQ(Res.Stop, nsa::StopReason::InvariantViolation)
          << nsa::faultKindName(Kind) << " undetected on config '" << C.Name
          << "'";
    }
    ++Tested;
  }
  EXPECT_GT(Tested, 0);
}

//===----------------------------------------------------------------------===//
// Checker purity: attaching the checker must not change the run.
//===----------------------------------------------------------------------===//

TEST(DiffChecker, AttachedCheckerLeavesTraceByteIdentical) {
  for (const cfg::Config &C :
       {testcfg::twoTasksOneCore(), testcfg::preemptionShowcase(),
        testcfg::twoPartitionsWindows()}) {
    Result<core::BuiltModel> Model = core::buildModel(C);
    ASSERT_TRUE(Model.ok());

    nsa::SimOptions Plain;
    Plain.RecordTrace = true;
    nsa::Simulator SimA(*Model->Net);
    nsa::SimResult Without = SimA.run(Plain);

    difftest::TraceInvariantChecker Checker(*Model);
    nsa::SimOptions Checked = Plain;
    Checked.Checker = &Checker;
    nsa::Simulator SimB(*Model->Net);
    nsa::SimResult With = SimB.run(Checked);

    EXPECT_EQ(Without.Stop, With.Stop);
    EXPECT_EQ(Without.ActionCount, With.ActionCount);
    EXPECT_TRUE(nsa::syncTracesEqual(Without.Events, With.Events))
        << "checker perturbed the trace of '" << C.Name << "'";
    EXPECT_TRUE(Without.Final == With.Final);
  }
}

//===----------------------------------------------------------------------===//
// Shrinker: 1-minimality under a planted discrepancy predicate.
//===----------------------------------------------------------------------===//

/// Planted predicate: "at least two tasks with priority 7 exist". Purely
/// structural, so minimality is easy to state: the 1-minimal reproducers
/// are exactly the valid configurations with two priority-7 tasks and
/// nothing else removable.
bool hasTwoPrioritySevenTasks(const cfg::Config &C) {
  int Found = 0;
  for (const cfg::Partition &P : C.Partitions)
    for (const cfg::Task &T : P.Tasks)
      if (T.Priority == 7)
        ++Found;
  return Found >= 2;
}

cfg::Config plantedShrinkSeed() {
  cfg::Config C;
  C.Name = "planted";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"c0", 0, 0});
  C.Cores.push_back({"c1", 0, 0});
  cfg::Partition P0;
  P0.Name = "p0";
  P0.Core = 0;
  P0.Windows.push_back({0, 40});
  P0.Tasks.push_back({"a", 7, {4}, 40, 40});
  P0.Tasks.push_back({"b", 3, {4}, 40, 40});
  P0.Tasks.push_back({"c", 7, {4}, 20, 20});
  cfg::Partition P1;
  P1.Name = "p1";
  P1.Core = 1;
  P1.Windows.push_back({0, 40});
  P1.Tasks.push_back({"d", 5, {4}, 40, 40});
  P1.Tasks.push_back({"e", 2, {4}, 40, 40});
  C.Partitions.push_back(std::move(P0));
  C.Partitions.push_back(std::move(P1));
  C.Messages.push_back({{0, 0}, {0, 1}, 1, 2});
  C.Messages.push_back({{1, 0}, {1, 1}, 1, 2});
  return C;
}

TEST(DiffShrink, PlantedPredicateShrinksToOneMinimal) {
  cfg::Config Seed = plantedShrinkSeed();
  ASSERT_FALSE(Seed.validate());
  ASSERT_TRUE(hasTwoPrioritySevenTasks(Seed));

  difftest::ShrinkStats Stats;
  cfg::Config Min = difftest::shrinkConfig(
      Seed, hasTwoPrioritySevenTasks, &Stats);

  // The shrunk configuration still validates and still reproduces.
  EXPECT_FALSE(Min.validate());
  EXPECT_TRUE(hasTwoPrioritySevenTasks(Min));
  EXPECT_GT(Stats.CandidatesTried, 0);
  EXPECT_GT(Stats.CandidatesAccepted, 0);

  // The irrelevant partition, its tasks and both messages must be gone;
  // exactly the two priority-7 tasks survive.
  EXPECT_EQ(Min.Partitions.size(), 1u);
  EXPECT_TRUE(Min.Messages.empty());
  size_t Tasks = 0;
  for (const cfg::Partition &P : Min.Partitions)
    Tasks += P.Tasks.size();
  EXPECT_EQ(Tasks, 2u);

  // 1-minimality at element granularity: removing any single task,
  // partition or message either invalidates the configuration or loses
  // the discrepancy.
  for (size_t P = 0; P < Min.Partitions.size(); ++P) {
    cfg::Config Sub = difftest::removePartition(Min, static_cast<int>(P));
    EXPECT_TRUE(Sub.validate() || !hasTwoPrioritySevenTasks(Sub))
        << "dropping partition " << P << " still reproduces";
    for (size_t T = 0; T < Min.Partitions[P].Tasks.size(); ++T) {
      cfg::Config Cand = difftest::removeTask(Min, static_cast<int>(P),
                                              static_cast<int>(T));
      EXPECT_TRUE(Cand.validate() || !hasTwoPrioritySevenTasks(Cand))
          << "dropping task (" << P << "," << T << ") still reproduces";
    }
  }
  for (size_t M = 0; M < Min.Messages.size(); ++M) {
    cfg::Config Cand = difftest::removeMessage(Min, static_cast<int>(M));
    EXPECT_TRUE(Cand.validate() || !hasTwoPrioritySevenTasks(Cand))
        << "dropping message " << M << " still reproduces";
  }
}

TEST(DiffShrink, RemovalHelpersFixUpMessageIndices) {
  cfg::Config C = plantedShrinkSeed();
  // Dropping partition 0 must drop its message and re-index the other.
  cfg::Config NoP0 = difftest::removePartition(C, 0);
  ASSERT_EQ(NoP0.Messages.size(), 1u);
  EXPECT_EQ(NoP0.Messages[0].Sender.Partition, 0);
  EXPECT_EQ(NoP0.Messages[0].Receiver.Partition, 0);
  // Dropping task (0,0) must drop the message touching it and keep the
  // other untouched.
  cfg::Config NoT = difftest::removeTask(C, 0, 0);
  ASSERT_EQ(NoT.Messages.size(), 1u);
  EXPECT_EQ(NoT.Messages[0].Sender.Partition, 1);
}

//===----------------------------------------------------------------------===//
// Reproducer bundles: XML round trip and deterministic replay.
//===----------------------------------------------------------------------===//

TEST(DiffReproducer, XmlRoundTripPreservesEveryField) {
  difftest::Reproducer R;
  R.Config = testcfg::twoTasksOneCore();
  R.Seed = 12850353245904161967ULL; // > int64 max: seeds are uint64.
  R.Pair = difftest::OraclePair::SimVsMc;
  R.Expected = "1 distinct final state";
  R.Actual = "2 distinct final states";
  R.Detail = "planted <detail> with &special; characters";
  R.HasFault = true;
  R.Fault.FaultKind = nsa::FaultPlan::Kind::SkewClock;
  R.Fault.AtAction = 17;
  R.Fault.Index = 3;
  R.Fault.Delta = -2;

  std::string Doc = difftest::writeReproducerXml(R);
  Result<difftest::Reproducer> Back = difftest::parseReproducerXml(Doc);
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  EXPECT_EQ(Back->Seed, R.Seed);
  EXPECT_EQ(Back->Pair, R.Pair);
  EXPECT_EQ(Back->Expected, R.Expected);
  EXPECT_EQ(Back->Actual, R.Actual);
  EXPECT_EQ(Back->Detail, R.Detail);
  EXPECT_TRUE(Back->HasFault);
  EXPECT_EQ(Back->Fault.FaultKind, R.Fault.FaultKind);
  EXPECT_EQ(Back->Fault.AtAction, R.Fault.AtAction);
  EXPECT_EQ(Back->Fault.Index, R.Fault.Index);
  EXPECT_EQ(Back->Fault.Delta, R.Fault.Delta);
  EXPECT_EQ(difftest::writeReproducerXml(*Back), Doc);
}

TEST(DiffReproducer, FaultBundleReplaysDeterministically) {
  // Record a real fault run, bundle it, replay it twice: the replay must
  // report the same expected/actual pair every time.
  cfg::Config C = testcfg::preemptionShowcase();
  Result<core::BuiltModel> Model = core::buildModel(C);
  ASSERT_TRUE(Model.ok());
  difftest::TraceInvariantChecker Checker(*Model);
  nsa::FaultPlan Fault;
  Fault.FaultKind = nsa::FaultPlan::Kind::FlipVariable;
  Fault.AtAction = 2;
  Fault.Index = 0;
  Fault.Delta = 1;
  nsa::SimResult Res = runWithFault(*Model, Checker, &Fault);
  ASSERT_EQ(Res.Stop, nsa::StopReason::InvariantViolation);

  difftest::Reproducer R;
  R.Config = C;
  R.Seed = 42;
  R.Pair = difftest::OraclePair::TraceInvariants;
  R.Expected = "completed";
  R.Actual = nsa::stopReasonName(Res.Stop);
  R.HasFault = true;
  R.Fault = Fault;

  std::string Doc = difftest::writeReproducerXml(R);
  Result<difftest::Reproducer> Back = difftest::parseReproducerXml(Doc);
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  for (int I = 0; I < 2; ++I) {
    Result<difftest::ReplayOutcome> Out = difftest::replayReproducer(*Back);
    ASSERT_TRUE(Out.ok()) << Out.error().message();
    EXPECT_TRUE(Out->Reproduced)
        << "expected '" << Out->Expected << "' actual '" << Out->Actual
        << "'";
    EXPECT_EQ(Out->Actual, "invariant-violation");
  }
}

TEST(DiffReproducer, CleanConfigDoesNotReproduce) {
  difftest::Reproducer R;
  R.Config = testcfg::twoTasksOneCore();
  R.Pair = difftest::OraclePair::VmVsInterpreter;
  R.Expected = "identical sync traces";
  R.Actual = "traces differ";
  Result<difftest::ReplayOutcome> Out = difftest::replayReproducer(R);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_FALSE(Out->Reproduced);
}

//===----------------------------------------------------------------------===//
// Oracles on known-good fixtures.
//===----------------------------------------------------------------------===//

TEST(DiffOracles, FixturesAreCleanAcrossAllPairs) {
  for (const cfg::Config &C :
       {testcfg::twoTasksOneCore(), testcfg::overloadedOneCore(),
        testcfg::preemptionShowcase(), testcfg::twoPartitionsWindows()}) {
    difftest::OracleReport Rep = difftest::runOracles(C);
    EXPECT_TRUE(Rep.SkipReason.empty()) << C.Name << ": " << Rep.SkipReason;
    for (const difftest::Discrepancy &D : Rep.Mismatches)
      ADD_FAILURE() << C.Name << " pair="
                    << difftest::oraclePairName(D.Pair) << ": expected '"
                    << D.Expected << "' actual '" << D.Actual << "' ("
                    << D.Detail << ")";
    EXPECT_GE(Rep.PairsRun, 3); // invariants + vm/interp + round trip.
  }
}

TEST(DiffOracles, EarlyExitAndDecomposedPairsAreExercised) {
  // The adversarial campaign rarely produces decomposable configurations
  // (its window layouts are not component-periodic), so this fixed-seed
  // test guarantees both new oracle pairs actually run: message-free
  // industrial workloads decompose per core group, and the moderate/high
  // utilization pair covers a schedulable and an unschedulable subject.
  for (double Util : {0.35, 0.85}) {
    gen::IndustrialParams P;
    P.Modules = 2;
    P.CoresPerModule = 2;
    P.PartitionsPerCore = 2;
    P.CoreUtilization = Util;
    P.MessageProbability = 0.0;
    P.Seed = 5;
    cfg::Config C = gen::industrialConfig(P);
    ASSERT_FALSE(C.validate().isFailure());
    ASSERT_TRUE(cfg::decomposeConfig(C).Decomposed) << "util " << Util;

    difftest::OracleReport Rep = difftest::runOracles(C);
    EXPECT_TRUE(Rep.SkipReason.empty()) << Rep.SkipReason;
    for (const difftest::Discrepancy &D : Rep.Mismatches)
      ADD_FAILURE() << "util " << Util << " pair="
                    << difftest::oraclePairName(D.Pair) << ": expected '"
                    << D.Expected << "' actual '" << D.Actual << "' ("
                    << D.Detail << ")";
    // invariants + vm/interp + round trip + early-exit + decomposed.
    EXPECT_GE(Rep.PairsRun, 5);
  }
}

//===----------------------------------------------------------------------===//
// XML parser hardening: ParseLimits as structured errors, never UB.
//===----------------------------------------------------------------------===//

TEST(DiffXmlLimits, NestingDepthIsBounded) {
  std::string Doc;
  for (int I = 0; I < 600; ++I)
    Doc += "<a>";
  for (int I = 0; I < 600; ++I)
    Doc += "</a>";
  Result<xml::NodePtr> R = xml::parse(Doc); // Default MaxDepth = 256.
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("depth"), std::string::npos)
      << R.error().message();

  xml::ParseLimits Deep;
  Deep.MaxDepth = 1000;
  EXPECT_TRUE(xml::parse(Doc, Deep).ok());
}

TEST(DiffXmlLimits, NameAndAttributeSizesAreBounded) {
  xml::ParseLimits Tight;
  Tight.MaxNameLength = 8;
  Tight.MaxAttrValueLength = 8;
  Tight.MaxAttrsPerElement = 2;

  EXPECT_FALSE(xml::parse("<averylongelementname/>", Tight).ok());
  EXPECT_FALSE(xml::parse("<a v=\"0123456789abcdef\"/>", Tight).ok());
  EXPECT_FALSE(xml::parse("<a x=\"1\" y=\"2\" z=\"3\"/>", Tight).ok());
  EXPECT_TRUE(xml::parse("<a x=\"1\" y=\"2\"/>", Tight).ok());
}

TEST(DiffXmlLimits, TextAccumulationIsBounded) {
  // The cap is document-wide: one small text node passes, two whose sum
  // exceeds the budget fail.
  xml::ParseLimits Tight;
  Tight.MaxTextLength = 16;
  EXPECT_TRUE(xml::parse("<a>0123456789</a>", Tight).ok());
  EXPECT_FALSE(
      xml::parse("<a><b>0123456789</b><c>0123456789</c></a>", Tight).ok());
}

TEST(DiffXmlLimits, HugeCharacterReferencesAreRejected) {
  // Would overflow a naive accumulator; must be a structured error.
  Result<xml::NodePtr> R =
      xml::parse("<a>&#99999999999999999999999999;</a>");
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(xml::parse("<a>&#x7FFFFFFFFFFFFFFFF;</a>").ok());
  // Sane references still work.
  Result<xml::NodePtr> Ok = xml::parse("<a>&#65;</a>");
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ((*Ok)->Text, "A");
}

TEST(DiffXmlLimits, TruncatedDocumentsFailCleanly) {
  const char *Doc = "<cfg a=\"1\"><p w=\"2\"><t/></p></cfg>";
  std::string Full(Doc);
  for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
    std::string Prefix = Full.substr(0, Cut);
    Result<xml::NodePtr> R = xml::parse(Prefix);
    if (R.ok())
      FAIL() << "truncated prefix parsed: '" << Prefix << "'";
  }
  EXPECT_TRUE(xml::parse(Full).ok());
}

//===----------------------------------------------------------------------===//
// configio round trip: writeXml(parseXml(cfg)) is a byte fixed point.
//===----------------------------------------------------------------------===//

void expectRoundTripFixedPoint(const cfg::Config &C,
                               const std::string &Label) {
  std::string Doc = configio::writeConfigXml(C);
  Result<cfg::Config> Back = configio::parseConfigXml(Doc);
  ASSERT_TRUE(Back.ok()) << Label << ": " << Back.error().message();
  EXPECT_EQ(configio::writeConfigXml(*Back), Doc)
      << Label << ": round trip is not a fixed point";
}

TEST(DiffConfigIo, GeneratorOutputRoundTripsByteExact) {
  Rng R(20260806);
  int Valid = 0, Rejected = 0;
  for (int I = 0; I < 100; ++I) {
    cfg::Config C = gen::adversarialConfig(R);
    if (C.validate()) {
      // Invalid draws (zero-WCET mutants) must be *cleanly* rejected by
      // the parser too — with a structured error, not a crash.
      Result<cfg::Config> Back =
          configio::parseConfigXml(configio::writeConfigXml(C));
      EXPECT_FALSE(Back.ok());
      if (!Back.ok())
        EXPECT_FALSE(Back.error().message().empty());
      ++Rejected;
      continue;
    }
    expectRoundTripFixedPoint(C, "draw " + std::to_string(I));
    ++Valid;
  }
  EXPECT_GT(Valid, 50);
  EXPECT_GT(Rejected, 0);
}

TEST(DiffConfigIo, UnboundPartitionsAndMessagesRoundTrip) {
  cfg::Config C = plantedShrinkSeed();
  C.Partitions[1].Core = -1; // core="unbound" marker in the XML.
  C.Partitions[1].Windows.clear();
  expectRoundTripFixedPoint(C, "unbound");

  Result<cfg::Config> Back =
      configio::parseConfigXml(configio::writeConfigXml(C));
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back->Partitions[1].Core, -1);
  ASSERT_EQ(Back->Messages.size(), 2u);
  EXPECT_EQ(Back->Messages[1].Receiver.Partition, 1);
  EXPECT_EQ(Back->Messages[1].NetDelay, 2);
}

//===----------------------------------------------------------------------===//
// Crash-safe trace sink: an end record on every exit path.
//===----------------------------------------------------------------------===//

std::string lastNonEmptyLine(const std::string &S) {
  size_t End = S.find_last_not_of('\n');
  if (End == std::string::npos)
    return {};
  size_t Start = S.rfind('\n', End);
  return S.substr(Start == std::string::npos ? 0 : Start + 1,
                  End - (Start == std::string::npos ? 0 : Start + 1) + 1);
}

TEST(DiffTraceSink, EndRecordSealsCompletedRuns) {
  Result<core::BuiltModel> Model =
      core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok());
  std::ostringstream OS;
  obs::JsonlSink Sink(OS);
  nsa::SimOptions Options;
  Options.Sink = &Sink;
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult Res = Sim.run(Options);
  ASSERT_EQ(Res.Stop, nsa::StopReason::Completed);

  std::string Last = lastNonEmptyLine(OS.str());
  EXPECT_NE(Last.find("\"k\":\"end\""), std::string::npos) << Last;
  EXPECT_NE(Last.find("completed"), std::string::npos) << Last;
  EXPECT_GT(Sink.linesWritten(), 1u);
}

TEST(DiffTraceSink, EndRecordSealsGuardRailAborts) {
  Result<core::BuiltModel> Model =
      core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok());
  std::ostringstream OS;
  obs::JsonlSink Sink(OS);
  nsa::SimOptions Options;
  Options.Sink = &Sink;
  Options.MaxActions = 3; // Force a mid-run abort.
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult Res = Sim.run(Options);
  ASSERT_EQ(Res.Stop, nsa::StopReason::MaxActions);

  std::string Last = lastNonEmptyLine(OS.str());
  EXPECT_NE(Last.find("\"k\":\"end\""), std::string::npos) << Last;
  EXPECT_NE(Last.find("max-actions"), std::string::npos) << Last;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
