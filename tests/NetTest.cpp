//===- tests/NetTest.cpp - Switched-network delay bound tests ---------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "net/Afdx.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::net;

namespace {

/// Two end systems connected through one switch; 10 bytes/tick links with
/// latency 1 each.
struct StarFixture {
  Topology Net;
  int EsA, EsB, EsC, Sw;

  StarFixture() {
    EsA = Net.addNode("esA", NodeKind::EndSystem);
    EsB = Net.addNode("esB", NodeKind::EndSystem);
    EsC = Net.addNode("esC", NodeKind::EndSystem);
    Sw = Net.addNode("sw", NodeKind::Switch);
    EXPECT_TRUE(Net.addLink(EsA, Sw, 10, 1).ok());
    EXPECT_TRUE(Net.addLink(EsB, Sw, 10, 1).ok());
    EXPECT_TRUE(Net.addLink(EsC, Sw, 10, 1).ok());
  }
};

} // namespace

TEST(Afdx, SingleVlDelayIsSerializationPlusLatency) {
  StarFixture F;
  // 100-byte frames over 10 bytes/tick: 10 ticks serialization per hop.
  auto Vl = F.Net.addVirtualLink({F.EsA, F.Sw, F.EsB}, 100, 50);
  ASSERT_TRUE(Vl.ok()) << Vl.error().message();
  auto D = F.Net.worstCaseDelay(*Vl);
  ASSERT_TRUE(D.ok());
  // Two hops: (10 + 1) + (10 + 1).
  EXPECT_EQ(*D, 22);
}

TEST(Afdx, InterferenceAddsOneFramePerCompetingVl) {
  StarFixture F;
  auto V1 = F.Net.addVirtualLink({F.EsA, F.Sw, F.EsB}, 100, 50);
  ASSERT_TRUE(V1.ok());
  // A competing VL from esC to esB shares only the sw->esB port.
  auto V2 = F.Net.addVirtualLink({F.EsC, F.Sw, F.EsB}, 50, 50);
  ASSERT_TRUE(V2.ok());

  auto D1 = F.Net.worstCaseDelay(*V1);
  ASSERT_TRUE(D1.ok());
  // 22 + V2's frame on the shared port: ceil(50/10) = 5.
  EXPECT_EQ(*D1, 27);

  auto D2 = F.Net.worstCaseDelay(*V2);
  ASSERT_TRUE(D2.ok());
  // (5+1) + (5+1) + V1's 10-tick frame on the shared port.
  EXPECT_EQ(*D2, 22);
}

TEST(Afdx, OppositeDirectionsDoNotInterfere) {
  StarFixture F;
  auto V1 = F.Net.addVirtualLink({F.EsA, F.Sw, F.EsB}, 100, 50);
  auto V2 = F.Net.addVirtualLink({F.EsB, F.Sw, F.EsA}, 100, 50);
  ASSERT_TRUE(V1.ok());
  ASSERT_TRUE(V2.ok());
  // Full-duplex links: reverse traffic shares no directed port.
  EXPECT_EQ(*F.Net.worstCaseDelay(*V1), 22);
  EXPECT_EQ(*F.Net.worstCaseDelay(*V2), 22);
}

TEST(Afdx, RouteFindsFewestHops) {
  // esA - sw1 - sw2 - esB, plus a longer detour sw1 - sw3 - sw2.
  Topology Net;
  int EsA = Net.addNode("esA", NodeKind::EndSystem);
  int EsB = Net.addNode("esB", NodeKind::EndSystem);
  int Sw1 = Net.addNode("sw1", NodeKind::Switch);
  int Sw2 = Net.addNode("sw2", NodeKind::Switch);
  int Sw3 = Net.addNode("sw3", NodeKind::Switch);
  ASSERT_TRUE(Net.addLink(EsA, Sw1, 10, 1).ok());
  ASSERT_TRUE(Net.addLink(Sw1, Sw2, 10, 1).ok());
  ASSERT_TRUE(Net.addLink(Sw2, EsB, 10, 1).ok());
  ASSERT_TRUE(Net.addLink(Sw1, Sw3, 10, 1).ok());
  ASSERT_TRUE(Net.addLink(Sw3, Sw2, 10, 1).ok());
  auto Vl = Net.routeVirtualLink(EsA, EsB, 10, 100);
  ASSERT_TRUE(Vl.ok()) << Vl.error().message();
  // Three hops of (1 + 1) each.
  EXPECT_EQ(*Net.worstCaseDelay(*Vl), 6);
}

TEST(Afdx, ValidatesRoutesAndParameters) {
  StarFixture F;
  // Must start/end at end systems.
  EXPECT_FALSE(F.Net.addVirtualLink({F.Sw, F.EsA}, 10, 10).ok());
  // Intermediate hops must be switches.
  EXPECT_FALSE(
      F.Net.addVirtualLink({F.EsA, F.EsB, F.EsC}, 10, 10).ok());
  // Links must exist.
  Topology Net2;
  int A = Net2.addNode("a", NodeKind::EndSystem);
  int B = Net2.addNode("b", NodeKind::EndSystem);
  EXPECT_FALSE(Net2.addVirtualLink({A, B}, 10, 10).ok());
  EXPECT_FALSE(Net2.routeVirtualLink(A, B, 10, 10).ok());
  // Parameter validation.
  EXPECT_FALSE(F.Net.addLink(F.EsA, F.EsA, 10, 1).ok());
  EXPECT_FALSE(F.Net.addLink(F.EsA, F.Sw, 0, 1).ok());
}

TEST(Afdx, FeedsMessageDelaysIntoTheModel) {
  // producerConsumer's message gets its NetDelay from the network bound;
  // the receiver's ready time must move accordingly.
  StarFixture F;
  auto Vl = F.Net.addVirtualLink({F.EsA, F.Sw, F.EsB}, 60, 50);
  ASSERT_TRUE(Vl.ok());
  // ceil(60/10)+1 per hop = 7+7 = 14.
  ASSERT_EQ(*F.Net.worstCaseDelay(*Vl), 14);

  cfg::Config C = testcfg::producerConsumer();
  C.Partitions[1].Tasks[0].Period = 40; // Make room for the delay.
  C.Partitions[1].Tasks[0].Deadline = 40;
  C.Partitions[0].Tasks[0].Period = 40;
  C.Partitions[0].Tasks[0].Deadline = 40;
  C.Partitions[0].Windows[0] = {0, 40};
  C.Partitions[1].Windows[0] = {0, 40};
  ASSERT_FALSE(
      net::computeMessageDelays(C, F.Net, {*Vl}).isFailure());
  EXPECT_EQ(C.Messages[0].NetDelay, 14);

  auto Out = analysis::analyzeConfiguration(C);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  // Producer finishes at 4; delivery at 4 + 14 = 18.
  const analysis::JobStats *Cons = nullptr;
  for (const analysis::JobStats &J : Out->Analysis.Jobs)
    if (J.TaskGid == 1)
      Cons = &J;
  ASSERT_TRUE(Cons);
  EXPECT_EQ(Cons->ReadyTime, 18);
}

TEST(Afdx, MismatchedMappingIsRejected) {
  StarFixture F;
  cfg::Config C = testcfg::producerConsumer();
  EXPECT_TRUE(net::computeMessageDelays(C, F.Net, {}).isFailure());
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
