//===- tests/ModelArenaTest.cpp - Shape-keyed arena contracts -------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// analysis::ModelArena invariants: one slot per shape (a duplicate-shape
// emplace replaces in place instead of shadowing — find() must never
// return a stale slot), LRU eviction at capacity, and find() refreshing
// the use stamp.
//
//===----------------------------------------------------------------------===//

#include "analysis/ModelArena.h"

#include "analysis/Sensitivity.h"
#include "config/Fingerprint.h"
#include "core/InstanceBuilder.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;

namespace {

core::BuiltModel build(const cfg::Config &C) {
  Result<core::BuiltModel> M = core::buildModel(C);
  EXPECT_TRUE(M.ok()) << (M.ok() ? "" : M.error().message());
  return std::move(*M);
}

TEST(ModelArenaTest, DuplicateShapeEmplaceReplacesInPlace) {
  cfg::Config Base = testcfg::twoTasksOneCore();
  // Same shape, different window positions — exactly the collision a
  // sensitivity offset probe or a re-emplace after find() produces.
  cfg::Config Shifted = Base;
  Shifted.Partitions[0].Windows[0] = {2, 20};
  cfg::Fingerprint Shape = cfg::fingerprintShape(Base);
  ASSERT_EQ(Shape, cfg::fingerprintShape(Shifted));

  analysis::ModelArena Arena(4);
  analysis::ModelArena::Slot *First = Arena.emplace(Shape, build(Base));
  ASSERT_NE(First, nullptr);
  ASSERT_EQ(Arena.size(), 1u);

  analysis::ModelArena::Slot *Second = Arena.emplace(Shape, build(Shifted));
  ASSERT_NE(Second, nullptr);
  // One slot per shape: the second emplace replaced the first slot's
  // contents (same node — std::list storage never moves) instead of
  // appending a shadowing duplicate.
  EXPECT_EQ(Arena.size(), 1u);
  EXPECT_EQ(Second, First);
  EXPECT_EQ(Second->Model.Config.Partitions[0].Windows[0].Start, 2);
  // find() resolves to the replaced slot, never a stale one.
  EXPECT_EQ(Arena.find(Shape), Second);
  EXPECT_NE(Second->Sim, nullptr);
}

TEST(ModelArenaTest, EvictsLeastRecentlyUsedAtCapacity) {
  cfg::Config A = testcfg::twoTasksOneCore();
  cfg::Config B = testcfg::twoPartitionsWindows();
  cfg::Config C = testcfg::preemptionShowcase();
  C.Partitions[0].Tasks[0].Priority = 7; // distinct shape from A
  cfg::Fingerprint SA = cfg::fingerprintShape(A);
  cfg::Fingerprint SB = cfg::fingerprintShape(B);
  cfg::Fingerprint SC = cfg::fingerprintShape(C);
  ASSERT_NE(SA, SB);
  ASSERT_NE(SA, SC);
  ASSERT_NE(SB, SC);

  analysis::ModelArena Arena(2);
  ASSERT_NE(Arena.emplace(SA, build(A)), nullptr);
  ASSERT_NE(Arena.emplace(SB, build(B)), nullptr);
  ASSERT_EQ(Arena.size(), 2u);

  // Touch A so B becomes the LRU slot, then insert a third shape.
  ASSERT_NE(Arena.find(SA), nullptr);
  ASSERT_NE(Arena.emplace(SC, build(C)), nullptr);
  EXPECT_EQ(Arena.size(), 2u);
  EXPECT_NE(Arena.find(SA), nullptr);
  EXPECT_EQ(Arena.find(SB), nullptr);
  EXPECT_NE(Arena.find(SC), nullptr);
}

TEST(ModelArenaTest, DuplicateEmplaceDoesNotEvictOthers) {
  cfg::Config A = testcfg::twoTasksOneCore();
  cfg::Config B = testcfg::twoPartitionsWindows();
  cfg::Fingerprint SA = cfg::fingerprintShape(A);
  cfg::Fingerprint SB = cfg::fingerprintShape(B);

  analysis::ModelArena Arena(2);
  ASSERT_NE(Arena.emplace(SA, build(A)), nullptr);
  ASSERT_NE(Arena.emplace(SB, build(B)), nullptr);
  // Re-emplacing an existing shape at capacity is a replace, not an
  // insert — nothing may be evicted to make room.
  cfg::Config Shifted = analysis::withWindowShift(A, 0, 0);
  ASSERT_NE(Arena.emplace(SA, build(Shifted)), nullptr);
  EXPECT_EQ(Arena.size(), 2u);
  EXPECT_NE(Arena.find(SA), nullptr);
  EXPECT_NE(Arena.find(SB), nullptr);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
