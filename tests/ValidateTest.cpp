//===- tests/ValidateTest.cpp - Structural validation and trace XML ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "configio/TraceXml.h"
#include "core/InstanceBuilder.h"
#include "analysis/Analyzer.h"
#include "sa/NetworkBuilder.h"
#include "sa/Template.h"
#include "sa/Validate.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::sa;

namespace {

Result<std::unique_ptr<Network>>
build(const std::string &Globals,
      const std::function<void(TemplateBuilder &)> &Define) {
  NetworkBuilder NB;
  if (Error E = NB.addGlobals(Globals))
    return E;
  TemplateBuilder TB("T", NB.globalDecls());
  Define(TB);
  auto T = TB.build();
  if (!T.ok())
    return T.takeError();
  if (auto R = NB.addInstance(**T, "t", {}); !R.ok())
    return R.takeError();
  return NB.finish();
}

bool hasFinding(const std::vector<Finding> &Fs, const std::string &Piece,
                FindingSeverity Sev) {
  for (const Finding &F : Fs)
    if (F.Severity == Sev && F.Message.find(Piece) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(Validate, CleanLibraryModelsHaveNoErrors) {
  auto Model = core::buildModel(testcfg::producerConsumer());
  ASSERT_TRUE(Model.ok());
  std::vector<Finding> Fs = validateNetwork(*Model->Net);
  for (const Finding &F : Fs)
    EXPECT_NE(F.Severity, FindingSeverity::Error)
        << F.Automaton << ": " << F.Message;
  EXPECT_FALSE(checkNetwork(*Model->Net).isFailure());
}

TEST(Validate, FlagsUnreachableLocations) {
  auto Net = build("int x;", [](TemplateBuilder &TB) {
    TB.location("A").location("Orphan").initial("A");
  });
  ASSERT_TRUE(Net.ok());
  EXPECT_TRUE(hasFinding(validateNetwork(**Net), "unreachable",
                         FindingSeverity::Warning));
}

TEST(Validate, FlagsDeadEndCommittedLocations) {
  auto Net = build("int x;", [](TemplateBuilder &TB) {
    TB.location("A").committed("C").initial("A").edge("A", "C", {});
  });
  ASSERT_TRUE(Net.ok());
  EXPECT_TRUE(hasFinding(validateNetwork(**Net), "no outgoing",
                         FindingSeverity::Error));
  EXPECT_TRUE(checkNetwork(**Net).isFailure());
}

TEST(Validate, FlagsSenderWithoutReceiver) {
  auto Net = build("chan lonely;", [](TemplateBuilder &TB) {
    TB.location("A").location("B").initial("A").edge(
        "A", "B", {.Sync = "lonely!"});
  });
  ASSERT_TRUE(Net.ok());
  EXPECT_TRUE(hasFinding(validateNetwork(**Net), "no receiver",
                         FindingSeverity::Error));
}

TEST(Validate, BroadcastSendersNeedNoReceivers) {
  auto Net = build("broadcast chan shout;", [](TemplateBuilder &TB) {
    TB.location("A").location("B").initial("A").edge(
        "A", "B", {.Sync = "shout!"});
  });
  ASSERT_TRUE(Net.ok());
  EXPECT_FALSE(checkNetwork(**Net).isFailure());
}

TEST(Validate, WarnsOnReceiveOnlyCommittedLocations) {
  auto Net = build("chan c;", [](TemplateBuilder &TB) {
    TB.location("A")
        .committed("W")
        .location("B")
        .initial("A")
        .edge("A", "W", {})
        .edge("W", "B", {.Sync = "c?"})
        .edge("B", "A", {.Sync = "c!"}); // Keeps the channel balanced.
  });
  ASSERT_TRUE(Net.ok());
  EXPECT_TRUE(hasFinding(validateNetwork(**Net), "receive actions",
                         FindingSeverity::Warning));
}

//===----------------------------------------------------------------------===//
// Trace XML
//===----------------------------------------------------------------------===//

TEST(TraceXml, RoundTripsRealTraces) {
  auto Out = analysis::analyzeConfiguration(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Out.ok());
  std::string Xml = configio::writeTraceXml(
      "two-tasks", Out->Model.Config.hyperperiod(), Out->Trace);
  auto Back = configio::parseTraceXml(Xml);
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  EXPECT_EQ(Back->ConfigName, "two-tasks");
  EXPECT_EQ(Back->Hyperperiod, 20);
  ASSERT_EQ(Back->Trace.size(), Out->Trace.size());
  for (size_t I = 0; I < Out->Trace.size(); ++I) {
    EXPECT_EQ(Back->Trace[I].Type, Out->Trace[I].Type);
    EXPECT_EQ(Back->Trace[I].TaskGid, Out->Trace[I].TaskGid);
    EXPECT_EQ(Back->Trace[I].Time, Out->Trace[I].Time);
  }

  // A parsed trace analyzes identically: the scheduling-tool side of the
  // Fig. 3 loop.
  analysis::AnalysisResult FromXml =
      analysis::analyzeTrace(Out->Model.Config, Back->Trace);
  EXPECT_TRUE(
      analysis::jobTracesEquivalent(Out->Analysis, FromXml));
}

TEST(TraceXml, RejectsMalformedDocuments) {
  EXPECT_FALSE(configio::parseTraceXml("<nottrace/>").ok());
  EXPECT_FALSE(configio::parseTraceXml(
                   "<trace hyperperiod=\"x\"/>")
                   .ok());
  EXPECT_FALSE(configio::parseTraceXml(
                   "<trace hyperperiod=\"10\">"
                   "<event t=\"1\" type=\"NOPE\" task=\"0\"/></trace>")
                   .ok());
  EXPECT_FALSE(configio::parseTraceXml(
                   "<trace hyperperiod=\"10\">"
                   "<event type=\"EX\" task=\"0\"/></trace>")
                   .ok());
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
