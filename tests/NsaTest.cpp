//===- tests/NsaTest.cpp - NSA engine unit tests ---------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "nsa/Simulator.h"
#include "sa/NetworkBuilder.h"
#include "sa/Template.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::sa;
using namespace swa::nsa;

namespace {

Result<std::unique_ptr<Network>>
buildTicker(int64_t Period, int64_t Horizon) {
  NetworkBuilder NB;
  Error E = NB.addGlobals("int count = 0; broadcast chan tick;");
  if (E)
    return E;
  TemplateBuilder TB("Ticker", NB.globalDecls());
  TB.params("int period")
      .decls("clock x;")
      .location("Wait", "x <= period")
      .initial("Wait")
      .edge("Wait", "Wait",
            {.Guard = "x >= period", .Sync = "tick!",
             .Update = "count = count + 1, x = 0"});
  auto T = TB.build();
  if (!T.ok())
    return T.takeError();
  auto A = NB.addInstance(**T, "ticker", {{"period", {Period}}});
  if (!A.ok())
    return A.takeError();
  auto Net = NB.finish();
  if (!Net.ok())
    return Net;
  (*Net)->Meta["horizon"] = Horizon;
  return Net;
}

} // namespace

TEST(Simulator, PeriodicTicker) {
  auto Net = buildTicker(10, 100);
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.HorizonReached);
  // Ticks at t = 10, 20, ..., 100: the horizon instant itself still fires
  // (deadline events at the hyperperiod boundary belong to the window).
  ASSERT_EQ(R.Events.size(), 10u);
  EXPECT_EQ(R.Events.front().Time, 10);
  EXPECT_EQ(R.Events.back().Time, 100);
  int Slot = (*Net)->slotOf("count");
  ASSERT_GE(Slot, 0);
  EXPECT_EQ(R.Final.Store[static_cast<size_t>(Slot)], 10);
  EXPECT_EQ(R.Final.Now, 100);
}

TEST(Simulator, BinaryRendezvousTransfersData) {
  NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("int sent = 0; int got = 0; chan handoff;")
                   .isFailure());

  TemplateBuilder PB("Producer", NB.globalDecls());
  PB.decls("clock x;")
      .location("Idle", "x <= 5")
      .location("Done")
      .initial("Idle")
      .edge("Idle", "Done",
            {.Guard = "x >= 5", .Sync = "handoff!", .Update = "sent = 42"});
  auto Prod = PB.build();
  ASSERT_TRUE(Prod.ok()) << Prod.error().message();

  TemplateBuilder CB("Consumer", NB.globalDecls());
  CB.location("Wait").location("Got").initial("Wait").edge(
      "Wait", "Got", {.Sync = "handoff?", .Update = "got = sent + 1"});
  auto Cons = CB.build();
  ASSERT_TRUE(Cons.ok()) << Cons.error().message();

  ASSERT_TRUE(NB.addInstance(**Prod, "p", {}).ok());
  ASSERT_TRUE(NB.addInstance(**Cons, "c", {}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 100;

  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Events.size(), 1u);
  EXPECT_EQ(R.Events[0].Time, 5);
  ASSERT_EQ(R.Events[0].Receivers.size(), 1u);
  // Sender update runs before receiver update.
  EXPECT_EQ(R.Final.Store[static_cast<size_t>((*Net)->slotOf("got"))], 43);
}

TEST(Simulator, BinarySendBlocksWithoutPartner) {
  NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("chan never;").isFailure());
  TemplateBuilder TB("Lonely", NB.globalDecls());
  TB.location("A").location("B").initial("A").edge("A", "B",
                                                   {.Sync = "never!"});
  auto T = TB.build();
  ASSERT_TRUE(T.ok()) << T.error().message();
  ASSERT_TRUE(NB.addInstance(**T, "l", {}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 10;

  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Events.empty());
  EXPECT_EQ(R.Final.Locs[0], 0); // Still in A.
}

TEST(Simulator, BroadcastReachesAllEnabledReceivers) {
  NetworkBuilder NB;
  ASSERT_FALSE(
      NB.addGlobals("int hits = 0; broadcast chan flash;").isFailure());

  TemplateBuilder SB("Source", NB.globalDecls());
  SB.decls("clock x;")
      .location("S", "x <= 3")
      .location("T")
      .initial("S")
      .edge("S", "T", {.Guard = "x >= 3", .Sync = "flash!"});
  auto Src = SB.build();
  ASSERT_TRUE(Src.ok()) << Src.error().message();

  TemplateBuilder RB("Sink", NB.globalDecls());
  RB.params("int armed")
      .location("W")
      .location("H")
      .initial("W")
      .edge("W", "H",
            {.Guard = "armed == 1", .Sync = "flash?",
             .Update = "hits = hits + 1"});
  auto Sink = RB.build();
  ASSERT_TRUE(Sink.ok()) << Sink.error().message();

  ASSERT_TRUE(NB.addInstance(**Src, "src", {}).ok());
  ASSERT_TRUE(NB.addInstance(**Sink, "s1", {{"armed", {1}}}).ok());
  ASSERT_TRUE(NB.addInstance(**Sink, "s2", {{"armed", {0}}}).ok());
  ASSERT_TRUE(NB.addInstance(**Sink, "s3", {{"armed", {1}}}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 10;

  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Events.size(), 1u);
  EXPECT_EQ(R.Events[0].Receivers.size(), 2u); // s2 is not armed.
  EXPECT_EQ(R.Final.Store[static_cast<size_t>((*Net)->slotOf("hits"))], 2);
}

TEST(Simulator, StopwatchAccumulatesOnlyWhileRunning) {
  // A "job" runs 3 ticks, is preempted for 4 ticks, then runs 2 more; its
  // execution stopwatch must read 5 at completion time 9.
  NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("int running = 1; int done_at = -1;"
                             "int exec_val = -1;")
                   .isFailure());

  TemplateBuilder JB("Job", NB.globalDecls());
  JB.decls("clock e; clock t;")
      .location("Run", "e <= 5 && e' == running")
      .location("Done")
      .initial("Run")
      .edge("Run", "Done",
            {.Guard = "e >= 5", .Update = "done_at = 1"});
  auto Job = JB.build();
  ASSERT_TRUE(Job.ok()) << Job.error().message();

  // A controller automaton toggles `running` off at t=3 and on at t=7.
  TemplateBuilder CB("Ctl", NB.globalDecls());
  CB.decls("clock c;")
      .location("Phase1", "c <= 3")
      .location("Phase2", "c <= 7")
      .location("End")
      .initial("Phase1")
      .edge("Phase1", "Phase2", {.Guard = "c >= 3", .Update = "running = 0"})
      .edge("Phase2", "End", {.Guard = "c >= 7", .Update = "running = 1"});
  auto Ctl = CB.build();
  ASSERT_TRUE(Ctl.ok()) << Ctl.error().message();

  ASSERT_TRUE(NB.addInstance(**Job, "job", {}).ok());
  ASSERT_TRUE(NB.addInstance(**Ctl, "ctl", {}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 50;

  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  // e runs in [0,3] (3 ticks), stops in [3,7], runs in [7,9] (2 ticks).
  // The job completes when e reaches 5, i.e. at model time 9.
  int DoneSlot = (*Net)->slotOf("done_at");
  EXPECT_EQ(R.Final.Store[static_cast<size_t>(DoneSlot)], 1);
  // Clock t ran unrestricted since 0; at completion the state kept
  // evolving until the horizon, so check via the final clock delta:
  // e stopped counting after Done (no rate condition there, it runs), so
  // instead verify through location history: job must be in Done.
  EXPECT_EQ(R.Final.Locs[0], 1);
}

TEST(Simulator, CommittedLocationsRunFirstAndSuppressDelay) {
  NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("int order[4]; int n = 0;").isFailure());

  // An initializer chain through two committed locations must complete at
  // time 0 before the clock-driven automaton can act.
  TemplateBuilder IB("Init", NB.globalDecls());
  IB.committed("C0")
      .committed("C1")
      .location("Rest")
      .initial("C0")
      .edge("C0", "C1", {.Update = "order[n] = 1, n = n + 1"})
      .edge("C1", "Rest", {.Update = "order[n] = 2, n = n + 1"});
  auto Init = IB.build();
  ASSERT_TRUE(Init.ok()) << Init.error().message();

  TemplateBuilder WB("Worker", NB.globalDecls());
  WB.decls("clock x;")
      .location("W") // No invariant: can idle forever.
      .location("D")
      .initial("W")
      .edge("W", "D", {.Guard = "x >= 0", .Update = "order[n] = 3, n = n + 1"});
  auto Work = WB.build();
  ASSERT_TRUE(Work.ok()) << Work.error().message();

  // Add the worker FIRST so naive index order would run it before the
  // committed chain; committed semantics must win.
  ASSERT_TRUE(NB.addInstance(**Work, "w", {}).ok());
  ASSERT_TRUE(NB.addInstance(**Init, "i", {}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 5;

  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  int Base = (*Net)->slotOf("order");
  EXPECT_EQ(R.Final.Store[static_cast<size_t>(Base) + 0], 1);
  EXPECT_EQ(R.Final.Store[static_cast<size_t>(Base) + 1], 2);
  EXPECT_EQ(R.Final.Store[static_cast<size_t>(Base) + 2], 3);
}

TEST(Simulator, SelectChoosesLowestDeterministically) {
  NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("int picked = -1;").isFailure());
  TemplateBuilder TB("Picker", NB.globalDecls());
  TB.location("A").location("B").initial("A").edge(
      "A", "B", {.Select = "i : int[2, 9]", .Guard = "i % 3 == 0",
                 .Update = "picked = i"});
  auto T = TB.build();
  ASSERT_TRUE(T.ok()) << T.error().message();
  ASSERT_TRUE(NB.addInstance(**T, "p", {}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 1;

  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Final.Store[static_cast<size_t>((*Net)->slotOf("picked"))],
            3);
}

TEST(Simulator, QuiescentNetworkTerminates) {
  NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("int x;").isFailure());
  TemplateBuilder TB("Still", NB.globalDecls());
  TB.location("Only").initial("Only");
  auto T = TB.build();
  ASSERT_TRUE(T.ok());
  ASSERT_TRUE(NB.addInstance(**T, "s", {}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  // No horizon: the network has no pending clock bound, so the run reports
  // quiescence rather than spinning.
  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Quiescent);
}

TEST(Simulator, VariableWatcherWakesBlockedAutomaton) {
  // B waits on a data guard that only A's update can satisfy; no channels
  // involved, so the wake must come from the store watch list.
  NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("int gate = 0; int seen_at = -1;")
                   .isFailure());

  TemplateBuilder AB("Opener", NB.globalDecls());
  AB.decls("clock x;")
      .location("Wait", "x <= 7")
      .location("Done")
      .initial("Wait")
      .edge("Wait", "Done", {.Guard = "x >= 7", .Update = "gate = 1"});
  auto A = AB.build();
  ASSERT_TRUE(A.ok()) << A.error().message();

  TemplateBuilder BB("Watcher", NB.globalDecls());
  BB.decls("clock y;")
      .location("Blocked")
      .location("Through")
      .initial("Blocked")
      .edge("Blocked", "Through",
            {.Guard = "gate == 1", .Update = "seen_at = 1"});
  auto B = BB.build();
  ASSERT_TRUE(B.ok()) << B.error().message();

  ASSERT_TRUE(NB.addInstance(**B, "b", {}).ok());
  ASSERT_TRUE(NB.addInstance(**A, "a", {}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 20;

  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Final.Locs[0], 1); // b reached Through.
  EXPECT_EQ(
      R.Final.Store[static_cast<size_t>((*Net)->slotOf("seen_at"))], 1);
}

TEST(Simulator, RandomizedOrderYieldsEquivalentTraces) {
  // Several independent tickers firing at the same instants: any
  // interleaving must produce the same set of synchronization events.
  auto Build = []() {
    NetworkBuilder NB;
    EXPECT_FALSE(
        NB.addGlobals("int c0; int c1; int c2; broadcast chan t0;"
                      "broadcast chan t1; broadcast chan t2;")
            .isFailure());
    for (int I = 0; I < 3; ++I) {
      TemplateBuilder TB("Tk" + std::to_string(I), NB.globalDecls());
      std::string Chan = "t" + std::to_string(I);
      std::string Cnt = "c" + std::to_string(I);
      TB.params("int period")
          .decls("clock x;")
          .location("W", "x <= period")
          .initial("W")
          .edge("W", "W",
                {.Guard = "x >= period", .Sync = Chan + "!",
                 .Update = Cnt + " = " + Cnt + " + 1, x = 0"});
      auto T = TB.build();
      EXPECT_TRUE(T.ok()) << T.error().message();
      EXPECT_TRUE(
          NB.addInstance(**T, "tk" + std::to_string(I), {{"period", {4}}})
              .ok());
    }
    auto Net = NB.finish();
    EXPECT_TRUE(Net.ok());
    (*Net)->Meta["horizon"] = 40;
    return Net.takeValue();
  };

  auto Reference = Build();
  Simulator RefSim(*Reference);
  SimResult RefRun = RefSim.run();
  ASSERT_TRUE(RefRun.ok()) << RefRun.Error;
  ASSERT_FALSE(RefRun.Events.empty());

  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    auto Net = Build();
    Simulator Sim(*Net);
    Rng R(Seed);
    SimOptions Opts;
    Opts.RandomOrder = &R;
    SimResult Run = Sim.run(Opts);
    ASSERT_TRUE(Run.ok()) << Run.Error;
    EXPECT_TRUE(syncTracesEqual(RefRun.Events, Run.Events))
        << "seed " << Seed;
  }
}

TEST(Simulator, ResetRerunIsByteIdentical) {
  // One Simulator, run repeatedly: every rerun must reproduce the first
  // run exactly — same events field by field, same counters, same final
  // state. This is what lets the config search reuse a simulator (and its
  // allocations) across candidate evaluations.
  auto Net = buildTicker(7, 70);
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  Simulator Sim(**Net);
  SimResult First = Sim.run();
  ASSERT_TRUE(First.ok()) << First.Error;
  ASSERT_FALSE(First.Events.empty());

  for (int Rerun = 0; Rerun < 3; ++Rerun) {
    SimResult Again = Sim.run();
    ASSERT_TRUE(Again.ok()) << Again.Error;
    EXPECT_EQ(Again.ActionCount, First.ActionCount);
    EXPECT_EQ(Again.DelayCount, First.DelayCount);
    EXPECT_EQ(Again.HorizonReached, First.HorizonReached);
    EXPECT_EQ(Again.Quiescent, First.Quiescent);
    ASSERT_EQ(Again.Events.size(), First.Events.size());
    for (size_t I = 0; I < First.Events.size(); ++I) {
      const Event &A = First.Events[I];
      const Event &B = Again.Events[I];
      EXPECT_EQ(A.Time, B.Time) << "event " << I;
      EXPECT_EQ(A.Channel, B.Channel) << "event " << I;
      EXPECT_EQ(A.Initiator.Automaton, B.Initiator.Automaton);
      EXPECT_EQ(A.Initiator.Edge, B.Initiator.Edge);
      ASSERT_EQ(A.Receivers.size(), B.Receivers.size());
      for (size_t RI = 0; RI < A.Receivers.size(); ++RI) {
        EXPECT_EQ(A.Receivers[RI].Automaton, B.Receivers[RI].Automaton);
        EXPECT_EQ(A.Receivers[RI].Edge, B.Receivers[RI].Edge);
      }
    }
    EXPECT_EQ(Again.Final.Now, First.Final.Now);
    EXPECT_EQ(Again.Final.Locs, First.Final.Locs);
    EXPECT_EQ(Again.Final.Clocks, First.Final.Clocks);
    EXPECT_EQ(Again.Final.Store, First.Final.Store);
  }
}

TEST(Simulator, RecordTraceOffSkipsEventsOnly) {
  // Turning trace recording off must change nothing but Events: same
  // action/delay counts and the same final state.
  auto Net = buildTicker(7, 70);
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  Simulator Sim(**Net);
  SimResult Full = Sim.run();
  ASSERT_TRUE(Full.ok()) << Full.Error;

  SimOptions NoTrace;
  NoTrace.RecordTrace = false;
  SimResult Bare = Sim.run(NoTrace);
  ASSERT_TRUE(Bare.ok()) << Bare.Error;
  EXPECT_TRUE(Bare.Events.empty());
  EXPECT_EQ(Bare.ActionCount, Full.ActionCount);
  EXPECT_EQ(Bare.DelayCount, Full.DelayCount);
  EXPECT_EQ(Bare.Final.Now, Full.Final.Now);
  EXPECT_EQ(Bare.Final.Locs, Full.Final.Locs);
  EXPECT_EQ(Bare.Final.Clocks, Full.Final.Clocks);
  EXPECT_EQ(Bare.Final.Store, Full.Final.Store);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
