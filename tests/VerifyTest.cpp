//===- tests/VerifyTest.cpp - Observer verification tests ------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "core/InstanceBuilder.h"
#include "nsa/Simulator.h"
#include "tests/TestConfigs.h"
#include "verify/Observers.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::verify;

TEST(Observers, R1SingleExecutionHoldsForAllSchedulers) {
  for (cfg::SchedulerKind K :
       {cfg::SchedulerKind::FPPS, cfg::SchedulerKind::FPNPS,
        cfg::SchedulerKind::EDF}) {
    auto Run = verifyTsSingleExecution(K, /*Ticks=*/5);
    ASSERT_TRUE(Run.ok()) << Run.error().message();
    EXPECT_TRUE(Run->Holds) << cfg::schedulerKindName(K);
    EXPECT_GT(Run->Mc.StatesExplored, 100u);
  }
}

TEST(Observers, R6WindowConfinementHolds) {
  auto Run = verifyTsWindowConfinement(cfg::SchedulerKind::FPPS, 5);
  ASSERT_TRUE(Run.ok()) << Run.error().message();
  EXPECT_TRUE(Run->Holds);
}

TEST(Observers, R2WcetAccountingHolds) {
  auto Run = verifyTaskWcet(/*Wcet=*/2, /*Deadline=*/5, /*Ticks=*/8);
  ASSERT_TRUE(Run.ok()) << Run.error().message();
  EXPECT_TRUE(Run->Holds);
}

TEST(Observers, R7NoLateExecutionHolds) {
  auto Run = verifyTaskNoLateExecution(2, 4, 8);
  ASSERT_TRUE(Run.ok()) << Run.error().message();
  EXPECT_TRUE(Run->Holds);
}

TEST(Observers, R5WaitsForDataHolds) {
  auto Run = verifyTaskWaitsForData(2, 5, 8);
  ASSERT_TRUE(Run.ok()) << Run.error().message();
  EXPECT_TRUE(Run->Holds);
}

TEST(Observers, R4LinkDelayExactForSeveralDelays) {
  for (int64_t Delay : {0, 1, 2, 4}) {
    auto Run = verifyLinkExactDelay(Delay, 5);
    ASSERT_TRUE(Run.ok()) << Run.error().message();
    EXPECT_TRUE(Run->Holds) << "delay " << Delay;
  }
}

TEST(Observers, BrokenSchedulerIsRejected) {
  // Mutation control: the observers must be able to fail.
  auto Run = verifyBrokenTsIsCaught(5);
  ASSERT_TRUE(Run.ok()) << Run.error().message();
  EXPECT_FALSE(Run->Holds);
}

TEST(Observers, FullSuitePasses) {
  auto Suite = verifyComponentLibrary(/*Ticks=*/4);
  ASSERT_TRUE(Suite.ok()) << Suite.error().message();
  ASSERT_FALSE(Suite->empty());
  for (const VerificationOutcome &O : *Suite)
    EXPECT_TRUE(O.Holds) << O.Id << ": " << O.Description;
}

// R8: wakeup/sleep alternate exactly at the configured window boundaries —
// checked on the real core-scheduler automaton via a simulation trace.
TEST(Observers, R8WindowBoundariesExact) {
  cfg::Config C = testcfg::twoPartitionsWindows();
  auto Model = core::buildModel(C);
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;

  // Expected: pA [0,5) and [10,15); pB [5,10) and [15,20).
  struct Evt {
    int64_t Time;
    int Chan;
  };
  std::vector<Evt> Wakes, Sleeps;
  for (const nsa::Event &E : R.Events) {
    // Window closings at t == L belong to this hyperperiod; the wrap's
    // re-openings at t == L belong to the next one.
    if (E.Channel >= Model->WakeupBase &&
        E.Channel < Model->WakeupBase + 2 && E.Time < 20)
      Wakes.push_back({E.Time, E.Channel - Model->WakeupBase});
    if (E.Channel >= Model->SleepBase && E.Channel < Model->SleepBase + 2 &&
        E.Time <= 20)
      Sleeps.push_back({E.Time, E.Channel - Model->SleepBase});
  }
  ASSERT_EQ(Wakes.size(), 4u);
  ASSERT_EQ(Sleeps.size(), 4u);
  EXPECT_EQ(Wakes[0].Time, 0);
  EXPECT_EQ(Wakes[0].Chan, 0);
  EXPECT_EQ(Sleeps[0].Time, 5);
  EXPECT_EQ(Sleeps[0].Chan, 0);
  EXPECT_EQ(Wakes[1].Time, 5);
  EXPECT_EQ(Wakes[1].Chan, 1);
  EXPECT_EQ(Sleeps[1].Time, 10);
  EXPECT_EQ(Sleeps[1].Chan, 1);
  EXPECT_EQ(Wakes[2].Time, 10);
  EXPECT_EQ(Wakes[2].Chan, 0);
  EXPECT_EQ(Sleeps[3].Time, 20);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
