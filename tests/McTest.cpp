//===- tests/McTest.cpp - Model checker unit tests --------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "core/InstanceBuilder.h"
#include "gen/BurstModel.h"
#include "gen/Workload.h"
#include "mc/ModelChecker.h"
#include "sa/NetworkBuilder.h"
#include "sa/Template.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::mc;

TEST(ModelChecker, ExploresAllInterleavings) {
  // Two independent automata each taking one internal step at t=0: the
  // state space is the 2x2 product (4 states) regardless of order.
  sa::NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("int a; int b;").isFailure());
  for (int I = 0; I < 2; ++I) {
    sa::TemplateBuilder TB(I == 0 ? "A" : "B", NB.globalDecls());
    TB.location("S").location("T").initial("S").edge(
        "S", "T", {.Update = std::string(I == 0 ? "a" : "b") + " = 1"});
    auto T = TB.build();
    ASSERT_TRUE(T.ok()) << T.error().message();
    ASSERT_TRUE(NB.addInstance(**T, I == 0 ? "a" : "b", {}).ok());
  }
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 1;

  ModelChecker MC(**Net);
  McResult R = MC.explore();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.StatesExplored, 4u);
  EXPECT_EQ(R.DistinctFinalStates, 1u);
}

TEST(ModelChecker, BurstFamilyGrowsByTwoPerJob) {
  // The Table-1 regime: each job contributes one interleavable step, so
  // the lattice has ~2^n states and the ratio between consecutive points
  // is ~2 — the growth rate the paper's Table 1 reports.
  uint64_t Prev = 0;
  for (int N : {6, 7, 8, 9, 10}) {
    auto Net = gen::burstNetwork(N);
    ASSERT_TRUE(Net.ok()) << Net.error().message();
    ModelChecker MC(**Net);
    McResult R = MC.explore();
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.DistinctFinalStates, 1u) << N;
    EXPECT_GT(R.StatesExplored, (1u << N)) << N; // At least the lattice.
    if (Prev != 0) {
      double Ratio =
          static_cast<double>(R.StatesExplored) / static_cast<double>(Prev);
      EXPECT_GT(Ratio, 1.7) << N;
      EXPECT_LT(Ratio, 2.3) << N;
    }
    Prev = R.StatesExplored;
  }
}

TEST(ModelChecker, FullStackInterleavesSeveralStepsPerJob) {
  // The full IMA stack adds ready/dispatch chains per job: exhaustive
  // exploration grows much faster than 2x per job (empirically ~10x) —
  // which is why the paper's single-run approach matters.
  auto M3 = core::buildModel(gen::table1Config(3));
  auto M4 = core::buildModel(gen::table1Config(4));
  ASSERT_TRUE(M3.ok());
  ASSERT_TRUE(M4.ok());
  ModelChecker MC3(*M3->Net), MC4(*M4->Net);
  McResult R3 = MC3.explore();
  McResult R4 = MC4.explore();
  ASSERT_TRUE(R3.ok());
  ASSERT_TRUE(R4.ok());
  EXPECT_EQ(R3.DistinctFinalStates, 1u);
  EXPECT_EQ(R4.DistinctFinalStates, 1u);
  double Ratio =
      static_cast<double>(R4.StatesExplored) /
      static_cast<double>(R3.StatesExplored);
  EXPECT_GT(Ratio, 5.0);
}

TEST(ModelChecker, AgreesWithSimulatorOnVerdicts) {
  // Bad-state reachability (a failure flag set) must match the
  // simulation verdict on both a schedulable and an unschedulable config.
  for (bool Overloaded : {false, true}) {
    cfg::Config C = Overloaded ? testcfg::overloadedOneCore()
                               : testcfg::twoTasksOneCore();
    auto Model = core::buildModel(C);
    ASSERT_TRUE(Model.ok()) << Model.error().message();
    ModelChecker MC(*Model->Net);
    McResult R = MC.explore(
        {}, ModelChecker::storeNonZero(*Model->Net, "is_failed"));
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.PropertyViolated, Overloaded);
  }
}

TEST(ModelChecker, DeterministicModelsHaveOneFinalState) {
  // Even with messages and multiple cores, all interleavings converge:
  // the paper's determinism theorem at the state level.
  auto Model = core::buildModel(testcfg::producerConsumer());
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  ModelChecker MC(*Model->Net);
  McResult R = MC.explore();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.DistinctFinalStates, 1u);
  EXPECT_GT(R.CompleteRuns, 0u);
}

TEST(ModelChecker, CompactVisitedMatchesFullStates) {
  auto Net = gen::burstNetwork(9);
  ASSERT_TRUE(Net.ok());
  ModelChecker MC(**Net);
  McResult Full = MC.explore();
  McOptions Compact;
  Compact.CompactVisited = true;
  ModelChecker MC2(**Net);
  McResult Hashed = MC2.explore(Compact);
  ASSERT_TRUE(Full.ok());
  ASSERT_TRUE(Hashed.ok());
  EXPECT_EQ(Full.StatesExplored, Hashed.StatesExplored);
}

TEST(ModelChecker, SelectBindingsBranchTheSearch) {
  // One edge with a 4-way select writing distinct values: 4 final states.
  sa::NetworkBuilder NB;
  ASSERT_FALSE(NB.addGlobals("int out = -1;").isFailure());
  sa::TemplateBuilder TB("Sel", NB.globalDecls());
  TB.location("S").location("T").initial("S").edge(
      "S", "T", {.Select = "i : int[0, 3]", .Update = "out = i"});
  auto T = TB.build();
  ASSERT_TRUE(T.ok()) << T.error().message();
  ASSERT_TRUE(NB.addInstance(**T, "s", {}).ok());
  auto Net = NB.finish();
  ASSERT_TRUE(Net.ok());
  (*Net)->Meta["horizon"] = 1;

  ModelChecker MC(**Net);
  McResult R = MC.explore();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.DistinctFinalStates, 4u);
}

TEST(ModelChecker, WitnessPathLeadsToTheViolation) {
  // An unschedulable config with witness recording: the counterexample
  // must be non-empty, time-ordered, and end at a state where the
  // property holds... i.e. where is_failed is set.
  auto Model = core::buildModel(testcfg::overloadedOneCore());
  ASSERT_TRUE(Model.ok());
  ModelChecker MC(*Model->Net);
  McOptions Opts;
  Opts.RecordWitness = true;
  McResult R = MC.explore(
      Opts, ModelChecker::storeNonZero(*Model->Net, "is_failed"));
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.PropertyViolated);
  ASSERT_FALSE(R.Witness.empty());
  int64_t Prev = 0;
  for (const WitnessStep &W : R.Witness) {
    EXPECT_GE(W.Time, Prev);
    Prev = W.Time;
    EXPECT_FALSE(W.Action.empty());
  }
  // The last steps happen at the missed deadline (t == 20).
  EXPECT_EQ(R.Witness.back().Time, 20);
  // The violating state matches the predicate.
  bool AnyFailed = false;
  int Base = Model->Net->slotOf("is_failed");
  for (int G = 0; G < 2; ++G)
    AnyFailed |= R.ViolatingState
                     .Store[static_cast<size_t>(Base + G)] != 0;
  EXPECT_TRUE(AnyFailed);
}

TEST(ModelChecker, NoWitnessWhenPropertyHolds) {
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok());
  ModelChecker MC(*Model->Net);
  McOptions Opts;
  Opts.RecordWitness = true;
  McResult R = MC.explore(
      Opts, ModelChecker::storeNonZero(*Model->Net, "is_failed"));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.PropertyViolated);
  EXPECT_TRUE(R.Witness.empty());
}

TEST(ModelChecker, StateBudgetIsEnforced) {
  auto Model = core::buildModel(gen::table1Config(8));
  ASSERT_TRUE(Model.ok());
  ModelChecker MC(*Model->Net);
  McOptions Opts;
  Opts.MaxStates = 10;
  McResult R = MC.explore(Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
