//===- tests/BenchObsSmokeTest.cpp - Bench reporting path smoke test -------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Exercises the machine-readable reporting path the bench harness rides
// on (`bench/run_baseline.sh --report` -> `examples/config_search
// --report-out/--trace-out` -> `bench/compare_bench.py`), but through the
// library APIs, so `ctest -L perf` catches a broken exporter before a
// baseline recording does: a full-observability search must produce a
// Chrome trace with per-candidate and per-component spans and a RunReport
// whose numbers match the SearchResult the search returned.
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "obs/Span.h"
#include "obs/Timer.h"
#include "schedtool/ConfigSearch.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace swa;

namespace {

struct FullObsScope {
  FullObsScope() {
    obs::Registry::global().reset();
    obs::PhaseTree::resetAll();
    obs::resetSpans();
    obs::setEnabled(true);
    obs::setSpansEnabled(true);
  }
  ~FullObsScope() {
    obs::setEnabled(false);
    obs::setSpansEnabled(false);
    obs::Registry::global().reset();
    obs::PhaseTree::resetAll();
    obs::resetSpans();
  }
};

schedtool::SearchProblem smallSearchProblem() {
  gen::IndustrialParams Params;
  Params.Modules = 1;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = 0.5;
  Params.Seed = 11;
  schedtool::SearchProblem Problem;
  Problem.Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Problem.Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }
  Problem.Seed = 11;
  Problem.MaxIterations = 12;
  Problem.Workers = 2;
  return Problem;
}

TEST(BenchObsSmoke, SearchUnderFullObservabilityExportsTraceAndReport) {
  FullObsScope Scope;
  Result<schedtool::SearchResult> Res =
      schedtool::searchConfiguration(smallSearchProblem());
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  ASSERT_GT(Res->ConfigurationsEvaluated, 0);

  // The trace must carry the span taxonomy the profiling walkthrough
  // documents: one "candidate" metadata span per decided candidate and
  // "simulate.*" spans for the work items.
  EXPECT_GT(obs::spanCount(), 0u);
  std::ostringstream Trace;
  obs::writeChromeTrace(Trace);
  const std::string T = Trace.str();
  EXPECT_NE(T.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(T.find("\"candidate\""), std::string::npos);
  EXPECT_NE(T.find("\"simulate."), std::string::npos);
  EXPECT_NE(T.find("\"batch\""), std::string::npos);
  EXPECT_NE(T.find("\"ph\":\"X\""), std::string::npos);

  // The report must agree with the SearchResult the caller prints.
  obs::RunReport Report("config_search");
  schedtool::fillSearchReport(Report, *Res, /*ElapsedSec=*/1.0);
  std::ostringstream OS;
  Report.write(OS);
  const std::string R = OS.str();
  EXPECT_NE(R.find("\"swa_run_report\":1"), std::string::npos);
  EXPECT_NE(R.find("\"candidates.evaluated\":" +
                   std::to_string(Res->ConfigurationsEvaluated)),
            std::string::npos);
  EXPECT_NE(R.find("\"cache.hits\":" + std::to_string(Res->CacheHits)),
            std::string::npos);
  EXPECT_NE(R.find("\"candidates_per_sec\":"), std::string::npos);
  // At least one stop-reason bucket is populated for any decided search.
  EXPECT_NE(R.find("\"stop."), std::string::npos);
}

TEST(BenchObsSmoke, ReportFileRoundTripsThroughDisk) {
  FullObsScope Scope;
  obs::RunReport Report("smoke");
  Report.addCount("alpha", 1);
  std::string Err;
  const std::string Path = ::testing::TempDir() + "swa-smoke-report.json";
  ASSERT_TRUE(Report.writeFile(Path, Err)) << Err;
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_NE(Buf.str().find("\"swa_run_report\":1"), std::string::npos);
  EXPECT_NE(Buf.str().find("\"tool\":\"smoke\""), std::string::npos);
  std::remove(Path.c_str());
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
