//===- tests/ThreadPoolTest.cpp - ThreadPool contract tests ----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Exercises the pool contracts the config search relies on: every index of
// every job runs exactly once even across rapid back-to-back jobs whose
// callables are destroyed as soon as parallelFor returns (a late-scheduled
// worker must never run a stale callable), and an exception thrown by the
// callable is rethrown on the caller after the whole range ran, leaving
// the pool usable.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace swa;

TEST(ThreadPool, RunsEveryIndexOnce) {
  ThreadPool Pool(4);
  const int N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](int I) {
    Hits[static_cast<size_t>(I)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(Hits[static_cast<size_t>(I)].load(), 1) << "index " << I;
}

TEST(ThreadPool, BackToBackJobsNeverRunStaleCallables) {
  // Each round publishes a *distinct temporary* callable that dies when
  // parallelFor returns, then immediately starts the next round. A worker
  // notified for round k but scheduled only after round k finished must
  // not touch round k's callable or steal round k+1's indices under it:
  // every slot of every round must be written with that round's tag.
  ThreadPool Pool(4);
  const int Rounds = 2000;
  const int N = 8;
  std::vector<int> Slots(static_cast<size_t>(N));
  for (int Round = 0; Round < Rounds; ++Round) {
    std::fill(Slots.begin(), Slots.end(), -1);
    Pool.parallelFor(N, [&Slots, Round](int I) {
      Slots[static_cast<size_t>(I)] = Round;
    });
    for (int I = 0; I < N; ++I)
      ASSERT_EQ(Slots[static_cast<size_t>(I)], Round)
          << "round " << Round << " slot " << I;
  }
}

TEST(ThreadPool, RethrowsFirstExceptionAndStaysUsable) {
  ThreadPool Pool(4);
  const int N = 64;
  std::vector<std::atomic<int>> Hits(N);
  bool Caught = false;
  try {
    Pool.parallelFor(N, [&](int I) {
      Hits[static_cast<size_t>(I)].fetch_add(1, std::memory_order_relaxed);
      if (I == 17)
        throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error &E) {
    Caught = true;
    EXPECT_STREQ(E.what(), "boom");
  }
  EXPECT_TRUE(Caught);
  // The throwing item still counted as completed: every index ran.
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(Hits[static_cast<size_t>(I)].load(), 1) << "index " << I;

  // The pool is not poisoned: the next job runs to completion.
  std::atomic<int> Sum{0};
  Pool.parallelFor(N, [&](int I) {
    Sum.fetch_add(I, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), N * (N - 1) / 2);
}

TEST(ThreadPool, SerialPoolPropagatesExceptions) {
  ThreadPool Pool(1);
  EXPECT_THROW(
      Pool.parallelFor(4,
                       [](int I) {
                         if (I == 2)
                           throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
