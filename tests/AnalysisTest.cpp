//===- tests/AnalysisTest.cpp - Criterion, RTA and report tests -------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Report.h"
#include "analysis/Rta.h"
#include "gen/Workload.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::analysis;

//===----------------------------------------------------------------------===//
// Criterion edge cases (hand-built traces)
//===----------------------------------------------------------------------===//

namespace {

core::SystemTrace makeTrace(
    std::initializer_list<std::tuple<core::SysEventType, int, int64_t>>
        Events) {
  core::SystemTrace Out;
  for (const auto &[Type, Gid, Time] : Events)
    Out.push_back({Type, Gid, Time});
  return Out;
}

} // namespace

TEST(Criterion, AcceptsExactWcetWithinDeadline) {
  cfg::Config C = testcfg::twoTasksOneCore(); // t1: C=3 P=10; t2: C=5 P=20.
  core::SystemTrace Trace = makeTrace({
      {core::SysEventType::READY, 0, 0},
      {core::SysEventType::EX, 0, 0},
      {core::SysEventType::FIN, 0, 3},
      {core::SysEventType::READY, 1, 0},
      {core::SysEventType::EX, 1, 3},
      {core::SysEventType::FIN, 1, 8},
      {core::SysEventType::READY, 0, 10},
      {core::SysEventType::EX, 0, 10},
      {core::SysEventType::FIN, 0, 13},
  });
  AnalysisResult R = analyzeTrace(C, Trace);
  EXPECT_TRUE(R.Schedulable) << R.FirstViolation;
  EXPECT_EQ(R.TotalJobs, 3);
}

TEST(Criterion, RejectsUnderrunAndMissingJobs) {
  cfg::Config C = testcfg::twoTasksOneCore();
  // t1 job 0 only executes 2 of 3 ticks; t1 job 1 and t2 produce nothing.
  core::SystemTrace Trace = makeTrace({
      {core::SysEventType::EX, 0, 0},
      {core::SysEventType::PR, 0, 2},
      {core::SysEventType::FIN, 0, 9},
  });
  AnalysisResult R = analyzeTrace(C, Trace);
  EXPECT_FALSE(R.Schedulable);
  EXPECT_EQ(R.MissedJobs, 3);
}

TEST(Criterion, DeadlineBoundaryFinBelongsToPreviousJob) {
  // deadline == period: a FIN exactly at the release boundary must close
  // the previous job, not the new one.
  cfg::Config C = testcfg::twoTasksOneCore();
  core::SysEvent Fin{core::SysEventType::FIN, 0, 10};
  core::SystemTrace Trace = {Fin};
  AnalysisResult R = analyzeTrace(C, Trace);
  const JobStats *J0 = nullptr;
  for (const JobStats &J : R.Jobs)
    if (J.TaskGid == 0 && J.JobIndex == 0)
      J0 = &J;
  ASSERT_TRUE(J0);
  EXPECT_EQ(J0->FinishTime, 10);
}

TEST(Criterion, ZeroLengthIntervalsAreDropped) {
  cfg::Config C = testcfg::twoTasksOneCore();
  core::SystemTrace Trace = makeTrace({
      {core::SysEventType::EX, 0, 5},
      {core::SysEventType::PR, 0, 5}, // Zero-length: dropped.
      {core::SysEventType::EX, 0, 6},
      {core::SysEventType::FIN, 0, 9},
  });
  AnalysisResult R = analyzeTrace(C, Trace);
  const JobStats &J = R.Jobs.front();
  ASSERT_EQ(J.Intervals.size(), 1u);
  EXPECT_EQ(J.Intervals[0], (ExecInterval{6, 9}));
  EXPECT_EQ(J.ExecTotal, 3);
}

TEST(Criterion, LateCompletionIsAMiss) {
  cfg::Config C = testcfg::twoTasksOneCore();
  C.Partitions[0].Tasks[0].Deadline = 5;
  core::SystemTrace Trace = makeTrace({
      {core::SysEventType::EX, 0, 3},
      {core::SysEventType::FIN, 0, 6}, // 3 ticks, but past deadline 5.
  });
  AnalysisResult R = analyzeTrace(C, Trace);
  EXPECT_FALSE(R.Jobs.front().Completed);
}

//===----------------------------------------------------------------------===//
// RTA cross-validation
//===----------------------------------------------------------------------===//

TEST(Rta, MatchesTextbookExample) {
  cfg::Config C = testcfg::twoTasksOneCore();
  RtaResult R = responseTimeAnalysis(C, 0);
  EXPECT_TRUE(R.Schedulable);
  EXPECT_EQ(R.Response[0], 3); // High priority: its own WCET.
  EXPECT_EQ(R.Response[1], 8); // 5 + 3 interference.
}

TEST(Rta, DetectsOverload) {
  RtaResult R = responseTimeAnalysis(testcfg::overloadedOneCore(), 0);
  EXPECT_FALSE(R.Schedulable);
  EXPECT_EQ(R.Response[1], -1);
}

namespace {

/// One FPPS partition on one core with the given tasks and a
/// full-hyperperiod window.
cfg::Config onePartition(std::vector<cfg::Task> Tasks) {
  cfg::Config C;
  C.Name = "rta-case";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"c", 0, 0});
  cfg::Partition P;
  P.Name = "p";
  P.Core = 0;
  P.Scheduler = cfg::SchedulerKind::FPPS;
  P.Tasks = std::move(Tasks);
  C.Partitions.push_back(std::move(P));
  // The hyperperiod is only known once the tasks are in place.
  C.Partitions[0].Windows.push_back({0, C.hyperperiod()});
  return C;
}

} // namespace

TEST(Rta, EqualPriorityTasksInterfere) {
  // Two identical tasks at the same priority, each C=6, D=7, P=12. With
  // FIFO tie-breaking one of them runs second and finishes at 12 > 7, so
  // the set is unschedulable. The old `<=` skip excluded ties from hp(i)
  // and reported both tasks with R = 6 — schedulable, contradicting the
  // simulator.
  cfg::Config C = onePartition(
      {{"a", 3, {6}, 12, 7}, {"b", 3, {6}, 12, 7}});
  RtaResult R = responseTimeAnalysis(C, 0);
  EXPECT_FALSE(R.Schedulable);

  // Cross-check: the model agrees.
  ASSERT_FALSE(C.validate().isFailure());
  auto Sim = analyzeConfiguration(C);
  ASSERT_TRUE(Sim.ok()) << Sim.error().message();
  EXPECT_EQ(R.Schedulable, Sim->Analysis.Schedulable);
}

TEST(Rta, EqualPrioritySchedulableWhenLoadFits) {
  // Same shape but C=3, D=12: the second task finishes at 6 <= 12. The
  // tie-aware bound R = 6 holds for both and the verdict stays positive.
  cfg::Config C = onePartition(
      {{"a", 3, {3}, 12, 12}, {"b", 3, {3}, 12, 12}});
  RtaResult R = responseTimeAnalysis(C, 0);
  EXPECT_TRUE(R.Schedulable);
  EXPECT_EQ(R.Response[0], 6);
  EXPECT_EQ(R.Response[1], 6);

  ASSERT_FALSE(C.validate().isFailure());
  auto Sim = analyzeConfiguration(C);
  ASSERT_TRUE(Sim.ok()) << Sim.error().message();
  EXPECT_TRUE(Sim->Analysis.Schedulable);
  for (int64_t Worst : Sim->Analysis.WorstResponse)
    EXPECT_LE(Worst, 6);
}

TEST(Rta, IterationCapWithoutConvergenceIsUnschedulable) {
  // Over-unity load under a huge deadline: the fixpoint climbs by a few
  // ticks per iteration and can neither converge nor pass the deadline
  // within the cap. The capped exit must report unschedulable — the old
  // code returned the last (gross under-)estimate as if it had converged.
  cfg::Config C = onePartition({{"hi1", 5, {4}, 8, 8},
                                {"hi2", 5, {4}, 8, 8},
                                {"lo", 1, {1}, int64_t(1) << 40,
                                 int64_t(1) << 40}});
  RtaResult R = responseTimeAnalysis(C, 0);
  EXPECT_FALSE(R.Schedulable);
  EXPECT_EQ(R.Response[2], -1);
  // The two high-priority tasks themselves are fine (they only see each
  // other: R = 8 <= 8).
  EXPECT_EQ(R.Response[0], 8);
  EXPECT_EQ(R.Response[1], 8);
}

TEST(Rta, InterferenceOverflowIsUnschedulableNotUB) {
  // Four heavy high-priority tasks make the fixpoint grow geometrically;
  // under a 2^62 deadline the interference sum overflows int64 long
  // before the cap. Pre-fix this was signed-overflow UB (UBSan aborts);
  // now it is a defined unschedulable verdict.
  constexpr int64_t Big = int64_t(1) << 31;
  cfg::Config C = onePartition({{"h0", 5, {Big}, Big, Big},
                                {"h1", 5, {Big}, Big, Big},
                                {"h2", 5, {Big}, Big, Big},
                                {"h3", 5, {Big}, Big, Big},
                                {"lo", 1, {1}, int64_t(1) << 62,
                                 int64_t(1) << 62}});
  RtaResult R = responseTimeAnalysis(C, 0);
  EXPECT_FALSE(R.Schedulable);
  EXPECT_EQ(R.Response[4], -1);
}

TEST(Rta, SimulationNeverExceedsTheAnalyticBound) {
  // Property sweep: random single-partition FPPS task sets with a full
  // window; the model's worst observed response must be <= the RTA bound,
  // and the verdicts must agree (synchronous release = critical instant).
  Rng R(2026);
  int Checked = 0;
  for (int Trial = 0; Trial < 30; ++Trial) {
    cfg::Config C;
    C.Name = "rta-sweep";
    C.NumCoreTypes = 1;
    C.Cores.push_back({"c", 0, 0});
    cfg::Partition P;
    P.Name = "p";
    P.Core = 0;
    P.Scheduler = cfg::SchedulerKind::FPPS;
    int N = static_cast<int>(R.uniformInt(2, 4));
    std::vector<double> U = gen::uunifast(R, N, 0.9);
    std::vector<cfg::TimeValue> Periods = {8, 16, 32};
    for (int I = 0; I < N; ++I) {
      cfg::Task T;
      T.Name = "t" + std::to_string(I);
      T.Period = Periods[R.index(Periods.size())];
      T.Deadline = T.Period;
      cfg::TimeValue Cost = std::max<cfg::TimeValue>(
          1, static_cast<cfg::TimeValue>(U[static_cast<size_t>(I)] *
                                         static_cast<double>(T.Period)));
      T.Wcet = {std::min(Cost, T.Period)};
      T.Priority = 1000 - static_cast<int>(T.Period) * 10 + I;
      P.Tasks.push_back(std::move(T));
    }
    P.Windows.push_back({0, 32});
    C.Partitions.push_back(std::move(P));
    if (C.validate().isFailure())
      continue;

    RtaResult Bound = responseTimeAnalysis(C, 0);
    auto Out = analyzeConfiguration(C);
    ASSERT_TRUE(Out.ok()) << Out.error().message();
    EXPECT_EQ(Bound.Schedulable, Out->Analysis.Schedulable)
        << "trial " << Trial;
    if (Bound.Schedulable) {
      for (size_t I = 0; I < Bound.Response.size(); ++I) {
        int G = C.globalTaskId({0, static_cast<int>(I)});
        EXPECT_LE(Out->Analysis.WorstResponse[static_cast<size_t>(G)],
                  Bound.Response[I])
            << "trial " << Trial << " task " << I;
      }
    }
    ++Checked;
  }
  EXPECT_GT(Checked, 10);
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

TEST(Report, RendersVerdictAndGantt) {
  auto Out = analyzeConfiguration(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Out.ok());
  std::string Report =
      renderReport(Out->Model.Config, Out->Analysis);
  EXPECT_NE(Report.find("SCHEDULABLE"), std::string::npos);
  EXPECT_NE(Report.find("worst-resp=8"), std::string::npos);

  std::string Gantt = renderGantt(Out->Model.Config, Out->Analysis);
  // t1 runs [0,3): the row starts with three '#'.
  EXPECT_NE(Gantt.find("|###......."), std::string::npos);
}

TEST(Report, MarksMissesInGantt) {
  auto Out = analyzeConfiguration(testcfg::overloadedOneCore());
  ASSERT_TRUE(Out.ok());
  std::string Gantt = renderGantt(Out->Model.Config, Out->Analysis);
  EXPECT_NE(Gantt.find('!'), std::string::npos);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
