//===- tests/ToolingTest.cpp - Printer, disasm, stats, support tests --------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Stats.h"
#include "sa/Printer.h"
#include "support/Error.h"
#include "support/MathExtras.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "tests/TestConfigs.h"
#include "usl/Compiler.h"
#include "usl/Disasm.h"
#include "usl/Parser.h"

#include <gtest/gtest.h>

using namespace swa;

//===----------------------------------------------------------------------===//
// Support
//===----------------------------------------------------------------------===//

TEST(Support, GcdLcmCeilDiv) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(7, 0), 7);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(25, 50), 50);
  EXPECT_EQ(lcm64(7, 13), 91);
  EXPECT_EQ(ceilDiv64(0, 5), 0);
  EXPECT_EQ(ceilDiv64(10, 5), 2);
  EXPECT_EQ(ceilDiv64(11, 5), 3);
}

TEST(Support, OverflowChecks) {
  int64_t Out;
  EXPECT_FALSE(mulOverflow64(1 << 20, 1 << 20, Out));
  EXPECT_EQ(Out, int64_t(1) << 40);
  EXPECT_TRUE(mulOverflow64(int64_t(1) << 62, 4, Out));
  EXPECT_TRUE(addOverflow64(std::numeric_limits<int64_t>::max(), 1, Out));
}

TEST(Support, StringHelpers) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(trim("  a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("foobar", "bar"));
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(isIdentifier("_x9"));
  EXPECT_FALSE(isIdentifier("9x"));
  EXPECT_FALSE(isIdentifier(""));
}

TEST(Support, ParseInt64) {
  int64_t V;
  EXPECT_TRUE(parseInt64("42", V));
  EXPECT_EQ(V, 42);
  EXPECT_TRUE(parseInt64(" -17 ", V));
  EXPECT_EQ(V, -17);
  EXPECT_TRUE(parseInt64("+3", V));
  EXPECT_EQ(V, 3);
  EXPECT_FALSE(parseInt64("", V));
  EXPECT_FALSE(parseInt64("12x", V));
  EXPECT_FALSE(parseInt64("-", V));
  EXPECT_FALSE(parseInt64("99999999999999999999", V));
}

TEST(Support, RngIsDeterministicAndUniformish) {
  Rng A(5), B(5);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());

  Rng R(9);
  int Buckets[10] = {0};
  for (int I = 0; I < 10000; ++I)
    ++Buckets[R.uniformInt(0, 9)];
  for (int I = 0; I < 10; ++I) {
    EXPECT_GT(Buckets[I], 800);
    EXPECT_LT(Buckets[I], 1200);
  }

  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Support, ErrorAndResult) {
  Error Ok = Error::success();
  EXPECT_FALSE(Ok);
  Error Bad = Error::failure("it broke");
  EXPECT_TRUE(Bad.isFailure());
  EXPECT_EQ(Bad.withContext("step 2").message(), "step 2: it broke");

  Result<int> R = 5;
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(*R, 5);
  Result<int> F = Error::failure("no");
  EXPECT_FALSE(F.ok());
  EXPECT_EQ(F.error().message(), "no");
}

//===----------------------------------------------------------------------===//
// Printer / DOT
//===----------------------------------------------------------------------===//

TEST(Printer, DumpsAutomataReadably) {
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok());
  const sa::Network &Net = *Model->Net;
  std::string Text = sa::printAutomaton(Net, *Net.Automata[0]);
  EXPECT_NE(Text.find("automaton task_0_0_t1"), std::string::npos);
  EXPECT_NE(Text.find("Release"), std::string::npos);
  EXPECT_NE(Text.find("[committed]"), std::string::npos);
  EXPECT_NE(Text.find("[initial]"), std::string::npos);
  EXPECT_NE(Text.find("finished"), std::string::npos);

  std::string All = sa::printNetwork(Net);
  EXPECT_NE(All.find("ts_0"), std::string::npos);
  EXPECT_NE(All.find("cs_0"), std::string::npos);
}

TEST(Printer, EmitsValidLookingDot) {
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok());
  const sa::Network &Net = *Model->Net;
  std::string Dot = sa::toDot(Net, *Net.Automata[0]);
  EXPECT_EQ(Dot.rfind("digraph", 0), 0u);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  EXPECT_EQ(Dot.back(), '\n');
  // Balanced braces.
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
}

TEST(Disasm, ListsCompiledCode) {
  usl::Declarations D;
  ASSERT_FALSE(usl::parseDeclarations("int x;", D, false).isFailure());
  auto E = usl::parseIntExpr("x < 3 ? x + 1 : 0", D);
  ASSERT_TRUE(E.ok());
  usl::BindTarget Target;
  usl::Binder B(Target);
  B.mapStore(D.lookup("x"), 0);
  auto Bound = B.bindExpr(**E);
  ASSERT_TRUE(Bound.ok());
  auto Code = usl::compileExpr(**Bound);
  ASSERT_TRUE(Code.ok());
  std::string Listing = usl::disassemble(*Code);
  EXPECT_NE(Listing.find("ld.s"), std::string::npos);
  EXPECT_NE(Listing.find("jz"), std::string::npos);
  EXPECT_NE(Listing.find("halt"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

TEST(Stats, BusyTimeMatchesDemandWhenSchedulable) {
  auto Out = analysis::analyzeConfiguration(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Out.ok());
  analysis::TraceStats S =
      analysis::computeStats(Out->Model.Config, Out->Analysis);
  ASSERT_EQ(S.Cores.size(), 1u);
  // All jobs completed: busy ticks == 2*3 + 5 = 11 over L = 20.
  EXPECT_EQ(S.Cores[0].BusyTicks, 11);
  EXPECT_NEAR(S.Cores[0].BusyShare, 11.0 / 20.0, 1e-9);
  ASSERT_EQ(S.Tasks.size(), 2u);
  EXPECT_EQ(S.Tasks[0].Completed, 2);
  EXPECT_EQ(S.Tasks[0].Best, 3);
  EXPECT_EQ(S.Tasks[0].Worst, 3);
  EXPECT_EQ(S.Tasks[1].Worst, 8);
}

TEST(Stats, RenderAndCsv) {
  auto Out = analysis::analyzeConfiguration(testcfg::preemptionShowcase());
  ASSERT_TRUE(Out.ok());
  analysis::TraceStats S =
      analysis::computeStats(Out->Model.Config, Out->Analysis);
  std::string Text = analysis::renderStats(Out->Model.Config, S);
  EXPECT_NE(Text.find("cores:"), std::string::npos);
  EXPECT_NE(Text.find("task responses:"), std::string::npos);

  std::string Csv = analysis::jobsToCsv(Out->Model.Config, Out->Analysis);
  EXPECT_NE(Csv.find("task,job,release"), std::string::npos);
  // lo runs [2,10) and [12,19): both intervals listed.
  EXPECT_NE(Csv.find("2-10 12-19"), std::string::npos);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
