//===- tests/SnapshotTest.cpp - Durable snapshot format + fault campaign ---===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The snapshot layer's contracts, adversarially:
//
//  * CRC32 known answers and the running (incremental) form.
//  * AtomicFile: commit publishes exactly the appended bytes and leaves
//    no temp file; discard leaves the old file untouched; every crash
//    point (SWA_CRASH_AFTER, exercised via death tests) leaves the old
//    file or the new file on disk — never a torn hybrid.
//  * Snapshot round-trip: save -> load -> re-save is byte-identical, and
//    snapshot bytes are a pure function of cache *contents* (insertion
//    order must not matter).
//  * The corrupt corpus: zero-length, truncated at every byte, a bit
//    flipped in every byte, version-skewed, endian-swapped, bad magic,
//    trailing garbage. Every single file must be rejected with a typed
//    non-Generic support::Error — a corrupt snapshot degrades a search
//    to a cold start, it never smuggles in a wrong verdict.
//  * mergeSnapshots union/conflict/search-state adoption rules.
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"
#include "schedtool/Exchange.h"
#include "schedtool/Snapshot.h"
#include "schedtool/VerdictCache.h"
#include "support/AtomicFile.h"
#include "support/Crc32.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>

using namespace swa;
using namespace swa::schedtool;

namespace {

std::string testPath(const std::string &Name) {
  return testing::TempDir() + "swa_snapshot_" + Name;
}

std::string readAll(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  EXPECT_TRUE(IS.good()) << Path;
  return std::string((std::istreambuf_iterator<char>(IS)),
                     std::istreambuf_iterator<char>());
}

void writeAll(const std::string &Path, const std::string &Data) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS.write(Data.data(), static_cast<std::streamsize>(Data.size()));
  ASSERT_TRUE(OS.good()) << Path;
}

cfg::Config sampleConfig(uint64_t Seed) {
  gen::IndustrialParams P;
  P.Modules = 2;
  P.CoresPerModule = 2;
  P.PartitionsPerCore = 2;
  P.CoreUtilization = 0.5;
  P.Seed = Seed;
  return gen::industrialConfig(P);
}

analysis::VerdictOutcome missVerdict(int64_t At, int32_t Gid) {
  analysis::VerdictOutcome V;
  V.Schedulable = false;
  V.FailedTasks = 1;
  V.TaskFailed = {0, 1, 0};
  V.ActionCount = 123;
  V.FirstMissTime = At;
  V.FirstMissTasks = {Gid};
  V.Stop = nsa::StopReason::DeadlineMiss;
  return V;
}

analysis::VerdictOutcome okVerdict() {
  analysis::VerdictOutcome V;
  V.Schedulable = true;
  V.ActionCount = 456;
  V.Stop = nsa::StopReason::Completed;
  return V;
}

/// A snapshot with every feature populated: search state, both entry
/// levels, logs, trajectory, stop-reason tallies.
Snapshot sampleSnapshot() {
  Snapshot S;
  S.HasSearchState = true;
  S.Seed = 42;
  S.BatchSize = 4;
  S.BaseCrc = 0xDEADBEEFu;
  S.NextRound = 3;
  S.Iter = 12;
  S.RngState = {1, 2, 3, 0x0123456789abcdefULL};
  S.Current = sampleConfig(7);
  S.Boost = {1.1, 2.0, 1.5, 1.9};
  S.Res.Found = false;
  S.Res.ConfigurationsEvaluated = 12;
  S.Res.SchedulableSeen = 0;
  S.Res.BestBadness = 77;
  S.Res.BestTrajectory = {{0, 100}, {5, 77}};
  S.Res.CacheHits = 3;
  S.Res.CacheMisses = 9;
  S.Res.Best = sampleConfig(8);
  S.Res.StopReasonCounts[static_cast<size_t>(nsa::StopReason::DeadlineMiss)] =
      11;
  S.Res.StopReasonCounts[static_cast<size_t>(nsa::StopReason::Completed)] = 1;
  S.Res.Log = {"iter 0: unschedulable (badness 100, first miss at t=1, "
               "1 tasks)",
               "round 0: cache 0 hits / 4 misses / 0 folds / 0 dups "
               "(4 entries)"};
  S.ConfigEntries.push_back({{1, 2}, {1, 3}, missVerdict(10, 0)});
  S.ConfigEntries.push_back({{5, 6}, {5, 6}, okVerdict()});
  S.ComponentEntries.push_back({{7, 8}, {7, 9}, missVerdict(20, 1)});
  return S;
}

void expectSameVerdict(const analysis::VerdictOutcome &A,
                       const analysis::VerdictOutcome &B) {
  EXPECT_EQ(A.Schedulable, B.Schedulable);
  EXPECT_EQ(A.FailedTasks, B.FailedTasks);
  EXPECT_EQ(A.TaskFailed, B.TaskFailed);
  EXPECT_EQ(A.ActionCount, B.ActionCount);
  EXPECT_EQ(A.FirstMissTime, B.FirstMissTime);
  EXPECT_EQ(A.FirstMissTasks, B.FirstMissTasks);
  EXPECT_EQ(A.Stop, B.Stop);
}

void expectSameConfig(const cfg::Config &A, const cfg::Config &B) {
  EXPECT_EQ(A.Name, B.Name);
  EXPECT_EQ(A.NumCoreTypes, B.NumCoreTypes);
  ASSERT_EQ(A.Cores.size(), B.Cores.size());
  for (size_t C = 0; C < A.Cores.size(); ++C) {
    EXPECT_EQ(A.Cores[C].Name, B.Cores[C].Name);
    EXPECT_EQ(A.Cores[C].Module, B.Cores[C].Module);
    EXPECT_EQ(A.Cores[C].CoreType, B.Cores[C].CoreType);
  }
  ASSERT_EQ(A.Partitions.size(), B.Partitions.size());
  for (size_t P = 0; P < A.Partitions.size(); ++P) {
    const cfg::Partition &PA = A.Partitions[P], &PB = B.Partitions[P];
    EXPECT_EQ(PA.Name, PB.Name);
    EXPECT_EQ(PA.Scheduler, PB.Scheduler);
    EXPECT_EQ(PA.Core, PB.Core);
    ASSERT_EQ(PA.Tasks.size(), PB.Tasks.size());
    for (size_t T = 0; T < PA.Tasks.size(); ++T) {
      EXPECT_EQ(PA.Tasks[T].Name, PB.Tasks[T].Name);
      EXPECT_EQ(PA.Tasks[T].Priority, PB.Tasks[T].Priority);
      EXPECT_EQ(PA.Tasks[T].Wcet, PB.Tasks[T].Wcet);
      EXPECT_EQ(PA.Tasks[T].Period, PB.Tasks[T].Period);
      EXPECT_EQ(PA.Tasks[T].Deadline, PB.Tasks[T].Deadline);
    }
    ASSERT_EQ(PA.Windows.size(), PB.Windows.size());
    for (size_t W = 0; W < PA.Windows.size(); ++W) {
      EXPECT_EQ(PA.Windows[W].Start, PB.Windows[W].Start);
      EXPECT_EQ(PA.Windows[W].End, PB.Windows[W].End);
    }
  }
  ASSERT_EQ(A.Messages.size(), B.Messages.size());
  for (size_t M = 0; M < A.Messages.size(); ++M) {
    EXPECT_EQ(A.Messages[M].Sender.Partition, B.Messages[M].Sender.Partition);
    EXPECT_EQ(A.Messages[M].Sender.Task, B.Messages[M].Sender.Task);
    EXPECT_EQ(A.Messages[M].Receiver.Partition,
              B.Messages[M].Receiver.Partition);
    EXPECT_EQ(A.Messages[M].Receiver.Task, B.Messages[M].Receiver.Task);
    EXPECT_EQ(A.Messages[M].MemDelay, B.Messages[M].MemDelay);
    EXPECT_EQ(A.Messages[M].NetDelay, B.Messages[M].NetDelay);
  }
}

void expectSameSnapshot(const Snapshot &A, const Snapshot &B) {
  EXPECT_EQ(A.HasSearchState, B.HasSearchState);
  EXPECT_EQ(A.Seed, B.Seed);
  EXPECT_EQ(A.BatchSize, B.BatchSize);
  EXPECT_EQ(A.BaseCrc, B.BaseCrc);
  EXPECT_EQ(A.NextRound, B.NextRound);
  EXPECT_EQ(A.Iter, B.Iter);
  EXPECT_EQ(A.RngState, B.RngState);
  EXPECT_EQ(A.Boost, B.Boost);
  expectSameConfig(A.Current, B.Current);
  EXPECT_EQ(A.Res.Found, B.Res.Found);
  EXPECT_EQ(A.Res.ConfigurationsEvaluated, B.Res.ConfigurationsEvaluated);
  EXPECT_EQ(A.Res.BestBadness, B.Res.BestBadness);
  EXPECT_EQ(A.Res.BestTrajectory, B.Res.BestTrajectory);
  EXPECT_EQ(A.Res.StopReasonCounts, B.Res.StopReasonCounts);
  EXPECT_EQ(A.Res.Log, B.Res.Log);
  expectSameConfig(A.Res.Best, B.Res.Best);
  ASSERT_EQ(A.ConfigEntries.size(), B.ConfigEntries.size());
  for (size_t I = 0; I < A.ConfigEntries.size(); ++I) {
    EXPECT_EQ(A.ConfigEntries[I].Canon, B.ConfigEntries[I].Canon);
    EXPECT_EQ(A.ConfigEntries[I].Raw, B.ConfigEntries[I].Raw);
    expectSameVerdict(A.ConfigEntries[I].Verdict, B.ConfigEntries[I].Verdict);
  }
  ASSERT_EQ(A.ComponentEntries.size(), B.ComponentEntries.size());
  for (size_t I = 0; I < A.ComponentEntries.size(); ++I) {
    EXPECT_EQ(A.ComponentEntries[I].Canon, B.ComponentEntries[I].Canon);
    EXPECT_EQ(A.ComponentEntries[I].Raw, B.ComponentEntries[I].Raw);
    expectSameVerdict(A.ComponentEntries[I].Verdict,
                      B.ComponentEntries[I].Verdict);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// CRC32
//===----------------------------------------------------------------------===//

TEST(Crc32, KnownAnswers) {
  // The IEEE reflected-polynomial check value.
  EXPECT_EQ(support::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(support::crc32("", 0), 0u);
  EXPECT_EQ(support::crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, RunningFormMatchesOneShot) {
  const std::string Data = "the quick brown fox jumps over the lazy dog";
  uint32_t Whole = support::crc32(Data.data(), Data.size());
  for (size_t Split = 0; Split <= Data.size(); ++Split) {
    uint32_t Part = support::crc32(Data.data(), Split);
    Part = support::crc32(Data.data() + Split, Data.size() - Split, Part);
    EXPECT_EQ(Part, Whole) << "split at " << Split;
  }
}

//===----------------------------------------------------------------------===//
// AtomicFile
//===----------------------------------------------------------------------===//

TEST(AtomicFile, CommitPublishesExactlyTheAppendedBytes) {
  std::string Path = testPath("commit.bin");
  std::remove(Path.c_str());
  support::AtomicFile F;
  ASSERT_FALSE(F.open(Path).isFailure());
  ASSERT_FALSE(F.append("hello ", 6).isFailure());
  ASSERT_FALSE(F.append("world", 5).isFailure());
  EXPECT_EQ(F.bytesWritten(), 11u);
  std::string Tmp = F.tempPath();
  ASSERT_FALSE(F.commit().isFailure());
  EXPECT_EQ(readAll(Path), "hello world");
  std::ifstream TmpCheck(Tmp);
  EXPECT_FALSE(TmpCheck.good()) << "temp file left after commit: " << Tmp;
  std::remove(Path.c_str());
}

TEST(AtomicFile, DiscardLeavesOldFileUntouchedAndNoTemp) {
  std::string Path = testPath("discard.bin");
  writeAll(Path, "OLD");
  std::string Tmp;
  {
    support::AtomicFile F;
    ASSERT_FALSE(F.open(Path).isFailure());
    ASSERT_FALSE(F.append("NEW", 3).isFailure());
    Tmp = F.tempPath();
    F.discard();
  }
  EXPECT_EQ(readAll(Path), "OLD");
  std::ifstream TmpCheck(Tmp);
  EXPECT_FALSE(TmpCheck.good()) << "temp file left after discard: " << Tmp;
  // The destructor path (no explicit discard/commit) must clean up too.
  {
    support::AtomicFile F;
    ASSERT_FALSE(F.open(Path).isFailure());
    ASSERT_FALSE(F.append("NEWER", 5).isFailure());
    Tmp = F.tempPath();
  }
  EXPECT_EQ(readAll(Path), "OLD");
  std::ifstream TmpCheck2(Tmp);
  EXPECT_FALSE(TmpCheck2.good()) << "temp file left by destructor: " << Tmp;
  std::remove(Path.c_str());
}

TEST(AtomicFile, OpenIntoMissingDirectoryIsTypedIoError) {
  support::AtomicFile F;
  Error E = F.open("/nonexistent-swa-dir/snap.bin");
  ASSERT_TRUE(E.isFailure());
  EXPECT_EQ(E.code(), ErrorCode::Io);
  EXPECT_FALSE(F.isOpen());
  Error W = support::writeFileAtomic("/nonexistent-swa-dir/snap.bin", "x", 1);
  ASSERT_TRUE(W.isFailure());
  EXPECT_EQ(W.code(), ErrorCode::Io);
}

// The crash-point fault campaign. Death tests use the threadsafe style:
// the child re-executes the test binary, so SWA_CRASH_AFTER — set inside
// the EXPECT_EXIT statement, i.e. only in the child — is parsed by a
// fresh process whose crash counters start at zero. The seed file is
// written with a plain ofstream so no AtomicFile crash point fires
// before the statement under test.
TEST(AtomicFileDeath, EveryCrashStageLeavesOldOrNewNeverTorn) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string Path = testPath("crash.bin");
  const std::string Old = "OLD-CONTENT";
  const std::string New = "NEW-CONTENT-LONGER-THAN-OLD";
  for (const char *Stage : {"byte", "write", "fsync", "rename", "commit"}) {
    writeAll(Path, Old);
    EXPECT_EXIT(
        {
          setenv("SWA_CRASH_AFTER", Stage, 1);
          Error E = support::writeFileAtomic(Path, New.data(), New.size());
          // Reaching here means the stage never fired — fail loudly with
          // a distinct exit code instead of a confusing success.
          std::fprintf(stderr, "no crash at stage %s (err=%s)\n", Stage,
                       E.isFailure() ? E.message().c_str() : "none");
          _exit(1);
        },
        testing::ExitedWithCode(support::AtomicFile::kCrashExitCode), "")
        << "stage " << Stage;
    // In the re-executed death-test child only the designated statement
    // runs; the on-disk checks below are meaningful in the parent alone.
    if (testing::internal::InDeathTestChild())
      continue;
    std::string Got = readAll(Path);
    EXPECT_TRUE(Got == Old || Got == New)
        << "torn file after crash at " << Stage << ": \"" << Got << "\"";
    // Crashing strictly before the rename must preserve the old bytes;
    // at or after the rename the new bytes must be visible.
    if (std::string(Stage) == "byte" || std::string(Stage) == "write" ||
        std::string(Stage) == "fsync")
      EXPECT_EQ(Got, Old) << "stage " << Stage;
    else
      EXPECT_EQ(Got, New) << "stage " << Stage;
  }
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
}

// The exchange-directory race: a fleet worker killed at *any* point
// inside its publication's AtomicFile commit must never make a reader
// see a torn exchange file. Before the rename the reader sees no
// publication at all (the `.tmp` is never opened — refresh() uses exact
// publication names); at or after the rename it sees the complete new
// snapshot. In no stage does loadSnapshot on the publication path
// return a torn/corrupt verdict set, and the reader's refresh() never
// counts a peer load error.
TEST(ExchangeDeath, TornPublicationIsNeverVisibleToReaders) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string Dir = testPath("exchange_race");
  ::system(("rm -rf " + Dir).c_str());
  ASSERT_EQ(::mkdir(Dir.c_str(), 0777), 0);
  std::string Pub = Dir + "/shard_0.pub";

  for (const char *Stage : {"byte", "write", "fsync", "rename", "commit"}) {
    std::remove(Pub.c_str());
    std::remove((Pub + ".tmp").c_str());
    EXPECT_EXIT(
        {
          setenv("SWA_CRASH_AFTER", Stage, 1);
          Exchange W;
          if (W.init(Dir, 0, 2, Exchange::Mode::Shard).isFailure())
            _exit(2);
          W.recordConfig({1, 2}, {1, 3}, missVerdict(10, 0));
          W.publish();
          std::fprintf(stderr, "no crash at stage %s\n", Stage);
          _exit(1);
        },
        testing::ExitedWithCode(support::AtomicFile::kCrashExitCode), "")
        << "stage " << Stage;
    if (testing::internal::InDeathTestChild())
      continue;

    // A reader shard sweeping the directory right after the writer died.
    Exchange R;
    ASSERT_FALSE(R.init(Dir, 1, 2, Exchange::Mode::Shard).isFailure());
    R.refresh();
    EXPECT_EQ(R.Stats.PeerLoadErrors, 0u) << "stage " << Stage;
    const VerdictCache::Entry *E = R.fetchConfig({1, 2});
    bool Committed =
        std::string(Stage) == "rename" || std::string(Stage) == "commit";
    if (Committed) {
      // The rename happened: the publication is complete and loads.
      ASSERT_NE(E, nullptr) << "stage " << Stage;
      expectSameVerdict(E->Verdict, missVerdict(10, 0));
      EXPECT_EQ(R.Stats.PeerSnapshotsLoaded, 1u);
    } else {
      // Only the writer's temp file exists; the reader must see no
      // publication — and loadSnapshot on the exact path agrees (a
      // typed Io "no such file", never a torn-payload rejection).
      EXPECT_EQ(E, nullptr) << "stage " << Stage;
      EXPECT_EQ(R.Stats.PeerSnapshotsLoaded, 0u);
      Result<Snapshot> L = loadSnapshot(Pub);
      ASSERT_FALSE(L.ok()) << "stage " << Stage;
      EXPECT_EQ(L.error().code(), ErrorCode::Io) << "stage " << Stage;
    }
  }
  ::system(("rm -rf " + Dir).c_str());
}

TEST(AtomicFileDeath, NthOccurrenceCountingSelectsTheKthWrite) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string PathA = testPath("crash_a.bin");
  std::string PathB = testPath("crash_b.bin");
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
  // Crash at the *second* commit: the first file must be fully durable,
  // the second absent.
  EXPECT_EXIT(
      {
        setenv("SWA_CRASH_AFTER", "commit:2", 1);
        support::writeFileAtomic(PathA, "A", 1);
        support::writeFileAtomic(PathB, "B", 1);
        _exit(1);
      },
      testing::ExitedWithCode(support::AtomicFile::kCrashExitCode), "");
  EXPECT_EQ(readAll(PathA), "A");
  // writeFileAtomic(PathB) committed (rename done) before the crash
  // point fired — commit:N fires after the Nth successful commit.
  EXPECT_EQ(readAll(PathB), "B");
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

//===----------------------------------------------------------------------===//
// Snapshot round-trip and byte determinism
//===----------------------------------------------------------------------===//

TEST(Snapshot, RoundTripsEveryFieldAndIsByteStable) {
  Snapshot S = sampleSnapshot();
  std::string Path = testPath("roundtrip.bin");
  SnapshotStats Stats;
  ASSERT_FALSE(saveSnapshot(S, Path, &Stats).isFailure());
  EXPECT_EQ(Stats.SnapshotsWritten, 1u);
  EXPECT_GT(Stats.BytesWritten, 0u);

  Result<Snapshot> L = loadSnapshot(Path, &Stats);
  ASSERT_TRUE(L.ok()) << L.error().message();
  EXPECT_EQ(Stats.SnapshotsLoaded, 1u);
  EXPECT_EQ(Stats.BytesLoaded, Stats.BytesWritten);
  expectSameSnapshot(S, *L);

  // Re-saving the loaded image reproduces the file byte-for-byte.
  std::string Path2 = testPath("roundtrip2.bin");
  ASSERT_FALSE(saveSnapshot(*L, Path2).isFailure());
  EXPECT_EQ(readAll(Path), readAll(Path2));
  std::remove(Path.c_str());
  std::remove(Path2.c_str());
}

TEST(Snapshot, CacheOnlySnapshotRoundTrips) {
  Snapshot S;
  S.ConfigEntries.push_back({{1, 2}, {1, 2}, okVerdict()});
  std::string Path = testPath("cacheonly.bin");
  ASSERT_FALSE(saveSnapshot(S, Path).isFailure());
  Result<Snapshot> L = loadSnapshot(Path);
  ASSERT_TRUE(L.ok()) << L.error().message();
  EXPECT_FALSE(L->HasSearchState);
  EXPECT_EQ(L->ConfigEntries.size(), 1u);
  EXPECT_TRUE(L->ComponentEntries.empty());
  std::remove(Path.c_str());
}

TEST(Snapshot, BytesAreAPureFunctionOfCacheContents) {
  // Two caches filled with the same entries in opposite orders must
  // produce identical snapshot files (captureCache sorts by key).
  analysis::VerdictOutcome V1 = missVerdict(10, 0), V2 = okVerdict();
  analysis::VerdictOutcome V3 = missVerdict(30, 2);
  VerdictCache A, B;
  A.insert({1, 1}, {1, 1}, V1);
  A.insert({2, 2}, {2, 9}, V2);
  A.insertComponent({3, 3}, {3, 3}, V3);
  B.insertComponent({3, 3}, {3, 3}, V3);
  B.insert({2, 2}, {2, 9}, V2);
  B.insert({1, 1}, {1, 1}, V1);

  Snapshot SA, SB;
  SA.captureCache(A);
  SB.captureCache(B);
  std::string PA = testPath("order_a.bin"), PB = testPath("order_b.bin");
  ASSERT_FALSE(saveSnapshot(SA, PA).isFailure());
  ASSERT_FALSE(saveSnapshot(SB, PB).isFailure());
  EXPECT_EQ(readAll(PA), readAll(PB));
  std::remove(PA.c_str());
  std::remove(PB.c_str());
}

TEST(Snapshot, SeedCacheMarksProvenanceAndNeverOverwrites) {
  Snapshot S;
  S.ConfigEntries.push_back({{1, 1}, {1, 1}, missVerdict(10, 0)});
  S.ConfigEntries.push_back({{2, 2}, {2, 2}, okVerdict()});
  S.ComponentEntries.push_back({{3, 3}, {3, 3}, missVerdict(20, 1)});

  VerdictCache Cache;
  // Pre-existing same-run entry under key {1,1}: the snapshot must not
  // replace it or flip its provenance.
  Cache.insert({1, 1}, {1, 1}, missVerdict(10, 0));
  auto [NCfg, NComp] = S.seedCache(Cache);
  EXPECT_EQ(NCfg, 1u);
  EXPECT_EQ(NComp, 1u);
  const VerdictCache::Entry *E1 = Cache.lookup({1, 1});
  ASSERT_NE(E1, nullptr);
  EXPECT_FALSE(E1->FromSnapshot);
  const VerdictCache::Entry *E2 = Cache.lookup({2, 2});
  ASSERT_NE(E2, nullptr);
  EXPECT_TRUE(E2->FromSnapshot);
  const VerdictCache::ComponentEntry *C3 = Cache.lookupComponent({3, 3});
  ASSERT_NE(C3, nullptr);
  EXPECT_TRUE(C3->FromSnapshot);
}

TEST(Snapshot, BaseCrcDistinguishesConfigs) {
  cfg::Config A = sampleConfig(1), B = sampleConfig(2);
  EXPECT_EQ(snapshotBaseCrc(A), snapshotBaseCrc(A));
  EXPECT_NE(snapshotBaseCrc(A), snapshotBaseCrc(B));
  cfg::Config A2 = A;
  A2.Partitions[0].Tasks[0].Wcet[0] += 1;
  EXPECT_NE(snapshotBaseCrc(A), snapshotBaseCrc(A2));
}

//===----------------------------------------------------------------------===//
// The corrupt corpus
//===----------------------------------------------------------------------===//

namespace {

/// Loads \p Data (written to a scratch file) and expects a typed,
/// non-Generic rejection.
void expectTypedRejection(const std::string &Data, const char *What) {
  std::string Path = testPath("corpus.bin");
  writeAll(Path, Data);
  Result<Snapshot> L = loadSnapshot(Path);
  ASSERT_FALSE(L.ok()) << What << ": accepted a malformed snapshot";
  EXPECT_NE(L.error().code(), ErrorCode::Generic) << What;
  EXPECT_NE(L.error().code(), ErrorCode::Io)
      << What << ": " << L.error().message();
  std::remove(Path.c_str());
}

} // namespace

TEST(SnapshotCorpus, MissingFileIsTypedIoError) {
  Result<Snapshot> L = loadSnapshot(testPath("never_written.bin"));
  ASSERT_FALSE(L.ok());
  EXPECT_EQ(L.error().code(), ErrorCode::Io);
}

TEST(SnapshotCorpus, ZeroLengthFileIsTruncated) {
  std::string Path = testPath("zero.bin");
  writeAll(Path, "");
  Result<Snapshot> L = loadSnapshot(Path);
  ASSERT_FALSE(L.ok());
  EXPECT_EQ(L.error().code(), ErrorCode::SnapshotTruncated);
  std::remove(Path.c_str());
}

TEST(SnapshotCorpus, TruncationAtEveryByteIsRejectedTyped) {
  std::string Path = testPath("full.bin");
  ASSERT_FALSE(saveSnapshot(sampleSnapshot(), Path).isFailure());
  std::string Full = readAll(Path);
  ASSERT_GT(Full.size(), 16u);
  for (size_t Len = 0; Len < Full.size(); ++Len) {
    std::string Prefix = Full.substr(0, Len);
    std::string P = testPath("trunc.bin");
    writeAll(P, Prefix);
    Result<Snapshot> L = loadSnapshot(P);
    ASSERT_FALSE(L.ok()) << "accepted a " << Len << "-byte prefix of a "
                         << Full.size() << "-byte snapshot";
    EXPECT_NE(L.error().code(), ErrorCode::Generic) << "at " << Len;
    std::remove(P.c_str());
  }
  std::remove(Path.c_str());
}

TEST(SnapshotCorpus, BitFlipsAreRejectedTyped) {
  std::string Path = testPath("flip_src.bin");
  ASSERT_FALSE(saveSnapshot(sampleSnapshot(), Path).isFailure());
  std::string Full = readAll(Path);
  // Every bit of the header and framing-sensitive prefix; one bit per
  // byte (rotating position) across the whole rest of the file.
  for (size_t Off = 0; Off < Full.size(); ++Off) {
    int Bits = Off < 64 ? 8 : 1;
    for (int B = 0; B < Bits; ++B) {
      int Bit = Bits == 8 ? B : static_cast<int>(Off % 8);
      std::string Mut = Full;
      Mut[Off] = static_cast<char>(Mut[Off] ^ (1 << Bit));
      expectTypedRejection(
          Mut, ("bit " + std::to_string(Bit) + " at offset " +
                std::to_string(Off))
                   .c_str());
    }
  }
  std::remove(Path.c_str());
}

TEST(SnapshotCorpus, VersionSkewIsTyped) {
  std::string Path = testPath("skew_src.bin");
  ASSERT_FALSE(saveSnapshot(sampleSnapshot(), Path).isFailure());
  std::string Full = readAll(Path);
  // The u32 version lives at offset 8 (after the magic), little-endian.
  Full[8] = static_cast<char>(Snapshot::FormatVersion + 1);
  std::string P = testPath("skew.bin");
  writeAll(P, Full);
  Result<Snapshot> L = loadSnapshot(P);
  ASSERT_FALSE(L.ok());
  EXPECT_EQ(L.error().code(), ErrorCode::SnapshotVersionSkew);
  std::remove(P.c_str());
  std::remove(Path.c_str());
}

TEST(SnapshotCorpus, ForeignEndianMarkerIsTyped) {
  std::string Path = testPath("endian_src.bin");
  ASSERT_FALSE(saveSnapshot(sampleSnapshot(), Path).isFailure());
  std::string Full = readAll(Path);
  // The endian marker 0x01020304 is encoded little-endian at offset 12
  // as 04 03 02 01; a big-endian writer would store 01 02 03 04.
  Full[12] = 0x01;
  Full[13] = 0x02;
  Full[14] = 0x03;
  Full[15] = 0x04;
  std::string P = testPath("endian.bin");
  writeAll(P, Full);
  Result<Snapshot> L = loadSnapshot(P);
  ASSERT_FALSE(L.ok());
  EXPECT_EQ(L.error().code(), ErrorCode::SnapshotEndianMismatch);
  std::remove(P.c_str());
  std::remove(Path.c_str());
}

TEST(SnapshotCorpus, BadMagicAndTrailingGarbageAreTyped) {
  std::string Path = testPath("frame_src.bin");
  ASSERT_FALSE(saveSnapshot(sampleSnapshot(), Path).isFailure());
  std::string Full = readAll(Path);

  std::string BadMagic = Full;
  BadMagic[0] = 'X';
  expectTypedRejection(BadMagic, "bad magic");
  expectTypedRejection("not a snapshot at all", "foreign file");
  expectTypedRejection(Full + "garbage", "trailing garbage");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// mergeSnapshots
//===----------------------------------------------------------------------===//

TEST(SnapshotMerge, UnionsEntriesDstWins) {
  Snapshot Dst, Src;
  Dst.ConfigEntries.push_back({{1, 1}, {1, 1}, missVerdict(10, 0)});
  Src.ConfigEntries.push_back({{1, 1}, {1, 9}, missVerdict(10, 0)});
  Src.ConfigEntries.push_back({{2, 2}, {2, 2}, okVerdict()});
  Src.ComponentEntries.push_back({{3, 3}, {3, 3}, missVerdict(30, 1)});
  SnapshotStats Stats;
  ASSERT_FALSE(mergeSnapshots(Dst, Src, &Stats).isFailure());
  EXPECT_EQ(Dst.ConfigEntries.size(), 2u);
  EXPECT_EQ(Dst.ComponentEntries.size(), 1u);
  EXPECT_EQ(Stats.ConfigEntriesMerged, 1u);
  EXPECT_EQ(Stats.ComponentEntriesMerged, 1u);
  // Dst's original entry survived (its Raw is {1,1}, not Src's {1,9}).
  EXPECT_EQ(Dst.ConfigEntries[0].Raw, (cfg::Fingerprint{1, 1}));
}

TEST(SnapshotMerge, ConflictingVerdictIsMismatchAndDstUnchanged) {
  Snapshot Dst, Src;
  Dst.ConfigEntries.push_back({{1, 1}, {1, 1}, missVerdict(10, 0)});
  Src.ConfigEntries.push_back({{1, 1}, {1, 1}, missVerdict(99, 0)});
  Src.ConfigEntries.push_back({{2, 2}, {2, 2}, okVerdict()});
  Error E = mergeSnapshots(Dst, Src);
  ASSERT_TRUE(E.isFailure());
  EXPECT_EQ(E.code(), ErrorCode::SnapshotMismatch);
  EXPECT_EQ(Dst.ConfigEntries.size(), 1u) << "Dst mutated on a failed merge";
}

TEST(SnapshotMerge, AdoptsFurtherProgressedSearchState) {
  Snapshot Dst = sampleSnapshot(), Src = sampleSnapshot();
  Src.Iter = Dst.Iter + 4;
  Src.NextRound = Dst.NextRound + 1;
  ASSERT_FALSE(mergeSnapshots(Dst, Src).isFailure());
  EXPECT_EQ(Dst.Iter, Src.Iter);
  EXPECT_EQ(Dst.NextRound, Src.NextRound);

  // The other direction: a less-progressed Src must not regress Dst.
  Snapshot Behind = sampleSnapshot();
  ASSERT_FALSE(mergeSnapshots(Dst, Behind).isFailure());
  EXPECT_EQ(Dst.Iter, Src.Iter);

  // A stateless Dst adopts Src's state wholesale.
  Snapshot Empty;
  ASSERT_FALSE(mergeSnapshots(Empty, Src).isFailure());
  EXPECT_TRUE(Empty.HasSearchState);
  EXPECT_EQ(Empty.Iter, Src.Iter);
}

TEST(SnapshotMerge, ForeignSearchStateIsMismatch) {
  Snapshot Dst = sampleSnapshot(), Src = sampleSnapshot();
  Src.Iter = Dst.Iter + 1; // would be adopted...
  Src.Seed = Dst.Seed + 1; // ...but belongs to another search
  Error E = mergeSnapshots(Dst, Src);
  ASSERT_TRUE(E.isFailure());
  EXPECT_EQ(E.code(), ErrorCode::SnapshotMismatch);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
