//===- tests/XmlTest.cpp - XML layer and config/template I/O tests ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "configio/ConfigXml.h"
#include "configio/TemplateXml.h"
#include "tests/TestConfigs.h"
#include "usl/Decls.h"
#include "usl/Parser.h"
#include "xml/Xml.h"

#include <gtest/gtest.h>

using namespace swa;

//===----------------------------------------------------------------------===//
// XML parser
//===----------------------------------------------------------------------===//

TEST(Xml, ParsesElementsAttributesAndText) {
  auto Doc = xml::parse("<?xml version=\"1.0\"?>\n"
                        "<!-- header comment -->\n"
                        "<root a=\"1\" b='two'>\n"
                        "  <child>hello <inner/> world</child>\n"
                        "  <child kind=\"x\"/>\n"
                        "</root>");
  ASSERT_TRUE(Doc.ok()) << Doc.error().message();
  const xml::Node &Root = **Doc;
  EXPECT_EQ(Root.Tag, "root");
  EXPECT_EQ(*Root.attr("a"), "1");
  EXPECT_EQ(*Root.attr("b"), "two");
  EXPECT_EQ(Root.attr("missing"), nullptr);
  ASSERT_EQ(Root.children("child").size(), 2u);
  EXPECT_NE(Root.children("child")[0]->Text.find("hello"),
            std::string::npos);
  EXPECT_EQ(Root.children("child")[1]->attrOr("kind", ""), "x");
}

TEST(Xml, DecodesEntitiesAndCdata) {
  auto Doc = xml::parse("<t a=\"&lt;&amp;&gt;\">x &quot;y&quot; "
                        "<![CDATA[<raw & stuff>]]> &#65;&#x42;</t>");
  ASSERT_TRUE(Doc.ok()) << Doc.error().message();
  EXPECT_EQ(*(*Doc)->attr("a"), "<&>");
  EXPECT_NE((*Doc)->Text.find("<raw & stuff>"), std::string::npos);
  EXPECT_NE((*Doc)->Text.find("AB"), std::string::npos);
}

TEST(Xml, ReportsMalformedDocuments) {
  EXPECT_FALSE(xml::parse("<a><b></a></b>").ok());
  EXPECT_FALSE(xml::parse("<a>").ok());
  EXPECT_FALSE(xml::parse("<a x=1/>").ok());
  EXPECT_FALSE(xml::parse("<a>&bogus;</a>").ok());
  EXPECT_FALSE(xml::parse("<a/><b/>").ok());
  EXPECT_FALSE(xml::parse("").ok());
}

TEST(Xml, WriteParsesBack) {
  xml::Node Root;
  Root.Tag = "cfg";
  Root.setAttr("name", "a<b&c");
  xml::Node *Child = Root.addChild("item");
  Child->setAttr("v", "42");
  Child->Text = "some \"text\"";
  std::string Out = xml::write(Root);
  auto Back = xml::parse(Out);
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  EXPECT_EQ(*(*Back)->attr("name"), "a<b&c");
  EXPECT_EQ((*Back)->child("item")->Text, "some \"text\"");
}

//===----------------------------------------------------------------------===//
// Configuration XML
//===----------------------------------------------------------------------===//

TEST(ConfigXml, RoundTripsFullConfiguration) {
  cfg::Config C = testcfg::producerConsumer();
  std::string Xml = configio::writeConfigXml(C);
  auto Back = configio::parseConfigXml(Xml);
  ASSERT_TRUE(Back.ok()) << Back.error().message();

  EXPECT_EQ(Back->Name, C.Name);
  EXPECT_EQ(Back->NumCoreTypes, C.NumCoreTypes);
  ASSERT_EQ(Back->Cores.size(), C.Cores.size());
  EXPECT_EQ(Back->Cores[1].Module, 1);
  ASSERT_EQ(Back->Partitions.size(), C.Partitions.size());
  EXPECT_EQ(Back->Partitions[0].Tasks[0].Wcet, C.Partitions[0].Tasks[0].Wcet);
  EXPECT_EQ(Back->Partitions[0].Windows[0].End, 20);
  ASSERT_EQ(Back->Messages.size(), 1u);
  EXPECT_EQ(Back->Messages[0].NetDelay, 5);
  EXPECT_EQ(Back->Messages[0].Receiver.Partition, 1);
}

TEST(ConfigXml, RejectsBrokenDocuments) {
  EXPECT_FALSE(configio::parseConfigXml("<notconfig/>").ok());
  // Unknown core reference.
  EXPECT_FALSE(configio::parseConfigXml(
                   "<configuration name=\"x\" coreTypes=\"1\">"
                   "<core name=\"c\" module=\"0\" type=\"0\"/>"
                   "<partition name=\"p\" core=\"nope\">"
                   "<task name=\"t\" priority=\"1\" period=\"10\" "
                   "deadline=\"10\" wcet=\"1\"/>"
                   "<window start=\"0\" end=\"10\"/>"
                   "</partition></configuration>")
                   .ok());
  // Message to an unknown task.
  cfg::Config C = testcfg::twoTasksOneCore();
  std::string Xml = configio::writeConfigXml(C);
  std::string Broken = Xml;
  Broken.insert(Broken.find("</configuration>"),
                "<message sender=\"p0/t1\" receiver=\"p0/zzz\" "
                "memDelay=\"1\" netDelay=\"1\"/>");
  EXPECT_FALSE(configio::parseConfigXml(Broken).ok());
}

TEST(ConfigXml, ValidatesSemantics) {
  // Overlapping windows on one core must be rejected at parse time.
  std::string Xml =
      "<configuration name=\"x\" coreTypes=\"1\">"
      "<core name=\"c\" module=\"0\" type=\"0\"/>"
      "<partition name=\"p\" core=\"c\" scheduler=\"FPPS\">"
      "<task name=\"t\" priority=\"1\" period=\"10\" deadline=\"10\" "
      "wcet=\"1\"/>"
      "<window start=\"0\" end=\"6\"/>"
      "<window start=\"5\" end=\"10\"/>"
      "</partition></configuration>";
  auto R = configio::parseConfigXml(Xml);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("overlapping"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Template XML (the UPPAAL translator)
//===----------------------------------------------------------------------===//

TEST(TemplateXml, ParsesLocationsEdgesAndLabels) {
  usl::Declarations Globals;
  ASSERT_FALSE(usl::parseDeclarations("int x; chan go[4]; clock gc;",
                                      Globals, false)
                   .isFailure());
  auto T = configio::parseTemplateXml(
      "<template name=\"Demo\">"
      "  <parameter>int k</parameter>"
      "  <declaration>clock c; int n = 0;</declaration>"
      "  <location id=\"A\" initial=\"true\" invariant=\"c &lt;= k\"/>"
      "  <location id=\"B\" committed=\"true\"/>"
      "  <transition source=\"A\" target=\"B\">"
      "    <label kind=\"select\">i : int[0, 3]</label>"
      "    <label kind=\"guard\">c &gt;= k &amp;&amp; i != 2</label>"
      "    <label kind=\"synchronisation\">go[i]!</label>"
      "    <label kind=\"assignment\">n = n + 1, c = 0</label>"
      "  </transition>"
      "</template>",
      Globals);
  ASSERT_TRUE(T.ok()) << T.error().message();
  EXPECT_EQ((*T)->name(), "Demo");
  EXPECT_EQ((*T)->locations().size(), 2u);
  EXPECT_TRUE((*T)->locations()[1].Committed);
  EXPECT_EQ((*T)->initialLocation(), 0);
  ASSERT_EQ((*T)->edges().size(), 1u);
  const sa::Template::EdgeDef &E = (*T)->edges()[0];
  EXPECT_EQ(E.Labels.Selects.size(), 1u);
  EXPECT_TRUE(E.Labels.Sync.IsSend);
  EXPECT_EQ(E.Labels.Update.Stmts.size(), 1u);
  EXPECT_EQ(E.Labels.Update.ClockResets.size(), 1u);
}

TEST(TemplateXml, SupportsUppaalInitElement) {
  usl::Declarations Globals;
  auto T = configio::parseTemplateXml("<template name=\"T\">"
                                      "<location id=\"A\"/>"
                                      "<location id=\"B\"/>"
                                      "<init ref=\"B\"/>"
                                      "</template>",
                                      Globals);
  ASSERT_TRUE(T.ok()) << T.error().message();
  EXPECT_EQ((*T)->initialLocation(), 1);
}

TEST(TemplateXml, ReportsErrorsWithContext) {
  usl::Declarations Globals;
  auto NoName = configio::parseTemplateXml("<template/>", Globals);
  EXPECT_FALSE(NoName.ok());
  auto BadGuard = configio::parseTemplateXml(
      "<template name=\"T\"><location id=\"A\" initial=\"true\"/>"
      "<transition source=\"A\" target=\"A\">"
      "<label kind=\"guard\">undeclared_var > 0</label>"
      "</transition></template>",
      Globals);
  ASSERT_FALSE(BadGuard.ok());
  EXPECT_NE(BadGuard.error().message().find("undeclared"),
            std::string::npos);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
