//===- tests/SchedulerSweepTest.cpp - Scheduler theory property sweeps ------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Classic scheduling-theory results, checked against the model on random
// single-partition, full-window, implicit-deadline task sets:
//
//  * EDF optimality: a task set is EDF-schedulable iff U <= 1;
//  * dominance: whatever FPPS schedules, EDF schedules too;
//  * the Liu & Layland bound: FPPS with rate-monotonic priorities always
//    succeeds below n(2^(1/n)-1) utilization;
//  * FPNPS never beats FPPS on worst response times of the highest-
//    priority task... (blocking): checked as "hi task's worst response
//    under FPNPS >= under FPPS".
//
// These hold only in the restricted setting (one partition, one full
// window, independent synchronous tasks), which the generator guarantees.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"
#include "support/MathExtras.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace swa;
using namespace swa::analysis;

namespace {

/// One partition on one core, full window, implicit deadlines.
cfg::Config taskSet(uint64_t Seed, double Utilization,
                    cfg::SchedulerKind Kind) {
  Rng R(Seed);
  cfg::Config C;
  C.Name = "sweep";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"c", 0, 0});
  cfg::Partition P;
  P.Name = "p";
  P.Core = 0;
  P.Scheduler = Kind;
  int N = static_cast<int>(R.uniformInt(2, 5));
  std::vector<double> U = gen::uunifast(R, N, Utilization);
  std::vector<cfg::TimeValue> Periods = {16, 32, 64};
  for (int I = 0; I < N; ++I) {
    cfg::Task T;
    T.Name = "t" + std::to_string(I);
    T.Period = Periods[R.index(Periods.size())];
    T.Deadline = T.Period;
    cfg::TimeValue Cost = static_cast<cfg::TimeValue>(
        std::llround(U[static_cast<size_t>(I)] *
                     static_cast<double>(T.Period)));
    T.Wcet = {std::max<cfg::TimeValue>(1, std::min(Cost, T.Period))};
    // Rate-monotonic priorities, unique.
    T.Priority = 1000 - static_cast<int>(T.Period) * 10 + I;
    P.Tasks.push_back(std::move(T));
  }
  cfg::TimeValue L = 1;
  for (const cfg::Task &T : P.Tasks)
    L = lcm64(L, T.Period);
  P.Windows.push_back({0, L});
  C.Partitions.push_back(std::move(P));
  return C;
}

double actualUtilization(const cfg::Config &C) {
  double U = 0;
  for (size_t T = 0; T < C.Partitions[0].Tasks.size(); ++T)
    U += static_cast<double>(C.boundWcet({0, static_cast<int>(T)})) /
         static_cast<double>(C.Partitions[0].Tasks[T].Period);
  return U;
}

bool schedulableUnder(cfg::Config C, cfg::SchedulerKind Kind) {
  C.Partitions[0].Scheduler = Kind;
  auto Out = analyzeConfiguration(C);
  EXPECT_TRUE(Out.ok()) << Out.error().message();
  return Out.ok() && Out->Analysis.Schedulable;
}

class SchedulerSweep : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SchedulerSweep, EdfIsOptimalForImplicitDeadlines) {
  for (double Target : {0.6, 0.85, 0.99}) {
    cfg::Config C = taskSet(GetParam() * 7 + 1, Target,
                            cfg::SchedulerKind::EDF);
    if (C.validate().isFailure())
      continue;
    double U = actualUtilization(C);
    bool Sched = schedulableUnder(C, cfg::SchedulerKind::EDF);
    if (U <= 1.0)
      EXPECT_TRUE(Sched) << "EDF missed at U=" << U;
    else
      EXPECT_FALSE(Sched) << "overload schedulable?! U=" << U;
  }
}

TEST_P(SchedulerSweep, EdfDominatesFixedPriorities) {
  cfg::Config C = taskSet(GetParam() * 13 + 3, 0.95,
                          cfg::SchedulerKind::FPPS);
  if (C.validate().isFailure())
    GTEST_SKIP();
  bool Fpps = schedulableUnder(C, cfg::SchedulerKind::FPPS);
  bool Edf = schedulableUnder(C, cfg::SchedulerKind::EDF);
  if (Fpps)
    EXPECT_TRUE(Edf) << "FPPS schedulable but EDF not";
}

TEST_P(SchedulerSweep, RateMonotonicBoundHolds) {
  cfg::Config C =
      taskSet(GetParam() * 29 + 5, 0.6, cfg::SchedulerKind::FPPS);
  if (C.validate().isFailure())
    GTEST_SKIP();
  double N = static_cast<double>(C.Partitions[0].Tasks.size());
  double Bound = N * (std::pow(2.0, 1.0 / N) - 1.0);
  if (actualUtilization(C) <= Bound)
    EXPECT_TRUE(schedulableUnder(C, cfg::SchedulerKind::FPPS))
        << "RM bound violated at U=" << actualUtilization(C);
}

TEST_P(SchedulerSweep, NonPreemptionOnlyDelaysTheUrgentTask) {
  cfg::Config C =
      taskSet(GetParam() * 31 + 11, 0.5, cfg::SchedulerKind::FPPS);
  if (C.validate().isFailure())
    GTEST_SKIP();

  auto WorstOfBest = [&](cfg::SchedulerKind Kind) -> int64_t {
    cfg::Config C2 = C;
    C2.Partitions[0].Scheduler = Kind;
    auto Out = analyzeConfiguration(C2);
    EXPECT_TRUE(Out.ok());
    // The highest-priority task.
    int Best = 0;
    for (size_t T = 1; T < C2.Partitions[0].Tasks.size(); ++T)
      if (C2.Partitions[0].Tasks[T].Priority >
          C2.Partitions[0].Tasks[static_cast<size_t>(Best)].Priority)
        Best = static_cast<int>(T);
    int G = C2.globalTaskId({0, Best});
    return Out->Analysis.WorstResponse[static_cast<size_t>(G)];
  };

  int64_t Fpps = WorstOfBest(cfg::SchedulerKind::FPPS);
  int64_t Fpnps = WorstOfBest(cfg::SchedulerKind::FPNPS);
  if (Fpps >= 0 && Fpnps >= 0)
    EXPECT_GE(Fpnps, Fpps)
        << "non-preemption improved the most urgent task?";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerSweep,
                         ::testing::Range<uint64_t>(1, 13));

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
