//===- tests/UslTest.cpp - USL front-end unit tests ------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Binder.h"
#include "usl/Interp.h"
#include "usl/Lexer.h"
#include "usl/Parser.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::usl;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenizesPunctuationAndKeywords) {
  auto Toks = lex("int x = 3 <= 4 && !true || a');");
  ASSERT_TRUE(Toks.ok()) << Toks.error().message();
  std::vector<TokenKind> Kinds;
  for (const Token &T : *Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::KwInt,   TokenKind::Identifier, TokenKind::Assign,
      TokenKind::IntLiteral, TokenKind::Le,      TokenKind::IntLiteral,
      TokenKind::AndAnd,  TokenKind::Not,        TokenKind::KwTrue,
      TokenKind::OrOr,    TokenKind::Identifier, TokenKind::Prime,
      TokenKind::RParen,  TokenKind::Semi,       TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, SkipsComments) {
  auto Toks = lex("a // line\n /* block\n spans */ b");
  ASSERT_TRUE(Toks.ok());
  ASSERT_EQ(Toks->size(), 3u);
  EXPECT_EQ((*Toks)[0].Text, "a");
  EXPECT_EQ((*Toks)[1].Text, "b");
}

TEST(Lexer, ReportsUnterminatedComment) {
  auto Toks = lex("a /* never closed");
  ASSERT_FALSE(Toks.ok());
  EXPECT_NE(Toks.error().message().find("unterminated"), std::string::npos);
}

TEST(Lexer, ReportsUnknownCharacter) {
  auto Toks = lex("a $ b");
  ASSERT_FALSE(Toks.ok());
}

TEST(Lexer, ReportsIntegerOverflow) {
  auto Toks = lex("99999999999999999999999");
  ASSERT_FALSE(Toks.ok());
  EXPECT_NE(Toks.error().message().find("overflow"), std::string::npos);
}

TEST(Lexer, TracksLineAndColumn) {
  auto Toks = lex("a\n  b");
  ASSERT_TRUE(Toks.ok());
  EXPECT_EQ((*Toks)[1].Loc.Line, 2);
  EXPECT_EQ((*Toks)[1].Loc.Col, 3);
}

//===----------------------------------------------------------------------===//
// Declarations and types
//===----------------------------------------------------------------------===//

TEST(Decls, ParsesVariablesConstantsClocksChannels) {
  Declarations D;
  Error E = parseDeclarations("const int N = 4;"
                              "int x = 1, ys[N] = {1, 2, 3, 4};"
                              "bool flag;"
                              "clock c1, c2;"
                              "chan go;"
                              "broadcast chan tick[N];",
                              D, /*IsTemplate=*/false);
  ASSERT_FALSE(E) << E.message();
  EXPECT_EQ(D.Vars.size(), 3u);
  EXPECT_EQ(D.Clocks.size(), 2u);
  EXPECT_EQ(D.Channels.size(), 2u);
  EXPECT_EQ(D.Consts.size(), 1u);
  EXPECT_EQ(D.lookup("ys")->Ty.Kind, TypeKind::IntArray);
  EXPECT_EQ(D.lookup("ys")->Ty.Size, 4);
  EXPECT_TRUE(D.lookup("tick")->Broadcast);
  EXPECT_EQ(D.lookup("tick")->Ty.Size, 4);
}

TEST(Decls, RejectsRedefinition) {
  Declarations D;
  Error E = parseDeclarations("int x; bool x;", D, false);
  ASSERT_TRUE(E.isFailure());
  EXPECT_NE(E.message().find("redefinition"), std::string::npos);
}

TEST(Decls, RejectsChannelInTemplate) {
  Declarations D;
  Error E = parseDeclarations("chan go;", D, /*IsTemplate=*/true);
  ASSERT_TRUE(E.isFailure());
}

TEST(Decls, ParsesRangedInts) {
  Declarations D;
  Error E = parseDeclarations("int[0, 7] small;", D, false);
  ASSERT_FALSE(E) << E.message();
  Symbol *S = D.lookup("small");
  ASSERT_TRUE(S->HasRange);
  EXPECT_EQ(S->RangeLo, 0);
  EXPECT_EQ(S->RangeHi, 7);
}

TEST(Decls, ParsesFunctions) {
  Declarations D;
  Error E = parseDeclarations(
      "int total;"
      "int add(int a, int b) { return a + b; }"
      "void bump(int d) { total = total + d; }"
      "int pure2(int a) { return add(a, 1); }",
      D, false);
  ASSERT_FALSE(E) << E.message();
  ASSERT_EQ(D.Funcs.size(), 3u);
  EXPECT_FALSE(D.lookup("add")->Func->WritesState);
  EXPECT_TRUE(D.lookup("bump")->Func->WritesState);
  EXPECT_FALSE(D.lookup("pure2")->Func->WritesState);
}

TEST(Decls, TypeErrorsAreReported) {
  Declarations D;
  EXPECT_TRUE(parseDeclarations("int x = true;", D, false).isFailure());
  Declarations D2;
  EXPECT_TRUE(
      parseDeclarations("bool f() { return 3; }", D2, false).isFailure());
  Declarations D3;
  EXPECT_TRUE(
      parseDeclarations("int f() { return; }", D3, false).isFailure());
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {

/// Parses global declarations, lays out a store, binds and evaluates an
/// int expression against it.
class EvalFixture {
public:
  explicit EvalFixture(const std::string &DeclSrc) : Binder_(Target) {
    Error E = parseDeclarations(DeclSrc, D, false);
    EXPECT_FALSE(E) << E.message();
    for (const Declarations::VarInit &VI : D.Vars) {
      int Base = static_cast<int>(Store.size());
      int Size = VI.Sym->Ty.isArray() ? VI.Sym->Ty.Size : 1;
      for (int I = 0; I < Size; ++I) {
        int64_t Init = 0;
        if (static_cast<size_t>(I) < VI.Init.size()) {
          auto V = foldConst(*VI.Init[static_cast<size_t>(I)]);
          EXPECT_TRUE(V.ok());
          Init = *V;
        }
        Store.push_back(Init);
      }
      Binder_.mapStore(VI.Sym, Base);
    }
  }

  int64_t eval(const std::string &ExprSrc) {
    auto E = parseIntExpr(ExprSrc, D);
    EXPECT_TRUE(E.ok()) << E.error().message();
    auto B = Binder_.bindExpr(**E);
    EXPECT_TRUE(B.ok()) << B.error().message();
    EvalContext Ctx;
    Ctx.Store = &Store;
    Ctx.ConstArrays = &Target.ConstArrays;
    Ctx.FuncTable = &Target.FuncTable;
    Ctx.StepBudget = DefaultStepBudget;
    return evalExpr(**B, Ctx, 0);
  }

  Declarations D;
  BindTarget Target;
  Binder Binder_;
  std::vector<int64_t> Store;
};

} // namespace

TEST(Eval, ArithmeticAndPrecedence) {
  EvalFixture F("");
  EXPECT_EQ(F.eval("2 + 3 * 4"), 14);
  EXPECT_EQ(F.eval("(2 + 3) * 4"), 20);
  EXPECT_EQ(F.eval("10 / 3"), 3);
  EXPECT_EQ(F.eval("10 % 3"), 1);
  EXPECT_EQ(F.eval("-5 + 2"), -3);
  EXPECT_EQ(F.eval("1 < 2 ? 10 : 20"), 10);
}

TEST(Eval, VariablesAndArrays) {
  EvalFixture F("int x = 7; int a[3] = {10, 20, 30};");
  EXPECT_EQ(F.eval("x + a[2]"), 37);
  EXPECT_EQ(F.eval("a[x - 6]"), 20);
}

TEST(Eval, ConstantsFoldAtParseTime) {
  EvalFixture F("const int N = 6; const int T[3] = {5, 6, 7};");
  EXPECT_EQ(F.eval("N * 2"), 12);
  EXPECT_EQ(F.eval("T[1] + T[2]"), 13);
}

TEST(Eval, FunctionsWithControlFlow) {
  EvalFixture F("int fib(int n) {"
                "  if (n < 2) return n;"
                "  return fib(n - 1) + fib(n - 2);"
                "}"
                "int sumTo(int n) {"
                "  int acc = 0;"
                "  for (int i = 1; i <= n; i++) acc += i;"
                "  return acc;"
                "}"
                "int whileDown(int n) {"
                "  int steps = 0;"
                "  while (n > 1) { if (n % 2 == 0) n = n / 2;"
                "                  else n = 3 * n + 1; steps++; }"
                "  return steps;"
                "}");
  EXPECT_EQ(F.eval("fib(10)"), 55);
  EXPECT_EQ(F.eval("sumTo(100)"), 5050);
  EXPECT_EQ(F.eval("whileDown(6)"), 8);
}

TEST(Eval, FunctionArrayLocals) {
  EvalFixture F("int rev3(int a, int b, int c) {"
                "  int buf[3];"
                "  buf[0] = a; buf[1] = b; buf[2] = c;"
                "  return buf[2] * 100 + buf[1] * 10 + buf[0];"
                "}");
  EXPECT_EQ(F.eval("rev3(1, 2, 3)"), 321);
}

TEST(Eval, ShortCircuit) {
  // Division by zero on the unevaluated side must not trigger.
  EvalFixture F("int x = 0;");
  EXPECT_EQ(F.eval("(x == 0 || 1 / x > 0) ? 1 : 0"), 1);
  EXPECT_EQ(F.eval("(x != 0 && 1 / x > 0) ? 1 : 0"), 0);
}

TEST(Eval, GlobalStateMutationThroughFunctions) {
  EvalFixture F("int total = 0;"
                "void addTwice(int d) { total += d; total += d; }"
                "int get() { return total; }"
                "int probe(int d) { addTwice(d); return get(); }");
  EXPECT_EQ(F.eval("probe(21)"), 42);
}

TEST(Parser, RejectsClockMisuse) {
  Declarations D;
  ASSERT_FALSE(parseDeclarations("clock c; int x;", D, false).isFailure());
  EXPECT_FALSE(parseIntExpr("c + 1", D).ok());
  EXPECT_FALSE(parseBoolExpr("c == c", D).ok());
  EXPECT_FALSE(parseBoolExpr("(c >= 1) || x > 0", D).ok());
  EXPECT_FALSE(parseBoolExpr("!(c >= 1)", D).ok());
}

TEST(Parser, GuardSplitsClockConjuncts) {
  Declarations D;
  ASSERT_FALSE(
      parseDeclarations("clock c; int x; bool f;", D, false).isFailure());
  auto Labels = parseEdgeLabels("", "c >= 5 && x > 0 && f && c <= 9", "",
                                "", D);
  ASSERT_TRUE(Labels.ok()) << Labels.error().message();
  EXPECT_EQ(Labels->Guard.Clocks.size(), 2u);
  ASSERT_TRUE(Labels->Guard.DataPart != nullptr);
}

TEST(Parser, InvariantRatesAndUppers) {
  Declarations D;
  ASSERT_FALSE(
      parseDeclarations("clock c, e; int run;", D, false).isFailure());
  auto Inv = parseInvariant("c <= 10 && e' == run && run >= 0", D);
  ASSERT_TRUE(Inv.ok()) << Inv.error().message();
  EXPECT_EQ(Inv->Uppers.size(), 1u);
  EXPECT_EQ(Inv->Rates.size(), 1u);
  ASSERT_TRUE(Inv->DataPart != nullptr);
}

TEST(Parser, RejectsRateInGuard) {
  Declarations D;
  ASSERT_FALSE(parseDeclarations("clock c;", D, false).isFailure());
  auto Labels = parseEdgeLabels("", "c' == 0", "", "", D);
  EXPECT_FALSE(Labels.ok());
}

TEST(Parser, RejectsImpureGuards) {
  Declarations D;
  ASSERT_FALSE(parseDeclarations("int x;"
                                 "void poke() { x = 1; }"
                                 "bool probe() { poke(); return true; }",
                                 D, false)
                   .isFailure());
  auto Labels = parseEdgeLabels("", "probe()", "", "", D);
  ASSERT_FALSE(Labels.ok());
  EXPECT_NE(Labels.error().message().find("writes shared state"),
            std::string::npos);
}

TEST(Parser, UpdateSeparatesClockResets) {
  Declarations D;
  ASSERT_FALSE(
      parseDeclarations("clock c; int x;", D, false).isFailure());
  auto Labels = parseEdgeLabels("", "", "", "x = 3, c = 0, x += 1", D);
  ASSERT_TRUE(Labels.ok()) << Labels.error().message();
  EXPECT_EQ(Labels->Update.Stmts.size(), 2u);
  ASSERT_EQ(Labels->Update.ClockResets.size(), 1u);
  EXPECT_EQ(Labels->Update.ClockResets[0]->Name, "c");
}

TEST(Parser, RejectsNonZeroClockReset) {
  Declarations D;
  ASSERT_FALSE(parseDeclarations("clock c;", D, false).isFailure());
  auto Labels = parseEdgeLabels("", "", "", "c = 5", D);
  EXPECT_FALSE(Labels.ok());
}

TEST(Parser, SelectBindingsVisibleInGuardAndUpdate) {
  Declarations D;
  ASSERT_FALSE(parseDeclarations("int picked; chan go[8];", D, false)
                   .isFailure());
  auto Labels = parseEdgeLabels("i : int[0, 7]", "i % 2 == 0", "go[i]!",
                                "picked = i", D);
  ASSERT_TRUE(Labels.ok()) << Labels.error().message();
  ASSERT_EQ(Labels->Selects.size(), 1u);
  EXPECT_TRUE(Labels->Sync.IsSend);
  ASSERT_TRUE(Labels->Sync.IndexExpr != nullptr);
}

TEST(Parser, SyncLabelForms) {
  Declarations D;
  ASSERT_FALSE(
      parseDeclarations("chan a; chan b[3]; int k;", D, false).isFailure());
  EXPECT_TRUE(parseEdgeLabels("", "", "a!", "", D).ok());
  EXPECT_TRUE(parseEdgeLabels("", "", "a?", "", D).ok());
  EXPECT_TRUE(parseEdgeLabels("", "", "b[k + 1]?", "", D).ok());
  EXPECT_FALSE(parseEdgeLabels("", "", "a", "", D).ok());
  EXPECT_FALSE(parseEdgeLabels("", "", "k!", "", D).ok());
  // Indexing a scalar channel is rejected.
  EXPECT_FALSE(parseEdgeLabels("", "", "a[0]!", "", D).ok());
}

//===----------------------------------------------------------------------===//
// Binder
//===----------------------------------------------------------------------===//

TEST(Binder, FoldsScalarParams) {
  Declarations Globals;
  Declarations TDecls(&Globals);
  ASSERT_FALSE(parseTemplateParams("int period, int[] wcet", TDecls)
                   .isFailure());
  auto E = parseIntExpr("period * 2 + wcet[1]", TDecls);
  ASSERT_TRUE(E.ok()) << E.error().message();

  BindTarget Target;
  Binder B(Target);
  B.mapParam(TDecls.lookup("period"), {50});
  B.mapParam(TDecls.lookup("wcet"), {3, 4, 5});
  auto Bound = B.bindExpr(**E);
  ASSERT_TRUE(Bound.ok()) << Bound.error().message();
  // Everything folded to a literal at bind time.
  EXPECT_EQ((*Bound)->Kind, ExprKind::IntLit);
  EXPECT_EQ((*Bound)->Literal, 104);
}

TEST(Binder, ReportsMissingBindings) {
  Declarations Globals;
  ASSERT_FALSE(parseDeclarations("int x;", Globals, false).isFailure());
  auto E = parseIntExpr("x + 1", Globals);
  ASSERT_TRUE(E.ok());
  BindTarget Target;
  Binder B(Target); // No mapStore for x.
  auto Bound = B.bindExpr(**E);
  EXPECT_FALSE(Bound.ok());
}

TEST(Interp, ReadSetCollectorSeesThroughCalls) {
  EvalFixture F("int a; int b[2];"
                "int readB(int i) { return b[i]; }"
                "int readBoth() { return a + readB(0); }");
  auto E = parseIntExpr("readBoth()", F.D);
  ASSERT_TRUE(E.ok());
  auto Bound = F.Binder_.bindExpr(**E);
  ASSERT_TRUE(Bound.ok()) << Bound.error().message();

  ReadSetCollector RSC(F.Target.FuncTable);
  std::vector<int32_t> Slots;
  RSC.collect(**Bound, Slots);
  std::sort(Slots.begin(), Slots.end());
  Slots.erase(std::unique(Slots.begin(), Slots.end()), Slots.end());
  // a is slot 0; b occupies slots 1..2; the dynamic index makes both b
  // slots count.
  EXPECT_EQ(Slots, (std::vector<int32_t>{0, 1, 2}));
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
