//===- tests/UslSemaTest.cpp - USL type/semantic rule coverage --------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// One test per front-end rule: every rejection the parser/type checker is
// supposed to make, and the corner acceptances around them.
//
//===----------------------------------------------------------------------===//

#include "usl/Decls.h"
#include "usl/Parser.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::usl;

namespace {

/// Parses decls; expects success.
Declarations &decls(Declarations &D, const std::string &Src) {
  Error E = parseDeclarations(Src, D, false);
  EXPECT_FALSE(E) << Src << ": " << E.message();
  return D;
}

/// True when the declaration block is rejected.
bool rejectsDecl(const std::string &Src) {
  Declarations D;
  return parseDeclarations(Src, D, false).isFailure();
}

/// True when the expression is rejected in the given scope.
bool rejectsExpr(const Declarations &D, const std::string &Src) {
  return !parseBoolExpr(Src, D).ok() && !parseIntExpr(Src, D).ok();
}

} // namespace

//===----------------------------------------------------------------------===//
// Types in expressions
//===----------------------------------------------------------------------===//

TEST(Sema, ArithmeticRequiresInts) {
  Declarations D;
  decls(D, "int i; bool b;");
  EXPECT_TRUE(rejectsExpr(D, "b + 1"));
  EXPECT_TRUE(rejectsExpr(D, "i * b"));
  EXPECT_TRUE(rejectsExpr(D, "-b"));
  EXPECT_TRUE(parseIntExpr("i + 1", D).ok());
}

TEST(Sema, LogicRequiresBools) {
  Declarations D;
  decls(D, "int i; bool b;");
  EXPECT_TRUE(rejectsExpr(D, "i && b"));
  EXPECT_TRUE(rejectsExpr(D, "!i"));
  EXPECT_TRUE(rejectsExpr(D, "b || 3"));
  EXPECT_TRUE(parseBoolExpr("b && i > 0", D).ok());
}

TEST(Sema, EqualityNeedsMatchingKinds) {
  Declarations D;
  decls(D, "int i; bool b;");
  EXPECT_TRUE(rejectsExpr(D, "i == b"));
  EXPECT_TRUE(parseBoolExpr("b == (i > 0)", D).ok());
}

TEST(Sema, TernaryBranchesMustMatch) {
  Declarations D;
  decls(D, "int i; bool b;");
  EXPECT_TRUE(rejectsExpr(D, "b ? 1 : false"));
  EXPECT_TRUE(rejectsExpr(D, "i ? 1 : 2")); // Condition must be bool.
  EXPECT_TRUE(parseIntExpr("b ? 1 : 2", D).ok());
}

TEST(Sema, ArraysAreNotValues) {
  Declarations D;
  decls(D, "int a[3]; int i;");
  EXPECT_TRUE(rejectsExpr(D, "a + 1"));
  EXPECT_TRUE(rejectsExpr(D, "i[0]")); // Scalar is not subscriptable.
  EXPECT_TRUE(rejectsExpr(D, "a[true]"));
  EXPECT_TRUE(parseIntExpr("a[i]", D).ok());
}

TEST(Sema, UndeclaredAndMisusedNames) {
  Declarations D;
  decls(D, "int i; chan c; int f() { return 1; }");
  EXPECT_TRUE(rejectsExpr(D, "nothere"));
  EXPECT_TRUE(rejectsExpr(D, "c + 1")); // Channels are not values.
  EXPECT_TRUE(rejectsExpr(D, "f"));     // Function without call.
  EXPECT_TRUE(rejectsExpr(D, "i(1)"));  // Calling a variable.
}

TEST(Sema, CallArityAndTypes) {
  Declarations D;
  decls(D, "int f(int a, bool b) { if (b) return a; return 0; }");
  EXPECT_TRUE(rejectsExpr(D, "f(1)"));
  EXPECT_TRUE(rejectsExpr(D, "f(1, 2)"));
  EXPECT_TRUE(rejectsExpr(D, "f(true, true)"));
  EXPECT_TRUE(parseIntExpr("f(1, true)", D).ok());
}

//===----------------------------------------------------------------------===//
// Declarations and functions
//===----------------------------------------------------------------------===//

TEST(Sema, ConstsMustFold) {
  EXPECT_TRUE(rejectsDecl("int x; const int N = x;"));
  EXPECT_FALSE(rejectsDecl("const int N = 2 * 3 + 1;"));
  EXPECT_TRUE(rejectsDecl("const int N = 1 / 0;"));
}

TEST(Sema, ArraySizesMustFoldAndBePositive) {
  EXPECT_TRUE(rejectsDecl("int n; int a[n];"));
  EXPECT_TRUE(rejectsDecl("int a[0];"));
  EXPECT_TRUE(rejectsDecl("int a[-3];"));
  EXPECT_FALSE(rejectsDecl("const int N = 4; int a[N * 2];"));
}

TEST(Sema, ArrayInitializerLengths) {
  EXPECT_TRUE(rejectsDecl("int a[2] = {1, 2, 3};"));
  EXPECT_FALSE(rejectsDecl("int a[3] = {1};")); // Remainder zero-filled.
  EXPECT_TRUE(rejectsDecl("const int a[2] = {1};")); // Consts are exact.
}

TEST(Sema, VoidRestrictions) {
  EXPECT_TRUE(rejectsDecl("void v;"));
  EXPECT_TRUE(rejectsDecl("void f() { return 1; }"));
  EXPECT_TRUE(rejectsDecl("int f() { return; }"));
  Declarations D;
  decls(D, "int g; void f() { g = 1; }");
  // A void call is a statement, not a value.
  EXPECT_TRUE(rejectsExpr(D, "f() + 1"));
}

TEST(Sema, LocalScopingAndShadowing) {
  // Locals are block-scoped; using one after its block fails.
  EXPECT_TRUE(rejectsDecl("int f() { if (true) { int t = 1; } "
                          "return t; }"));
  // Shadowing a global inside a function body is allowed.
  EXPECT_FALSE(rejectsDecl("int g; int f() { int g = 2; return g; }"));
  // Duplicate locals in one block are not.
  EXPECT_TRUE(rejectsDecl("int f() { int a; int a; return 0; }"));
  // Duplicate parameters are not.
  EXPECT_TRUE(rejectsDecl("int f(int a, int a) { return a; }"));
}

TEST(Sema, AssignmentRules) {
  EXPECT_TRUE(rejectsDecl("const int N = 3; void f() { N = 4; }"));
  EXPECT_TRUE(rejectsDecl("int a[2]; void f() { a = 1; }"));
  EXPECT_TRUE(rejectsDecl("bool b; void f() { b += true; }"));
  EXPECT_TRUE(rejectsDecl("int i; void f() { i = true; }"));
  EXPECT_FALSE(rejectsDecl("int i; void f() { i += 2; i -= 1; i++; }"));
}

TEST(Sema, RangesParseAndValidate) {
  EXPECT_TRUE(rejectsDecl("int[5, 2] x;")); // Empty range.
  EXPECT_TRUE(rejectsDecl("int y; int[0, y] x;"));
  Declarations D;
  decls(D, "const int HI = 7; int[0, HI] x;");
  EXPECT_EQ(D.lookup("x")->RangeHi, 7);
}

//===----------------------------------------------------------------------===//
// Clock discipline
//===----------------------------------------------------------------------===//

TEST(Sema, ClocksOnlyInComparisons) {
  Declarations D;
  decls(D, "clock c; clock d; int i;");
  EXPECT_TRUE(rejectsExpr(D, "c + 1"));
  EXPECT_TRUE(rejectsExpr(D, "c == d"));
  EXPECT_TRUE(rejectsExpr(D, "c != 3"));
  // Clock conditions only combine with &&, at a guard's top level.
  auto Ok = parseEdgeLabels("", "c >= 1 && i == 0 && c <= 9", "", "", D);
  EXPECT_TRUE(Ok.ok()) << Ok.error().message();
  EXPECT_FALSE(parseEdgeLabels("", "c >= 1 || i == 0", "", "", D).ok());
  EXPECT_FALSE(
      parseEdgeLabels("", "i == 0 ? c >= 1 : false", "", "", D).ok());
}

TEST(Sema, ClocksForbiddenInsideFunctions) {
  EXPECT_TRUE(rejectsDecl("clock c; int f() { return c > 1 ? 1 : 0; }"));
  EXPECT_TRUE(rejectsDecl("clock c; void f() { c = 0; }"));
}

TEST(Sema, ComparisonNormalizationBothSides) {
  Declarations D;
  decls(D, "clock c;");
  // int-on-the-left comparisons normalize to clock-on-the-left.
  auto G = parseEdgeLabels("", "5 <= c", "", "", D);
  ASSERT_TRUE(G.ok()) << G.error().message();
  ASSERT_EQ(G->Guard.Clocks.size(), 1u);
  EXPECT_EQ(G->Guard.Clocks[0].Op, BinaryOp::Ge);
}

TEST(Sema, InvariantRateForms) {
  Declarations D;
  decls(D, "clock c; int on;");
  EXPECT_TRUE(parseInvariant("c' == ((on == 1) ? 1 : 0)", D).ok());
  EXPECT_FALSE(parseInvariant("c' >= 1", D).ok()); // Only '=='.
  EXPECT_FALSE(parseInvariant("on' == 1", D).ok()); // Non-clock rate.
  EXPECT_FALSE(parseInvariant("c >= 1", D).ok());   // Lower bound.
}

TEST(Sema, SelectRules) {
  Declarations D;
  decls(D, "int taken; chan go[4];");
  // Select shadows nothing and is in scope for guard+sync+update.
  auto L = parseEdgeLabels("i : int[0, 3], j : int[0, 1]",
                           "i != j", "go[i]!", "taken = i + j", D);
  ASSERT_TRUE(L.ok()) << L.error().message();
  EXPECT_EQ(L->Selects.size(), 2u);
  // A select may not shadow an existing name.
  EXPECT_FALSE(parseEdgeLabels("taken : int[0, 1]", "", "", "", D).ok());
  // Select variables are read-only.
  EXPECT_FALSE(
      parseEdgeLabels("i : int[0, 3]", "", "", "i = 2", D).ok());
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
