//===- tests/DurableSearchTest.cpp - Kill-and-resume byte identity ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The durable-search headline contract: a configuration search killed at
// any checkpoint and resumed produces a SearchResult *byte-identical* to
// the uninterrupted run — same verdict stream, same counters, same log —
// for Workers 1/2/4. Exercised three ways:
//
//  * checkpointing on vs off (cadence must never leak into the result),
//  * the kill grid: SWA_CRASH_AFTER=commit:k death-tests the search at
//    every checkpoint boundary, then resumes from the surviving file,
//  * a real fork() + SIGKILL mid-run (no cooperative injection at all).
//
// Plus the degraded modes: warm cache-only start, a snapshot from a
// different search (typed SnapshotMismatch), and an unwritable
// checkpoint path (search result unaffected).
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"
#include "schedtool/ConfigSearch.h"
#include "schedtool/Snapshot.h"
#include "support/AtomicFile.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__SANITIZE_THREAD__)
#define SWA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SWA_TSAN 1
#endif
#endif

using namespace swa;
using namespace swa::schedtool;

namespace {

/// The standard searchable problem: bindings and windows stripped so the
/// search must discover them (same idiom as SchedtoolTest).
cfg::Config unboundProblem(double Utilization, uint64_t Seed) {
  gen::IndustrialParams P;
  P.Modules = 2;
  P.CoresPerModule = 2;
  P.PartitionsPerCore = 2;
  P.CoreUtilization = Utilization;
  P.Seed = Seed;
  cfg::Config C = gen::industrialConfig(P);
  for (cfg::Partition &Part : C.Partitions) {
    Part.Core = -1;
    Part.Windows.clear();
  }
  return C;
}

/// A problem hard enough that 12 iterations never find a schedulable
/// layout: the search runs all 3 rounds (batch 4) and writes exactly 4
/// checkpoints — one at the top of each round plus the terminal flush.
SearchProblem hardProblem() {
  SearchProblem P;
  P.Base = unboundProblem(0.8, 4);
  P.Seed = 4;
  P.MaxIterations = 12;
  P.BatchSize = 4;
  P.Workers = 2;
  return P;
}
constexpr int kCheckpoints = 4;

/// Full-identity comparison: every SearchResult field, including the
/// cache statistics and the log, must match. (SchedtoolTest's
/// expectSameResult checks a subset; a resumed run restores the partial
/// result verbatim, so nothing is allowed to differ.)
void expectIdenticalResult(const SearchResult &A, const SearchResult &B) {
  EXPECT_EQ(A.Found, B.Found);
  EXPECT_EQ(A.ConfigurationsEvaluated, B.ConfigurationsEvaluated);
  EXPECT_EQ(A.SchedulableSeen, B.SchedulableSeen);
  EXPECT_EQ(A.BestBadness, B.BestBadness);
  EXPECT_EQ(A.BestTrajectory, B.BestTrajectory);
  EXPECT_EQ(A.CandidatesSkipped, B.CandidatesSkipped);
  EXPECT_EQ(A.Cancelled, B.Cancelled);
  EXPECT_EQ(A.CacheHits, B.CacheHits);
  EXPECT_EQ(A.CacheMisses, B.CacheMisses);
  EXPECT_EQ(A.SymmetryFolds, B.SymmetryFolds);
  EXPECT_EQ(A.DuplicateCandidates, B.DuplicateCandidates);
  EXPECT_EQ(A.DecomposedCandidates, B.DecomposedCandidates);
  EXPECT_EQ(A.ComponentsSimulated, B.ComponentsSimulated);
  EXPECT_EQ(A.ComponentCacheHits, B.ComponentCacheHits);
  EXPECT_EQ(A.ComponentCacheMisses, B.ComponentCacheMisses);
  EXPECT_EQ(A.DirtyComponents, B.DirtyComponents);
  EXPECT_EQ(A.CleanComponentsReused, B.CleanComponentsReused);
  EXPECT_EQ(A.SimulationsRun, B.SimulationsRun);
  EXPECT_EQ(A.StopReasonCounts, B.StopReasonCounts);
  EXPECT_EQ(A.Log, B.Log);
  ASSERT_EQ(A.Best.Partitions.size(), B.Best.Partitions.size());
  for (size_t P = 0; P < A.Best.Partitions.size(); ++P) {
    EXPECT_EQ(A.Best.Partitions[P].Core, B.Best.Partitions[P].Core);
    ASSERT_EQ(A.Best.Partitions[P].Windows.size(),
              B.Best.Partitions[P].Windows.size());
    for (size_t W = 0; W < A.Best.Partitions[P].Windows.size(); ++W) {
      EXPECT_EQ(A.Best.Partitions[P].Windows[W].Start,
                B.Best.Partitions[P].Windows[W].Start);
      EXPECT_EQ(A.Best.Partitions[P].Windows[W].End,
                B.Best.Partitions[P].Windows[W].End);
    }
  }
}

} // namespace

TEST(DurableSearch, CheckpointingNeverChangesTheResult) {
  SearchProblem Plain = hardProblem();
  auto Baseline = searchConfiguration(Plain);
  ASSERT_TRUE(Baseline.ok()) << Baseline.error().message();

  std::string Path = testing::TempDir() + "swa_durable_plain.bin";
  std::remove(Path.c_str());
  SearchProblem Ck = hardProblem();
  Ck.CheckpointPath = Path;
  SnapshotStats Stats;
  Ck.CkptStats = &Stats;
  auto Res = searchConfiguration(Ck);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  expectIdenticalResult(*Baseline, *Res);
  EXPECT_EQ(Stats.SnapshotsWritten, static_cast<uint64_t>(kCheckpoints));
  EXPECT_EQ(Stats.WriteFailures, 0u);

  // The terminal snapshot is a complete, loadable image of the run.
  auto L = loadSnapshot(Path, &Stats);
  ASSERT_TRUE(L.ok()) << L.error().message();
  EXPECT_TRUE(L->HasSearchState);
  EXPECT_EQ(L->Iter, 12);
  expectIdenticalResult(*Baseline, L->Res);
  std::remove(Path.c_str());
}

TEST(DurableSearch, ThrottleLimitsCheckpointsToTheTerminalFlush) {
  std::string Path = testing::TempDir() + "swa_durable_throttle.bin";
  std::remove(Path.c_str());
  SearchProblem P = hardProblem();
  P.CheckpointPath = Path;
  P.CheckpointEveryMs = 1000000; // no periodic write can ever be due
  SnapshotStats Stats;
  P.CkptStats = &Stats;
  auto Res = searchConfiguration(P);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  // The terminal flush is throttle-free: exactly one snapshot.
  EXPECT_EQ(Stats.SnapshotsWritten, 1u);
  auto L = loadSnapshot(Path);
  ASSERT_TRUE(L.ok()) << L.error().message();
  EXPECT_EQ(L->Iter, 12);
  std::remove(Path.c_str());
}

// The kill grid. For every checkpoint boundary k, a death-test child
// runs the checkpointed search with SWA_CRASH_AFTER=commit:k — it dies
// with kCrashExitCode the instant the k-th checkpoint is fully durable —
// and the parent resumes from the surviving file at several worker
// counts, demanding the byte-identical result.
//
// Death-test discipline (the crash plan is parsed from the environment
// once per process): the threadsafe style re-executes the binary, so
// SWA_CRASH_AFTER — set *inside* the EXPECT_EXIT statement — is seen by
// a fresh process. The child must not touch AtomicFile before its
// designated statement, so everything parent-side is gated on
// !InDeathTestChild().
TEST(DurableSearch, KilledAtEveryCheckpointResumesByteIdentical) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const bool InChild = testing::internal::InDeathTestChild();
  SearchResult Baseline;
  if (!InChild) {
    auto R = searchConfiguration(hardProblem());
    ASSERT_TRUE(R.ok()) << R.error().message();
    Baseline = R.takeValue();
    ASSERT_FALSE(Baseline.Found)
        << "problem found a schedule; the kill grid needs a full-length run";

    // Pin the checkpoint count the grid below assumes.
    std::string CountPath = testing::TempDir() + "swa_durable_count.bin";
    std::remove(CountPath.c_str());
    SearchProblem PC = hardProblem();
    PC.CheckpointPath = CountPath;
    SnapshotStats Stats;
    PC.CkptStats = &Stats;
    auto RC = searchConfiguration(PC);
    ASSERT_TRUE(RC.ok());
    ASSERT_EQ(Stats.SnapshotsWritten, static_cast<uint64_t>(kCheckpoints))
        << "checkpoint cadence changed; update the kill grid";
    std::remove(CountPath.c_str());
  }

  for (int K = 1; K <= kCheckpoints; ++K) {
    std::string Path =
        testing::TempDir() + "swa_durable_kill_" + std::to_string(K) + ".bin";
    std::remove(Path.c_str());
    std::string Plan = "commit:" + std::to_string(K);
    EXPECT_EXIT(
        {
          setenv("SWA_CRASH_AFTER", Plan.c_str(), 1);
          SearchProblem PK = hardProblem();
          PK.CheckpointPath = Path;
          searchConfiguration(PK);
          std::fprintf(stderr, "checkpoint %d never committed\n", K);
          _exit(1);
        },
        testing::ExitedWithCode(support::AtomicFile::kCrashExitCode), "")
        << "kill point " << K;
    if (InChild)
      continue;

    // The atomicity contract: the file the crashed run left behind is a
    // complete, verifiable snapshot — the k-th checkpoint exactly.
    auto L = loadSnapshot(Path);
    ASSERT_TRUE(L.ok()) << "kill point " << K << ": " << L.error().message();
    EXPECT_TRUE(L->HasSearchState);

    for (int Workers : {1, 2, 4}) {
      SearchProblem PR = hardProblem();
      PR.Workers = Workers;
      PR.Resume = &L.value();
      auto RR = searchConfiguration(PR);
      ASSERT_TRUE(RR.ok())
          << "kill point " << K << ": " << RR.error().message();
      expectIdenticalResult(Baseline, *RR);
    }
    std::remove(Path.c_str());
  }
}

// The same contract without cooperative injection: fork a child that
// runs the checkpointed search, SIGKILL it mid-run, resume in the
// parent. Whatever instant the kill landed — mid-simulation, mid-write,
// between rounds — the resumed (or, if no checkpoint ever became
// durable, cold) search must reproduce the uninterrupted result.
TEST(DurableSearch, SigkilledMidRunResumesByteIdentical) {
#ifdef SWA_TSAN
  GTEST_SKIP() << "raw fork() + SIGKILL is not TSan-clean; the SWA_CRASH_AFTER "
                  "grid above covers the kill points under TSan";
#else
  SearchProblem P = hardProblem();
  P.MaxIterations = 40; // widen the window the kill can land in
  P.Workers = 1;        // the child stays single-threaded

  auto Baseline = searchConfiguration(P);
  ASSERT_TRUE(Baseline.ok()) << Baseline.error().message();

  std::string Path = testing::TempDir() + "swa_durable_sigkill.bin";
  std::remove(Path.c_str());
  pid_t Child = fork();
  ASSERT_GE(Child, 0) << "fork failed";
  if (Child == 0) {
    SearchProblem PC = P;
    PC.CheckpointPath = Path;
    auto R = searchConfiguration(PC);
    _exit(R.ok() ? 0 : 3);
  }
  usleep(15000);
  kill(Child, SIGKILL);
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  // Either we caught it mid-run (killed) or it finished first (clean
  // exit) — both are valid grid points for the resume contract.
  ASSERT_TRUE((WIFSIGNALED(Status) && WTERMSIG(Status) == SIGKILL) ||
              (WIFEXITED(Status) && WEXITSTATUS(Status) == 0))
      << "child status " << Status;

  SearchProblem PR = P;
  Result<Snapshot> L = loadSnapshot(Path);
  if (L.ok()) {
    PR.Resume = &L.value();
  } else {
    // Killed before the first commit became durable: the only acceptable
    // failure is "no such file" — a torn or corrupt file would break the
    // atomicity contract.
    EXPECT_EQ(L.error().code(), ErrorCode::Io) << L.error().message();
  }
  auto RR = searchConfiguration(PR);
  ASSERT_TRUE(RR.ok()) << RR.error().message();
  expectIdenticalResult(*Baseline, *RR);
  std::remove(Path.c_str());
#endif
}

TEST(DurableSearch, WarmCacheOnlyStartPreservesTheVerdictStream) {
  // Strip the search state from a finished run's snapshot, leaving only
  // the verdict cache, and re-run from the top: every decision-visible
  // field must be unchanged (verdicts replay from the warm cache exactly
  // as simulation would decide them); only the cost counters may differ.
  std::string Path = testing::TempDir() + "swa_durable_warm.bin";
  std::remove(Path.c_str());
  SearchProblem P = hardProblem();
  P.CheckpointPath = Path;
  auto Cold = searchConfiguration(P);
  ASSERT_TRUE(Cold.ok()) << Cold.error().message();

  auto L = loadSnapshot(Path);
  ASSERT_TRUE(L.ok()) << L.error().message();
  L->HasSearchState = false;

  SearchProblem PW = hardProblem();
  PW.Resume = &L.value();
  SnapshotStats Stats;
  PW.CkptStats = &Stats;
  auto Warm = searchConfiguration(PW);
  ASSERT_TRUE(Warm.ok()) << Warm.error().message();
  EXPECT_EQ(Cold->Found, Warm->Found);
  EXPECT_EQ(Cold->ConfigurationsEvaluated, Warm->ConfigurationsEvaluated);
  EXPECT_EQ(Cold->SchedulableSeen, Warm->SchedulableSeen);
  EXPECT_EQ(Cold->BestBadness, Warm->BestBadness);
  EXPECT_EQ(Cold->BestTrajectory, Warm->BestTrajectory);
  EXPECT_EQ(Cold->StopReasonCounts, Warm->StopReasonCounts);
  EXPECT_EQ(Cold->CandidatesSkipped, Warm->CandidatesSkipped);
  EXPECT_EQ(Cold->DuplicateCandidates, Warm->DuplicateCandidates);
  // The warm run actually used the disk entries.
  EXPECT_GT(Stats.SnapshotHits, 0u);
  EXPECT_GT(Stats.ConfigEntriesMerged + Stats.ComponentEntriesMerged, 0u);
  std::remove(Path.c_str());
}

TEST(DurableSearch, ForeignSnapshotIsRejectedTyped) {
  std::string Path = testing::TempDir() + "swa_durable_foreign.bin";
  std::remove(Path.c_str());
  SearchProblem P = hardProblem();
  P.CheckpointPath = Path;
  ASSERT_TRUE(searchConfiguration(P).ok());
  auto L = loadSnapshot(Path);
  ASSERT_TRUE(L.ok()) << L.error().message();

  // Same base, different seed.
  SearchProblem Other = hardProblem();
  Other.Seed = 5;
  Other.Resume = &L.value();
  auto R1 = searchConfiguration(Other);
  ASSERT_FALSE(R1.ok());
  EXPECT_EQ(R1.error().code(), ErrorCode::SnapshotMismatch);

  // Same seed, different batch size (a different candidate sequence).
  SearchProblem Batched = hardProblem();
  Batched.BatchSize = 6;
  Batched.Resume = &L.value();
  auto R2 = searchConfiguration(Batched);
  ASSERT_FALSE(R2.ok());
  EXPECT_EQ(R2.error().code(), ErrorCode::SnapshotMismatch);

  // Same seed and batch, different base config.
  SearchProblem Rebased = hardProblem();
  Rebased.Base = unboundProblem(0.8, 5);
  Rebased.Resume = &L.value();
  auto R3 = searchConfiguration(Rebased);
  ASSERT_FALSE(R3.ok());
  EXPECT_EQ(R3.error().code(), ErrorCode::SnapshotMismatch);
  std::remove(Path.c_str());
}

TEST(DurableSearch, UnwritableCheckpointPathNeverChangesTheResult) {
  auto Baseline = searchConfiguration(hardProblem());
  ASSERT_TRUE(Baseline.ok());

  SearchProblem P = hardProblem();
  P.CheckpointPath = "/nonexistent-swa-dir/checkpoint.bin";
  SnapshotStats Stats;
  P.CkptStats = &Stats;
  auto Res = searchConfiguration(P);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  expectIdenticalResult(*Baseline, *Res);
  EXPECT_EQ(Stats.SnapshotsWritten, 0u);
  EXPECT_EQ(Stats.WriteFailures, static_cast<uint64_t>(kCheckpoints));
  EXPECT_FALSE(Stats.LastError.empty());
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
