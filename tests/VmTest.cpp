//===- tests/VmTest.cpp - Bytecode compiler/VM differential tests ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The VM must agree with the tree-walking interpreter on every program:
// hand-written cases for each construct, randomized expression fuzzing,
// and whole-simulation equivalence on a real configuration.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"
#include "support/Rng.h"
#include "usl/Binder.h"
#include "usl/Compiler.h"
#include "usl/Interp.h"
#include "usl/Parser.h"
#include "usl/Vm.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::usl;

namespace {

/// Parses declarations + one int expression, binds them, and evaluates
/// through both engines.
class Differ {
public:
  explicit Differ(const std::string &DeclSrc) : B(Target) {
    Error E = parseDeclarations(DeclSrc, D, false);
    EXPECT_FALSE(E) << E.message();
    for (const Declarations::VarInit &VI : D.Vars) {
      int Base = static_cast<int>(Store.size());
      int Size = VI.Sym->Ty.isArray() ? VI.Sym->Ty.Size : 1;
      for (int I = 0; I < Size; ++I) {
        int64_t Init = 0;
        if (static_cast<size_t>(I) < VI.Init.size())
          Init = *foldConst(*VI.Init[static_cast<size_t>(I)]);
        Store.push_back(Init);
      }
      B.mapStore(VI.Sym, Base);
    }
  }

  /// Evaluates \p ExprSrc with both engines and checks agreement,
  /// including the final store contents.
  int64_t both(const std::string &ExprSrc) {
    auto E = parseIntExpr(ExprSrc, D);
    EXPECT_TRUE(E.ok()) << ExprSrc << ": " << E.error().message();
    auto Bound = B.bindExpr(**E);
    EXPECT_TRUE(Bound.ok()) << Bound.error().message();

    // Compile the functions once.
    if (FuncCode.size() != Target.FuncTable.size()) {
      FuncCode.clear();
      for (const FuncDecl *F : Target.FuncTable) {
        auto C = compileFunction(*F);
        EXPECT_TRUE(C.ok()) << C.error().message();
        FuncCode.push_back(C.takeValue());
      }
    }
    auto Compiled = compileExpr(**Bound);
    EXPECT_TRUE(Compiled.ok()) << Compiled.error().message();

    std::vector<int64_t> StoreA = Store;
    std::vector<int64_t> StoreB = Store;

    EvalContext CtxA;
    CtxA.Store = &StoreA;
    CtxA.ConstArrays = &Target.ConstArrays;
    CtxA.FuncTable = &Target.FuncTable;
    CtxA.StepBudget = DefaultStepBudget;
    int64_t RA = evalExpr(**Bound, CtxA, 0);

    EvalContext CtxB;
    CtxB.Store = &StoreB;
    CtxB.ConstArrays = &Target.ConstArrays;
    CtxB.FuncTable = &Target.FuncTable;
    CtxB.StepBudget = DefaultStepBudget;
    int64_t RB = runCode(*Compiled, FuncCode, CtxB, 0);

    EXPECT_EQ(RA, RB) << ExprSrc;
    EXPECT_EQ(StoreA, StoreB) << ExprSrc << " (store divergence)";
    Store = StoreA; // Carry effects forward for sequences.
    return RA;
  }

  Declarations D;
  BindTarget Target;
  Binder B;
  std::vector<Code> FuncCode;
  std::vector<int64_t> Store;
};

} // namespace

TEST(Vm, ArithmeticAndComparisons) {
  Differ F("");
  EXPECT_EQ(F.both("2 + 3 * 4 - 6 / 2"), 11);
  EXPECT_EQ(F.both("17 % 5"), 2);
  EXPECT_EQ(F.both("-(3 - 8)"), 5);
  EXPECT_EQ(F.both("(3 < 4 ? 10 : 20) + (4 <= 4 ? 1 : 2)"), 11);
  EXPECT_EQ(F.both("(5 > 4 && 3 != 2) ? 1 : 0"), 1);
  EXPECT_EQ(F.both("(5 == 4 || 2 >= 3) ? 1 : 0"), 0);
}

TEST(Vm, ShortCircuitSkipsSideConditions) {
  Differ F("int x = 0;");
  EXPECT_EQ(F.both("(x == 0 || 1 / x > 0) ? 7 : 8"), 7);
  EXPECT_EQ(F.both("(x != 0 && 1 / x > 0) ? 7 : 8"), 8);
}

TEST(Vm, StoreAndArrays) {
  Differ F("int a[4] = {5, 6, 7, 8}; int k = 2;");
  EXPECT_EQ(F.both("a[0] + a[k] + a[k + 1]"), 20);
}

TEST(Vm, FunctionsLoopsRecursion) {
  Differ F("int fib(int n) { if (n < 2) return n;"
           "  return fib(n - 1) + fib(n - 2); }"
           "int sum(int n) { int s = 0;"
           "  for (int i = 1; i <= n; i++) s += i; return s; }"
           "int collatz(int n) { int c = 0;"
           "  while (n > 1) { if (n % 2 == 0) n = n / 2;"
           "                  else n = 3 * n + 1; c++; } return c; }");
  EXPECT_EQ(F.both("fib(12)"), 144);
  EXPECT_EQ(F.both("sum(10) + collatz(27)"), 55 + 111);
}

TEST(Vm, GlobalMutationThroughFunctions) {
  Differ F("int total = 0; int hist[3];"
           "void tally(int v) { total += v; hist[v % 3] += 1; }"
           "int run() { for (int i = 0; i < 7; i++) tally(i); "
           "return total; }");
  EXPECT_EQ(F.both("run()"), 21);
  EXPECT_EQ(F.both("hist[0] * 100 + hist[1] * 10 + hist[2]"), 322);
}

TEST(Vm, FrameArrayLocals) {
  Differ F("int rot(int a, int b, int c) { int buf[3];"
           "  buf[0] = a; buf[1] = b; buf[2] = c;"
           "  int t = buf[0]; buf[0] = buf[2]; buf[2] = t;"
           "  return buf[0] * 100 + buf[1] * 10 + buf[2]; }");
  EXPECT_EQ(F.both("rot(1, 2, 3)"), 321);
}

TEST(Vm, RandomizedExpressionFuzz) {
  // Generate random expression strings from a small grammar and compare
  // engines; all operands are kept positive and divisors nonzero.
  Rng R(99);
  Differ F("int v[8] = {3, 1, 4, 1, 5, 9, 2, 6};"
           "int f(int a, int b) { return (a + 1) * (b + 2) % 97; }");
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::string E = "1";
    int Terms = static_cast<int>(R.uniformInt(1, 6));
    for (int T = 0; T < Terms; ++T) {
      const char *Ops[] = {" + ", " * ", " - ", " % "};
      std::string Op = Ops[R.index(3)];
      switch (R.index(4)) {
      case 0:
        E = "(" + E + Op +
            std::to_string(R.uniformInt(1, 9)) + ")";
        break;
      case 1:
        E = "(" + E + Op + "v[" +
            std::to_string(R.uniformInt(0, 7)) + "])";
        break;
      case 2:
        E = "f(" + E + ", " + std::to_string(R.uniformInt(0, 5)) + ")";
        break;
      case 3:
        E = "(" + E + " < " + std::to_string(R.uniformInt(0, 20)) +
            " ? " + E + " : " + std::to_string(R.uniformInt(0, 9)) + ")";
        break;
      }
    }
    F.both(E);
  }
}

TEST(Vm, WriteLogsMatchInterpreter) {
  Differ F("int a[4]; int n;"
           "void fill() { for (int i = 0; i < 4; i++) a[i] = i; n = 4; }");
  // Run through both engines with write logs and compare the logged slots
  // (the grammar has no comma operator; call fill via a wrapper).
  Error DeclErr = parseDeclarations("int wrap() { fill(); return n; }",
                                    F.D, false);
  ASSERT_FALSE(DeclErr) << DeclErr.message();
  auto E2 = parseIntExpr("wrap()", F.D);
  ASSERT_TRUE(E2.ok());
  auto Bound = F.B.bindExpr(**E2);
  ASSERT_TRUE(Bound.ok()) << Bound.error().message();

  std::vector<Code> FuncCode;
  for (const FuncDecl *Fn : F.Target.FuncTable) {
    auto C = compileFunction(*Fn);
    ASSERT_TRUE(C.ok());
    FuncCode.push_back(C.takeValue());
  }
  auto Compiled = compileExpr(**Bound);
  ASSERT_TRUE(Compiled.ok());

  std::vector<int64_t> StoreA = F.Store, StoreB = F.Store;
  std::vector<int32_t> LogA, LogB;
  EvalContext CA;
  CA.Store = &StoreA;
  CA.ConstArrays = &F.Target.ConstArrays;
  CA.FuncTable = &F.Target.FuncTable;
  CA.WriteLog = &LogA;
  CA.StepBudget = DefaultStepBudget;
  EXPECT_EQ(evalExpr(**Bound, CA, 0), 4);
  EvalContext CB;
  CB.Store = &StoreB;
  CB.ConstArrays = &F.Target.ConstArrays;
  CB.FuncTable = &F.Target.FuncTable;
  CB.WriteLog = &LogB;
  CB.StepBudget = DefaultStepBudget;
  EXPECT_EQ(runCode(*Compiled, FuncCode, CB, 0), 4);
  EXPECT_EQ(LogA, LogB);
}

TEST(Vm, WholeSimulationMatchesInterpreter) {
  // The decisive test: simulate the same configuration with per-site
  // bytecode and with the codes stripped (pure interpreter) and compare
  // the job-level traces.
  cfg::Config C = gen::industrialConfig({.Modules = 2,
                                         .PartitionsPerCore = 2,
                                         .Seed = 17});
  auto Compiled = analysis::analyzeConfiguration(C);
  ASSERT_TRUE(Compiled.ok()) << Compiled.error().message();

  auto Model = core::buildModel(C);
  ASSERT_TRUE(Model.ok());
  // Strip all bytecode: the engines must fall back to the interpreter.
  Model->Net->FuncCode.clear();
  for (auto &A : Model->Net->Automata) {
    for (auto &L : A->Locations) {
      L.DataInvariantCode.clear();
      for (auto &U : L.Uppers)
        U.BoundCode.clear();
      for (auto &Rt : L.Rates)
        Rt.RateCode.clear();
    }
    for (auto &E : A->Edges) {
      E.DataGuardCode.clear();
      E.UpdateCode.clear();
      for (auto &CG : E.ClockGuards)
        CG.BoundCode.clear();
      if (E.Sync)
        E.Sync->IndexCode.clear();
    }
  }
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  auto Trace = core::mapTrace(*Model, R.Events);
  auto Analysis = analysis::analyzeTrace(C, Trace);
  EXPECT_TRUE(
      analysis::jobTracesEquivalent(Compiled->Analysis, Analysis));
  EXPECT_EQ(Compiled->Analysis.Schedulable, Analysis.Schedulable);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
