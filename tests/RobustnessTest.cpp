//===- tests/RobustnessTest.cpp - Malformed-input torture tests ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The robustness contract: every malformed or adversarial input —
// overflowing periods, coprime-period hyperperiod bombs, negative and
// zero-length windows, truncated XML — produces a structured Error in
// every build mode, never undefined behaviour. This suite is the one to
// run under -DSWA_SANITIZE=undefined (`ctest -L robust`), where any
// signed-overflow escape hatch aborts the test instead of silently
// wrapping.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "configio/ConfigXml.h"
#include "core/InstanceBuilder.h"
#include "gen/Workload.h"
#include "nsa/Simulator.h"
#include "schedtool/ConfigSearch.h"
#include "schedtool/Snapshot.h"
#include "support/CancelToken.h"
#include "support/MathExtras.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <thread>

using namespace swa;

namespace {

constexpr int64_t IntMax = std::numeric_limits<int64_t>::max();
constexpr int64_t IntMin = std::numeric_limits<int64_t>::min();

} // namespace

//===----------------------------------------------------------------------===//
// Checked time arithmetic (support/MathExtras.h)
//===----------------------------------------------------------------------===//

TEST(CheckedMath, AddHappyPathAndOverflow) {
  auto Ok = checkedAdd(40, 2);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);

  auto Over = checkedAdd(IntMax, 1);
  ASSERT_FALSE(Over.ok());
  EXPECT_NE(Over.error().message().find("overflow"), std::string::npos);

  auto Under = checkedAdd(IntMin, -1);
  EXPECT_FALSE(Under.ok());

  // The extremes themselves are fine as long as the sum fits.
  auto Edge = checkedAdd(IntMax, 0);
  ASSERT_TRUE(Edge.ok());
  EXPECT_EQ(*Edge, IntMax);
}

TEST(CheckedMath, MulHappyPathAndOverflow) {
  auto Ok = checkedMul(6, 7);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);

  auto Over = checkedMul(IntMax / 2 + 1, 2);
  ASSERT_FALSE(Over.ok());
  EXPECT_NE(Over.error().message().find("overflow"), std::string::npos);

  // -1 * INT64_MIN is the classic non-obvious overflow.
  EXPECT_FALSE(checkedMul(IntMin, -1).ok());
}

TEST(CheckedMath, LcmDomainAndOverflow) {
  auto Ok = checkedLcm(4, 6);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 12);

  EXPECT_FALSE(checkedLcm(0, 5).ok());
  EXPECT_FALSE(checkedLcm(5, -3).ok());

  // Two large coprime values: lcm is their product, which overflows.
  auto Bomb = checkedLcm(IntMax, IntMax - 1);
  ASSERT_FALSE(Bomb.ok());
  EXPECT_NE(Bomb.error().message().find("lcm overflows"), std::string::npos);
}

TEST(CheckedMath, CeilDivDomainAndValues) {
  auto A = checkedCeilDiv(10, 3);
  ASSERT_TRUE(A.ok());
  EXPECT_EQ(*A, 4);
  auto B = checkedCeilDiv(9, 3);
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(*B, 3);
  auto C = checkedCeilDiv(0, 7);
  ASSERT_TRUE(C.ok());
  EXPECT_EQ(*C, 0);

  EXPECT_FALSE(checkedCeilDiv(-1, 3).ok());
  EXPECT_FALSE(checkedCeilDiv(3, 0).ok());

  // The classic (A + B - 1) / B implementation would overflow here; the
  // division form must not (UBSan enforces this).
  auto Huge = checkedCeilDiv(IntMax, 2);
  ASSERT_TRUE(Huge.ok());
  EXPECT_EQ(*Huge, IntMax / 2 + 1);
}

TEST(CheckedMath, SaturatingTierClampsInsteadOfWrapping) {
  EXPECT_EQ(saturatingAdd(IntMax, 1), IntMax);
  EXPECT_EQ(saturatingAdd(IntMin, -1), IntMin);
  EXPECT_EQ(saturatingAdd(40, 2), 42);

  EXPECT_EQ(saturatingMul(IntMax, 2), IntMax);
  EXPECT_EQ(saturatingMul(IntMax, -2), IntMin);
  EXPECT_EQ(saturatingMul(IntMin, -1), IntMax);
  EXPECT_EQ(saturatingMul(-6, 7), -42);

  // lcm64 saturates rather than asserting or wrapping.
  EXPECT_EQ(lcm64(IntMax, IntMax - 1), IntMax);
  EXPECT_EQ(lcm64(4, 6), 12);
}

//===----------------------------------------------------------------------===//
// Hyperperiod overflow through config (tentpole satellite: the former
// assert(!Overflow) in lcm64 is now a structured error path)
//===----------------------------------------------------------------------===//

namespace {

/// A structurally plausible one-core configuration whose task periods are
/// the caller's choice — the hyperperiod bomb factory.
cfg::Config configWithPeriods(const std::vector<cfg::TimeValue> &Periods) {
  cfg::Config C;
  C.Name = "periods";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"m0c0", 0, 0});
  cfg::Partition P;
  P.Name = "p0";
  P.Core = 0;
  int Prio = static_cast<int>(Periods.size());
  for (size_t I = 0; I < Periods.size(); ++I) {
    cfg::Task T;
    T.Name = "t" + std::to_string(I);
    T.Priority = Prio--;
    T.Period = Periods[I];
    T.Deadline = Periods[I];
    T.Wcet = {1};
    P.Tasks.push_back(std::move(T));
  }
  C.Partitions.push_back(std::move(P));
  return C;
}

} // namespace

TEST(HyperperiodOverflow, ValidateRejectsCoprimeGiantPeriods) {
  // lcm(2^62, 2^62 - 1) overflows int64 (consecutive integers are coprime).
  cfg::Config C = configWithPeriods({int64_t(1) << 62, (int64_t(1) << 62) - 1});
  Error E = C.validate();
  ASSERT_TRUE(E.isFailure());
  // The diagnostic names the offending period.
  EXPECT_NE(E.message().find("hyperperiod overflows"), std::string::npos)
      << E.message();
  EXPECT_NE(E.message().find("4611686018427387903"), std::string::npos)
      << E.message();

  auto L = C.checkedHyperperiod();
  EXPECT_FALSE(L.ok());
  // The saturating accessor is defined (not UB) even for rejected configs.
  EXPECT_EQ(C.hyperperiod(), IntMax);
}

TEST(HyperperiodOverflow, ManySmallCoprimePrimesAlsoOverflow) {
  // A hyperperiod bomb of modest-looking periods: the product of these
  // primes exceeds int64 even though each fits in 32 bits.
  cfg::Config C = configWithPeriods(
      {2147483647, 2147483629, 2147483587, 2147483563});
  EXPECT_FALSE(C.checkedHyperperiod().ok());
  EXPECT_TRUE(C.validate().isFailure());
  EXPECT_FALSE(C.checkedJobCount().ok());
  // buildModel validates first, so the bomb never reaches Algorithm 1.
  auto Model = core::buildModel(C);
  EXPECT_FALSE(Model.ok());
}

TEST(HyperperiodOverflow, ReleaseModeRegression) {
  // This test is the Release-mode regression from the issue: with the old
  // assert-based lcm64 the overflow was UB under NDEBUG. It must be a
  // structured Error in every build mode.
  cfg::Config C = configWithPeriods({(int64_t(1) << 61) + 1, int64_t(1) << 61});
  Error E = C.validate();
  ASSERT_TRUE(E.isFailure());
  EXPECT_NE(E.message().find("overflow"), std::string::npos) << E.message();
}

TEST(CheckedConfigAccessors, AgreeWithPlainOnesWhenInRange) {
  cfg::Config C = testcfg::twoTasksOneCore();
  auto L = C.checkedHyperperiod();
  ASSERT_TRUE(L.ok());
  EXPECT_EQ(*L, C.hyperperiod());
  EXPECT_EQ(*L, 20);
  auto Jobs = C.checkedJobCount();
  ASSERT_TRUE(Jobs.ok());
  EXPECT_EQ(*Jobs, C.jobCount());
  EXPECT_EQ(*Jobs, 3); // 20/10 + 20/20.
}

//===----------------------------------------------------------------------===//
// Window and structural torture via Config::validate
//===----------------------------------------------------------------------===//

TEST(WindowTorture, NegativeAndZeroLengthWindowsRejected) {
  {
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Windows = {{-5, 10}};
    EXPECT_TRUE(C.validate().isFailure());
  }
  {
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Windows = {{7, 7}}; // Zero-length.
    EXPECT_TRUE(C.validate().isFailure());
  }
  {
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Windows = {{12, 4}}; // Inverted.
    EXPECT_TRUE(C.validate().isFailure());
  }
  {
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Windows = {{0, 21}}; // Past the hyperperiod.
    Error E = C.validate();
    ASSERT_TRUE(E.isFailure());
    EXPECT_NE(E.message().find("hyperperiod"), std::string::npos);
  }
  {
    // Extreme bounds must not overflow any intermediate in validation.
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Windows = {{IntMin, IntMax}};
    EXPECT_TRUE(C.validate().isFailure());
  }
}

TEST(StructuralTorture, BadTasksAndBindingsRejected) {
  {
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Tasks[0].Period = 0;
    EXPECT_TRUE(C.validate().isFailure());
  }
  {
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Tasks[0].Period = -10;
    EXPECT_TRUE(C.validate().isFailure());
  }
  {
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Tasks[0].Deadline = 0;
    EXPECT_TRUE(C.validate().isFailure());
  }
  {
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Tasks[0].Wcet = {-3};
    EXPECT_TRUE(C.validate().isFailure());
  }
  {
    // An out-of-range binding is invalid under BOTH policies; only an
    // explicit Core == -1 is tolerated, and only under AllowUnbound.
    cfg::Config C = testcfg::twoTasksOneCore();
    C.Partitions[0].Core = 7;
    EXPECT_TRUE(C.validate().isFailure());
    EXPECT_TRUE(
        C.validate(cfg::ValidationPolicy::AllowUnbound).isFailure());
    C.Partitions[0].Core = -1;
    EXPECT_TRUE(C.validate().isFailure());
    EXPECT_FALSE(
        C.validate(cfg::ValidationPolicy::AllowUnbound).isFailure());
  }
}

//===----------------------------------------------------------------------===//
// XML torture through configio
//===----------------------------------------------------------------------===//

namespace {

std::string wrapConfig(const std::string &Body) {
  return "<configuration name=\"x\" coreTypes=\"1\">"
         "<core name=\"c\" module=\"0\" type=\"0\"/>" +
         Body + "</configuration>";
}

} // namespace

TEST(XmlTorture, TruncatedDocumentsAreParseErrors) {
  cfg::Config C = testcfg::producerConsumer();
  std::string Xml = configio::writeConfigXml(C);
  // Chop the serialized document at several depths; every prefix must be
  // rejected cleanly (half a root tag, mid-attribute, mid-element...).
  for (size_t Keep :
       {size_t(1), size_t(10), Xml.size() / 4, Xml.size() / 2,
        Xml.size() - 5}) {
    auto R = configio::parseConfigXml(Xml.substr(0, Keep));
    EXPECT_FALSE(R.ok()) << "prefix of " << Keep << " bytes parsed";
  }
  EXPECT_FALSE(configio::parseConfigXml("").ok());
  EXPECT_FALSE(configio::parseConfigXml("<configuration").ok());
}

TEST(XmlTorture, OverflowingPeriodsInXmlAreStructuredErrors) {
  // Periods that individually parse but whose lcm overflows: the parser's
  // validation pass must reject the document with the hyperperiod
  // diagnostic, not crash downstream.
  std::string Xml = wrapConfig(
      "<partition name=\"p\" core=\"c\">"
      "<task name=\"a\" priority=\"2\" period=\"4611686018427387904\" "
      "deadline=\"4611686018427387904\" wcet=\"1\"/>"
      "<task name=\"b\" priority=\"1\" period=\"4611686018427387903\" "
      "deadline=\"4611686018427387903\" wcet=\"1\"/>"
      "</partition>");
  auto R = configio::parseConfigXml(Xml);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("hyperperiod overflows"),
            std::string::npos)
      << R.error().message();

  // A period too large for int64 at all is an attribute parse error.
  std::string Huge = wrapConfig(
      "<partition name=\"p\" core=\"c\">"
      "<task name=\"a\" priority=\"1\" period=\"99999999999999999999\" "
      "deadline=\"10\" wcet=\"1\"/><window start=\"0\" end=\"10\"/>"
      "</partition>");
  EXPECT_FALSE(configio::parseConfigXml(Huge).ok());
}

TEST(XmlTorture, NegativeAndZeroWindowsInXmlRejected) {
  for (const char *Window :
       {"<window start=\"-3\" end=\"10\"/>", "<window start=\"5\" end=\"5\"/>",
        "<window start=\"9\" end=\"2\"/>"}) {
    std::string Xml = wrapConfig(
        std::string("<partition name=\"p\" core=\"c\">"
                    "<task name=\"t\" priority=\"1\" period=\"10\" "
                    "deadline=\"10\" wcet=\"1\"/>") +
        Window + "</partition>");
    EXPECT_FALSE(configio::parseConfigXml(Xml).ok()) << Window;
  }
}

TEST(XmlTorture, MalformedAttributesRejected) {
  // Non-integer period.
  EXPECT_FALSE(configio::parseConfigXml(
                   wrapConfig("<partition name=\"p\" core=\"c\">"
                              "<task name=\"t\" priority=\"1\" "
                              "period=\"ten\" deadline=\"10\" wcet=\"1\"/>"
                              "<window start=\"0\" end=\"10\"/>"
                              "</partition>"))
                   .ok());
  // Malformed wcet list.
  EXPECT_FALSE(configio::parseConfigXml(
                   wrapConfig("<partition name=\"p\" core=\"c\">"
                              "<task name=\"t\" priority=\"1\" "
                              "period=\"10\" deadline=\"10\" wcet=\"3 x\"/>"
                              "<window start=\"0\" end=\"10\"/>"
                              "</partition>"))
                   .ok());
  // Missing core binding: a parse error that points at the marker.
  auto Missing = configio::parseConfigXml(
      wrapConfig("<partition name=\"p\">"
                 "<task name=\"t\" priority=\"1\" period=\"10\" "
                 "deadline=\"10\" wcet=\"1\"/>"
                 "<window start=\"0\" end=\"10\"/>"
                 "</partition>"));
  ASSERT_FALSE(Missing.ok());
  EXPECT_NE(Missing.error().message().find("unbound"), std::string::npos)
      << Missing.error().message();
}

TEST(XmlTorture, UnboundIsAReservedCoreName) {
  auto R = configio::parseConfigXml(
      "<configuration name=\"x\" coreTypes=\"1\">"
      "<core name=\"unbound\" module=\"0\" type=\"0\"/>"
      "<partition name=\"p\" core=\"unbound\">"
      "<task name=\"t\" priority=\"1\" period=\"10\" deadline=\"10\" "
      "wcet=\"1\"/><window start=\"0\" end=\"10\"/>"
      "</partition></configuration>");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("reserved"), std::string::npos)
      << R.error().message();
}

//===----------------------------------------------------------------------===//
// Round-trip: read(write(C)) == C, including unbound search inputs
//===----------------------------------------------------------------------===//

namespace {

void expectConfigsEqual(const cfg::Config &A, const cfg::Config &B) {
  EXPECT_EQ(A.Name, B.Name);
  EXPECT_EQ(A.NumCoreTypes, B.NumCoreTypes);
  ASSERT_EQ(A.Cores.size(), B.Cores.size());
  for (size_t C = 0; C < A.Cores.size(); ++C) {
    EXPECT_EQ(A.Cores[C].Name, B.Cores[C].Name);
    EXPECT_EQ(A.Cores[C].Module, B.Cores[C].Module);
    EXPECT_EQ(A.Cores[C].CoreType, B.Cores[C].CoreType);
  }
  ASSERT_EQ(A.Partitions.size(), B.Partitions.size());
  for (size_t P = 0; P < A.Partitions.size(); ++P) {
    const cfg::Partition &PA = A.Partitions[P];
    const cfg::Partition &PB = B.Partitions[P];
    EXPECT_EQ(PA.Name, PB.Name);
    EXPECT_EQ(PA.Scheduler, PB.Scheduler);
    EXPECT_EQ(PA.Core, PB.Core);
    ASSERT_EQ(PA.Tasks.size(), PB.Tasks.size());
    for (size_t T = 0; T < PA.Tasks.size(); ++T) {
      EXPECT_EQ(PA.Tasks[T].Name, PB.Tasks[T].Name);
      EXPECT_EQ(PA.Tasks[T].Priority, PB.Tasks[T].Priority);
      EXPECT_EQ(PA.Tasks[T].Wcet, PB.Tasks[T].Wcet);
      EXPECT_EQ(PA.Tasks[T].Period, PB.Tasks[T].Period);
      EXPECT_EQ(PA.Tasks[T].Deadline, PB.Tasks[T].Deadline);
    }
    ASSERT_EQ(PA.Windows.size(), PB.Windows.size());
    for (size_t W = 0; W < PA.Windows.size(); ++W) {
      EXPECT_EQ(PA.Windows[W].Start, PB.Windows[W].Start);
      EXPECT_EQ(PA.Windows[W].End, PB.Windows[W].End);
    }
  }
  ASSERT_EQ(A.Messages.size(), B.Messages.size());
  for (size_t M = 0; M < A.Messages.size(); ++M) {
    EXPECT_TRUE(A.Messages[M].Sender == B.Messages[M].Sender);
    EXPECT_TRUE(A.Messages[M].Receiver == B.Messages[M].Receiver);
    EXPECT_EQ(A.Messages[M].MemDelay, B.Messages[M].MemDelay);
    EXPECT_EQ(A.Messages[M].NetDelay, B.Messages[M].NetDelay);
  }
}

} // namespace

TEST(RoundTrip, UnboundSearchInputSurvivesWriteRead) {
  // The shape the config search consumes: generated workload with all
  // bindings and windows stripped. This used to fail on read because the
  // writer silently dropped the core attribute.
  for (uint64_t Seed : {1u, 7u, 23u}) {
    gen::IndustrialParams Params;
    Params.Modules = 2;
    Params.CoresPerModule = 2;
    Params.PartitionsPerCore = 2;
    Params.CoreUtilization = 0.5;
    Params.Seed = Seed;
    cfg::Config C = gen::industrialConfig(Params);
    for (cfg::Partition &P : C.Partitions) {
      P.Core = -1;
      P.Windows.clear();
    }
    std::string Xml = configio::writeConfigXml(C);
    // The marker is explicit in the document.
    EXPECT_NE(Xml.find("core=\"unbound\""), std::string::npos);
    auto Back = configio::parseConfigXml(Xml);
    ASSERT_TRUE(Back.ok()) << Back.error().message();
    expectConfigsEqual(C, *Back);
  }
}

TEST(RoundTrip, MixedBoundAndUnboundPartitions) {
  cfg::Config C = testcfg::producerConsumer();
  C.Partitions[1].Core = -1; // Unbind just the consumer.
  C.Partitions[1].Windows.clear();
  std::string Xml = configio::writeConfigXml(C);
  auto Back = configio::parseConfigXml(Xml);
  ASSERT_TRUE(Back.ok()) << Back.error().message();
  expectConfigsEqual(C, *Back);
  EXPECT_EQ(Back->Partitions[0].Core, 0);
  EXPECT_EQ(Back->Partitions[1].Core, -1);
}

TEST(RoundTrip, FullyBoundConfigStillRoundTrips) {
  for (cfg::Config C :
       {testcfg::twoTasksOneCore(), testcfg::producerConsumer(),
        testcfg::twoPartitionsWindows()}) {
    std::string Xml = configio::writeConfigXml(C);
    auto Back = configio::parseConfigXml(Xml);
    ASSERT_TRUE(Back.ok()) << Back.error().message();
    expectConfigsEqual(C, *Back);
  }
}

//===----------------------------------------------------------------------===//
// Simulator guard rails: wall-clock budget and cooperative cancellation
//===----------------------------------------------------------------------===//

TEST(GuardRails, ZeroBudgetStopsDeterministically) {
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  nsa::Simulator Sim(*Model->Net);

  nsa::SimOptions Opt;
  Opt.WallClockBudgetMs = 0; // Expired at the first guard check.
  nsa::SimResult R = Sim.run(Opt);
  EXPECT_EQ(R.Stop, nsa::StopReason::BudgetExceeded);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("budget"), std::string::npos) << R.Error;
  EXPECT_EQ(R.ActionCount, 0u); // Guard fires before any step.
  // summary() keeps the "error:" prefix and names the stop reason.
  EXPECT_NE(R.summary().find("error:"), std::string::npos);
  EXPECT_NE(R.summary().find("budget-exceeded"), std::string::npos);
}

TEST(GuardRails, PreCancelledTokenStopsBeforeAnyStep) {
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  nsa::Simulator Sim(*Model->Net);

  CancelToken Tok;
  Tok.cancel();
  nsa::SimOptions Opt;
  Opt.Cancel = &Tok;
  nsa::SimResult R = Sim.run(Opt);
  EXPECT_EQ(R.Stop, nsa::StopReason::Cancelled);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.ActionCount, 0u);
  EXPECT_NE(R.Error.find("cancelled"), std::string::npos) << R.Error;
}

TEST(GuardRails, UnguardedAndUntriggeredRunsComplete) {
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  nsa::Simulator Sim(*Model->Net);

  // Default options: no guard at all.
  nsa::SimResult Plain = Sim.run();
  ASSERT_TRUE(Plain.ok()) << Plain.Error;
  EXPECT_EQ(Plain.Stop, nsa::StopReason::Completed);

  // A generous budget and a live (unfired) token: the guard is polled but
  // never trips, and the trace is identical to the unguarded run.
  CancelToken Tok;
  nsa::SimOptions Opt;
  Opt.WallClockBudgetMs = 600000;
  Opt.Cancel = &Tok;
  nsa::SimResult Guarded = Sim.run(Opt);
  ASSERT_TRUE(Guarded.ok()) << Guarded.Error;
  EXPECT_EQ(Guarded.Stop, nsa::StopReason::Completed);
  EXPECT_EQ(Guarded.ActionCount, Plain.ActionCount);
  EXPECT_EQ(Guarded.DelayCount, Plain.DelayCount);
  ASSERT_EQ(Guarded.Events.size(), Plain.Events.size());
  EXPECT_EQ(Guarded.Final.Now, Plain.Final.Now);
}

TEST(GuardRails, CancelTokenIsReusable) {
  CancelToken Tok;
  EXPECT_FALSE(Tok.isCancelled());
  Tok.cancel();
  EXPECT_TRUE(Tok.isCancelled());
  Tok.cancel(); // Idempotent.
  EXPECT_TRUE(Tok.isCancelled());
  Tok.reset();
  EXPECT_FALSE(Tok.isCancelled());
}

TEST(GuardRails, VerdictOnlySurfacesGuardStopsStructurally) {
  cfg::Config C = testcfg::twoTasksOneCore();

  // Guard fires: success with decided() == false, no verdict claimed.
  nsa::SimOptions Budget;
  Budget.WallClockBudgetMs = 0;
  auto NoVerdict = analysis::analyzeVerdictOnly(C, Budget);
  ASSERT_TRUE(NoVerdict.ok()) << NoVerdict.error().message();
  EXPECT_FALSE(NoVerdict->decided());
  EXPECT_EQ(NoVerdict->Stop, nsa::StopReason::BudgetExceeded);
  EXPECT_FALSE(NoVerdict->Schedulable);

  // Guard never fires: the verdict is decided and agrees with the full
  // analysis.
  auto Decided = analysis::analyzeVerdictOnly(C);
  ASSERT_TRUE(Decided.ok()) << Decided.error().message();
  EXPECT_TRUE(Decided->decided());
  EXPECT_TRUE(Decided->Schedulable);

  auto Full = analysis::analyzeConfiguration(C);
  ASSERT_TRUE(Full.ok());
  EXPECT_EQ(Decided->Schedulable, Full->Analysis.Schedulable);
}

namespace {

/// Four half-utilization partitions whose tasks need their whole WCET
/// before a deadline at half the period, over two message-free cores: any
/// binding puts at least two on one core, which then needs 1000 ticks of
/// window inside [0, 500) — unschedulable for *every* candidate the
/// search can produce, while still passing the first-fit capacity check
/// (per-core utilization is exactly 1.0). Message-free across cores, so
/// candidates decompose and the incremental layers (component cache,
/// dirty tracking, instance reuse — all default-on) carry the rounds.
cfg::Config unwinnableDecoupledProblem() {
  cfg::Config C = testcfg::twoTasksOneCore();
  C.Cores.push_back(C.Cores[0]);
  C.Cores.back().Name = "core1";
  C.Partitions[0].Tasks = {{"a", 1, {500}, 1000, 500}};
  for (int I = 1; I < 4; ++I) {
    cfg::Partition P = C.Partitions[0];
    P.Name = "p" + std::to_string(I);
    P.Tasks[0].Name = std::string(1, static_cast<char>('a' + I));
    C.Partitions.push_back(P);
  }
  for (cfg::Partition &P : C.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }
  return C;
}

} // namespace

TEST(GuardRails, ZeroBudgetSkipsEveryIncrementalCandidate) {
  // CandidateBudgetMs = 0 expires at the first guard check of every
  // simulation the candidate needs — including the per-round deduplicated
  // component sims and arena-reused runs of the incremental path. No
  // undecided component run may be patched into a verdict: every
  // candidate must be skipped as budget-exceeded, deterministically for
  // any worker count.
  schedtool::SearchProblem Problem;
  Problem.Base = unwinnableDecoupledProblem();
  Problem.Seed = 5;
  Problem.MaxIterations = 12;
  Problem.CandidateBudgetMs = 0;
  for (int Workers : {1, 2}) {
    Problem.Workers = Workers;
    auto Res = schedtool::searchConfiguration(Problem);
    ASSERT_TRUE(Res.ok()) << Res.error().message();
    EXPECT_FALSE(Res->Found);
    EXPECT_FALSE(Res->Cancelled);
    EXPECT_EQ(Res->ConfigurationsEvaluated, 0) << "workers=" << Workers;
    EXPECT_EQ(Res->CandidatesSkipped, 12) << "workers=" << Workers;
    EXPECT_EQ(
        Res->StopReasonCounts[static_cast<int>(nsa::StopReason::BudgetExceeded)],
        12)
        << "workers=" << Workers;
  }
}

TEST(GuardRails, WatchdogCancelEndsIncrementalSearchMidRun) {
  // A watchdog thread cancels a hopeless search (every candidate
  // unschedulable, iteration cap far beyond what the watchdog window
  // allows) while rounds are in flight on the incremental path. The
  // search must come back Cancelled without finishing its iteration
  // budget — a cancelled round may not be completed as if the token had
  // never fired.
  schedtool::SearchProblem Problem;
  Problem.Base = unwinnableDecoupledProblem();
  Problem.Seed = 23;
  Problem.MaxIterations = 5000000;
  CancelToken Tok;
  Problem.Cancel = &Tok;

  std::thread Watchdog([&Tok] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Tok.cancel();
  });
  auto Res = schedtool::searchConfiguration(Problem);
  Watchdog.join();

  ASSERT_TRUE(Res.ok()) << Res.error().message();
  EXPECT_TRUE(Res->Cancelled);
  EXPECT_FALSE(Res->Found);
  EXPECT_LT(Res->ConfigurationsEvaluated + Res->CandidatesSkipped,
            Problem.MaxIterations);
  // The incremental machinery was genuinely in play before the cancel:
  // message-free multi-core candidates decompose.
  EXPECT_GT(Res->DecomposedCandidates, 0);
  bool Logged = false;
  for (const std::string &Line : Res->Log)
    if (Line.find("cancelled") != std::string::npos)
      Logged = true;
  EXPECT_TRUE(Logged) << "no cancellation note in the search log";
}

TEST(GuardRails, WatchdogCancelStillFlushesTheTerminalCheckpoint) {
  // Cancellation races the checkpoint writer: a watchdog fires while
  // rounds (and possibly a periodic snapshot write) are in flight. The
  // contract is that the interruption itself is made durable — the
  // terminal flush lands after the cancel marks, so the snapshot on disk
  // carries the Cancelled flag, the cancel log line, and the StopReason
  // tallies of the interrupted run — and that no half-written temp file
  // is left behind.
  std::string Path = testing::TempDir() + "swa_robust_cancel_ckpt.bin";
  std::remove(Path.c_str());
  schedtool::SearchProblem Problem;
  Problem.Base = unwinnableDecoupledProblem();
  Problem.Seed = 23;
  Problem.MaxIterations = 5000000;
  Problem.CheckpointPath = Path;
  schedtool::SnapshotStats Stats;
  Problem.CkptStats = &Stats;
  CancelToken Tok;
  Problem.Cancel = &Tok;

  std::thread Watchdog([&Tok] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Tok.cancel();
  });
  auto Res = schedtool::searchConfiguration(Problem);
  Watchdog.join();

  ASSERT_TRUE(Res.ok()) << Res.error().message();
  EXPECT_TRUE(Res->Cancelled);
  EXPECT_EQ(Stats.WriteFailures, 0u) << Stats.LastError;
  EXPECT_GT(Stats.SnapshotsWritten, 0u);

  std::ifstream Tmp(Path + ".tmp");
  EXPECT_FALSE(Tmp.good()) << "temp file left behind: " << Path << ".tmp";

  auto L = schedtool::loadSnapshot(Path);
  ASSERT_TRUE(L.ok()) << L.error().message();
  EXPECT_TRUE(L->HasSearchState);
  EXPECT_TRUE(L->Res.Cancelled);
  EXPECT_EQ(L->Res.Log, Res->Log);
  EXPECT_EQ(L->Res.StopReasonCounts, Res->StopReasonCounts);
  EXPECT_EQ(L->Res.ConfigurationsEvaluated, Res->ConfigurationsEvaluated);
  EXPECT_EQ(L->Res.CandidatesSkipped, Res->CandidatesSkipped);
  std::remove(Path.c_str());
}

TEST(GuardRails, BudgetExpiryDuringCheckpointedSearchKeepsStopReasons) {
  // A zero per-candidate budget skips every evaluation; with
  // checkpointing on, the skips and their BudgetExceeded tallies must
  // survive the round-trip through the terminal snapshot, the search
  // result must be byte-identical to the uncheckpointed run, and no
  // temp file may outlive the search.
  schedtool::SearchProblem Problem;
  Problem.Base = unwinnableDecoupledProblem();
  Problem.Seed = 5;
  Problem.MaxIterations = 12;
  Problem.CandidateBudgetMs = 0;
  auto Plain = schedtool::searchConfiguration(Problem);
  ASSERT_TRUE(Plain.ok()) << Plain.error().message();

  std::string Path = testing::TempDir() + "swa_robust_budget_ckpt.bin";
  std::remove(Path.c_str());
  Problem.CheckpointPath = Path;
  schedtool::SnapshotStats Stats;
  Problem.CkptStats = &Stats;
  auto Res = schedtool::searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  EXPECT_EQ(Res->Log, Plain->Log);
  EXPECT_EQ(Res->StopReasonCounts, Plain->StopReasonCounts);
  EXPECT_EQ(Res->CandidatesSkipped, Plain->CandidatesSkipped);
  EXPECT_GT(Stats.SnapshotsWritten, 0u);

  std::ifstream Tmp(Path + ".tmp");
  EXPECT_FALSE(Tmp.good()) << "temp file left behind: " << Path << ".tmp";

  auto L = schedtool::loadSnapshot(Path);
  ASSERT_TRUE(L.ok()) << L.error().message();
  EXPECT_EQ(
      L->Res.StopReasonCounts[static_cast<int>(nsa::StopReason::BudgetExceeded)],
      12);
  EXPECT_EQ(L->Res.CandidatesSkipped, 12);
  std::remove(Path.c_str());
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
