//===- tests/CoreTest.cpp - End-to-end model construction/analysis tests ---===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "core/InstanceBuilder.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::analysis;

namespace {

const JobStats &jobOf(const AnalysisResult &R, int Gid, int K) {
  for (const JobStats &J : R.Jobs)
    if (J.TaskGid == Gid && J.JobIndex == K)
      return J;
  static JobStats Missing;
  ADD_FAILURE() << "job (" << Gid << ", " << K << ") not found";
  return Missing;
}

} // namespace

TEST(InstanceBuilder, CreatesOneAutomatonPerComponent) {
  cfg::Config C = testcfg::producerConsumer();
  auto Model = core::buildModel(C);
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  // 2 tasks + 2 task schedulers + 2 core schedulers + 1 virtual link.
  EXPECT_EQ(Model->Net->Automata.size(), 7u);
  EXPECT_EQ(Model->Net->metaOr("horizon", -1), 20);
  // Channel families exist and are disjoint.
  EXPECT_GE(Model->ExecBase, 0);
  EXPECT_GE(Model->SendBase, 0);
  EXPECT_NE(Model->ExecBase, Model->PreemptBase);
}

TEST(InstanceBuilder, RejectsInvalidConfigurations) {
  cfg::Config C = testcfg::twoTasksOneCore();
  C.Partitions[0].Core = 7; // No such core.
  auto Model = core::buildModel(C);
  ASSERT_FALSE(Model.ok());
  EXPECT_NE(Model.error().message().find("invalid configuration"),
            std::string::npos);
}

TEST(Analyzer, RateMonotonicPairIsSchedulable) {
  auto Out = analyzeConfiguration(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  const AnalysisResult &R = Out->Analysis;
  EXPECT_TRUE(R.Schedulable) << R.FirstViolation;
  EXPECT_EQ(R.TotalJobs, 3);
  EXPECT_EQ(R.MissedJobs, 0);
  EXPECT_TRUE(Out->failureFlagsConsistent());

  // T1 runs [0,3) and [10,13); T2 runs [3,8).
  const JobStats &T1J0 = jobOf(R, 0, 0);
  ASSERT_EQ(T1J0.Intervals.size(), 1u);
  EXPECT_EQ(T1J0.Intervals[0], (ExecInterval{0, 3}));
  EXPECT_EQ(T1J0.responseTime(), 3);

  const JobStats &T1J1 = jobOf(R, 0, 1);
  ASSERT_EQ(T1J1.Intervals.size(), 1u);
  EXPECT_EQ(T1J1.Intervals[0], (ExecInterval{10, 13}));

  const JobStats &T2J0 = jobOf(R, 1, 0);
  ASSERT_EQ(T2J0.Intervals.size(), 1u);
  EXPECT_EQ(T2J0.Intervals[0], (ExecInterval{3, 8}));
  EXPECT_EQ(T2J0.responseTime(), 8);
  EXPECT_EQ(R.WorstResponse[0], 3);
  EXPECT_EQ(R.WorstResponse[1], 8);
}

TEST(Analyzer, OverloadedConfigurationMissesDeadline) {
  auto Out = analyzeConfiguration(testcfg::overloadedOneCore());
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_FALSE(Out->Analysis.Schedulable);
  EXPECT_EQ(Out->Analysis.MissedJobs, 1);
  EXPECT_TRUE(Out->failureFlagsConsistent());
  // The failing job is T2's only job.
  const JobStats &T2 = jobOf(Out->Analysis, 1, 0);
  EXPECT_FALSE(T2.Completed);
  // It executed exactly until its deadline: 20 - 2*3 = 14 ticks.
  EXPECT_EQ(T2.ExecTotal, 14);
  EXPECT_NE(Out->Analysis.FirstViolation.find("t2"), std::string::npos);
}

TEST(Analyzer, PreemptionSplitsExecutionIntervals) {
  auto Out = analyzeConfiguration(testcfg::preemptionShowcase());
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  const AnalysisResult &R = Out->Analysis;
  EXPECT_TRUE(R.Schedulable) << R.FirstViolation;

  const JobStats &Lo = jobOf(R, 1, 0);
  // hi runs [0,2) and [10,12); lo fills the rest: [2,10) and [12,19).
  ASSERT_EQ(Lo.Intervals.size(), 2u);
  EXPECT_EQ(Lo.Intervals[0], (ExecInterval{2, 10}));
  EXPECT_EQ(Lo.Intervals[1], (ExecInterval{12, 19}));
  EXPECT_EQ(Lo.Preemptions, 1);
  EXPECT_EQ(Lo.responseTime(), 19);
}

TEST(Analyzer, WindowsConfineExecution) {
  auto Out = analyzeConfiguration(testcfg::twoPartitionsWindows());
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  const AnalysisResult &R = Out->Analysis;
  EXPECT_TRUE(R.Schedulable) << R.FirstViolation;

  // pA's task: [0,5) then [10,12). pB's task: [5,10) then [15,17).
  const JobStats &A = jobOf(R, 0, 0);
  ASSERT_EQ(A.Intervals.size(), 2u);
  EXPECT_EQ(A.Intervals[0], (ExecInterval{0, 5}));
  EXPECT_EQ(A.Intervals[1], (ExecInterval{10, 12}));

  const JobStats &B = jobOf(R, 1, 0);
  ASSERT_EQ(B.Intervals.size(), 2u);
  EXPECT_EQ(B.Intervals[0], (ExecInterval{5, 10}));
  EXPECT_EQ(B.Intervals[1], (ExecInterval{15, 17}));
}

TEST(Analyzer, MessageDelaysGateTheReceiver) {
  auto Out = analyzeConfiguration(testcfg::producerConsumer());
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  const AnalysisResult &R = Out->Analysis;
  EXPECT_TRUE(R.Schedulable) << R.FirstViolation;

  // Producer completes at 4; network delay 5 => consumer ready at 9,
  // executes [9,12).
  const JobStats &Cons = jobOf(R, 1, 0);
  EXPECT_EQ(Cons.ReadyTime, 9);
  ASSERT_EQ(Cons.Intervals.size(), 1u);
  EXPECT_EQ(Cons.Intervals[0], (ExecInterval{9, 12}));
}

TEST(Analyzer, IntraModulePlacementUsesMemoryDelay) {
  cfg::Config C = testcfg::producerConsumer();
  // Move the consumer's core into module 0: delay becomes MemDelay = 1.
  C.Cores[1].Module = 0;
  auto Out = analyzeConfiguration(C);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  const JobStats &Cons = jobOf(Out->Analysis, 1, 0);
  EXPECT_EQ(Cons.ReadyTime, 5);
}

TEST(Analyzer, UndeliveredDataFailsTheReceiverJob) {
  cfg::Config C = testcfg::producerConsumer();
  // Make delivery arrive after the consumer's deadline.
  C.Messages[0].NetDelay = 18; // Arrives at 4 + 18 = 22 > deadline 20.
  auto Out = analyzeConfiguration(C);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_FALSE(Out->Analysis.Schedulable);
  const JobStats &Cons = jobOf(Out->Analysis, 1, 0);
  EXPECT_EQ(Cons.ReadyTime, -1);
  EXPECT_TRUE(Cons.Intervals.empty());
  EXPECT_TRUE(Out->failureFlagsConsistent());
}

TEST(Analyzer, EdfSchedulesWhatFppsMisses) {
  // Two tasks where fixed priorities force a miss but EDF succeeds:
  //   a: period 8,  wcet 4, deadline 8
  //   b: period 16, wcet 7, deadline 16
  // Utilization = 0.5 + 0.4375 < 1: EDF schedulable. With b given the
  // higher fixed priority, a misses its first deadline.
  cfg::Config C;
  C.Name = "edf-vs-fpps";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"c", 0, 0});
  cfg::Partition P;
  P.Name = "p";
  P.Core = 0;
  P.Windows.push_back({0, 16});
  P.Tasks.push_back({"a", 1, {4}, 8, 8});
  P.Tasks.push_back({"b", 9, {7}, 16, 16});

  P.Scheduler = cfg::SchedulerKind::FPPS;
  C.Partitions.push_back(P);
  auto Fpps = analyzeConfiguration(C);
  ASSERT_TRUE(Fpps.ok()) << Fpps.error().message();
  EXPECT_FALSE(Fpps->Analysis.Schedulable);

  C.Partitions[0].Scheduler = cfg::SchedulerKind::EDF;
  auto Edf = analyzeConfiguration(C);
  ASSERT_TRUE(Edf.ok()) << Edf.error().message();
  EXPECT_TRUE(Edf->Analysis.Schedulable) << Edf->Analysis.FirstViolation;
}

TEST(Analyzer, FpnpsDoesNotPreempt) {
  // lo (prio 1, wcet 6) becomes ready at 0 together with hi (prio 5,
  // wcet 2). FPPS runs hi first; FPNPS also runs hi first (both ready at
  // the decision point), so trigger the difference via a staggered
  // release: hi has period 10 and lo 5... Instead use the direct effect:
  // under FPNPS, once lo starts, hi's next job waits for lo to finish.
  cfg::Config C;
  C.Name = "fpnps";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"c", 0, 0});
  cfg::Partition P;
  P.Name = "p";
  P.Core = 0;
  P.Scheduler = cfg::SchedulerKind::FPNPS;
  P.Windows.push_back({0, 20});
  P.Tasks.push_back({"hi", 5, {2}, 10, 10});
  P.Tasks.push_back({"lo", 1, {15}, 20, 20});
  C.Partitions.push_back(std::move(P));

  auto Out = analyzeConfiguration(C);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  const AnalysisResult &R = Out->Analysis;
  // hi job 0 runs [0,2); lo runs [2,17) without preemption; hi job 1
  // (released at 10) must wait until 17: response 9 <= 10, schedulable.
  EXPECT_TRUE(R.Schedulable) << R.FirstViolation;
  const JobStats &Lo = jobOf(R, 1, 0);
  ASSERT_EQ(Lo.Intervals.size(), 1u);
  EXPECT_EQ(Lo.Intervals[0], (ExecInterval{2, 17}));
  EXPECT_EQ(Lo.Preemptions, 0);
  const JobStats &Hi1 = jobOf(R, 0, 1);
  ASSERT_EQ(Hi1.Intervals.size(), 1u);
  EXPECT_EQ(Hi1.Intervals[0], (ExecInterval{17, 19}));
}

TEST(Analyzer, TraceDeterminismUnderRandomizedInterleaving) {
  // The paper's §3 theorem, checked empirically: randomized interleaving
  // choices must yield the same job-level trace.
  cfg::Config C = testcfg::producerConsumer();
  auto Ref = analyzeConfiguration(C);
  ASSERT_TRUE(Ref.ok()) << Ref.error().message();

  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed);
    nsa::SimOptions Opts;
    Opts.RandomOrder = &R;
    auto Out = analyzeConfiguration(C, Opts);
    ASSERT_TRUE(Out.ok()) << Out.error().message();
    EXPECT_TRUE(jobTracesEquivalent(Ref->Analysis, Out->Analysis))
        << "seed " << Seed;
  }
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
