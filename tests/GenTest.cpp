//===- tests/GenTest.cpp - Workload generator tests ------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace swa;
using namespace swa::gen;

TEST(UUniFast, SumsToTotalAndStaysInRange) {
  Rng R(7);
  for (int N : {1, 2, 5, 20, 100}) {
    std::vector<double> U = uunifast(R, N, 0.8);
    double Sum = 0;
    for (double V : U) {
      EXPECT_GE(V, 0.0);
      EXPECT_LE(V, 0.8 + 1e-9);
      Sum += V;
    }
    EXPECT_NEAR(Sum, 0.8, 1e-9) << "N=" << N;
  }
}

TEST(UUniFast, IsDeterministicPerSeed) {
  Rng R1(42), R2(42), R3(43);
  auto A = uunifast(R1, 10, 0.5);
  auto B = uunifast(R2, 10, 0.5);
  auto C = uunifast(R3, 10, 0.5);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(Table1Family, ValidatesAndCountsJobs) {
  for (int N : {1, 5, 10, 18}) {
    cfg::Config C = table1Config(N);
    EXPECT_FALSE(C.validate().isFailure()) << C.validate().message();
    EXPECT_EQ(C.jobCount(), N);
    EXPECT_EQ(static_cast<int>(C.Partitions.size()), N);
    EXPECT_EQ(static_cast<int>(C.Cores.size()), N);
  }
}

TEST(Table1Family, AllPointsAreSchedulable) {
  // Every table-1 point must be schedulable: the experiment measures
  // analysis cost, not verdicts.
  for (int N : {10, 14, 18}) {
    auto Out = analysis::analyzeConfiguration(table1Config(N));
    ASSERT_TRUE(Out.ok()) << Out.error().message();
    EXPECT_TRUE(Out->Analysis.Schedulable)
        << N << ": " << Out->Analysis.FirstViolation;
  }
}

TEST(Industrial, GeneratedConfigurationsValidate) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    IndustrialParams P;
    P.Seed = Seed;
    P.Modules = 2;
    P.PartitionsPerCore = 2;
    cfg::Config C = industrialConfig(P);
    Error E = C.validate();
    EXPECT_FALSE(E.isFailure()) << "seed " << Seed << ": " << E.message();
    EXPECT_GT(C.jobCount(), 0);
    EXPECT_GT(C.Messages.size(), 0u);
  }
}

TEST(Industrial, JobTargetIsApproximatelyMet) {
  cfg::Config C = industrialConfigWithJobs(2000, 3);
  ASSERT_FALSE(C.validate().isFailure());
  double Ratio = static_cast<double>(C.jobCount()) / 2000.0;
  EXPECT_GT(Ratio, 0.5);
  EXPECT_LT(Ratio, 2.0);
}

TEST(Industrial, MessagesConnectEqualPeriods) {
  cfg::Config C = industrialConfig({});
  for (const cfg::Message &M : C.Messages)
    EXPECT_EQ(C.taskOf(M.Sender).Period, C.taskOf(M.Receiver).Period);
}

TEST(Industrial, SimulatesEndToEnd) {
  IndustrialParams P;
  P.Modules = 2;
  P.PartitionsPerCore = 2;
  P.Seed = 11;
  cfg::Config C = industrialConfig(P);
  auto Out = analysis::analyzeConfiguration(C);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_EQ(Out->Analysis.TotalJobs, C.jobCount());
  EXPECT_TRUE(Out->failureFlagsConsistent());
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
