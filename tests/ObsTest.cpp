//===- tests/ObsTest.cpp - Observability layer tests -----------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Covers the src/obs layer (thread-sharded counters/histograms/registry,
// per-thread phase trees with deterministic merge, span ring buffers with
// Chrome trace export, run reports, JSONL sink) and its engine
// integration: the overhead guard proving that attaching metrics and a
// JSONL sink never perturbs the deterministic run, the full-observability
// worker-count determinism guard, the enriched action-budget diagnostics,
// and the config-search best-so-far trajectory.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "core/InstanceBuilder.h"
#include "nsa/Simulator.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "obs/Span.h"
#include "obs/Timer.h"
#include "obs/TraceSink.h"
#include "schedtool/ConfigSearch.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <thread>

using namespace swa;

namespace {

/// Enables the observability layer for one test and restores a clean
/// global state (flags, registry values in every shard, phase trees, span
/// rings) afterwards.
struct ObsScope {
  explicit ObsScope(bool On = true, bool Spans = false) {
    obs::Registry::global().reset();
    obs::PhaseTree::resetAll();
    obs::resetSpans();
    obs::setEnabled(On);
    obs::setSpansEnabled(Spans);
  }
  ~ObsScope() {
    obs::setEnabled(false);
    obs::setSpansEnabled(false);
    obs::Registry::global().reset();
    obs::PhaseTree::resetAll();
    obs::resetSpans();
  }
};

//===----------------------------------------------------------------------===//
// Counters and histograms
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, CounterArithmetic) {
  obs::Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(ObsMetrics, HistogramBucketsAndMoments) {
  obs::Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);

  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 4ull, 1024ull})
    H.record(V);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 1034u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1024u);
  EXPECT_NEAR(H.mean(), 1034.0 / 6.0, 1e-9);

  // Bucket layout: floor(log2(V)) with 0 in bucket 0.
  EXPECT_EQ(obs::Histogram::bucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::bucketOf(1), 0);
  EXPECT_EQ(obs::Histogram::bucketOf(2), 1);
  EXPECT_EQ(obs::Histogram::bucketOf(3), 1);
  EXPECT_EQ(obs::Histogram::bucketOf(4), 2);
  EXPECT_EQ(obs::Histogram::bucketOf(1024), 10);
  EXPECT_EQ(H.bucketCount(0), 2u); // 0 and 1.
  EXPECT_EQ(H.bucketCount(1), 2u); // 2 and 3.
  EXPECT_EQ(H.bucketCount(2), 1u); // 4.
  EXPECT_EQ(H.bucketCount(10), 1u); // 1024.

  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
}

TEST(ObsMetrics, RegistryStableAddressesAndReset) {
  ObsScope Scope;
  obs::Registry &Reg = obs::Registry::global();
  obs::Counter &A = Reg.counter("test.a");
  A.add(7);
  // Same name -> same instrument.
  EXPECT_EQ(&Reg.counter("test.a"), &A);
  EXPECT_EQ(Reg.counter("test.a").value(), 7u);

  obs::Histogram &H = Reg.histogram("test.h");
  H.record(5);
  EXPECT_EQ(&Reg.histogram("test.h"), &H);

  // Reset zeroes values but keeps registrations (cached pointers stay
  // valid between runs).
  Reg.reset();
  EXPECT_EQ(A.value(), 0u);
  EXPECT_EQ(H.count(), 0u);
  bool FoundA = false;
  for (const auto &[Name, Value] : Reg.counterValues())
    if (Name == "test.a") {
      FoundA = true;
      EXPECT_EQ(Value, 0u);
    }
  EXPECT_TRUE(FoundA);
  A.add(3);
  EXPECT_EQ(Reg.counter("test.a").value(), 3u);
}

//===----------------------------------------------------------------------===//
// Phase tree
//===----------------------------------------------------------------------===//

TEST(ObsTimer, PhaseTreeNesting) {
  ObsScope Scope;
  {
    obs::ScopedTimer Outer("outer");
    {
      obs::ScopedTimer Inner("inner");
    }
    {
      obs::ScopedTimer Inner("inner"); // Same name accumulates.
    }
    {
      obs::ScopedTimer Other("other");
    }
  }
  {
    obs::ScopedTimer Outer("outer"); // Re-entering accumulates too.
  }

  const obs::PhaseTree::Node &Root = obs::PhaseTree::current().root();
  ASSERT_EQ(Root.Children.size(), 1u);
  const obs::PhaseTree::Node *Outer = Root.child("outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->Count, 2u);
  ASSERT_EQ(Outer->Children.size(), 2u);
  const obs::PhaseTree::Node *Inner = Outer->child("inner");
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Count, 2u);
  EXPECT_NE(Outer->child("other"), nullptr);
  EXPECT_EQ(Outer->child("missing"), nullptr);

  // Total is the sum over top-level phases only.
  EXPECT_EQ(obs::PhaseTree::totalNanos(Root), Outer->Nanos);

  // The merged view folds the (single) shard by name.
  obs::PhaseTree::Node Merged = obs::PhaseTree::mergedRoot();
  const obs::PhaseTree::Node *MergedOuter = Merged.child("outer");
  ASSERT_NE(MergedOuter, nullptr);
  EXPECT_EQ(MergedOuter->Count, 2u);
  EXPECT_EQ(MergedOuter->Nanos, Outer->Nanos);

  std::ostringstream OS;
  obs::PhaseTree::render(OS, Root);
  EXPECT_NE(OS.str().find("outer"), std::string::npos);
  EXPECT_NE(OS.str().find("inner"), std::string::npos);
}

TEST(ObsTimer, DisabledTimersRecordNothing) {
  ObsScope Scope(/*On=*/false);
  {
    obs::ScopedTimer T("should-not-appear");
  }
  EXPECT_TRUE(obs::PhaseTree::current().root().Children.empty());
}

//===----------------------------------------------------------------------===//
// JSONL sink
//===----------------------------------------------------------------------===//

TEST(ObsTraceSink, JsonEscaping) {
  EXPECT_EQ(obs::jsonEscape("plain"), "plain");
  EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::jsonEscape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
}

/// A minimal JSON syntax checker: accepts objects/arrays/strings/numbers/
/// true/false/null; rejects trailing garbage. Enough to prove each JSONL
/// line is well-formed without a JSON library.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return P == S.size();
  }

private:
  const std::string &S;
  size_t P = 0;

  void skipWs() {
    while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(P, N, L) != 0)
      return false;
    P += N;
    return true;
  }
  bool string() {
    if (P >= S.size() || S[P] != '"')
      return false;
    ++P;
    while (P < S.size() && S[P] != '"') {
      if (S[P] == '\\') {
        ++P;
        if (P >= S.size())
          return false;
        if (S[P] == 'u') {
          for (int I = 0; I < 4; ++I)
            if (++P >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[P])))
              return false;
        }
      }
      ++P;
    }
    if (P >= S.size())
      return false;
    ++P; // Closing quote.
    return true;
  }
  bool digits() {
    size_t Start = P;
    while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
      ++P;
    return P > Start;
  }
  bool number() {
    if (P < S.size() && S[P] == '-')
      ++P;
    if (!digits())
      return false;
    if (P < S.size() && S[P] == '.') {
      ++P;
      if (!digits())
        return false;
    }
    if (P < S.size() && (S[P] == 'e' || S[P] == 'E')) {
      ++P;
      if (P < S.size() && (S[P] == '+' || S[P] == '-'))
        ++P;
      if (!digits())
        return false;
    }
    return true;
  }
  bool value() {
    skipWs();
    if (P >= S.size())
      return false;
    switch (S[P]) {
    case '{': {
      ++P;
      skipWs();
      if (P < S.size() && S[P] == '}') {
        ++P;
        return true;
      }
      for (;;) {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (P >= S.size() || S[P] != ':')
          return false;
        ++P;
        if (!value())
          return false;
        skipWs();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        break;
      }
      if (P >= S.size() || S[P] != '}')
        return false;
      ++P;
      return true;
    }
    case '[': {
      ++P;
      skipWs();
      if (P < S.size() && S[P] == ']') {
        ++P;
        return true;
      }
      for (;;) {
        if (!value())
          return false;
        skipWs();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        break;
      }
      if (P >= S.size() || S[P] != ']')
        return false;
      ++P;
      return true;
    }
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

TEST(ObsTraceSink, JsonlLinesAreWellFormed) {
  auto Model = core::buildModel(testcfg::producerConsumer());
  ASSERT_TRUE(Model.ok()) << Model.error().message();

  std::ostringstream OS;
  obs::JsonlSink Sink(OS);
  nsa::SimOptions Opt;
  Opt.Sink = &Sink;
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult R = Sim.run(Opt);
  ASSERT_TRUE(R.ok()) << R.Error;

  std::istringstream In(OS.str());
  std::string Line;
  size_t Lines = 0;
  size_t Actions = 0, Delays = 0, Writes = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(JsonChecker(Line).valid()) << "bad JSONL line: " << Line;
    if (Line.find("\"k\":\"action\"") != std::string::npos)
      ++Actions;
    else if (Line.find("\"k\":\"delay\"") != std::string::npos)
      ++Delays;
    else if (Line.find("\"k\":\"write\"") != std::string::npos)
      ++Writes;
  }
  EXPECT_EQ(Lines, Sink.linesWritten());
  EXPECT_GT(Lines, 0u);
  // Every applied action step is streamed (internal ones included), so the
  // sink must have seen at least the recorded sync events and every delay.
  EXPECT_GE(Actions, R.Events.size());
  EXPECT_EQ(Delays, R.DelayCount);
  EXPECT_GT(Writes, 0u);
}

//===----------------------------------------------------------------------===//
// Engine integration
//===----------------------------------------------------------------------===//

/// Byte-exact rendering of a trace (and the run totals) for the overhead
/// guard: two runs are equivalent iff these strings match exactly.
std::string renderRun(const nsa::SimResult &R) {
  std::ostringstream OS;
  OS << "actions=" << R.ActionCount << " delays=" << R.DelayCount
     << " quiescent=" << R.Quiescent << " horizon=" << R.HorizonReached
     << " now=" << R.Final.Now << "\n";
  for (const nsa::Event &E : R.Events) {
    OS << E.Time << " ch" << E.Channel << " i" << E.Initiator.Automaton
       << ":" << E.Initiator.Edge;
    for (const nsa::EventParticipant &P : E.Receivers)
      OS << " r" << P.Automaton << ":" << P.Edge;
    OS << "\n";
  }
  return OS.str();
}

TEST(ObsOverheadGuard, MetricsAndSinkNeverPerturbTheRun) {
  for (const cfg::Config &Config :
       {testcfg::twoTasksOneCore(), testcfg::preemptionShowcase(),
        testcfg::twoPartitionsWindows(), testcfg::producerConsumer()}) {
    auto Model = core::buildModel(Config);
    ASSERT_TRUE(Model.ok()) << Model.error().message();

    // Plain run: observability fully off.
    nsa::Simulator Plain(*Model->Net);
    nsa::SimResult Base = Plain.run();
    ASSERT_TRUE(Base.ok()) << Base.Error;

    // Observed run: global metrics on, per-run metrics on, JSONL sink
    // attached.
    ObsScope Scope;
    std::ostringstream OS;
    obs::JsonlSink Sink(OS);
    nsa::SimOptions Opt;
    Opt.MetricsEnabled = true;
    Opt.Sink = &Sink;
    nsa::Simulator Observed(*Model->Net);
    nsa::SimResult WithObs = Observed.run(Opt);
    ASSERT_TRUE(WithObs.ok()) << WithObs.Error;

    EXPECT_EQ(renderRun(Base), renderRun(WithObs)) << Config.Name;
    EXPECT_EQ(Base.ActionCount, WithObs.ActionCount) << Config.Name;
    EXPECT_TRUE(nsa::syncTracesEqual(Base.Events, WithObs.Events))
        << Config.Name;
    EXPECT_GT(Sink.linesWritten(), 0u) << Config.Name;
  }
}

TEST(ObsEngine, SimulatorPublishesCounters) {
  ObsScope Scope;
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;

  obs::Registry &Reg = obs::Registry::global();
  EXPECT_EQ(Reg.counter("nsa.steps.action").value(), R.ActionCount);
  EXPECT_EQ(Reg.counter("nsa.steps.delay").value(), R.DelayCount);
  EXPECT_EQ(Reg.counter("nsa.events.recorded").value(), R.Events.size());
  EXPECT_GT(Reg.counter("nsa.refresh.automaton").value(), 0u);
  EXPECT_GT(Reg.counter("nsa.enabled.examined").value(), 0u);
  EXPECT_GT(Reg.counter("nsa.heap.pushes").value(), 0u);
  EXPECT_EQ(Reg.counter("nsa.runs").value(), 1u);
  // One per-automaton sample per automaton of the network.
  EXPECT_EQ(Reg.histogram("nsa.steps.per_automaton").count(),
            Model->Net->Automata.size());
  // Build-side counters.
  EXPECT_EQ(Reg.counter("core.models.built").value(), 1u);
  EXPECT_EQ(Reg.counter("core.automata.instantiated").value(),
            Model->Net->Automata.size());
}

TEST(ObsEngine, PhaseTreeCoversPipeline) {
  ObsScope Scope;
  Result<analysis::AnalyzeOutcome> Out =
      analysis::analyzeConfiguration(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Out.ok()) << Out.error().message();

  const obs::PhaseTree::Node &Root = obs::PhaseTree::current().root();
  const obs::PhaseTree::Node *Build = Root.child("build");
  ASSERT_NE(Build, nullptr);
  EXPECT_NE(Build->child("compile"), nullptr);
  EXPECT_NE(Root.child("simulate"), nullptr);
  const obs::PhaseTree::Node *Analyze = Root.child("analyze");
  ASSERT_NE(Analyze, nullptr);
  EXPECT_NE(Analyze->child("map_trace"), nullptr);
  EXPECT_NE(Analyze->child("criterion"), nullptr);
  EXPECT_GT(obs::PhaseTree::totalNanos(Root), 0u);
}

TEST(ObsEngine, ActionBudgetExhaustionIsDiagnosable) {
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  nsa::SimOptions Opt;
  Opt.MaxActions = 5;
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult R = Sim.run(Opt);
  ASSERT_FALSE(R.ok());
  // The message names the budget, the model time, the applied-action count
  // and the last automaton stepped.
  EXPECT_NE(R.Error.find("action budget of 5"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("t="), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("5 actions applied"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("last automaton stepped"), std::string::npos)
      << R.Error;
  // Summary surfaces the error uniformly.
  EXPECT_NE(R.summary().find("error:"), std::string::npos);
}

TEST(ObsEngine, SummaryDescribesOutcome) {
  auto Model = core::buildModel(testcfg::twoTasksOneCore());
  ASSERT_TRUE(Model.ok()) << Model.error().message();
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string S = R.summary();
  // The two-task config runs to its 20-tick hyperperiod horizon.
  EXPECT_NE(S.find("horizon reached"), std::string::npos) << S;
  EXPECT_NE(S.find("t=20"), std::string::npos) << S;
  EXPECT_NE(S.find("actions"), std::string::npos) << S;
}

TEST(ObsEngine, SearchRecordsBestTrajectory) {
  ObsScope Scope;
  schedtool::SearchProblem Problem;
  Problem.Base = testcfg::twoTasksOneCore();
  // Let the search choose binding and windows.
  for (cfg::Partition &P : Problem.Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }
  Problem.MaxIterations = 10;
  Result<schedtool::SearchResult> Res =
      schedtool::searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  ASSERT_FALSE(Res->BestTrajectory.empty());
  // Strictly improving, iterations increasing; ends at 0 when Found.
  for (size_t I = 1; I < Res->BestTrajectory.size(); ++I) {
    EXPECT_LT(Res->BestTrajectory[I].second,
              Res->BestTrajectory[I - 1].second);
    EXPECT_GT(Res->BestTrajectory[I].first,
              Res->BestTrajectory[I - 1].first);
  }
  if (Res->Found) {
    EXPECT_EQ(Res->BestTrajectory.back().second, 0);
  }
  EXPECT_EQ(obs::Registry::global()
                .counter("schedtool.candidates.evaluated")
                .value(),
            static_cast<uint64_t>(Res->ConfigurationsEvaluated));
}

TEST(ObsEngine, SearchCountersMatchResultStatsOnFoundRun) {
  // Regression for the BENCH_PR9 report skew: a run that *finds* a
  // configuration returns from the middle of a round, and that early
  // return used to skip the round-end counter flush — the report's
  // stats.* numbers (from SearchResult) were nonzero while every
  // matching schedtool.* obs counter read 0. The contract pinned here:
  // on a fresh run, each schedtool.* counter equals the SearchResult
  // field the report is filled from, Found or not.
  ObsScope Scope;
  schedtool::SearchProblem Problem;
  Problem.Base = testcfg::twoTasksOneCore();
  for (cfg::Partition &P : Problem.Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }
  Problem.MaxIterations = 40;
  Result<schedtool::SearchResult> Res =
      schedtool::searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();
  // The skew only bit on the Found path; make sure this run takes it.
  ASSERT_TRUE(Res->Found);
  ASSERT_GT(Res->ConfigurationsEvaluated, 0);

  obs::Registry &Reg = obs::Registry::global();
  auto Counter = [&Reg](const char *Name) {
    return Reg.counter(Name).value();
  };
  auto U64 = [](int V) { return static_cast<uint64_t>(V); };
  EXPECT_EQ(Counter("schedtool.candidates.evaluated"),
            U64(Res->ConfigurationsEvaluated));
  EXPECT_EQ(Counter("schedtool.simulations.run"), U64(Res->SimulationsRun));
  EXPECT_EQ(Counter("schedtool.schedulable.seen"), U64(Res->SchedulableSeen));
  EXPECT_EQ(Counter("schedtool.cache.hits"), U64(Res->CacheHits));
  EXPECT_EQ(Counter("schedtool.cache.misses"), U64(Res->CacheMisses));
  EXPECT_EQ(Counter("schedtool.cache.folds"), U64(Res->SymmetryFolds));
  EXPECT_EQ(Counter("schedtool.decomposed.candidates"),
            U64(Res->DecomposedCandidates));
  EXPECT_EQ(Counter("schedtool.components.simulated"),
            U64(Res->ComponentsSimulated));
  EXPECT_EQ(Counter("schedtool.component_cache.hits"),
            U64(Res->ComponentCacheHits));
  EXPECT_EQ(Counter("schedtool.component_cache.misses"),
            U64(Res->ComponentCacheMisses));
  EXPECT_EQ(Counter("schedtool.components.dirty"), U64(Res->DirtyComponents));
  EXPECT_EQ(Counter("schedtool.components.clean_reused"),
            U64(Res->CleanComponentsReused));
}

TEST(ObsReport, TextAndJsonForms) {
  ObsScope Scope;
  obs::Registry::global().counter("report.test").add(3);
  obs::Registry::global().histogram("report.hist").record(8);
  {
    obs::ScopedTimer T("report-phase");
  }

  std::ostringstream Text;
  obs::report(Text, /*Json=*/false);
  EXPECT_NE(Text.str().find("report.test"), std::string::npos);
  EXPECT_NE(Text.str().find("report-phase"), std::string::npos);
  EXPECT_NE(Text.str().find("report.hist"), std::string::npos);

  std::ostringstream Json;
  obs::report(Json, /*Json=*/true);
  std::string Line = Json.str();
  // Strip the trailing newline and check the whole report parses.
  if (!Line.empty() && Line.back() == '\n')
    Line.pop_back();
  EXPECT_TRUE(JsonChecker(Line).valid()) << Line;
  EXPECT_NE(Line.find("\"report.test\":3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Thread-sharded registry
//===----------------------------------------------------------------------===//

TEST(ObsSharded, CountersAndHistogramsMergeAcrossThreads) {
  ObsScope Scope;
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("shard.test").add(5);
  std::thread T1([&] {
    Reg.counter("shard.test").add(7);
    Reg.histogram("shard.hist").record(4);
  });
  T1.join();
  std::thread T2([&] {
    Reg.counter("shard.test").add(1);
    Reg.counter("shard.other").add(2);
    Reg.histogram("shard.hist").record(64);
  });
  T2.join();

  uint64_t Test = 0, Other = 0;
  for (const auto &[Name, Value] : Reg.counterValues()) {
    if (Name == "shard.test")
      Test = Value;
    if (Name == "shard.other")
      Other = Value;
  }
  EXPECT_EQ(Test, 13u);
  EXPECT_EQ(Other, 2u);
  for (const auto &[Name, H] : Reg.histograms()) {
    if (Name != "shard.hist")
      continue;
    EXPECT_EQ(H.count(), 2u);
    EXPECT_EQ(H.sum(), 68u);
    EXPECT_EQ(H.min(), 4u);
    EXPECT_EQ(H.max(), 64u);
  }
  EXPECT_GE(Reg.shardCount(), 2u);

  // reset() reaches every shard, including the retired ones of the two
  // exited threads.
  Reg.reset();
  for (const auto &[Name, Value] : Reg.counterValues())
    EXPECT_EQ(Value, 0u) << Name;
}

TEST(ObsSharded, SuppressGuardIsAnOptOut) {
  ObsScope Scope(/*On=*/true, /*Spans=*/true);
  EXPECT_TRUE(obs::enabled());
  EXPECT_TRUE(obs::spansEnabled());
  {
    obs::ThreadSuppressGuard Guard;
    EXPECT_TRUE(obs::threadSuppressed());
    EXPECT_FALSE(obs::enabled());
    EXPECT_FALSE(obs::spansEnabled());
    obs::Span S("suppressed", "test");
    obs::ScopedTimer T("suppressed");
  }
  EXPECT_FALSE(obs::threadSuppressed());
  EXPECT_EQ(obs::spanCount(), 0u);
  EXPECT_TRUE(obs::PhaseTree::current().root().Children.empty());
}

//===----------------------------------------------------------------------===//
// Spans and the Chrome trace exporter
//===----------------------------------------------------------------------===//

TEST(ObsSpan, RecordsAndExportsChromeTrace) {
  ObsScope Scope(/*On=*/true, /*Spans=*/true);
  {
    obs::Span S("unit-span", "test");
    S.arg("x", 42);
    S.arg("y", -7);
  }
  {
    obs::ScopedTimer T("span-phase"); // Phases land in the same timeline.
  }
  EXPECT_GE(obs::spanCount(), 2u);
  EXPECT_EQ(obs::spansDropped(), 0u);

  std::ostringstream OS;
  obs::writeChromeTrace(OS);
  std::string Doc = OS.str();
  if (!Doc.empty() && Doc.back() == '\n')
    Doc.pop_back();
  EXPECT_TRUE(JsonChecker(Doc).valid()) << Doc;
  EXPECT_NE(Doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Doc.find("\"unit-span\""), std::string::npos);
  EXPECT_NE(Doc.find("\"span-phase\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Doc.find("\"x\":42"), std::string::npos);
  EXPECT_NE(Doc.find("\"y\":-7"), std::string::npos);
}

TEST(ObsSpan, DisabledSpansRecordNothing) {
  ObsScope Scope(/*On=*/true, /*Spans=*/false);
  {
    obs::Span S("invisible", "test");
    S.arg("x", 1);
  }
  EXPECT_EQ(obs::spanCount(), 0u);
  std::ostringstream OS;
  obs::writeChromeTrace(OS);
  EXPECT_EQ(OS.str().find("invisible"), std::string::npos);
}

TEST(ObsSpan, RingOverwritesOldestAndCountsDrops) {
  ObsScope Scope(/*On=*/true, /*Spans=*/true);
  auto Now = std::chrono::steady_clock::now();
  const size_t Extra = 10;
  for (size_t I = 0; I < obs::spanRingCapacity() + Extra; ++I)
    obs::recordSpan("flood", "test", Now, Now);
  EXPECT_EQ(obs::spanCount(), obs::spanRingCapacity());
  EXPECT_EQ(obs::spansDropped(), Extra);
  obs::resetSpans();
  EXPECT_EQ(obs::spanCount(), 0u);
  EXPECT_EQ(obs::spansDropped(), 0u);
}

//===----------------------------------------------------------------------===//
// Run reports
//===----------------------------------------------------------------------===//

TEST(ObsRunReport, VersionedJsonWithStatsCountersAndPhases) {
  ObsScope Scope;
  obs::Registry::global().counter("rr.count").add(4);
  obs::Registry::global().histogram("rr.hist").record(16);
  {
    obs::ScopedTimer T("rr-phase");
  }

  obs::RunReport Report("unit-test");
  Report.addCount("alpha", 3);
  Report.addStat("beta", 0.5);
  std::ostringstream OS;
  Report.write(OS);
  std::string Doc = OS.str();
  if (!Doc.empty() && Doc.back() == '\n')
    Doc.pop_back();
  EXPECT_TRUE(JsonChecker(Doc).valid()) << Doc;
  EXPECT_NE(Doc.find("\"swa_run_report\":1"), std::string::npos);
  EXPECT_NE(Doc.find("\"tool\":\"unit-test\""), std::string::npos);
  EXPECT_NE(Doc.find("\"alpha\":3"), std::string::npos);
  EXPECT_NE(Doc.find("\"beta\":0.5"), std::string::npos);
  EXPECT_NE(Doc.find("\"rr.count\":4"), std::string::npos);
  EXPECT_NE(Doc.find("\"rr.hist\""), std::string::npos);
  EXPECT_NE(Doc.find("rr-phase"), std::string::npos);
}

TEST(ObsRunReport, SearchReportMatchesSearchResult) {
  schedtool::SearchProblem Problem;
  Problem.Base = testcfg::twoTasksOneCore();
  for (cfg::Partition &P : Problem.Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }
  Problem.MaxIterations = 10;
  Result<schedtool::SearchResult> Res =
      schedtool::searchConfiguration(Problem);
  ASSERT_TRUE(Res.ok()) << Res.error().message();

  obs::RunReport Report("config_search");
  schedtool::fillSearchReport(Report, *Res, /*ElapsedSec=*/2.0);
  std::ostringstream OS;
  Report.write(OS);
  const std::string Doc = OS.str();
  auto Expect = [&](const std::string &Frag) {
    EXPECT_NE(Doc.find(Frag), std::string::npos) << Frag << "\nin: " << Doc;
  };
  Expect("\"cache.hits\":" + std::to_string(Res->CacheHits));
  Expect("\"cache.misses\":" + std::to_string(Res->CacheMisses));
  Expect("\"cache.folds\":" + std::to_string(Res->SymmetryFolds));
  Expect("\"candidates.evaluated\":" +
         std::to_string(Res->ConfigurationsEvaluated));
  Expect("\"candidates_per_sec\":");
  // The stop-reason taxonomy sums to evaluated + skipped candidates.
  int Tallied = 0;
  for (int C : Res->StopReasonCounts)
    Tallied += C;
  EXPECT_EQ(Tallied,
            Res->ConfigurationsEvaluated + Res->CandidatesSkipped);
}

//===----------------------------------------------------------------------===//
// Worker-count determinism under full observability
//===----------------------------------------------------------------------===//

/// Byte-exact rendering of everything a SearchResult carries; two runs are
/// equivalent iff these strings match exactly.
std::string renderSearchResult(const schedtool::SearchResult &R) {
  std::ostringstream OS;
  OS << R.Found << ' ' << R.ConfigurationsEvaluated << ' '
     << R.SchedulableSeen << ' ' << R.BestBadness << ' '
     << R.CandidatesSkipped << ' ' << R.Cancelled << ' ' << R.CacheHits
     << ' ' << R.CacheMisses << ' ' << R.SymmetryFolds << ' '
     << R.DuplicateCandidates << ' ' << R.DecomposedCandidates << ' '
     << R.ComponentsSimulated << ' ' << R.SimulationsRun << '\n';
  for (int C : R.StopReasonCounts)
    OS << C << ' ';
  OS << '\n';
  for (const auto &[Iter, Badness] : R.BestTrajectory)
    OS << Iter << ':' << Badness << ' ';
  OS << '\n';
  for (const std::string &Line : R.Log)
    OS << Line << '\n';
  for (const cfg::Partition &P : R.Best.Partitions) {
    OS << P.Name << "->" << P.Core;
    for (const cfg::Window &W : P.Windows)
      OS << " [" << W.Start << ',' << W.End << ')';
    OS << '\n';
  }
  return OS.str();
}

TEST(ObsSharded, SearchIsWorkerCountInvariantUnderFullObservability) {
  schedtool::SearchProblem Problem;
  Problem.Base = testcfg::twoTasksOneCore();
  for (cfg::Partition &P : Problem.Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }
  Problem.MaxIterations = 12;

  // Reference: observability fully off.
  std::string Baseline;
  {
    ObsScope Scope(/*On=*/false, /*Spans=*/false);
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    ASSERT_TRUE(Res.ok()) << Res.error().message();
    Baseline = renderSearchResult(*Res);
  }

  // With metrics AND spans on, every worker count must (a) reproduce the
  // obs-off result byte-for-byte and (b) merge to identical registry
  // contents — the sharded-domain determinism contract.
  std::vector<std::pair<std::string, uint64_t>> BaselineCounters;
  for (int Workers : {1, 2, 4}) {
    ObsScope Scope(/*On=*/true, /*Spans=*/true);
    Problem.Workers = Workers;
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    ASSERT_TRUE(Res.ok()) << Res.error().message();
    EXPECT_EQ(renderSearchResult(*Res), Baseline)
        << "Workers=" << Workers << " diverged from the obs-off run";
    EXPECT_GT(obs::spanCount(), 0u) << "Workers=" << Workers;

    auto Counters = obs::Registry::global().counterValues();
    EXPECT_FALSE(Counters.empty());
    if (Workers == 1)
      BaselineCounters = Counters;
    else
      EXPECT_EQ(Counters, BaselineCounters)
          << "merged counters depend on Workers=" << Workers;
  }
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
