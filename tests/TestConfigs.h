//===- tests/TestConfigs.h - Shared configuration fixtures ------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hand-built configurations shared by the test suites.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_TESTS_TESTCONFIGS_H
#define SWA_TESTS_TESTCONFIGS_H

#include "config/Config.h"

namespace swa {
namespace testcfg {

/// One module, one core, one FPPS partition with a full-hyperperiod
/// window and two tasks:
///   T1: period 10, wcet 3, deadline 10, priority 2
///   T2: period 20, wcet 5, deadline 20, priority 1
/// Hyperperiod 20; classic rate-monotonic example, schedulable.
inline cfg::Config twoTasksOneCore() {
  cfg::Config C;
  C.Name = "two-tasks";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"m0c0", 0, 0});
  cfg::Partition P;
  P.Name = "p0";
  P.Scheduler = cfg::SchedulerKind::FPPS;
  P.Core = 0;
  P.Windows.push_back({0, 20});
  P.Tasks.push_back({"t1", 2, {3}, 10, 10});
  P.Tasks.push_back({"t2", 1, {5}, 20, 20});
  C.Partitions.push_back(std::move(P));
  return C;
}

/// Same structure but the low-priority task is too long: T2 needs 16
/// ticks but only 20 - 2*3 = 14 are left in the hyperperiod.
inline cfg::Config overloadedOneCore() {
  cfg::Config C = twoTasksOneCore();
  C.Name = "overloaded";
  C.Partitions[0].Tasks[1].Wcet[0] = 16;
  return C;
}

/// A long low-priority task preempted by a short high-priority one:
///   hi: period 10, wcet 2, priority 5
///   lo: period 20, wcet 15, priority 1
/// FPPS over a full window; lo executes [2,10) and [12,19).
inline cfg::Config preemptionShowcase() {
  cfg::Config C;
  C.Name = "preemption";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"m0c0", 0, 0});
  cfg::Partition P;
  P.Name = "p0";
  P.Scheduler = cfg::SchedulerKind::FPPS;
  P.Core = 0;
  P.Windows.push_back({0, 20});
  P.Tasks.push_back({"hi", 5, {2}, 10, 10});
  P.Tasks.push_back({"lo", 1, {15}, 20, 20});
  C.Partitions.push_back(std::move(P));
  return C;
}

/// Two partitions on one core with alternating 5-tick windows over a
/// hyperperiod of 20. Each partition has one task (period 20, wcet 7):
/// the task needs both of its windows to complete.
inline cfg::Config twoPartitionsWindows() {
  cfg::Config C;
  C.Name = "two-partitions";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"m0c0", 0, 0});
  for (int I = 0; I < 2; ++I) {
    cfg::Partition P;
    P.Name = I == 0 ? "pA" : "pB";
    P.Scheduler = cfg::SchedulerKind::FPPS;
    P.Core = 0;
    cfg::TimeValue Base = I * 5;
    P.Windows.push_back({Base, Base + 5});
    P.Windows.push_back({Base + 10, Base + 15});
    P.Tasks.push_back({"t", 1, {7}, 20, 20});
    C.Partitions.push_back(std::move(P));
  }
  return C;
}

/// A producer/consumer pair on two cores of different modules, linked by
/// one message with distinct memory/network delays:
///   producer: period 20, wcet 4   (partition p0, core 0, module 0)
///   consumer: period 20, wcet 3   (partition p1, core 1, module 1)
/// The consumer cannot start its job before the producer's data arrives
/// (at completion + network delay 5).
inline cfg::Config producerConsumer() {
  cfg::Config C;
  C.Name = "producer-consumer";
  C.NumCoreTypes = 1;
  C.Cores.push_back({"m0c0", 0, 0});
  C.Cores.push_back({"m1c0", 1, 0});
  {
    cfg::Partition P;
    P.Name = "prod";
    P.Core = 0;
    P.Windows.push_back({0, 20});
    P.Tasks.push_back({"producer", 1, {4}, 20, 20});
    C.Partitions.push_back(std::move(P));
  }
  {
    cfg::Partition P;
    P.Name = "cons";
    P.Core = 1;
    P.Windows.push_back({0, 20});
    P.Tasks.push_back({"consumer", 1, {3}, 20, 20});
    C.Partitions.push_back(std::move(P));
  }
  cfg::Message M;
  M.Sender = {0, 0};
  M.Receiver = {1, 0};
  M.MemDelay = 1;
  M.NetDelay = 5;
  C.Messages.push_back(M);
  return C;
}

} // namespace testcfg
} // namespace swa

#endif // SWA_TESTS_TESTCONFIGS_H
