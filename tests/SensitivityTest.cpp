//===- tests/SensitivityTest.cpp - Parametric sensitivity contracts -------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Contracts of analysis::Sensitivity:
//  * certificate exactness — the reported largest-passing config is
//    schedulable and the smallest-failing one is not, re-verified by
//    fresh full (no early exit, no cache) verdict runs;
//  * agreement with brute force on small configs, where the whole WCET
//    domain can be scanned linearly;
//  * deterministic fan-out — summary() is byte-identical for Workers
//    1/2/4, cold or against a shared warm VerdictCache;
//  * guard rails — unschedulable bases short-circuit, pre-cancelled
//    tokens never probe.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sensitivity.h"

#include "analysis/Analyzer.h"
#include "gen/Workload.h"
#include "schedtool/VerdictCache.h"
#include "tests/TestConfigs.h"

#include <gtest/gtest.h>

using namespace swa;

namespace {

/// Fresh full-run verdict: no early exit, no cache, no arena — the
/// reference the sensitivity numbers are judged against.
analysis::VerdictOutcome fullVerdict(const cfg::Config &C) {
  Result<analysis::VerdictOutcome> R = analysis::analyzeVerdictOnly(C);
  if (!R.ok()) {
    ADD_FAILURE() << "analyzeVerdictOnly: " << R.error().message();
    return {};
  }
  EXPECT_TRUE(R->decided());
  return *R;
}

analysis::SensitivityResult run(const cfg::Config &C,
                                analysis::SensitivityOptions Opts = {}) {
  Result<analysis::SensitivityResult> R = analysis::analyzeSensitivity(C, Opts);
  if (!R.ok()) {
    ADD_FAILURE() << "analyzeSensitivity: " << R.error().message();
    return {};
  }
  return *R;
}

TEST(SensitivityTest, WcetSlackCertificatesAreExact) {
  cfg::Config Base = testcfg::twoTasksOneCore();
  analysis::SensitivityOptions Opts;
  Opts.QueryPeriod = Opts.QueryOffset = Opts.QueryFrontier = false;
  analysis::SensitivityResult R = run(Base, Opts);

  ASSERT_TRUE(R.BaseDecided);
  ASSERT_TRUE(R.BaseSchedulable);
  ASSERT_EQ(R.Wcet.size(), 2u);
  for (const analysis::WcetSlackResult &W : R.Wcet) {
    ASSERT_TRUE(W.Decided) << "task " << W.TaskGid;
    EXPECT_GE(W.SlackTicks, 0);
    EXPECT_LE(W.SlackTicks, W.DomainMax);
    ASSERT_TRUE(W.HasPassing);
    // The passing certificate is exactly the base inflated by the slack.
    EXPECT_EQ(cfg::fingerprintConfig(W.LargestPassing),
              cfg::fingerprintConfig(
                  analysis::withWcetDelta(Base, W.TaskGid, W.SlackTicks)));
    EXPECT_TRUE(fullVerdict(W.LargestPassing).Schedulable)
        << "task " << W.TaskGid << " at slack " << W.SlackTicks;
    if (W.UnboundedInDomain) {
      EXPECT_EQ(W.SlackTicks, W.DomainMax);
      EXPECT_FALSE(W.HasFailing);
    } else {
      ASSERT_TRUE(W.HasFailing);
      // Default tolerance 1: the certificates are adjacent, so one tick
      // past the slack the verdict must flip.
      EXPECT_EQ(cfg::fingerprintConfig(W.SmallestFailing),
                cfg::fingerprintConfig(analysis::withWcetDelta(
                    Base, W.TaskGid, W.SlackTicks + 1)));
      EXPECT_FALSE(fullVerdict(W.SmallestFailing).Schedulable)
          << "task " << W.TaskGid << " at slack+1 "
          << (W.SlackTicks + 1);
    }
  }
}

TEST(SensitivityTest, WcetSlackMatchesBruteForce) {
  cfg::Config Base = testcfg::twoTasksOneCore();
  analysis::SensitivityOptions Opts;
  Opts.QueryPeriod = Opts.QueryOffset = Opts.QueryFrontier = false;
  analysis::SensitivityResult R = run(Base, Opts);

  for (const analysis::WcetSlackResult &W : R.Wcet) {
    ASSERT_TRUE(W.Decided);
    // Linear scan of the whole (small) domain: the first failing delta.
    cfg::TimeValue FirstFail = -1;
    for (cfg::TimeValue D = 1; D <= W.DomainMax; ++D) {
      if (!fullVerdict(analysis::withWcetDelta(Base, W.TaskGid, D))
               .Schedulable) {
        FirstFail = D;
        break;
      }
    }
    if (FirstFail < 0)
      EXPECT_TRUE(W.UnboundedInDomain) << "task " << W.TaskGid;
    else
      EXPECT_EQ(W.SlackTicks, FirstFail - 1) << "task " << W.TaskGid;
  }
}

TEST(SensitivityTest, OffsetIntervalEndpointsAreVerified) {
  cfg::Config Base = testcfg::twoPartitionsWindows();
  analysis::SensitivityOptions Opts;
  Opts.QueryWcet = Opts.QueryPeriod = Opts.QueryFrontier = false;
  analysis::SensitivityResult R = run(Base, Opts);

  ASSERT_TRUE(R.BaseSchedulable);
  ASSERT_EQ(R.Offsets.size(), 2u);
  for (const analysis::OffsetIntervalResult &O : R.Offsets) {
    ASSERT_TRUE(O.Decided) << "task " << O.TaskGid;
    EXPECT_LE(O.DomainLo, 0);
    EXPECT_GE(O.DomainHi, 0);
    EXPECT_LE(O.MinShift, 0);
    EXPECT_GE(O.MaxShift, 0);
    int Part = Base.taskRefOf(O.TaskGid).Partition;
    for (cfg::TimeValue S : {O.MinShift, O.MaxShift}) {
      cfg::Config Shifted = analysis::withWindowShift(Base, Part, S);
      ASSERT_FALSE(Shifted.validate().isFailure());
      // The shift moves windows only, so the shape — and therefore the
      // arena key — is unchanged.
      EXPECT_EQ(cfg::fingerprintShape(Shifted), cfg::fingerprintShape(Base));
      EXPECT_TRUE(fullVerdict(Shifted).Schedulable)
          << "task " << O.TaskGid << " shift " << S;
    }
    // One tick past a bounded endpoint the probe flips: either the
    // shifted config no longer validates (failing by convention — here
    // the partitions' windows collide) or it simulates unschedulable.
    auto FlipsAt = [&](cfg::TimeValue S) {
      cfg::Config Past = analysis::withWindowShift(Base, Part, S);
      return Past.validate().isFailure() || !fullVerdict(Past).Schedulable;
    };
    if (!O.HiUnbounded) {
      EXPECT_TRUE(FlipsAt(O.MaxShift + 1)) << "task " << O.TaskGid;
    }
    if (!O.LoUnbounded) {
      EXPECT_TRUE(FlipsAt(O.MinShift - 1)) << "task " << O.TaskGid;
    }
  }
}

TEST(SensitivityTest, PeriodQueryShrinksOverDivisorsOnly) {
  cfg::Config Base = testcfg::twoTasksOneCore();
  analysis::SensitivityOptions Opts;
  Opts.QueryWcet = Opts.QueryOffset = Opts.QueryFrontier = false;
  analysis::SensitivityResult R = run(Base, Opts);

  ASSERT_EQ(R.Periods.size(), 2u);
  for (const analysis::PeriodIntervalResult &P : R.Periods) {
    ASSERT_TRUE(P.Decided) << "task " << P.TaskGid;
    ASSERT_GE(P.MinFeasiblePeriod, 1);
    EXPECT_EQ(P.BasePeriod % P.MinFeasiblePeriod, 0);
    if (P.MinFeasiblePeriod < P.BasePeriod) {
      EXPECT_TRUE(fullVerdict(analysis::withPeriod(Base, P.TaskGid,
                                                   P.MinFeasiblePeriod))
                      .Schedulable);
    }
  }
}

TEST(SensitivityTest, MessageTiedTasksHaveEmptyPeriodDomain) {
  cfg::Config Base = testcfg::producerConsumer();
  analysis::SensitivityOptions Opts;
  Opts.QueryWcet = Opts.QueryOffset = Opts.QueryFrontier = false;
  analysis::SensitivityResult R = run(Base, Opts);

  ASSERT_EQ(R.Periods.size(), 2u);
  for (const analysis::PeriodIntervalResult &P : R.Periods) {
    ASSERT_TRUE(P.Decided);
    EXPECT_EQ(P.DomainSize, 0);
    EXPECT_EQ(P.MinFeasiblePeriod, -1);
    EXPECT_EQ(P.Probes, 0);
  }
}

TEST(SensitivityTest, FrontierCertificateHolds) {
  cfg::Config Base = testcfg::twoTasksOneCore();
  analysis::SensitivityOptions Opts;
  Opts.QueryWcet = Opts.QueryPeriod = Opts.QueryOffset = false;
  analysis::SensitivityResult R = run(Base, Opts);

  ASSERT_TRUE(R.Frontier.Decided);
  ASSERT_GE(R.Frontier.FrontierPermille, 1000);
  EXPECT_LE(R.Frontier.FrontierPermille, R.Frontier.DomainMaxPermille);
  cfg::Config At =
      analysis::withUniformInflation(Base, R.Frontier.FrontierPermille);
  ASSERT_FALSE(At.validate().isFailure());
  EXPECT_TRUE(fullVerdict(At).Schedulable);
}

TEST(SensitivityTest, UnschedulableBaseShortCircuits) {
  analysis::SensitivityResult R = run(testcfg::overloadedOneCore());
  ASSERT_TRUE(R.BaseDecided);
  EXPECT_FALSE(R.BaseSchedulable);
  EXPECT_EQ(R.TotalProbes, 1);
  ASSERT_EQ(R.Wcet.size(), 2u);
  for (const analysis::WcetSlackResult &W : R.Wcet) {
    EXPECT_TRUE(W.Decided);
    EXPECT_EQ(W.SlackTicks, -1);
    EXPECT_FALSE(W.HasPassing);
    EXPECT_TRUE(W.HasFailing);
  }
  EXPECT_TRUE(R.Periods.empty());
  EXPECT_TRUE(R.Offsets.empty());
  EXPECT_EQ(R.Frontier.FrontierPermille, -1);
}

TEST(SensitivityTest, PreCancelledTokenNeverProbes) {
  CancelToken Cancel;
  Cancel.cancel();
  analysis::SensitivityOptions Opts;
  Opts.Cancel = &Cancel;
  analysis::SensitivityResult R = run(testcfg::twoTasksOneCore(), Opts);
  EXPECT_FALSE(R.BaseDecided);
  EXPECT_TRUE(R.Cancelled);
  EXPECT_EQ(R.TotalProbes, 0);
}

TEST(SensitivityTest, SummaryIsWorkerCountInvariant) {
  // A workload large enough that the fan-out actually interleaves.
  gen::IndustrialParams Params;
  Params.Modules = 1;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = 0.4;
  Params.Seed = 11;
  cfg::Config Base = gen::industrialConfig(Params);
  ASSERT_FALSE(Base.validate().isFailure());

  std::string Reference;
  for (int Workers : {1, 2, 4}) {
    analysis::SensitivityOptions Opts;
    Opts.Workers = Workers;
    analysis::SensitivityResult R = run(Base, Opts);
    ASSERT_TRUE(R.BaseDecided);
    if (Workers == 1)
      Reference = R.summary();
    else
      EXPECT_EQ(R.summary(), Reference) << "workers=" << Workers;
  }

  // A caller-shared warm cache replays verdicts but never changes them.
  schedtool::VerdictCache Shared;
  for (int Workers : {1, 4}) {
    analysis::SensitivityOptions Opts;
    Opts.Workers = Workers;
    Opts.Cache = &Shared;
    analysis::SensitivityResult R = run(Base, Opts);
    EXPECT_EQ(R.summary(), Reference)
        << "workers=" << Workers << " (shared cache)";
  }
}

TEST(SensitivityTest, ToleranceWidensTheBracket) {
  cfg::Config Base = testcfg::twoTasksOneCore();
  analysis::SensitivityOptions Fine;
  Fine.QueryPeriod = Fine.QueryOffset = Fine.QueryFrontier = false;
  analysis::SensitivityOptions Coarse = Fine;
  Coarse.ToleranceTicks = 4;
  analysis::SensitivityResult RF = run(Base, Fine);
  analysis::SensitivityResult RC = run(Base, Coarse);
  for (size_t I = 0; I < RF.Wcet.size(); ++I) {
    const analysis::WcetSlackResult &F = RF.Wcet[I];
    const analysis::WcetSlackResult &C = RC.Wcet[I];
    ASSERT_TRUE(F.Decided);
    ASSERT_TRUE(C.Decided);
    // The coarse bracket still contains the fine answer, from below, and
    // uses no more probes.
    EXPECT_LE(C.SlackTicks, F.SlackTicks);
    EXPECT_LE(C.Probes, F.Probes);
    if (!C.UnboundedInDomain) {
      EXPECT_LE(F.SlackTicks - C.SlackTicks, 4);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
