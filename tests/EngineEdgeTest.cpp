//===- tests/EngineEdgeTest.cpp - Engine error paths and edge cases ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "nsa/Simulator.h"
#include "sa/Compile.h"
#include "sa/NetworkBuilder.h"
#include "sa/Template.h"

#include <gtest/gtest.h>

using namespace swa;
using namespace swa::sa;
using namespace swa::nsa;

namespace {

/// Builds a single-instance network from one template spec.
Result<std::unique_ptr<Network>>
single(const std::string &Globals,
       const std::function<void(TemplateBuilder &)> &Define,
       bool Compile = true) {
  NetworkBuilder NB;
  if (Error E = NB.addGlobals(Globals))
    return E;
  TemplateBuilder TB("T", NB.globalDecls());
  Define(TB);
  Result<std::unique_ptr<Template>> T = TB.build();
  if (!T.ok())
    return T.takeError();
  if (auto R = NB.addInstance(**T, "t", {}); !R.ok())
    return R.takeError();
  Result<std::unique_ptr<Network>> Net = NB.finish();
  if (Net.ok() && Compile)
    if (Error E = compileNetwork(**Net))
      return E;
  return Net;
}

} // namespace

TEST(SimulatorEdge, TimeLockIsReportedWithLocation) {
  // Invariant forces action at t == 3 but no edge exists.
  auto Net = single("int x;", [](TemplateBuilder &TB) {
    TB.decls("clock c;").location("Stuck", "c <= 3").initial("Stuck");
  });
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  (*Net)->Meta["horizon"] = 100;
  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("time-lock"), std::string::npos);
  EXPECT_NE(R.Error.find("t at Stuck"), std::string::npos);
  EXPECT_NE(R.Error.find("t=3"), std::string::npos);
}

TEST(SimulatorEdge, CommittedDeadlockIsReported) {
  // A committed location whose only exit needs a partner that never
  // exists (binary send with no receiver).
  auto Net = single("chan nobody;", [](TemplateBuilder &TB) {
    TB.committed("C").location("D").initial("C").edge(
        "C", "D", {.Sync = "nobody!"});
  });
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  (*Net)->Meta["horizon"] = 10;
  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("committed"), std::string::npos);
}

TEST(SimulatorEdge, ActionBudgetStopsLivelocks) {
  // A committed self-loop spins forever at t = 0.
  auto Net = single("int n;", [](TemplateBuilder &TB) {
    TB.committed("Spin").initial("Spin").edge("Spin", "Spin",
                                              {.Update = "n = n + 1"});
  });
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  (*Net)->Meta["horizon"] = 10;
  Simulator Sim(**Net);
  SimOptions Opts;
  Opts.MaxActions = 1000;
  SimResult R = Sim.run(Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(SimulatorEdge, RuntimeModelErrorsAbort) {
  // Division by zero inside a guard function is a fatal model error.
  auto Net = single("int z = 0;"
                    "int boom() { return 1 / z; }",
                    [](TemplateBuilder &TB) {
                      TB.location("A").location("B").initial("A").edge(
                          "A", "B", {.Guard = "boom() > 0"});
                    });
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  (*Net)->Meta["horizon"] = 5;
  EXPECT_DEATH(
      {
        Simulator Sim(**Net);
        (void)Sim.run();
      },
      "division by zero");
}

TEST(SimulatorEdge, RunawayLoopHitsStepBudget) {
  auto Net = single("int n;"
                    "void forever() { while (true) { n = n + 1; } }",
                    [](TemplateBuilder &TB) {
                      TB.location("A").location("B").initial("A").edge(
                          "A", "B", {.Update = "forever()"});
                    });
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  (*Net)->Meta["horizon"] = 5;
  EXPECT_DEATH(
      {
        Simulator Sim(**Net);
        (void)Sim.run();
      },
      "step budget");
}

TEST(SimulatorEdge, OutOfRangeChannelIndexDisablesTheEdge) {
  // A sync index outside the channel array silently disables the edge
  // instead of corrupting the channel table.
  auto Net = single("chan go[2]; int sel = 7;",
                    [](TemplateBuilder &TB) {
                      TB.location("A").location("B").initial("A").edge(
                          "A", "B", {.Sync = "go[sel]!"});
                    });
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  (*Net)->Meta["horizon"] = 5;
  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Final.Locs[0], 0); // Never moved.
}

TEST(SimulatorEdge, StopwatchNeverRunsBackwards) {
  // Rates flip with a variable across phases; the accumulated value must
  // count exactly the running intervals.
  auto Net = single(
      "int on = 1;",
      [](TemplateBuilder &TB) {
        TB.decls("clock w; clock t;")
            .location("P1", "t <= 2 && w' == on")
            .location("P2", "t <= 5 && w' == on")
            .location("P3", "t <= 10 && w' == on")
            .location("End")
            .initial("P1")
            .edge("P1", "P2", {.Guard = "t >= 2", .Update = "on = 0"})
            .edge("P2", "P3", {.Guard = "t >= 5", .Update = "on = 1"})
            .edge("P3", "End", {.Guard = "t >= 10"});
      });
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  (*Net)->Meta["horizon"] = 20;
  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  // w ran during [0,2) and [5,10): 7 ticks. In End no rate condition
  // applies, so both clocks advance freely until the horizon.
  EXPECT_EQ(R.Final.Locs[0], 3);
  EXPECT_EQ(R.Final.Clocks[0] - (R.Final.Now - 10), 7);
}

TEST(SimulatorEdge, MultipleIndependentClocksPerAutomaton) {
  auto Net = single("int fired = 0;", [](TemplateBuilder &TB) {
    TB.decls("clock a; clock b;")
        .location("W", "a <= 4 && b <= 9")
        .location("Mid", "b <= 9")
        .location("End")
        .initial("W")
        .edge("W", "Mid", {.Guard = "a >= 4", .Update = "fired = 1"})
        .edge("Mid", "End", {.Guard = "b >= 9", .Update = "fired = 2"});
  });
  ASSERT_TRUE(Net.ok()) << Net.error().message();
  (*Net)->Meta["horizon"] = 20;
  Simulator Sim(**Net);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Final.Locs[0], 2);
  EXPECT_EQ(R.Final.Store[static_cast<size_t>((*Net)->slotOf("fired"))],
            2);
}

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
