//===- nsa/Exec.cpp - Shared NSA execution semantics -----------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "nsa/Exec.h"

#include "usl/Vm.h"

#include <algorithm>
#include <cassert>

using namespace swa;
using namespace swa::nsa;

bool swa::nsa::syncTracesEqual(const Trace &A, const Trace &B) {
  // Events are compared as sets of <time, channel, participant set>; edge
  // indices and receiver order are irrelevant to the paper's trace notion.
  auto Key = [](const Event &E) {
    std::vector<int32_t> Parts;
    Parts.push_back(E.Initiator.Automaton);
    for (const EventParticipant &R : E.Receivers)
      Parts.push_back(R.Automaton);
    std::sort(Parts.begin(), Parts.end());
    return std::make_tuple(E.Time, E.Channel, Parts);
  };
  std::vector<std::tuple<int64_t, int32_t, std::vector<int32_t>>> KA, KB;
  for (const Event &E : A)
    if (!E.isInternal())
      KA.push_back(Key(E));
  for (const Event &E : B)
    if (!E.isInternal())
      KB.push_back(Key(E));
  std::sort(KA.begin(), KA.end());
  std::sort(KB.begin(), KB.end());
  return KA == KB;
}

namespace {

/// Folds a bound expression that is a literal (or a bound-to-constant
/// reference) into its value. Returns false for dynamic expressions.
bool foldConstExpr(const usl::Expr &E, int64_t &Out) {
  switch (E.Kind) {
  case usl::ExprKind::IntLit:
  case usl::ExprKind::BoolLit:
    Out = E.Literal;
    return true;
  case usl::ExprKind::VarRef:
    if (E.Ref == usl::RefKind::Const) {
      Out = E.ConstValue;
      return true;
    }
    return false;
  default:
    return false;
  }
}

} // namespace

Exec::Exec(const sa::Network &Net) : Net(Net) {
  Ctx.ConstArrays = &Net.Bind.ConstArrays;
  Ctx.FuncTable = &Net.Bind.FuncTable;
  ClockOwner.assign(Net.ClockNames.size(), -1);
  for (size_t A = 0; A < Net.Automata.size(); ++A)
    for (int C : Net.Automata[A]->Clocks)
      ClockOwner[static_cast<size_t>(C)] = static_cast<int32_t>(A);

  Folded.resize(Net.Automata.size());
  for (size_t A = 0; A < Net.Automata.size(); ++A) {
    const sa::Automaton &Aut = *Net.Automata[A];
    FoldedAut &F = Folded[A];
    F.UpperBounds.resize(Aut.Locations.size());
    F.LocHasRates.resize(Aut.Locations.size(), 0);
    F.LocRates.resize(Aut.Locations.size());
    for (size_t L = 0; L < Aut.Locations.size(); ++L) {
      const sa::Location &Loc = Aut.Locations[L];
      F.LocHasRates[L] = Loc.Rates.empty() ? 0 : 1;
      F.LocRates[L].reserve(Loc.Rates.size());
      for (const sa::RateCond &R : Loc.Rates) {
        FoldedAut::FoldedRate FR{R.Clock, DynamicBound, &R};
        foldConstExpr(*R.Rate, FR.Value);
        F.LocRates[L].push_back(FR);
      }
      F.UpperBounds[L].resize(Loc.Uppers.size(), DynamicBound);
      for (size_t I = 0; I < Loc.Uppers.size(); ++I)
        foldConstExpr(*Loc.Uppers[I].Bound, F.UpperBounds[L][I]);
    }
    F.GuardBounds.resize(Aut.Edges.size());
    for (size_t E = 0; E < Aut.Edges.size(); ++E) {
      const sa::Edge &Ed = Aut.Edges[E];
      F.GuardBounds[E].resize(Ed.ClockGuards.size(), DynamicBound);
      for (size_t I = 0; I < Ed.ClockGuards.size(); ++I)
        foldConstExpr(*Ed.ClockGuards[I].Bound, F.GuardBounds[E][I]);
    }
  }
}

int64_t Exec::upperBound(State &S, int Aut, const sa::Location &L,
                         size_t I) {
  int64_t V = Folded[static_cast<size_t>(Aut)]
                  .UpperBounds[static_cast<size_t>(
                      S.Locs[static_cast<size_t>(Aut)])][I];
  if (V != DynamicBound)
    return V;
  const sa::ClockUpper &U = L.Uppers[I];
  return evalSite(S, *U.Bound, U.BoundCode, {});
}

int64_t Exec::guardBound(State &S, int Aut, int Edge, size_t I) {
  int64_t V = Folded[static_cast<size_t>(Aut)]
                  .GuardBounds[static_cast<size_t>(Edge)][I];
  if (V != DynamicBound)
    return V;
  const sa::ClockGuard &CG =
      Net.Automata[static_cast<size_t>(Aut)]
          ->Edges[static_cast<size_t>(Edge)]
          .ClockGuards[I];
  return evalSite(S, *CG.Bound, CG.BoundCode, {});
}

void Exec::initState(State &S) {
  S.Now = 0;
  S.Locs.assign(Net.Automata.size(), 0);
  for (size_t A = 0; A < Net.Automata.size(); ++A)
    S.Locs[A] = Net.Automata[A]->InitialLocation;
  S.Clocks.assign(Net.ClockNames.size(), 0);
  S.Store = Net.InitialStore;
}

int64_t Exec::evalExprIn(State &S, const usl::Expr &E,
                         const std::vector<int64_t> &Frame) {
  Ctx.Store = &S.Store;
  Ctx.WriteLog = nullptr;
  Ctx.StepBudget = usl::DefaultStepBudget;
  Ctx.FrameStack.assign(Frame.begin(), Frame.end());
  Ctx.CallDepth = 0;
  return usl::evalExpr(E, Ctx, 0);
}

int64_t Exec::evalIn(const State &S, const usl::Expr &E,
                     const std::vector<int64_t> &Frame) {
  // Guards/invariant expressions are verified side-effect free, so the
  // const_cast cannot mutate the state.
  return evalExprIn(const_cast<State &>(S), E, Frame);
}

int64_t Exec::evalSite(State &S, const usl::Expr &E, const usl::Code &C,
                       const std::vector<int64_t> &Frame) {
  if (C.empty())
    return evalExprIn(S, E, Frame);
  Ctx.Store = &S.Store;
  Ctx.WriteLog = nullptr;
  Ctx.StepBudget = usl::DefaultStepBudget;
  Ctx.FrameStack.assign(Frame.begin(), Frame.end());
  Ctx.CallDepth = 0;
  return usl::runCode(C, Net.FuncCode, Ctx, 0);
}

bool Exec::clockGuardsHold(State &S, int Aut, int Edge) {
  const sa::Edge &E = Net.Automata[static_cast<size_t>(Aut)]
                          ->Edges[static_cast<size_t>(Edge)];
  for (size_t I = 0; I < E.ClockGuards.size(); ++I) {
    const sa::ClockGuard &CG = E.ClockGuards[I];
    int64_t Bound = guardBound(S, Aut, Edge, I);
    int64_t C = S.Clocks[static_cast<size_t>(CG.Clock)];
    bool Ok = false;
    switch (CG.Op) {
    case usl::BinaryOp::Lt:
      Ok = C < Bound;
      break;
    case usl::BinaryOp::Le:
      Ok = C <= Bound;
      break;
    case usl::BinaryOp::Gt:
      Ok = C > Bound;
      break;
    case usl::BinaryOp::Ge:
      Ok = C >= Bound;
      break;
    case usl::BinaryOp::Eq:
      Ok = C == Bound;
      break;
    default:
      assert(false && "invalid clock guard operator");
    }
    if (!Ok)
      return false;
  }
  return true;
}

void Exec::collectEnabled(const State &SIn, int Aut,
                          std::vector<EnabledInst> &Out) {
  State &S = const_cast<State &>(SIn); // Guards are pure; see evalIn.
  const sa::Automaton &A = *Net.Automata[static_cast<size_t>(Aut)];
  const sa::Location &L =
      A.Locations[static_cast<size_t>(S.Locs[static_cast<size_t>(Aut)])];

  std::vector<int64_t> &Frame = FrameScratch;
  for (int EI : L.OutEdges) {
    const sa::Edge &E = A.Edges[static_cast<size_t>(EI)];
    if (!clockGuardsHold(S, Aut, EI))
      continue;

    // Enumerate select combinations in ascending order.
    size_t NSel = E.Selects.size();
    Frame.assign(NSel, 0);
    for (size_t I = 0; I < NSel; ++I)
      Frame[I] = E.Selects[I].Lo;
    for (;;) {
      bool Pass = true;
      if (E.DataGuard)
        Pass = evalSite(S, *E.DataGuard, E.DataGuardCode, Frame) != 0;
      if (Pass) {
        EnabledInst Inst;
        Inst.Edge = EI;
        Inst.Selects = Frame;
        if (E.Sync) {
          int64_t Offset = 0;
          if (E.Sync->Index) {
            Offset = evalSite(S, *E.Sync->Index, E.Sync->IndexCode, Frame);
            if (Offset < 0 || Offset >= E.Sync->ChannelCount)
              Pass = false; // Out-of-range channel index: edge disabled.
          }
          if (Pass) {
            Inst.ChanId = E.Sync->ChannelBase + static_cast<int32_t>(Offset);
            Inst.IsSend = E.Sync->IsSend;
            Inst.Broadcast = E.Sync->Broadcast;
          }
        }
        if (Pass)
          Out.push_back(std::move(Inst));
      }
      // Advance the select odometer.
      size_t I = 0;
      for (; I < NSel; ++I) {
        if (Frame[I] < E.Selects[I].Hi) {
          ++Frame[I];
          for (size_t J = 0; J < I; ++J)
            Frame[J] = E.Selects[J].Lo;
          break;
        }
      }
      if (NSel == 0 || I == NSel)
        break;
    }
  }
}

bool Exec::invariantHolds(const State &SIn, int Aut) {
  State &S = const_cast<State &>(SIn);
  const sa::Automaton &A = *Net.Automata[static_cast<size_t>(Aut)];
  const sa::Location &L =
      A.Locations[static_cast<size_t>(S.Locs[static_cast<size_t>(Aut)])];
  if (L.DataInvariant &&
      evalSite(S, *L.DataInvariant, L.DataInvariantCode, {}) == 0)
    return false;
  for (size_t I = 0; I < L.Uppers.size(); ++I) {
    const sa::ClockUpper &U = L.Uppers[I];
    int64_t Bound = upperBound(S, Aut, L, I);
    int64_t C = S.Clocks[static_cast<size_t>(U.Clock)];
    if (U.Strict ? (C >= Bound) : (C > Bound))
      return false;
  }
  return true;
}

void Exec::runUpdate(State &S, const sa::Edge &E,
                     const std::vector<int64_t> &Selects,
                     std::vector<int32_t> *WriteLog) {
  if (!E.Update.empty()) {
    Ctx.Store = &S.Store;
    Ctx.WriteLog = WriteLog;
    Ctx.StepBudget = usl::DefaultStepBudget;
    Ctx.FrameStack.assign(Selects.begin(), Selects.end());
    Ctx.CallDepth = 0;
    if (!E.UpdateCode.empty())
      usl::runCode(E.UpdateCode, Net.FuncCode, Ctx, 0);
    else
      usl::execStmts(E.Update, Ctx, 0);
    Ctx.WriteLog = nullptr;
  }
  for (int C : E.ClockResets)
    S.Clocks[static_cast<size_t>(C)] = 0;
}

bool Exec::applyStep(State &S, const Step &St,
                     std::vector<int32_t> *WriteLog) {
  const sa::Automaton &IA =
      *Net.Automata[static_cast<size_t>(St.InitiatorAut)];
  const sa::Edge &IE =
      IA.Edges[static_cast<size_t>(St.Initiator.Edge)];

  runUpdate(S, IE, St.Initiator.Selects, WriteLog);
  S.Locs[static_cast<size_t>(St.InitiatorAut)] = IE.Dst;

  for (const Step::Recv &R : St.Receivers) {
    const sa::Automaton &RA = *Net.Automata[static_cast<size_t>(R.Aut)];
    const sa::Edge &RE = RA.Edges[static_cast<size_t>(R.Inst.Edge)];
    runUpdate(S, RE, R.Inst.Selects, WriteLog);
    S.Locs[static_cast<size_t>(R.Aut)] = RE.Dst;
  }

  if (!invariantHolds(S, St.InitiatorAut))
    return false;
  for (const Step::Recv &R : St.Receivers)
    if (!invariantHolds(S, R.Aut))
      return false;
  return true;
}

int Exec::rateOf(const State &SIn, int Aut, int ClockIdx) {
  State &S = const_cast<State &>(SIn);
  for (const FoldedAut::FoldedRate &R :
       Folded[static_cast<size_t>(Aut)].LocRates[static_cast<size_t>(
           S.Locs[static_cast<size_t>(Aut)])]) {
    if (R.Clock != ClockIdx)
      continue;
    if (R.Value != DynamicBound)
      return R.Value != 0 ? 1 : 0;
    return evalSite(S, *R.Cond->Rate, R.Cond->RateCode, {}) != 0 ? 1 : 0;
  }
  return 1;
}

int64_t Exec::wakeTime(const State &SIn, int Aut) {
  State &S = const_cast<State &>(SIn);
  const sa::Automaton &A = *Net.Automata[static_cast<size_t>(Aut)];
  const sa::Location &L =
      A.Locations[static_cast<size_t>(S.Locs[static_cast<size_t>(Aut)])];

  int64_t Best = TimeInfinity;
  // Stopped clocks never reach a bound; the rate check is skipped entirely
  // for the common rate-free locations.
  bool HasRates =
      Folded[static_cast<size_t>(Aut)].LocHasRates[static_cast<size_t>(
          S.Locs[static_cast<size_t>(Aut)])] != 0;

  // Invariant expiry forces an action at the bound.
  for (size_t I = 0; I < L.Uppers.size(); ++I) {
    const sa::ClockUpper &U = L.Uppers[I];
    if (HasRates && rateOf(S, Aut, U.Clock) == 0)
      continue;
    int64_t Bound = upperBound(S, Aut, L, I);
    int64_t C = S.Clocks[static_cast<size_t>(U.Clock)];
    int64_t Rem = Bound - C - (U.Strict ? 1 : 0);
    if (Rem < 0)
      Rem = 0;
    Best = std::min(Best, S.Now + Rem);
  }

  // Clock guards becoming enabled.
  for (int EI : L.OutEdges) {
    const sa::Edge &E = A.Edges[static_cast<size_t>(EI)];
    for (size_t I = 0; I < E.ClockGuards.size(); ++I) {
      const sa::ClockGuard &CG = E.ClockGuards[I];
      if (HasRates && rateOf(S, Aut, CG.Clock) == 0)
        continue;
      int64_t Bound = guardBound(S, Aut, EI, I);
      int64_t C = S.Clocks[static_cast<size_t>(CG.Clock)];
      int64_t D = TimeInfinity;
      switch (CG.Op) {
      case usl::BinaryOp::Ge:
      case usl::BinaryOp::Eq:
        if (C < Bound)
          D = Bound - C;
        break;
      case usl::BinaryOp::Gt:
        if (C <= Bound)
          D = Bound - C + 1;
        break;
      default:
        break; // Upper-bound guards never become enabled by waiting.
      }
      if (D != TimeInfinity)
        Best = std::min(Best, S.Now + D);
    }
  }
  return Best;
}

void Exec::advanceTime(State &S, int64_t Delta) {
  assert(Delta >= 0 && "negative delay");
  S.Now += Delta;
  if (Delta == 0)
    return;
  // Advance everything, then roll back stopped clocks. Only automata
  // whose current location carries rate conditions are examined (the
  // folded LocHasRates table avoids touching the automaton IR at all for
  // the rate-free majority).
  for (int64_t &C : S.Clocks)
    C += Delta;
  for (size_t A = 0; A < Net.Automata.size(); ++A) {
    const std::vector<FoldedAut::FoldedRate> &Rates =
        Folded[A].LocRates[static_cast<size_t>(S.Locs[A])];
    for (const FoldedAut::FoldedRate &R : Rates) {
      int64_t V = R.Value;
      if (V == DynamicBound)
        V = evalSite(S, *R.Cond->Rate, R.Cond->RateCode, {});
      if (V == 0)
        S.Clocks[static_cast<size_t>(R.Clock)] -= Delta;
    }
  }
}

int Exec::countCommitted(const State &S) const {
  int N = 0;
  for (size_t A = 0; A < Net.Automata.size(); ++A)
    if (inCommitted(S, static_cast<int>(A)))
      ++N;
  return N;
}
