//===- nsa/State.h - NSA runtime state --------------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A state of a network of stopwatch automata: the location vector, the
/// clock valuation, the variable store, and the model time (the paper's
/// special never-stopped clock). Time and clocks are integer ticks; see
/// DESIGN.md for why integer time is exact for this model class.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_NSA_STATE_H
#define SWA_NSA_STATE_H

#include <cstdint>
#include <vector>

namespace swa {
namespace nsa {

struct State {
  int64_t Now = 0;
  std::vector<int32_t> Locs;
  std::vector<int64_t> Clocks;
  std::vector<int64_t> Store;

  bool operator==(const State &O) const {
    return Now == O.Now && Locs == O.Locs && Clocks == O.Clocks &&
           Store == O.Store;
  }
};

/// FNV-1a over the full state; used by the model checker's visited set
/// (with full-state equality as the fallback on collision).
struct StateHash {
  size_t operator()(const State &S) const {
    uint64_t H = 1469598103934665603ULL;
    auto Mix = [&H](uint64_t V) {
      H ^= V;
      H *= 1099511628211ULL;
    };
    Mix(static_cast<uint64_t>(S.Now));
    for (int32_t L : S.Locs)
      Mix(static_cast<uint64_t>(static_cast<uint32_t>(L)));
    for (int64_t C : S.Clocks)
      Mix(static_cast<uint64_t>(C));
    for (int64_t V : S.Store)
      Mix(static_cast<uint64_t>(V));
    return static_cast<size_t>(H);
  }
};

} // namespace nsa
} // namespace swa

#endif // SWA_NSA_STATE_H
