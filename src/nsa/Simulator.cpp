//===- nsa/Simulator.cpp - Deterministic NSA simulator ---------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "nsa/Simulator.h"

#include "obs/Metrics.h"
#include "obs/Timer.h"
#include "obs/TraceSink.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace swa;
using namespace swa::nsa;

RunChecker::~RunChecker() = default;
void RunChecker::onRunStart(const State &) {}
std::string RunChecker::onStep(const State &, const Step &,
                               const std::vector<int32_t> &) {
  return {};
}
std::string RunChecker::onDelay(int64_t, const State &) { return {}; }
std::string RunChecker::onRunEnd(const State &) { return {}; }

const char *swa::nsa::faultKindName(FaultPlan::Kind K) {
  switch (K) {
  case FaultPlan::Kind::FlipVariable:
    return "flip-variable";
  case FaultPlan::Kind::SkipSync:
    return "skip-sync";
  case FaultPlan::Kind::SkewClock:
    return "skew-clock";
  }
  return "<bad>";
}

Simulator::Simulator(const sa::Network &Net) : Net(Net), Ex(Net) {
  size_t N = Net.Automata.size();
  Enabled.resize(N);
  RecvContrib.resize(N);
  ReceiversByChan.resize(static_cast<size_t>(Net.NumChannelIds));
  Dirty.assign(N, 0);
  DirtyStack.reserve(N);
  Initiators.reset(N);
  Committed.reset(N);
  WakeHeap.reset(N);

  WatchersBySlot.resize(Net.InitialStore.size());
  for (size_t A = 0; A < N; ++A)
    for (int32_t Slot : Net.Automata[A]->StaticReads)
      if (Slot >= 0 && static_cast<size_t>(Slot) < WatchersBySlot.size())
        WatchersBySlot[static_cast<size_t>(Slot)].push_back(
            static_cast<int32_t>(A));
}

void Simulator::reset() {
  Ex.initState(S);
  for (std::vector<EnabledInst> &E : Enabled)
    E.clear();
  for (std::vector<int32_t> &RC : RecvContrib)
    RC.clear();
  for (SortedIdVec &R : ReceiversByChan)
    R.clear();
  Initiators.clear();
  Committed.clear();
  std::fill(Dirty.begin(), Dirty.end(), 0);
  DirtyStack.clear();
  WakeHeap.clear();
  WriteLog.clear();
  Stats = EngineStats();
  StepsPerAut.clear();
}

void Simulator::markDirty(int Aut) {
  if (Dirty[static_cast<size_t>(Aut)])
    return;
  Dirty[static_cast<size_t>(Aut)] = 1;
  DirtyStack.push_back(static_cast<int32_t>(Aut));
}

void Simulator::refreshAutomaton(int Aut) {
  size_t AI = static_cast<size_t>(Aut);
  ++Stats.Refreshes;

  Enabled[AI].clear();
  Ex.collectEnabled(S, Aut, Enabled[AI]);
  Stats.EnabledExamined += Enabled[AI].size();

  // Receive offers usually survive a refresh (a task keeps listening on
  // its dispatch channel while other automata move), so diff the sorted
  // old/new channel lists and touch ReceiversByChan only where membership
  // actually changed, instead of erase-all / reinsert-all.
  std::vector<int32_t> &NewContrib = RecvContribScratch;
  NewContrib.clear();
  bool IsInitiator = false;
  for (const EnabledInst &Inst : Enabled[AI]) {
    if (Inst.ChanId < 0 || Inst.IsSend)
      IsInitiator = true;
    else
      NewContrib.push_back(Inst.ChanId);
  }
  std::sort(NewContrib.begin(), NewContrib.end());
  NewContrib.erase(std::unique(NewContrib.begin(), NewContrib.end()),
                   NewContrib.end());

  std::vector<int32_t> &Old = RecvContrib[AI];
  if (Old != NewContrib) {
    size_t I = 0, J = 0;
    while (I < Old.size() || J < NewContrib.size()) {
      if (J == NewContrib.size() ||
          (I < Old.size() && Old[I] < NewContrib[J])) {
        ReceiversByChan[static_cast<size_t>(Old[I])].erase(
            static_cast<int32_t>(Aut));
        ++Stats.RecvErases;
        ++I;
      } else if (I == Old.size() || NewContrib[J] < Old[I]) {
        ReceiversByChan[static_cast<size_t>(NewContrib[J])].insert(
            static_cast<int32_t>(Aut));
        ++Stats.RecvInserts;
        ++J;
      } else {
        ++I;
        ++J;
      }
    }
    Old.swap(NewContrib);
  }

  if (IsInitiator)
    Initiators.insert(AI);
  else
    Initiators.erase(AI);

  if (Ex.inCommitted(S, Aut))
    Committed.insert(AI);
  else
    Committed.erase(AI);

  int64_t Wake = Ex.wakeTime(S, Aut);
  if (Wake < TimeInfinity) {
    if (WakeHeap.update(static_cast<int32_t>(Aut), Wake))
      ++Stats.HeapPushes;
  } else {
    WakeHeap.erase(static_cast<int32_t>(Aut));
  }
}

void Simulator::refreshDirty() {
  while (!DirtyStack.empty()) {
    int32_t A = DirtyStack.back();
    DirtyStack.pop_back();
    Dirty[static_cast<size_t>(A)] = 0;
    refreshAutomaton(A);
  }
}

bool Simulator::committedOk(const Step &St) const {
  if (Committed.empty())
    return true;
  if (Committed.test(static_cast<size_t>(St.InitiatorAut)))
    return true;
  for (const Step::Recv &R : St.Receivers)
    if (Committed.test(static_cast<size_t>(R.Aut)))
      return true;
  return false;
}

bool Simulator::attachReceivers(int Aut, const EnabledInst &Inst, Step &Out,
                                Rng *RandomRecv) {
  if (Inst.ChanId < 0)
    return true; // Internal step.
  assert(Inst.IsSend && "initiators must send");
  const SortedIdVec &Recvs =
      ReceiversByChan[static_cast<size_t>(Inst.ChanId)];

  auto FirstRecvInst = [&](int32_t R) -> const EnabledInst * {
    std::vector<const EnabledInst *> &Options = RecvOptionScratch;
    Options.clear();
    for (const EnabledInst &RI : Enabled[static_cast<size_t>(R)])
      if (RI.ChanId == Inst.ChanId && !RI.IsSend)
        Options.push_back(&RI);
    if (Options.empty())
      return nullptr;
    if (RandomRecv && Options.size() > 1)
      return Options[RandomRecv->index(Options.size())];
    return Options.front();
  };

  if (Inst.Broadcast) {
    for (int32_t R : Recvs) {
      if (R == Aut)
        continue;
      const EnabledInst *RI = FirstRecvInst(R);
      if (RI)
        Out.Receivers.push_back({R, *RI});
    }
    return true; // Broadcast never blocks.
  }

  // Binary: need exactly one partner.
  for (int32_t R : Recvs) {
    if (R == Aut)
      continue;
    const EnabledInst *RI = FirstRecvInst(R);
    if (!RI)
      continue;
    Out.Receivers.push_back({R, *RI});
    return true;
  }
  return false;
}

bool Simulator::buildStepFrom(int Aut, const EnabledInst &Inst, Step &Out,
                              Rng *RandomRecv) {
  Out.InitiatorAut = static_cast<int32_t>(Aut);
  Out.Initiator = Inst;
  Out.Receivers.clear();
  if (!attachReceivers(Aut, Inst, Out, RandomRecv))
    return false;
  return committedOk(Out);
}

bool Simulator::pickStepDeterministic(Step &Out) {
  for (int32_t A = Initiators.findFirst(); A >= 0;
       A = Initiators.findNext(A)) {
    for (const EnabledInst &Inst : Enabled[static_cast<size_t>(A)]) {
      if (Inst.ChanId >= 0 && !Inst.IsSend)
        continue;
      if (Inst.ChanId >= 0 && !Inst.Broadcast) {
        // Try every partner in order (a later partner may satisfy the
        // committed-participation rule when an earlier one does not).
        const SortedIdVec &Recvs =
            ReceiversByChan[static_cast<size_t>(Inst.ChanId)];
        for (int32_t R : Recvs) {
          if (R == A)
            continue;
          for (const EnabledInst &RI : Enabled[static_cast<size_t>(R)]) {
            if (RI.ChanId != Inst.ChanId || RI.IsSend)
              continue;
            Out.InitiatorAut = A;
            Out.Initiator = Inst;
            Out.Receivers.clear();
            Out.Receivers.push_back({R, RI});
            if (committedOk(Out))
              return true;
          }
        }
        continue;
      }
      if (buildStepFrom(A, Inst, Out, nullptr))
        return true;
    }
  }
  return false;
}

bool Simulator::pickStepRandom(Step &Out, Rng &R) {
  std::vector<Step> All;
  for (int32_t A = Initiators.findFirst(); A >= 0;
       A = Initiators.findNext(A)) {
    for (const EnabledInst &Inst : Enabled[static_cast<size_t>(A)]) {
      if (Inst.ChanId >= 0 && !Inst.IsSend)
        continue;
      if (Inst.ChanId >= 0 && !Inst.Broadcast) {
        const SortedIdVec &Recvs =
            ReceiversByChan[static_cast<size_t>(Inst.ChanId)];
        for (int32_t Partner : Recvs) {
          if (Partner == A)
            continue;
          for (const EnabledInst &RI :
               Enabled[static_cast<size_t>(Partner)]) {
            if (RI.ChanId != Inst.ChanId || RI.IsSend)
              continue;
            Step St;
            St.InitiatorAut = A;
            St.Initiator = Inst;
            St.Receivers.push_back({Partner, RI});
            if (committedOk(St))
              All.push_back(std::move(St));
          }
        }
        continue;
      }
      Step St;
      if (buildStepFrom(A, Inst, St, &R))
        All.push_back(std::move(St));
    }
  }
  if (All.empty())
    return false;
  Out = std::move(All[R.index(All.size())]);
  return true;
}

SimResult Simulator::run(const SimOptions &Options) {
  obs::ScopedTimer Timer("simulate");
  SimResult Res;
  reset();

  bool Metrics = Options.MetricsEnabled || obs::enabled();
  if (Metrics)
    StepsPerAut.assign(Net.Automata.size(), 0);

  // Slot-name table for variable-write events; built only when a sink is
  // attached (the hot path never touches it).
  obs::EventSink *Sink = Options.Sink;
  std::vector<std::string> SlotNames;
  if (Sink) {
    SlotNames.resize(Net.InitialStore.size());
    for (const sa::VarInfo &V : Net.Vars)
      for (int I = 0; I < V.Size; ++I)
        if (static_cast<size_t>(V.Base + I) < SlotNames.size())
          SlotNames[static_cast<size_t>(V.Base + I)] =
              V.Size == 1 ? V.Name : formatString("%s[%d]", V.Name.c_str(), I);
  }

  int64_t Horizon = Options.Horizon >= 0
                        ? Options.Horizon
                        : Net.metaOr("horizon", TimeInfinity);

  const bool WatchFail = Options.FailSlotBase >= 0 && Options.FailSlotCount > 0;

  // Last automaton that initiated an applied step (budget diagnostics).
  int32_t LastStepped = -1;

  // Guard rails: a wall-clock deadline and a cooperative cancel token,
  // polled every GuardInterval loop iterations (one action or one delay
  // each), so the unguarded hot path pays a single predictable branch.
  using Clock = std::chrono::steady_clock;
  const bool HasBudget = Options.WallClockBudgetMs >= 0;
  const bool Guarded = HasBudget || Options.Cancel != nullptr;
  Clock::time_point Deadline;
  if (HasBudget)
    Deadline =
        Clock::now() + std::chrono::milliseconds(Options.WallClockBudgetMs);
  constexpr uint64_t GuardInterval = 4096;
  uint64_t GuardTick = 0;

  // Differential-testing hooks: both default to null, so the production
  // hot path pays nothing but the (perfectly predicted) null tests.
  RunChecker *Checker = Options.Checker;
  FaultPlan *Fault = Options.Fault;
  if (Checker)
    Checker->onRunStart(S);
  auto CheckerTripped = [&](const std::string &Violation) {
    Res.Stop = StopReason::InvariantViolation;
    Res.Error = formatString(
        "trace invariant violated at t=%lld after %llu actions: %s",
        static_cast<long long>(S.Now),
        static_cast<unsigned long long>(Res.ActionCount),
        Violation.c_str());
  };

  for (size_t A = 0; A < Net.Automata.size(); ++A)
    markDirty(static_cast<int>(A));

  for (;;) {
    if (Guarded && (GuardTick++ % GuardInterval) == 0) {
      if (Options.Cancel && Options.Cancel->isCancelled()) {
        Res.Stop = StopReason::Cancelled;
        Res.Error = formatString(
            "run cancelled at t=%lld after %llu actions",
            static_cast<long long>(S.Now),
            static_cast<unsigned long long>(Res.ActionCount));
        break;
      }
      if (HasBudget && Clock::now() >= Deadline) {
        Res.Stop = StopReason::BudgetExceeded;
        Res.Error = formatString(
            "wall-clock budget of %lld ms exceeded at t=%lld after %llu "
            "actions",
            static_cast<long long>(Options.WallClockBudgetMs),
            static_cast<long long>(S.Now),
            static_cast<unsigned long long>(Res.ActionCount));
        break;
      }
    }

    refreshDirty();

    Step &St = StepScratch;
    bool Found = Options.RandomOrder
                     ? pickStepRandom(St, *Options.RandomOrder)
                     : pickStepDeterministic(St);
    if (Found) {
      if (++Res.ActionCount > Options.MaxActions) {
        const char *LastName =
            LastStepped >= 0
                ? Net.Automata[static_cast<size_t>(LastStepped)]->Name.c_str()
                : "<none>";
        Res.Stop = StopReason::MaxActions;
        Res.Error = formatString(
            "action budget of %llu exhausted at t=%lld (%llu actions "
            "applied, last automaton stepped: '%s'; livelock in the "
            "model?)",
            static_cast<unsigned long long>(Options.MaxActions),
            static_cast<long long>(S.Now),
            static_cast<unsigned long long>(Res.ActionCount - 1), LastName);
        break;
      }
      // Fault injection (checker self-test): a sync skip must corrupt the
      // step *before* it is applied; the state perturbations are injected
      // after the checker observed this step, so detection happens through
      // the invariants, not by the injector telling on itself.
      if (Fault && !Fault->Fired && Res.ActionCount == Fault->AtAction &&
          Fault->FaultKind == FaultPlan::Kind::SkipSync) {
        St.Receivers.clear();
        Fault->Fired = true;
      }
      WriteLog.clear();
      if (!Ex.applyStep(S, St, &WriteLog)) {
        Res.Stop = StopReason::ModelError;
        Res.Error = formatString(
            "invariant violated after a step initiated by '%s'",
            Net.Automata[static_cast<size_t>(St.InitiatorAut)]
                ->Name.c_str());
        break;
      }
      LastStepped = St.InitiatorAut;
      if (!StepsPerAut.empty())
        ++StepsPerAut[static_cast<size_t>(St.InitiatorAut)];
      if (Options.RecordTrace &&
          (St.Initiator.ChanId >= 0 || Options.RecordInternal)) {
        Event E;
        E.Time = S.Now;
        E.Channel = St.Initiator.ChanId;
        E.Initiator = {St.InitiatorAut, St.Initiator.Edge};
        E.Receivers.reserve(St.Receivers.size());
        for (const Step::Recv &R : St.Receivers)
          E.Receivers.push_back({R.Aut, R.Inst.Edge});
        Res.Events.push_back(std::move(E));
      }
      if (Sink) {
        emitActionToSink(*Sink, St, S.Now);
        for (int32_t Slot : WriteLog)
          Sink->onVarWrite(S.Now, SlotNames[static_cast<size_t>(Slot)], Slot,
                           S.Store[static_cast<size_t>(Slot)]);
      }
      if (Checker) {
        std::string V = Checker->onStep(S, St, WriteLog);
        if (!V.empty()) {
          CheckerTripped(V);
          break;
        }
      }
      if (WatchFail) {
        for (int32_t Slot : WriteLog) {
          int32_t Off = Slot - Options.FailSlotBase;
          if (Off < 0 || Off >= Options.FailSlotCount ||
              S.Store[static_cast<size_t>(Slot)] == 0)
            continue;
          if (Res.FirstMissTime < 0)
            Res.FirstMissTime = S.Now;
          if (S.Now == Res.FirstMissTime)
            Res.FirstMissSlots.push_back(Off);
        }
      }
      if (Fault && !Fault->Fired && Res.ActionCount >= Fault->AtAction) {
        // Deliberate out-of-band corruption: no write log entry, no dirty
        // marks — exactly what a memory fault would look like.
        size_t I = static_cast<size_t>(Fault->Index);
        if (Fault->FaultKind == FaultPlan::Kind::FlipVariable &&
            I < S.Store.size()) {
          S.Store[I] += Fault->Delta;
          Fault->Fired = true;
        } else if (Fault->FaultKind == FaultPlan::Kind::SkewClock &&
                   I < S.Clocks.size()) {
          S.Clocks[I] += Fault->Delta;
          Fault->Fired = true;
        }
      }
      markDirty(St.InitiatorAut);
      for (const Step::Recv &R : St.Receivers)
        markDirty(R.Aut);
      for (int32_t Slot : WriteLog)
        for (int32_t W : WatchersBySlot[static_cast<size_t>(Slot)])
          markDirty(W);
      continue;
    }

    // No action fireable.
    if (!Committed.empty()) {
      Res.Stop = StopReason::ModelError;
      Res.Error = "deadlock: a committed location cannot progress";
      break;
    }

    // The next wake time; every heap entry is live (re-arming re-keys in
    // place), so the top needs no staleness cleanup.
    int64_t Next = WakeHeap.empty() ? TimeInfinity : WakeHeap.top().Key;

    if (Next <= S.Now) {
      if (Next == S.Now) {
        // Name the automata whose bounds expired to ease model debugging.
        std::string Stuck;
        for (size_t A = 0; A < Net.Automata.size(); ++A) {
          if (!WakeHeap.contains(static_cast<int32_t>(A)) ||
              WakeHeap.keyOf(static_cast<int32_t>(A)) != Next)
            continue;
          const sa::Automaton &Aut = *Net.Automata[A];
          if (!Stuck.empty())
            Stuck += ", ";
          Stuck += Aut.Name + " at " +
                   Aut.Locations[static_cast<size_t>(S.Locs[A])].Name;
        }
        Res.Stop = StopReason::ModelError;
        Res.Error = formatString(
            "time-lock at t=%lld: an invariant bound expired with no "
            "enabled action (%s)",
            static_cast<long long>(S.Now), Stuck.c_str());
        break;
      }
      // Next == TimeInfinity handled below; Next < Now impossible.
    }
    // First-miss early exit: the miss instant is complete (no action
    // fireable, no bound expired at the current time), so every task that
    // fails at FirstMissTime has written its flag. Placed after the
    // deadlock and time-lock checks so broken models stop with the same
    // error a full run reports.
    if (Options.StopOnFirstMiss && Res.FirstMissTime >= 0) {
      Res.Stop = StopReason::DeadlineMiss;
      break;
    }
    // Actions at exactly the horizon still belong to the analyzed window
    // (a job with deadline == period fails precisely at the hyperperiod
    // boundary); only strictly later wakes end the run.
    if (Next >= TimeInfinity) {
      if (Horizon < TimeInfinity) {
        int64_t Prev = S.Now;
        Ex.advanceTime(S, Horizon - S.Now);
        if (Sink && S.Now != Prev)
          Sink->onDelay(Prev, S.Now);
        if (Checker && S.Now != Prev) {
          std::string V = Checker->onDelay(Prev, S);
          if (!V.empty()) {
            CheckerTripped(V);
            break;
          }
        }
        Res.HorizonReached = true;
      } else {
        Res.Quiescent = true;
      }
      break;
    }
    if (Next > Horizon) {
      int64_t Prev = S.Now;
      Ex.advanceTime(S, Horizon - S.Now);
      if (Sink && S.Now != Prev)
        Sink->onDelay(Prev, S.Now);
      if (Checker && S.Now != Prev) {
        std::string V = Checker->onDelay(Prev, S);
        if (!V.empty()) {
          CheckerTripped(V);
          break;
        }
      }
      Res.HorizonReached = true;
      break;
    }

    int64_t Prev = S.Now;
    Ex.advanceTime(S, Next - S.Now);
    ++Res.DelayCount;
    if (Sink)
      Sink->onDelay(Prev, S.Now);
    if (Checker) {
      std::string V = Checker->onDelay(Prev, S);
      if (!V.empty()) {
        CheckerTripped(V);
        break;
      }
    }
    // Wake every automaton whose deadline arrived.
    while (!WakeHeap.empty() && WakeHeap.top().Key <= Next) {
      int32_t A = WakeHeap.top().Id;
      WakeHeap.pop();
      ++Stats.HeapPops;
      markDirty(A);
    }
  }

  if (Checker && Res.Stop == StopReason::Completed) {
    std::string V = Checker->onRunEnd(S);
    if (!V.empty())
      CheckerTripped(V);
  }

  if (!Res.FirstMissSlots.empty()) {
    std::sort(Res.FirstMissSlots.begin(), Res.FirstMissSlots.end());
    Res.FirstMissSlots.erase(
        std::unique(Res.FirstMissSlots.begin(), Res.FirstMissSlots.end()),
        Res.FirstMissSlots.end());
  }
  Res.Final = S;
  if (Sink)
    Sink->onRunEnd(stopReasonName(Res.Stop), Res.Error);
  if (Metrics)
    publishMetrics(Res);
  return Res;
}

void Simulator::emitActionToSink(obs::EventSink &Sink, const Step &St,
                                 int64_t Time) const {
  obs::EventSink::Participant Init{
      St.InitiatorAut,
      Net.Automata[static_cast<size_t>(St.InitiatorAut)]->Name,
      St.Initiator.Edge};
  std::vector<obs::EventSink::Participant> Recvs;
  Recvs.reserve(St.Receivers.size());
  for (const Step::Recv &R : St.Receivers)
    Recvs.push_back({R.Aut, Net.Automata[static_cast<size_t>(R.Aut)]->Name,
                     R.Inst.Edge});
  std::string ChanName;
  if (St.Initiator.ChanId >= 0)
    ChanName = Net.channelIdName(St.Initiator.ChanId);
  Sink.onAction(Time, St.Initiator.ChanId, ChanName, Init, Recvs);
}

void Simulator::publishMetrics(const SimResult &Res) const {
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("nsa.steps.action").add(Res.ActionCount);
  Reg.counter("nsa.steps.delay").add(Res.DelayCount);
  Reg.counter("nsa.events.recorded").add(Res.Events.size());
  Reg.counter("nsa.refresh.automaton").add(Stats.Refreshes);
  Reg.counter("nsa.enabled.examined").add(Stats.EnabledExamined);
  Reg.counter("nsa.heap.pushes").add(Stats.HeapPushes);
  Reg.counter("nsa.heap.pops").add(Stats.HeapPops);
  Reg.counter("nsa.recvset.inserts").add(Stats.RecvInserts);
  Reg.counter("nsa.recvset.erases").add(Stats.RecvErases);
  Reg.counter("nsa.runs").add(1);
  obs::Histogram &PerAut = Reg.histogram("nsa.steps.per_automaton");
  for (uint64_t Steps : StepsPerAut)
    PerAut.record(Steps);
}

const char *swa::nsa::stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::Completed:
    return "completed";
  case StopReason::MaxActions:
    return "max-actions";
  case StopReason::Cancelled:
    return "cancelled";
  case StopReason::BudgetExceeded:
    return "budget-exceeded";
  case StopReason::ModelError:
    return "model-error";
  case StopReason::InvariantViolation:
    return "invariant-violation";
  case StopReason::DeadlineMiss:
    return "deadline-miss";
  }
  return "<bad>";
}

std::string SimResult::summary() const {
  if (!ok())
    return formatString("error: %s (stop=%s)", Error.c_str(),
                        stopReasonName(Stop));
  const char *Outcome = Stop == StopReason::DeadlineMiss ? "first miss"
                        : Quiescent                      ? "quiescent"
                        : HorizonReached                 ? "horizon reached"
                                                         : "stopped";
  return formatString(
      "%s at t=%lld: %llu actions, %llu delays, %zu sync events",
      Outcome, static_cast<long long>(Final.Now),
      static_cast<unsigned long long>(ActionCount),
      static_cast<unsigned long long>(DelayCount), Events.size());
}
