//===- nsa/Exec.h - Shared NSA execution semantics --------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exec implements the operational semantics of a bound network — the parts
/// shared by the deterministic simulator (nsa/Simulator.h) and the
/// exhaustive model checker (mc/ModelChecker.h):
///
///  * local edge-instance enabledness (data guard, clock guards, select
///    combinations, runtime channel indices);
///  * step construction (internal / binary rendezvous / broadcast) and
///    application (sender-then-receiver updates, clock resets, location
///    moves, post-state invariant checks);
///  * stopwatch-aware delay computation: the maximal delay permitted by
///    invariants and the earliest time any clock guard can become enabled.
///
/// Semantics follow UPPAAL conventions: committed locations suppress delay
/// and require a committed participant in every action; broadcast senders
/// never block; guards are evaluated in the pre-state.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_NSA_EXEC_H
#define SWA_NSA_EXEC_H

#include "nsa/Event.h"
#include "nsa/State.h"
#include "sa/Network.h"
#include "usl/Interp.h"

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace swa {
namespace nsa {

/// Sentinel for "no bound".
inline constexpr int64_t TimeInfinity =
    std::numeric_limits<int64_t>::max() / 4;

/// One locally enabled edge instance: an edge together with chosen select
/// values and its (runtime-evaluated) flat channel id.
struct EnabledInst {
  int32_t Edge = -1;
  int32_t ChanId = -1; ///< -1 for internal edges.
  bool IsSend = false;
  bool Broadcast = false;
  std::vector<int64_t> Selects;
};

/// A fully determined action step.
struct Step {
  EnabledInst Initiator; ///< Internal edge or the sender.
  int32_t InitiatorAut = -1;
  struct Recv {
    int32_t Aut = -1;
    EnabledInst Inst;
  };
  std::vector<Recv> Receivers;
};

class Exec {
public:
  explicit Exec(const sa::Network &Net);

  const sa::Network &network() const { return Net; }

  /// Initializes \p S to the network's initial state.
  void initState(State &S);

  /// Enumerates this automaton's locally enabled edge instances in
  /// deterministic order (edge index, then select values ascending).
  /// Partner availability is not considered.
  void collectEnabled(const State &S, int Aut,
                      std::vector<EnabledInst> &Out);

  /// True when the invariant of \p Aut's current location holds in \p S
  /// (data part and clock upper bounds).
  bool invariantHolds(const State &S, int Aut);

  /// Applies \p Step to \p S: runs updates (initiator first, then
  /// receivers in order), resets clocks, moves locations.
  ///
  /// \p WriteLog, when non-null, receives every written store slot.
  /// \returns false when a participant's target-location invariant is
  /// violated afterwards (the state is then inconsistent; callers that need
  /// to survive this must apply to a copy).
  bool applyStep(State &S, const Step &St,
                 std::vector<int32_t> *WriteLog = nullptr);

  /// Computes the wake deadline of \p Aut relative to absolute time: the
  /// minimum over (a) invariant upper-bound expiry of its current location
  /// and (b) earliest enabling time of any clock guard on its out-edges.
  /// Returns TimeInfinity when the automaton is time-independent.
  int64_t wakeTime(const State &S, int Aut);

  /// Advances time by \p Delta, honoring per-location stopwatch rates.
  void advanceTime(State &S, int64_t Delta);

  /// The rate (0 or 1) of clock \p ClockIdx for automaton \p Aut in its
  /// current location.
  int rateOf(const State &S, int Aut, int ClockIdx);

  /// Whether \p Aut currently occupies a committed location.
  bool inCommitted(const State &S, int Aut) const {
    return Net.Automata[static_cast<size_t>(Aut)]
        ->Locations[static_cast<size_t>(
            S.Locs[static_cast<size_t>(Aut)])]
        .Committed;
  }

  /// Number of automata currently in committed locations.
  int countCommitted(const State &S) const;

  /// Evaluates a bound data expression in \p S with an optional select
  /// frame (used by analysis layers to probe variables).
  int64_t evalIn(const State &S, const usl::Expr &E,
                 const std::vector<int64_t> &Frame = {});

private:
  int64_t evalExprIn(State &S, const usl::Expr &E,
                     const std::vector<int64_t> &Frame);
  /// Evaluates a site: runs compiled bytecode when available, else the
  /// tree interpreter.
  int64_t evalSite(State &S, const usl::Expr &E, const usl::Code &C,
                   const std::vector<int64_t> &Frame);
  bool clockGuardsHold(State &S, int Aut, int Edge);
  void runUpdate(State &S, const sa::Edge &E,
                 const std::vector<int64_t> &Selects,
                 std::vector<int32_t> *WriteLog);

  const sa::Network &Net;
  usl::EvalContext Ctx;
  /// Owner automaton of each clock; -1 for global clocks.
  std::vector<int32_t> ClockOwner;

  /// Sentinel in the folded-bound tables: the bound is a dynamic
  /// expression and must be evaluated.
  static constexpr int64_t DynamicBound =
      std::numeric_limits<int64_t>::min();

  /// Clock-bound expressions are overwhelmingly literals after template
  /// instantiation (periods, window edges); folding them at construction
  /// removes an interpreter/VM dispatch from every guard check and wake
  /// computation on the hot path.
  struct FoldedAut {
    /// [Loc][I]: folded Location::Uppers[I] bound, or DynamicBound.
    std::vector<std::vector<int64_t>> UpperBounds;
    /// [Edge][I]: folded Edge::ClockGuards[I] bound, or DynamicBound.
    std::vector<std::vector<int64_t>> GuardBounds;
    /// [Loc]: location has stopwatch rate conditions.
    std::vector<char> LocHasRates;
    /// One rate condition with its expression pre-folded. The model
    /// library's rates are almost all the literal 0 ("clock stopped
    /// here"), so delay steps mostly reduce to a subtraction per stopped
    /// clock with no expression evaluation at all.
    struct FoldedRate {
      int32_t Clock;
      int64_t Value;            ///< Folded rate, or DynamicBound.
      const sa::RateCond *Cond; ///< For dynamic evaluation.
    };
    /// [Loc]: the location's rate conditions, folded.
    std::vector<std::vector<FoldedRate>> LocRates;
  };
  std::vector<FoldedAut> Folded;

  /// Scratch select frame for collectEnabled (steady-state allocation-free).
  std::vector<int64_t> FrameScratch;

  int64_t upperBound(State &S, int Aut, const sa::Location &L, size_t I);
  int64_t guardBound(State &S, int Aut, int Edge, size_t I);
};

} // namespace nsa
} // namespace swa

#endif // SWA_NSA_EXEC_H
