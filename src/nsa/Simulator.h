//===- nsa/Simulator.h - Deterministic NSA simulator ------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-generating engine at the heart of the paper's approach: a
/// single run of the NSA is simulated and its synchronization trace
/// recorded. Because the model is proven trace-deterministic, *any* run
/// yields the schedulability-relevant trace; this simulator resolves all
/// nondeterminism by a fixed total order (or, in randomized mode, by a
/// seeded RNG — used by tests and the determinism benchmark to confirm the
/// trace-equivalence theorem empirically).
///
/// The engine is event-driven: automata are re-examined only when they
/// moved, when a shared variable they watch changed (slot watch lists built
/// from static read sets), or when model time reaches their next clock
/// bound (indexed min-heap of wake times). Work is therefore proportional
/// to the number of events, which is what makes 12500-job configurations
/// simulate in seconds (paper §4).
///
/// Hot data structures are dense and sized once at construction — bitsets
/// for the initiator/committed sets, sorted flat vectors for per-channel
/// receiver sets, an indexed heap for wake times — so the steady-state
/// loop is allocation-free and a Simulator can be reset() and re-run
/// without reconstructing anything (see DESIGN.md, "Engine data
/// structures").
///
//===----------------------------------------------------------------------===//

#ifndef SWA_NSA_SIMULATOR_H
#define SWA_NSA_SIMULATOR_H

#include "nsa/Exec.h"
#include "support/BitSet.h"
#include "support/CancelToken.h"
#include "support/IndexedHeap.h"
#include "support/Rng.h"

#include <memory>
#include <string>

namespace swa {
namespace obs {
class EventSink;
} // namespace obs

namespace nsa {

struct Step;

/// Online run-invariant observer (the differential-testing harness's
/// oracle-inside-the-engine, see src/difftest/). The simulator calls the
/// hooks after every applied action step and every delay; a hook returns
/// an empty string when the invariant holds, or a description of the
/// violation, which stops the run with StopReason::InvariantViolation.
///
/// Checkers are pure observers like obs::EventSink: the engine hands them
/// const references to what it already decided and never reads anything
/// back, so a clean checker cannot perturb the run (asserted by the
/// trace-identity test in tests/DiffTest.cpp).
class RunChecker {
public:
  virtual ~RunChecker();

  /// The run was reset to the network's initial state.
  virtual void onRunStart(const State &Initial);

  /// An action step was applied; \p Post is the post-state and \p Writes
  /// the store slots the step's updates wrote (possibly unchanged).
  virtual std::string onStep(const State &Post, const Step &St,
                             const std::vector<int32_t> &Writes);

  /// Model time advanced from \p From to Post.Now.
  virtual std::string onDelay(int64_t From, const State &Post);

  /// The run ended normally with \p Final as the final state (not called
  /// after an error or guard-rail stop — the state is then incomplete).
  virtual std::string onRunEnd(const State &Final);
};

/// A deliberate, one-shot perturbation of engine state, injected mid-run
/// to prove a RunChecker actually detects the corresponding corruption
/// class (a self-test of the oracle, not of the engine; see DESIGN.md,
/// "Differential testing & fault injection"). The injection bypasses the
/// engine's own bookkeeping on purpose: no dirty marks, no write log.
struct FaultPlan {
  enum class Kind {
    FlipVariable, ///< Add Delta to store slot Index after action AtAction.
    SkipSync,     ///< Drop the receivers of action AtAction before applying.
    SkewClock,    ///< Add Delta to clock Index after action AtAction.
  };
  Kind FaultKind = Kind::FlipVariable;
  /// 1-based count of the action step to perturb (or perturb after).
  uint64_t AtAction = 1;
  /// Store slot (FlipVariable) or clock index (SkewClock).
  int32_t Index = 0;
  /// Perturbation magnitude for FlipVariable / SkewClock.
  int64_t Delta = 1;
  /// Output: set once the fault was actually injected.
  bool Fired = false;
};

const char *faultKindName(FaultPlan::Kind K);

struct SimOptions {
  /// Stop time; -1 means use the network's "horizon" metadata (and run
  /// forever if that is absent).
  int64_t Horizon = -1;
  /// Safety valve on the number of action transitions.
  uint64_t MaxActions = 100000000ULL;
  /// Materialize the synchronization trace in SimResult::Events. Callers
  /// that only need the verdict/final state (e.g. the config-search inner
  /// loop) turn this off to skip the per-event allocations entirely.
  bool RecordTrace = true;
  /// Record internal (unsynchronized) transitions in the trace.
  bool RecordInternal = false;
  /// When non-null, fireable steps are chosen uniformly at random instead
  /// of by the deterministic order (trace-equivalence testing).
  Rng *RandomOrder = nullptr;
  /// Publish engine counters (examined instances, dirty refreshes, heap
  /// traffic, receiver-set churn, per-automaton step counts) into
  /// obs::Registry::global() after the run. Also implied by the
  /// process-wide obs::enabled() switch.
  bool MetricsEnabled = false;
  /// When non-null, every applied step is streamed to this sink as
  /// structured action / delay / variable-write events. Sinks are pure
  /// observers; attaching one never changes the run (see DESIGN.md,
  /// "Observability").
  obs::EventSink *Sink = nullptr;
  /// Wall-clock budget for the whole run, in milliseconds; negative means
  /// unlimited (the default). 0 expires at the first guard check, i.e.
  /// before any step — deterministic, which the budget tests exploit. The
  /// deadline is polled every few thousand loop iterations, so an expired
  /// run stops with StopReason::BudgetExceeded shortly after the budget
  /// elapses; the guard never perturbs which steps fire before that.
  int64_t WallClockBudgetMs = -1;
  /// Cooperative cancellation: when non-null the main loop polls the token
  /// periodically and stops with StopReason::Cancelled once it fires.
  const CancelToken *Cancel = nullptr;
  /// Online invariant checker (differential-testing harness). Null — the
  /// default — keeps the hot path free of the checking branches, so traces
  /// are byte-identical to a build without the harness.
  RunChecker *Checker = nullptr;
  /// One-shot deliberate state corruption (checker self-test). Null means
  /// no fault is injected.
  FaultPlan *Fault = nullptr;
  /// First-miss watch: when FailSlotBase >= 0, every applied step's write
  /// log is scanned for stores into the contiguous slot range
  /// [FailSlotBase, FailSlotBase + FailSlotCount). The first instant at
  /// which a watched slot holds a nonzero value is recorded in
  /// SimResult::FirstMissTime, and every watched slot written nonzero at
  /// that instant lands in SimResult::FirstMissSlots (as offsets from
  /// FailSlotBase). The builder lays out `is_failed[gid]` contiguously, so
  /// offsets are global task ids.
  int32_t FailSlotBase = -1;
  int32_t FailSlotCount = 0;
  /// Online first-miss early exit (the search fast path): once the first
  /// miss instant has been fully processed — i.e. no further action fires
  /// at that model time, so *every* task that misses at the first-miss
  /// instant has been recorded — the run stops with
  /// StopReason::DeadlineMiss instead of simulating to the horizon.
  /// Requires the fail-slot watch above; a truncated run is still a valid
  /// prefix of the deterministic trace.
  bool StopOnFirstMiss = false;
};

/// Why a run ended, one level more structured than the ok()/Error split:
/// guard-rail stops (Cancelled/BudgetExceeded) mean "no verdict, through
/// no fault of the model" and are distinct from model errors and from the
/// action-budget livelock valve.
enum class StopReason {
  Completed,      ///< Quiescent or horizon reached: the trace is complete.
  MaxActions,     ///< SimOptions::MaxActions exhausted (livelock suspicion).
  Cancelled,      ///< SimOptions::Cancel fired.
  BudgetExceeded, ///< SimOptions::WallClockBudgetMs elapsed.
  ModelError,     ///< Deadlock, time-lock or invariant violation.
  /// SimOptions::Checker reported a trace-invariant violation. Distinct
  /// from ModelError so the differential harness can tell "the engine's
  /// own guards tripped" from "the independent oracle caught it".
  InvariantViolation,
  /// SimOptions::StopOnFirstMiss fired: a watched fail slot went nonzero
  /// and the miss instant completed. Unlike the other non-Completed stops
  /// this is a *successful* early verdict, not an error — SimResult::Error
  /// stays empty and ok() stays true; the trace is a faithful prefix of
  /// the full run truncated at the first-miss instant.
  DeadlineMiss,
};

/// Number of StopReason values — sized for taxonomy arrays (run reports,
/// per-reason counters). Keep in step with the enum above.
constexpr int NumStopReasons = static_cast<int>(StopReason::DeadlineMiss) + 1;

/// Short stable name for a StopReason ("completed", "budget-exceeded", ...).
const char *stopReasonName(StopReason R);

struct SimResult {
  Trace Events;
  State Final;
  uint64_t ActionCount = 0;
  uint64_t DelayCount = 0;
  bool HorizonReached = false;
  /// The network became quiescent (no action possible, no pending clock
  /// bound) before the horizon.
  bool Quiescent = false;
  /// How the run ended. Anything but Completed or DeadlineMiss also sets
  /// Error, so ok() callers keep treating guard-rail stops as "no usable
  /// trace"; DeadlineMiss is a successful early verdict and leaves Error
  /// empty.
  StopReason Stop = StopReason::Completed;
  /// Nonempty on a model error (committed deadlock, time-lock, invariant
  /// violation, action budget exhausted) and on guard-rail stops.
  std::string Error;
  /// First instant at which a watched fail slot (SimOptions::FailSlotBase)
  /// was written nonzero; -1 when none was, or when the watch is off.
  int64_t FirstMissTime = -1;
  /// Watched slots written nonzero at FirstMissTime, as offsets from
  /// FailSlotBase (= global task ids for builder-produced models), sorted
  /// ascending and deduplicated. Identical for a full run and a
  /// StopOnFirstMiss run over the same network.
  std::vector<int32_t> FirstMissSlots;

  bool ok() const { return Error.empty(); }

  /// One-line human-readable outcome: how the run ended (quiescent /
  /// horizon / error), the final model time, and the action/delay/event
  /// totals. Used by the examples and the profiler.
  std::string summary() const;
};

class Simulator {
public:
  explicit Simulator(const sa::Network &Net);

  /// Runs from the initial state to the horizon. Restartable: each call
  /// first reset()s, so one Simulator (and its allocations) can be reused
  /// for repeated runs over the same network.
  SimResult run(const SimOptions &Options = {});

  /// Returns the simulator to the network's initial state, keeping every
  /// allocation (enabled lists, receiver sets, heap, scratch buffers).
  /// run() calls this itself; it is public so callers can drop transient
  /// state eagerly between runs.
  void reset();

private:
  void markDirty(int Aut);
  void refreshAutomaton(int Aut);
  void refreshDirty();
  bool committedOk(const Step &St) const;
  bool pickStepDeterministic(Step &Out);
  bool pickStepRandom(Step &Out, Rng &R);
  bool buildStepFrom(int Aut, const EnabledInst &Inst, Step &Out,
                     Rng *RandomRecv);
  /// Fills receivers; returns false when a binary send has no partner.
  bool attachReceivers(int Aut, const EnabledInst &Inst, Step &Out,
                       Rng *RandomRecv);

  const sa::Network &Net;
  Exec Ex;
  State S;

  std::vector<std::vector<EnabledInst>> Enabled;
  /// Automata currently offering a receive on each channel id. Tiny sorted
  /// vectors (ascending ids — the deterministic partner order).
  std::vector<SortedIdVec> ReceiversByChan;
  /// Channels each automaton currently contributes receives to, sorted
  /// ascending (diffed against the fresh offer list on refresh).
  std::vector<std::vector<int32_t>> RecvContrib;
  /// Scratch for the fresh offer list built during refreshAutomaton.
  std::vector<int32_t> RecvContribScratch;
  /// Automata that currently have an internal or send instance enabled.
  DenseBitSet Initiators;
  DenseBitSet Committed;

  std::vector<std::vector<int32_t>> WatchersBySlot;
  std::vector<char> Dirty;
  std::vector<int32_t> DirtyStack;

  /// Wake deadlines: one live heap entry per time-bounded automaton;
  /// re-arming a timer re-keys the entry in place instead of pushing a
  /// stale duplicate.
  IndexedMinHeap WakeHeap;

  std::vector<int32_t> WriteLog;

  /// Per-step scratch reused across the whole run (steady state is
  /// allocation-free).
  Step StepScratch;
  std::vector<const EnabledInst *> RecvOptionScratch;

  /// Engine statistics for the observability layer. Plain local integers
  /// bumped unconditionally (the adds are noise next to the work they
  /// count); published to obs::Registry only when metrics are enabled.
  struct EngineStats {
    uint64_t Refreshes = 0;       ///< Dirty-automaton re-examinations.
    uint64_t EnabledExamined = 0; ///< Edge instances collected.
    uint64_t HeapPushes = 0;      ///< New heap entries (re-keys excluded).
    uint64_t HeapPops = 0;
    uint64_t RecvInserts = 0; ///< Receiver-set churn (inserts).
    uint64_t RecvErases = 0;  ///< Receiver-set churn (erases).
  };
  EngineStats Stats;
  /// Action steps initiated per automaton; sized only when metrics are on.
  std::vector<uint64_t> StepsPerAut;

  void publishMetrics(const SimResult &Res) const;
  void emitActionToSink(obs::EventSink &Sink, const Step &St,
                        int64_t Time) const;
};

} // namespace nsa
} // namespace swa

#endif // SWA_NSA_SIMULATOR_H
