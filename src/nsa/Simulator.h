//===- nsa/Simulator.h - Deterministic NSA simulator ------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-generating engine at the heart of the paper's approach: a
/// single run of the NSA is simulated and its synchronization trace
/// recorded. Because the model is proven trace-deterministic, *any* run
/// yields the schedulability-relevant trace; this simulator resolves all
/// nondeterminism by a fixed total order (or, in randomized mode, by a
/// seeded RNG — used by tests and the determinism benchmark to confirm the
/// trace-equivalence theorem empirically).
///
/// The engine is event-driven: automata are re-examined only when they
/// moved, when a shared variable they watch changed (slot watch lists built
/// from static read sets), or when model time reaches their next clock
/// bound (min-heap of wake times). Work is therefore proportional to the
/// number of events, which is what makes 12500-job configurations simulate
/// in seconds (paper §4).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_NSA_SIMULATOR_H
#define SWA_NSA_SIMULATOR_H

#include "nsa/Exec.h"
#include "support/Rng.h"

#include <memory>
#include <queue>
#include <set>
#include <string>

namespace swa {
namespace nsa {

struct SimOptions {
  /// Stop time; -1 means use the network's "horizon" metadata (and run
  /// forever if that is absent).
  int64_t Horizon = -1;
  /// Safety valve on the number of action transitions.
  uint64_t MaxActions = 100000000ULL;
  /// Record internal (unsynchronized) transitions in the trace.
  bool RecordInternal = false;
  /// When non-null, fireable steps are chosen uniformly at random instead
  /// of by the deterministic order (trace-equivalence testing).
  Rng *RandomOrder = nullptr;
};

struct SimResult {
  Trace Events;
  State Final;
  uint64_t ActionCount = 0;
  uint64_t DelayCount = 0;
  bool HorizonReached = false;
  /// The network became quiescent (no action possible, no pending clock
  /// bound) before the horizon.
  bool Quiescent = false;
  /// Nonempty on a model error (committed deadlock, time-lock, invariant
  /// violation, action budget exhausted).
  std::string Error;

  bool ok() const { return Error.empty(); }
};

class Simulator {
public:
  explicit Simulator(const sa::Network &Net);

  /// Runs from the initial state to the horizon.
  SimResult run(const SimOptions &Options = {});

private:
  struct Cand {
    int32_t Aut;
    EnabledInst Inst;
  };

  void markDirty(int Aut);
  void refreshAutomaton(int Aut);
  void refreshDirty();
  bool committedOk(const Step &St) const;
  bool pickStepDeterministic(Step &Out);
  bool pickStepRandom(Step &Out, Rng &R);
  bool buildStepFrom(int Aut, const EnabledInst &Inst, Step &Out,
                     Rng *RandomRecv);
  /// Fills receivers; returns false when a binary send has no partner.
  bool attachReceivers(int Aut, const EnabledInst &Inst, Step &Out,
                       Rng *RandomRecv);

  const sa::Network &Net;
  Exec Ex;
  State S;

  std::vector<std::vector<EnabledInst>> Enabled;
  /// Automata currently offering a receive on each channel id.
  std::vector<std::set<int32_t>> ReceiversByChan;
  /// Channels each automaton currently contributes receives to (undo list).
  std::vector<std::vector<int32_t>> RecvContrib;
  /// Automata that currently have an internal or send instance enabled.
  std::set<int32_t> Initiators;
  std::set<int32_t> Committed;

  std::vector<std::vector<int32_t>> WatchersBySlot;
  std::vector<char> Dirty;
  std::vector<int32_t> DirtyStack;

  std::vector<int64_t> CurrentWake;
  std::priority_queue<std::pair<int64_t, int32_t>,
                      std::vector<std::pair<int64_t, int32_t>>,
                      std::greater<>>
      WakeHeap;

  std::vector<int32_t> WriteLog;
};

} // namespace nsa
} // namespace swa

#endif // SWA_NSA_SIMULATOR_H
