//===- verify/Observers.h - Observer-based component verification -*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observer-based verification of the component automata library, §3 of
/// the paper: each correctness requirement derived from the ARINC-653
/// specification becomes an observer with a "bad" condition; the component
/// under test is composed with a *nondeterministic driver environment*
/// (every parameter/timing choice is explored) and the model checker
/// proves the bad condition unreachable.
///
/// Environments are paced by a broadcast `tick` automaton: at every
/// integer instant each driver nondeterministically chooses its actions
/// (release a job, execute, preempt, complete, deliver data, open or close
/// a window), so the model checker sweeps all event patterns up to the
/// harness horizon. Observers use the formalism's own stopwatches: e.g.
/// the WCET-accounting observer runs a clock at rate `drv_running` and
/// compares it with the task's WCET at completion — exact, with no
/// sampling races.
///
/// Requirements covered (ids match DESIGN.md §8):
///   R1  at most one job of a partition executes at any time;
///   R2  a completing job has accumulated exactly its WCET;
///   R3  data is sent only after completion;
///   R4  a link delivers exactly at its worst-case delay;
///   R5  a job is not ready before all its input data arrived;
///   R6  jobs execute only while their partition's window is open;
///   R7  no job executes after its deadline;
///   R8  (checked as a simulation property test) wakeup/sleep alternate
///       exactly at the configured window boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_VERIFY_OBSERVERS_H
#define SWA_VERIFY_OBSERVERS_H

#include "config/Config.h"
#include "mc/ModelChecker.h"

#include <string>
#include <vector>

namespace swa {
namespace verify {

/// Result of one observer verification run.
struct HarnessRun {
  /// True when the bad condition is unreachable.
  bool Holds = false;
  mc::McResult Mc;
};

/// R1: the task scheduler never lets two jobs execute simultaneously.
Result<HarnessRun> verifyTsSingleExecution(cfg::SchedulerKind Kind,
                                           int Ticks);

/// R6: the task scheduler never lets a job execute while asleep.
Result<HarnessRun> verifyTsWindowConfinement(cfg::SchedulerKind Kind,
                                             int Ticks);

/// R2: a completing (non-failed) job accumulated exactly \p Wcet.
Result<HarnessRun> verifyTaskWcet(int64_t Wcet, int64_t Deadline,
                                  int Ticks);

/// R7: the task never executes past its deadline.
Result<HarnessRun> verifyTaskNoLateExecution(int64_t Wcet,
                                             int64_t Deadline, int Ticks);

/// R3: the task broadcasts its output only after completion.
Result<HarnessRun> verifyTaskSendsAfterCompletion(int64_t Wcet,
                                                  int64_t Deadline,
                                                  int Ticks);

/// R5: a task with an input link is never ready before delivery.
Result<HarnessRun> verifyTaskWaitsForData(int64_t Wcet, int64_t Deadline,
                                          int Ticks);

/// R4: the virtual link delivers exactly \p Delay after a send.
Result<HarnessRun> verifyLinkExactDelay(int64_t Delay, int Ticks);

/// Negative control: R1 run against a deliberately broken FPPS scheduler
/// that dispatches without preempting. Expect Holds == false.
Result<HarnessRun> verifyBrokenTsIsCaught(int Ticks);

/// One verified requirement for reporting.
struct VerificationOutcome {
  std::string Id;
  std::string Description;
  bool Holds = false;
  uint64_t States = 0;
  uint64_t Transitions = 0;
};

/// Runs the full observer suite over the component library (all scheduler
/// kinds, a spread of WCET/deadline/delay parameters).
Result<std::vector<VerificationOutcome>> verifyComponentLibrary(int Ticks);

} // namespace verify
} // namespace swa

#endif // SWA_VERIFY_OBSERVERS_H
