//===- verify/Observers.cpp - Observer-based component verification ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "verify/Observers.h"

#include "models/ModelLibrary.h"
#include "sa/NetworkBuilder.h"
#include "support/StringUtils.h"

using namespace swa;
using namespace swa::verify;
using sa::TemplateBuilder;

namespace {

/// Extra shared state used by the harness drivers and observers.
const char *harnessDecls() {
  return "int t_now = 0;\n"
         "int drv_running = 0;\n"
         "int fin_pulse = 0;\n"
         "int inflight = 0;\n"
         "int running[4];\n"
         "int awake[4];\n"
         "broadcast chan tick;\n";
}

/// Duration observer for R6: its clock accumulates while some job runs
/// with the partition window closed. Zero-duration transients inside one
/// instant (the scheduler needs a step to preempt after `sleep`) are
/// legitimate and accumulate nothing.
Result<std::unique_ptr<sa::Template>>
buildWindowObserver(const usl::Declarations &Globals) {
  TemplateBuilder TB("WindowObserver", Globals);
  TB.decls("clock v;");
  TB.location("Watch",
              "v' == ((running[0] + running[1] >= 1 && awake[0] == 0) "
              "? 1 : 0)")
      .initial("Watch");
  return TB.build();
}

/// The pacing automaton: a broadcast tick at every integer instant up to
/// the horizon; t_now is incremented by the sender before receivers act.
Result<std::unique_ptr<sa::Template>>
buildTicker(const usl::Declarations &Globals) {
  TemplateBuilder TB("Ticker", Globals);
  TB.params("int hticks");
  TB.decls("clock c;");
  TB.location("Run", "c <= 1").location("Done").initial("Run");
  TB.edge("Run", "Run",
          {.Guard = "t_now < hticks && c >= 1", .Sync = "tick!",
           .Update = "t_now = t_now + 1, c = 0"});
  TB.edge("Run", "Done", {.Guard = "t_now >= hticks && c >= 1"});
  return TB.build();
}

/// Task-side driver for scheduler harnesses: becomes ready, completes or
/// deadline-fails at nondeterministic ticks; mirrors exec/preempt into
/// running[g].
Result<std::unique_ptr<sa::Template>>
buildSchedDriverTask(const usl::Declarations &Globals) {
  TemplateBuilder TB("DriverTask", Globals);
  TB.params("int g, int p, int myprio");
  TB.location("Out")
      .committed("OutChoose")
      .location("Ready")
      .committed("ReadyChoose")
      .location("Running")
      .committed("RunChoose")
      .initial("Out");

  TB.edge("Out", "OutChoose", {.Sync = "tick?"});
  TB.edge("OutChoose", "Out", {});
  TB.edge("OutChoose", "Ready",
          {.Sync = "ready[p]!",
           .Update = "is_ready[g] = 1, prio[g] = myprio, "
                     "deadline_abs[g] = t_now + 50"});

  TB.edge("Ready", "Running", {.Sync = "exec[g]?",
                               .Update = "running[g] = 1"});
  TB.edge("Ready", "ReadyChoose", {.Sync = "tick?"});
  TB.edge("ReadyChoose", "Ready", {});
  // Deadline miss announced from the ready queue.
  TB.edge("ReadyChoose", "Out",
          {.Sync = "finished[p]!", .Update = "is_ready[g] = 0"});

  TB.edge("Running", "Ready", {.Sync = "preempt[g]?",
                               .Update = "running[g] = 0"});
  TB.edge("Running", "RunChoose", {.Sync = "tick?"});
  TB.edge("RunChoose", "Running", {});
  TB.edge("RunChoose", "Out",
          {.Sync = "finished[p]!",
           .Update = "running[g] = 0, is_ready[g] = 0"});
  return TB.build();
}

/// Core-scheduler-side driver: opens/closes the window nondeterministically.
Result<std::unique_ptr<sa::Template>>
buildWindowDriver(const usl::Declarations &Globals) {
  TemplateBuilder TB("DriverWindow", Globals);
  TB.params("int p");
  TB.location("Closed")
      .committed("CChoose")
      .location("Open")
      .committed("OChoose")
      .initial("Closed");
  TB.edge("Closed", "CChoose", {.Sync = "tick?"});
  TB.edge("CChoose", "Closed", {});
  TB.edge("CChoose", "Open",
          {.Sync = "wakeup[p]!", .Update = "awake[p] = 1"});
  TB.edge("Open", "OChoose", {.Sync = "tick?"});
  TB.edge("OChoose", "Open", {});
  TB.edge("OChoose", "Closed",
          {.Sync = "sleep[p]!", .Update = "awake[p] = 0"});
  return TB.build();
}

/// Scheduler-side driver for task harnesses: at each tick, dispatch or
/// preempt the single task nondeterministically.
Result<std::unique_ptr<sa::Template>>
buildTaskDriverSched(const usl::Declarations &Globals) {
  TemplateBuilder TB("DriverSched", Globals);
  TB.params("int g, int p");
  TB.location("Idle").committed("Choose").initial("Idle");
  TB.edge("Idle", "Idle", {.Sync = "ready[p]?"});
  TB.edge("Idle", "Idle",
          {.Sync = "finished[p]?",
           .Update = "drv_running = 0, fin_pulse = fin_pulse + 1"});
  TB.edge("Idle", "Choose", {.Sync = "tick?"});
  TB.edge("Choose", "Idle", {});
  TB.edge("Choose", "Idle",
          {.Guard = "is_ready[g] == 1 && drv_running == 0",
           .Sync = "exec[g]!", .Update = "drv_running = 1"});
  TB.edge("Choose", "Idle",
          {.Guard = "drv_running == 1", .Sync = "preempt[g]!",
           .Update = "drv_running = 0"});
  // Stay receptive mid-choice: the task may complete at this instant.
  TB.edge("Choose", "Choose", {.Sync = "ready[p]?"});
  TB.edge("Choose", "Choose",
          {.Sync = "finished[p]?",
           .Update = "drv_running = 0, fin_pulse = fin_pulse + 1"});
  return TB.build();
}

/// Input-data driver: delivers the single message at a nondeterministic
/// tick (stands in for the virtual link when testing the task alone).
Result<std::unique_ptr<sa::Template>>
buildDataDriver(const usl::Declarations &Globals) {
  TemplateBuilder TB("DriverData", Globals);
  TB.location("Pending").committed("Choose").location("Sent").initial(
      "Pending");
  TB.edge("Pending", "Choose", {.Sync = "tick?"});
  TB.edge("Choose", "Pending", {});
  TB.edge("Choose", "Sent", {.Update = "is_data_ready[0] = 1"});
  return TB.build();
}

/// Stopwatch observer for the task harness: clock x accumulates at rate
/// drv_running (execution time), clock late accumulates while the task
/// runs past its deadline. Enters Bad when a completed job's execution
/// total differs from its WCET or when a second completion appears.
Result<std::unique_ptr<sa::Template>>
buildTaskObserver(const usl::Declarations &Globals) {
  TemplateBuilder TB("TaskObserver", Globals);
  TB.params("int g, int wcet, int deadline");
  TB.decls("clock x; clock late;");
  TB.location("Watch",
              "x' == drv_running && "
              "late' == ((t_now >= deadline && drv_running == 1) ? 1 : 0)")
      .location("Bad")
      .initial("Watch");
  TB.edge("Watch", "Bad",
          {.Guard = "fin_pulse >= 1 && is_failed[g] == 0 && "
                    "x <= wcet - 1"});
  TB.edge("Watch", "Bad",
          {.Guard = "fin_pulse >= 1 && is_failed[g] == 0 && "
                    "x >= wcet + 1"});
  TB.edge("Watch", "Bad", {.Guard = "fin_pulse >= 2"});
  // R3: output broadcast while the job is still marked ready.
  TB.edge("Watch", "Bad", {.Guard = "is_ready[g] == 1",
                           .Sync = "send[g]?"});
  return TB.build();
}

/// Delay observer for the virtual-link harness: times the head-of-queue
/// transfer with its own clock.
Result<std::unique_ptr<sa::Template>>
buildLinkObserver(const usl::Declarations &Globals) {
  TemplateBuilder TB("LinkObserver", Globals);
  TB.params("int src, int link, int delay");
  TB.decls("clock x;");
  TB.location("Idle")
      .location("Timing")
      .location("Bad")
      .initial("Idle");
  TB.edge("Idle", "Timing", {.Sync = "send[src]?", .Update = "x = 0"});
  TB.edge("Timing", "Timing", {.Sync = "send[src]?"});
  TB.edge("Timing", "Bad",
          {.Guard = "x <= delay - 1", .Sync = "deliver[link]?",
           .Update = "inflight = 0"});
  TB.edge("Timing", "Bad",
          {.Guard = "x >= delay + 1", .Sync = "deliver[link]?",
           .Update = "inflight = 0"});
  TB.edge("Timing", "Idle",
          {.Guard = "x >= delay && x <= delay",
           .Sync = "deliver[link]?", .Update = "inflight = 0"});
  return TB.build();
}

/// A deliberately broken FPPS scheduler: dispatches the best ready job
/// without preempting the current one first (violates R1).
Result<std::unique_ptr<sa::Template>>
buildBrokenFpps(const usl::Declarations &Globals) {
  TemplateBuilder TB("BrokenFpps", Globals);
  TB.params("int part, int off, int nt");
  TB.decls("int pick() {\n"
           "  int best = -1; int bp = 0;\n"
           "  for (int i = 0; i < nt; i++) {\n"
           "    int g = off + i;\n"
           "    if (is_ready[g] == 1 && running[g] == 0) {\n"
           "      if (best == -1 || prio[g] > bp) { best = g; "
           "bp = prio[g]; }\n"
           "    }\n"
           "  }\n"
           "  return best;\n"
           "}\n");
  TB.location("Asleep")
      .location("Awake")
      .committed("Decide")
      .initial("Asleep");
  TB.edge("Asleep", "Decide", {.Sync = "wakeup[part]?"});
  TB.edge("Asleep", "Asleep", {.Sync = "ready[part]?"});
  TB.edge("Asleep", "Asleep", {.Sync = "finished[part]?"});
  TB.edge("Awake", "Decide", {.Sync = "ready[part]?"});
  TB.edge("Awake", "Decide", {.Sync = "finished[part]?"});
  TB.edge("Awake", "Asleep", {.Sync = "sleep[part]?"});
  TB.edge("Decide", "Decide", {.Sync = "ready[part]?"});
  TB.edge("Decide", "Decide", {.Sync = "finished[part]?"});
  TB.edge("Decide", "Awake", {.Guard = "pick() == -1"});
  // BUG: dispatches without preempting whatever is already running.
  TB.edge("Decide", "Awake",
          {.Guard = "pick() != -1", .Sync = "exec[pick()]!"});
  TB.readRange("is_ready", "off", "nt");
  TB.readRange("prio", "off", "nt");
  TB.readRange("running", "off", "nt");
  return TB.build();
}

/// Common plumbing: globals + library against them.
struct HarnessContext {
  sa::NetworkBuilder NB;
  std::unique_ptr<models::ModelLibrary> Lib;
};

Result<std::unique_ptr<HarnessContext>> makeContext(int NT, int NP,
                                                    int NL) {
  auto Ctx = std::make_unique<HarnessContext>();
  if (Error E = Ctx->NB.addGlobals(models::globalDeclsSource(NT, NP, NL)))
    return E;
  if (Error E = Ctx->NB.addGlobals(harnessDecls()))
    return E;
  Result<std::unique_ptr<models::ModelLibrary>> Lib =
      models::ModelLibrary::create(Ctx->NB.globalDecls());
  if (!Lib.ok())
    return Lib.takeError();
  Ctx->Lib = Lib.takeValue();
  return Ctx;
}

Result<HarnessRun> runHarness(std::unique_ptr<sa::Network> Net,
                              int64_t Horizon,
                              const mc::ModelChecker::StatePredicate &Bad) {
  Net->Meta["horizon"] = Horizon;
  mc::ModelChecker MC(*Net);
  mc::McOptions Opts;
  Opts.MaxStates = 10000000;
  Opts.RecordWitness = true; // Violations come with a counterexample.
  HarnessRun Run;
  Run.Mc = MC.explore(Opts, Bad);
  if (!Run.Mc.ok())
    return Error::failure("model checking failed: " + Run.Mc.Error);
  Run.Holds = !Run.Mc.PropertyViolated;
  return Run;
}

/// Builds the scheduler harness (real or broken TS + 2 driver tasks +
/// window driver + ticker) and explores it with \p Bad.
Result<HarnessRun>
runSchedulerHarness(const sa::Template *TsOverride,
                    cfg::SchedulerKind Kind, int Ticks,
                    const char *BadExprKind) {
  Result<std::unique_ptr<HarnessContext>> Ctx = makeContext(2, 1, 0);
  if (!Ctx.ok())
    return Ctx.takeError();
  sa::NetworkBuilder &NB = (*Ctx)->NB;

  const sa::Template &TS =
      TsOverride ? *TsOverride : (*Ctx)->Lib->scheduler(Kind);
  if (auto R = NB.addInstance(TS, "ts",
                              {{"part", {0}}, {"off", {0}}, {"nt", {2}}});
      !R.ok())
    return R.takeError();

  Result<std::unique_ptr<sa::Template>> Driver =
      buildSchedDriverTask(NB.globalDecls());
  if (!Driver.ok())
    return Driver.takeError();
  for (int64_t G = 0; G < 2; ++G)
    if (auto R = NB.addInstance(
            **Driver, formatString("drv%lld", static_cast<long long>(G)),
            {{"g", {G}}, {"p", {0}}, {"myprio", {G + 1}}});
        !R.ok())
      return R.takeError();

  Result<std::unique_ptr<sa::Template>> Window =
      buildWindowDriver(NB.globalDecls());
  if (!Window.ok())
    return Window.takeError();
  if (auto R = NB.addInstance(**Window, "win", {{"p", {0}}}); !R.ok())
    return R.takeError();

  Result<std::unique_ptr<sa::Template>> WinObs =
      buildWindowObserver(NB.globalDecls());
  if (!WinObs.ok())
    return WinObs.takeError();
  Result<sa::Automaton *> WinObsInst =
      NB.addInstance(**WinObs, "winobs", {});
  if (!WinObsInst.ok())
    return WinObsInst.takeError();
  int ViolClock = (*WinObsInst)->Clocks[0];

  Result<std::unique_ptr<sa::Template>> Ticker =
      buildTicker(NB.globalDecls());
  if (!Ticker.ok())
    return Ticker.takeError();
  if (auto R = NB.addInstance(**Ticker, "ticker",
                              {{"hticks", {Ticks}}});
      !R.ok())
    return R.takeError();

  Result<std::unique_ptr<sa::Network>> Net = NB.finish();
  if (!Net.ok())
    return Net.takeError();

  int RunBase = (*Net)->slotOf("running");
  mc::ModelChecker::StatePredicate Bad;
  if (std::string(BadExprKind) == "double-exec") {
    Bad = [RunBase](const nsa::Exec &, const nsa::State &S) {
      return S.Store[static_cast<size_t>(RunBase)] +
                 S.Store[static_cast<size_t>(RunBase) + 1] >=
             2;
    };
  } else { // Window confinement: positive out-of-window execution time.
    Bad = [ViolClock](const nsa::Exec &, const nsa::State &S) {
      return S.Clocks[static_cast<size_t>(ViolClock)] > 0;
    };
  }
  return runHarness(Net.takeValue(), Ticks, Bad);
}

/// Builds the task harness (real Task + scheduler driver + optional data
/// driver + stopwatch observer + ticker).
struct TaskHarness {
  std::unique_ptr<sa::Network> Net;
  int ObserverIndex = -1;
  int LateClock = -1;
};

Result<TaskHarness> buildTaskHarness(int64_t Wcet, int64_t Deadline,
                                     int Ticks, bool WithInputLink) {
  Result<std::unique_ptr<HarnessContext>> Ctx = makeContext(1, 1, 1);
  if (!Ctx.ok())
    return Ctx.takeError();
  sa::NetworkBuilder &NB = (*Ctx)->NB;

  int64_t Period = Ticks + 10; // Single job within the harness horizon.
  std::vector<int64_t> InLinks = {0};
  if (auto R = NB.addInstance(
          (*Ctx)->Lib->task(), "task",
          {{"gid", {0}},
           {"part", {0}},
           {"wcet", {Wcet}},
           {"period", {Period}},
           {"deadline", {Deadline}},
           {"priority", {1}},
           {"n_in", {WithInputLink ? 1 : 0}},
           {"in_links", InLinks}});
      !R.ok())
    return R.takeError();

  Result<std::unique_ptr<sa::Template>> Sched =
      buildTaskDriverSched(NB.globalDecls());
  if (!Sched.ok())
    return Sched.takeError();
  if (auto R = NB.addInstance(**Sched, "sched", {{"g", {0}}, {"p", {0}}});
      !R.ok())
    return R.takeError();

  if (WithInputLink) {
    Result<std::unique_ptr<sa::Template>> Data =
        buildDataDriver(NB.globalDecls());
    if (!Data.ok())
      return Data.takeError();
    if (auto R = NB.addInstance(**Data, "data", {}); !R.ok())
      return R.takeError();
  }

  Result<std::unique_ptr<sa::Template>> Obs =
      buildTaskObserver(NB.globalDecls());
  if (!Obs.ok())
    return Obs.takeError();
  Result<sa::Automaton *> ObsInst = NB.addInstance(
      **Obs, "observer",
      {{"g", {0}}, {"wcet", {Wcet}}, {"deadline", {Deadline}}});
  if (!ObsInst.ok())
    return ObsInst.takeError();
  int LateClock = (*ObsInst)->Clocks[1]; // "late" is the second clock.

  Result<std::unique_ptr<sa::Template>> Ticker =
      buildTicker(NB.globalDecls());
  if (!Ticker.ok())
    return Ticker.takeError();
  if (auto R = NB.addInstance(**Ticker, "ticker",
                              {{"hticks", {Ticks}}});
      !R.ok())
    return R.takeError();

  Result<std::unique_ptr<sa::Network>> Net = NB.finish();
  if (!Net.ok())
    return Net.takeError();

  TaskHarness H;
  H.Net = Net.takeValue();
  H.LateClock = LateClock;
  for (size_t A = 0; A < H.Net->Automata.size(); ++A)
    if (H.Net->Automata[A]->Name == "observer")
      H.ObserverIndex = static_cast<int>(A);
  return H;
}

} // namespace

Result<HarnessRun>
swa::verify::verifyTsSingleExecution(cfg::SchedulerKind Kind, int Ticks) {
  return runSchedulerHarness(nullptr, Kind, Ticks, "double-exec");
}

Result<HarnessRun>
swa::verify::verifyTsWindowConfinement(cfg::SchedulerKind Kind,
                                       int Ticks) {
  return runSchedulerHarness(nullptr, Kind, Ticks, "window");
}

Result<HarnessRun> swa::verify::verifyBrokenTsIsCaught(int Ticks) {
  // Build the broken scheduler against a throwaway context first to get
  // matching globals; runSchedulerHarness needs the template compiled
  // against ITS globals, so compile inside a custom run.
  Result<std::unique_ptr<HarnessContext>> Ctx = makeContext(2, 1, 0);
  if (!Ctx.ok())
    return Ctx.takeError();
  Result<std::unique_ptr<sa::Template>> Broken =
      buildBrokenFpps((*Ctx)->NB.globalDecls());
  if (!Broken.ok())
    return Broken.takeError();

  sa::NetworkBuilder &NB = (*Ctx)->NB;
  if (auto R = NB.addInstance(**Broken, "ts",
                              {{"part", {0}}, {"off", {0}}, {"nt", {2}}});
      !R.ok())
    return R.takeError();
  Result<std::unique_ptr<sa::Template>> Driver =
      buildSchedDriverTask(NB.globalDecls());
  if (!Driver.ok())
    return Driver.takeError();
  for (int64_t G = 0; G < 2; ++G)
    if (auto R = NB.addInstance(
            **Driver, formatString("drv%lld", static_cast<long long>(G)),
            {{"g", {G}}, {"p", {0}}, {"myprio", {G + 1}}});
        !R.ok())
      return R.takeError();
  Result<std::unique_ptr<sa::Template>> Window =
      buildWindowDriver(NB.globalDecls());
  if (!Window.ok())
    return Window.takeError();
  if (auto R = NB.addInstance(**Window, "win", {{"p", {0}}}); !R.ok())
    return R.takeError();
  Result<std::unique_ptr<sa::Template>> Ticker =
      buildTicker(NB.globalDecls());
  if (!Ticker.ok())
    return Ticker.takeError();
  if (auto R = NB.addInstance(**Ticker, "ticker",
                              {{"hticks", {Ticks}}});
      !R.ok())
    return R.takeError();
  Result<std::unique_ptr<sa::Network>> Net = NB.finish();
  if (!Net.ok())
    return Net.takeError();
  int RunBase = (*Net)->slotOf("running");
  return runHarness(
      Net.takeValue(), Ticks,
      [RunBase](const nsa::Exec &, const nsa::State &S) {
        return S.Store[static_cast<size_t>(RunBase)] +
                   S.Store[static_cast<size_t>(RunBase) + 1] >=
               2;
      });
}

Result<HarnessRun> swa::verify::verifyTaskWcet(int64_t Wcet,
                                               int64_t Deadline,
                                               int Ticks) {
  Result<TaskHarness> H =
      buildTaskHarness(Wcet, Deadline, Ticks, /*WithInputLink=*/false);
  if (!H.ok())
    return H.takeError();
  int Obs = H->ObserverIndex;
  auto Bad = [Obs](const nsa::Exec &, const nsa::State &S) {
    return S.Locs[static_cast<size_t>(Obs)] == 1; // "Bad" location.
  };
  return runHarness(std::move(H->Net), Ticks, Bad);
}

Result<HarnessRun>
swa::verify::verifyTaskNoLateExecution(int64_t Wcet, int64_t Deadline,
                                       int Ticks) {
  Result<TaskHarness> H =
      buildTaskHarness(Wcet, Deadline, Ticks, /*WithInputLink=*/false);
  if (!H.ok())
    return H.takeError();
  int Late = H->LateClock;
  auto Bad = [Late](const nsa::Exec &, const nsa::State &S) {
    return S.Clocks[static_cast<size_t>(Late)] > 0;
  };
  return runHarness(std::move(H->Net), Ticks, Bad);
}

Result<HarnessRun>
swa::verify::verifyTaskSendsAfterCompletion(int64_t Wcet, int64_t Deadline,
                                            int Ticks) {
  // Covered by the observer's send-while-ready edge: same Bad location.
  return verifyTaskWcet(Wcet, Deadline, Ticks);
}

Result<HarnessRun> swa::verify::verifyTaskWaitsForData(int64_t Wcet,
                                                       int64_t Deadline,
                                                       int Ticks) {
  Result<TaskHarness> H =
      buildTaskHarness(Wcet, Deadline, Ticks, /*WithInputLink=*/true);
  if (!H.ok())
    return H.takeError();
  int ReadySlot = H->Net->slotOf("is_ready");
  int DataSlot = H->Net->slotOf("is_data_ready");
  auto Bad = [ReadySlot, DataSlot](const nsa::Exec &,
                                   const nsa::State &S) {
    return S.Store[static_cast<size_t>(ReadySlot)] == 1 &&
           S.Store[static_cast<size_t>(DataSlot)] < 1;
  };
  return runHarness(std::move(H->Net), Ticks, Bad);
}

Result<HarnessRun> swa::verify::verifyLinkExactDelay(int64_t Delay,
                                                     int Ticks) {
  Result<std::unique_ptr<HarnessContext>> Ctx = makeContext(1, 1, 1);
  if (!Ctx.ok())
    return Ctx.takeError();
  sa::NetworkBuilder &NB = (*Ctx)->NB;

  if (auto R = NB.addInstance(
          (*Ctx)->Lib->virtualLink(), "link",
          {{"link", {0}}, {"src", {0}}, {"delay", {Delay}}});
      !R.ok())
    return R.takeError();

  // Sender driver: broadcast send[0]! at nondeterministic ticks, one
  // message in flight at a time so the observer's send/deliver pairing is
  // unambiguous (queueing behavior is covered by unit tests).
  TemplateBuilder SB("DriverSender", NB.globalDecls());
  SB.location("Idle").committed("Choose").initial("Idle");
  SB.edge("Idle", "Choose", {.Sync = "tick?"});
  SB.edge("Choose", "Idle", {});
  SB.edge("Choose", "Idle", {.Guard = "inflight == 0", .Sync = "send[0]!",
                             .Update = "inflight = 1"});
  Result<std::unique_ptr<sa::Template>> Sender = SB.build();
  if (!Sender.ok())
    return Sender.takeError();
  if (auto R = NB.addInstance(**Sender, "sender", {}); !R.ok())
    return R.takeError();

  Result<std::unique_ptr<sa::Template>> Obs =
      buildLinkObserver(NB.globalDecls());
  if (!Obs.ok())
    return Obs.takeError();
  Result<sa::Automaton *> ObsInst = NB.addInstance(
      **Obs, "observer",
      {{"src", {0}}, {"link", {0}}, {"delay", {Delay}}});
  if (!ObsInst.ok())
    return ObsInst.takeError();

  Result<std::unique_ptr<sa::Template>> Ticker =
      buildTicker(NB.globalDecls());
  if (!Ticker.ok())
    return Ticker.takeError();
  if (auto R = NB.addInstance(**Ticker, "ticker",
                              {{"hticks", {Ticks}}});
      !R.ok())
    return R.takeError();

  Result<std::unique_ptr<sa::Network>> Net = NB.finish();
  if (!Net.ok())
    return Net.takeError();

  int Obs2 = -1;
  for (size_t A = 0; A < (*Net)->Automata.size(); ++A)
    if ((*Net)->Automata[A]->Name == "observer")
      Obs2 = static_cast<int>(A);
  auto Bad = [Obs2](const nsa::Exec &, const nsa::State &S) {
    return S.Locs[static_cast<size_t>(Obs2)] == 2; // "Bad" location.
  };
  return runHarness(Net.takeValue(), Ticks + Delay + 2, Bad);
}

Result<std::vector<VerificationOutcome>>
swa::verify::verifyComponentLibrary(int Ticks) {
  std::vector<VerificationOutcome> Out;
  auto Add = [&Out](const std::string &Id, const std::string &Desc,
                    Result<HarnessRun> Run) -> Error {
    if (!Run.ok())
      return Run.takeError().withContext(Id);
    Out.push_back({Id, Desc, Run->Holds, Run->Mc.StatesExplored,
                   Run->Mc.TransitionsExplored});
    return Error::success();
  };

  for (cfg::SchedulerKind K :
       {cfg::SchedulerKind::FPPS, cfg::SchedulerKind::FPNPS,
        cfg::SchedulerKind::EDF}) {
    std::string Name = cfg::schedulerKindName(K);
    if (Error E = Add("R1/" + Name,
                      "at most one executing job per partition",
                      verifyTsSingleExecution(K, Ticks)))
      return E;
    if (Error E = Add("R6/" + Name, "execution confined to windows",
                      verifyTsWindowConfinement(K, Ticks)))
      return E;
  }
  for (int64_t Wcet : {1, 2, 3}) {
    int64_t Deadline = Wcet + 3;
    std::string Suffix = formatString("/C%lld", static_cast<long long>(Wcet));
    if (Error E = Add("R2" + Suffix, "completion after exactly WCET",
                      verifyTaskWcet(Wcet, Deadline, Ticks)))
      return E;
    if (Error E = Add("R7" + Suffix, "no execution after the deadline",
                      verifyTaskNoLateExecution(Wcet, Deadline, Ticks)))
      return E;
  }
  if (Error E = Add("R3", "data sent only after completion",
                    verifyTaskSendsAfterCompletion(2, 5, Ticks)))
    return E;
  if (Error E = Add("R5", "no readiness before input data",
                    verifyTaskWaitsForData(2, 5, Ticks)))
    return E;
  for (int64_t Delay : {0, 1, 3}) {
    if (Error E = Add(formatString("R4/d%lld",
                                   static_cast<long long>(Delay)),
                      "delivery exactly at the worst-case delay",
                      verifyLinkExactDelay(Delay, 5)))
      return E;
  }
  return Out;
}
