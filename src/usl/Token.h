//===- usl/Token.h - USL token definitions ----------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of USL, the UPPAAL-style modeling language used to author
/// declarations, guards, updates, invariants and synchronization labels of
/// stopwatch automata templates. The paper's toolchain authors component
/// models in UPPAAL and translates them to a C++ representation; USL plays
/// the role of UPPAAL's C-like subset in this reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_TOKEN_H
#define SWA_USL_TOKEN_H

#include <cstdint>
#include <string>

namespace swa {
namespace usl {

/// Source position within a USL snippet (1-based line/column).
struct SourceLoc {
  int Line = 1;
  int Col = 1;
};

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  // Keywords.
  KwConst,
  KwInt,
  KwBool,
  KwClock,
  KwChan,
  KwBroadcast,
  KwVoid,
  KwTrue,
  KwFalse,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Question,
  Assign,
  PlusAssign,
  MinusAssign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Not,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Exclaim, // '!' used as a send marker in sync labels (same char as Not).
  Prime,   // "'" clock-rate marker in invariants (x' == 0).
  PlusPlus,
  MinusMinus,
  Eof,
};

/// Returns a human-readable spelling of a token kind for diagnostics.
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace usl
} // namespace swa

#endif // SWA_USL_TOKEN_H
