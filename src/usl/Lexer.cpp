//===- usl/Lexer.cpp - USL lexer ------------------------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <limits>
#include <unordered_map>

using namespace swa;
using namespace swa::usl;

const char *swa::usl::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwClock:
    return "'clock'";
  case TokenKind::KwChan:
    return "'chan'";
  case TokenKind::KwBroadcast:
    return "'broadcast'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Not:
  case TokenKind::Exclaim:
    return "'!'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::AndAnd:
    return "'&&'";
  case TokenKind::OrOr:
    return "'||'";
  case TokenKind::Prime:
    return "'''";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Eof:
    return "end of input";
  }
  return "<unknown token>";
}

static TokenKind keywordKind(std::string_view Word) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"const", TokenKind::KwConst},   {"int", TokenKind::KwInt},
      {"bool", TokenKind::KwBool},     {"clock", TokenKind::KwClock},
      {"chan", TokenKind::KwChan},     {"broadcast", TokenKind::KwBroadcast},
      {"void", TokenKind::KwVoid},     {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},   {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},     {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},       {"return", TokenKind::KwReturn},
  };
  auto It = Keywords.find(Word);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

namespace {

class LexerImpl {
public:
  explicit LexerImpl(std::string_view Source) : Src(Source) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> Tokens;
    for (;;) {
      if (Error E = skipTrivia())
        return E;
      SourceLoc Loc = CurLoc;
      if (atEnd()) {
        Tokens.push_back({TokenKind::Eof, "", 0, Loc});
        return Tokens;
      }
      Result<Token> T = lexToken();
      if (!T.ok())
        return T.takeError();
      T->Loc = Loc;
      Tokens.push_back(std::move(*T));
    }
  }

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++CurLoc.Line;
      CurLoc.Col = 1;
    } else {
      ++CurLoc.Col;
    }
    return C;
  }

  Error errorHere(const std::string &Msg) const {
    return Error::failure(formatString("%d:%d: %s", CurLoc.Line, CurLoc.Col,
                                       Msg.c_str()));
  }

  Error skipTrivia() {
    for (;;) {
      if (atEnd())
        return Error::success();
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = CurLoc;
        advance();
        advance();
        for (;;) {
          if (atEnd())
            return Error::failure(formatString(
                "%d:%d: unterminated block comment", Start.Line, Start.Col));
          if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            break;
          }
          advance();
        }
        continue;
      }
      return Error::success();
    }
  }

  Result<Token> lexToken() {
    char C = peek();
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber();
    if (isIdentStart(C))
      return lexIdentifier();
    return lexPunct();
  }

  Result<Token> lexNumber() {
    Token T;
    T.Kind = TokenKind::IntLiteral;
    int64_t Value = 0;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      int Digit = peek() - '0';
      if (Value > (std::numeric_limits<int64_t>::max() - Digit) / 10)
        return errorHere("integer literal overflows int64");
      Value = Value * 10 + Digit;
      T.Text.push_back(advance());
    }
    if (!atEnd() && isIdentStart(peek()))
      return errorHere("identifier character directly after number");
    T.IntValue = Value;
    return T;
  }

  Result<Token> lexIdentifier() {
    Token T;
    while (!atEnd() && isIdentChar(peek()))
      T.Text.push_back(advance());
    T.Kind = keywordKind(T.Text);
    if (T.Kind == TokenKind::KwTrue)
      T.IntValue = 1;
    return T;
  }

  Result<Token> lexPunct() {
    Token T;
    char C = advance();
    auto Two = [&](char Next, TokenKind IfTwo, TokenKind IfOne) {
      if (peek() == Next) {
        T.Text.push_back(C);
        T.Text.push_back(advance());
        T.Kind = IfTwo;
      } else {
        T.Text.push_back(C);
        T.Kind = IfOne;
      }
      return T;
    };
    switch (C) {
    case '(':
      T.Kind = TokenKind::LParen;
      break;
    case ')':
      T.Kind = TokenKind::RParen;
      break;
    case '{':
      T.Kind = TokenKind::LBrace;
      break;
    case '}':
      T.Kind = TokenKind::RBrace;
      break;
    case '[':
      T.Kind = TokenKind::LBracket;
      break;
    case ']':
      T.Kind = TokenKind::RBracket;
      break;
    case ',':
      T.Kind = TokenKind::Comma;
      break;
    case ';':
      T.Kind = TokenKind::Semi;
      break;
    case ':':
      T.Kind = TokenKind::Colon;
      break;
    case '?':
      T.Kind = TokenKind::Question;
      break;
    case '\'':
      T.Kind = TokenKind::Prime;
      break;
    case '+':
      if (peek() == '+') {
        advance();
        T.Kind = TokenKind::PlusPlus;
        break;
      }
      return Two('=', TokenKind::PlusAssign, TokenKind::Plus);
    case '-':
      if (peek() == '-') {
        advance();
        T.Kind = TokenKind::MinusMinus;
        break;
      }
      return Two('=', TokenKind::MinusAssign, TokenKind::Minus);
    case '*':
      T.Kind = TokenKind::Star;
      break;
    case '/':
      T.Kind = TokenKind::Slash;
      break;
    case '%':
      T.Kind = TokenKind::Percent;
      break;
    case '!':
      return Two('=', TokenKind::NotEq, TokenKind::Not);
    case '<':
      return Two('=', TokenKind::Le, TokenKind::Lt);
    case '>':
      return Two('=', TokenKind::Ge, TokenKind::Gt);
    case '=':
      return Two('=', TokenKind::EqEq, TokenKind::Assign);
    case '&':
      if (peek() == '&') {
        advance();
        T.Kind = TokenKind::AndAnd;
        break;
      }
      return errorHere("expected '&&'");
    case '|':
      if (peek() == '|') {
        advance();
        T.Kind = TokenKind::OrOr;
        break;
      }
      return errorHere("expected '||'");
    default:
      return errorHere(formatString("unexpected character '%c'", C));
    }
    if (T.Text.empty())
      T.Text.push_back(C);
    return T;
  }

  std::string_view Src;
  size_t Pos = 0;
  SourceLoc CurLoc;
};

} // namespace

Result<std::vector<Token>> swa::usl::lex(std::string_view Source) {
  return LexerImpl(Source).run();
}
