//===- usl/Type.h - USL type representation ---------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// USL's types: void, int (optionally range-bounded), bool, clock, channel
/// and fixed-size arrays of int/bool plus channel arrays. Clocks and
/// channels are not first-class values: clocks may only appear in guard /
/// invariant comparisons and zero-resets, channels only in synchronization
/// labels. The type checker enforces those restrictions.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_TYPE_H
#define SWA_USL_TYPE_H

#include <cstdint>
#include <string>

namespace swa {
namespace usl {

enum class TypeKind {
  Void,
  Int,
  Bool,
  Clock,
  Chan,
  IntArray,
  BoolArray,
  ChanArray,
};

/// A USL type. Arrays carry their element count; Size is -1 for unsized
/// array parameters of templates (bound at instantiation).
struct Type {
  TypeKind Kind = TypeKind::Void;
  int Size = 0; // Element count for arrays; -1 = unsized parameter array.

  static Type makeVoid() { return {TypeKind::Void, 0}; }
  static Type makeInt() { return {TypeKind::Int, 0}; }
  static Type makeBool() { return {TypeKind::Bool, 0}; }
  static Type makeClock() { return {TypeKind::Clock, 0}; }
  static Type makeChan() { return {TypeKind::Chan, 0}; }
  static Type makeIntArray(int Size) { return {TypeKind::IntArray, Size}; }
  static Type makeBoolArray(int Size) { return {TypeKind::BoolArray, Size}; }
  static Type makeChanArray(int Size) { return {TypeKind::ChanArray, Size}; }

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isClock() const { return Kind == TypeKind::Clock; }
  bool isChan() const {
    return Kind == TypeKind::Chan || Kind == TypeKind::ChanArray;
  }
  bool isArray() const {
    return Kind == TypeKind::IntArray || Kind == TypeKind::BoolArray ||
           Kind == TypeKind::ChanArray;
  }
  /// Scalar data value usable in arithmetic/assignment (int or bool).
  bool isData() const { return isInt() || isBool(); }

  /// Element type for arrays.
  Type element() const {
    switch (Kind) {
    case TypeKind::IntArray:
      return makeInt();
    case TypeKind::BoolArray:
      return makeBool();
    case TypeKind::ChanArray:
      return makeChan();
    default:
      return *this;
    }
  }

  std::string str() const {
    switch (Kind) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Int:
      return "int";
    case TypeKind::Bool:
      return "bool";
    case TypeKind::Clock:
      return "clock";
    case TypeKind::Chan:
      return "chan";
    case TypeKind::IntArray:
      return "int[]";
    case TypeKind::BoolArray:
      return "bool[]";
    case TypeKind::ChanArray:
      return "chan[]";
    }
    return "<bad>";
  }
};

} // namespace usl
} // namespace swa

#endif // SWA_USL_TYPE_H
