//===- usl/Ast.cpp - USL AST cloning --------------------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Ast.h"

using namespace swa;
using namespace swa::usl;

ExprPtr swa::usl::cloneExpr(const Expr &E) {
  auto Out = std::make_unique<Expr>();
  Out->Kind = E.Kind;
  Out->Ty = E.Ty;
  Out->Loc = E.Loc;
  Out->Literal = E.Literal;
  Out->Sym = E.Sym;
  Out->Ref = E.Ref;
  Out->ConstValue = E.ConstValue;
  Out->Slot = E.Slot;
  Out->ArraySize = E.ArraySize;
  Out->FuncIndex = E.FuncIndex;
  Out->UOp = E.UOp;
  Out->BOp = E.BOp;
  Out->ClockAtom = E.ClockAtom;
  Out->HasClockAtom = E.HasClockAtom;
  Out->Children.reserve(E.Children.size());
  for (const ExprPtr &C : E.Children)
    Out->Children.push_back(cloneExpr(*C));
  return Out;
}

StmtPtr swa::usl::cloneStmt(const Stmt &S) {
  auto Out = std::make_unique<Stmt>();
  Out->Kind = S.Kind;
  Out->Loc = S.Loc;
  Out->DeclSym = S.DeclSym;
  Out->DeclFrameSlot = S.DeclFrameSlot;
  Out->DeclFrameCount = S.DeclFrameCount;
  Out->AOp = S.AOp;
  if (S.Target)
    Out->Target = cloneExpr(*S.Target);
  if (S.Value)
    Out->Value = cloneExpr(*S.Value);
  if (S.Cond)
    Out->Cond = cloneExpr(*S.Cond);
  if (S.Then)
    Out->Then = cloneStmt(*S.Then);
  if (S.Else)
    Out->Else = cloneStmt(*S.Else);
  Out->Body.reserve(S.Body.size());
  for (const StmtPtr &B : S.Body)
    Out->Body.push_back(cloneStmt(*B));
  return Out;
}
