//===- usl/Interp.cpp - Evaluation of bound USL trees ----------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Interp.h"

#include "support/StringUtils.h"
#include "usl/Parser.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace swa;
using namespace swa::usl;

namespace {

[[noreturn]] void fatalEval(const Expr *E, const char *Msg) {
  if (E)
    std::fprintf(stderr, "swa-sched: fatal model evaluation error at %d:%d: "
                         "%s\n",
                 E->Loc.Line, E->Loc.Col, Msg);
  else
    std::fprintf(stderr, "swa-sched: fatal model evaluation error: %s\n",
                 Msg);
  std::abort();
}

void chargeStep(EvalContext &Ctx, const Expr *E) {
  if (--Ctx.StepBudget < 0)
    fatalEval(E, "evaluation step budget exhausted (runaway loop or "
                 "recursion in a model function?)");
}

int64_t callFunction(const Expr &CallE, EvalContext &Ctx, size_t FrameBase);

/// Result of executing one statement.
struct ExecResult {
  bool Returned = false;
  int64_t Value = 0;
};

ExecResult execStmt(const Stmt &S, EvalContext &Ctx, size_t FrameBase);

void storeWrite(EvalContext &Ctx, int Slot, int64_t V, const Expr *Site) {
  if (Slot < 0 || static_cast<size_t>(Slot) >= Ctx.Store->size())
    fatalEval(Site, "store slot out of range");
  (*Ctx.Store)[static_cast<size_t>(Slot)] = V;
  if (Ctx.WriteLog)
    Ctx.WriteLog->push_back(Slot);
}

/// Resolves an lvalue (VarRef or Index over Store/Frame) to a writable
/// location; returns true for store locations, false for frame ones, and
/// places the final slot in \p Slot.
bool resolveLValue(const Expr &Target, EvalContext &Ctx, size_t FrameBase,
                   int &Slot) {
  int Index = 0;
  if (Target.Kind == ExprKind::Index) {
    int64_t Idx = evalExpr(*Target.Children[0], Ctx, FrameBase);
    if (Idx < 0 || Idx >= Target.ArraySize)
      fatalEval(&Target, "array index out of bounds in assignment");
    Index = static_cast<int>(Idx);
  } else {
    assert(Target.Kind == ExprKind::VarRef && "bad lvalue kind");
  }
  switch (Target.Ref) {
  case RefKind::Store:
    Slot = Target.Slot + Index;
    return true;
  case RefKind::Frame:
    Slot = static_cast<int>(FrameBase) + Target.Slot + Index;
    return false;
  default:
    fatalEval(&Target, "assignment to a non-writable reference");
  }
}

ExecResult execStmt(const Stmt &S, EvalContext &Ctx, size_t FrameBase) {
  switch (S.Kind) {
  case StmtKind::Block: {
    for (const StmtPtr &B : S.Body) {
      ExecResult R = execStmt(*B, Ctx, FrameBase);
      if (R.Returned)
        return R;
    }
    return {};
  }
  case StmtKind::LocalDecl: {
    // Frame slots are zero-initialized at call entry; run the initializer.
    assert(S.DeclFrameSlot >= 0 && "executing an unbound local decl");
    if (S.Value) {
      int64_t V = evalExpr(*S.Value, Ctx, FrameBase);
      Ctx.FrameStack[FrameBase + static_cast<size_t>(S.DeclFrameSlot)] = V;
    } else {
      for (int I = 0; I < S.DeclFrameCount; ++I)
        Ctx.FrameStack[FrameBase + static_cast<size_t>(S.DeclFrameSlot) +
                       static_cast<size_t>(I)] = 0;
    }
    return {};
  }
  case StmtKind::Assign: {
    int64_t V = evalExpr(*S.Value, Ctx, FrameBase);
    int Slot = 0;
    bool IsStore = resolveLValue(*S.Target, Ctx, FrameBase, Slot);
    int64_t Current = 0;
    if (S.AOp != AssignOp::Set)
      Current = IsStore ? (*Ctx.Store)[static_cast<size_t>(Slot)]
                        : Ctx.FrameStack[static_cast<size_t>(Slot)];
    int64_t Next = S.AOp == AssignOp::Set   ? V
                   : S.AOp == AssignOp::Add ? Current + V
                                            : Current - V;
    if (IsStore)
      storeWrite(Ctx, Slot, Next, S.Target.get());
    else
      Ctx.FrameStack[static_cast<size_t>(Slot)] = Next;
    return {};
  }
  case StmtKind::If: {
    chargeStep(Ctx, S.Cond.get());
    if (evalExpr(*S.Cond, Ctx, FrameBase) != 0)
      return execStmt(*S.Then, Ctx, FrameBase);
    if (S.Else)
      return execStmt(*S.Else, Ctx, FrameBase);
    return {};
  }
  case StmtKind::While: {
    for (;;) {
      chargeStep(Ctx, S.Cond.get());
      if (evalExpr(*S.Cond, Ctx, FrameBase) == 0)
        return {};
      ExecResult R = execStmt(*S.Then, Ctx, FrameBase);
      if (R.Returned)
        return R;
    }
  }
  case StmtKind::For: {
    ExecResult R = execStmt(*S.Body[0], Ctx, FrameBase);
    if (R.Returned)
      return R;
    for (;;) {
      chargeStep(Ctx, S.Cond.get());
      if (evalExpr(*S.Cond, Ctx, FrameBase) == 0)
        return {};
      R = execStmt(*S.Then, Ctx, FrameBase);
      if (R.Returned)
        return R;
      R = execStmt(*S.Body[1], Ctx, FrameBase);
      if (R.Returned)
        return R;
    }
  }
  case StmtKind::Return: {
    ExecResult R;
    R.Returned = true;
    if (S.Value)
      R.Value = evalExpr(*S.Value, Ctx, FrameBase);
    return R;
  }
  case StmtKind::ExprStmt:
    evalExpr(*S.Value, Ctx, FrameBase);
    return {};
  }
  fatalEval(nullptr, "unknown statement kind");
}

int64_t callFunction(const Expr &CallE, EvalContext &Ctx, size_t FrameBase) {
  assert(Ctx.FuncTable && "call without a function table");
  if (CallE.FuncIndex < 0 ||
      static_cast<size_t>(CallE.FuncIndex) >= Ctx.FuncTable->size())
    fatalEval(&CallE, "call to an unbound function");
  const FuncDecl *F = (*Ctx.FuncTable)[static_cast<size_t>(CallE.FuncIndex)];
  if (++Ctx.CallDepth > MaxCallDepth)
    fatalEval(&CallE, "call depth limit exceeded");

  // Evaluate arguments in the caller frame, then switch frames.
  size_t CalleeBase = Ctx.FrameStack.size();
  // Evaluate args into a small staging buffer first: growing FrameStack
  // while the caller frame is still live is fine because frames are
  // addressed by index, but arguments must see the caller frame.
  int64_t ArgVals[16];
  size_t ArgCount = CallE.Children.size();
  if (ArgCount > 16)
    fatalEval(&CallE, "too many call arguments");
  for (size_t I = 0; I < ArgCount; ++I)
    ArgVals[I] = evalExpr(*CallE.Children[I], Ctx, FrameBase);

  Ctx.FrameStack.resize(CalleeBase + static_cast<size_t>(F->FrameSize), 0);
  for (size_t I = 0; I < ArgCount; ++I)
    Ctx.FrameStack[CalleeBase + I] = ArgVals[I];
  // Zero the non-argument part (resize zeroed new elements, but the buffer
  // may be reused after shrinking; be explicit).
  for (size_t I = ArgCount; I < static_cast<size_t>(F->FrameSize); ++I)
    Ctx.FrameStack[CalleeBase + I] = 0;

  ExecResult R = execStmt(*F->Body, Ctx, CalleeBase);
  Ctx.FrameStack.resize(CalleeBase);
  --Ctx.CallDepth;
  if (F->RetTy.Kind != TypeKind::Void && !R.Returned)
    fatalEval(&CallE, "non-void model function fell off the end");
  return R.Value;
}

} // namespace

int64_t swa::usl::evalExpr(const Expr &E, EvalContext &Ctx,
                           size_t FrameBase) {
  chargeStep(Ctx, &E);
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
    return E.Literal;
  case ExprKind::VarRef:
    switch (E.Ref) {
    case RefKind::Const:
      return E.ConstValue;
    case RefKind::Store:
      return (*Ctx.Store)[static_cast<size_t>(E.Slot)];
    case RefKind::Frame:
      return Ctx.FrameStack[FrameBase + static_cast<size_t>(E.Slot)];
    default:
      fatalEval(&E, "evaluation of an unbound reference");
    }
  case ExprKind::Index: {
    int64_t Idx = evalExpr(*E.Children[0], Ctx, FrameBase);
    if (Idx < 0 || Idx >= E.ArraySize)
      fatalEval(&E, "array index out of bounds");
    switch (E.Ref) {
    case RefKind::ConstArray:
      return (*Ctx.ConstArrays)[static_cast<size_t>(E.Slot)]
                               [static_cast<size_t>(Idx)];
    case RefKind::Store:
      return (*Ctx.Store)[static_cast<size_t>(E.Slot + Idx)];
    case RefKind::Frame:
      return Ctx.FrameStack[FrameBase + static_cast<size_t>(E.Slot + Idx)];
    default:
      fatalEval(&E, "evaluation of an unbound array reference");
    }
  }
  case ExprKind::Call:
    return callFunction(E, Ctx, FrameBase);
  case ExprKind::Unary: {
    int64_t V = evalExpr(*E.Children[0], Ctx, FrameBase);
    return E.UOp == UnaryOp::Neg ? -V : (V == 0 ? 1 : 0);
  }
  case ExprKind::Binary: {
    // Short-circuit forms first.
    if (E.BOp == BinaryOp::And) {
      if (evalExpr(*E.Children[0], Ctx, FrameBase) == 0)
        return 0;
      return evalExpr(*E.Children[1], Ctx, FrameBase) != 0;
    }
    if (E.BOp == BinaryOp::Or) {
      if (evalExpr(*E.Children[0], Ctx, FrameBase) != 0)
        return 1;
      return evalExpr(*E.Children[1], Ctx, FrameBase) != 0;
    }
    int64_t L = evalExpr(*E.Children[0], Ctx, FrameBase);
    int64_t R = evalExpr(*E.Children[1], Ctx, FrameBase);
    switch (E.BOp) {
    case BinaryOp::Add:
      return L + R;
    case BinaryOp::Sub:
      return L - R;
    case BinaryOp::Mul:
      return L * R;
    case BinaryOp::Div:
      if (R == 0)
        fatalEval(&E, "division by zero");
      return L / R;
    case BinaryOp::Rem:
      if (R == 0)
        fatalEval(&E, "remainder by zero");
      return L % R;
    case BinaryOp::Lt:
      return L < R;
    case BinaryOp::Le:
      return L <= R;
    case BinaryOp::Gt:
      return L > R;
    case BinaryOp::Ge:
      return L >= R;
    case BinaryOp::Eq:
      return L == R;
    case BinaryOp::Ne:
      return L != R;
    case BinaryOp::Min:
      return L < R ? L : R;
    case BinaryOp::Max:
      return L > R ? L : R;
    case BinaryOp::And:
    case BinaryOp::Or:
      break; // Handled above.
    }
    fatalEval(&E, "unknown binary operator");
  }
  case ExprKind::Ternary: {
    int64_t C = evalExpr(*E.Children[0], Ctx, FrameBase);
    return evalExpr(C != 0 ? *E.Children[1] : *E.Children[2], Ctx,
                    FrameBase);
  }
  }
  fatalEval(&E, "unknown expression kind");
}

void swa::usl::execStmts(const std::vector<StmtPtr> &Stmts, EvalContext &Ctx,
                         size_t FrameBase) {
  for (const StmtPtr &S : Stmts)
    (void)execStmt(*S, Ctx, FrameBase);
}

//===----------------------------------------------------------------------===//
// ReadSetCollector
//===----------------------------------------------------------------------===//

ReadSetCollector::ReadSetCollector(
    const std::vector<const FuncDecl *> &FuncTable)
    : FuncTable(FuncTable) {
  refresh();
}

void ReadSetCollector::refresh() {
  size_t Done = FuncReads.size();
  if (Done == FuncTable.size())
    return;
  FuncReads.resize(FuncTable.size());
  // Fixpoint over the newly added suffix only (earlier functions are
  // final; new functions can call them and each other, incl. recursion).
  bool Changed = true;
  int Guard = 0;
  while (Changed && ++Guard < 64) {
    Changed = false;
    for (size_t I = Done; I < FuncTable.size(); ++I) {
      std::vector<int32_t> Slots;
      if (FuncTable[I]->Body)
        scanStmt(*FuncTable[I]->Body, Slots);
      std::sort(Slots.begin(), Slots.end());
      Slots.erase(std::unique(Slots.begin(), Slots.end()), Slots.end());
      if (Slots != FuncReads[I]) {
        FuncReads[I] = std::move(Slots);
        Changed = true;
      }
    }
  }
}

void ReadSetCollector::collect(const Expr &E,
                               std::vector<int32_t> &Slots) const {
  scanExpr(E, Slots);
}

void ReadSetCollector::collect(const Stmt &S,
                               std::vector<int32_t> &Slots) const {
  scanStmt(S, Slots);
}

void ReadSetCollector::scanExpr(const Expr &E,
                                std::vector<int32_t> &Slots) const {
  switch (E.Kind) {
  case ExprKind::VarRef:
    if (E.Ref == RefKind::Store)
      Slots.push_back(E.Slot);
    break;
  case ExprKind::Index:
    if (E.Ref == RefKind::Store) {
      // Constant indices contribute one slot; dynamic indices may read any
      // element (templates can tighten this via read hints).
      Result<int64_t> Idx = foldConst(*E.Children[0]);
      if (Idx.ok() && *Idx >= 0 && *Idx < E.ArraySize) {
        Slots.push_back(E.Slot + static_cast<int32_t>(*Idx));
      } else {
        for (int I = 0; I < E.ArraySize; ++I)
          Slots.push_back(E.Slot + I);
      }
    }
    break;
  case ExprKind::Call:
    if (E.FuncIndex >= 0 &&
        static_cast<size_t>(E.FuncIndex) < FuncReads.size()) {
      const std::vector<int32_t> &FR =
          FuncReads[static_cast<size_t>(E.FuncIndex)];
      Slots.insert(Slots.end(), FR.begin(), FR.end());
    }
    break;
  default:
    break;
  }
  for (const ExprPtr &C : E.Children)
    scanExpr(*C, Slots);
}

void ReadSetCollector::scanStmt(const Stmt &S,
                                std::vector<int32_t> &Slots) const {
  if (S.Target)
    scanExpr(*S.Target, Slots);
  if (S.Value)
    scanExpr(*S.Value, Slots);
  if (S.Cond)
    scanExpr(*S.Cond, Slots);
  if (S.Then)
    scanStmt(*S.Then, Slots);
  if (S.Else)
    scanStmt(*S.Else, Slots);
  for (const StmtPtr &B : S.Body)
    scanStmt(*B, Slots);
}
