//===- usl/Parser.cpp - USL parser and type checker -----------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Parser.h"

#include "support/StringUtils.h"
#include "usl/Lexer.h"

#include <unordered_map>
#include <unordered_set>

using namespace swa;
using namespace swa::usl;

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

Result<int64_t> swa::usl::foldConst(const Expr &E) {
  auto Fail = [&]() {
    return Error::failure(
        formatString("%d:%d: expression is not a compile-time constant",
                     E.Loc.Line, E.Loc.Col));
  };
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
    return E.Literal;
  case ExprKind::VarRef:
    if (E.Ref == RefKind::Const)
      return E.ConstValue;
    if (E.Sym && E.Sym->Kind == SymbolKind::GlobalConst &&
        !E.Sym->Ty.isArray())
      return E.Sym->ConstValues[0];
    return Fail();
  case ExprKind::Index: {
    if (!E.Sym || E.Sym->Kind != SymbolKind::GlobalConst)
      return Fail();
    Result<int64_t> Idx = foldConst(*E.Children[0]);
    if (!Idx.ok())
      return Idx;
    if (*Idx < 0 ||
        static_cast<size_t>(*Idx) >= E.Sym->ConstValues.size())
      return Error::failure(formatString(
          "%d:%d: constant array index %lld out of bounds", E.Loc.Line,
          E.Loc.Col, static_cast<long long>(*Idx)));
    return E.Sym->ConstValues[static_cast<size_t>(*Idx)];
  }
  case ExprKind::Unary: {
    Result<int64_t> V = foldConst(*E.Children[0]);
    if (!V.ok())
      return V;
    return E.UOp == UnaryOp::Neg ? -*V : (*V == 0 ? 1 : 0);
  }
  case ExprKind::Binary: {
    Result<int64_t> L = foldConst(*E.Children[0]);
    if (!L.ok())
      return L;
    // Short-circuit operators must not fold the other side eagerly when it
    // is non-constant but irrelevant.
    if (E.BOp == BinaryOp::And && *L == 0)
      return static_cast<int64_t>(0);
    if (E.BOp == BinaryOp::Or && *L != 0)
      return static_cast<int64_t>(1);
    Result<int64_t> R = foldConst(*E.Children[1]);
    if (!R.ok())
      return R;
    switch (E.BOp) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    case BinaryOp::Div:
      if (*R == 0)
        return Error::failure(formatString("%d:%d: division by zero",
                                           E.Loc.Line, E.Loc.Col));
      return *L / *R;
    case BinaryOp::Rem:
      if (*R == 0)
        return Error::failure(formatString("%d:%d: remainder by zero",
                                           E.Loc.Line, E.Loc.Col));
      return *L % *R;
    case BinaryOp::Lt:
      return static_cast<int64_t>(*L < *R);
    case BinaryOp::Le:
      return static_cast<int64_t>(*L <= *R);
    case BinaryOp::Gt:
      return static_cast<int64_t>(*L > *R);
    case BinaryOp::Ge:
      return static_cast<int64_t>(*L >= *R);
    case BinaryOp::Eq:
      return static_cast<int64_t>(*L == *R);
    case BinaryOp::Ne:
      return static_cast<int64_t>(*L != *R);
    case BinaryOp::And:
      return static_cast<int64_t>(*L != 0 && *R != 0);
    case BinaryOp::Or:
      return static_cast<int64_t>(*L != 0 || *R != 0);
    case BinaryOp::Min:
      return *L < *R ? *L : *R;
    case BinaryOp::Max:
      return *L > *R ? *L : *R;
    }
    return Fail();
  }
  case ExprKind::Ternary: {
    Result<int64_t> C = foldConst(*E.Children[0]);
    if (!C.ok())
      return C;
    return foldConst(*C != 0 ? *E.Children[1] : *E.Children[2]);
  }
  case ExprKind::Call:
    return Fail();
  }
  return Fail();
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class ParserImpl {
public:
  /// \p Mutable may be null for read-only expression parsing.
  ParserImpl(std::vector<Token> Tokens, Declarations *Mutable,
             const Declarations *Lookup)
      : Tokens(std::move(Tokens)), Mutable(Mutable), Lookup(Lookup) {}

  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    if (I >= Tokens.size())
      I = Tokens.size() - 1; // Eof token.
    return Tokens[I];
  }
  bool at(TokenKind K) const { return peek().Kind == K; }
  bool atEof() const { return at(TokenKind::Eof); }
  Token consume() { return Tokens[Pos >= Tokens.size() ? Tokens.size() - 1
                                                       : Pos++]; }
  bool tryConsume(TokenKind K) {
    if (!at(K))
      return false;
    consume();
    return true;
  }

  Error err(const Token &T, const std::string &Msg) const {
    return Error::failure(
        formatString("%d:%d: %s", T.Loc.Line, T.Loc.Col, Msg.c_str()));
  }
  Error expectErr(TokenKind K) const {
    return err(peek(), formatString("expected %s, found %s", tokenKindName(K),
                                    tokenKindName(peek().Kind)));
  }
  Error expect(TokenKind K) {
    if (!at(K))
      return expectErr(K);
    consume();
    return Error::success();
  }

  //===--------------------------------------------------------------------===//
  // Scopes and symbol lookup
  //===--------------------------------------------------------------------===//

  Symbol *lookupName(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return F->second;
    }
    return Lookup ? Lookup->lookup(Name) : nullptr;
  }

  bool nameTaken(const std::string &Name) const {
    return lookupName(Name) != nullptr;
  }

  Error expectEof() {
    if (!atEof())
      return err(peek(), "trailing tokens after expression");
    return Error::success();
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void addToScope(Symbol *S) {
    assert(!Scopes.empty() && "no active scope");
    Scopes.back()[S->Name] = S;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Result<ExprPtr> parseExpr() { return parseTernary(); }

  Result<ExprPtr> parseTernary() {
    Result<ExprPtr> Cond = parseOr();
    if (!Cond.ok())
      return Cond;
    if (!at(TokenKind::Question))
      return Cond;
    Token Q = consume();
    if ((*Cond)->HasClockAtom || (*Cond)->Ty.isClock())
      return err(Q, "clock conditions may not appear under '?:'");
    if (!(*Cond)->Ty.isBool())
      return err(Q, "condition of '?:' must be bool, got " +
                        (*Cond)->Ty.str());
    Result<ExprPtr> ThenE = parseExpr();
    if (!ThenE.ok())
      return ThenE;
    if (Error E = expect(TokenKind::Colon))
      return E;
    Result<ExprPtr> ElseE = parseTernary();
    if (!ElseE.ok())
      return ElseE;
    if (Error E = requireData(**ThenE, "'?:' branch"))
      return E;
    if (Error E = requireData(**ElseE, "'?:' branch"))
      return E;
    if ((*ThenE)->Ty.Kind != (*ElseE)->Ty.Kind)
      return err(Q, "branches of '?:' have mismatched types " +
                        (*ThenE)->Ty.str() + " and " + (*ElseE)->Ty.str());
    auto N = std::make_unique<Expr>();
    N->Kind = ExprKind::Ternary;
    N->Ty = (*ThenE)->Ty;
    N->Loc = Q.Loc;
    N->Children.push_back(Cond.takeValue());
    N->Children.push_back(ThenE.takeValue());
    N->Children.push_back(ElseE.takeValue());
    return foldIfConst(std::move(N));
  }

  Result<ExprPtr> parseOr() {
    Result<ExprPtr> L = parseAnd();
    if (!L.ok())
      return L;
    while (at(TokenKind::OrOr)) {
      Token Op = consume();
      Result<ExprPtr> R = parseAnd();
      if (!R.ok())
        return R;
      if ((*L)->HasClockAtom || (*R)->HasClockAtom)
        return err(Op, "clock conditions may not appear under '||'");
      Result<ExprPtr> N =
          makeBinary(BinaryOp::Or, Op, L.takeValue(), R.takeValue());
      if (!N.ok())
        return N;
      L = std::move(N);
    }
    return L;
  }

  Result<ExprPtr> parseAnd() {
    Result<ExprPtr> L = parseEquality();
    if (!L.ok())
      return L;
    while (at(TokenKind::AndAnd)) {
      Token Op = consume();
      Result<ExprPtr> R = parseEquality();
      if (!R.ok())
        return R;
      Result<ExprPtr> N =
          makeBinary(BinaryOp::And, Op, L.takeValue(), R.takeValue());
      if (!N.ok())
        return N;
      L = std::move(N);
    }
    return L;
  }

  Result<ExprPtr> parseEquality() {
    Result<ExprPtr> L = parseRelational();
    if (!L.ok())
      return L;
    while (at(TokenKind::EqEq) || at(TokenKind::NotEq)) {
      Token Op = consume();
      BinaryOp B = Op.Kind == TokenKind::EqEq ? BinaryOp::Eq : BinaryOp::Ne;
      Result<ExprPtr> R = parseRelational();
      if (!R.ok())
        return R;
      Result<ExprPtr> N = makeBinary(B, Op, L.takeValue(), R.takeValue());
      if (!N.ok())
        return N;
      L = std::move(N);
    }
    return L;
  }

  Result<ExprPtr> parseRelational() {
    Result<ExprPtr> L = parseAdditive();
    if (!L.ok())
      return L;
    while (at(TokenKind::Lt) || at(TokenKind::Le) || at(TokenKind::Gt) ||
           at(TokenKind::Ge)) {
      Token Op = consume();
      BinaryOp B = Op.Kind == TokenKind::Lt   ? BinaryOp::Lt
                   : Op.Kind == TokenKind::Le ? BinaryOp::Le
                   : Op.Kind == TokenKind::Gt ? BinaryOp::Gt
                                              : BinaryOp::Ge;
      Result<ExprPtr> R = parseAdditive();
      if (!R.ok())
        return R;
      Result<ExprPtr> N = makeBinary(B, Op, L.takeValue(), R.takeValue());
      if (!N.ok())
        return N;
      L = std::move(N);
    }
    return L;
  }

  Result<ExprPtr> parseAdditive() {
    Result<ExprPtr> L = parseMultiplicative();
    if (!L.ok())
      return L;
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      Token Op = consume();
      BinaryOp B = Op.Kind == TokenKind::Plus ? BinaryOp::Add : BinaryOp::Sub;
      Result<ExprPtr> R = parseMultiplicative();
      if (!R.ok())
        return R;
      Result<ExprPtr> N = makeBinary(B, Op, L.takeValue(), R.takeValue());
      if (!N.ok())
        return N;
      L = std::move(N);
    }
    return L;
  }

  Result<ExprPtr> parseMultiplicative() {
    Result<ExprPtr> L = parseUnary();
    if (!L.ok())
      return L;
    while (at(TokenKind::Star) || at(TokenKind::Slash) ||
           at(TokenKind::Percent)) {
      Token Op = consume();
      BinaryOp B = Op.Kind == TokenKind::Star    ? BinaryOp::Mul
                   : Op.Kind == TokenKind::Slash ? BinaryOp::Div
                                                 : BinaryOp::Rem;
      Result<ExprPtr> R = parseUnary();
      if (!R.ok())
        return R;
      Result<ExprPtr> N = makeBinary(B, Op, L.takeValue(), R.takeValue());
      if (!N.ok())
        return N;
      L = std::move(N);
    }
    return L;
  }

  Result<ExprPtr> parseUnary() {
    if (at(TokenKind::Minus)) {
      Token Op = consume();
      Result<ExprPtr> V = parseUnary();
      if (!V.ok())
        return V;
      if (!(*V)->Ty.isInt())
        return err(Op, "operand of unary '-' must be int, got " +
                           (*V)->Ty.str());
      auto N = std::make_unique<Expr>();
      N->Kind = ExprKind::Unary;
      N->UOp = UnaryOp::Neg;
      N->Ty = Type::makeInt();
      N->Loc = Op.Loc;
      N->Children.push_back(V.takeValue());
      return foldIfConst(std::move(N));
    }
    if (at(TokenKind::Not)) {
      Token Op = consume();
      Result<ExprPtr> V = parseUnary();
      if (!V.ok())
        return V;
      if ((*V)->HasClockAtom)
        return err(Op, "clock conditions may not appear under '!'");
      if (!(*V)->Ty.isBool())
        return err(Op, "operand of '!' must be bool, got " + (*V)->Ty.str());
      auto N = std::make_unique<Expr>();
      N->Kind = ExprKind::Unary;
      N->UOp = UnaryOp::Not;
      N->Ty = Type::makeBool();
      N->Loc = Op.Loc;
      N->Children.push_back(V.takeValue());
      return foldIfConst(std::move(N));
    }
    return parsePrimary();
  }

  Result<ExprPtr> parsePrimary() {
    Token T = peek();
    switch (T.Kind) {
    case TokenKind::IntLiteral:
      consume();
      return Expr::makeInt(T.IntValue, T.Loc);
    case TokenKind::KwTrue:
      consume();
      return Expr::makeBool(true, T.Loc);
    case TokenKind::KwFalse:
      consume();
      return Expr::makeBool(false, T.Loc);
    case TokenKind::LParen: {
      consume();
      Result<ExprPtr> E = parseExpr();
      if (!E.ok())
        return E;
      if (Error Err = expect(TokenKind::RParen))
        return Err;
      return E;
    }
    case TokenKind::Identifier:
      return parseIdentifierExpr();
    default:
      return err(T, formatString("expected expression, found %s",
                                 tokenKindName(T.Kind)));
    }
  }

  Result<ExprPtr> parseIdentifierExpr() {
    Token T = consume();
    Symbol *S = lookupName(T.Text);
    if (!S)
      return err(T, "use of undeclared identifier '" + T.Text + "'");
    if (S->Ty.isChan())
      return err(T, "channel '" + T.Text +
                        "' may only appear in a synchronization label");
    if (S->Kind == SymbolKind::Function)
      return parseCall(T, S);
    if (at(TokenKind::LParen))
      return err(T, "called object '" + T.Text + "' is not a function");

    if (at(TokenKind::LBracket)) {
      if (!S->Ty.isArray())
        return err(T, "subscripted value '" + T.Text + "' is not an array");
      consume();
      Result<ExprPtr> Idx = parseExpr();
      if (!Idx.ok())
        return Idx;
      if (Error E = expect(TokenKind::RBracket))
        return E;
      if (!(*Idx)->Ty.isInt())
        return err(T, "array index must be int, got " + (*Idx)->Ty.str());
      auto N = std::make_unique<Expr>();
      N->Kind = ExprKind::Index;
      N->Sym = S;
      N->Ty = S->Ty.element();
      N->Loc = T.Loc;
      N->Children.push_back(Idx.takeValue());
      return foldIfConst(std::move(N));
    }

    // Plain reference. Fold scalar constants immediately.
    if (S->Kind == SymbolKind::GlobalConst && !S->Ty.isArray()) {
      ExprPtr Lit = S->Ty.isBool() ? Expr::makeBool(S->ConstValues[0] != 0,
                                                    T.Loc)
                                   : Expr::makeInt(S->ConstValues[0], T.Loc);
      return Lit;
    }
    auto N = std::make_unique<Expr>();
    N->Kind = ExprKind::VarRef;
    N->Sym = S;
    N->Ty = S->Ty;
    N->Loc = T.Loc;
    return N;
  }

  Result<ExprPtr> parseCall(const Token &NameTok, Symbol *S) {
    FuncDecl *F = S->Func;
    assert(F && "function symbol without body");
    if (Error E = expect(TokenKind::LParen))
      return E;
    std::vector<ExprPtr> Args;
    if (!at(TokenKind::RParen)) {
      for (;;) {
        Result<ExprPtr> A = parseExpr();
        if (!A.ok())
          return A;
        if (Error E = requireData(**A, "function argument"))
          return E;
        Args.push_back(A.takeValue());
        if (!tryConsume(TokenKind::Comma))
          break;
      }
    }
    if (Error E = expect(TokenKind::RParen))
      return E;
    if (Args.size() != F->Params.size())
      return err(NameTok,
                 formatString("function '%s' expects %zu arguments, got %zu",
                              S->Name.c_str(), F->Params.size(),
                              Args.size()));
    for (size_t I = 0; I < Args.size(); ++I)
      if (Args[I]->Ty.Kind != F->Params[I]->Ty.Kind)
        return err(NameTok,
                   formatString("argument %zu of '%s' has type %s, expected "
                                "%s",
                                I + 1, S->Name.c_str(),
                                Args[I]->Ty.str().c_str(),
                                F->Params[I]->Ty.str().c_str()));
    auto N = std::make_unique<Expr>();
    N->Kind = ExprKind::Call;
    N->Sym = S;
    N->Ty = F->RetTy;
    N->Loc = NameTok.Loc;
    N->Children = std::move(Args);
    return N;
  }

  /// Builds a binary node with full type checking, handling clock atoms.
  Result<ExprPtr> makeBinary(BinaryOp B, const Token &Op, ExprPtr L,
                             ExprPtr R) {
    // Clock comparisons become clock atoms.
    bool IsCmp = B == BinaryOp::Lt || B == BinaryOp::Le || B == BinaryOp::Gt ||
                 B == BinaryOp::Ge || B == BinaryOp::Eq || B == BinaryOp::Ne;
    if (IsCmp && (L->Ty.isClock() || R->Ty.isClock())) {
      if (L->Ty.isClock() && R->Ty.isClock())
        return err(Op, "clock-to-clock comparisons are not supported");
      // Normalize to clock-on-the-left.
      if (R->Ty.isClock()) {
        std::swap(L, R);
        B = B == BinaryOp::Lt   ? BinaryOp::Gt
            : B == BinaryOp::Le ? BinaryOp::Ge
            : B == BinaryOp::Gt ? BinaryOp::Lt
            : B == BinaryOp::Ge ? BinaryOp::Le
                                : B;
      }
      if (B == BinaryOp::Ne)
        return err(Op, "'!=' comparisons with clocks are not supported");
      if (!R->Ty.isInt())
        return err(Op, "clock must be compared with an int expression, got " +
                           R->Ty.str());
      if (L->Kind != ExprKind::VarRef ||
          (L->ClockAtom == ClockAtomKind::Rate))
        return err(Op, "clock comparison requires a plain clock reference");
      bool IsRate = L->HasClockAtom; // Set by the prime marker below.
      auto N = std::make_unique<Expr>();
      N->Kind = ExprKind::Binary;
      N->BOp = B;
      N->Ty = Type::makeBool();
      N->Loc = Op.Loc;
      N->Sym = L->Sym;
      if (IsRate) {
        if (B != BinaryOp::Eq)
          return err(Op, "clock rate condition must use '=='");
        N->ClockAtom = ClockAtomKind::Rate;
      } else {
        N->ClockAtom = ClockAtomKind::Rel;
      }
      N->HasClockAtom = true;
      N->Children.push_back(std::move(L));
      N->Children.push_back(std::move(R));
      return N;
    }

    if (L->Ty.isClock() || R->Ty.isClock())
      return err(Op, "clocks may only appear in comparisons");
    if (B != BinaryOp::And && (L->HasClockAtom || R->HasClockAtom))
      return err(Op, "clock conditions may only be combined with '&&'");

    auto N = std::make_unique<Expr>();
    N->Kind = ExprKind::Binary;
    N->BOp = B;
    N->Loc = Op.Loc;
    switch (B) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem:
    case BinaryOp::Min:
    case BinaryOp::Max:
      if (!L->Ty.isInt() || !R->Ty.isInt())
        return err(Op, "arithmetic operands must be int, got " +
                           L->Ty.str() + " and " + R->Ty.str());
      N->Ty = Type::makeInt();
      break;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (!L->Ty.isInt() || !R->Ty.isInt())
        return err(Op, "relational operands must be int, got " +
                           L->Ty.str() + " and " + R->Ty.str());
      N->Ty = Type::makeBool();
      break;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (!L->Ty.isData() || L->Ty.Kind != R->Ty.Kind)
        return err(Op, "'==' operands must both be int or both bool, got " +
                           L->Ty.str() + " and " + R->Ty.str());
      N->Ty = Type::makeBool();
      break;
    case BinaryOp::And:
    case BinaryOp::Or:
      if (!L->Ty.isBool() || !R->Ty.isBool())
        return err(Op, "logical operands must be bool, got " + L->Ty.str() +
                           " and " + R->Ty.str());
      N->Ty = Type::makeBool();
      N->HasClockAtom = L->HasClockAtom || R->HasClockAtom;
      break;
    }
    N->Children.push_back(std::move(L));
    N->Children.push_back(std::move(R));
    return foldIfConst(std::move(N));
  }

  /// Folds a freshly built node if all operands are constant.
  Result<ExprPtr> foldIfConst(ExprPtr N) {
    if (N->HasClockAtom)
      return N;
    Result<int64_t> V = foldConst(*N);
    if (!V.ok()) {
      // Distinguish "not constant" (keep node) from genuine fold errors
      // (constant division by zero, out-of-range const index).
      const std::string &Msg = V.error().message();
      if (Msg.find("division by zero") != std::string::npos ||
          Msg.find("remainder by zero") != std::string::npos ||
          Msg.find("out of bounds") != std::string::npos)
        return V.takeError();
      return N;
    }
    if (N->Ty.isBool())
      return Expr::makeBool(*V != 0, N->Loc);
    return Expr::makeInt(*V, N->Loc);
  }

  /// Requires a scalar data value (int or bool).
  Error requireData(const Expr &E, const char *What) const {
    if (E.HasClockAtom)
      return Error::failure(formatString(
          "%d:%d: clock conditions are not allowed in %s", E.Loc.Line,
          E.Loc.Col, What));
    if (!E.Ty.isData())
      return Error::failure(formatString("%d:%d: %s must be int or bool, "
                                         "got %s",
                                         E.Loc.Line, E.Loc.Col, What,
                                         E.Ty.str().c_str()));
    return Error::success();
  }

  //===--------------------------------------------------------------------===//
  // The prime marker (clock rates in invariants)
  //===--------------------------------------------------------------------===//
  //
  // `x' == 0` is lexed as Identifier Prime EqEq IntLiteral. parsePrimary
  // would reject the Prime; we pre-scan in parseInvariantSource by calling
  // parseRatePrefix at conjunct starts instead.

  //===--------------------------------------------------------------------===//
  // Statements (function bodies)
  //===--------------------------------------------------------------------===//

  Result<StmtPtr> parseBlock() {
    Token LB = peek();
    if (Error E = expect(TokenKind::LBrace))
      return E;
    pushScope();
    auto B = std::make_unique<Stmt>();
    B->Kind = StmtKind::Block;
    B->Loc = LB.Loc;
    while (!at(TokenKind::RBrace)) {
      if (atEof()) {
        popScope();
        return err(peek(), "unterminated block");
      }
      Result<StmtPtr> S = parseStmt();
      if (!S.ok()) {
        popScope();
        return S;
      }
      B->Body.push_back(S.takeValue());
    }
    consume();
    popScope();
    return StmtPtr(std::move(B));
  }

  Result<StmtPtr> parseStmt() {
    switch (peek().Kind) {
    case TokenKind::LBrace:
      return parseBlock();
    case TokenKind::KwInt:
    case TokenKind::KwBool:
      return parseLocalDecl();
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::KwWhile:
      return parseWhile();
    case TokenKind::KwFor:
      return parseFor();
    case TokenKind::KwReturn:
      return parseReturn();
    default: {
      Result<StmtPtr> S = parseSimpleStmt(/*AllowEmpty=*/false);
      if (!S.ok())
        return S;
      if (Error E = expect(TokenKind::Semi))
        return E;
      return S;
    }
    }
  }

  /// Assignment / call / inc-dec, no trailing ';'. Used by plain statements
  /// and by for-headers and updates.
  Result<StmtPtr> parseSimpleStmt(bool AllowEmpty) {
    if (AllowEmpty &&
        (at(TokenKind::Semi) || at(TokenKind::RParen))) {
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Block;
      S->Loc = peek().Loc;
      return StmtPtr(std::move(S));
    }
    Token T = peek();
    if (!T.is(TokenKind::Identifier))
      return err(T, "expected statement");
    Symbol *S = lookupName(T.Text);
    if (!S)
      return err(T, "use of undeclared identifier '" + T.Text + "'");
    if (S->Kind == SymbolKind::Function) {
      // Call statement.
      consume();
      Result<ExprPtr> C = parseCall(T, S);
      if (!C.ok())
        return C.takeError();
      auto St = std::make_unique<Stmt>();
      St->Kind = StmtKind::ExprStmt;
      St->Loc = T.Loc;
      St->Value = C.takeValue();
      return StmtPtr(std::move(St));
    }
    return parseAssignment();
  }

  /// Parses `lvalue (=|+=|-=) expr` or `lvalue (++|--)`.
  Result<StmtPtr> parseAssignment() {
    Token T = consume();
    Symbol *S = lookupName(T.Text);
    assert(S && "caller checked");
    if (S->Kind == SymbolKind::GlobalConst ||
        S->Kind == SymbolKind::TemplateParam ||
        S->Kind == SymbolKind::SelectVar)
      return err(T, "cannot assign to read-only '" + T.Text + "'");
    ExprPtr Target;
    if (at(TokenKind::LBracket)) {
      if (!S->Ty.isArray())
        return err(T, "subscripted value '" + T.Text + "' is not an array");
      consume();
      Result<ExprPtr> Idx = parseExpr();
      if (!Idx.ok())
        return Idx.takeError();
      if (Error E = expect(TokenKind::RBracket))
        return E;
      if (!(*Idx)->Ty.isInt())
        return err(T, "array index must be int");
      Target = std::make_unique<Expr>();
      Target->Kind = ExprKind::Index;
      Target->Sym = S;
      Target->Ty = S->Ty.element();
      Target->Loc = T.Loc;
      Target->Children.push_back(Idx.takeValue());
    } else {
      if (S->Ty.isArray())
        return err(T, "cannot assign to whole array '" + T.Text + "'");
      Target = std::make_unique<Expr>();
      Target->Kind = ExprKind::VarRef;
      Target->Sym = S;
      Target->Ty = S->Ty;
      Target->Loc = T.Loc;
    }

    auto St = std::make_unique<Stmt>();
    St->Kind = StmtKind::Assign;
    St->Loc = T.Loc;

    if (at(TokenKind::PlusPlus) || at(TokenKind::MinusMinus)) {
      Token Op = consume();
      if (!Target->Ty.isInt() && !Target->Ty.isClock())
        return err(Op, "'++'/'--' requires an int lvalue");
      if (Target->Ty.isClock())
        return err(Op, "clocks cannot be incremented");
      St->AOp = Op.Kind == TokenKind::PlusPlus ? AssignOp::Add
                                               : AssignOp::Sub;
      St->Target = std::move(Target);
      St->Value = Expr::makeInt(1, Op.Loc);
      return StmtPtr(std::move(St));
    }

    Token Op = peek();
    AssignOp A;
    if (tryConsume(TokenKind::Assign))
      A = AssignOp::Set;
    else if (tryConsume(TokenKind::PlusAssign))
      A = AssignOp::Add;
    else if (tryConsume(TokenKind::MinusAssign))
      A = AssignOp::Sub;
    else
      return err(Op, "expected assignment operator");

    Result<ExprPtr> V = parseExpr();
    if (!V.ok())
      return V.takeError();

    if (Target->Ty.isClock()) {
      // Clock reset: only `c = 0` is permitted, and only in edge updates
      // (function bodies cannot touch clocks).
      if (CurFunc)
        return err(Op, "clocks cannot be assigned inside functions");
      if (A != AssignOp::Set)
        return err(Op, "clocks may only be reset with '= 0'");
      Result<int64_t> Z = foldConst(**V);
      if (!Z.ok() || *Z != 0)
        return err(Op, "clocks may only be reset to the constant 0");
      St->AOp = AssignOp::Set;
      St->Target = std::move(Target);
      St->Value = V.takeValue();
      return StmtPtr(std::move(St));
    }

    if (Error E = requireData(**V, "assignment source"))
      return E;
    if (A != AssignOp::Set && !Target->Ty.isInt())
      return err(Op, "'+='/'-=' requires an int lvalue");
    if (A == AssignOp::Set && Target->Ty.Kind != (*V)->Ty.Kind)
      return err(Op, "cannot assign " + (*V)->Ty.str() + " to " +
                         Target->Ty.str());
    if (A != AssignOp::Set && !(*V)->Ty.isInt())
      return err(Op, "'+='/'-=' source must be int");
    St->AOp = A;
    St->Target = std::move(Target);
    St->Value = V.takeValue();
    return StmtPtr(std::move(St));
  }

  Result<StmtPtr> parseLocalDecl() {
    assert(CurFunc && "local declarations only allowed inside functions");
    Token TypeTok = consume();
    Result<Type> BaseTy = parseScalarTypeTail(TypeTok);
    if (!BaseTy.ok())
      return BaseTy.takeError();

    auto Outer = std::make_unique<Stmt>();
    Outer->Kind = StmtKind::Block;
    Outer->Loc = TypeTok.Loc;

    for (;;) {
      Token NameTok = peek();
      if (Error E = expect(TokenKind::Identifier))
        return E;
      if (!Scopes.empty() && Scopes.back().count(NameTok.Text))
        return err(NameTok, "redefinition of '" + NameTok.Text + "'");

      Type Ty = *BaseTy;
      if (tryConsume(TokenKind::LBracket)) {
        Result<ExprPtr> SizeE = parseExpr();
        if (!SizeE.ok())
          return SizeE.takeError();
        if (Error E = expect(TokenKind::RBracket))
          return E;
        Result<int64_t> Size = foldConst(**SizeE);
        if (!Size.ok())
          return err(NameTok, "array size must be a compile-time constant");
        if (*Size <= 0 || *Size > (1 << 20))
          return err(NameTok, "array size out of range");
        Ty = Ty.isBool() ? Type::makeBoolArray(static_cast<int>(*Size))
                         : Type::makeIntArray(static_cast<int>(*Size));
      }

      Symbol *Sym = Mutable->createScoped(SymbolKind::FuncLocal,
                                          NameTok.Text, Ty);
      Sym->HasRange = BaseTy->isInt() && PendingRange.HasRange;
      Sym->RangeLo = PendingRange.Lo;
      Sym->RangeHi = PendingRange.Hi;
      Sym->Index = CurFunc->FrameSize;
      CurFunc->FrameSize += Ty.isArray() ? Ty.Size : 1;
      addToScope(Sym);

      auto DeclSt = std::make_unique<Stmt>();
      DeclSt->Kind = StmtKind::LocalDecl;
      DeclSt->Loc = NameTok.Loc;
      DeclSt->DeclSym = Sym;
      if (tryConsume(TokenKind::Assign)) {
        if (Ty.isArray())
          return err(NameTok, "array locals cannot have initializers");
        Result<ExprPtr> Init = parseExpr();
        if (!Init.ok())
          return Init.takeError();
        if (Error E = requireData(**Init, "initializer"))
          return E;
        if ((*Init)->Ty.Kind != Ty.Kind)
          return err(NameTok, "initializer type mismatch");
        DeclSt->Value = Init.takeValue();
      }
      Outer->Body.push_back(std::move(DeclSt));
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    if (Error E = expect(TokenKind::Semi))
      return E;
    return StmtPtr(std::move(Outer));
  }

  Result<StmtPtr> parseIf() {
    Token T = consume();
    if (Error E = expect(TokenKind::LParen))
      return E;
    Result<ExprPtr> Cond = parseExpr();
    if (!Cond.ok())
      return Cond.takeError();
    if (Error E = expect(TokenKind::RParen))
      return E;
    if ((*Cond)->HasClockAtom || !(*Cond)->Ty.isBool())
      return err(T, "'if' condition must be a clock-free bool expression");
    Result<StmtPtr> Then = parseStmt();
    if (!Then.ok())
      return Then;
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::If;
    S->Loc = T.Loc;
    S->Cond = Cond.takeValue();
    S->Then = Then.takeValue();
    if (tryConsume(TokenKind::KwElse)) {
      Result<StmtPtr> Else = parseStmt();
      if (!Else.ok())
        return Else;
      S->Else = Else.takeValue();
    }
    return StmtPtr(std::move(S));
  }

  Result<StmtPtr> parseWhile() {
    Token T = consume();
    if (Error E = expect(TokenKind::LParen))
      return E;
    Result<ExprPtr> Cond = parseExpr();
    if (!Cond.ok())
      return Cond.takeError();
    if (Error E = expect(TokenKind::RParen))
      return E;
    if ((*Cond)->HasClockAtom || !(*Cond)->Ty.isBool())
      return err(T, "'while' condition must be a clock-free bool expression");
    Result<StmtPtr> Body = parseStmt();
    if (!Body.ok())
      return Body;
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::While;
    S->Loc = T.Loc;
    S->Cond = Cond.takeValue();
    S->Then = Body.takeValue();
    return StmtPtr(std::move(S));
  }

  Result<StmtPtr> parseFor() {
    Token T = consume();
    if (Error E = expect(TokenKind::LParen))
      return E;
    pushScope(); // Allow `for (int i = ...)`-free form; decls via while.
    Result<StmtPtr> Init = at(TokenKind::KwInt) || at(TokenKind::KwBool)
                               ? parseLocalDecl()
                               : parseSimpleStmtSemi();
    if (!Init.ok()) {
      popScope();
      return Init;
    }
    Result<ExprPtr> Cond = parseExpr();
    if (!Cond.ok()) {
      popScope();
      return Cond.takeError();
    }
    if (Error E = expect(TokenKind::Semi)) {
      popScope();
      return E;
    }
    if ((*Cond)->HasClockAtom || !(*Cond)->Ty.isBool()) {
      popScope();
      return err(T, "'for' condition must be a clock-free bool expression");
    }
    Result<StmtPtr> Step = parseSimpleStmt(/*AllowEmpty=*/true);
    if (!Step.ok()) {
      popScope();
      return Step;
    }
    if (Error E = expect(TokenKind::RParen)) {
      popScope();
      return E;
    }
    Result<StmtPtr> Body = parseStmt();
    popScope();
    if (!Body.ok())
      return Body;
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::For;
    S->Loc = T.Loc;
    S->Body.push_back(Init.takeValue());
    S->Body.push_back(Step.takeValue());
    S->Cond = Cond.takeValue();
    S->Then = Body.takeValue();
    return StmtPtr(std::move(S));
  }

  /// Simple statement followed by ';' (for-init position), possibly empty.
  Result<StmtPtr> parseSimpleStmtSemi() {
    Result<StmtPtr> S = parseSimpleStmt(/*AllowEmpty=*/true);
    if (!S.ok())
      return S;
    if (Error E = expect(TokenKind::Semi))
      return E;
    return S;
  }

  Result<StmtPtr> parseReturn() {
    Token T = consume();
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Return;
    S->Loc = T.Loc;
    if (!at(TokenKind::Semi)) {
      Result<ExprPtr> V = parseExpr();
      if (!V.ok())
        return V.takeError();
      if (Error E = requireData(**V, "return value"))
        return E;
      S->Value = V.takeValue();
    }
    if (Error E = expect(TokenKind::Semi))
      return E;
    if (CurFunc->RetTy.Kind == TypeKind::Void && S->Value)
      return err(T, "void function cannot return a value");
    if (CurFunc->RetTy.Kind != TypeKind::Void) {
      if (!S->Value)
        return err(T, "non-void function must return a value");
      if (S->Value->Ty.Kind != CurFunc->RetTy.Kind)
        return err(T, "return type mismatch: expected " +
                          CurFunc->RetTy.str() + ", got " +
                          S->Value->Ty.str());
    }
    return StmtPtr(std::move(S));
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  /// Parses optional `[lo, hi]` range after 'int'. Stores into PendingRange.
  Result<Type> parseScalarTypeTail(const Token &TypeTok) {
    PendingRange = {};
    if (TypeTok.Kind == TokenKind::KwBool)
      return Type::makeBool();
    assert(TypeTok.Kind == TokenKind::KwInt);
    if (at(TokenKind::LBracket) && !isArraySizeBracket()) {
      consume();
      Result<ExprPtr> LoE = parseExpr();
      if (!LoE.ok())
        return LoE.takeError();
      if (Error E = expect(TokenKind::Comma))
        return E;
      Result<ExprPtr> HiE = parseExpr();
      if (!HiE.ok())
        return HiE.takeError();
      if (Error E = expect(TokenKind::RBracket))
        return E;
      Result<int64_t> Lo = foldConst(**LoE);
      Result<int64_t> Hi = foldConst(**HiE);
      if (!Lo.ok() || !Hi.ok())
        return err(TypeTok, "int range bounds must be compile-time constants");
      if (*Lo > *Hi)
        return err(TypeTok, "empty int range");
      PendingRange = {true, *Lo, *Hi};
    }
    return Type::makeInt();
  }

  /// Distinguishes `int[3] …`-style (not supported; arrays use postfix
  /// brackets) from ranges: a range always contains a comma at depth 1.
  bool isArraySizeBracket() const {
    size_t I = Pos + 1; // After '['.
    int Depth = 1;
    while (I < Tokens.size()) {
      TokenKind K = Tokens[I].Kind;
      if (K == TokenKind::LBracket)
        ++Depth;
      else if (K == TokenKind::RBracket) {
        if (--Depth == 0)
          return true; // No comma seen at depth 1: not a range.
      } else if (K == TokenKind::Comma && Depth == 1)
        return false;
      else if (K == TokenKind::Eof)
        break;
      ++I;
    }
    return true;
  }

  Error parseDeclBlock(bool IsTemplate) {
    while (!atEof()) {
      switch (peek().Kind) {
      case TokenKind::KwConst:
        if (Error E = parseConstDecl())
          return E;
        break;
      case TokenKind::KwClock:
        if (Error E = parseClockDecl(IsTemplate))
          return E;
        break;
      case TokenKind::KwBroadcast:
      case TokenKind::KwChan:
        if (IsTemplate)
          return err(peek(), "channels must be declared globally");
        if (Error E = parseChanDecl())
          return E;
        break;
      case TokenKind::KwInt:
      case TokenKind::KwBool:
      case TokenKind::KwVoid: {
        // Function if an identifier followed by '(' comes next.
        if (isFunctionHead()) {
          if (Error E = parseFuncDecl(IsTemplate))
            return E;
        } else {
          if (Error E = parseVarDecl(IsTemplate))
            return E;
        }
        break;
      }
      default:
        return err(peek(), formatString("expected declaration, found %s",
                                        tokenKindName(peek().Kind)));
      }
    }
    return Error::success();
  }

  /// Looks ahead: type [range] ident '(' means function definition.
  bool isFunctionHead() const {
    size_t I = Pos;
    auto K = [&](size_t J) {
      return J < Tokens.size() ? Tokens[J].Kind : TokenKind::Eof;
    };
    // Skip type keyword.
    ++I;
    // Skip an optional range bracket.
    if (K(I) == TokenKind::LBracket) {
      int Depth = 1;
      ++I;
      while (I < Tokens.size() && Depth > 0) {
        if (K(I) == TokenKind::LBracket)
          ++Depth;
        if (K(I) == TokenKind::RBracket)
          --Depth;
        ++I;
      }
    }
    return K(I) == TokenKind::Identifier && K(I + 1) == TokenKind::LParen;
  }

  Error parseConstDecl() {
    consume(); // 'const'
    Token TypeTok = peek();
    if (!at(TokenKind::KwInt) && !at(TokenKind::KwBool))
      return err(TypeTok, "expected 'int' or 'bool' after 'const'");
    consume();
    Result<Type> BaseTy = parseScalarTypeTail(TypeTok);
    if (!BaseTy.ok())
      return BaseTy.takeError();
    for (;;) {
      Token NameTok = peek();
      if (Error E = expect(TokenKind::Identifier))
        return E;
      if (nameTaken(NameTok.Text) || Mutable->declaresLocally(NameTok.Text))
        return err(NameTok, "redefinition of '" + NameTok.Text + "'");
      Type Ty = *BaseTy;
      int Size = 0;
      if (tryConsume(TokenKind::LBracket)) {
        Result<ExprPtr> SizeE = parseExpr();
        if (!SizeE.ok())
          return SizeE.takeError();
        if (Error E = expect(TokenKind::RBracket))
          return E;
        Result<int64_t> SizeV = foldConst(**SizeE);
        if (!SizeV.ok())
          return err(NameTok, "array size must be a compile-time constant");
        if (*SizeV <= 0 || *SizeV > (1 << 24))
          return err(NameTok, "array size out of range");
        Size = static_cast<int>(*SizeV);
        Ty = Ty.isBool() ? Type::makeBoolArray(Size)
                         : Type::makeIntArray(Size);
      }
      if (Error E = expect(TokenKind::Assign))
        return E;
      std::vector<int64_t> Values;
      if (Ty.isArray()) {
        if (Error E = expect(TokenKind::LBrace))
          return E;
        for (;;) {
          Result<ExprPtr> V = parseExpr();
          if (!V.ok())
            return V.takeError();
          Result<int64_t> C = foldConst(**V);
          if (!C.ok())
            return err(NameTok, "constant initializer must fold");
          Values.push_back(*C);
          if (!tryConsume(TokenKind::Comma))
            break;
        }
        if (Error E = expect(TokenKind::RBrace))
          return E;
        if (static_cast<int>(Values.size()) != Size)
          return err(NameTok,
                     formatString("array initializer has %zu elements, "
                                  "expected %d",
                                  Values.size(), Size));
      } else {
        Result<ExprPtr> V = parseExpr();
        if (!V.ok())
          return V.takeError();
        Result<int64_t> C = foldConst(**V);
        if (!C.ok())
          return err(NameTok, "constant initializer must fold");
        Values.push_back(*C);
      }
      Symbol *Sym =
          Mutable->create(SymbolKind::GlobalConst, NameTok.Text, Ty);
      Sym->ConstValues = std::move(Values);
      Sym->Index = static_cast<int>(Mutable->Consts.size());
      Mutable->Consts.push_back(Sym);
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    return expect(TokenKind::Semi);
  }

  Error parseClockDecl(bool IsTemplate) {
    consume(); // 'clock'
    for (;;) {
      Token NameTok = peek();
      if (Error E = expect(TokenKind::Identifier))
        return E;
      if (nameTaken(NameTok.Text) || Mutable->declaresLocally(NameTok.Text))
        return err(NameTok, "redefinition of '" + NameTok.Text + "'");
      Symbol *Sym = Mutable->create(IsTemplate ? SymbolKind::TemplateClock
                                               : SymbolKind::GlobalClock,
                                    NameTok.Text, Type::makeClock());
      Sym->Index = static_cast<int>(Mutable->Clocks.size());
      Mutable->Clocks.push_back(Sym);
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    return expect(TokenKind::Semi);
  }

  Error parseChanDecl() {
    bool Broadcast = tryConsume(TokenKind::KwBroadcast);
    if (Error E = expect(TokenKind::KwChan))
      return E;
    for (;;) {
      Token NameTok = peek();
      if (Error E = expect(TokenKind::Identifier))
        return E;
      if (nameTaken(NameTok.Text) || Mutable->declaresLocally(NameTok.Text))
        return err(NameTok, "redefinition of '" + NameTok.Text + "'");
      Type Ty = Type::makeChan();
      if (tryConsume(TokenKind::LBracket)) {
        Result<ExprPtr> SizeE = parseExpr();
        if (!SizeE.ok())
          return SizeE.takeError();
        if (Error E = expect(TokenKind::RBracket))
          return E;
        Result<int64_t> Size = foldConst(**SizeE);
        if (!Size.ok())
          return err(NameTok, "channel array size must be constant");
        if (*Size <= 0 || *Size > (1 << 24))
          return err(NameTok, "channel array size out of range");
        Ty = Type::makeChanArray(static_cast<int>(*Size));
      }
      Symbol *Sym = Mutable->create(SymbolKind::Channel, NameTok.Text, Ty);
      Sym->Broadcast = Broadcast;
      Sym->Index = static_cast<int>(Mutable->Channels.size());
      Mutable->Channels.push_back(Sym);
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    return expect(TokenKind::Semi);
  }

  Error parseVarDecl(bool IsTemplate) {
    Token TypeTok = consume();
    if (TypeTok.Kind == TokenKind::KwVoid)
      return err(TypeTok, "variables cannot have void type");
    Result<Type> BaseTy = parseScalarTypeTail(TypeTok);
    if (!BaseTy.ok())
      return BaseTy.takeError();
    RangeInfo Range = PendingRange;
    for (;;) {
      Token NameTok = peek();
      if (Error E = expect(TokenKind::Identifier))
        return E;
      if (nameTaken(NameTok.Text) || Mutable->declaresLocally(NameTok.Text))
        return err(NameTok, "redefinition of '" + NameTok.Text + "'");
      Type Ty = *BaseTy;
      if (tryConsume(TokenKind::LBracket)) {
        Result<ExprPtr> SizeE = parseExpr();
        if (!SizeE.ok())
          return SizeE.takeError();
        if (Error E = expect(TokenKind::RBracket))
          return E;
        Result<int64_t> Size = foldConst(**SizeE);
        if (!Size.ok())
          return err(NameTok, "array size must be a compile-time constant");
        if (*Size <= 0 || *Size > (1 << 24))
          return err(NameTok, "array size out of range");
        Ty = Ty.isBool() ? Type::makeBoolArray(static_cast<int>(*Size))
                         : Type::makeIntArray(static_cast<int>(*Size));
      }
      Declarations::VarInit VI;
      if (tryConsume(TokenKind::Assign)) {
        if (Ty.isArray()) {
          if (Error E = expect(TokenKind::LBrace))
            return E;
          for (;;) {
            Result<ExprPtr> V = parseExpr();
            if (!V.ok())
              return V.takeError();
            if (Error E = requireData(**V, "initializer"))
              return E;
            VI.Init.push_back(V.takeValue());
            if (!tryConsume(TokenKind::Comma))
              break;
          }
          if (Error E = expect(TokenKind::RBrace))
            return E;
          if (static_cast<int>(VI.Init.size()) > Ty.Size)
            return err(NameTok, "too many array initializer elements");
        } else {
          Result<ExprPtr> V = parseExpr();
          if (!V.ok())
            return V.takeError();
          if (Error E = requireData(**V, "initializer"))
            return E;
          if ((*V)->Ty.Kind != Ty.Kind)
            return err(NameTok, "initializer type mismatch");
          VI.Init.push_back(V.takeValue());
        }
      }
      Symbol *Sym = Mutable->create(IsTemplate ? SymbolKind::TemplateVar
                                               : SymbolKind::GlobalVar,
                                    NameTok.Text, Ty);
      Sym->HasRange = Range.HasRange;
      Sym->RangeLo = Range.Lo;
      Sym->RangeHi = Range.Hi;
      Sym->Index = static_cast<int>(Mutable->Vars.size());
      VI.Sym = Sym;
      Mutable->Vars.push_back(std::move(VI));
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    return expect(TokenKind::Semi);
  }

  Error parseFuncDecl(bool IsTemplate) {
    Token TypeTok = consume();
    Type RetTy = TypeTok.Kind == TokenKind::KwVoid   ? Type::makeVoid()
                 : TypeTok.Kind == TokenKind::KwBool ? Type::makeBool()
                                                     : Type::makeInt();
    if (TypeTok.Kind == TokenKind::KwInt &&
        at(TokenKind::LBracket) && !isArraySizeBracket()) {
      // Consume and ignore a return range annotation.
      Result<Type> T = parseScalarTypeTail(TypeTok);
      if (!T.ok())
        return T.takeError();
    }
    Token NameTok = peek();
    if (Error E = expect(TokenKind::Identifier))
      return E;
    if (nameTaken(NameTok.Text) || Mutable->declaresLocally(NameTok.Text))
      return err(NameTok, "redefinition of '" + NameTok.Text + "'");
    if (Error E = expect(TokenKind::LParen))
      return E;

    FuncDecl *F = Mutable->createFunc();
    F->RetTy = RetTy;
    Symbol *Sym =
        Mutable->create(SymbolKind::Function, NameTok.Text, Type::makeVoid());
    Sym->Func = F;
    F->Sym = Sym;
    Mutable->Funcs.push_back(F);

    pushScope();
    if (!at(TokenKind::RParen)) {
      for (;;) {
        Token PTok = peek();
        if (!at(TokenKind::KwInt) && !at(TokenKind::KwBool)) {
          popScope();
          return err(PTok, "expected parameter type");
        }
        consume();
        Result<Type> PTy = parseScalarTypeTail(PTok);
        if (!PTy.ok()) {
          popScope();
          return PTy.takeError();
        }
        Token PName = peek();
        if (Error E = expect(TokenKind::Identifier)) {
          popScope();
          return E;
        }
        if (Scopes.back().count(PName.Text)) {
          popScope();
          return err(PName, "duplicate parameter '" + PName.Text + "'");
        }
        Symbol *P =
            Mutable->createScoped(SymbolKind::FuncParam, PName.Text, *PTy);
        P->Index = F->FrameSize++;
        F->Params.push_back(P);
        addToScope(P);
        if (!tryConsume(TokenKind::Comma))
          break;
      }
    }
    if (Error E = expect(TokenKind::RParen)) {
      popScope();
      return E;
    }

    FuncDecl *PrevFunc = CurFunc;
    CurFunc = F;
    Result<StmtPtr> Body = parseBlock();
    CurFunc = PrevFunc;
    popScope();
    if (!Body.ok())
      return Body.takeError();
    F->Body = Body.takeValue();
    return Error::success();
  }

  //===--------------------------------------------------------------------===//
  // Template params, selects, sync, updates, guards, invariants
  //===--------------------------------------------------------------------===//

  Error parseParamList() {
    if (atEof())
      return Error::success();
    for (;;) {
      tryConsume(TokenKind::KwConst); // Optional, ignored.
      Token TypeTok = peek();
      if (!at(TokenKind::KwInt) && !at(TokenKind::KwBool))
        return err(TypeTok, "expected parameter type ('int' or 'bool')");
      consume();
      Type Ty = TypeTok.Kind == TokenKind::KwBool ? Type::makeBool()
                                                  : Type::makeInt();
      // `int[]` marks an unsized constant array parameter.
      if (at(TokenKind::LBracket) && peek(1).Kind == TokenKind::RBracket) {
        consume();
        consume();
        if (Ty.isBool())
          return err(TypeTok, "bool array parameters are not supported");
        Ty = Type::makeIntArray(-1);
      }
      Token NameTok = peek();
      if (Error E = expect(TokenKind::Identifier))
        return E;
      if (nameTaken(NameTok.Text) || Mutable->declaresLocally(NameTok.Text))
        return err(NameTok, "redefinition of '" + NameTok.Text + "'");
      Symbol *Sym =
          Mutable->create(SymbolKind::TemplateParam, NameTok.Text, Ty);
      Sym->Index = static_cast<int>(Mutable->Params.size());
      Mutable->Params.push_back(Sym);
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    if (!atEof())
      return err(peek(), "trailing tokens after parameter list");
    return Error::success();
  }

  Result<std::vector<SelectAst>> parseSelects() {
    std::vector<SelectAst> Out;
    if (atEof())
      return Out;
    for (;;) {
      Token NameTok = peek();
      if (Error E = expect(TokenKind::Identifier))
        return E;
      if (nameTaken(NameTok.Text))
        return err(NameTok, "select variable '" + NameTok.Text +
                                "' shadows an existing name");
      if (Error E = expect(TokenKind::Colon))
        return E;
      if (Error E = expect(TokenKind::KwInt))
        return E;
      if (Error E = expect(TokenKind::LBracket))
        return E;
      Result<ExprPtr> Lo = parseExpr();
      if (!Lo.ok())
        return Lo.takeError();
      if (Error E = expect(TokenKind::Comma))
        return E;
      Result<ExprPtr> Hi = parseExpr();
      if (!Hi.ok())
        return Hi.takeError();
      if (Error E = expect(TokenKind::RBracket))
        return E;
      if (!(*Lo)->Ty.isInt() || !(*Hi)->Ty.isInt())
        return err(NameTok, "select bounds must be int");
      SelectAst Sel;
      Symbol *Sym = Mutable->createScoped(SymbolKind::SelectVar, NameTok.Text,
                                          Type::makeInt());
      Sym->Index = static_cast<int>(Out.size());
      addToScope(Sym);
      Sel.Var = Sym;
      Sel.Lo = Lo.takeValue();
      Sel.Hi = Hi.takeValue();
      Out.push_back(std::move(Sel));
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    if (!atEof())
      return err(peek(), "trailing tokens after select bindings");
    return Out;
  }

  Result<SyncAst> parseSyncLabel() {
    SyncAst Out;
    if (atEof())
      return Out;
    Token NameTok = peek();
    if (Error E = expect(TokenKind::Identifier))
      return E;
    Symbol *S = lookupName(NameTok.Text);
    if (!S)
      return err(NameTok, "use of undeclared channel '" + NameTok.Text + "'");
    if (!S->Ty.isChan())
      return err(NameTok, "'" + NameTok.Text + "' is not a channel");
    Out.Chan = S;
    if (S->Ty.Kind == TypeKind::ChanArray) {
      if (Error E = expect(TokenKind::LBracket))
        return E;
      Result<ExprPtr> Idx = parseExpr();
      if (!Idx.ok())
        return Idx.takeError();
      if (Error E = expect(TokenKind::RBracket))
        return E;
      if (!(*Idx)->Ty.isInt())
        return err(NameTok, "channel index must be int");
      if (Error E = requirePure(**Idx, "channel index"))
        return E;
      Out.IndexExpr = Idx.takeValue();
    }
    if (tryConsume(TokenKind::Not) || tryConsume(TokenKind::Exclaim)) {
      Out.IsSend = true;
    } else if (tryConsume(TokenKind::Question)) {
      Out.IsSend = false;
    } else {
      return err(peek(), "expected '!' or '?' after channel");
    }
    if (!atEof())
      return err(peek(), "trailing tokens after synchronization label");
    return Out;
  }

  Result<UpdateAst> parseUpdateLabel() {
    UpdateAst Out;
    if (atEof())
      return Out;
    for (;;) {
      Result<StmtPtr> S = parseSimpleStmt(/*AllowEmpty=*/false);
      if (!S.ok())
        return S.takeError();
      StmtPtr St = S.takeValue();
      if (St->Kind == StmtKind::Assign && St->Target->Ty.isClock()) {
        Out.ClockResets.push_back(St->Target->Sym);
      } else {
        Out.Stmts.push_back(std::move(St));
      }
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    if (!atEof())
      return err(peek(), "trailing tokens after update");
    return Out;
  }

  Result<GuardAst> parseGuardLabel() {
    GuardAst Out;
    if (atEof())
      return Out;
    Result<ExprPtr> E = parseExpr();
    if (!E.ok())
      return E.takeError();
    if (!atEof())
      return err(peek(), "trailing tokens after guard");
    if (!(*E)->Ty.isBool())
      return err(peek(), "guard must be a bool expression, got " +
                             (*E)->Ty.str());
    if (Error Err = requirePure(**E, "guard"))
      return Err;
    // Split top-level conjuncts into clock atoms and the data part.
    ExprPtr Root = E.takeValue();
    Error SplitErr = Error::success();
    splitConjuncts(std::move(Root), [&](ExprPtr C) {
      if (C->ClockAtom == ClockAtomKind::Rel) {
        GuardAst::ClockRel Rel;
        Rel.Clock = C->Sym;
        Rel.Op = C->BOp;
        Rel.Bound = std::move(C->Children[1]);
        Out.Clocks.push_back(std::move(Rel));
        return;
      }
      if (C->ClockAtom == ClockAtomKind::Rate) {
        if (!SplitErr)
          SplitErr = Error::failure(formatString(
              "%d:%d: clock rate conditions are only allowed in invariants",
              C->Loc.Line, C->Loc.Col));
        return;
      }
      appendConjunct(Out.DataPart, std::move(C));
    });
    if (SplitErr)
      return SplitErr;
    return Out;
  }

  Result<InvariantAst> parseInvariantLabel() {
    InvariantAst Out;
    if (atEof())
      return Out;
    // Pre-pass: rewrite `c' ==` by marking the VarRef; handled inline via
    // parseExpr and the Prime token: the primary parser does not accept
    // Prime, so we scan conjunct-wise ourselves.
    Result<ExprPtr> E = parseInvariantExpr();
    if (!E.ok())
      return E.takeError();
    if (!atEof())
      return err(peek(), "trailing tokens after invariant");
    if (!(*E)->Ty.isBool())
      return err(peek(), "invariant must be a bool expression");
    if (Error Err = requirePure(**E, "invariant"))
      return Err;
    Error SplitErr = Error::success();
    splitConjuncts(E.takeValue(), [&](ExprPtr C) {
      if (C->ClockAtom == ClockAtomKind::Rel) {
        if (C->BOp != BinaryOp::Le && C->BOp != BinaryOp::Lt) {
          if (!SplitErr)
            SplitErr = Error::failure(formatString(
                "%d:%d: invariant clock conditions must be upper bounds "
                "('<=' or '<')",
                C->Loc.Line, C->Loc.Col));
          return;
        }
        InvariantAst::ClockUpper U;
        U.Clock = C->Sym;
        U.Strict = C->BOp == BinaryOp::Lt;
        U.Bound = std::move(C->Children[1]);
        Out.Uppers.push_back(std::move(U));
        return;
      }
      if (C->ClockAtom == ClockAtomKind::Rate) {
        InvariantAst::RateCond RC;
        RC.Clock = C->Sym;
        RC.Rate = std::move(C->Children[1]);
        Out.Rates.push_back(std::move(RC));
        return;
      }
      appendConjunct(Out.DataPart, std::move(C));
    });
    if (SplitErr)
      return SplitErr;
    return Out;
  }

  /// Like parseExpr but accepts `ident' == e` rate conjuncts.
  Result<ExprPtr> parseInvariantExpr() {
    // Handle rate atoms at conjunct boundaries: ident Prime EqEq expr.
    auto ParseOne = [&]() -> Result<ExprPtr> {
      if (at(TokenKind::Identifier) && peek(1).Kind == TokenKind::Prime) {
        Token NameTok = consume();
        consume(); // Prime.
        Symbol *S = lookupName(NameTok.Text);
        if (!S)
          return err(NameTok,
                     "use of undeclared identifier '" + NameTok.Text + "'");
        if (!S->Ty.isClock())
          return err(NameTok, "rate condition on non-clock '" +
                                  NameTok.Text + "'");
        if (Error E = expect(TokenKind::EqEq))
          return E;
        Result<ExprPtr> Rate = parseAdditive();
        if (!Rate.ok())
          return Rate;
        if (!(*Rate)->Ty.isInt())
          return err(NameTok, "clock rate must be an int expression");
        auto N = std::make_unique<Expr>();
        N->Kind = ExprKind::Binary;
        N->BOp = BinaryOp::Eq;
        N->Ty = Type::makeBool();
        N->Loc = NameTok.Loc;
        N->Sym = S;
        N->ClockAtom = ClockAtomKind::Rate;
        N->HasClockAtom = true;
        auto ClockRef = std::make_unique<Expr>();
        ClockRef->Kind = ExprKind::VarRef;
        ClockRef->Sym = S;
        ClockRef->Ty = Type::makeClock();
        ClockRef->Loc = NameTok.Loc;
        N->Children.push_back(std::move(ClockRef));
        N->Children.push_back(Rate.takeValue());
        return ExprPtr(std::move(N));
      }
      return parseEquality();
    };

    Result<ExprPtr> L = ParseOne();
    if (!L.ok())
      return L;
    while (at(TokenKind::AndAnd)) {
      Token Op = consume();
      Result<ExprPtr> R = ParseOne();
      if (!R.ok())
        return R;
      Result<ExprPtr> N =
          makeBinary(BinaryOp::And, Op, L.takeValue(), R.takeValue());
      if (!N.ok())
        return N;
      L = std::move(N);
    }
    return L;
  }

  /// Splits an && tree into conjuncts.
  template <typename Fn> void splitConjuncts(ExprPtr E, Fn &&Callback) {
    if (E->Kind == ExprKind::Binary && E->BOp == BinaryOp::And &&
        E->ClockAtom == ClockAtomKind::None && E->HasClockAtom) {
      ExprPtr L = std::move(E->Children[0]);
      ExprPtr R = std::move(E->Children[1]);
      splitConjuncts(std::move(L), Callback);
      splitConjuncts(std::move(R), Callback);
      return;
    }
    Callback(std::move(E));
  }

  /// Conjoins \p C onto \p Into.
  static void appendConjunct(ExprPtr &Into, ExprPtr C) {
    if (!Into) {
      Into = std::move(C);
      return;
    }
    auto N = std::make_unique<Expr>();
    N->Kind = ExprKind::Binary;
    N->BOp = BinaryOp::And;
    N->Ty = Type::makeBool();
    N->Loc = Into->Loc;
    N->Children.push_back(std::move(Into));
    N->Children.push_back(std::move(C));
    Into = std::move(N);
  }

  /// Rejects calls to state-writing functions (for guards/invariants).
  Error requirePure(const Expr &E, const char *What) const {
    if (E.Kind == ExprKind::Call && E.Sym && E.Sym->Func &&
        E.Sym->Func->WritesState)
      return Error::failure(formatString(
          "%d:%d: %s may not call '%s', which writes shared state",
          E.Loc.Line, E.Loc.Col, What, E.Sym->Name.c_str()));
    for (const ExprPtr &C : E.Children)
      if (Error Err = requirePure(*C, What))
        return Err;
    return Error::success();
  }

  struct RangeInfo {
    bool HasRange = false;
    int64_t Lo = 0;
    int64_t Hi = 0;
  };
  RangeInfo PendingRange;

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  Declarations *Mutable;
  const Declarations *Lookup;
  std::vector<std::unordered_map<std::string, Symbol *>> Scopes;
  FuncDecl *CurFunc = nullptr;
};

//===----------------------------------------------------------------------===//
// WritesState fixpoint
//===----------------------------------------------------------------------===//

bool exprCallsWriter(const Expr &E);

bool stmtWritesState(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Assign: {
    SymbolKind K = S.Target->Sym->Kind;
    if (K == SymbolKind::GlobalVar || K == SymbolKind::TemplateVar)
      return true;
    return (S.Value && exprCallsWriter(*S.Value)) ||
           exprCallsWriter(*S.Target);
  }
  case StmtKind::ExprStmt:
    return exprCallsWriter(*S.Value);
  default:
    break;
  }
  if (S.Value && exprCallsWriter(*S.Value))
    return true;
  if (S.Cond && exprCallsWriter(*S.Cond))
    return true;
  if (S.Then && stmtWritesState(*S.Then))
    return true;
  if (S.Else && stmtWritesState(*S.Else))
    return true;
  for (const StmtPtr &B : S.Body)
    if (stmtWritesState(*B))
      return true;
  return false;
}

bool exprCallsWriter(const Expr &E) {
  if (E.Kind == ExprKind::Call && E.Sym && E.Sym->Func &&
      E.Sym->Func->WritesState)
    return true;
  for (const ExprPtr &C : E.Children)
    if (exprCallsWriter(*C))
      return true;
  return false;
}

} // namespace

void swa::usl::computeWritesState(Declarations &Decls) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (FuncDecl *F : Decls.Funcs) {
      if (F->WritesState || !F->Body)
        continue;
      if (stmtWritesState(*F->Body)) {
        F->WritesState = true;
        Changed = true;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

static Result<std::vector<Token>> lexFor(std::string_view Source,
                                         const char *What) {
  Result<std::vector<Token>> Toks = lex(Source);
  if (!Toks.ok())
    return Toks.takeError().withContext(What);
  return Toks;
}

Error swa::usl::parseDeclarations(std::string_view Source, Declarations &Out,
                                  bool IsTemplate) {
  Result<std::vector<Token>> Toks = lexFor(Source, "declarations");
  if (!Toks.ok())
    return Toks.takeError();
  ParserImpl P(Toks.takeValue(), &Out, &Out);
  if (Error E = P.parseDeclBlock(IsTemplate))
    return E;
  computeWritesState(Out);
  return Error::success();
}

Error swa::usl::parseTemplateParams(std::string_view Source,
                                    Declarations &TemplateDecls) {
  Result<std::vector<Token>> Toks = lexFor(Source, "parameters");
  if (!Toks.ok())
    return Toks.takeError();
  ParserImpl P(Toks.takeValue(), &TemplateDecls, &TemplateDecls);
  return P.parseParamList();
}

Result<ExprPtr> swa::usl::parseBoolExpr(std::string_view Source,
                                        const Declarations &Decls) {
  Result<std::vector<Token>> Toks = lexFor(Source, "expression");
  if (!Toks.ok())
    return Toks.takeError();
  ParserImpl P(Toks.takeValue(), nullptr, &Decls);
  Result<ExprPtr> E = P.parseExpr();
  if (!E.ok())
    return E;
  if (Error Err = P.expectEof())
    return Err;
  if ((*E)->HasClockAtom)
    return Error::failure("clock conditions are not allowed here");
  if (!(*E)->Ty.isBool())
    return Error::failure("expected a bool expression, got " +
                          (*E)->Ty.str());
  return E;
}

Result<ExprPtr> swa::usl::parseIntExpr(std::string_view Source,
                                       const Declarations &Decls) {
  Result<std::vector<Token>> Toks = lexFor(Source, "expression");
  if (!Toks.ok())
    return Toks.takeError();
  ParserImpl P(Toks.takeValue(), nullptr, &Decls);
  Result<ExprPtr> E = P.parseExpr();
  if (!E.ok())
    return E;
  if (Error Err = P.expectEof())
    return Err;
  if ((*E)->HasClockAtom || !(*E)->Ty.isInt())
    return Error::failure("expected an int expression");
  return E;
}

Result<EdgeLabelsAst> swa::usl::parseEdgeLabels(std::string_view SelectSrc,
                                                std::string_view GuardSrc,
                                                std::string_view SyncSrc,
                                                std::string_view UpdateSrc,
                                                Declarations &TemplateDecls) {
  EdgeLabelsAst Out;

  // All four labels share one parser so the select scope is visible.
  // We lex each snippet separately and re-seed the parser's token stream.
  Result<std::vector<Token>> SelToks = lexFor(SelectSrc, "select");
  if (!SelToks.ok())
    return SelToks.takeError();
  ParserImpl SelP(SelToks.takeValue(), &TemplateDecls, &TemplateDecls);
  SelP.pushScope();
  Result<std::vector<SelectAst>> Selects = SelP.parseSelects();
  if (!Selects.ok())
    return Selects.takeError().withContext("select");
  Out.Selects = std::move(*Selects);

  auto WithSelectScope = [&](auto &&ParserRef) {
    ParserRef.pushScope();
    for (SelectAst &S : Out.Selects)
      ParserRef.addToScope(S.Var);
  };

  {
    Result<std::vector<Token>> Toks = lexFor(GuardSrc, "guard");
    if (!Toks.ok())
      return Toks.takeError();
    ParserImpl P(Toks.takeValue(), &TemplateDecls, &TemplateDecls);
    WithSelectScope(P);
    Result<GuardAst> G = P.parseGuardLabel();
    if (!G.ok())
      return G.takeError().withContext("guard");
    Out.Guard = std::move(*G);
  }
  {
    Result<std::vector<Token>> Toks = lexFor(SyncSrc, "sync");
    if (!Toks.ok())
      return Toks.takeError();
    ParserImpl P(Toks.takeValue(), &TemplateDecls, &TemplateDecls);
    WithSelectScope(P);
    Result<SyncAst> S = P.parseSyncLabel();
    if (!S.ok())
      return S.takeError().withContext("sync");
    Out.Sync = std::move(*S);
  }
  {
    Result<std::vector<Token>> Toks = lexFor(UpdateSrc, "update");
    if (!Toks.ok())
      return Toks.takeError();
    ParserImpl P(Toks.takeValue(), &TemplateDecls, &TemplateDecls);
    WithSelectScope(P);
    Result<UpdateAst> U = P.parseUpdateLabel();
    if (!U.ok())
      return U.takeError().withContext("update");
    Out.Update = std::move(*U);
  }
  return Out;
}

Result<InvariantAst> swa::usl::parseInvariant(std::string_view Source,
                                              const Declarations &Decls) {
  Result<std::vector<Token>> Toks = lexFor(Source, "invariant");
  if (!Toks.ok())
    return Toks.takeError();
  ParserImpl P(Toks.takeValue(), nullptr, &Decls);
  Result<InvariantAst> I = P.parseInvariantLabel();
  if (!I.ok())
    return I.takeError().withContext("invariant");
  return I;
}
