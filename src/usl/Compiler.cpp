//===- usl/Compiler.cpp - Bound USL trees -> bytecode -----------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Compiler.h"

#include "support/StringUtils.h"

using namespace swa;
using namespace swa::usl;

namespace {

class Compiler {
public:
  Result<Code> expr(const Expr &E) {
    if (Error Err = emitExpr(E))
      return Err;
    emit(Op::Halt);
    return std::move(Out);
  }

  Result<Code> stmts(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts)
      if (Error Err = emitStmt(*S))
        return Err;
    emit(Op::Halt);
    return std::move(Out);
  }

  Result<Code> function(const FuncDecl &F) {
    if (Error Err = emitStmt(*F.Body))
      return Err;
    if (F.RetTy.Kind == TypeKind::Void) {
      emit(Op::PushConst, 0, 0);
      emit(Op::Ret);
    } else {
      emit(Op::Trap);
    }
    return std::move(Out);
  }

private:
  size_t emit(Op O, int32_t A = 0, int64_t Imm = 0) {
    Out.push_back({O, A, Imm});
    return Out.size() - 1;
  }
  void patch(size_t At) {
    Out[At].A = static_cast<int32_t>(Out.size());
  }
  Error errAt(const SourceLoc &Loc, const char *Msg) {
    return Error::failure(
        formatString("%d:%d: %s", Loc.Line, Loc.Col, Msg));
  }

  Error emitExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
      emit(Op::PushConst, 0, E.Literal);
      return Error::success();

    case ExprKind::VarRef:
      switch (E.Ref) {
      case RefKind::Const:
        emit(Op::PushConst, 0, E.ConstValue);
        return Error::success();
      case RefKind::Store:
        emit(Op::LoadStore, E.Slot);
        return Error::success();
      case RefKind::Frame:
        emit(Op::LoadFrame, E.Slot);
        return Error::success();
      default:
        return errAt(E.Loc, "cannot compile an unbound reference");
      }

    case ExprKind::Index: {
      if (Error Err = emitExpr(*E.Children[0]))
        return Err;
      switch (E.Ref) {
      case RefKind::Store:
        emit(Op::LoadStoreArr, E.Slot, E.ArraySize);
        return Error::success();
      case RefKind::Frame:
        emit(Op::LoadFrameArr, E.Slot, E.ArraySize);
        return Error::success();
      case RefKind::ConstArray:
        emit(Op::LoadConstArr, E.Slot, E.ArraySize);
        return Error::success();
      default:
        return errAt(E.Loc, "cannot compile an unbound array reference");
      }
    }

    case ExprKind::Call: {
      if (E.FuncIndex < 0)
        return errAt(E.Loc, "cannot compile an unbound call");
      for (const ExprPtr &A : E.Children)
        if (Error Err = emitExpr(*A))
          return Err;
      emit(Op::Call, E.FuncIndex,
           static_cast<int64_t>(E.Children.size()));
      return Error::success();
    }

    case ExprKind::Unary:
      if (Error Err = emitExpr(*E.Children[0]))
        return Err;
      emit(E.UOp == UnaryOp::Neg ? Op::Neg : Op::Not);
      return Error::success();

    case ExprKind::Binary: {
      if (E.HasClockAtom)
        return errAt(E.Loc, "cannot compile a clock condition");
      // Short-circuit forms compile to jumps.
      if (E.BOp == BinaryOp::And || E.BOp == BinaryOp::Or) {
        bool IsAnd = E.BOp == BinaryOp::And;
        if (Error Err = emitExpr(*E.Children[0]))
          return Err;
        size_t J1 = emit(IsAnd ? Op::JmpIfZero : Op::JmpIfNZ);
        if (Error Err = emitExpr(*E.Children[1]))
          return Err;
        size_t J2 = emit(IsAnd ? Op::JmpIfZero : Op::JmpIfNZ);
        emit(Op::PushConst, 0, IsAnd ? 1 : 0);
        size_t JEnd = emit(Op::Jmp);
        patch(J1);
        patch(J2);
        emit(Op::PushConst, 0, IsAnd ? 0 : 1);
        patch(JEnd);
        return Error::success();
      }
      if (Error Err = emitExpr(*E.Children[0]))
        return Err;
      if (Error Err = emitExpr(*E.Children[1]))
        return Err;
      switch (E.BOp) {
      case BinaryOp::Add:
        emit(Op::Add);
        break;
      case BinaryOp::Sub:
        emit(Op::Sub);
        break;
      case BinaryOp::Mul:
        emit(Op::Mul);
        break;
      case BinaryOp::Div:
        emit(Op::Div);
        break;
      case BinaryOp::Rem:
        emit(Op::Rem);
        break;
      case BinaryOp::Lt:
        emit(Op::CmpLt);
        break;
      case BinaryOp::Le:
        emit(Op::CmpLe);
        break;
      case BinaryOp::Gt:
        emit(Op::CmpGt);
        break;
      case BinaryOp::Ge:
        emit(Op::CmpGe);
        break;
      case BinaryOp::Eq:
        emit(Op::CmpEq);
        break;
      case BinaryOp::Ne:
        emit(Op::CmpNe);
        break;
      case BinaryOp::Min:
      case BinaryOp::Max: {
        // No dedicated opcode: a < b ? a : b needs re-evaluation; the
        // folded library helpers never reach here unfolded.
        return errAt(E.Loc, "min/max are internal-only operators");
      }
      case BinaryOp::And:
      case BinaryOp::Or:
        break; // Handled above.
      }
      return Error::success();
    }

    case ExprKind::Ternary: {
      if (Error Err = emitExpr(*E.Children[0]))
        return Err;
      size_t JElse = emit(Op::JmpIfZero);
      if (Error Err = emitExpr(*E.Children[1]))
        return Err;
      size_t JEnd = emit(Op::Jmp);
      patch(JElse);
      if (Error Err = emitExpr(*E.Children[2]))
        return Err;
      patch(JEnd);
      return Error::success();
    }
    }
    return errAt(E.Loc, "unknown expression kind");
  }

  Error emitStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block:
      for (const StmtPtr &B : S.Body)
        if (Error Err = emitStmt(*B))
          return Err;
      return Error::success();

    case StmtKind::LocalDecl:
      if (S.Value) {
        if (Error Err = emitExpr(*S.Value))
          return Err;
        emit(Op::StoreFrame, S.DeclFrameSlot);
      } else {
        emit(Op::ZeroFrame, S.DeclFrameSlot, S.DeclFrameCount);
      }
      return Error::success();

    case StmtKind::Assign: {
      // Evaluation order matches the interpreter: source value first,
      // then the target index.
      if (Error Err = emitExpr(*S.Value))
        return Err;
      const Expr &T = *S.Target;
      bool IsArr = T.Kind == ExprKind::Index;
      if (IsArr)
        if (Error Err = emitExpr(*T.Children[0]))
          return Err;
      Op O;
      if (T.Ref == RefKind::Store) {
        if (IsArr)
          O = S.AOp == AssignOp::Set   ? Op::StoreStoreArr
              : S.AOp == AssignOp::Add ? Op::AddStoreArr
                                       : Op::SubStoreArr;
        else
          O = S.AOp == AssignOp::Set   ? Op::StoreStore
              : S.AOp == AssignOp::Add ? Op::AddStore
                                       : Op::SubStore;
      } else if (T.Ref == RefKind::Frame) {
        if (IsArr)
          O = S.AOp == AssignOp::Set   ? Op::StoreFrameArr
              : S.AOp == AssignOp::Add ? Op::AddFrameArr
                                       : Op::SubFrameArr;
        else
          O = S.AOp == AssignOp::Set   ? Op::StoreFrame
              : S.AOp == AssignOp::Add ? Op::AddFrame
                                       : Op::SubFrame;
      } else {
        return errAt(S.Loc, "cannot compile an unbound assignment");
      }
      emit(O, T.Slot, IsArr ? T.ArraySize : 0);
      return Error::success();
    }

    case StmtKind::If: {
      if (Error Err = emitExpr(*S.Cond))
        return Err;
      size_t JElse = emit(Op::JmpIfZero);
      if (Error Err = emitStmt(*S.Then))
        return Err;
      if (S.Else) {
        size_t JEnd = emit(Op::Jmp);
        patch(JElse);
        if (Error Err = emitStmt(*S.Else))
          return Err;
        patch(JEnd);
      } else {
        patch(JElse);
      }
      return Error::success();
    }

    case StmtKind::While: {
      size_t Top = Out.size();
      if (Error Err = emitExpr(*S.Cond))
        return Err;
      size_t JEnd = emit(Op::JmpIfZero);
      if (Error Err = emitStmt(*S.Then))
        return Err;
      emit(Op::Jmp, static_cast<int32_t>(Top));
      patch(JEnd);
      return Error::success();
    }

    case StmtKind::For: {
      if (Error Err = emitStmt(*S.Body[0])) // Init.
        return Err;
      size_t Top = Out.size();
      if (Error Err = emitExpr(*S.Cond))
        return Err;
      size_t JEnd = emit(Op::JmpIfZero);
      if (Error Err = emitStmt(*S.Then))
        return Err;
      if (Error Err = emitStmt(*S.Body[1])) // Step.
        return Err;
      emit(Op::Jmp, static_cast<int32_t>(Top));
      patch(JEnd);
      return Error::success();
    }

    case StmtKind::Return:
      if (S.Value) {
        if (Error Err = emitExpr(*S.Value))
          return Err;
      } else {
        emit(Op::PushConst, 0, 0);
      }
      emit(Op::Ret);
      return Error::success();

    case StmtKind::ExprStmt:
      if (Error Err = emitExpr(*S.Value))
        return Err;
      emit(Op::Pop);
      return Error::success();
    }
    return errAt(S.Loc, "unknown statement kind");
  }

  Code Out;
};

} // namespace

Result<Code> swa::usl::compileExpr(const Expr &E) {
  return Compiler().expr(E);
}

Result<Code> swa::usl::compileStmts(const std::vector<StmtPtr> &Stmts) {
  return Compiler().stmts(Stmts);
}

Result<Code> swa::usl::compileFunction(const FuncDecl &F) {
  return Compiler().function(F);
}
