//===- usl/Ast.h - USL abstract syntax tree ---------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The USL AST: expressions, statements, and declarations. Nodes carry a
/// Kind tag for switch-based dispatch (no RTTI, per the coding standards).
///
/// The same AST serves two phases:
///   * after parsing + sema, references point to Symbol objects and carry
///     types;
///   * after binding (template instantiation), a *cloned* tree additionally
///     carries concrete resolutions: absolute store slots for shared
///     variables, folded constants for template parameters, frame slots for
///     function locals, and function-table indices for calls.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_AST_H
#define SWA_USL_AST_H

#include "usl/Token.h"
#include "usl/Type.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace swa {
namespace usl {

struct FuncDecl;

//===----------------------------------------------------------------------===//
// Symbols
//===----------------------------------------------------------------------===//

enum class SymbolKind {
  GlobalConst,   ///< Global constant (scalar or array); values folded.
  GlobalVar,     ///< Shared state variable in the network store.
  GlobalClock,   ///< Clock declared in network declarations.
  Channel,       ///< Channel or channel array.
  Function,      ///< Global or template-local function.
  TemplateParam, ///< Formal parameter of a template (int / int array / chan).
  TemplateVar,   ///< Template-local state variable (one copy per instance).
  TemplateClock, ///< Template-local clock (one copy per instance).
  FuncParam,     ///< Function formal parameter (frame slot).
  FuncLocal,     ///< Function local variable (frame slot).
  SelectVar,     ///< Edge select binding (frame slot).
};

/// A named entity. Symbols are owned by the Declarations (or Template) that
/// introduced them and referenced by pointer from AST nodes.
struct Symbol {
  SymbolKind Kind;
  std::string Name;
  Type Ty;
  /// Category-relative index: declaration order for vars/clocks/channels,
  /// frame slot for FuncParam/FuncLocal/SelectVar.
  int Index = -1;
  /// Folded values for GlobalConst (size 1 for scalars).
  std::vector<int64_t> ConstValues;
  /// Broadcast flag for channels.
  bool Broadcast = false;
  /// Body for Function symbols.
  FuncDecl *Func = nullptr;
  /// Optional declared value range for int variables (int[lo,hi] x).
  bool HasRange = false;
  int64_t RangeLo = 0;
  int64_t RangeHi = 0;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  BoolLit,
  VarRef,
  Index,
  Call,
  Unary,
  Binary,
  Ternary,
};

enum class UnaryOp { Neg, Not };

/// Marks boolean nodes that involve clocks. Such atoms may appear only as
/// top-level conjuncts of guards/invariants; the parser's entry points split
/// them out of the expression tree.
enum class ClockAtomKind {
  None,
  Rel,  ///< `clock <op> int-expr` (guards and invariant upper bounds).
  Rate, ///< `clock' == int-expr` (stopwatch rate condition in invariants).
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
  Min, // Internal: used by folded library helpers.
  Max,
};

/// How a (cloned, bound) reference resolves at run time.
enum class RefKind {
  Unresolved, ///< Pre-bind state.
  Const,      ///< Folded constant scalar (in ConstValue).
  ConstArray, ///< Folded constant array (index into instance const table).
  Store,      ///< Absolute slot(s) in the network variable store.
  Frame,      ///< Slot in the current evaluation frame.
  ClockRef,   ///< Absolute clock index (only in clock contexts).
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  Type Ty;
  SourceLoc Loc;

  // IntLit / BoolLit.
  int64_t Literal = 0;

  // VarRef / Index / Call: the referenced symbol (null after folding).
  Symbol *Sym = nullptr;

  // Post-bind resolution for VarRef / Index.
  RefKind Ref = RefKind::Unresolved;
  int64_t ConstValue = 0; ///< RefKind::Const.
  int Slot = -1;          ///< Store slot / frame slot / clock index /
                          ///< const-table index (ConstArray) / array base.
  int ArraySize = 0;      ///< Bound size for array references.

  // Index: Children[0] = index expression.
  // Call:  Children = arguments. Post-bind, FuncIndex selects the resolved
  //        function in the instance function table.
  int FuncIndex = -1;

  // Unary/Binary/Ternary operands live in Children:
  //   Unary:   [operand]
  //   Binary:  [lhs, rhs]
  //   Ternary: [cond, then, else]
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;

  /// Clock involvement marker; see ClockAtomKind. For an atom node, Sym is
  /// the clock symbol, BOp the relation, Children[0] the integer bound.
  /// HasClockAtom propagates up through `&&` nodes.
  ClockAtomKind ClockAtom = ClockAtomKind::None;
  bool HasClockAtom = false;

  std::vector<ExprPtr> Children;

  static ExprPtr makeInt(int64_t V, SourceLoc Loc = {}) {
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::IntLit;
    E->Ty = Type::makeInt();
    E->Literal = V;
    E->Loc = Loc;
    return E;
  }
  static ExprPtr makeBool(bool V, SourceLoc Loc = {}) {
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::BoolLit;
    E->Ty = Type::makeBool();
    E->Literal = V ? 1 : 0;
    E->Loc = Loc;
    return E;
  }
};

/// Deep copy of an expression tree (resolutions included).
ExprPtr cloneExpr(const Expr &E);

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Block,
  LocalDecl,
  Assign,
  If,
  While,
  For,
  Return,
  ExprStmt,
};

enum class AssignOp { Set, Add, Sub };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  // Block: Body. For: Body[0]=init stmt, Body[1]=step stmt, then Cond and
  // LoopBody. While: Cond + LoopBody. If: Cond, Then, Else(optional).
  std::vector<StmtPtr> Body;

  // LocalDecl: declared symbol + optional Value (init). After binding the
  // frame slot/extent are copied here so that evaluation never touches the
  // Symbol (whose owning Declarations may not outlive the bound network).
  Symbol *DeclSym = nullptr;
  int DeclFrameSlot = -1;
  int DeclFrameCount = 1;

  // Assign: Target (VarRef or Index lvalue) + Value.
  AssignOp AOp = AssignOp::Set;
  ExprPtr Target;

  // Assign init / Return value / ExprStmt expression / LocalDecl init.
  ExprPtr Value;

  // If / While / For condition.
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else;
};

/// Deep copy of a statement tree.
StmtPtr cloneStmt(const Stmt &S);

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

/// A USL function definition.
struct FuncDecl {
  Symbol *Sym = nullptr;
  Type RetTy;
  std::vector<Symbol *> Params; ///< Frame slots 0..N-1.
  int FrameSize = 0;            ///< Params + all locals.
  StmtPtr Body;
  /// True if the function (transitively) writes shared state; such
  /// functions may not be called from guards or invariants.
  bool WritesState = false;
};

} // namespace usl
} // namespace swa

#endif // SWA_USL_AST_H
