//===- usl/Bytecode.h - Bytecode for bound USL code -------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact stack-machine bytecode for *bound* USL expressions,
/// statements and functions. Guard/update evaluation dominates simulation
/// time; compiling the bound trees once per network removes the
/// tree-walking overhead from the hot loop (see bench_engine for the
/// interpreter-vs-VM ablation).
///
/// The machine is a conventional operand-stack design:
///  * data values are int64;
///  * store/frame/constant-array accesses carry the base slot in A and
///    the (bounds-checked) element count in Imm;
///  * control flow uses absolute jump targets within one Code object;
///  * Call invokes another compiled function by function-table index.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_BYTECODE_H
#define SWA_USL_BYTECODE_H

#include <cstdint>
#include <vector>

namespace swa {
namespace usl {

enum class Op : uint8_t {
  PushConst,     ///< push Imm
  LoadStore,     ///< push Store[A]
  LoadStoreArr,  ///< idx = pop; push Store[A + idx]   (0 <= idx < Imm)
  LoadFrame,     ///< push Frame[A]
  LoadFrameArr,  ///< idx = pop; push Frame[A + idx]
  LoadConstArr,  ///< idx = pop; push ConstArrays[A][idx]
  StoreStore,    ///< Store[A] = pop
  AddStore,      ///< Store[A] += pop
  SubStore,      ///< Store[A] -= pop
  StoreStoreArr, ///< idx = pop; val = pop; Store[A + idx] = val
  AddStoreArr,   ///< idx = pop; val = pop; Store[A + idx] += val
  SubStoreArr,   ///< idx = pop; val = pop; Store[A + idx] -= val
  StoreFrame,    ///< Frame[A] = pop
  AddFrame,      ///< Frame[A] += pop
  SubFrame,      ///< Frame[A] -= pop
  StoreFrameArr, ///< idx = pop; val = pop; Frame[A + idx] = val
  AddFrameArr,   ///< idx = pop; val = pop; Frame[A + idx] += val
  SubFrameArr,   ///< idx = pop; val = pop; Frame[A + idx] -= val
  ZeroFrame,     ///< Frame[A .. A+Imm) = 0
  // Arithmetic/logic (operands popped right-then-left, result pushed).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Neg,
  Not,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  CmpEq,
  CmpNe,
  // Control flow.
  Jmp,       ///< pc = A
  JmpIfZero, ///< if (pop == 0) pc = A
  JmpIfNZ,   ///< if (pop != 0) pc = A
  Pop,
  Call, ///< A = function index, Imm = argument count
  Ret,  ///< return with the value on top of the stack
  Halt, ///< end of a top-level expression/update; result (if any) on top
  Trap, ///< non-void function fell off the end (model error)
};

struct Insn {
  Op Code;
  int32_t A = 0;
  int64_t Imm = 0;
};

/// One compiled unit; empty means "not compiled" (fall back to the
/// tree-walking interpreter).
using Code = std::vector<Insn>;

} // namespace usl
} // namespace swa

#endif // SWA_USL_BYTECODE_H
