//===- usl/Vm.h - Bytecode virtual machine ----------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the bytecode of Bytecode.h against the same EvalContext the
/// tree-walking interpreter uses (store, constant arrays, frame stack,
/// write log, step budget). Function calls resolve through a code table
/// parallel to the context's function table.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_VM_H
#define SWA_USL_VM_H

#include "usl/Bytecode.h"
#include "usl/Interp.h"

namespace swa {
namespace usl {

/// Runs one compiled unit. \p FrameBase addresses the current frame in
/// Ctx.FrameStack (select values for edge code). \p FuncCode holds the
/// compiled body of every function in Ctx.FuncTable.
///
/// \returns the value left on the stack by Halt (0 when the unit left
/// none, e.g. update code).
int64_t runCode(const Code &C, const std::vector<Code> &FuncCode,
                EvalContext &Ctx, size_t FrameBase);

} // namespace usl
} // namespace swa

#endif // SWA_USL_VM_H
