//===- usl/Parser.h - USL parser and type checker ---------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for USL. Parsing, name resolution and type
/// checking happen in one pass: every returned AST node is typed and its
/// references point at Symbol objects from the supplied Declarations.
///
/// Entry points cover the different syntactic roles a snippet can play in an
/// automaton template: declaration blocks, template parameter lists, edge
/// select/guard/sync/update labels and location invariants.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_PARSER_H
#define SWA_USL_PARSER_H

#include "support/Error.h"
#include "usl/Ast.h"
#include "usl/Decls.h"

#include <string_view>

namespace swa {
namespace usl {

/// A guard split into its data part and clock comparisons.
///
/// USL follows UPPAAL's restriction: clock conditions may only occur as
/// top-level conjuncts of a guard/invariant, each of the form
/// `clock <op> int-expression`.
struct GuardAst {
  ExprPtr DataPart; ///< Boolean expression over variables; null means true.
  struct ClockRel {
    Symbol *Clock = nullptr;
    BinaryOp Op = BinaryOp::Ge; ///< Lt/Le/Gt/Ge/Eq.
    ExprPtr Bound;
  };
  std::vector<ClockRel> Clocks;
};

/// A location invariant: data conjuncts, clock upper bounds, and stopwatch
/// rate conditions (`c' == rate-expression`).
struct InvariantAst {
  ExprPtr DataPart; ///< Null means true.
  struct ClockUpper {
    Symbol *Clock = nullptr;
    bool Strict = false; ///< True for `<`, false for `<=`.
    ExprPtr Bound;
  };
  std::vector<ClockUpper> Uppers;
  struct RateCond {
    Symbol *Clock = nullptr;
    ExprPtr Rate; ///< Integer expression; 0 stops the clock, nonzero runs.
  };
  std::vector<RateCond> Rates;
};

/// A synchronization label: `chan!`, `chan?`, `chan[expr]!`, `chan[expr]?`.
struct SyncAst {
  Symbol *Chan = nullptr; ///< Null for an empty (internal) label.
  ExprPtr IndexExpr;      ///< Null for scalar channels.
  bool IsSend = false;
};

/// One `name : int[lo, hi]` select binding.
struct SelectAst {
  Symbol *Var = nullptr; ///< SelectVar symbol; Index = position in list.
  ExprPtr Lo;
  ExprPtr Hi;
};

/// An update label: a sequence of assignments / calls, with clock resets
/// separated out (clocks may only be assigned the constant 0).
struct UpdateAst {
  std::vector<StmtPtr> Stmts;    ///< Data assignments and calls, in order.
  std::vector<Symbol *> ClockResets;
};

/// All labels of one edge, parsed together so the select bindings are in
/// scope for the guard, sync index and update.
struct EdgeLabelsAst {
  std::vector<SelectAst> Selects;
  GuardAst Guard;
  SyncAst Sync;
  UpdateAst Update;
};

/// Parses a block of declarations into \p Out.
///
/// \p IsTemplate selects between global declarations (vars become
/// GlobalVar...) and template-local ones (TemplateVar...). Channels may only
/// be declared globally.
Error parseDeclarations(std::string_view Source, Declarations &Out,
                        bool IsTemplate);

/// Parses a template formal parameter list, e.g.
/// `int partId, int nTasks, int[] wcet, bool tracing`.
/// Parameters are registered in \p TemplateDecls.
Error parseTemplateParams(std::string_view Source,
                          Declarations &TemplateDecls);

/// Parses a bare boolean expression (no clocks allowed) in the scope of
/// \p Decls. Used for rate conditions and tests.
Result<ExprPtr> parseBoolExpr(std::string_view Source,
                              const Declarations &Decls);

/// Parses a bare integer expression in the scope of \p Decls.
Result<ExprPtr> parseIntExpr(std::string_view Source,
                             const Declarations &Decls);

/// Parses the four labels of an edge.
Result<EdgeLabelsAst> parseEdgeLabels(std::string_view SelectSrc,
                                      std::string_view GuardSrc,
                                      std::string_view SyncSrc,
                                      std::string_view UpdateSrc,
                                      Declarations &TemplateDecls);

/// Parses a location invariant.
Result<InvariantAst> parseInvariant(std::string_view Source,
                                    const Declarations &Decls);

/// Recomputes FuncDecl::WritesState for \p Decls (and, transitively, uses
/// final values for parent-scope functions). Must run after a declaration
/// block has been fully parsed and before guards referencing its functions
/// are parsed.
void computeWritesState(Declarations &Decls);

/// Attempts to fold \p E to a constant. Returns failure when the expression
/// references runtime state.
Result<int64_t> foldConst(const Expr &E);

} // namespace usl
} // namespace swa

#endif // SWA_USL_PARSER_H
