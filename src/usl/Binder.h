//===- usl/Binder.h - Template instantiation binding ------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Binder turns type-checked USL trees into *bound* trees ready for
/// evaluation, implementing the parametric-automaton instantiation of the
/// paper's Algorithm 1 at the expression level:
///
///  * template parameters are replaced by the constants supplied at
///    instantiation (scalars fold into literals; arrays become entries of
///    the instance constant table);
///  * shared variables (global and template-local) resolve to absolute
///    slots of the flat network store — each template instance receives a
///    fresh copy of its local variables;
///  * clocks resolve to absolute clock indices;
///  * function references resolve to indices into the network function
///    table; template-local functions are cloned and bound per instance.
///
/// One Binder is used per automaton instance; it starts from a shared
/// "global" binder holding the bindings of the network declarations.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_BINDER_H
#define SWA_USL_BINDER_H

#include "support/Error.h"
#include "usl/Ast.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace swa {
namespace usl {

/// Shared destination tables owned by the network being built.
struct BindTarget {
  std::vector<std::vector<int64_t>> ConstArrays;
  std::vector<std::unique_ptr<FuncDecl>> OwnedFuncs;
  std::vector<const FuncDecl *> FuncTable;
};

class Binder {
public:
  explicit Binder(BindTarget &Target) : Target(Target) {}

  /// Copies the symbol maps of \p Global (network declarations) as the
  /// starting point for a template-instance binder.
  Binder(BindTarget &Target, const Binder &Global)
      : Target(Target), StoreMap(Global.StoreMap),
        ClockMap(Global.ClockMap), ParamMap(Global.ParamMap),
        FuncMap(Global.FuncMap) {}

  /// Declares that \p Sym (a state variable) lives at store \p Slot.
  void mapStore(const Symbol *Sym, int Slot) { StoreMap[Sym] = Slot; }

  /// Declares that clock symbol \p Sym is absolute clock \p Index.
  void mapClock(const Symbol *Sym, int Index) { ClockMap[Sym] = Index; }

  /// Binds a template parameter to constant values (size 1 for scalars).
  void mapParam(const Symbol *Sym, std::vector<int64_t> Values) {
    ParamMap[Sym] = std::move(Values);
  }

  /// Clones and binds an expression tree.
  Result<ExprPtr> bindExpr(const Expr &E);

  /// Clones and binds a statement tree.
  Result<StmtPtr> bindStmt(const Stmt &S);

  /// Returns the absolute clock index for \p Sym.
  Result<int> clockIndex(const Symbol *Sym) const;

  /// Returns (binding if needed) the function-table index of \p F.
  Result<int> bindFunc(const FuncDecl *F);

  /// Convenience: binds and constant-folds an int expression.
  Result<int64_t> bindAndFold(const Expr &E);

  /// The BindTarget::ConstArrays slots this binder interned for array
  /// parameters and const arrays, keyed by symbol. Slots are
  /// per-instance (internConstArray never dedupes across binders), so a
  /// caller may patch `ConstArrays[slot]` to retarget one instance
  /// without affecting any other — the basis of window rebinding for
  /// model reuse. Only symbols actually referenced by the bound body
  /// appear here.
  const std::unordered_map<const Symbol *, int> &constArraySlots() const {
    return ConstArrayMap;
  }

private:
  int internConstArray(const std::vector<int64_t> &Values);

  BindTarget &Target;
  std::unordered_map<const Symbol *, int> StoreMap;
  std::unordered_map<const Symbol *, int> ClockMap;
  std::unordered_map<const Symbol *, std::vector<int64_t>> ParamMap;
  std::unordered_map<const FuncDecl *, int> FuncMap;
  std::unordered_map<const Symbol *, int> ConstArrayMap;
};

} // namespace usl
} // namespace swa

#endif // SWA_USL_BINDER_H
