//===- usl/Disasm.h - Bytecode disassembler ---------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders compiled bytecode to readable text, one instruction per line
/// with absolute jump targets. Debugging aid for the compiler and VM.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_DISASM_H
#define SWA_USL_DISASM_H

#include "usl/Bytecode.h"

#include <string>

namespace swa {
namespace usl {

/// Mnemonic of one opcode.
const char *opName(Op O);

/// Full listing of \p C.
std::string disassemble(const Code &C);

} // namespace usl
} // namespace swa

#endif // SWA_USL_DISASM_H
