//===- usl/Lexer.h - USL lexer ----------------------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for USL. Supports //-style and /**/-style comments.
/// The lexer is infallible except for unterminated comments and unknown
/// characters, which produce an error token stream terminated early.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_LEXER_H
#define SWA_USL_LEXER_H

#include "support/Error.h"
#include "usl/Token.h"

#include <string_view>
#include <vector>

namespace swa {
namespace usl {

/// Tokenizes an entire USL snippet.
///
/// \returns the token vector (always terminated with an Eof token) or a
/// failure describing the first lexical error with its position.
Result<std::vector<Token>> lex(std::string_view Source);

} // namespace usl
} // namespace swa

#endif // SWA_USL_LEXER_H
