//===- usl/Binder.cpp - Template instantiation binding ---------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Binder.h"

#include "support/StringUtils.h"
#include "usl/Parser.h"

using namespace swa;
using namespace swa::usl;

int Binder::internConstArray(const std::vector<int64_t> &Values) {
  Target.ConstArrays.push_back(Values);
  return static_cast<int>(Target.ConstArrays.size() - 1);
}

Result<int> Binder::clockIndex(const Symbol *Sym) const {
  auto It = ClockMap.find(Sym);
  if (It == ClockMap.end())
    return Error::failure("unbound clock '" + Sym->Name + "'");
  return It->second;
}

Result<int> Binder::bindFunc(const FuncDecl *F) {
  auto It = FuncMap.find(F);
  if (It != FuncMap.end())
    return It->second;
  // Reserve the slot before binding the body so direct recursion resolves.
  auto Bound = std::make_unique<FuncDecl>();
  Bound->Sym = F->Sym;
  Bound->RetTy = F->RetTy;
  Bound->Params = F->Params;
  Bound->FrameSize = F->FrameSize;
  Bound->WritesState = F->WritesState;
  FuncDecl *BoundRaw = Bound.get();
  Target.OwnedFuncs.push_back(std::move(Bound));
  Target.FuncTable.push_back(BoundRaw);
  int Index = static_cast<int>(Target.FuncTable.size() - 1);
  FuncMap[F] = Index;

  assert(F->Body && "binding a function without a body");
  Result<StmtPtr> Body = bindStmt(*F->Body);
  if (!Body.ok())
    return Body.takeError().withContext("in function '" + F->Sym->Name +
                                        "'");
  BoundRaw->Body = Body.takeValue();
  return Index;
}

Result<ExprPtr> Binder::bindExpr(const Expr &E) {
  ExprPtr Out = cloneExpr(E);
  // Bind children first (clone already copied them; rebind in place).
  for (ExprPtr &C : Out->Children) {
    Result<ExprPtr> B = bindExpr(*C);
    if (!B.ok())
      return B;
    C = B.takeValue();
  }

  auto ErrAt = [&](const std::string &Msg) {
    return Error::failure(formatString("%d:%d: %s", E.Loc.Line, E.Loc.Col,
                                       Msg.c_str()));
  };

  switch (Out->Kind) {
  case ExprKind::VarRef: {
    const Symbol *S = Out->Sym;
    assert(S && "unresolved VarRef at bind time");
    switch (S->Kind) {
    case SymbolKind::GlobalVar:
    case SymbolKind::TemplateVar: {
      auto It = StoreMap.find(S);
      if (It == StoreMap.end())
        return ErrAt("unbound variable '" + S->Name + "'");
      Out->Ref = RefKind::Store;
      Out->Slot = It->second;
      Out->ArraySize = S->Ty.isArray() ? S->Ty.Size : 1;
      break;
    }
    case SymbolKind::TemplateParam: {
      auto It = ParamMap.find(S);
      if (It == ParamMap.end())
        return ErrAt("unbound template parameter '" + S->Name + "'");
      if (S->Ty.isArray()) {
        auto CIt = ConstArrayMap.find(S);
        int CA;
        if (CIt == ConstArrayMap.end()) {
          CA = internConstArray(It->second);
          ConstArrayMap[S] = CA;
        } else {
          CA = CIt->second;
        }
        Out->Ref = RefKind::ConstArray;
        Out->Slot = CA;
        Out->ArraySize = static_cast<int>(It->second.size());
      } else {
        if (It->second.size() != 1)
          return ErrAt("scalar parameter '" + S->Name +
                       "' bound to an array value");
        // Fold to a literal.
        if (S->Ty.isBool())
          return Expr::makeBool(It->second[0] != 0, Out->Loc);
        return Expr::makeInt(It->second[0], Out->Loc);
      }
      break;
    }
    case SymbolKind::GlobalConst: {
      // Scalar consts are folded by the parser; arrays flow through Index.
      if (!S->Ty.isArray())
        return Expr::makeInt(S->ConstValues[0], Out->Loc);
      auto CIt = ConstArrayMap.find(S);
      int CA;
      if (CIt == ConstArrayMap.end()) {
        CA = internConstArray(S->ConstValues);
        ConstArrayMap[S] = CA;
      } else {
        CA = CIt->second;
      }
      Out->Ref = RefKind::ConstArray;
      Out->Slot = CA;
      Out->ArraySize = static_cast<int>(S->ConstValues.size());
      break;
    }
    case SymbolKind::FuncParam:
    case SymbolKind::FuncLocal:
    case SymbolKind::SelectVar:
      Out->Ref = RefKind::Frame;
      Out->Slot = S->Index;
      Out->ArraySize = S->Ty.isArray() ? S->Ty.Size : 1;
      break;
    case SymbolKind::GlobalClock:
    case SymbolKind::TemplateClock: {
      Result<int> CI = clockIndex(S);
      if (!CI.ok())
        return CI.takeError();
      Out->Ref = RefKind::ClockRef;
      Out->Slot = *CI;
      break;
    }
    case SymbolKind::Channel:
    case SymbolKind::Function:
      return ErrAt("'" + S->Name + "' cannot be used as a value");
    }
    break;
  }
  case ExprKind::Index: {
    const Symbol *S = Out->Sym;
    assert(S && "unresolved Index at bind time");
    // Resolve the base exactly like a VarRef would.
    Expr BaseRef;
    BaseRef.Kind = ExprKind::VarRef;
    BaseRef.Sym = Out->Sym;
    BaseRef.Ty = S->Ty;
    BaseRef.Loc = Out->Loc;
    Result<ExprPtr> Base = bindExpr(BaseRef);
    if (!Base.ok())
      return Base;
    Out->Ref = (*Base)->Ref;
    Out->Slot = (*Base)->Slot;
    Out->ArraySize = (*Base)->ArraySize;
    if (Out->Ref != RefKind::Store && Out->Ref != RefKind::ConstArray &&
        Out->Ref != RefKind::Frame)
      return ErrAt("cannot index '" + S->Name + "'");
    // Fold constant indexing of constant arrays.
    if (Out->Ref == RefKind::ConstArray) {
      Result<int64_t> Idx = foldConst(*Out->Children[0]);
      if (Idx.ok()) {
        if (*Idx < 0 || *Idx >= Out->ArraySize)
          return ErrAt(formatString("constant index %lld out of bounds "
                                    "(array size %d)",
                                    static_cast<long long>(*Idx),
                                    Out->ArraySize));
        const std::vector<int64_t> &Values =
            Target.ConstArrays[static_cast<size_t>(Out->Slot)];
        return Expr::makeInt(Values[static_cast<size_t>(*Idx)], Out->Loc);
      }
    }
    break;
  }
  case ExprKind::Call: {
    assert(Out->Sym && Out->Sym->Func && "unresolved call at bind time");
    Result<int> FI = bindFunc(Out->Sym->Func);
    if (!FI.ok())
      return FI.takeError();
    Out->FuncIndex = *FI;
    break;
  }
  default:
    break;
  }

  // Post-bind folding of pure arithmetic.
  if (!Out->HasClockAtom && Out->Kind != ExprKind::Call &&
      Out->Kind != ExprKind::VarRef) {
    Result<int64_t> V = foldConst(*Out);
    if (V.ok()) {
      if (Out->Ty.isBool())
        return Expr::makeBool(*V != 0, Out->Loc);
      if (Out->Ty.isInt())
        return Expr::makeInt(*V, Out->Loc);
    }
  }
  return Out;
}

Result<StmtPtr> Binder::bindStmt(const Stmt &S) {
  StmtPtr Out = cloneStmt(S);
  if (Out->Kind == StmtKind::LocalDecl) {
    // Copy the frame extent out of the Symbol: bound trees must be usable
    // after the template's declarations are gone.
    Out->DeclFrameSlot = S.DeclSym->Index;
    Out->DeclFrameCount =
        S.DeclSym->Ty.isArray() ? S.DeclSym->Ty.Size : 1;
    Out->DeclSym = nullptr;
  }
  if (Out->Target) {
    Result<ExprPtr> B = bindExpr(*Out->Target);
    if (!B.ok())
      return B.takeError();
    Out->Target = B.takeValue();
  }
  if (Out->Value) {
    Result<ExprPtr> B = bindExpr(*Out->Value);
    if (!B.ok())
      return B.takeError();
    Out->Value = B.takeValue();
  }
  if (Out->Cond) {
    Result<ExprPtr> B = bindExpr(*Out->Cond);
    if (!B.ok())
      return B.takeError();
    Out->Cond = B.takeValue();
  }
  if (Out->Then) {
    Result<StmtPtr> B = bindStmt(*Out->Then);
    if (!B.ok())
      return B;
    Out->Then = B.takeValue();
  }
  if (Out->Else) {
    Result<StmtPtr> B = bindStmt(*Out->Else);
    if (!B.ok())
      return B;
    Out->Else = B.takeValue();
  }
  for (StmtPtr &B : Out->Body) {
    Result<StmtPtr> R = bindStmt(*B);
    if (!R.ok())
      return R;
    B = R.takeValue();
  }
  return Out;
}

Result<int64_t> Binder::bindAndFold(const Expr &E) {
  Result<ExprPtr> B = bindExpr(E);
  if (!B.ok())
    return B.takeError();
  return foldConst(**B);
}
