//===- usl/Interp.h - Evaluation of bound USL trees -------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tree-walking evaluator for *bound* USL expressions and statements (see
/// Binder.h). Evaluation reads/writes the network's flat variable store;
/// writes are appended to an optional write log that the simulator uses for
/// dependency-based dirty tracking.
///
/// Runtime errors (out-of-bounds indices, division by zero, runaway
/// recursion or loops) are programming errors in a model; they print a
/// message and abort. Models from this repository's library are verified
/// never to trigger them.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_INTERP_H
#define SWA_USL_INTERP_H

#include "usl/Ast.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace swa {
namespace usl {

/// Shared evaluation state: the variable store, instance constant arrays,
/// the resolved function table, and the reusable frame stack.
struct EvalContext {
  std::vector<int64_t> *Store = nullptr;
  const std::vector<std::vector<int64_t>> *ConstArrays = nullptr;
  const std::vector<const FuncDecl *> *FuncTable = nullptr;
  /// When non-null, every written store slot is appended here.
  std::vector<int32_t> *WriteLog = nullptr;

  /// Frame stack shared by nested calls; FrameBase offsets index into it.
  std::vector<int64_t> FrameStack;
  int CallDepth = 0;
  /// Remaining statement/expression step budget for one top-level
  /// evaluation; reset by the engine before each guard/update.
  int64_t StepBudget = 0;
};

/// Default per-evaluation step budget.
inline constexpr int64_t DefaultStepBudget = 1 << 22;

/// Maximum call nesting depth.
inline constexpr int MaxCallDepth = 64;

/// Evaluates a bound expression. \p FrameBase is the offset of the current
/// frame within Ctx.FrameStack (select values for edge expressions, the
/// callee frame inside function bodies).
int64_t evalExpr(const Expr &E, EvalContext &Ctx, size_t FrameBase);

/// Executes a bound statement sequence (an update label or function body
/// fragment).
void execStmts(const std::vector<StmtPtr> &Stmts, EvalContext &Ctx,
               size_t FrameBase);

/// Computes, per function of a (growing) function table, the set of store
/// slots it may transitively read. Used to build the simulator's variable
/// watch lists. Array accesses with constant indices contribute a single
/// slot; dynamic indices conservatively contribute the whole array.
///
/// The collector is incremental: refresh() processes only functions added
/// to the table since the last call (running the recursion fixpoint over
/// that suffix), so per-instance cost during network construction stays
/// proportional to the instance's own functions.
class ReadSetCollector {
public:
  explicit ReadSetCollector(const std::vector<const FuncDecl *> &FuncTable);

  /// Processes newly appended functions.
  void refresh();

  /// Adds every store slot \p E may read to \p Slots (deduplicated set
  /// semantics are the caller's concern; slots may repeat).
  void collect(const Expr &E, std::vector<int32_t> &Slots) const;
  void collect(const Stmt &S, std::vector<int32_t> &Slots) const;

private:
  void scanExpr(const Expr &E, std::vector<int32_t> &Slots) const;
  void scanStmt(const Stmt &S, std::vector<int32_t> &Slots) const;

  const std::vector<const FuncDecl *> &FuncTable;
  std::vector<std::vector<int32_t>> FuncReads;
};

} // namespace usl
} // namespace swa

#endif // SWA_USL_INTERP_H
