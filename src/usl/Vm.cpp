//===- usl/Vm.cpp - Bytecode virtual machine ---------------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Vm.h"

#include <cstdio>
#include <cstdlib>

using namespace swa;
using namespace swa::usl;

namespace {

[[noreturn]] void fatalVm(const char *Msg) {
  std::fprintf(stderr, "swa-sched: fatal bytecode execution error: %s\n",
               Msg);
  std::abort();
}

struct CallRecord {
  const Code *C;
  size_t PC;
  size_t FrameBase;
};

} // namespace

int64_t swa::usl::runCode(const Code &TopCode,
                          const std::vector<Code> &FuncCode,
                          EvalContext &Ctx, size_t FrameBase) {
  // Local operand stack; sized generously for model code. Using a local
  // array keeps the hot loop free of vector bookkeeping.
  int64_t Stack[256];
  size_t SP = 0;
  auto Push = [&](int64_t V) {
    if (SP >= 256)
      fatalVm("operand stack overflow");
    Stack[SP++] = V;
  };
  auto Pop = [&]() -> int64_t {
    if (SP == 0)
      fatalVm("operand stack underflow");
    return Stack[--SP];
  };

  std::vector<CallRecord> Calls;
  const Code *C = &TopCode;
  size_t PC = 0;
  size_t FB = FrameBase;

  std::vector<int64_t> &Store = *Ctx.Store;
  std::vector<int64_t> &Frame = Ctx.FrameStack;

  for (;;) {
    if (--Ctx.StepBudget < 0)
      fatalVm("evaluation step budget exhausted (runaway loop in a model "
              "function?)");
    if (PC >= C->size())
      fatalVm("program counter out of range");
    const Insn &I = (*C)[PC++];
    switch (I.Code) {
    case Op::PushConst:
      Push(I.Imm);
      break;
    case Op::LoadStore:
      Push(Store[static_cast<size_t>(I.A)]);
      break;
    case Op::LoadStoreArr: {
      int64_t Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm)
        fatalVm("array index out of bounds");
      Push(Store[static_cast<size_t>(I.A + Idx)]);
      break;
    }
    case Op::LoadFrame:
      Push(Frame[FB + static_cast<size_t>(I.A)]);
      break;
    case Op::LoadFrameArr: {
      int64_t Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm)
        fatalVm("array index out of bounds");
      Push(Frame[FB + static_cast<size_t>(I.A + Idx)]);
      break;
    }
    case Op::LoadConstArr: {
      int64_t Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm)
        fatalVm("constant array index out of bounds");
      Push((*Ctx.ConstArrays)[static_cast<size_t>(I.A)]
                             [static_cast<size_t>(Idx)]);
      break;
    }
    case Op::StoreStore:
    case Op::AddStore:
    case Op::SubStore: {
      int64_t V = Pop();
      size_t Slot = static_cast<size_t>(I.A);
      if (I.Code == Op::StoreStore)
        Store[Slot] = V;
      else if (I.Code == Op::AddStore)
        Store[Slot] += V;
      else
        Store[Slot] -= V;
      if (Ctx.WriteLog)
        Ctx.WriteLog->push_back(I.A);
      break;
    }
    case Op::StoreStoreArr:
    case Op::AddStoreArr:
    case Op::SubStoreArr: {
      int64_t Idx = Pop();
      int64_t V = Pop();
      if (Idx < 0 || Idx >= I.Imm)
        fatalVm("array index out of bounds in assignment");
      size_t Slot = static_cast<size_t>(I.A + Idx);
      if (I.Code == Op::StoreStoreArr)
        Store[Slot] = V;
      else if (I.Code == Op::AddStoreArr)
        Store[Slot] += V;
      else
        Store[Slot] -= V;
      if (Ctx.WriteLog)
        Ctx.WriteLog->push_back(static_cast<int32_t>(Slot));
      break;
    }
    case Op::StoreFrame:
      Frame[FB + static_cast<size_t>(I.A)] = Pop();
      break;
    case Op::AddFrame:
      Frame[FB + static_cast<size_t>(I.A)] += Pop();
      break;
    case Op::SubFrame:
      Frame[FB + static_cast<size_t>(I.A)] -= Pop();
      break;
    case Op::StoreFrameArr:
    case Op::AddFrameArr:
    case Op::SubFrameArr: {
      int64_t Idx = Pop();
      int64_t V = Pop();
      if (Idx < 0 || Idx >= I.Imm)
        fatalVm("array index out of bounds in assignment");
      size_t Slot = FB + static_cast<size_t>(I.A + Idx);
      if (I.Code == Op::StoreFrameArr)
        Frame[Slot] = V;
      else if (I.Code == Op::AddFrameArr)
        Frame[Slot] += V;
      else
        Frame[Slot] -= V;
      break;
    }
    case Op::ZeroFrame:
      for (int64_t K = 0; K < I.Imm; ++K)
        Frame[FB + static_cast<size_t>(I.A + K)] = 0;
      break;

    case Op::Add: {
      int64_t R = Pop();
      Stack[SP - 1] += R;
      break;
    }
    case Op::Sub: {
      int64_t R = Pop();
      Stack[SP - 1] -= R;
      break;
    }
    case Op::Mul: {
      int64_t R = Pop();
      Stack[SP - 1] *= R;
      break;
    }
    case Op::Div: {
      int64_t R = Pop();
      if (R == 0)
        fatalVm("division by zero");
      Stack[SP - 1] /= R;
      break;
    }
    case Op::Rem: {
      int64_t R = Pop();
      if (R == 0)
        fatalVm("remainder by zero");
      Stack[SP - 1] %= R;
      break;
    }
    case Op::Neg:
      Stack[SP - 1] = -Stack[SP - 1];
      break;
    case Op::Not:
      Stack[SP - 1] = Stack[SP - 1] == 0 ? 1 : 0;
      break;
    case Op::CmpLt: {
      int64_t R = Pop();
      Stack[SP - 1] = Stack[SP - 1] < R;
      break;
    }
    case Op::CmpLe: {
      int64_t R = Pop();
      Stack[SP - 1] = Stack[SP - 1] <= R;
      break;
    }
    case Op::CmpGt: {
      int64_t R = Pop();
      Stack[SP - 1] = Stack[SP - 1] > R;
      break;
    }
    case Op::CmpGe: {
      int64_t R = Pop();
      Stack[SP - 1] = Stack[SP - 1] >= R;
      break;
    }
    case Op::CmpEq: {
      int64_t R = Pop();
      Stack[SP - 1] = Stack[SP - 1] == R;
      break;
    }
    case Op::CmpNe: {
      int64_t R = Pop();
      Stack[SP - 1] = Stack[SP - 1] != R;
      break;
    }

    case Op::Jmp:
      PC = static_cast<size_t>(I.A);
      break;
    case Op::JmpIfZero:
      if (Pop() == 0)
        PC = static_cast<size_t>(I.A);
      break;
    case Op::JmpIfNZ:
      if (Pop() != 0)
        PC = static_cast<size_t>(I.A);
      break;
    case Op::Pop:
      (void)Pop();
      break;

    case Op::Call: {
      size_t FnIdx = static_cast<size_t>(I.A);
      if (FnIdx >= FuncCode.size() || FuncCode[FnIdx].empty())
        fatalVm("call to an uncompiled function");
      if (++Ctx.CallDepth > MaxCallDepth)
        fatalVm("call depth limit exceeded");
      const FuncDecl *F = (*Ctx.FuncTable)[FnIdx];
      size_t NArgs = static_cast<size_t>(I.Imm);
      size_t NewBase = Frame.size();
      Frame.resize(NewBase + static_cast<size_t>(F->FrameSize), 0);
      for (size_t K = 0; K < NArgs; ++K)
        Frame[NewBase + NArgs - 1 - K] = Pop();
      for (size_t K = NArgs; K < static_cast<size_t>(F->FrameSize); ++K)
        Frame[NewBase + K] = 0;
      Calls.push_back({C, PC, FB});
      C = &FuncCode[FnIdx];
      PC = 0;
      FB = NewBase;
      break;
    }
    case Op::Ret: {
      if (Calls.empty())
        fatalVm("return outside a function");
      int64_t V = Pop();
      Frame.resize(FB);
      --Ctx.CallDepth;
      CallRecord R = Calls.back();
      Calls.pop_back();
      C = R.C;
      PC = R.PC;
      FB = R.FrameBase;
      Push(V);
      break;
    }
    case Op::Halt:
      return SP > 0 ? Stack[SP - 1] : 0;
    case Op::Trap:
      fatalVm("non-void model function fell off the end");
    }
  }
}
