//===- usl/Decls.h - USL declaration sets -----------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Declarations object owns the symbols, variables, clocks, channels,
/// constants and functions introduced by one USL declaration block: either
/// the network-global declarations or the local declarations of one
/// automaton template. Template declarations chain to the global ones for
/// name lookup.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_DECLS_H
#define SWA_USL_DECLS_H

#include "support/Error.h"
#include "usl/Ast.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace swa {
namespace usl {

/// One declaration block (global or template-local).
class Declarations {
public:
  explicit Declarations(const Declarations *Parent = nullptr)
      : Parent(Parent) {}

  Declarations(const Declarations &) = delete;
  Declarations &operator=(const Declarations &) = delete;

  /// Looks a name up here and then in the parent chain.
  Symbol *lookup(const std::string &Name) const {
    auto It = ByName.find(Name);
    if (It != ByName.end())
      return It->second;
    return Parent ? Parent->lookup(Name) : nullptr;
  }

  /// True if \p Name is declared directly in this block (shadowing across
  /// blocks is rejected by the parser, so this is a redefinition check).
  bool declaresLocally(const std::string &Name) const {
    return ByName.count(Name) != 0;
  }

  /// Creates and registers a new symbol. The caller fills category vectors.
  Symbol *create(SymbolKind Kind, std::string Name, Type Ty) {
    auto S = std::make_unique<Symbol>();
    S->Kind = Kind;
    S->Name = std::move(Name);
    S->Ty = Ty;
    Symbol *Raw = S.get();
    OwnedSymbols.push_back(std::move(S));
    ByName[Raw->Name] = Raw;
    return Raw;
  }

  /// Creates a symbol that is owned here but *not* added to the name table
  /// (function params/locals and select vars live in scopes instead).
  Symbol *createScoped(SymbolKind Kind, std::string Name, Type Ty) {
    auto S = std::make_unique<Symbol>();
    S->Kind = Kind;
    S->Name = std::move(Name);
    S->Ty = Ty;
    Symbol *Raw = S.get();
    OwnedSymbols.push_back(std::move(S));
    return Raw;
  }

  FuncDecl *createFunc() {
    OwnedFuncs.push_back(std::make_unique<FuncDecl>());
    return OwnedFuncs.back().get();
  }

  const Declarations *parent() const { return Parent; }

  /// A state variable together with its (unfolded) initializer expressions.
  struct VarInit {
    Symbol *Sym = nullptr;
    /// One expression per element for arrays (may be shorter: the rest are
    /// zero); one expression or empty for scalars.
    std::vector<ExprPtr> Init;
  };

  std::vector<VarInit> Vars;       ///< GlobalVar / TemplateVar, decl order.
  std::vector<Symbol *> Clocks;    ///< GlobalClock / TemplateClock.
  std::vector<Symbol *> Channels;  ///< Channel symbols.
  std::vector<Symbol *> Consts;    ///< GlobalConst symbols.
  std::vector<Symbol *> Params;    ///< TemplateParam symbols (templates).
  std::vector<FuncDecl *> Funcs;   ///< Function definitions, decl order.

private:
  const Declarations *Parent;
  std::vector<std::unique_ptr<Symbol>> OwnedSymbols;
  std::vector<std::unique_ptr<FuncDecl>> OwnedFuncs;
  std::unordered_map<std::string, Symbol *> ByName;
};

} // namespace usl
} // namespace swa

#endif // SWA_USL_DECLS_H
