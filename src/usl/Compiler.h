//===- usl/Compiler.h - Bound USL trees -> bytecode -------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles bound USL trees (see Binder.h) to the bytecode of Bytecode.h.
/// Short-circuit operators, ternaries and loops compile to jumps; compound
/// assignments evaluate their source before the index, matching the
/// interpreter's evaluation order exactly (differential tests in
/// tests/VmTest.cpp enforce interpreter/VM agreement).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_USL_COMPILER_H
#define SWA_USL_COMPILER_H

#include "support/Error.h"
#include "usl/Ast.h"
#include "usl/Bytecode.h"

namespace swa {
namespace usl {

/// Compiles a bound data expression; the produced code ends with Halt and
/// leaves the value on the stack.
Result<Code> compileExpr(const Expr &E);

/// Compiles a bound statement list (an update label); ends with Halt.
Result<Code> compileStmts(const std::vector<StmtPtr> &Stmts);

/// Compiles a bound function body; every return path ends with Ret, and
/// falling off the end yields Ret 0 for void functions or Trap otherwise.
Result<Code> compileFunction(const FuncDecl &F);

} // namespace usl
} // namespace swa

#endif // SWA_USL_COMPILER_H
