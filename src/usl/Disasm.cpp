//===- usl/Disasm.cpp - Bytecode disassembler --------------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "usl/Disasm.h"

#include "support/StringUtils.h"

using namespace swa;
using namespace swa::usl;

const char *swa::usl::opName(Op O) {
  switch (O) {
  case Op::PushConst:
    return "push";
  case Op::LoadStore:
    return "ld.s";
  case Op::LoadStoreArr:
    return "ld.s[]";
  case Op::LoadFrame:
    return "ld.f";
  case Op::LoadFrameArr:
    return "ld.f[]";
  case Op::LoadConstArr:
    return "ld.k[]";
  case Op::StoreStore:
    return "st.s";
  case Op::AddStore:
    return "add.s";
  case Op::SubStore:
    return "sub.s";
  case Op::StoreStoreArr:
    return "st.s[]";
  case Op::AddStoreArr:
    return "add.s[]";
  case Op::SubStoreArr:
    return "sub.s[]";
  case Op::StoreFrame:
    return "st.f";
  case Op::AddFrame:
    return "add.f";
  case Op::SubFrame:
    return "sub.f";
  case Op::StoreFrameArr:
    return "st.f[]";
  case Op::AddFrameArr:
    return "add.f[]";
  case Op::SubFrameArr:
    return "sub.f[]";
  case Op::ZeroFrame:
    return "zero.f";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Rem:
    return "rem";
  case Op::Neg:
    return "neg";
  case Op::Not:
    return "not";
  case Op::CmpLt:
    return "clt";
  case Op::CmpLe:
    return "cle";
  case Op::CmpGt:
    return "cgt";
  case Op::CmpGe:
    return "cge";
  case Op::CmpEq:
    return "ceq";
  case Op::CmpNe:
    return "cne";
  case Op::Jmp:
    return "jmp";
  case Op::JmpIfZero:
    return "jz";
  case Op::JmpIfNZ:
    return "jnz";
  case Op::Pop:
    return "pop";
  case Op::Call:
    return "call";
  case Op::Ret:
    return "ret";
  case Op::Halt:
    return "halt";
  case Op::Trap:
    return "trap";
  }
  return "???";
}

std::string swa::usl::disassemble(const Code &C) {
  std::string Out;
  for (size_t PC = 0; PC < C.size(); ++PC) {
    const Insn &I = C[PC];
    Out += formatString("%4zu: %-8s", PC, opName(I.Code));
    switch (I.Code) {
    case Op::PushConst:
      Out += formatString(" %lld", static_cast<long long>(I.Imm));
      break;
    case Op::Jmp:
    case Op::JmpIfZero:
    case Op::JmpIfNZ:
      Out += formatString(" -> %d", I.A);
      break;
    case Op::Call:
      Out += formatString(" fn%d/%lld", I.A,
                          static_cast<long long>(I.Imm));
      break;
    case Op::LoadStoreArr:
    case Op::LoadFrameArr:
    case Op::LoadConstArr:
    case Op::StoreStoreArr:
    case Op::AddStoreArr:
    case Op::SubStoreArr:
    case Op::StoreFrameArr:
    case Op::AddFrameArr:
    case Op::SubFrameArr:
    case Op::ZeroFrame:
      Out += formatString(" %d (n=%lld)", I.A,
                          static_cast<long long>(I.Imm));
      break;
    case Op::LoadStore:
    case Op::LoadFrame:
    case Op::StoreStore:
    case Op::AddStore:
    case Op::SubStore:
    case Op::StoreFrame:
    case Op::AddFrame:
    case Op::SubFrame:
      Out += formatString(" %d", I.A);
      break;
    default:
      break;
    }
    Out += "\n";
  }
  return Out;
}
