//===- xml/Xml.h - Minimal XML reader/writer --------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free, non-validating XML subset parser and writer.
/// The paper's toolchain exchanges system configurations as XML files and
/// authors automata in UPPAAL's XML format; this module supports the
/// subset both need: elements, attributes, character data, comments, XML
/// declarations, CDATA sections and the five predefined entities. No
/// DTDs, namespaces or processing instructions beyond the prolog.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_XML_XML_H
#define SWA_XML_XML_H

#include "support/Error.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace swa {
namespace xml {

class Node;
using NodePtr = std::unique_ptr<Node>;

/// One XML element.
class Node {
public:
  std::string Tag;
  std::vector<std::pair<std::string, std::string>> Attrs;
  std::vector<NodePtr> Children;
  /// Concatenated character data of this element (entity-decoded,
  /// including CDATA), with child-element text excluded.
  std::string Text;

  /// Attribute value, or null when absent.
  const std::string *attr(std::string_view Name) const {
    for (const auto &[K, V] : Attrs)
      if (K == Name)
        return &V;
    return nullptr;
  }

  /// Attribute value or \p Default.
  std::string attrOr(std::string_view Name,
                     const std::string &Default) const {
    const std::string *V = attr(Name);
    return V ? *V : Default;
  }

  void setAttr(std::string Name, std::string Value) {
    Attrs.emplace_back(std::move(Name), std::move(Value));
  }

  /// First child element with the given tag, or null.
  const Node *child(std::string_view ChildTag) const {
    for (const NodePtr &C : Children)
      if (C->Tag == ChildTag)
        return C.get();
    return nullptr;
  }

  /// All child elements with the given tag.
  std::vector<const Node *> children(std::string_view ChildTag) const {
    std::vector<const Node *> Out;
    for (const NodePtr &C : Children)
      if (C->Tag == ChildTag)
        Out.push_back(C.get());
    return Out;
  }

  Node *addChild(std::string ChildTag) {
    Children.push_back(std::make_unique<Node>());
    Children.back()->Tag = std::move(ChildTag);
    return Children.back().get();
  }
};

/// Hard bounds enforced while parsing. Every limit violation is reported
/// as a structured Result error (with line:column), never as deep
/// recursion, unchecked growth, or integer overflow — the differential
/// campaign feeds this parser truncated and mutated documents, so "reject
/// cleanly" is part of the module's contract. The defaults are far above
/// anything the toolchain emits; lower them for hostile inputs.
struct ParseLimits {
  /// Maximum element nesting depth (parseElement recursion bound).
  size_t MaxDepth = 256;
  /// Maximum length of an element or attribute name, in bytes.
  size_t MaxNameLength = 1024;
  /// Maximum length of a single raw attribute value, in bytes.
  size_t MaxAttrValueLength = 1 << 20;
  /// Maximum accumulated character data across the whole document (text
  /// plus CDATA), in bytes.
  size_t MaxTextLength = 4 << 20;
  /// Maximum number of attributes on one element.
  size_t MaxAttrsPerElement = 256;
};

/// Parses a document; returns its root element.
Result<NodePtr> parse(std::string_view Source);

/// Parses a document under explicit resource bounds.
Result<NodePtr> parse(std::string_view Source, const ParseLimits &Limits);

/// Serializes \p Root (with an XML declaration and 2-space indentation).
std::string write(const Node &Root);

/// Escapes the five predefined entities for use in text content.
std::string escape(std::string_view Raw);

} // namespace xml
} // namespace swa

#endif // SWA_XML_XML_H
