//===- xml/Xml.cpp - Minimal XML reader/writer ------------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "xml/Xml.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace swa;
using namespace swa::xml;

std::string swa::xml::escape(std::string_view Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (char C : Raw) {
    switch (C) {
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '&':
      Out += "&amp;";
      break;
    case '"':
      Out += "&quot;";
      break;
    case '\'':
      Out += "&apos;";
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

namespace {

class XmlParser {
public:
  XmlParser(std::string_view Source, const ParseLimits &Limits)
      : Src(Source), Limits(Limits) {}

  Result<NodePtr> run() {
    skipProlog();
    Result<NodePtr> Root = parseElement();
    if (!Root.ok())
      return Root;
    skipMisc();
    if (Pos != Src.size())
      return errorHere("trailing content after the root element");
    return Root;
  }

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  bool lookingAt(std::string_view S) const {
    return Src.substr(Pos, S.size()) == S;
  }

  Error errorHere(const std::string &Msg) const {
    int Line = 1, Col = 1;
    for (size_t I = 0; I < Pos && I < Src.size(); ++I) {
      if (Src[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
    return Error::failure(
        formatString("xml:%d:%d: %s", Line, Col, Msg.c_str()));
  }

  void skipWs() {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
      ++Pos;
  }

  /// Skips whitespace, comments and the XML declaration before/after root.
  void skipMisc() {
    for (;;) {
      skipWs();
      if (lookingAt("<!--")) {
        size_t End = Src.find("-->", Pos + 4);
        Pos = End == std::string_view::npos ? Src.size() : End + 3;
        continue;
      }
      if (lookingAt("<?")) {
        size_t End = Src.find("?>", Pos + 2);
        Pos = End == std::string_view::npos ? Src.size() : End + 2;
        continue;
      }
      return;
    }
  }

  void skipProlog() { skipMisc(); }

  static bool isNameChar(char C) {
    return isIdentChar(C) || C == '-' || C == '.' || C == ':';
  }

  Result<std::string> parseName() {
    if (atEnd() || !(isIdentStart(peek()) || peek() == ':'))
      return errorHere("expected a name");
    std::string Name;
    while (!atEnd() && isNameChar(peek())) {
      if (Name.size() >= Limits.MaxNameLength)
        return errorHere(formatString("name exceeds the %zu-byte limit",
                                      Limits.MaxNameLength));
      Name.push_back(Src[Pos++]);
    }
    return Name;
  }

  Result<std::string> decodeEntities(std::string_view Raw) {
    std::string Out;
    Out.reserve(Raw.size());
    for (size_t I = 0; I < Raw.size();) {
      if (Raw[I] != '&') {
        Out.push_back(Raw[I++]);
        continue;
      }
      size_t Semi = Raw.find(';', I);
      if (Semi == std::string_view::npos)
        return errorHere("unterminated entity reference");
      std::string_view Ent = Raw.substr(I + 1, Semi - I - 1);
      if (Ent == "lt")
        Out.push_back('<');
      else if (Ent == "gt")
        Out.push_back('>');
      else if (Ent == "amp")
        Out.push_back('&');
      else if (Ent == "quot")
        Out.push_back('"');
      else if (Ent == "apos")
        Out.push_back('\'');
      else if (!Ent.empty() && Ent[0] == '#') {
        int64_t Code = 0;
        bool Hex = Ent.size() > 1 && (Ent[1] == 'x' || Ent[1] == 'X');
        for (size_t J = Hex ? 2 : 1; J < Ent.size(); ++J) {
          char C = Ent[J];
          int Digit;
          if (std::isdigit(static_cast<unsigned char>(C)))
            Digit = C - '0';
          else if (Hex && std::isxdigit(static_cast<unsigned char>(C)))
            Digit = std::tolower(C) - 'a' + 10;
          else
            return errorHere("malformed character reference");
          Code = Code * (Hex ? 16 : 10) + Digit;
          // Bail during accumulation: one more digit past the Unicode
          // ceiling and the multiply would overflow int64 (UB).
          if (Code > 0x10FFFF)
            return errorHere("character reference out of range");
        }
        if (Code <= 0)
          return errorHere("character reference out of range");
        // Encode as UTF-8.
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else if (Code < 0x10000) {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xF0 | (Code >> 18)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 12) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
      } else {
        return errorHere("unknown entity '&" + std::string(Ent) + ";'");
      }
      I = Semi + 1;
    }
    return Out;
  }

  /// Appends character data (text or CDATA) to \p N under the document-wide
  /// accumulation cap.
  Error appendText(Node &N, std::string_view Chunk) {
    TextBytes += Chunk.size();
    if (TextBytes > Limits.MaxTextLength)
      return errorHere(formatString(
          "character data exceeds the %zu-byte document limit",
          Limits.MaxTextLength));
    N.Text.append(Chunk);
    return Error::success();
  }

  Result<NodePtr> parseElement() {
    if (Depth >= Limits.MaxDepth)
      return errorHere(formatString("element nesting exceeds the depth "
                                    "limit of %zu",
                                    Limits.MaxDepth));
    ++Depth;
    Result<NodePtr> N = parseElementInner();
    --Depth;
    return N;
  }

  Result<NodePtr> parseElementInner() {
    if (!lookingAt("<"))
      return errorHere("expected an element");
    ++Pos;
    auto N = std::make_unique<Node>();
    Result<std::string> Tag = parseName();
    if (!Tag.ok())
      return Tag.takeError();
    N->Tag = Tag.takeValue();

    // Attributes.
    for (;;) {
      skipWs();
      if (atEnd())
        return errorHere("unterminated start tag");
      if (lookingAt("/>")) {
        Pos += 2;
        return NodePtr(std::move(N));
      }
      if (peek() == '>') {
        ++Pos;
        break;
      }
      if (N->Attrs.size() >= Limits.MaxAttrsPerElement)
        return errorHere(formatString(
            "element <%s> exceeds the limit of %zu attributes",
            N->Tag.c_str(), Limits.MaxAttrsPerElement));
      Result<std::string> AttrName = parseName();
      if (!AttrName.ok())
        return AttrName.takeError();
      skipWs();
      if (peek() != '=')
        return errorHere("expected '=' after attribute name");
      ++Pos;
      skipWs();
      char Quote = peek();
      if (Quote != '"' && Quote != '\'')
        return errorHere("expected a quoted attribute value");
      ++Pos;
      size_t End = Src.find(Quote, Pos);
      if (End == std::string_view::npos)
        return errorHere("unterminated attribute value");
      if (End - Pos > Limits.MaxAttrValueLength)
        return errorHere(formatString(
            "attribute value exceeds the %zu-byte limit",
            Limits.MaxAttrValueLength));
      Result<std::string> Value = decodeEntities(Src.substr(Pos, End - Pos));
      if (!Value.ok())
        return Value.takeError();
      Pos = End + 1;
      N->setAttr(AttrName.takeValue(), Value.takeValue());
    }

    // Content.
    for (;;) {
      if (atEnd())
        return errorHere("unterminated element <" + N->Tag + ">");
      if (lookingAt("</")) {
        Pos += 2;
        Result<std::string> Close = parseName();
        if (!Close.ok())
          return Close.takeError();
        if (*Close != N->Tag)
          return errorHere("mismatched closing tag </" + *Close +
                           "> for <" + N->Tag + ">");
        skipWs();
        if (peek() != '>')
          return errorHere("malformed closing tag");
        ++Pos;
        return NodePtr(std::move(N));
      }
      if (lookingAt("<!--")) {
        size_t End = Src.find("-->", Pos + 4);
        if (End == std::string_view::npos)
          return errorHere("unterminated comment");
        Pos = End + 3;
        continue;
      }
      if (lookingAt("<![CDATA[")) {
        size_t End = Src.find("]]>", Pos + 9);
        if (End == std::string_view::npos)
          return errorHere("unterminated CDATA section");
        if (Error E = appendText(*N, Src.substr(Pos + 9, End - Pos - 9)))
          return E;
        Pos = End + 3;
        continue;
      }
      if (peek() == '<') {
        Result<NodePtr> Child = parseElement();
        if (!Child.ok())
          return Child;
        N->Children.push_back(Child.takeValue());
        continue;
      }
      size_t Next = Src.find('<', Pos);
      if (Next == std::string_view::npos)
        Next = Src.size();
      Result<std::string> Text = decodeEntities(Src.substr(Pos, Next - Pos));
      if (!Text.ok())
        return Text.takeError();
      if (Error E = appendText(*N, *Text))
        return E;
      Pos = Next;
    }
  }

  std::string_view Src;
  const ParseLimits &Limits;
  size_t Pos = 0;
  size_t Depth = 0;
  /// Character data accumulated so far, document-wide.
  size_t TextBytes = 0;
};

void writeNode(const Node &N, std::string &Out, int Indent) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  Out += Pad;
  Out += '<';
  Out += N.Tag;
  for (const auto &[K, V] : N.Attrs) {
    Out += ' ';
    Out += K;
    Out += "=\"";
    Out += escape(V);
    Out += '"';
  }
  std::string_view Text = trim(N.Text);
  if (N.Children.empty() && Text.empty()) {
    Out += "/>\n";
    return;
  }
  Out += '>';
  if (!Text.empty())
    Out += escape(Text);
  if (!N.Children.empty()) {
    Out += '\n';
    for (const NodePtr &C : N.Children)
      writeNode(*C, Out, Indent + 1);
    Out += Pad;
  }
  Out += "</";
  Out += N.Tag;
  Out += ">\n";
}

} // namespace

Result<NodePtr> swa::xml::parse(std::string_view Source) {
  return XmlParser(Source, ParseLimits()).run();
}

Result<NodePtr> swa::xml::parse(std::string_view Source,
                                const ParseLimits &Limits) {
  return XmlParser(Source, Limits).run();
}

std::string swa::xml::write(const Node &Root) {
  std::string Out = "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  writeNode(Root, Out, 0);
  return Out;
}
