//===- models/ModelLibrary.cpp - IMA component automata library ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "models/ModelLibrary.h"

#include "support/StringUtils.h"

using namespace swa;
using namespace swa::models;
using sa::TemplateBuilder;

std::string swa::models::globalDeclsSource(int NumTasks, int NumPartitions,
                                           int NumLinks) {
  // Arrays must be non-empty; clamp the link table for link-free systems.
  int NL = NumLinks > 0 ? NumLinks : 1;
  return formatString(
      "const int NT = %d;\n"
      "const int NP = %d;\n"
      "const int NL = %d;\n"
      "int is_ready[NT];\n"
      "int is_failed[NT];\n"
      "int prio[NT];\n"
      "int deadline_abs[NT];\n"
      "int is_data_ready[NL];\n"
      "chan ready[NP];\n"
      "chan finished[NP];\n"
      "chan wakeup[NP];\n"
      "chan sleep[NP];\n"
      "chan exec[NT];\n"
      "chan preempt[NT];\n"
      "broadcast chan send[NT];\n"
      "broadcast chan deliver[NL];\n",
      NumTasks, NumPartitions, NL);
}

namespace {

Result<std::unique_ptr<sa::Template>>
buildTask(const usl::Declarations &Globals) {
  TemplateBuilder TB("Task", Globals);
  TB.params("int gid, int part, int wcet, int period, int deadline, "
            "int priority, int n_in, int[] in_links");
  TB.decls(
      "clock p; clock e;\n"
      "int jobidx = 0;\n"
      "bool inputs_ready() {\n"
      "  for (int i = 0; i < n_in; i++)\n"
      "    if (is_data_ready[in_links[i]] < jobidx + 1) return false;\n"
      "  return true;\n"
      "}\n"
      "void on_release() {\n"
      "  prio[gid] = priority;\n"
      "  deadline_abs[gid] = jobidx * period + deadline;\n"
      "}\n");

  // Job lifecycle. The execution stopwatch `e` advances only in Running;
  // the period clock `p` is reset at each release, so p == deadline marks
  // the absolute deadline and p == period the next release.
  TB.committed("Release")
      .location("AwaitData", "p <= deadline && e' == 0")
      .location("Ready", "p <= deadline && e' == 0")
      .location("Running", "e <= wcet && p <= deadline")
      .committed("Sending")
      .location("WaitNext", "p <= period && e' == 0")
      .initial("Release");

  TB.edge("Release", "Ready",
          {.Guard = "inputs_ready()", .Sync = "ready[part]!",
           .Update = "on_release(), is_ready[gid] = 1"});
  TB.edge("Release", "AwaitData",
          {.Guard = "!inputs_ready()", .Update = "on_release()"});
  TB.edge("AwaitData", "Ready",
          {.Guard = "inputs_ready() && p <= deadline - 1",
           .Sync = "ready[part]!", .Update = "is_ready[gid] = 1"});
  TB.edge("AwaitData", "WaitNext",
          {.Guard = "p >= deadline",
           .Update = "is_failed[gid] = 1, jobidx = jobidx + 1"});
  // Dispatch is refused from the deadline instant on ("a job that reaches
  // its deadline can not be executed anymore"): without this guard, an
  // interleaving could start a zero-length execution at exactly the
  // deadline, breaking trace determinism.
  TB.edge("Ready", "Running",
          {.Guard = "p <= deadline - 1", .Sync = "exec[gid]?"});
  TB.edge("Ready", "WaitNext",
          {.Guard = "p >= deadline", .Sync = "finished[part]!",
           .Update =
               "is_failed[gid] = 1, is_ready[gid] = 0, jobidx = jobidx + 1"});
  // Preemption is refused once the job's work is complete (e == wcet):
  // completion takes priority over a simultaneous window end or dispatch
  // decision, which is what makes the finished-time unique (§3: a job's
  // FIN happens exactly when its cumulative execution reaches the WCET).
  TB.edge("Running", "Ready",
          {.Guard = "e <= wcet - 1", .Sync = "preempt[gid]?"});
  TB.edge("Running", "Sending",
          {.Guard = "e >= wcet", .Sync = "finished[part]!",
           .Update = "is_ready[gid] = 0, jobidx = jobidx + 1"});
  TB.edge("Running", "WaitNext",
          {.Guard = "p >= deadline && e <= wcet - 1",
           .Sync = "finished[part]!",
           .Update =
               "is_failed[gid] = 1, is_ready[gid] = 0, jobidx = jobidx + 1"});
  TB.edge("Sending", "WaitNext", {.Sync = "send[gid]!"});
  TB.edge("WaitNext", "Release",
          {.Guard = "p >= period", .Update = "p = 0, e = 0"});
  // Dirty-tracking hint: inputs_ready() only reads this task's own input
  // links, not the whole delivery-counter table.
  TB.readElems("is_data_ready", "in_links", "n_in");
  return TB.build();
}

/// Shared scaffold of the three task schedulers: wakeup/sleep window
/// handling plus ready/finished bookkeeping; \p DeclSrc supplies pick()
/// and \p DecideEdges installs the algorithm-specific dispatch edges.
/// \p IdleInv is an extra invariant for the time-passing locations (used
/// by FPNPS to freeze its dispatch-age clock while the core is idle) and
/// \p WindowClearUpd / \p SleepUpd the updates of the window-end preempt
/// and sleep edges (FPNPS additionally resets that clock there).
void addSchedulerScaffold(TemplateBuilder &TB, const std::string &DeclSrc,
                          const std::string &IdleInv = "",
                          const std::string &WindowClearUpd = "cur = -1",
                          const std::string &SleepUpd = "") {
  TB.params("int part, int off, int nt");
  TB.decls("int cur = -1;\n" + DeclSrc +
           "void on_finished() {\n"
           "  if (cur >= 0) { if (is_ready[cur] == 0) cur = -1; }\n"
           "}\n");
  TB.location("Asleep", IdleInv)
      .location("Awake", IdleInv)
      .committed("Decide")
      .committed("Pausing")
      .initial("Asleep");

  TB.edge("Asleep", "Decide", {.Sync = "wakeup[part]?"});
  TB.edge("Asleep", "Asleep", {.Sync = "ready[part]?"});
  TB.edge("Asleep", "Asleep",
          {.Sync = "finished[part]?", .Update = "on_finished()"});

  TB.edge("Awake", "Decide", {.Sync = "ready[part]?"});
  TB.edge("Awake", "Decide",
          {.Sync = "finished[part]?", .Update = "on_finished()"});
  TB.edge("Awake", "Pausing", {.Sync = "sleep[part]?"});

  // Committed locations must stay receptive so that committed task chains
  // (release, completion) can always hand their signals over.
  TB.edge("Decide", "Decide", {.Sync = "ready[part]?"});
  TB.edge("Decide", "Decide",
          {.Sync = "finished[part]?", .Update = "on_finished()"});
  TB.edge("Pausing", "Pausing", {.Sync = "ready[part]?"});
  TB.edge("Pausing", "Pausing",
          {.Sync = "finished[part]?", .Update = "on_finished()"});

  // Window end: force the running job off the core, then sleep.
  TB.edge("Pausing", "Pausing",
          {.Guard = "cur != -1", .Sync = "preempt[cur]!",
           .Update = WindowClearUpd});
  TB.edge("Pausing", "Asleep", {.Guard = "cur == -1", .Update = SleepUpd});

  // Dirty-tracking hints: the scheduler only inspects its own partition's
  // slice of the per-task tables.
  TB.readRange("is_ready", "off", "nt");
  TB.readRange("prio", "off", "nt");
  TB.readRange("deadline_abs", "off", "nt");
}

Result<std::unique_ptr<sa::Template>>
buildFpps(const usl::Declarations &Globals) {
  TemplateBuilder TB("FppsScheduler", Globals);
  addSchedulerScaffold(
      TB,
      // Highest priority ready job; ties broken towards the lower task id.
      "int pick() {\n"
      "  int best = -1; int bp = 0;\n"
      "  for (int i = 0; i < nt; i++) {\n"
      "    int g = off + i;\n"
      "    if (is_ready[g] == 1) {\n"
      "      if (best == -1 || prio[g] > bp) { best = g; bp = prio[g]; }\n"
      "    }\n"
      "  }\n"
      "  return best;\n"
      "}\n");
  TB.edge("Decide", "Awake", {.Guard = "pick() == cur"});
  TB.edge("Decide", "Decide",
          {.Guard = "pick() != cur && cur != -1", .Sync = "preempt[cur]!",
           .Update = "cur = -1"});
  TB.edge("Decide", "Awake",
          {.Guard = "pick() != cur && cur == -1", .Sync = "exec[pick()]!",
           .Update = "cur = pick()"});
  return TB.build();
}

Result<std::unique_ptr<sa::Template>>
buildFpnps(const usl::Declarations &Globals) {
  TemplateBuilder TB("FpnpsScheduler", Globals);
  addSchedulerScaffold(
      TB,
      "clock z;\n"
      "int zrate() { if (cur == -1) return 0; return 1; }\n"
      "int pick() {\n"
      "  int best = -1; int bp = 0;\n"
      "  for (int i = 0; i < nt; i++) {\n"
      "    int g = off + i;\n"
      "    if (is_ready[g] == 1) {\n"
      "      if (best == -1 || prio[g] > bp) { best = g; bp = prio[g]; }\n"
      "    }\n"
      "  }\n"
      "  return best;\n"
      "}\n",
      // The dispatch-age stopwatch z must be a function of the observable
      // schedule, or its value would leak which same-instant interleaving
      // produced a state and re-break the determinism theorem the revocable
      // dispatch below restores: z runs only while a job holds the core
      // (frozen when cur == -1), is reset on the window-end edges (a
      // zero-length dispatch clobbered by the window end must converge
      // with the interleaving where the sleep wins and no dispatch
      // happens), and otherwise freezes at the completed chunk's length
      // on a job finish — an observable quantity in every case.
      /*IdleInv=*/"z' == zrate()",
      /*WindowClearUpd=*/"cur = -1, z = 0",
      /*SleepUpd=*/"z = 0");
  // Non-preemptive: a job that has started executing (z >= 1: time has
  // passed since its dispatch) is never displaced; only the window end in
  // Pausing removes it. Within the dispatch instant (z == 0) the decision
  // stays revocable — displacing a zero-progress job is free — so the job
  // left on the core is a pure function of the instant's ready set, not
  // of the order in which same-instant releases were processed. Without
  // this, two releases at the same instant race the dispatch and the
  // trace-determinism theorem fails for FPNPS (the MC census oracle in
  // src/difftest/ finds multiple final states).
  TB.edge("Decide", "Awake", {.Guard = "cur != -1 && z >= 1"});
  TB.edge("Decide", "Awake",
          {.Guard = "cur != -1 && z <= 0 && pick() == cur"});
  TB.edge("Decide", "Decide",
          {.Guard = "cur != -1 && z <= 0 && pick() != cur",
           .Sync = "preempt[cur]!", .Update = "cur = -1, z = 0"});
  TB.edge("Decide", "Awake", {.Guard = "cur == -1 && pick() == -1"});
  TB.edge("Decide", "Awake",
          {.Guard = "cur == -1 && pick() != -1", .Sync = "exec[pick()]!",
           .Update = "cur = pick(), z = 0"});
  return TB.build();
}

Result<std::unique_ptr<sa::Template>>
buildEdf(const usl::Declarations &Globals) {
  TemplateBuilder TB("EdfScheduler", Globals);
  addSchedulerScaffold(
      TB,
      // Earliest absolute deadline; ties broken towards the lower task id.
      "int pick() {\n"
      "  int best = -1; int bd = 0;\n"
      "  for (int i = 0; i < nt; i++) {\n"
      "    int g = off + i;\n"
      "    if (is_ready[g] == 1) {\n"
      "      if (best == -1 || deadline_abs[g] < bd) {\n"
      "        best = g; bd = deadline_abs[g];\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "  return best;\n"
      "}\n");
  TB.edge("Decide", "Awake", {.Guard = "pick() == cur"});
  TB.edge("Decide", "Decide",
          {.Guard = "pick() != cur && cur != -1", .Sync = "preempt[cur]!",
           .Update = "cur = -1"});
  TB.edge("Decide", "Awake",
          {.Guard = "pick() != cur && cur == -1", .Sync = "exec[pick()]!",
           .Update = "cur = pick()"});
  return TB.build();
}

Result<std::unique_ptr<sa::Template>>
buildCoreScheduler(const usl::Declarations &Globals) {
  TemplateBuilder TB("CoreScheduler", Globals);
  TB.params("int nw, int[] w_start, int[] w_end, int[] w_part, int hyper");
  TB.decls("clock h;\n"
           "int widx = 0;\n"
           "int nstart() { if (widx < nw) return w_start[widx]; "
           "return hyper; }\n");
  TB.location("Gap", "h <= nstart()")
      .location("InWin", "h <= w_end[widx]")
      .initial("Gap");
  TB.edge("Gap", "InWin",
          {.Guard = "widx < nw && h >= nstart()",
           .Sync = "wakeup[w_part[widx]]!"});
  TB.edge("InWin", "Gap",
          {.Guard = "h >= w_end[widx]", .Sync = "sleep[w_part[widx]]!",
           .Update = "widx = widx + 1"});
  TB.edge("Gap", "Gap",
          {.Guard = "widx >= nw && h >= hyper",
           .Update = "h = 0, widx = 0"});
  return TB.build();
}

Result<std::unique_ptr<sa::Template>>
buildVirtualLink(const usl::Declarations &Globals) {
  TemplateBuilder TB("VirtualLink", Globals);
  TB.params("int link, int src, int delay");
  TB.decls("clock d; int pending = 0;");
  TB.location("Idle")
      .location("Transfer", "d <= delay")
      .committed("Check")
      .initial("Idle");
  TB.edge("Idle", "Transfer", {.Sync = "send[src]?", .Update = "d = 0"});
  // A send arriving mid-transfer queues up (back-to-back messages).
  TB.edge("Transfer", "Transfer",
          {.Sync = "send[src]?", .Update = "pending = pending + 1"});
  TB.edge("Transfer", "Check",
          {.Guard = "d >= delay", .Sync = "deliver[link]!",
           .Update = "is_data_ready[link] = is_data_ready[link] + 1"});
  TB.edge("Check", "Transfer",
          {.Guard = "pending > 0",
           .Update = "pending = pending - 1, d = 0"});
  TB.edge("Check", "Idle", {.Guard = "pending == 0"});
  return TB.build();
}

} // namespace

Result<std::unique_ptr<ModelLibrary>>
ModelLibrary::create(const usl::Declarations &Globals) {
  std::unique_ptr<ModelLibrary> Lib(new ModelLibrary());

  auto Take = [](Result<std::unique_ptr<sa::Template>> R,
                 std::unique_ptr<sa::Template> &Into) -> Error {
    if (!R.ok())
      return R.takeError();
    Into = R.takeValue();
    return Error::success();
  };

  if (Error E = Take(buildTask(Globals), Lib->Task))
    return E;
  if (Error E = Take(buildFpps(Globals), Lib->Fpps))
    return E;
  if (Error E = Take(buildFpnps(Globals), Lib->Fpnps))
    return E;
  if (Error E = Take(buildEdf(Globals), Lib->Edf))
    return E;
  if (Error E = Take(buildCoreScheduler(Globals), Lib->CoreSched))
    return E;
  if (Error E = Take(buildVirtualLink(Globals), Lib->Link))
    return E;
  return Lib;
}

const sa::Template &ModelLibrary::scheduler(cfg::SchedulerKind K) const {
  switch (K) {
  case cfg::SchedulerKind::FPPS:
    return *Fpps;
  case cfg::SchedulerKind::FPNPS:
    return *Fpnps;
  case cfg::SchedulerKind::EDF:
    return *Edf;
  }
  return *Fpps;
}

void ModelLibrary::registerTemplate(std::unique_ptr<sa::Template> T) {
  Extra[T->name()] = std::move(T);
}

const sa::Template *ModelLibrary::byName(const std::string &Name) const {
  if (Name == Task->name())
    return Task.get();
  if (Name == Fpps->name())
    return Fpps.get();
  if (Name == Fpnps->name())
    return Fpnps.get();
  if (Name == Edf->name())
    return Edf.get();
  if (Name == CoreSched->name())
    return CoreSched.get();
  if (Name == Link->name())
    return Link.get();
  auto It = Extra.find(Name);
  return It == Extra.end() ? nullptr : It->second.get();
}
