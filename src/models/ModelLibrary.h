//===- models/ModelLibrary.h - IMA component automata library ---*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library of concrete automata types from §2.3 of the paper, each
/// implementing one base automata type of the general NSA:
///
///  * Task (T): job release each period, data-dependency wait, execution
///    with a stopwatch clock, preemption, completion, deadline handling,
///    output-data send after completion;
///  * FPPS / FPNPS / EDF task schedulers (TS): per-partition job
///    scheduling between wakeup/sleep window signals;
///  * Core scheduler (CS): drives the partition windows of one core over
///    the hyperperiod;
///  * Virtual link (L): delivers a message exactly at its worst-case
///    transfer delay, queueing back-to-back sends.
///
/// Templates are authored as USL source (the same role UPPAAL's editor
/// plays in the paper's toolchain) and compiled through the sa layer. The
/// shared-variable / channel interface of the general model is fixed by
/// globalDeclsSource(); instance construction (Algorithm 1) lives in
/// src/core.
///
/// Interface conventions (matching §2.3):
///  * is_ready[g] / is_failed[g] / prio[g] / deadline_abs[g] per task g;
///  * is_data_ready[h] is a monotone delivery counter per virtual link h —
///    job k of a receiver requires counter >= k+1 on all its input links;
///  * channels ready[p], finished[p], wakeup[p], sleep[p] per partition p;
///    exec[g], preempt[g], broadcast send[g] per task; broadcast deliver[h]
///    per link.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_MODELS_MODELLIBRARY_H
#define SWA_MODELS_MODELLIBRARY_H

#include "config/Config.h"
#include "sa/Template.h"

#include <map>
#include <memory>
#include <string>

namespace swa {
namespace models {

/// Returns the USL global declaration source defining the general model's
/// shared variables and channels for the given component counts.
std::string globalDeclsSource(int NumTasks, int NumPartitions,
                              int NumLinks);

/// The compiled component templates for one network build.
class ModelLibrary {
public:
  /// Compiles all standard templates against \p Globals (which must have
  /// been produced from globalDeclsSource()).
  static Result<std::unique_ptr<ModelLibrary>>
  create(const usl::Declarations &Globals);

  const sa::Template &task() const { return *Task; }
  const sa::Template &coreScheduler() const { return *CoreSched; }
  const sa::Template &virtualLink() const { return *Link; }

  /// The task-scheduler template for a scheduling algorithm kind.
  const sa::Template &scheduler(cfg::SchedulerKind K) const;

  /// Registers a user-supplied template (e.g. a custom scheduler parsed
  /// from the UPPAAL-like XML format); it becomes retrievable by name.
  void registerTemplate(std::unique_ptr<sa::Template> T);

  /// Looks up any template (standard or user-registered) by name, or null.
  const sa::Template *byName(const std::string &Name) const;

private:
  ModelLibrary() = default;

  std::unique_ptr<sa::Template> Task;
  std::unique_ptr<sa::Template> Fpps;
  std::unique_ptr<sa::Template> Fpnps;
  std::unique_ptr<sa::Template> Edf;
  std::unique_ptr<sa::Template> CoreSched;
  std::unique_ptr<sa::Template> Link;
  std::map<std::string, std::unique_ptr<sa::Template>> Extra;
};

} // namespace models
} // namespace swa

#endif // SWA_MODELS_MODELLIBRARY_H
