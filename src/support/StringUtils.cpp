//===- support/StringUtils.cpp - Small string helpers ---------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <limits>

using namespace swa;

std::string swa::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, ArgsCopy);
    Out.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Out;
}

std::string_view swa::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::vector<std::string> swa::split(std::string_view S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Out.emplace_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Out;
}

bool swa::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

bool swa::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

bool swa::parseInt64(std::string_view S, int64_t &Out) {
  S = trim(S);
  if (S.empty())
    return false;
  bool Negative = false;
  size_t I = 0;
  if (S[0] == '-' || S[0] == '+') {
    Negative = S[0] == '-';
    I = 1;
    if (I == S.size())
      return false;
  }
  int64_t Value = 0;
  for (; I < S.size(); ++I) {
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
    int Digit = S[I] - '0';
    if (Value > (std::numeric_limits<int64_t>::max() - Digit) / 10)
      return false;
    Value = Value * 10 + Digit;
  }
  Out = Negative ? -Value : Value;
  return true;
}

bool swa::parseUInt64(std::string_view S, uint64_t &Out) {
  S = trim(S);
  if (S.empty())
    return false;
  size_t I = 0;
  if (S[0] == '+') {
    I = 1;
    if (I == S.size())
      return false;
  }
  uint64_t Value = 0;
  for (; I < S.size(); ++I) {
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
    unsigned Digit = static_cast<unsigned>(S[I] - '0');
    if (Value > (std::numeric_limits<uint64_t>::max() - Digit) / 10)
      return false;
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}

std::string swa::join(const std::vector<std::string> &Pieces,
                      std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I != 0)
      Out.append(Sep);
    Out.append(Pieces[I]);
  }
  return Out;
}

bool swa::isIdentStart(char C) {
  return C == '_' || std::isalpha(static_cast<unsigned char>(C));
}

bool swa::isIdentChar(char C) {
  return C == '_' || std::isalnum(static_cast<unsigned char>(C));
}

bool swa::isIdentifier(std::string_view S) {
  if (S.empty() || !isIdentStart(S[0]))
    return false;
  for (char C : S.substr(1))
    if (!isIdentChar(C))
      return false;
  return true;
}
