//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the USL front-end, the XML layer and report
/// rendering: printf-style formatting into std::string, trimming, splitting,
/// and integer parsing with explicit failure reporting.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_STRINGUTILS_H
#define SWA_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swa {

/// printf-style formatting returning a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep; empty pieces are kept.
std::vector<std::string> split(std::string_view S, char Sep);

bool startsWith(std::string_view S, std::string_view Prefix);
bool endsWith(std::string_view S, std::string_view Suffix);

/// Parses a decimal (optionally negative) int64. Returns false on any
/// non-numeric content, empty input or overflow.
bool parseInt64(std::string_view S, int64_t &Out);

/// Parses an unsigned decimal integer (optional leading '+'); rejects
/// anything out of uint64 range. Used for RNG seeds, which routinely
/// exceed the int64 range.
bool parseUInt64(std::string_view S, uint64_t &Out);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string> &Pieces,
                 std::string_view Sep);

/// True for [A-Za-z_] and [A-Za-z0-9_] respectively.
bool isIdentStart(char C);
bool isIdentChar(char C);

/// True if \p S is a well-formed identifier.
bool isIdentifier(std::string_view S);

} // namespace swa

#endif // SWA_SUPPORT_STRINGUTILS_H
