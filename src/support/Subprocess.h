//===- support/Subprocess.h - Child-process spawning ------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork/exec child-process handle for the fleet coordinator
/// (schedtool::FleetSearch): spawn a worker, poll whether it still
/// runs, reap its exit status, or kill it. Deliberately tiny — no
/// pipes, no pty — because fleet workers communicate exclusively
/// through the exchange directory, never through stdio.
///
/// Exit status convention: a normal exit reports the exit code
/// (>= 0); a signal death reports the negated signal number (SIGKILL
/// -> -9). This keeps "crashed" trivially distinguishable from "failed
/// cleanly" in the coordinator's respawn policy.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_SUBPROCESS_H
#define SWA_SUPPORT_SUBPROCESS_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace swa {
namespace support {

class Subprocess {
public:
  Subprocess() = default;
  /// Kills (SIGKILL) and reaps a still-running child: a dropped handle
  /// must never leak a worker process or a zombie.
  ~Subprocess();

  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;
  Subprocess(Subprocess &&O) noexcept;
  Subprocess &operator=(Subprocess &&O) noexcept;

  /// Forks and execs \p Argv (Argv[0] resolved via PATH). \p ExtraEnv
  /// entries ("KEY=VALUE") are added to the child's environment on top
  /// of the parent's. An exec failure in the child surfaces as exit
  /// code 127 at the next wait(), matching the shell convention.
  Error start(const std::vector<std::string> &Argv,
              const std::vector<std::string> &ExtraEnv = {});

  /// True while the child has neither exited nor been reaped.
  /// Non-blocking; reaps eagerly, so a true->false transition makes
  /// exitCode() valid immediately.
  bool running();

  /// Blocks until the child exits, reaps it, and returns the status
  /// (exit code >= 0, or -signal). Returns the cached status when the
  /// child was already reaped; -1 when nothing was ever started.
  int wait();

  /// The reaped status (same convention as wait()); meaningless while
  /// running() is true.
  int exitCode() const { return Status; }

  /// Sends \p Sig to the child. No-op after the child was reaped.
  void kill(int Sig);

  /// OS process id; -1 when not started or already reaped+cleared.
  long pid() const { return Pid; }

  bool started() const { return Started; }

private:
  long Pid = -1;
  bool Started = false;
  bool Reaped = false;
  int Status = -1;
};

} // namespace support
} // namespace swa

#endif // SWA_SUPPORT_SUBPROCESS_H
