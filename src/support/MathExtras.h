//===- support/MathExtras.h - Integer math helpers --------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer helpers used throughout the model: gcd/lcm (the scheduling
/// hyperperiod is the lcm of all task periods), overflow-checked arithmetic
/// and ceiling division (used by the analytic response-time baseline).
///
/// Two tiers of time arithmetic are provided:
///
///  * **Checked** (`checkedAdd`/`checkedMul`/`checkedLcm`/`checkedCeilDiv`)
///    returns `Result<int64_t>`; any overflow or domain violation becomes a
///    structured `Error` in every build mode. Validation and analysis code
///    that faces untrusted configuration inputs must use these.
///  * **Saturating** (`saturatingAdd`/`saturatingMul`, and `lcm64`, which
///    saturates on overflow) clamps to the int64 range. Used where a
///    too-large value is about to be rejected anyway (e.g. a window bound
///    compared against a hyperperiod that `Config::validate` will refuse).
///
/// The plain helpers keep asserts for *programmer* errors (negative
/// operands where the call site guarantees positivity), but no longer rely
/// on `assert` to catch input-dependent overflow: overflow is either a
/// structured error (checked tier) or a defined saturation (saturating
/// tier) — never undefined behaviour under `NDEBUG`.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_MATHEXTRAS_H
#define SWA_SUPPORT_MATHEXTRAS_H

#include "support/Error.h"

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>

namespace swa {

/// Greatest common divisor of two non-negative values; gcd(0, x) == x.
inline int64_t gcd64(int64_t A, int64_t B) {
  assert(A >= 0 && B >= 0 && "gcd64 requires non-negative operands");
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Multiplies two int64 values, returning true on signed overflow.
inline bool mulOverflow64(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_mul_overflow(A, B, &Out);
}

/// Adds two int64 values, returning true on signed overflow.
inline bool addOverflow64(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_add_overflow(A, B, &Out);
}

/// Checked addition: overflow yields a structured Error.
inline Result<int64_t> checkedAdd(int64_t A, int64_t B) {
  int64_t Out;
  if (addOverflow64(A, B, Out))
    return Error::failure("integer overflow in add: " + std::to_string(A) +
                          " + " + std::to_string(B));
  return Out;
}

/// Checked multiplication: overflow yields a structured Error.
inline Result<int64_t> checkedMul(int64_t A, int64_t B) {
  int64_t Out;
  if (mulOverflow64(A, B, Out))
    return Error::failure("integer overflow in mul: " + std::to_string(A) +
                          " * " + std::to_string(B));
  return Out;
}

/// Checked least common multiple of two positive values. Non-positive
/// operands and int64 overflow both yield a structured Error.
inline Result<int64_t> checkedLcm(int64_t A, int64_t B) {
  if (A <= 0 || B <= 0)
    return Error::failure("lcm requires positive operands, got " +
                          std::to_string(A) + " and " + std::to_string(B));
  int64_t G = gcd64(A, B);
  int64_t Out;
  if (mulOverflow64(A / G, B, Out))
    return Error::failure("lcm overflows int64: lcm(" + std::to_string(A) +
                          ", " + std::to_string(B) + ")");
  return Out;
}

/// Checked ceiling division. A negative numerator or non-positive
/// denominator yields a structured Error; the result itself cannot
/// overflow.
inline Result<int64_t> checkedCeilDiv(int64_t A, int64_t B) {
  if (A < 0 || B <= 0)
    return Error::failure("ceilDiv requires A >= 0 and B > 0, got " +
                          std::to_string(A) + " / " + std::to_string(B));
  return A / B + (A % B != 0 ? 1 : 0);
}

/// Saturating addition: clamps to the int64 range instead of wrapping.
inline int64_t saturatingAdd(int64_t A, int64_t B) {
  int64_t Out;
  if (!addOverflow64(A, B, Out))
    return Out;
  return B > 0 ? std::numeric_limits<int64_t>::max()
               : std::numeric_limits<int64_t>::min();
}

/// Saturating multiplication: clamps to the int64 range instead of
/// wrapping.
inline int64_t saturatingMul(int64_t A, int64_t B) {
  int64_t Out;
  if (!mulOverflow64(A, B, Out))
    return Out;
  return (A > 0) == (B > 0) ? std::numeric_limits<int64_t>::max()
                            : std::numeric_limits<int64_t>::min();
}

/// Least common multiple of two positive values. Saturates at int64 max on
/// overflow (defined in all build modes); callers that must reject
/// overflowing inputs use checkedLcm / Config::checkedHyperperiod instead.
inline int64_t lcm64(int64_t A, int64_t B) {
  assert(A > 0 && B > 0 && "lcm64 requires positive operands");
  int64_t G = gcd64(A, B);
  int64_t Out;
  if (mulOverflow64(A / G, B, Out))
    return std::numeric_limits<int64_t>::max();
  return Out;
}

/// Ceiling division for non-negative numerator and positive denominator.
/// Computed without the classic `(A + B - 1)` trick so no intermediate can
/// overflow for any in-domain operands.
inline int64_t ceilDiv64(int64_t A, int64_t B) {
  assert(A >= 0 && B > 0 && "ceilDiv64 domain violation");
  return A / B + (A % B != 0 ? 1 : 0);
}

} // namespace swa

#endif // SWA_SUPPORT_MATHEXTRAS_H
