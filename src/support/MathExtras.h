//===- support/MathExtras.h - Integer math helpers --------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer helpers used throughout the model: gcd/lcm (the scheduling
/// hyperperiod is the lcm of all task periods), overflow-checked arithmetic
/// and ceiling division (used by the analytic response-time baseline).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_MATHEXTRAS_H
#define SWA_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace swa {

/// Greatest common divisor of two non-negative values; gcd(0, x) == x.
inline int64_t gcd64(int64_t A, int64_t B) {
  assert(A >= 0 && B >= 0 && "gcd64 requires non-negative operands");
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Multiplies two int64 values, returning false on signed overflow.
inline bool mulOverflow64(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_mul_overflow(A, B, &Out);
}

/// Adds two int64 values, returning false on signed overflow.
inline bool addOverflow64(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_add_overflow(A, B, &Out);
}

/// Least common multiple of two positive values. Asserts on overflow; model
/// hyperperiods are expected to stay far below the int64 range.
inline int64_t lcm64(int64_t A, int64_t B) {
  assert(A > 0 && B > 0 && "lcm64 requires positive operands");
  int64_t G = gcd64(A, B);
  int64_t Out;
  [[maybe_unused]] bool Overflow = mulOverflow64(A / G, B, Out);
  assert(!Overflow && "hyperperiod overflows int64");
  return Out;
}

/// Ceiling division for non-negative numerator and positive denominator.
inline int64_t ceilDiv64(int64_t A, int64_t B) {
  assert(A >= 0 && B > 0 && "ceilDiv64 domain violation");
  return (A + B - 1) / B;
}

} // namespace swa

#endif // SWA_SUPPORT_MATHEXTRAS_H
