//===- support/ThreadPool.cpp - Fixed worker pool with parallelFor ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace swa;

ThreadPool::ThreadPool(int Threads) {
  int NWorkers = Threads > 1 ? Threads - 1 : 0;
  Workers.reserve(static_cast<size_t>(NWorkers));
  for (int I = 0; I < NWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WakeCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runIndices(const Job &J) {
  for (;;) {
    int I = NextIndex.fetch_add(1, std::memory_order_relaxed);
    if (I >= J.N)
      return;
    (*J.Fn)(I);
    if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last item: wake the caller (lock so the notify cannot slip between
      // the caller's predicate check and its wait).
      std::lock_guard<std::mutex> L(M);
      DoneCv.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGen = 0;
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(M);
      WakeCv.wait(L, [&] { return Stopping || JobGen != SeenGen; });
      if (Stopping)
        return;
      SeenGen = JobGen;
      J = Current;
      ++ActiveWorkers;
    }
    runIndices(J);
    {
      std::lock_guard<std::mutex> L(M);
      --ActiveWorkers;
    }
    DoneCv.notify_all();
  }
}

void ThreadPool::parallelFor(int N, const std::function<void(int)> &Fn) {
  if (N <= 0)
    return;
  if (Workers.empty() || N == 1) {
    for (int I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  Job J{&Fn, N};
  {
    std::unique_lock<std::mutex> L(M);
    assert(ActiveWorkers == 0 && Pending.load() == 0 &&
           "parallelFor re-entered");
    Current = J;
    Pending.store(N, std::memory_order_relaxed);
    NextIndex.store(0, std::memory_order_relaxed);
    ++JobGen;
  }
  WakeCv.notify_all();

  // The caller is a full participant.
  runIndices(J);

  // Wait until every item ran and every worker left the job, so the next
  // parallelFor can safely republish the shared job description.
  std::unique_lock<std::mutex> L(M);
  DoneCv.wait(L, [&] {
    return Pending.load(std::memory_order_acquire) == 0 &&
           ActiveWorkers == 0;
  });
}
