//===- support/ThreadPool.cpp - Fixed worker pool with parallelFor ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace swa;

ThreadPool::ThreadPool(int Threads) {
  int NWorkers = Threads > 1 ? Threads - 1 : 0;
  Workers.reserve(static_cast<size_t>(NWorkers));
  for (int I = 0; I < NWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WakeCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runIndices(JobState &S) {
  for (;;) {
    int I = S.NextIndex.fetch_add(1, std::memory_order_relaxed);
    if (I >= S.N)
      return;
    try {
      S.Fn(I);
    } catch (...) {
      // Keep the first exception; the item still counts as completed so
      // Pending reaches zero and the pool stays usable.
      if (!S.HaveExc.exchange(true, std::memory_order_acq_rel))
        S.Exc = std::current_exception();
    }
    if (S.Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last item: wake the caller (lock so the notify cannot slip between
      // the caller's predicate check and its wait).
      std::lock_guard<std::mutex> L(M);
      DoneCv.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGen = 0;
  for (;;) {
    std::shared_ptr<JobState> S;
    {
      std::unique_lock<std::mutex> L(M);
      WakeCv.wait(L, [&] { return Stopping || JobGen != SeenGen; });
      if (Stopping)
        return;
      SeenGen = JobGen;
      S = Current;
    }
    // If this worker was notified for an earlier generation but only got
    // scheduled now, S is the newest job: either it still has indices (the
    // worker helps) or its cursor is exhausted (the loop no-ops). The
    // shared_ptr keeps the state alive past the caller's return either way.
    runIndices(*S);
  }
}

void ThreadPool::parallelFor(int N, const std::function<void(int)> &Fn) {
  if (N <= 0)
    return;
  if (Workers.empty() || N == 1) {
    for (int I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  auto S = std::make_shared<JobState>();
  S->Fn = Fn;
  S->N = N;
  S->Pending.store(N, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(M);
    Current = S;
    ++JobGen;
  }
  WakeCv.notify_all();

  // The caller is a full participant.
  runIndices(*S);

  // Wait until every item ran. Workers still inside runIndices after that
  // hold their own shared_ptr to S and find an exhausted cursor, so the
  // next parallelFor can publish immediately.
  {
    std::unique_lock<std::mutex> L(M);
    DoneCv.wait(L, [&] {
      return S->Pending.load(std::memory_order_acquire) == 0;
    });
  }
  if (S->HaveExc.load(std::memory_order_acquire))
    std::rethrow_exception(S->Exc);
}
