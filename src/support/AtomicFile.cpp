//===- support/AtomicFile.cpp - Crash-safe whole-file replacement -----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace swa;
using namespace swa::support;

namespace {

/// The parsed SWA_CRASH_AFTER plan. Stage indices follow the header
/// comment; Threshold is the 1-based occurrence (or byte count for
/// kByte) at which the process dies.
enum CrashStage { kNone, kByte, kWrite, kFsync, kRename, kCommit };

struct CrashPlan {
  CrashStage Stage = kNone;
  uint64_t Threshold = 1;
};

const CrashPlan &crashPlan() {
  static const CrashPlan Plan = [] {
    CrashPlan P;
    const char *Env = std::getenv("SWA_CRASH_AFTER");
    if (!Env || !*Env)
      return P;
    std::string Spec(Env);
    size_t Colon = Spec.find(':');
    std::string Stage = Spec.substr(0, Colon);
    if (Colon != std::string::npos) {
      char *End = nullptr;
      unsigned long long N = std::strtoull(Spec.c_str() + Colon + 1, &End, 10);
      if (End && *End == '\0' && N > 0)
        P.Threshold = N;
    }
    if (Stage == "byte")
      P.Stage = kByte;
    else if (Stage == "write")
      P.Stage = kWrite;
    else if (Stage == "fsync")
      P.Stage = kFsync;
    else if (Stage == "rename")
      P.Stage = kRename;
    else if (Stage == "commit")
      P.Stage = kCommit;
    return P;
  }();
  return Plan;
}

/// Process-wide occurrence counters, one per stage. Relaxed is enough:
/// the fault campaign drives single-writer checkpoints, and an
/// off-by-one under a racing writer only moves the injected crash, it
/// cannot un-inject it.
std::atomic<uint64_t> StageCount[6];

/// Dies at \p Stage if the plan says so. \p Amount is 1 occurrence, or
/// the byte count for kByte.
void crashPoint(CrashStage Stage, uint64_t Amount = 1) {
  const CrashPlan &Plan = crashPlan();
  if (Plan.Stage != Stage)
    return;
  uint64_t Total =
      StageCount[Stage].fetch_add(Amount, std::memory_order_relaxed) + Amount;
  if (Total >= Plan.Threshold)
    _exit(AtomicFile::kCrashExitCode); // crash: no flush, no atexit
}

Error ioError(const char *Op, const std::string &Path) {
  return Error::failure(ErrorCode::Io, std::string(Op) + " " + Path +
                                           " failed: " + std::strerror(errno));
}

/// fsyncs the directory containing \p Path so the rename itself is
/// durable. Best-effort by contract: some filesystems reject directory
/// fsync; the rename is still atomic, only its durability window grows.
void fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

} // namespace

Error AtomicFile::open(const std::string &TargetPath) {
  discard();
  Path = TargetPath;
  TmpPath = TargetPath + ".tmp";
  Written = 0;
  Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return ioError("open", TmpPath);
  return Error::success();
}

Error AtomicFile::append(const void *Data, size_t Len) {
  if (Fd < 0)
    return Error::failure(ErrorCode::Io, "append on a closed AtomicFile");
  const char *P = static_cast<const char *>(Data);
  size_t Left = Len;
  while (Left > 0) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error E = ioError("write", TmpPath);
      discard();
      return E;
    }
    P += N;
    Left -= static_cast<size_t>(N);
    Written += static_cast<uint64_t>(N);
    crashPoint(kByte, static_cast<uint64_t>(N));
  }
  crashPoint(kWrite);
  return Error::success();
}

Error AtomicFile::commit() {
  if (Fd < 0)
    return Error::failure(ErrorCode::Io, "commit on a closed AtomicFile");
  if (::fsync(Fd) != 0) {
    Error E = ioError("fsync", TmpPath);
    discard();
    return E;
  }
  crashPoint(kFsync);
  if (::close(Fd) != 0) {
    Fd = -1;
    Error E = ioError("close", TmpPath);
    ::unlink(TmpPath.c_str());
    return E;
  }
  Fd = -1;
  if (::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    Error E = ioError("rename", TmpPath);
    ::unlink(TmpPath.c_str());
    return E;
  }
  crashPoint(kRename);
  fsyncParentDir(Path);
  crashPoint(kCommit);
  return Error::success();
}

void AtomicFile::discard() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
  ::unlink(TmpPath.c_str());
}

Error support::writeFileAtomic(const std::string &Path, const void *Data,
                               size_t Len) {
  AtomicFile F;
  if (Error E = F.open(Path))
    return E;
  if (Error E = F.append(Data, Len))
    return E;
  return F.commit();
}
