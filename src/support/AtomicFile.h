//===- support/AtomicFile.h - Crash-safe whole-file replacement -*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Write-temp + fsync + rename whole-file replacement: the durability
/// primitive under schedtool's checkpoint snapshots. The contract is the
/// classic POSIX one — after open(), any number of append() calls write
/// into `<path>.tmp`; commit() fsyncs the temp file, renames it over the
/// target, and fsyncs the containing directory. rename(2) is atomic on a
/// POSIX filesystem, so a crash (power loss, SIGKILL, _exit) at *any*
/// byte of the sequence leaves the target as either the complete old
/// file or the complete new one — never a torn mixture. The temp file
/// itself may survive a crash; it is garbage, ignored by readers, and
/// overwritten by the next writer (stable name, no PID suffix, exactly
/// so that retries self-clean).
///
/// Fault campaign hook: when the environment variable SWA_CRASH_AFTER is
/// set, the writer deliberately dies (`_exit(kCrashExitCode)`) at a
/// chosen point of the sequence, so tests can prove the atomicity claim
/// byte by byte instead of asserting it. Format:
///
///   SWA_CRASH_AFTER=<stage>[:<n>]
///
/// with <stage> one of
///   byte    die once >= n total bytes have been appended (mid-payload
///           torn-temp crash; default n = 1)
///   write   die after the n-th append() call returns
///   fsync   die after the n-th temp-file fsync (data durable in the
///           temp, rename not yet issued)
///   rename  die after the n-th rename (target replaced, directory entry
///           possibly not yet durable)
///   commit  die after the n-th fully completed commit()
///
/// Occurrences are counted process-wide, so `commit:3` means "die at the
/// third checkpoint" regardless of which AtomicFile instance writes it.
/// The hook costs one getenv on first use and nothing when unset.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_ATOMICFILE_H
#define SWA_SUPPORT_ATOMICFILE_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace swa {
namespace support {

class AtomicFile {
public:
  /// Exit code of an SWA_CRASH_AFTER-injected crash (distinct from every
  /// exit code the tools use, so harnesses can tell an injected crash
  /// from a real failure).
  static constexpr int kCrashExitCode = 87;

  AtomicFile() = default;
  ~AtomicFile() { discard(); }
  AtomicFile(const AtomicFile &) = delete;
  AtomicFile &operator=(const AtomicFile &) = delete;

  /// Opens (creates/truncates) `<path>.tmp` for writing. Typed
  /// ErrorCode::Io on failure.
  Error open(const std::string &Path);

  /// Appends \p Len bytes to the temp file. Typed ErrorCode::Io on
  /// failure (the temp is discarded; the target is untouched).
  Error append(const void *Data, size_t Len);

  /// fsync + rename over the target + directory fsync. On success the
  /// target durably holds exactly the appended bytes. On failure the
  /// temp is discarded and the old target is intact. The file is closed
  /// either way; the instance can be reused via open().
  Error commit();

  /// Closes and unlinks the temp file without touching the target.
  /// Idempotent; called by the destructor for never-committed files, so
  /// an abandoned write (error path, cancel) leaves nothing behind.
  void discard();

  /// True between a successful open() and commit()/discard().
  bool isOpen() const { return Fd >= 0; }

  /// Bytes appended since open().
  uint64_t bytesWritten() const { return Written; }

  /// The temp path writes go to (valid after open()).
  const std::string &tempPath() const { return TmpPath; }

private:
  int Fd = -1;
  std::string Path;
  std::string TmpPath;
  uint64_t Written = 0;
};

/// One-shot convenience: atomically replaces \p Path with \p Len bytes at
/// \p Data.
Error writeFileAtomic(const std::string &Path, const void *Data, size_t Len);

} // namespace support
} // namespace swa

#endif // SWA_SUPPORT_ATOMICFILE_H
