//===- support/CancelToken.h - Cooperative cancellation ---------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny cooperative cancellation primitive. A caller that wants to abort
/// a long-running operation (a simulation, a configuration search) shares
/// a CancelToken with it and calls cancel(); the operation polls
/// isCancelled() at safe points and winds down with a structured status
/// (`nsa::StopReason::Cancelled`) instead of being killed mid-state.
///
/// The flag is a single atomic bool: cancel() may be called from any
/// thread (e.g. a deadline watchdog) while the worker polls with relaxed
/// loads — there is no data to publish, only the request itself.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_CANCELTOKEN_H
#define SWA_SUPPORT_CANCELTOKEN_H

#include <atomic>

namespace swa {

class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void cancel() { Flag.store(true, std::memory_order_relaxed); }

  /// True once cancellation has been requested.
  bool isCancelled() const { return Flag.load(std::memory_order_relaxed); }

  /// Re-arms the token for reuse (e.g. between test cases). Only safe when
  /// no operation is currently polling it.
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

} // namespace swa

#endif // SWA_SUPPORT_CANCELTOKEN_H
