//===- support/BitSet.h - Dense fixed-capacity bit sets ---------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense set containers for small integer keys, sized once at construction
/// and reused across runs. They back the NSA simulator's hot sets
/// (Initiators, Committed, per-channel receiver sets), replacing
/// node-based std::set: membership updates are O(1) bit operations with no
/// allocation in the steady state, and iteration is an ascending word scan
/// — the same visit order a std::set<int32_t> gives, which is what keeps
/// the deterministic step choice (and therefore the trace) unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_BITSET_H
#define SWA_SUPPORT_BITSET_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace swa {

/// A set of integers in [0, capacity) stored as a bitmap with a member
/// count. insert/erase/test are O(1); iteration visits members in
/// ascending order skipping zero words 64 keys at a time.
class DenseBitSet {
public:
  DenseBitSet() = default;

  /// Sets the capacity and empties the set.
  void reset(size_t Capacity) {
    Words.assign((Capacity + 63) / 64, 0);
    N = 0;
  }

  /// Empties the set, keeping capacity (no allocation).
  void clear() {
    std::fill(Words.begin(), Words.end(), 0);
    N = 0;
  }

  bool empty() const { return N == 0; }
  size_t size() const { return N; }

  bool test(size_t I) const {
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  /// Adds \p I; returns true when it was not already a member.
  bool insert(size_t I) {
    uint64_t &W = Words[I >> 6];
    uint64_t Bit = 1ULL << (I & 63);
    if (W & Bit)
      return false;
    W |= Bit;
    ++N;
    return true;
  }

  /// Removes \p I; returns true when it was a member.
  bool erase(size_t I) {
    uint64_t &W = Words[I >> 6];
    uint64_t Bit = 1ULL << (I & 63);
    if (!(W & Bit))
      return false;
    W &= ~Bit;
    --N;
    return true;
  }

  /// Smallest member, or -1 when empty.
  int32_t findFirst() const {
    for (size_t WI = 0; WI < Words.size(); ++WI)
      if (Words[WI])
        return static_cast<int32_t>(
            WI * 64 + static_cast<size_t>(std::countr_zero(Words[WI])));
    return -1;
  }

  /// Smallest member strictly greater than \p Prev, or -1.
  int32_t findNext(int32_t Prev) const {
    size_t I = static_cast<size_t>(Prev) + 1;
    size_t WI = I >> 6;
    if (WI >= Words.size())
      return -1;
    uint64_t W = Words[WI] & (~0ULL << (I & 63));
    for (;;) {
      if (W)
        return static_cast<int32_t>(
            WI * 64 + static_cast<size_t>(std::countr_zero(W)));
      if (++WI == Words.size())
        return -1;
      W = Words[WI];
    }
  }

private:
  std::vector<uint64_t> Words;
  size_t N = 0;
};

/// A sorted flat vector of int32 keys: the receiver sets are tiny (usually
/// zero or one automaton per channel), where a sorted vector beats any
/// tree or bitmap on both updates and the ascending iteration the
/// deterministic partner choice requires.
class SortedIdVec {
public:
  bool insert(int32_t V) {
    auto It = std::lower_bound(Ids.begin(), Ids.end(), V);
    if (It != Ids.end() && *It == V)
      return false;
    Ids.insert(It, V);
    return true;
  }

  bool erase(int32_t V) {
    auto It = std::lower_bound(Ids.begin(), Ids.end(), V);
    if (It == Ids.end() || *It != V)
      return false;
    Ids.erase(It);
    return true;
  }

  void clear() { Ids.clear(); }
  bool empty() const { return Ids.empty(); }
  size_t size() const { return Ids.size(); }

  std::vector<int32_t>::const_iterator begin() const { return Ids.begin(); }
  std::vector<int32_t>::const_iterator end() const { return Ids.end(); }

private:
  std::vector<int32_t> Ids;
};

} // namespace swa

#endif // SWA_SUPPORT_BITSET_H
