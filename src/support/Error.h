//===- support/Error.h - Lightweight error and result types -----*- C++ -*-===//
//
// Part of the swa-sched project: stopwatch-automata based schedulability
// analysis of modular computer systems.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error and Result<T> are the project's recoverable-error primitives.
/// Library code never throws; fallible operations return Result<T> (or a
/// plain Error for void results). This mirrors the spirit of llvm::Expected
/// without the checked-flag machinery: a Result either holds a value or an
/// error message, and callers branch on ok().
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_ERROR_H
#define SWA_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace swa {

/// Machine-checkable failure categories. Most library errors are Generic
/// (the message is the whole story); the durable-search layer needs
/// callers to branch on *why* a snapshot was rejected — corrupt files
/// degrade to a cold start, I/O failures are retried, version skew is
/// reported to the operator — without string matching, so those paths
/// attach a code. The taxonomy is deliberately small: add a code only
/// when some caller dispatches on it.
enum class ErrorCode {
  Generic,                ///< Uncategorized; message-only errors.
  Io,                     ///< open/write/fsync/rename/read failed.
  SnapshotTruncated,      ///< File ends mid-header or mid-record.
  SnapshotCorrupt,        ///< Bad magic, CRC mismatch, malformed payload.
  SnapshotVersionSkew,    ///< Format version this reader does not speak.
  SnapshotEndianMismatch, ///< Written by a foreign-endian encoder.
  SnapshotMismatch,       ///< Valid snapshot, wrong problem (seed/base).
};

/// Stable lower-case name for an ErrorCode (log/CLI output).
const char *errorCodeName(ErrorCode Code);

/// A recoverable error: a human-readable message describing what went wrong,
/// plus an optional machine-checkable ErrorCode.
///
/// Messages follow tool conventions: lower-case first letter, no trailing
/// period. An empty-message Error still counts as an error state; use
/// Error::success() to represent "no error".
class Error {
public:
  /// Constructs the success (no-error) value.
  static Error success() { return Error(); }

  /// Constructs a failure carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Failed = true;
    E.Message = std::move(Message);
    return E;
  }

  /// Constructs a typed failure: \p Code says what class of problem this
  /// is, \p Message describes the instance.
  static Error failure(ErrorCode Code, std::string Message) {
    Error E = failure(std::move(Message));
    E.Code = Code;
    return E;
  }

  /// True when this represents a failure.
  explicit operator bool() const { return Failed; }

  bool isFailure() const { return Failed; }

  /// Returns the failure message. Only valid on failures.
  const std::string &message() const {
    assert(Failed && "message() on a success Error");
    return Message;
  }

  /// The failure category; ErrorCode::Generic unless the producer
  /// attached one. Only valid on failures.
  ErrorCode code() const {
    assert(Failed && "code() on a success Error");
    return Code;
  }

  /// Prepends context to the message, building "context: original".
  /// The ErrorCode is preserved.
  Error withContext(const std::string &Context) const {
    if (!Failed)
      return Error::success();
    return Error::failure(Code, Context + ": " + Message);
  }

private:
  Error() = default;

  bool Failed = false;
  ErrorCode Code = ErrorCode::Generic;
  std::string Message;
};

inline const char *errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Generic:
    return "generic";
  case ErrorCode::Io:
    return "io";
  case ErrorCode::SnapshotTruncated:
    return "snapshot-truncated";
  case ErrorCode::SnapshotCorrupt:
    return "snapshot-corrupt";
  case ErrorCode::SnapshotVersionSkew:
    return "snapshot-version-skew";
  case ErrorCode::SnapshotEndianMismatch:
    return "snapshot-endian-mismatch";
  case ErrorCode::SnapshotMismatch:
    return "snapshot-mismatch";
  }
  return "unknown";
}

/// Holds either a value of type T or an Error.
///
/// Typical usage:
/// \code
///   Result<int> R = parseInt(Text);
///   if (!R.ok())
///     return R.takeError();
///   use(R.value());
/// \endcode
template <typename T> class Result {
public:
  /// Success: wraps \p Value.
  Result(T Value) : Value(std::move(Value)), Err(Error::success()) {}

  /// Failure: wraps \p E (which must be a failure).
  Result(Error E) : Err(std::move(E)) {
    assert(Err.isFailure() && "Result constructed from success Error");
  }

  bool ok() const { return !Err.isFailure(); }
  explicit operator bool() const { return ok(); }

  /// Accesses the contained value. Only valid when ok().
  T &value() {
    assert(ok() && "value() on a failed Result");
    return *Value;
  }
  const T &value() const {
    assert(ok() && "value() on a failed Result");
    return *Value;
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// Moves the contained value out. Only valid when ok().
  T takeValue() {
    assert(ok() && "takeValue() on a failed Result");
    return std::move(*Value);
  }

  /// Returns the error (success if ok()).
  const Error &error() const { return Err; }

  /// Moves the error out. Only valid when !ok().
  Error takeError() {
    assert(!ok() && "takeError() on a successful Result");
    return std::move(Err);
  }

private:
  std::optional<T> Value;
  Error Err;
};

} // namespace swa

#endif // SWA_SUPPORT_ERROR_H
