//===- support/ThreadPool.h - Fixed worker pool with parallelFor *- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for embarrassingly parallel index ranges. The
/// config search evaluates candidate batches with parallelFor: workers
/// (and the calling thread) grab indices from a shared atomic cursor, so
/// the *assignment* of items to threads is nondeterministic while the
/// item set and every per-item result slot are fixed up front — callers
/// write results by index and reduce in index order, which is how the
/// search stays byte-identical for any thread count.
///
/// A pool constructed with <= 1 threads spawns nothing and runs
/// parallelFor inline on the caller; the parallel and serial paths are the
/// same code.
///
/// parallelFor returns only after every item ran *and* every worker left
/// the job (quiescence), so consecutive jobs can never race on the shared
/// job description; workers copy the job under the mutex when they wake.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_THREADPOOL_H
#define SWA_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace swa {

class ThreadPool {
public:
  /// Creates a pool whose parallelFor uses up to \p Threads threads in
  /// total (the caller counts as one; Threads - 1 workers are spawned).
  explicit ThreadPool(int Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads parallelFor can use (>= 1).
  int threadCount() const {
    return static_cast<int>(Workers.size()) + 1;
  }

  /// Runs Fn(I) for every I in [0, N), distributing indices over the
  /// workers and the calling thread; returns when all N calls finished.
  /// Fn must be safe to call concurrently for distinct indices. Must not
  /// be re-entered from inside Fn.
  void parallelFor(int N, const std::function<void(int)> &Fn);

private:
  /// One published job: workers copy this under the mutex when they wake.
  struct Job {
    const std::function<void(int)> *Fn = nullptr;
    int N = 0;
  };

  void workerLoop();
  void runIndices(const Job &J);

  std::vector<std::thread> Workers;

  std::mutex M;
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  /// Generation counter; bumped under M when a job is published.
  uint64_t JobGen = 0;
  bool Stopping = false;
  Job Current;
  /// Workers currently inside runIndices for the published job.
  int ActiveWorkers = 0;

  std::atomic<int> NextIndex{0};
  /// Items not yet completed; the job is done at zero.
  std::atomic<int> Pending{0};
};

} // namespace swa

#endif // SWA_SUPPORT_THREADPOOL_H
