//===- support/ThreadPool.h - Fixed worker pool with parallelFor *- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for embarrassingly parallel index ranges. The
/// config search evaluates candidate batches with parallelFor: workers
/// (and the calling thread) grab indices from a shared atomic cursor, so
/// the *assignment* of items to threads is nondeterministic while the
/// item set and every per-item result slot are fixed up front — callers
/// write results by index and reduce in index order, which is how the
/// search stays byte-identical for any thread count.
///
/// A pool constructed with <= 1 threads spawns nothing and runs
/// parallelFor inline on the caller; the parallel and serial paths are the
/// same code.
///
/// Each parallelFor call publishes its own heap-allocated job state (a
/// copy of the callable plus private index/pending cursors) held by
/// shared_ptr. A worker that was notified for a job but only gets
/// scheduled after that job finished either joins the *current* job or
/// finds an exhausted cursor and no-ops; it can never run a stale
/// callable or touch a later job's counters.
///
/// If the callable throws, the first exception is captured and rethrown
/// on the calling thread after every item ran; remaining items still
/// execute, and the pool stays usable.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_THREADPOOL_H
#define SWA_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace swa {

class ThreadPool {
public:
  /// Creates a pool whose parallelFor uses up to \p Threads threads in
  /// total (the caller counts as one; Threads - 1 workers are spawned).
  explicit ThreadPool(int Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads parallelFor can use (>= 1).
  int threadCount() const {
    return static_cast<int>(Workers.size()) + 1;
  }

  /// Runs Fn(I) for every I in [0, N), distributing indices over the
  /// workers and the calling thread; returns when all N calls finished.
  /// Fn must be safe to call concurrently for distinct indices. Must not
  /// be re-entered from inside Fn. If Fn throws, the first exception is
  /// rethrown here after the whole range ran.
  void parallelFor(int N, const std::function<void(int)> &Fn);

private:
  /// One job's complete state, shared by the caller and every worker that
  /// picks it up. Heap-allocated per parallelFor call so a late-scheduled
  /// worker holding a previous job keeps valid (exhausted) state instead
  /// of racing on reused members.
  struct JobState {
    std::function<void(int)> Fn; ///< Owned copy; outlives the caller's arg.
    int N = 0;
    std::atomic<int> NextIndex{0};
    /// Items not yet completed; the job is done at zero.
    std::atomic<int> Pending{0};
    std::atomic<bool> HaveExc{false};
    std::exception_ptr Exc; ///< First exception; read after Pending == 0.
  };

  void workerLoop();
  void runIndices(JobState &S);

  std::vector<std::thread> Workers;

  std::mutex M;
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  /// Generation counter; bumped under M when a job is published.
  uint64_t JobGen = 0;
  bool Stopping = false;
  /// The most recently published job; workers copy the shared_ptr under M.
  std::shared_ptr<JobState> Current;
};

} // namespace swa

#endif // SWA_SUPPORT_THREADPOOL_H
