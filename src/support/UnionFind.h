//===- support/UnionFind.h - Disjoint-set union ------------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain disjoint-set-union (union by size, path halving). Used by the
/// config decomposition to find the connected components of the
/// inter-core message graph (config/Decompose.h).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_UNIONFIND_H
#define SWA_SUPPORT_UNIONFIND_H

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace swa {
namespace support {

class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N), Size(N, 1) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  /// Returns every element to its own singleton set, keeping the
  /// allocation. Lets the config search reuse one instance across
  /// thousands of candidate decompositions instead of reallocating.
  void reset() {
    std::iota(Parent.begin(), Parent.end(), 0);
    std::fill(Size.begin(), Size.end(), 1);
  }

  size_t size() const { return Parent.size(); }

  int32_t find(int32_t X) {
    while (Parent[static_cast<size_t>(X)] != X) {
      Parent[static_cast<size_t>(X)] =
          Parent[static_cast<size_t>(Parent[static_cast<size_t>(X)])];
      X = Parent[static_cast<size_t>(X)];
    }
    return X;
  }

  /// Unions the sets of \p A and \p B; returns false when they were
  /// already one set.
  bool unite(int32_t A, int32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    if (Size[static_cast<size_t>(A)] < Size[static_cast<size_t>(B)])
      std::swap(A, B);
    Parent[static_cast<size_t>(B)] = A;
    Size[static_cast<size_t>(A)] += Size[static_cast<size_t>(B)];
    return true;
  }

  bool same(int32_t A, int32_t B) { return find(A) == find(B); }

private:
  std::vector<int32_t> Parent;
  std::vector<int64_t> Size;
};

} // namespace support
} // namespace swa

#endif // SWA_SUPPORT_UNIONFIND_H
