//===- support/IndexedHeap.h - Indexed binary min-heap ----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A binary min-heap over (key, id) pairs with an id -> heap-position
/// index, so each id appears at most once and re-keying an id sifts the
/// existing entry instead of pushing a duplicate. This replaces the NSA
/// simulator's lazy-deletion std::priority_queue wake heap: re-arming an
/// automaton's timer is one sift of a live entry rather than a push that
/// leaves a stale pair to be popped and discarded later, so heap size is
/// bounded by the automaton count and the "next wake" query never has to
/// skip garbage.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_INDEXEDHEAP_H
#define SWA_SUPPORT_INDEXEDHEAP_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace swa {

/// Min-heap keyed by int64 with int32 ids in [0, capacity).
class IndexedMinHeap {
public:
  struct Entry {
    int64_t Key;
    int32_t Id;
  };

  /// Sets the id capacity and empties the heap.
  void reset(size_t Capacity) {
    Pos.assign(Capacity, -1);
    Heap.clear();
    Heap.reserve(Capacity);
  }

  /// Empties the heap, keeping capacity (no allocation).
  void clear() {
    for (const Entry &E : Heap)
      Pos[static_cast<size_t>(E.Id)] = -1;
    Heap.clear();
  }

  bool empty() const { return Heap.empty(); }
  size_t size() const { return Heap.size(); }

  bool contains(int32_t Id) const {
    return Pos[static_cast<size_t>(Id)] >= 0;
  }

  /// Current key of \p Id; the id must be present.
  int64_t keyOf(int32_t Id) const {
    assert(contains(Id) && "keyOf() on absent id");
    return Heap[static_cast<size_t>(Pos[static_cast<size_t>(Id)])].Key;
  }

  const Entry &top() const {
    assert(!Heap.empty() && "top() on empty heap");
    return Heap.front();
  }

  void pop() {
    assert(!Heap.empty() && "pop() on empty heap");
    removeAt(0);
  }

  /// Inserts \p Id with \p Key, or re-keys it when already present.
  /// Returns true when the id was newly inserted.
  bool update(int32_t Id, int64_t Key) {
    int32_t P = Pos[static_cast<size_t>(Id)];
    if (P < 0) {
      Heap.push_back({Key, Id});
      Pos[static_cast<size_t>(Id)] = static_cast<int32_t>(Heap.size() - 1);
      siftUp(Heap.size() - 1);
      return true;
    }
    size_t I = static_cast<size_t>(P);
    if (Key == Heap[I].Key)
      return false;
    bool Decreased = Key < Heap[I].Key;
    Heap[I].Key = Key;
    if (Decreased)
      siftUp(I);
    else
      siftDown(I);
    return false;
  }

  /// Removes \p Id when present; returns true when it was.
  bool erase(int32_t Id) {
    int32_t P = Pos[static_cast<size_t>(Id)];
    if (P < 0)
      return false;
    removeAt(static_cast<size_t>(P));
    return true;
  }

private:
  void place(size_t I, Entry E) {
    Heap[I] = E;
    Pos[static_cast<size_t>(E.Id)] = static_cast<int32_t>(I);
  }

  void removeAt(size_t I) {
    Pos[static_cast<size_t>(Heap[I].Id)] = -1;
    Entry Last = Heap.back();
    Heap.pop_back();
    if (I == Heap.size())
      return;
    int64_t Old = Heap[I].Key;
    place(I, Last);
    if (Last.Key < Old)
      siftUp(I);
    else
      siftDown(I);
  }

  void siftUp(size_t I) {
    Entry E = Heap[I];
    while (I > 0) {
      size_t Parent = (I - 1) / 2;
      if (Heap[Parent].Key <= E.Key)
        break;
      place(I, Heap[Parent]);
      I = Parent;
    }
    place(I, E);
  }

  void siftDown(size_t I) {
    Entry E = Heap[I];
    size_t N = Heap.size();
    for (;;) {
      size_t Child = 2 * I + 1;
      if (Child >= N)
        break;
      if (Child + 1 < N && Heap[Child + 1].Key < Heap[Child].Key)
        ++Child;
      if (E.Key <= Heap[Child].Key)
        break;
      place(I, Heap[Child]);
      I = Child;
    }
    place(I, E);
  }

  std::vector<Entry> Heap;
  /// Heap position of each id; -1 when absent.
  std::vector<int32_t> Pos;
};

} // namespace swa

#endif // SWA_SUPPORT_INDEXEDHEAP_H
