//===- support/Subprocess.cpp - Child-process spawning ----------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>

using namespace swa;
using namespace swa::support;

static int decodeStatus(int Raw) {
  if (WIFEXITED(Raw))
    return WEXITSTATUS(Raw);
  if (WIFSIGNALED(Raw))
    return -WTERMSIG(Raw);
  return -1;
}

Subprocess::~Subprocess() {
  if (Started && !Reaped) {
    ::kill(static_cast<pid_t>(Pid), SIGKILL);
    wait();
  }
}

Subprocess::Subprocess(Subprocess &&O) noexcept
    : Pid(O.Pid), Started(O.Started), Reaped(O.Reaped), Status(O.Status) {
  O.Started = false;
  O.Reaped = false;
  O.Pid = -1;
}

Subprocess &Subprocess::operator=(Subprocess &&O) noexcept {
  if (this != &O) {
    if (Started && !Reaped) {
      ::kill(static_cast<pid_t>(Pid), SIGKILL);
      wait();
    }
    Pid = O.Pid;
    Started = O.Started;
    Reaped = O.Reaped;
    Status = O.Status;
    O.Started = false;
    O.Reaped = false;
    O.Pid = -1;
  }
  return *this;
}

Error Subprocess::start(const std::vector<std::string> &Argv,
                        const std::vector<std::string> &ExtraEnv) {
  if (Argv.empty())
    return Error::failure("subprocess: empty argv");
  if (Started && !Reaped)
    return Error::failure("subprocess: already running");

  pid_t P = ::fork();
  if (P < 0)
    return Error::failure(ErrorCode::Io,
                          std::string("fork: ") + std::strerror(errno));
  if (P == 0) {
    // Child. Only async-signal-safe work plus setenv (single-threaded
    // here) until exec.
    for (const std::string &E : ExtraEnv) {
      size_t Eq = E.find('=');
      if (Eq != std::string::npos)
        ::setenv(E.substr(0, Eq).c_str(), E.c_str() + Eq + 1, 1);
    }
    std::vector<char *> Args;
    Args.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      Args.push_back(const_cast<char *>(A.c_str()));
    Args.push_back(nullptr);
    ::execvp(Args[0], Args.data());
    _exit(127); // shell convention: command not runnable
  }

  Pid = P;
  Started = true;
  Reaped = false;
  Status = -1;
  return Error::success();
}

bool Subprocess::running() {
  if (!Started || Reaped)
    return false;
  int Raw = 0;
  pid_t R = ::waitpid(static_cast<pid_t>(Pid), &Raw, WNOHANG);
  if (R == 0)
    return true;
  // Reaped now (or waitpid failed, in which case the child is gone for
  // our purposes — e.g. reaped elsewhere).
  Reaped = true;
  Status = R > 0 ? decodeStatus(Raw) : -1;
  return false;
}

int Subprocess::wait() {
  if (!Started)
    return -1;
  if (Reaped)
    return Status;
  int Raw = 0;
  pid_t R = ::waitpid(static_cast<pid_t>(Pid), &Raw, 0);
  Reaped = true;
  Status = R > 0 ? decodeStatus(Raw) : -1;
  return Status;
}

void Subprocess::kill(int Sig) {
  if (Started && !Reaped)
    ::kill(static_cast<pid_t>(Pid), Sig);
}
