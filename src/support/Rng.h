//===- support/Rng.h - Deterministic pseudo-random generator ----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PRNG (splitmix64 seeding a xoshiro256**
/// core). Workload generation, randomized exploration orders and
/// property-style tests all use this generator so that every run of the
/// suite is reproducible from the seed alone, independent of the standard
/// library implementation.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_RNG_H
#define SWA_SUPPORT_RNG_H

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

namespace swa {

/// Deterministic PRNG with convenience sampling helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t X = Seed;
    for (uint64_t &S : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      S = Z ^ (Z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256**).
  uint64_t next() {
    auto Rotl = [](uint64_t V, int K) {
      return (V << K) | (V >> (64 - K));
    };
    uint64_t Result = Rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = Rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t uniformInt(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    if (Span == 0) // Full 64-bit range.
      return static_cast<int64_t>(next());
    return Lo + static_cast<int64_t>(next() % Span);
  }

  /// Uniform double in [0, 1).
  double uniformDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability \p P of returning true.
  bool chance(double P) { return uniformDouble() < P; }

  /// Picks a uniformly random element index for a container of \p Size.
  size_t index(size_t Size) {
    assert(Size > 0 && "index() over empty container");
    return static_cast<size_t>(next() % Size);
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I)
      std::swap(V[I - 1], V[index(I)]);
  }

  /// The raw xoshiro state, for checkpointing a generator mid-stream
  /// (schedtool::Snapshot): restoring a saved state resumes the exact
  /// draw sequence, so a resumed search replays the uninterrupted one.
  std::array<uint64_t, 4> saveState() const {
    return {State[0], State[1], State[2], State[3]};
  }
  void restoreState(const std::array<uint64_t, 4> &S) {
    for (size_t I = 0; I < 4; ++I)
      State[I] = S[I];
  }

private:
  uint64_t State[4];
};

} // namespace swa

#endif // SWA_SUPPORT_RNG_H
