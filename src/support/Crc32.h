//===- support/Crc32.h - CRC-32 (IEEE 802.3) checksums ----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checksum of the durable-search snapshot format: CRC-32 with the
/// reflected IEEE polynomial 0xEDB88320 (the zlib/PNG CRC), computed over
/// raw bytes so the value is independent of host endianness and word
/// size. Used per record payload *and* accumulated over the whole file
/// (support::AtomicFile writes, schedtool::Snapshot frames), so both a
/// flipped bit inside a record and a flipped bit in the framing itself
/// are detected.
///
/// The running form (seed in, crc out) lets writers checksum a stream
/// incrementally without buffering it: crc32(b, n, crc32(a, m)) ==
/// crc32(concat(a, b), m + n).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SUPPORT_CRC32_H
#define SWA_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>

namespace swa {
namespace support {

namespace detail {
/// The 256-entry table for the reflected polynomial, built once per
/// process (thread-safe per C++11 static-local rules).
inline const uint32_t *crc32Table() {
  static const auto Table = [] {
    struct T {
      uint32_t E[256];
    } T;
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
      T.E[I] = C;
    }
    return T;
  }();
  return Table.E;
}
} // namespace detail

/// CRC-32 of \p Len bytes at \p Data, continuing from \p Seed (pass the
/// previous call's return value to checksum a stream piecewise; the
/// default starts a fresh checksum).
inline uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0) {
  const uint32_t *Table = detail::crc32Table();
  const auto *P = static_cast<const unsigned char *>(Data);
  uint32_t C = ~Seed;
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return ~C;
}

} // namespace support
} // namespace swa

#endif // SWA_SUPPORT_CRC32_H
