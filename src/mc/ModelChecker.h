//===- mc/ModelChecker.h - Explicit-state NSA model checker -----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Model Checking baseline the paper compares against (Table 1), and
/// the verifier used for observer-based component correctness proofs (§3).
///
/// The checker explores *every action interleaving* of the network:
/// internal edges, all binary sender/receiver pairs, every select
/// combination and every broadcast receiver-edge choice. Time passes with
/// maximal progress (a delay successor exists only when no action is
/// enabled, and jumps to the next clock bound); that matches the
/// deterministic-time model class of the paper, where the cost of model
/// checking is the factorial/exponential interleaving of simultaneous
/// events — exactly the effect Table 1 measures. See DESIGN.md §5.
///
/// Properties are state predicates ("bad state reached"); helpers cover the
/// two forms used throughout: an automaton reaching a named location (the
/// observers' "bad" location) and a store variable becoming nonzero.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_MC_MODELCHECKER_H
#define SWA_MC_MODELCHECKER_H

#include "nsa/Exec.h"
#include "sa/Network.h"

#include <functional>
#include <string>

namespace swa {
namespace mc {

struct McOptions {
  /// Exploration time horizon; -1 uses the network "horizon" metadata.
  int64_t Horizon = -1;
  /// State budget; exceeded => Error set.
  uint64_t MaxStates = 20000000ULL;
  /// Stop at the first property violation (otherwise keep exploring).
  bool StopAtFirstViolation = true;
  /// Store only 64-bit hashes in the visited set (memory-light mode used
  /// for the larger Table-1 points; collision probability is negligible at
  /// these state counts and only affects the baseline's timing, not the
  /// simulator's verdicts).
  bool CompactVisited = false;
  /// Record predecessor links so a property violation comes with a
  /// counterexample path (incompatible with CompactVisited).
  bool RecordWitness = false;
  /// Keep one representative full state per distinct final-state hash in
  /// McResult::FinalStates. Used to diagnose census mismatches (which
  /// state component diverges across interleavings).
  bool KeepFinalStates = false;
};

/// One step of a counterexample path.
struct WitnessStep {
  int64_t Time = 0;
  /// Human-readable action, e.g. "ts: exec[1]! -> drv1" or "delay to 5".
  std::string Action;
};

struct McResult {
  uint64_t StatesExplored = 0;
  uint64_t TransitionsExplored = 0;
  uint64_t CompleteRuns = 0;
  /// Number of distinct final states over all complete runs. The paper's
  /// determinism theorem implies 1 for well-formed system models.
  uint64_t DistinctFinalStates = 0;
  /// StateHash of one final state (the last complete run found). With
  /// DistinctFinalStates == 1 this is *the* final-state hash, directly
  /// comparable against StateHash of the simulator's SimResult::Final —
  /// the census-vs-trace oracle pair in src/difftest/ relies on this.
  uint64_t FinalStateHash = 0;
  /// One representative state per distinct final hash (only with
  /// McOptions::KeepFinalStates).
  std::vector<nsa::State> FinalStates;
  bool PropertyViolated = false;
  nsa::State ViolatingState;
  /// Counterexample path from the initial state to ViolatingState (only
  /// with McOptions::RecordWitness).
  std::vector<WitnessStep> Witness;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

class ModelChecker {
public:
  /// True = bad state.
  using StatePredicate =
      std::function<bool(const nsa::Exec &, const nsa::State &)>;

  explicit ModelChecker(const sa::Network &Net);

  /// Explores the reachable state space from the initial state.
  McResult explore(const McOptions &Options = {},
                   const StatePredicate &BadState = nullptr);

  /// Predicate: automaton \p AutName occupies location \p LocName.
  static StatePredicate locationReached(const sa::Network &Net,
                                        const std::string &AutName,
                                        const std::string &LocName);

  /// Predicate: scalar store variable \p VarName is nonzero, or any element
  /// of an array variable is nonzero.
  static StatePredicate storeNonZero(const sa::Network &Net,
                                     const std::string &VarName);

private:
  /// Enumerates all fireable steps of \p S (committed semantics included).
  void forEachStep(const nsa::State &S,
                   const std::function<void(const nsa::Step &)> &Cb);

  const sa::Network &Net;
  nsa::Exec Ex;
};

} // namespace mc
} // namespace swa

#endif // SWA_MC_MODELCHECKER_H
