//===- mc/ModelChecker.cpp - Explicit-state NSA model checker --------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "mc/ModelChecker.h"

#include "obs/Metrics.h"
#include "obs/Timer.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace swa;
using namespace swa::mc;
using namespace swa::nsa;

ModelChecker::ModelChecker(const sa::Network &Net) : Net(Net), Ex(Net) {}

void ModelChecker::forEachStep(
    const State &S, const std::function<void(const Step &)> &Cb) {
  size_t N = Net.Automata.size();
  std::vector<std::vector<EnabledInst>> Enabled(N);
  for (size_t A = 0; A < N; ++A)
    Ex.collectEnabled(S, static_cast<int>(A), Enabled[A]);

  bool AnyCommitted = Ex.countCommitted(S) > 0;
  auto CommittedOk = [&](const Step &St) {
    if (!AnyCommitted)
      return true;
    if (Ex.inCommitted(S, St.InitiatorAut))
      return true;
    for (const Step::Recv &R : St.Receivers)
      if (Ex.inCommitted(S, R.Aut))
        return true;
    return false;
  };

  for (size_t A = 0; A < N; ++A) {
    for (const EnabledInst &Inst : Enabled[A]) {
      if (Inst.ChanId >= 0 && !Inst.IsSend)
        continue; // Receivers do not initiate.

      if (Inst.ChanId < 0) {
        Step St;
        St.InitiatorAut = static_cast<int32_t>(A);
        St.Initiator = Inst;
        if (CommittedOk(St))
          Cb(St);
        continue;
      }

      if (!Inst.Broadcast) {
        // Binary: every partner instance is a distinct step.
        for (size_t B = 0; B < N; ++B) {
          if (B == A)
            continue;
          for (const EnabledInst &RI : Enabled[B]) {
            if (RI.ChanId != Inst.ChanId || RI.IsSend)
              continue;
            Step St;
            St.InitiatorAut = static_cast<int32_t>(A);
            St.Initiator = Inst;
            St.Receivers.push_back({static_cast<int32_t>(B), RI});
            if (CommittedOk(St))
              Cb(St);
          }
        }
        continue;
      }

      // Broadcast: receivers are maximal; the only nondeterminism is the
      // choice of receiving edge within each participating automaton.
      std::vector<std::pair<int32_t, std::vector<const EnabledInst *>>>
          Choices;
      for (size_t B = 0; B < N; ++B) {
        if (B == A)
          continue;
        std::vector<const EnabledInst *> Options;
        for (const EnabledInst &RI : Enabled[B])
          if (RI.ChanId == Inst.ChanId && !RI.IsSend)
            Options.push_back(&RI);
        if (!Options.empty())
          Choices.push_back({static_cast<int32_t>(B), std::move(Options)});
      }
      // Cross product over per-automaton edge choices.
      std::vector<size_t> Pick(Choices.size(), 0);
      for (;;) {
        Step St;
        St.InitiatorAut = static_cast<int32_t>(A);
        St.Initiator = Inst;
        for (size_t I = 0; I < Choices.size(); ++I)
          St.Receivers.push_back(
              {Choices[I].first, *Choices[I].second[Pick[I]]});
        if (CommittedOk(St))
          Cb(St);
        size_t I = 0;
        for (; I < Choices.size(); ++I) {
          if (++Pick[I] < Choices[I].second.size()) {
            std::fill(Pick.begin(), Pick.begin() + static_cast<long>(I), 0);
            break;
          }
        }
        if (Choices.empty() || I == Choices.size())
          break;
      }
    }
  }
}

McResult ModelChecker::explore(const McOptions &Options,
                               const StatePredicate &BadState) {
  obs::ScopedTimer Timer("mc.explore");
  McResult Res;
  int64_t Horizon = Options.Horizon >= 0
                        ? Options.Horizon
                        : Net.metaOr("horizon", TimeInfinity);

  // Publish exploration counters on every exit path (the explorer has
  // several early returns). Registry instruments have stable addresses,
  // so the frontier histogram is cached once and fed directly.
  bool Metrics = obs::enabled();
  obs::Histogram *FrontierHist =
      Metrics ? &obs::Registry::global().histogram("mc.frontier.size")
              : nullptr;
  uint64_t FrontierPeak = 0;
  struct Publish {
    const McResult &Res;
    const bool &Metrics;
    const uint64_t &FrontierPeak;
    ~Publish() {
      if (!Metrics)
        return;
      obs::Registry &Reg = obs::Registry::global();
      Reg.counter("mc.states.expanded").add(Res.StatesExplored);
      Reg.counter("mc.transitions.explored").add(Res.TransitionsExplored);
      Reg.counter("mc.complete.runs").add(Res.CompleteRuns);
      Reg.counter("mc.frontier.peak").add(FrontierPeak);
    }
  } Publisher{Res, Metrics, FrontierPeak};

  std::unordered_set<State, StateHash> Visited;
  std::unordered_set<uint64_t> VisitedHashes;
  std::unordered_set<uint64_t> FinalHashes;
  auto RememberFinal = [&](const State &S) {
    uint64_t H = StateHash()(S);
    bool Fresh = FinalHashes.insert(H).second;
    Res.FinalStateHash = H;
    if (Fresh && Options.KeepFinalStates)
      Res.FinalStates.push_back(S);
  };
  auto Remember = [&](const State &S) {
    if (Options.CompactVisited)
      return VisitedHashes.insert(StateHash()(S)).second;
    return Visited.insert(S).second;
  };

  // Predecessor links for counterexample reconstruction.
  bool Witness = Options.RecordWitness && !Options.CompactVisited;
  struct NodeRec {
    int32_t Parent;
    WitnessStep Step;
  };
  std::vector<NodeRec> Nodes;
  auto DescribeStep = [&](const nsa::Step &St,
                          const State &Pre) -> std::string {
    const sa::Automaton &IA =
        *Net.Automata[static_cast<size_t>(St.InitiatorAut)];
    std::string Out = IA.Name;
    if (St.Initiator.ChanId >= 0) {
      Out += ": " + Net.channelIdName(St.Initiator.ChanId) + "!";
      for (const nsa::Step::Recv &R : St.Receivers)
        Out += " -> " +
               Net.Automata[static_cast<size_t>(R.Aut)]->Name;
    } else {
      const sa::Edge &E =
          IA.Edges[static_cast<size_t>(St.Initiator.Edge)];
      Out += ": " +
             IA.Locations[static_cast<size_t>(E.Src)].Name + " -> " +
             IA.Locations[static_cast<size_t>(E.Dst)].Name;
    }
    (void)Pre;
    return Out;
  };
  auto BuildWitness = [&](int32_t NodeId) {
    std::vector<WitnessStep> Path;
    for (int32_t N = NodeId; N >= 0; N = Nodes[static_cast<size_t>(N)]
                                             .Parent)
      Path.push_back(Nodes[static_cast<size_t>(N)].Step);
    if (!Path.empty())
      Path.pop_back(); // Drop the root's placeholder step.
    std::reverse(Path.begin(), Path.end());
    return Path;
  };

  std::deque<std::pair<State, int32_t>> Frontier;
  State Init;
  Ex.initState(Init);
  Remember(Init);
  if (Witness)
    Nodes.push_back({-1, {}});
  Frontier.push_back({std::move(Init), 0});

  while (!Frontier.empty()) {
    if (FrontierHist) {
      FrontierHist->record(Frontier.size());
      FrontierPeak = std::max(FrontierPeak,
                              static_cast<uint64_t>(Frontier.size()));
    }
    auto [S, NodeId] = std::move(Frontier.back());
    Frontier.pop_back();
    ++Res.StatesExplored;
    if (Res.StatesExplored > Options.MaxStates) {
      Res.Error = formatString("state budget of %llu exceeded",
                               static_cast<unsigned long long>(
                                   Options.MaxStates));
      return Res;
    }

    if (BadState && BadState(Ex, S)) {
      Res.PropertyViolated = true;
      Res.ViolatingState = S;
      if (Witness)
        Res.Witness = BuildWitness(NodeId);
      if (Options.StopAtFirstViolation)
        return Res;
    }

    bool AnyAction = false;
    forEachStep(S, [&](const Step &St) {
      AnyAction = true;
      ++Res.TransitionsExplored;
      State Next = S;
      if (!Ex.applyStep(Next, St))
        return; // Target invariant violated: not a legal successor.
      if (Remember(Next)) {
        int32_t ChildId = 0;
        if (Witness) {
          ChildId = static_cast<int32_t>(Nodes.size());
          Nodes.push_back({NodeId, {S.Now, DescribeStep(St, S)}});
        }
        Frontier.push_back({std::move(Next), ChildId});
      }
    });

    if (AnyAction)
      continue;

    // Maximal progress: delay to the next clock bound.
    if (Ex.countCommitted(S) > 0) {
      // Committed deadlock: treat as a (stuck) complete run.
      ++Res.CompleteRuns;
      RememberFinal(S);
      continue;
    }
    int64_t Next = TimeInfinity;
    for (size_t A = 0; A < Net.Automata.size(); ++A)
      Next = std::min(Next, Ex.wakeTime(S, static_cast<int>(A)));
    if (Next <= S.Now || Next > Horizon) {
      // Quiescent, time-locked, or past the horizon: a complete run.
      // (Actions at exactly the horizon still fire, matching the
      // simulator's boundary semantics.)
      ++Res.CompleteRuns;
      State Final = S;
      if (Next > Horizon && Horizon < TimeInfinity && Horizon > S.Now)
        Ex.advanceTime(Final, Horizon - S.Now);
      RememberFinal(Final);
      continue;
    }
    State Delayed = S;
    Ex.advanceTime(Delayed, Next - S.Now);
    ++Res.TransitionsExplored;
    if (Remember(Delayed)) {
      int32_t ChildId = 0;
      if (Witness) {
        ChildId = static_cast<int32_t>(Nodes.size());
        Nodes.push_back(
            {NodeId,
             {S.Now, formatString("delay to %lld",
                                  static_cast<long long>(Next))}});
      }
      Frontier.push_back({std::move(Delayed), ChildId});
    }
  }

  Res.DistinctFinalStates = FinalHashes.size();
  return Res;
}

ModelChecker::StatePredicate
ModelChecker::locationReached(const sa::Network &Net,
                              const std::string &AutName,
                              const std::string &LocName) {
  int AutIdx = -1;
  int LocIdx = -1;
  for (size_t A = 0; A < Net.Automata.size(); ++A) {
    if (Net.Automata[A]->Name != AutName)
      continue;
    AutIdx = static_cast<int>(A);
    const auto &Locs = Net.Automata[A]->Locations;
    for (size_t L = 0; L < Locs.size(); ++L)
      if (Locs[L].Name == LocName)
        LocIdx = static_cast<int>(L);
    break;
  }
  return [AutIdx, LocIdx](const Exec &, const State &S) {
    return AutIdx >= 0 && LocIdx >= 0 &&
           S.Locs[static_cast<size_t>(AutIdx)] == LocIdx;
  };
}

ModelChecker::StatePredicate
ModelChecker::storeNonZero(const sa::Network &Net,
                           const std::string &VarName) {
  int Base = -1;
  int Size = 0;
  for (const sa::VarInfo &V : Net.Vars)
    if (V.Name == VarName) {
      Base = V.Base;
      Size = V.Size;
      break;
    }
  return [Base, Size](const Exec &, const State &S) {
    for (int I = 0; I < Size; ++I)
      if (S.Store[static_cast<size_t>(Base + I)] != 0)
        return true;
    return false;
  };
}
