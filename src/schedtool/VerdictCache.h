//===- schedtool/VerdictCache.h - Memoized candidate verdicts ---*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe two-level verdict memo for the config search.
///
/// Level 1 maps canonical whole-config fingerprints
/// (cfg::fingerprintConfig) to decided analysis verdicts. The local
/// search revisits structurally identical candidates constantly — the
/// adaptive state changes slowly and symmetric rebinds collapse under
/// canonicalization — so memoizing the verdict makes those candidates
/// free.
///
/// Level 2 maps canonical *component* fingerprints
/// (cfg::fingerprintComponent — a decomposition sub-config keyed
/// together with the global horizon it is simulated to) to per-core-group
/// verdicts. A mutation dirties one or two components; every clean
/// component hits here, so a candidate whose components all hit never
/// constructs a simulator at all, and analysis::mergeComponentVerdicts
/// stitches the whole-config verdict from cached parts. The badness the
/// search ranks by (Horizon - FirstMissTime + 1) is derived from the
/// stored FirstMissTime, so hits reproduce it exactly.
///
/// Determinism: the search consults and fills the cache only from the
/// serial reduce thread, and only *before* dispatching a batch /
/// *after* reducing it in candidate order, so the hit pattern is a pure
/// function of the candidate sequence — independent of Workers and
/// BatchSize timing. The mutex makes the container safe for callers that
/// do share one cache across threads; it is uncontended in the search.
///
/// Entry immutability (load-bearing, both levels): entries are
/// WRITE-ONCE. `lookup` / `lookupComponent` return pointers into the
/// node-based std::unordered_map, whose nodes never relocate on rehash
/// or insert, and `insert` / `insertComponent` never overwrite an
/// existing entry — first insert wins, because re-evaluating the same
/// structure yields the same verdict. Callers therefore hold entry
/// pointers across later inserts (the search batches lookups before the
/// fills). Debug builds assert that a double-insert carries the same
/// verdict; a differing one would mean the fingerprint is not a
/// congruence for the simulator — a correctness bug, not a cache policy
/// question.
///
/// Only decided() verdicts are stored: guard-rail stops (budget, cancel)
/// depend on wall-clock timing and must never be replayed as facts.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SCHEDTOOL_VERDICTCACHE_H
#define SWA_SCHEDTOOL_VERDICTCACHE_H

#include "analysis/Analyzer.h"
#include "config/Fingerprint.h"

#include <cassert>
#include <mutex>
#include <unordered_map>

namespace swa {
namespace schedtool {

class VerdictCache {
public:
  struct Entry {
    /// The *raw* (non-canonicalized) fingerprint of the config that
    /// produced the verdict. A later lookup whose raw fingerprint
    /// differs hit through core-relabeling canonicalization — a
    /// symmetry fold, counted separately from plain revisits.
    cfg::Fingerprint Raw;
    analysis::VerdictOutcome Verdict;
    /// True when the entry arrived via insertSnapshot (warm-from-disk):
    /// a hit on it is a `verdict_cache.snapshot_hits` event, telling
    /// resume/fleet reuse apart from same-run memoization. Purely
    /// observational — no verdict or search decision reads it.
    bool FromSnapshot = false;
  };

  /// One memoized component verdict. GidMap is deliberately absent: the
  /// local-to-original gid mapping depends on where the component sits
  /// inside the *candidate*, not on the component itself, so the caller
  /// supplies its own GidMap when merging.
  struct ComponentEntry {
    cfg::Fingerprint Raw;
    analysis::VerdictOutcome Verdict;
    bool FromSnapshot = false; ///< Same contract as Entry::FromSnapshot.
  };

  /// Returns the entry for \p Key, or nullptr. The pointer stays valid
  /// until clear() (node-based container; inserts never move entries —
  /// the write-once invariant above).
  const Entry *lookup(const cfg::Fingerprint &Key) const {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Key);
    return It == Map.end() ? nullptr : &It->second;
  }

  /// Inserts \p Verdict under \p Key; first insert wins. Undecided
  /// verdicts are rejected.
  void insert(const cfg::Fingerprint &Key, const cfg::Fingerprint &Raw,
              const analysis::VerdictOutcome &Verdict) {
    if (!Verdict.decided())
      return;
    std::lock_guard<std::mutex> Lock(M);
    auto R = Map.emplace(Key, Entry{Raw, Verdict});
    assert((R.second || sameVerdict(R.first->second.Verdict, Verdict)) &&
           "double-insert with a differing verdict: fingerprint is not a "
           "congruence");
    (void)R;
  }

  /// Component-level lookup; same stability contract as lookup().
  const ComponentEntry *lookupComponent(const cfg::Fingerprint &Key) const {
    std::lock_guard<std::mutex> Lock(M);
    auto It = CompMap.find(Key);
    return It == CompMap.end() ? nullptr : &It->second;
  }

  /// Inserts a component verdict under \p Key (from
  /// cfg::fingerprintComponent); first insert wins, undecided rejected.
  void insertComponent(const cfg::Fingerprint &Key,
                       const cfg::Fingerprint &Raw,
                       const analysis::VerdictOutcome &Verdict) {
    if (!Verdict.decided())
      return;
    std::lock_guard<std::mutex> Lock(M);
    auto R = CompMap.emplace(Key, ComponentEntry{Raw, Verdict});
    assert((R.second || sameVerdict(R.first->second.Verdict, Verdict)) &&
           "component double-insert with a differing verdict: fingerprint "
           "is not a congruence");
    (void)R;
  }

  /// Snapshot import: like insert/insertComponent but marks the entry
  /// warm-from-disk. First insert still wins, so merging a snapshot into
  /// a cache that already decided a key is a no-op (and never flips an
  /// existing entry's provenance).
  void insertSnapshot(const cfg::Fingerprint &Key, const cfg::Fingerprint &Raw,
                      const analysis::VerdictOutcome &Verdict) {
    if (!Verdict.decided())
      return;
    std::lock_guard<std::mutex> Lock(M);
    Map.emplace(Key, Entry{Raw, Verdict, /*FromSnapshot=*/true});
  }
  void insertComponentSnapshot(const cfg::Fingerprint &Key,
                               const cfg::Fingerprint &Raw,
                               const analysis::VerdictOutcome &Verdict) {
    if (!Verdict.decided())
      return;
    std::lock_guard<std::mutex> Lock(M);
    CompMap.emplace(Key, ComponentEntry{Raw, Verdict, /*FromSnapshot=*/true});
  }

  /// Snapshot export: invokes \p Fn(Key, Entry) / \p Fn(Key,
  /// ComponentEntry) for every entry under the lock. Iteration order is
  /// the container's — serialization sorts by key, so snapshot bytes do
  /// not depend on it.
  template <typename Fn> void forEachConfig(Fn &&F) const {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &KV : Map)
      F(KV.first, KV.second);
  }
  template <typename Fn> void forEachComponent(Fn &&F) const {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &KV : CompMap)
      F(KV.first, KV.second);
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Map.size();
  }

  size_t componentSize() const {
    std::lock_guard<std::mutex> Lock(M);
    return CompMap.size();
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Map.clear();
    CompMap.clear();
  }

private:
  /// Field-wise verdict equality for the debug double-insert assert.
  /// ActionCount is excluded: an early-exit run and a capped chain may
  /// legitimately count different action totals for the same decided
  /// verdict; the decision fields must agree exactly.
  static bool sameVerdict(const analysis::VerdictOutcome &A,
                          const analysis::VerdictOutcome &B) {
    return A.Schedulable == B.Schedulable && A.Stop == B.Stop &&
           A.FirstMissTime == B.FirstMissTime &&
           A.FirstMissTasks == B.FirstMissTasks;
  }

  mutable std::mutex M;
  std::unordered_map<cfg::Fingerprint, Entry, cfg::FingerprintHash> Map;
  std::unordered_map<cfg::Fingerprint, ComponentEntry, cfg::FingerprintHash>
      CompMap;
};

} // namespace schedtool
} // namespace swa

#endif // SWA_SCHEDTOOL_VERDICTCACHE_H
