//===- schedtool/VerdictCache.h - Memoized candidate verdicts ---*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe map from canonical config fingerprints
/// (cfg::fingerprintConfig) to decided analysis verdicts. The local
/// search revisits structurally identical candidates constantly — the
/// adaptive state changes slowly and symmetric rebinds collapse under
/// canonicalization — so memoizing the verdict makes those candidates
/// free.
///
/// Determinism: the search consults and fills the cache only from the
/// serial reduce thread, and only *before* dispatching a batch /
/// *after* reducing it in candidate order, so the hit pattern is a pure
/// function of the candidate sequence — independent of Workers and
/// BatchSize timing. The mutex makes the container safe for callers that
/// do share one cache across threads; it is uncontended in the search.
///
/// Only decided() verdicts are stored: guard-rail stops (budget, cancel)
/// depend on wall-clock timing and must never be replayed as facts.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SCHEDTOOL_VERDICTCACHE_H
#define SWA_SCHEDTOOL_VERDICTCACHE_H

#include "analysis/Analyzer.h"
#include "config/Fingerprint.h"

#include <mutex>
#include <unordered_map>

namespace swa {
namespace schedtool {

class VerdictCache {
public:
  struct Entry {
    /// The *raw* (non-canonicalized) fingerprint of the config that
    /// produced the verdict. A later lookup whose raw fingerprint
    /// differs hit through core-relabeling canonicalization — a
    /// symmetry fold, counted separately from plain revisits.
    cfg::Fingerprint Raw;
    analysis::VerdictOutcome Verdict;
  };

  /// Returns the entry for \p Key, or nullptr. The pointer stays valid
  /// until clear() (node-based container; inserts never move entries).
  const Entry *lookup(const cfg::Fingerprint &Key) const {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Key);
    return It == Map.end() ? nullptr : &It->second;
  }

  /// Inserts \p Verdict under \p Key; first insert wins (re-evaluating
  /// the same structure yields the same verdict, so overwriting is
  /// pointless). Undecided verdicts are rejected.
  void insert(const cfg::Fingerprint &Key, const cfg::Fingerprint &Raw,
              const analysis::VerdictOutcome &Verdict) {
    if (!Verdict.decided())
      return;
    std::lock_guard<std::mutex> Lock(M);
    Map.emplace(Key, Entry{Raw, Verdict});
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Map.size();
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Map.clear();
  }

private:
  mutable std::mutex M;
  std::unordered_map<cfg::Fingerprint, Entry, cfg::FingerprintHash> Map;
};

} // namespace schedtool
} // namespace swa

#endif // SWA_SCHEDTOOL_VERDICTCACHE_H
