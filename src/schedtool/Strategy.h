//===- schedtool/Strategy.h - Pluggable search metaheuristics ---*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metaheuristic of the config search, refactored out of the
/// ConfigSearch round loop so a portfolio of strategies can race on the
/// same problem (FleetSearch's Share mode). A Strategy owns exactly the
/// decisions the historical loop made inline:
///
///   - perturb():  how candidate J (J >= 1) of a round is derived from
///                 the round's incumbent, driven by the candidate's
///                 private RNG (seeded from (Seed, Round, J) alone, so
///                 the candidate stream is independent of threads and
///                 wall clock);
///   - adapt():    how the incumbent moves after a round, driven by the
///                 search's main RNG;
///   - adaptAllInvalid(): the escape move when every candidate of a
///                 round failed validation.
///
/// Strategies are deterministic: every decision is a pure function of
/// the RNG draws and the inputs, never of time or thread identity, so a
/// strategy's SearchResult is byte-identical run to run — the fleet
/// equality contract (FleetSearch.h) depends on it.
///
/// The default strategy ("local") reproduces the pre-split loop draw for
/// draw: a search with no explicit Strategy is byte-identical to every
/// earlier revision's result.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SCHEDTOOL_STRATEGY_H
#define SWA_SCHEDTOOL_STRATEGY_H

#include "analysis/Analyzer.h"
#include "config/Config.h"
#include "support/Rng.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace swa {
namespace schedtool {

struct SearchProblem;

/// The mutation delta a perturbation applied to the round's base
/// (candidate 0): which partitions' boosts were resampled, and the
/// endpoints of the rebind (RebindPart < 0 when none, or when the rebind
/// drew the partition's current core — a no-op). A Strategy MUST record
/// every change it makes here: incremental dirty tracking derives the
/// re-simulated component set from this delta, and an unrecorded change
/// would silently reuse a stale component verdict.
struct Mutation {
  std::vector<int32_t> BoostChanged;
  int32_t RebindPart = -1;
  int32_t OldCore = -1;
  int32_t NewCore = -1;
};

/// The round's best decided candidate, handed to Strategy::adapt.
/// Pointers reference round-local storage; valid for the call only.
struct RoundBest {
  const cfg::Config *Config = nullptr;
  const std::vector<double> *Boost = nullptr;
  const analysis::VerdictOutcome *Verdict = nullptr;
  /// L - FirstMissTime + 1 (0 when schedulable) — the search's badness
  /// metric, already computed on the reduce path.
  int64_t Badness = 0;
};

/// One metaheuristic. Stateless strategies ("local") need none of the
/// state hooks; stateful ones (annealing temperature ladder, genetic
/// population) serialize their state opaquely so a checkpointed search
/// resumes the strategy mid-stream (Snapshot::StrategyState).
class Strategy {
public:
  virtual ~Strategy();

  /// Stable identifier ("local", "annealing", "genetic"); persisted in
  /// checkpoints, so resuming under a different strategy is a typed
  /// SnapshotMismatch instead of a silently diverging run.
  virtual const char *name() const = 0;

  /// Derives candidate J of a round in place. Config/Boost arrive as
  /// copies of the incumbent; PJ is the candidate's private RNG. Every
  /// boost resample and rebind must be recorded in M (see Mutation).
  virtual void perturb(Rng &PJ, const SearchProblem &P, cfg::Config &Config,
                       std::vector<double> &Boost, Mutation &M) = 0;

  /// Moves the incumbent (Current/Boost) after a round with at least one
  /// decided candidate. R is the search's main RNG: the draw sequence is
  /// part of the reproducible stream a checkpoint captures.
  virtual void adapt(Rng &R, const SearchProblem &P, const RoundBest &Best,
                     cfg::Config &Current, std::vector<double> &Boost) = 0;

  /// Every candidate of the round failed validation; the default escape
  /// resamples all boosts uniformly (the historical loop's move).
  virtual void adaptAllInvalid(Rng &R, const SearchProblem &P,
                               std::vector<double> &Boost);

  /// Serializes the strategy's internal state (appended to Out). The
  /// default is stateless: writes nothing.
  virtual void saveState(std::string &Out) const;

  /// Restores state written by saveState. Returns false on a malformed
  /// payload (the caller degrades to a typed snapshot rejection, never a
  /// half-restored strategy). The default accepts only an empty payload.
  virtual bool loadState(const char *Data, size_t Len);
};

/// Creates a strategy by name: "local" (the classic loop — boost
/// resampling, occasional random rebind, greedy incumbent), "annealing"
/// (simulated annealing on the round-best badness: worse incumbents are
/// accepted with a probability that cools over rounds), or "genetic"
/// (a small population of boost vectors; candidates are tournament-
/// selected crossovers). Returns null for an unknown name.
std::unique_ptr<Strategy> makeStrategy(const std::string &Name);

} // namespace schedtool
} // namespace swa

#endif // SWA_SCHEDTOOL_STRATEGY_H
