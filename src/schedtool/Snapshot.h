//===- schedtool/Snapshot.h - Durable search & cache snapshots --*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable-search snapshot: a versioned, checksummed, length-prefixed
/// binary serialization of a schedtool::VerdictCache (config- and
/// component-level entries under their canonical fingerprints) plus the
/// in-progress state of a ConfigSearch (round index, RNG stream state,
/// adaptive Current/Boost, the partial SearchResult). Written through
/// support::AtomicFile, so a crash at any byte leaves either the old
/// snapshot or the new one on disk — never a torn file.
///
/// File layout (all integers little-endian, independent of host):
///
///   header   "SWASNAP\0" | u32 version | u32 endian marker 0x01020304
///   record*  u32 type | u64 payload_len | u32 payload_crc32 | payload
///   end      type=End record whose payload is the u32 CRC32 of every
///            byte before the end record's own header
///
/// Record types: SearchState (at most one), ConfigEntry, ComponentEntry.
/// Entries are sorted by fingerprint before writing, so snapshot bytes
/// are a pure function of the cache *contents* — two runs that earned
/// the same verdicts write identical files regardless of hash-map
/// iteration order.
///
/// Reader contract (the fault-campaign headline): every malformed input
/// — truncated at any byte, bit-flipped anywhere, wrong version, foreign
/// endianness, zero length, trailing garbage — is rejected with a typed
/// support::Error (ErrorCode::Snapshot*), and nothing is returned until
/// the whole-file CRC verified, so a corrupt file can never smuggle a
/// wrong verdict into a cache: callers degrade to a cold start.
///
/// Compatibility: the format version is bumped on any change to the
/// payload encodings *or* to the fingerprint functions (cfg::Fingerprint
/// values are persisted keys — see the stability note in Fingerprint.h).
/// A reader never guesses across versions: skew is a typed error.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SCHEDTOOL_SNAPSHOT_H
#define SWA_SCHEDTOOL_SNAPSHOT_H

#include "schedtool/ConfigSearch.h"
#include "schedtool/VerdictCache.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace swa {
namespace schedtool {

/// Counters describing checkpoint/snapshot traffic of one run. Filled by
/// saveSnapshot/loadSnapshot/mergeSnapshots and by the search's
/// checkpoint loop (SearchProblem::CkptStats). Deliberately *not* part
/// of SearchResult: checkpoint cadence is wall-clock dependent, and
/// SearchResult must stay byte-identical whether or not (and how often)
/// a run checkpoints.
struct SnapshotStats {
  uint64_t SnapshotsWritten = 0;
  uint64_t SnapshotsLoaded = 0;
  uint64_t BytesWritten = 0;
  uint64_t BytesLoaded = 0;
  /// Entries adopted from loaded/merged snapshots (config + component).
  uint64_t ConfigEntriesMerged = 0;
  uint64_t ComponentEntriesMerged = 0;
  /// Cache hits served by warm-from-disk entries during the search.
  uint64_t SnapshotHits = 0;
  /// Checkpoint writes that failed (search continues; last message
  /// kept). A non-empty LastError with WriteFailures == 0 never happens.
  uint64_t WriteFailures = 0;
  std::string LastError;
};

/// The in-memory image of a snapshot file.
struct Snapshot {
  /// Version 2 (PR 10): the search-state payload gained the strategy
  /// name + opaque strategy state (portfolio metaheuristics resume
  /// mid-stream). Version 1 files are rejected with a typed skew error
  /// and degrade to a cold start, per the reader contract above.
  static constexpr uint32_t FormatVersion = 2;

  /// One serialized verdict-cache entry (either level).
  struct CacheRecord {
    cfg::Fingerprint Canon; ///< Cache key (canonical fingerprint).
    cfg::Fingerprint Raw;   ///< Raw fingerprint (symmetry-fold detection).
    analysis::VerdictOutcome Verdict;
  };
  std::vector<CacheRecord> ConfigEntries;
  std::vector<CacheRecord> ComponentEntries;

  /// Search-in-progress state. Absent (false) when the snapshot is a
  /// pure cache export — e.g. a fleet member publishing verdicts.
  bool HasSearchState = false;
  /// Identity guard: a snapshot resumes only the (seed, batch, base
  /// config) search that wrote it. BaseCrc is the CRC32 of the encoded
  /// SearchProblem::Base, cheap and canonicalization-free.
  uint64_t Seed = 0;
  int32_t BatchSize = 0;
  uint32_t BaseCrc = 0;
  /// Loop position: the next round index and iterations completed.
  int32_t NextRound = 0;
  int32_t Iter = 0;
  /// The adaptive RNG mid-stream (xoshiro raw state).
  std::array<uint64_t, 4> RngState{};
  /// Adaptive state: the current incumbent binding/windows and boosts.
  cfg::Config Current;
  std::vector<double> Boost;
  /// The partial SearchResult: counters, log, best-so-far, trajectory,
  /// stop-reason taxonomy. Restoring it verbatim is what makes a resumed
  /// run's final SearchResult byte-identical to the uninterrupted one.
  SearchResult Res;
  /// The metaheuristic that wrote the checkpoint (Strategy::name(), ""
  /// reads as "local") and its opaque serialized state — a search can
  /// only resume under the same strategy (else SnapshotMismatch), and
  /// the strategy resumes mid-stream like the RNG does.
  std::string StrategyName;
  std::string StrategyState;

  /// Populates ConfigEntries/ComponentEntries from \p Cache (sorted by
  /// canonical fingerprint; deterministic bytes).
  void captureCache(const VerdictCache &Cache);

  /// Inserts every entry into \p Cache, marked warm-from-disk. Existing
  /// entries win (write-once cache). Returns the number of entries
  /// actually adopted as (config, component).
  std::pair<uint64_t, uint64_t> seedCache(VerdictCache &Cache) const;
};

/// CRC32 of the canonical little-endian encoding of \p Base — the
/// config component of a snapshot's identity triple (Snapshot::BaseCrc).
/// Cheap (no canonicalization) and host-independent.
uint32_t snapshotBaseCrc(const cfg::Config &Base);

/// Serializes \p S and atomically replaces \p Path (write-temp + fsync +
/// rename). Typed ErrorCode::Io on failure; on failure the old file (if
/// any) is intact and no temp file is left behind. On success \p Stats
/// (when non-null) accrues SnapshotsWritten/BytesWritten.
Error saveSnapshot(const Snapshot &S, const std::string &Path,
                   SnapshotStats *Stats = nullptr);

/// Reads and fully verifies \p Path. Every malformed file yields a typed
/// error (ErrorCode::SnapshotTruncated / SnapshotCorrupt /
/// SnapshotVersionSkew / SnapshotEndianMismatch; missing/unreadable file
/// is ErrorCode::Io) — never a partially-filled Snapshot. On success
/// \p Stats (when non-null) accrues SnapshotsLoaded/BytesLoaded.
Result<Snapshot> loadSnapshot(const std::string &Path,
                              SnapshotStats *Stats = nullptr);

/// Merges \p Src into \p Dst: cache entries are unioned (Dst wins on a
/// duplicate key; a duplicate whose *verdict decision differs* is a
/// typed SnapshotMismatch error — the two snapshots cannot be from the
/// same fingerprint universe), and Dst adopts Src's search state when
/// Dst has none or Src has progressed further (greater Iter) — in which
/// case both must carry the same identity triple (Seed, BatchSize,
/// BaseCrc), else SnapshotMismatch. On error \p Dst is unchanged.
/// \p Stats (when non-null) accrues *EntriesMerged.
Error mergeSnapshots(Snapshot &Dst, const Snapshot &Src,
                     SnapshotStats *Stats = nullptr);

/// Adds the durable-search counters of \p Stats to \p Report under the
/// snapshot.* keys (the warm-hit count under verdict_cache.snapshot_hits,
/// matching the obs counter of the same name).
void fillSnapshotReport(obs::RunReport &Report, const SnapshotStats &Stats);

/// Appends the canonical little-endian wire encoding of \p C to \p Out —
/// the exact byte stream snapshotBaseCrc hashes. The fleet manifest
/// (FleetSearch.cpp) embeds configs with it so a worker process rebuilds
/// the coordinator's SearchProblem bit-for-bit.
void encodeConfigBytes(const cfg::Config &C, std::string &Out);

/// Decodes a config encoded by encodeConfigBytes (the whole buffer must
/// be consumed). Returns false on any malformed input, leaving \p C
/// unspecified.
bool decodeConfigBytes(const std::string &Data, cfg::Config &C);

/// The canonical wire encoding of a SearchResult — every field,
/// including log and trajectory. Two results are byte-identical exactly
/// when these strings are equal; the fleet coordinator's shard-equality
/// check is literal comparison of them.
std::string encodeSearchResultBytes(const SearchResult &Res);

} // namespace schedtool
} // namespace swa

#endif // SWA_SCHEDTOOL_SNAPSHOT_H
