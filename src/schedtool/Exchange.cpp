//===- schedtool/Exchange.cpp - Shared verdict exchange directory -----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "schedtool/Exchange.h"

#include "schedtool/Snapshot.h"
#include "support/StringUtils.h"

#include <sys/stat.h>

using namespace swa;
using namespace swa::schedtool;

static std::string pubPath(const std::string &Dir, int Shard) {
  return Dir + "/shard_" + std::to_string(Shard) + ".pub";
}

Error Exchange::init(std::string D, int ShardIndex, int ShardCount, Mode Md) {
  if (ShardCount < 1 || ShardIndex < 0 || ShardIndex >= ShardCount)
    return Error::failure(formatString(
        "invalid exchange shard %d/%d", ShardIndex, ShardCount));
  struct stat St;
  if (::stat(D.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
    return Error::failure(ErrorCode::Io,
                          "exchange directory does not exist: " + D);
  Dir = std::move(D);
  Idx = ShardIndex;
  N = ShardCount;
  M = Md;
  Peers.assign(static_cast<size_t>(N), PeerFile());
  return Error::success();
}

void Exchange::publish() {
  size_t NCfg = Out.size(), NComp = Out.componentSize();
  // Nothing new since the last publication (or nothing at all): peers
  // treat a missing or stale file identically, so skipping is safe.
  if (NCfg == PublishedCfg && NComp == PublishedComp)
    return;
  Snapshot S;
  S.captureCache(Out);
  if (saveSnapshot(S, pubPath(Dir, Idx))) {
    // Swallowed: a full disk or read-only exchange must not change what
    // the search computes — peers fall back to simulating locally.
    ++Stats.PublishFailures;
    return;
  }
  ++Stats.Publications;
  PublishedCfg = NCfg;
  PublishedComp = NComp;
}

void Exchange::refresh() {
  ++Stats.Refreshes;
  for (int J = 0; J < N; ++J) {
    if (J == Idx)
      continue;
    std::string Path = pubPath(Dir, J);
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0)
      continue; // peer has not published yet — normal early on
    PeerFile &P = Peers[static_cast<size_t>(J)];
    long long MtNs =
        static_cast<long long>(St.st_mtim.tv_sec) * 1000000000LL +
        static_cast<long long>(St.st_mtim.tv_nsec);
    if (P.Size == static_cast<long long>(St.st_size) && P.MtimeNs == MtNs &&
        P.Inode == static_cast<unsigned long long>(St.st_ino))
      continue; // unchanged since the last load
    Result<Snapshot> S = loadSnapshot(Path);
    if (!S.ok()) {
      // AtomicFile guarantees old-or-new, so this is not a torn read; a
      // load can still race a rename in a way stat() resolves next
      // sweep, so count it and retry then (PeerFile left stale).
      ++Stats.PeerLoadErrors;
      continue;
    }
    P.Size = static_cast<long long>(St.st_size);
    P.MtimeNs = MtNs;
    P.Inode = static_cast<unsigned long long>(St.st_ino);
    ++Stats.PeerSnapshotsLoaded;
    size_t C0 = In.size(), K0 = In.componentSize();
    for (const Snapshot::CacheRecord &E : S->ConfigEntries)
      In.insertSnapshot(E.Canon, E.Raw, E.Verdict);
    for (const Snapshot::CacheRecord &E : S->ComponentEntries)
      In.insertComponentSnapshot(E.Canon, E.Raw, E.Verdict);
    Stats.ConfigEntriesFetched += In.size() - C0;
    Stats.ComponentEntriesFetched += In.componentSize() - K0;
  }
}
