//===- schedtool/Strategy.cpp - Pluggable search metaheuristics -------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "schedtool/Strategy.h"

#include "schedtool/ConfigSearch.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace swa;
using namespace swa::schedtool;

Strategy::~Strategy() = default;

void Strategy::adaptAllInvalid(Rng &R, const SearchProblem &P,
                               std::vector<double> &Boost) {
  for (double &B : Boost)
    B = P.MinBoost + R.uniformDouble() * (P.MaxBoost - P.MinBoost);
}

void Strategy::saveState(std::string &Out) const { (void)Out; }

bool Strategy::loadState(const char *Data, size_t Len) {
  (void)Data;
  return Len == 0;
}

namespace {

// Tiny little-endian state codec (strategy state is opaque to the
// snapshot layer, which stores it as one string; see Snapshot.cpp for
// the framing that CRC-guards it).
void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putI64(std::string &Out, int64_t V) {
  putU64(Out, static_cast<uint64_t>(V));
}
void putF64(std::string &Out, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

struct StateReader {
  const unsigned char *P;
  size_t Left;
  bool Ok = true;
  StateReader(const char *Data, size_t Len)
      : P(reinterpret_cast<const unsigned char *>(Data)), Left(Len) {}
  uint32_t u32() {
    if (Left < 4) {
      Ok = false;
      return 0;
    }
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(P[static_cast<size_t>(I)]) << (8 * I);
    P += 4;
    Left -= 4;
    return V;
  }
  uint64_t u64() {
    if (Left < 8) {
      Ok = false;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(P[static_cast<size_t>(I)]) << (8 * I);
    P += 8;
    Left -= 8;
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  bool done() const { return Ok && Left == 0; }
};

/// The historical adaptive move, shared by every strategy: grow the
/// windows of the partitions whose tasks miss at the first-miss instant
/// (the only failure set every evaluation mode computes identically) and
/// occasionally rebind the worst partition to the least-loaded core.
/// Draw-for-draw identical to the pre-Strategy loop.
void boostFailingAndMaybeRebind(Rng &R, const SearchProblem &P,
                                const analysis::VerdictOutcome &V,
                                cfg::Config &Current,
                                std::vector<double> &Boost) {
  std::vector<int64_t> FailedPerPartition(Current.Partitions.size(), 0);
  for (int32_t G : V.FirstMissTasks)
    if (G >= 0 && G < Current.numTasks())
      ++FailedPerPartition[static_cast<size_t>(
          Current.taskRefOf(G).Partition)];

  int Worst = -1;
  for (size_t Part = 0; Part < FailedPerPartition.size(); ++Part) {
    if (FailedPerPartition[Part] == 0)
      continue;
    Boost[Part] = std::min(P.MaxBoost, Boost[Part] * 1.25);
    if (Worst < 0 || FailedPerPartition[Part] >
                         FailedPerPartition[static_cast<size_t>(Worst)])
      Worst = static_cast<int>(Part);
  }
  if (Worst >= 0 && R.chance(0.3)) {
    // Rebind the worst partition to the core with the lowest load.
    std::vector<double> Load(Current.Cores.size(), 0.0);
    for (size_t Part = 0; Part < Current.Partitions.size(); ++Part)
      if (Current.Partitions[Part].Core >= 0)
        Load[static_cast<size_t>(Current.Partitions[Part].Core)] +=
            Current.partitionUtilization(static_cast<int>(Part));
    int Lightest = 0;
    for (size_t C = 1; C < Load.size(); ++C)
      if (Load[C] < Load[static_cast<size_t>(Lightest)])
        Lightest = static_cast<int>(C);
    Current.Partitions[static_cast<size_t>(Worst)].Core = Lightest;
  }
}

/// The historical perturbation, shared as the base move: resample each
/// boost with probability 0.4, then rebind a random partition to a
/// random core with probability 0.3.
void perturbLocal(Rng &PJ, const SearchProblem &P, cfg::Config &Config,
                  std::vector<double> &Boost, Mutation &M) {
  for (size_t Part = 0; Part < Boost.size(); ++Part)
    if (PJ.chance(0.4)) {
      Boost[Part] =
          P.MinBoost + PJ.uniformDouble() * (P.MaxBoost - P.MinBoost);
      M.BoostChanged.push_back(static_cast<int32_t>(Part));
    }
  if (!Config.Partitions.empty() && !Config.Cores.empty() &&
      PJ.chance(0.3)) {
    size_t Part = PJ.index(Config.Partitions.size());
    int NewCore = static_cast<int>(PJ.index(Config.Cores.size()));
    int OldCore = Config.Partitions[Part].Core;
    Config.Partitions[Part].Core = NewCore;
    if (NewCore != OldCore) {
      M.RebindPart = static_cast<int32_t>(Part);
      M.OldCore = OldCore;
      M.NewCore = NewCore;
    }
  }
}

/// The classic greedy local search: take the round's best candidate as
/// the next incumbent unconditionally. Stateless.
class LocalSearch final : public Strategy {
public:
  const char *name() const override { return "local"; }

  void perturb(Rng &PJ, const SearchProblem &P, cfg::Config &Config,
               std::vector<double> &Boost, Mutation &M) override {
    perturbLocal(PJ, P, Config, Boost, M);
  }

  void adapt(Rng &R, const SearchProblem &P, const RoundBest &Best,
             cfg::Config &Current, std::vector<double> &Boost) override {
    Current = *Best.Config;
    Boost = *Best.Boost;
    boostFailingAndMaybeRebind(R, P, *Best.Verdict, Current, Boost);
  }
};

/// Simulated annealing on the round-best badness: an improving round is
/// always adopted; a worsening one with probability exp(-relative
/// regression / T), T cooling geometrically per round. Rejected rounds
/// keep the incumbent, so the walk can escape the greedy basin early and
/// turns greedy as T drops. State: the accepted badness and the round
/// count (the temperature ladder position).
class Annealing final : public Strategy {
public:
  const char *name() const override { return "annealing"; }

  void perturb(Rng &PJ, const SearchProblem &P, cfg::Config &Config,
               std::vector<double> &Boost, Mutation &M) override {
    perturbLocal(PJ, P, Config, Boost, M);
  }

  void adapt(Rng &R, const SearchProblem &P, const RoundBest &Best,
             cfg::Config &Current, std::vector<double> &Boost) override {
    ++Rounds;
    bool Accept = true;
    if (AcceptedBadness >= 0 && Best.Badness > AcceptedBadness) {
      double T = kT0 * std::pow(kAlpha, static_cast<double>(Rounds));
      double Rel =
          static_cast<double>(Best.Badness - AcceptedBadness) /
          static_cast<double>(std::max<int64_t>(1, AcceptedBadness));
      Accept = R.uniformDouble() < std::exp(-Rel / std::max(1e-9, T));
    }
    if (Accept) {
      Current = *Best.Config;
      Boost = *Best.Boost;
      AcceptedBadness = Best.Badness;
    }
    boostFailingAndMaybeRebind(R, P, *Best.Verdict, Current, Boost);
  }

  void saveState(std::string &Out) const override {
    putU32(Out, static_cast<uint32_t>(Rounds));
    putI64(Out, AcceptedBadness);
  }

  bool loadState(const char *Data, size_t Len) override {
    StateReader In(Data, Len);
    uint32_t R = In.u32();
    int64_t B = In.i64();
    if (!In.done())
      return false;
    Rounds = static_cast<int>(R);
    AcceptedBadness = B;
    return true;
  }

private:
  static constexpr double kT0 = 0.5;
  static constexpr double kAlpha = 0.9;
  int Rounds = 0;
  int64_t AcceptedBadness = -1;
};

/// A small genetic search over boost vectors: the population holds the
/// best boost vectors seen (the binding still evolves through perturb's
/// rebind move); candidates are tournament-selected uniform crossovers
/// with per-gene mutation. State: the population with its badness.
class Genetic final : public Strategy {
public:
  const char *name() const override { return "genetic"; }

  void perturb(Rng &PJ, const SearchProblem &P, cfg::Config &Config,
               std::vector<double> &Boost, Mutation &M) override {
    if (Pop.size() < 2) {
      perturbLocal(PJ, P, Config, Boost, M);
      return;
    }
    const Member &A = Pop[tournament(PJ)];
    const Member &B = Pop[tournament(PJ)];
    for (size_t G = 0; G < Boost.size(); ++G) {
      double Old = Boost[G];
      double V = Old;
      const std::vector<double> &Src = PJ.chance(0.5) ? A.Boost : B.Boost;
      if (G < Src.size())
        V = Src[G];
      if (PJ.chance(0.15))
        V = P.MinBoost + PJ.uniformDouble() * (P.MaxBoost - P.MinBoost);
      if (V != Old) {
        Boost[G] = V;
        M.BoostChanged.push_back(static_cast<int32_t>(G));
      }
    }
    if (!Config.Partitions.empty() && !Config.Cores.empty() &&
        PJ.chance(0.3)) {
      size_t Part = PJ.index(Config.Partitions.size());
      int NewCore = static_cast<int>(PJ.index(Config.Cores.size()));
      int OldCore = Config.Partitions[Part].Core;
      Config.Partitions[Part].Core = NewCore;
      if (NewCore != OldCore) {
        M.RebindPart = static_cast<int32_t>(Part);
        M.OldCore = OldCore;
        M.NewCore = NewCore;
      }
    }
  }

  void adapt(Rng &R, const SearchProblem &P, const RoundBest &Best,
             cfg::Config &Current, std::vector<double> &Boost) override {
    Current = *Best.Config;
    Boost = *Best.Boost;
    Pop.push_back({*Best.Boost, Best.Badness});
    std::stable_sort(Pop.begin(), Pop.end(),
                     [](const Member &A, const Member &B) {
                       return A.Badness < B.Badness;
                     });
    if (Pop.size() > kPopCap)
      Pop.resize(kPopCap);
    boostFailingAndMaybeRebind(R, P, *Best.Verdict, Current, Boost);
  }

  void saveState(std::string &Out) const override {
    putU32(Out, static_cast<uint32_t>(Pop.size()));
    for (const Member &M : Pop) {
      putU32(Out, static_cast<uint32_t>(M.Boost.size()));
      for (double B : M.Boost)
        putF64(Out, B);
      putI64(Out, M.Badness);
    }
  }

  bool loadState(const char *Data, size_t Len) override {
    StateReader In(Data, Len);
    uint32_t N = In.u32();
    if (!In.Ok || N > 1024)
      return false;
    std::vector<Member> NewPop;
    NewPop.reserve(N);
    for (uint32_t I = 0; I < N; ++I) {
      Member M;
      uint32_t NG = In.u32();
      if (!In.Ok || NG > 65536)
        return false;
      M.Boost.resize(NG);
      for (uint32_t G = 0; G < NG; ++G)
        M.Boost[G] = In.f64();
      M.Badness = In.i64();
      NewPop.push_back(std::move(M));
    }
    if (!In.done())
      return false;
    Pop = std::move(NewPop);
    return true;
  }

private:
  struct Member {
    std::vector<double> Boost;
    int64_t Badness = 0;
  };
  static constexpr size_t kPopCap = 8;

  size_t tournament(Rng &R) const {
    size_t A = R.index(Pop.size());
    size_t B = R.index(Pop.size());
    return Pop[A].Badness <= Pop[B].Badness ? A : B;
  }

  std::vector<Member> Pop;
};

} // namespace

std::unique_ptr<Strategy>
swa::schedtool::makeStrategy(const std::string &Name) {
  if (Name.empty() || Name == "local")
    return std::make_unique<LocalSearch>();
  if (Name == "annealing")
    return std::make_unique<Annealing>();
  if (Name == "genetic")
    return std::make_unique<Genetic>();
  return nullptr;
}
