//===- schedtool/Snapshot.cpp - Durable search & cache snapshots ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "schedtool/Snapshot.h"

#include "support/AtomicFile.h"
#include "support/Crc32.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_map>

using namespace swa;
using namespace swa::schedtool;

namespace {

//===----------------------------------------------------------------------===//
// Wire primitives: explicit little-endian byte encoding, so snapshot
// bytes are identical on every host and a foreign-endian *writer* is
// impossible by construction — the endian marker guards against foreign
// readers of some future writer and against header corruption.
//===----------------------------------------------------------------------===//

const char kMagic[8] = {'S', 'W', 'A', 'S', 'N', 'A', 'P', '\0'};
constexpr uint32_t kEndianMarker = 0x01020304u;
constexpr uint32_t kHeaderSize = 16; // magic + version + endian marker.

enum RecordType : uint32_t {
  kSearchState = 1,
  kConfigEntry = 2,
  kComponentEntry = 3,
  kEnd = 0xFFFFFFFFu,
};

class Enc {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t U;
    static_assert(sizeof(U) == sizeof(V));
    std::memcpy(&U, &V, sizeof(U));
    u64(U);
  }
  void str(const std::string &S) {
    u64(S.size());
    Buf.append(S);
  }
  const std::string &bytes() const { return Buf; }

private:
  std::string Buf;
};

/// Bounds-checked decoder. Any overrun latches the fail flag; values
/// read after a failure are zero. Callers check ok() (and, for a whole
/// record, consumed()) once at the end instead of after every field.
class Dec {
public:
  Dec(const char *Data, size_t Len) : P(Data), N(Len) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(P[Off++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(P[Off + I]))
           << (8 * I);
    Off += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(P[Off + I]))
           << (8 * I);
    Off += 8;
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t U = u64();
    double V;
    std::memcpy(&V, &U, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t Len = u64();
    if (!need(Len))
      return {};
    std::string S(P + Off, static_cast<size_t>(Len));
    Off += static_cast<size_t>(Len);
    return S;
  }
  /// Element count of a variable-length sequence whose elements occupy
  /// at least \p MinElemSize bytes each: an insane count (corruption in
  /// the length field) fails here instead of attempting a huge reserve.
  uint64_t count(uint64_t MinElemSize) {
    uint64_t C = u64();
    if (MinElemSize > 0 && C > (N - std::min(Off, N)) / MinElemSize) {
      Fail = true;
      return 0;
    }
    return C;
  }

  bool ok() const { return !Fail; }
  /// True when the record was decoded exactly: no overrun and no
  /// trailing bytes inside the payload.
  bool consumed() const { return !Fail && Off == N; }

private:
  bool need(uint64_t Bytes) {
    if (Fail || Bytes > N - Off) {
      Fail = true;
      return false;
    }
    return true;
  }

  const char *P;
  size_t N;
  size_t Off = 0;
  bool Fail = false;
};

//===----------------------------------------------------------------------===//
// Payload encodings.
//===----------------------------------------------------------------------===//

void encodeConfig(Enc &E, const cfg::Config &C) {
  E.str(C.Name);
  E.i32(C.NumCoreTypes);
  E.u64(C.Cores.size());
  for (const cfg::Core &Core : C.Cores) {
    E.str(Core.Name);
    E.i32(Core.Module);
    E.i32(Core.CoreType);
  }
  E.u64(C.Partitions.size());
  for (const cfg::Partition &P : C.Partitions) {
    E.str(P.Name);
    E.u8(static_cast<uint8_t>(P.Scheduler));
    E.i32(P.Core);
    E.u64(P.Tasks.size());
    for (const cfg::Task &T : P.Tasks) {
      E.str(T.Name);
      E.i32(T.Priority);
      E.u64(T.Wcet.size());
      for (cfg::TimeValue W : T.Wcet)
        E.i64(W);
      E.i64(T.Period);
      E.i64(T.Deadline);
    }
    E.u64(P.Windows.size());
    for (const cfg::Window &W : P.Windows) {
      E.i64(W.Start);
      E.i64(W.End);
    }
  }
  E.u64(C.Messages.size());
  for (const cfg::Message &M : C.Messages) {
    E.i32(M.Sender.Partition);
    E.i32(M.Sender.Task);
    E.i32(M.Receiver.Partition);
    E.i32(M.Receiver.Task);
    E.i64(M.MemDelay);
    E.i64(M.NetDelay);
  }
}

bool decodeConfig(Dec &D, cfg::Config &C) {
  C.Name = D.str();
  C.NumCoreTypes = D.i32();
  uint64_t NCores = D.count(9);
  for (uint64_t I = 0; D.ok() && I < NCores; ++I) {
    cfg::Core Core;
    Core.Name = D.str();
    Core.Module = D.i32();
    Core.CoreType = D.i32();
    C.Cores.push_back(std::move(Core));
  }
  uint64_t NParts = D.count(29);
  for (uint64_t I = 0; D.ok() && I < NParts; ++I) {
    cfg::Partition P;
    P.Name = D.str();
    uint8_t Kind = D.u8();
    if (Kind > static_cast<uint8_t>(cfg::SchedulerKind::EDF))
      return false;
    P.Scheduler = static_cast<cfg::SchedulerKind>(Kind);
    P.Core = D.i32();
    uint64_t NTasks = D.count(36);
    for (uint64_t T = 0; D.ok() && T < NTasks; ++T) {
      cfg::Task Task;
      Task.Name = D.str();
      Task.Priority = D.i32();
      uint64_t NWcet = D.count(8);
      for (uint64_t W = 0; D.ok() && W < NWcet; ++W)
        Task.Wcet.push_back(D.i64());
      Task.Period = D.i64();
      Task.Deadline = D.i64();
      P.Tasks.push_back(std::move(Task));
    }
    uint64_t NWin = D.count(16);
    for (uint64_t W = 0; D.ok() && W < NWin; ++W) {
      cfg::Window Win;
      Win.Start = D.i64();
      Win.End = D.i64();
      P.Windows.push_back(Win);
    }
    C.Partitions.push_back(std::move(P));
  }
  uint64_t NMsgs = D.count(32);
  for (uint64_t I = 0; D.ok() && I < NMsgs; ++I) {
    cfg::Message M;
    M.Sender.Partition = D.i32();
    M.Sender.Task = D.i32();
    M.Receiver.Partition = D.i32();
    M.Receiver.Task = D.i32();
    M.MemDelay = D.i64();
    M.NetDelay = D.i64();
    C.Messages.push_back(M);
  }
  return D.ok();
}

void encodeVerdict(Enc &E, const analysis::VerdictOutcome &V) {
  E.u8(V.Schedulable ? 1 : 0);
  E.i64(V.FailedTasks);
  E.u64(V.TaskFailed.size());
  for (char F : V.TaskFailed)
    E.u8(static_cast<uint8_t>(F));
  E.u64(V.ActionCount);
  E.i64(V.FirstMissTime);
  E.u64(V.FirstMissTasks.size());
  for (int32_t G : V.FirstMissTasks)
    E.i32(G);
  E.u8(static_cast<uint8_t>(V.Stop));
}

bool decodeVerdict(Dec &D, analysis::VerdictOutcome &V) {
  V.Schedulable = D.u8() != 0;
  V.FailedTasks = D.i64();
  uint64_t NFailed = D.count(1);
  for (uint64_t I = 0; D.ok() && I < NFailed; ++I)
    V.TaskFailed.push_back(static_cast<char>(D.u8()));
  V.ActionCount = D.u64();
  V.FirstMissTime = D.i64();
  uint64_t NMiss = D.count(4);
  for (uint64_t I = 0; D.ok() && I < NMiss; ++I)
    V.FirstMissTasks.push_back(D.i32());
  uint8_t Stop = D.u8();
  if (Stop >= static_cast<uint8_t>(nsa::NumStopReasons))
    return false;
  V.Stop = static_cast<nsa::StopReason>(Stop);
  return D.ok();
}

void encodeCacheRecord(Enc &E, const Snapshot::CacheRecord &R) {
  E.u64(R.Canon.Hi);
  E.u64(R.Canon.Lo);
  E.u64(R.Raw.Hi);
  E.u64(R.Raw.Lo);
  encodeVerdict(E, R.Verdict);
}

bool decodeCacheRecord(Dec &D, Snapshot::CacheRecord &R) {
  R.Canon.Hi = D.u64();
  R.Canon.Lo = D.u64();
  R.Raw.Hi = D.u64();
  R.Raw.Lo = D.u64();
  return decodeVerdict(D, R.Verdict) && D.consumed();
}

void encodeSearchResult(Enc &E, const SearchResult &R) {
  E.u8(R.Found ? 1 : 0);
  encodeConfig(E, R.Best);
  E.i32(R.ConfigurationsEvaluated);
  E.i32(R.SchedulableSeen);
  E.i64(R.BestBadness);
  E.u64(R.BestTrajectory.size());
  for (const auto &[It, Badness] : R.BestTrajectory) {
    E.i32(It);
    E.i64(Badness);
  }
  E.i32(R.CandidatesSkipped);
  E.u8(R.Cancelled ? 1 : 0);
  E.i32(R.CacheHits);
  E.i32(R.CacheMisses);
  E.i32(R.SymmetryFolds);
  E.i32(R.DuplicateCandidates);
  E.i32(R.DecomposedCandidates);
  E.i32(R.ComponentsSimulated);
  E.i32(R.ComponentCacheHits);
  E.i32(R.ComponentCacheMisses);
  E.i32(R.DirtyComponents);
  E.i32(R.CleanComponentsReused);
  E.i32(R.SimulationsRun);
  E.u64(static_cast<uint64_t>(nsa::NumStopReasons));
  for (int C : R.StopReasonCounts)
    E.i32(C);
  E.u64(R.Log.size());
  for (const std::string &Line : R.Log)
    E.str(Line);
}

bool decodeSearchResult(Dec &D, SearchResult &R) {
  R.Found = D.u8() != 0;
  if (!decodeConfig(D, R.Best))
    return false;
  R.ConfigurationsEvaluated = D.i32();
  R.SchedulableSeen = D.i32();
  R.BestBadness = D.i64();
  uint64_t NTraj = D.count(12);
  for (uint64_t I = 0; D.ok() && I < NTraj; ++I) {
    int It = D.i32();
    int64_t Badness = D.i64();
    R.BestTrajectory.push_back({It, Badness});
  }
  R.CandidatesSkipped = D.i32();
  R.Cancelled = D.u8() != 0;
  R.CacheHits = D.i32();
  R.CacheMisses = D.i32();
  R.SymmetryFolds = D.i32();
  R.DuplicateCandidates = D.i32();
  R.DecomposedCandidates = D.i32();
  R.ComponentsSimulated = D.i32();
  R.ComponentCacheHits = D.i32();
  R.ComponentCacheMisses = D.i32();
  R.DirtyComponents = D.i32();
  R.CleanComponentsReused = D.i32();
  R.SimulationsRun = D.i32();
  if (D.u64() != static_cast<uint64_t>(nsa::NumStopReasons))
    return false; // taxonomy changed without a format bump
  for (int &C : R.StopReasonCounts)
    C = D.i32();
  uint64_t NLog = D.count(8);
  for (uint64_t I = 0; D.ok() && I < NLog; ++I)
    R.Log.push_back(D.str());
  return D.ok();
}

void encodeSearchState(Enc &E, const Snapshot &S) {
  E.u64(S.Seed);
  E.i32(S.BatchSize);
  E.u32(S.BaseCrc);
  E.i32(S.NextRound);
  E.i32(S.Iter);
  for (uint64_t W : S.RngState)
    E.u64(W);
  encodeConfig(E, S.Current);
  E.u64(S.Boost.size());
  for (double B : S.Boost)
    E.f64(B);
  encodeSearchResult(E, S.Res);
  E.str(S.StrategyName);
  E.str(S.StrategyState);
}

bool decodeSearchState(Dec &D, Snapshot &S) {
  S.Seed = D.u64();
  S.BatchSize = D.i32();
  S.BaseCrc = D.u32();
  S.NextRound = D.i32();
  S.Iter = D.i32();
  for (uint64_t &W : S.RngState)
    W = D.u64();
  if (!decodeConfig(D, S.Current))
    return false;
  uint64_t NBoost = D.count(8);
  for (uint64_t I = 0; D.ok() && I < NBoost; ++I)
    S.Boost.push_back(D.f64());
  if (!decodeSearchResult(D, S.Res))
    return false;
  S.StrategyName = D.str();
  S.StrategyState = D.str();
  return D.consumed();
}

/// Field-wise equality of the decision fields two snapshots must agree
/// on for one fingerprint (ActionCount may differ between an early-exit
/// and a capped run — same rule as VerdictCache's debug assert).
bool sameDecision(const analysis::VerdictOutcome &A,
                  const analysis::VerdictOutcome &B) {
  return A.Schedulable == B.Schedulable && A.Stop == B.Stop &&
         A.FirstMissTime == B.FirstMissTime &&
         A.FirstMissTasks == B.FirstMissTasks;
}

Error corrupt(const std::string &What) {
  return Error::failure(ErrorCode::SnapshotCorrupt, What);
}

Error truncated(const std::string &What) {
  return Error::failure(ErrorCode::SnapshotTruncated, What);
}

} // namespace

void Snapshot::captureCache(const VerdictCache &Cache) {
  ConfigEntries.clear();
  ComponentEntries.clear();
  Cache.forEachConfig(
      [&](const cfg::Fingerprint &Key, const VerdictCache::Entry &E) {
        ConfigEntries.push_back({Key, E.Raw, E.Verdict});
      });
  Cache.forEachComponent([&](const cfg::Fingerprint &Key,
                             const VerdictCache::ComponentEntry &E) {
    ComponentEntries.push_back({Key, E.Raw, E.Verdict});
  });
  auto ByKey = [](const CacheRecord &A, const CacheRecord &B) {
    return A.Canon.Hi != B.Canon.Hi ? A.Canon.Hi < B.Canon.Hi
                                    : A.Canon.Lo < B.Canon.Lo;
  };
  std::sort(ConfigEntries.begin(), ConfigEntries.end(), ByKey);
  std::sort(ComponentEntries.begin(), ComponentEntries.end(), ByKey);
}

std::pair<uint64_t, uint64_t> Snapshot::seedCache(VerdictCache &Cache) const {
  size_t Cfg0 = Cache.size(), Comp0 = Cache.componentSize();
  for (const CacheRecord &R : ConfigEntries)
    Cache.insertSnapshot(R.Canon, R.Raw, R.Verdict);
  for (const CacheRecord &R : ComponentEntries)
    Cache.insertComponentSnapshot(R.Canon, R.Raw, R.Verdict);
  return {Cache.size() - Cfg0, Cache.componentSize() - Comp0};
}

uint32_t schedtool::snapshotBaseCrc(const cfg::Config &Base) {
  Enc E;
  encodeConfig(E, Base);
  return support::crc32(E.bytes().data(), E.bytes().size());
}

Error schedtool::saveSnapshot(const Snapshot &S, const std::string &Path,
                              SnapshotStats *Stats) {
  support::AtomicFile File;
  if (Error E = File.open(Path))
    return E.withContext("snapshot " + Path);

  uint32_t FileCrc = 0;
  auto Append = [&](const std::string &Bytes) -> Error {
    FileCrc = support::crc32(Bytes.data(), Bytes.size(), FileCrc);
    return File.append(Bytes.data(), Bytes.size());
  };
  auto Record = [&](uint32_t Type, const std::string &Payload) -> Error {
    Enc H;
    H.u32(Type);
    H.u64(Payload.size());
    H.u32(support::crc32(Payload.data(), Payload.size()));
    if (Error E = Append(H.bytes()))
      return E;
    return Append(Payload);
  };

  Enc Header;
  for (char C : kMagic)
    Header.u8(static_cast<uint8_t>(C));
  Header.u32(Snapshot::FormatVersion);
  Header.u32(kEndianMarker);
  if (Error E = Append(Header.bytes()))
    return E.withContext("snapshot " + Path);

  if (S.HasSearchState) {
    Enc P;
    encodeSearchState(P, S);
    if (Error E = Record(kSearchState, P.bytes()))
      return E.withContext("snapshot " + Path);
  }
  for (const Snapshot::CacheRecord &R : S.ConfigEntries) {
    Enc P;
    encodeCacheRecord(P, R);
    if (Error E = Record(kConfigEntry, P.bytes()))
      return E.withContext("snapshot " + Path);
  }
  for (const Snapshot::CacheRecord &R : S.ComponentEntries) {
    Enc P;
    encodeCacheRecord(P, R);
    if (Error E = Record(kComponentEntry, P.bytes()))
      return E.withContext("snapshot " + Path);
  }

  // End record: the whole-file CRC over every byte written so far (header
  // and all records, excluding the end record itself).
  Enc EndPayload;
  EndPayload.u32(FileCrc);
  uint64_t Bytes = 0;
  if (Error E = Record(kEnd, EndPayload.bytes()))
    return E.withContext("snapshot " + Path);
  Bytes = File.bytesWritten();
  if (Error E = File.commit())
    return E.withContext("snapshot " + Path);
  if (Stats) {
    ++Stats->SnapshotsWritten;
    Stats->BytesWritten += Bytes;
  }
  return Error::success();
}

Result<Snapshot> schedtool::loadSnapshot(const std::string &Path,
                                         SnapshotStats *Stats) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return Error::failure(ErrorCode::Io, "cannot open snapshot " + Path);
  std::string Data((std::istreambuf_iterator<char>(IS)),
                   std::istreambuf_iterator<char>());
  if (!IS.good() && !IS.eof())
    return Error::failure(ErrorCode::Io, "cannot read snapshot " + Path);

  if (Data.empty())
    return truncated("empty snapshot file " + Path);
  if (Data.size() < kHeaderSize)
    return truncated("snapshot shorter than its header: " + Path);
  if (std::memcmp(Data.data(), kMagic, sizeof(kMagic)) != 0)
    return corrupt("bad magic: not a snapshot file: " + Path);

  Dec Head(Data.data() + sizeof(kMagic), 8);
  uint32_t Version = Head.u32();
  uint32_t Marker = Head.u32();
  // Endianness first: a foreign-endian writer byte-swaps the version
  // field too, so a skew report before this check would be misleading.
  if (Marker != kEndianMarker) {
    if (Marker == 0x04030201u)
      return Error::failure(ErrorCode::SnapshotEndianMismatch,
                            "snapshot written by a foreign-endian encoder: " +
                                Path);
    return corrupt("bad endian marker in " + Path);
  }
  if (Version != Snapshot::FormatVersion)
    return Error::failure(
        ErrorCode::SnapshotVersionSkew,
        formatString("snapshot format version %u, this reader speaks %u: ",
                     Version, Snapshot::FormatVersion) +
            Path);

  Snapshot S;
  bool SeenSearchState = false, SeenEnd = false;
  size_t Off = kHeaderSize;
  while (Off < Data.size()) {
    if (Data.size() - Off < 16)
      return truncated("snapshot ends mid-record-header: " + Path);
    Dec RH(Data.data() + Off, 16);
    uint32_t Type = RH.u32();
    uint64_t Len = RH.u64();
    uint32_t Crc = RH.u32();
    size_t PayloadOff = Off + 16;
    if (Len > Data.size() - PayloadOff)
      return truncated("snapshot ends mid-record: " + Path);
    const char *Payload = Data.data() + PayloadOff;
    if (support::crc32(Payload, static_cast<size_t>(Len)) != Crc)
      return corrupt(formatString("record CRC mismatch at offset %zu: ", Off) +
                     Path);

    if (Type == kEnd) {
      Dec D(Payload, static_cast<size_t>(Len));
      uint32_t StoredCrc = D.u32();
      if (!D.consumed())
        return corrupt("malformed end record: " + Path);
      if (support::crc32(Data.data(), Off) != StoredCrc)
        return corrupt("whole-file CRC mismatch: " + Path);
      if (PayloadOff + Len != Data.size())
        return corrupt("trailing bytes after end record: " + Path);
      SeenEnd = true;
      break;
    }

    Dec D(Payload, static_cast<size_t>(Len));
    switch (Type) {
    case kSearchState: {
      if (SeenSearchState)
        return corrupt("duplicate search-state record: " + Path);
      if (!decodeSearchState(D, S))
        return corrupt("malformed search-state record: " + Path);
      S.HasSearchState = true;
      SeenSearchState = true;
      break;
    }
    case kConfigEntry: {
      Snapshot::CacheRecord R;
      if (!decodeCacheRecord(D, R))
        return corrupt("malformed config-entry record: " + Path);
      S.ConfigEntries.push_back(std::move(R));
      break;
    }
    case kComponentEntry: {
      Snapshot::CacheRecord R;
      if (!decodeCacheRecord(D, R))
        return corrupt("malformed component-entry record: " + Path);
      S.ComponentEntries.push_back(std::move(R));
      break;
    }
    default:
      return corrupt(formatString("unknown record type %u: ", Type) + Path);
    }
    Off = PayloadOff + static_cast<size_t>(Len);
  }
  if (!SeenEnd)
    return truncated("snapshot missing its end record: " + Path);

  if (Stats) {
    ++Stats->SnapshotsLoaded;
    Stats->BytesLoaded += Data.size();
  }
  return S;
}

Error schedtool::mergeSnapshots(Snapshot &Dst, const Snapshot &Src,
                                SnapshotStats *Stats) {
  // Stage everything, commit only when the whole merge validated.
  auto MergeEntries =
      [](const std::vector<Snapshot::CacheRecord> &DstE,
         const std::vector<Snapshot::CacheRecord> &SrcE,
         std::vector<Snapshot::CacheRecord> &Fresh) -> Error {
    std::unordered_map<cfg::Fingerprint, const Snapshot::CacheRecord *,
                       cfg::FingerprintHash>
        Index;
    Index.reserve(DstE.size());
    for (const Snapshot::CacheRecord &R : DstE)
      Index.emplace(R.Canon, &R);
    for (const Snapshot::CacheRecord &R : SrcE) {
      auto It = Index.find(R.Canon);
      if (It == Index.end()) {
        Fresh.push_back(R);
        continue;
      }
      if (!sameDecision(It->second->Verdict, R.Verdict))
        return Error::failure(
            ErrorCode::SnapshotMismatch,
            formatString("conflicting verdicts for fingerprint %016llx%016llx "
                         "- snapshots are not from the same problem universe",
                         static_cast<unsigned long long>(R.Canon.Hi),
                         static_cast<unsigned long long>(R.Canon.Lo)));
    }
    return Error::success();
  };

  std::vector<Snapshot::CacheRecord> FreshCfg, FreshComp;
  if (Error E = MergeEntries(Dst.ConfigEntries, Src.ConfigEntries, FreshCfg))
    return E;
  if (Error E =
          MergeEntries(Dst.ComponentEntries, Src.ComponentEntries, FreshComp))
    return E;

  bool AdoptState = false;
  if (Src.HasSearchState) {
    if (!Dst.HasSearchState) {
      AdoptState = true;
    } else {
      if (Dst.Seed != Src.Seed || Dst.BatchSize != Src.BatchSize ||
          Dst.BaseCrc != Src.BaseCrc)
        return Error::failure(ErrorCode::SnapshotMismatch,
                              "cannot merge search states of two different "
                              "searches (seed/batch/base differ)");
      AdoptState = Src.Iter > Dst.Iter;
    }
  }

  // Commit.
  Dst.ConfigEntries.insert(Dst.ConfigEntries.end(), FreshCfg.begin(),
                           FreshCfg.end());
  Dst.ComponentEntries.insert(Dst.ComponentEntries.end(), FreshComp.begin(),
                              FreshComp.end());
  if (AdoptState) {
    Dst.HasSearchState = true;
    Dst.Seed = Src.Seed;
    Dst.BatchSize = Src.BatchSize;
    Dst.BaseCrc = Src.BaseCrc;
    Dst.NextRound = Src.NextRound;
    Dst.Iter = Src.Iter;
    Dst.RngState = Src.RngState;
    Dst.Current = Src.Current;
    Dst.Boost = Src.Boost;
    Dst.Res = Src.Res;
  }
  if (Stats) {
    Stats->ConfigEntriesMerged += FreshCfg.size();
    Stats->ComponentEntriesMerged += FreshComp.size();
  }
  return Error::success();
}

void schedtool::fillSnapshotReport(obs::RunReport &Report,
                                   const SnapshotStats &Stats) {
  Report.addCount("snapshot.written", Stats.SnapshotsWritten);
  Report.addCount("snapshot.loaded", Stats.SnapshotsLoaded);
  Report.addCount("snapshot.bytes_written", Stats.BytesWritten);
  Report.addCount("snapshot.bytes_loaded", Stats.BytesLoaded);
  Report.addCount("snapshot.entries_merged",
                  Stats.ConfigEntriesMerged + Stats.ComponentEntriesMerged);
  Report.addCount("snapshot.write_failures", Stats.WriteFailures);
  Report.addCount("verdict_cache.snapshot_hits", Stats.SnapshotHits);
}

void schedtool::encodeConfigBytes(const cfg::Config &C, std::string &Out) {
  Enc E;
  encodeConfig(E, C);
  Out.append(E.bytes());
}

bool schedtool::decodeConfigBytes(const std::string &Data, cfg::Config &C) {
  Dec D(Data.data(), Data.size());
  return decodeConfig(D, C) && D.consumed();
}

std::string schedtool::encodeSearchResultBytes(const SearchResult &Res) {
  Enc E;
  encodeSearchResult(E, Res);
  return E.bytes();
}
