//===- schedtool/ConfigSearch.cpp - Model-in-the-loop config search ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "schedtool/ConfigSearch.h"

#include "analysis/Analyzer.h"
#include "obs/Metrics.h"
#include "obs/Timer.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace swa;
using namespace swa::schedtool;

bool swa::schedtool::bindFirstFitDecreasing(cfg::Config &Config) {
  // Order partitions by demand (utilization with type-0 WCETs).
  std::vector<std::pair<double, int>> Order;
  for (size_t P = 0; P < Config.Partitions.size(); ++P) {
    double U = 0;
    for (const cfg::Task &T : Config.Partitions[P].Tasks)
      U += static_cast<double>(T.Wcet[0]) /
           static_cast<double>(T.Period);
    Order.push_back({U, static_cast<int>(P)});
  }
  std::sort(Order.begin(), Order.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });

  std::vector<double> CoreLoad(Config.Cores.size(), 0.0);
  for (auto &[U, P] : Order) {
    int Best = -1;
    for (size_t C = 0; C < Config.Cores.size(); ++C) {
      int Type = Config.Cores[C].CoreType;
      double UC = 0;
      for (const cfg::Task &T :
           Config.Partitions[static_cast<size_t>(P)].Tasks)
        UC += static_cast<double>(T.Wcet[static_cast<size_t>(Type)]) /
              static_cast<double>(T.Period);
      if (CoreLoad[C] + UC <= 1.0 &&
          (Best < 0 || CoreLoad[C] < CoreLoad[static_cast<size_t>(Best)]))
        Best = static_cast<int>(C);
    }
    if (Best < 0)
      return false;
    Config.Partitions[static_cast<size_t>(P)].Core = Best;
    int Type = Config.Cores[static_cast<size_t>(Best)].CoreType;
    for (const cfg::Task &T :
         Config.Partitions[static_cast<size_t>(P)].Tasks)
      CoreLoad[static_cast<size_t>(Best)] +=
          static_cast<double>(T.Wcet[static_cast<size_t>(Type)]) /
          static_cast<double>(T.Period);
  }
  return true;
}

void swa::schedtool::synthesizeWindows(cfg::Config &Config,
                                       const std::vector<double> &Boost) {
  cfg::TimeValue L = Config.hyperperiod();
  for (cfg::Partition &P : Config.Partitions)
    P.Windows.clear();

  for (size_t C = 0; C < Config.Cores.size(); ++C) {
    std::vector<int> Parts;
    cfg::TimeValue Minor = L;
    for (size_t P = 0; P < Config.Partitions.size(); ++P) {
      if (Config.Partitions[P].Core != static_cast<int>(C))
        continue;
      Parts.push_back(static_cast<int>(P));
      for (const cfg::Task &T : Config.Partitions[P].Tasks)
        Minor = std::min(Minor, T.Period);
    }
    if (Parts.empty())
      continue;

    std::vector<double> Raw;
    double RawSum = 0;
    for (int P : Parts) {
      double B = static_cast<size_t>(P) < Boost.size()
                     ? Boost[static_cast<size_t>(P)]
                     : 1.5;
      double Slice = std::max(
          1.0, Config.partitionUtilization(P) *
                   static_cast<double>(Minor) * B);
      Raw.push_back(Slice);
      RawSum += Slice;
    }
    double Scale = RawSum > static_cast<double>(Minor)
                       ? static_cast<double>(Minor) / RawSum
                       : 1.0;

    cfg::TimeValue Cursor = 0;
    for (size_t I = 0; I < Parts.size(); ++I) {
      cfg::TimeValue Len = std::max<cfg::TimeValue>(
          1, static_cast<cfg::TimeValue>(Raw[I] * Scale));
      if (Cursor + Len > Minor)
        Len = Minor - Cursor;
      if (Len <= 0)
        break;
      for (cfg::TimeValue Off = 0; Off < L; Off += Minor)
        Config.Partitions[static_cast<size_t>(Parts[I])]
            .Windows.push_back({Off + Cursor, Off + Cursor + Len});
      Cursor += Len;
    }
  }
}

Result<SearchResult>
swa::schedtool::searchConfiguration(const SearchProblem &Problem) {
  obs::ScopedTimer Timer("schedtool.search");
  SearchResult Res;
  Rng R(Problem.Seed);

  // Counters live in the registry (stable addresses), cached here so the
  // loop pays one pointer test per event when metrics are off.
  obs::Counter *CandC = nullptr, *SimC = nullptr, *SchedC = nullptr;
  if (obs::enabled()) {
    obs::Registry &Reg = obs::Registry::global();
    CandC = &Reg.counter("schedtool.candidates.evaluated");
    SimC = &Reg.counter("schedtool.simulations.run");
    SchedC = &Reg.counter("schedtool.schedulable.seen");
  }

  cfg::Config Current = Problem.Base;
  if (!bindFirstFitDecreasing(Current)) {
    Res.Log.push_back("initial binding failed: insufficient capacity");
    return Res;
  }
  std::vector<double> Boost(Current.Partitions.size(), 1.5);

  Res.BestMissedJobs = -1;
  for (int Iter = 0; Iter < Problem.MaxIterations; ++Iter) {
    synthesizeWindows(Current, Boost);
    if (Error E = Current.validate()) {
      // A move produced an invalid layout; perturb and retry.
      Res.Log.push_back(formatString("iter %d: invalid candidate (%s)",
                                     Iter, E.message().c_str()));
      for (double &B : Boost)
        B = Problem.MinBoost +
            R.uniformDouble() * (Problem.MaxBoost - Problem.MinBoost);
      continue;
    }

    Result<analysis::AnalyzeOutcome> Out =
        analysis::analyzeConfiguration(Current);
    if (!Out.ok())
      return Out.takeError();
    ++Res.ConfigurationsEvaluated;
    if (CandC) {
      CandC->add(1);
      SimC->add(1); // One simulated run per candidate.
    }

    const analysis::AnalysisResult &A = Out->Analysis;
    Res.Log.push_back(formatString(
        "iter %d: %s (%lld missed of %lld jobs)", Iter,
        A.Schedulable ? "schedulable" : "unschedulable",
        static_cast<long long>(A.MissedJobs),
        static_cast<long long>(A.TotalJobs)));

    if (A.Schedulable) {
      ++Res.SchedulableSeen;
      if (SchedC)
        SchedC->add(1);
      Res.Found = true;
      Res.Best = Current;
      Res.BestMissedJobs = 0;
      Res.BestTrajectory.push_back({Iter, 0});
      return Res;
    }
    if (Res.BestMissedJobs < 0 || A.MissedJobs < Res.BestMissedJobs) {
      Res.BestMissedJobs = A.MissedJobs;
      Res.Best = Current;
      Res.BestTrajectory.push_back({Iter, A.MissedJobs});
    }

    // Moves: grow the windows of partitions with missed jobs; occasionally
    // rebind the worst partition to the least-loaded core.
    std::vector<int64_t> MissedPerPartition(Current.Partitions.size(), 0);
    for (const analysis::JobStats &J : A.Jobs)
      if (!J.Completed)
        ++MissedPerPartition[static_cast<size_t>(
            Current.taskRefOf(J.TaskGid).Partition)];

    int Worst = -1;
    for (size_t P = 0; P < MissedPerPartition.size(); ++P) {
      if (MissedPerPartition[P] == 0)
        continue;
      Boost[P] = std::min(Problem.MaxBoost, Boost[P] * 1.25);
      if (Worst < 0 || MissedPerPartition[P] >
                           MissedPerPartition[static_cast<size_t>(Worst)])
        Worst = static_cast<int>(P);
    }
    if (Worst >= 0 && R.chance(0.3)) {
      // Rebind the worst partition to the core with the lowest load.
      std::vector<double> Load(Current.Cores.size(), 0.0);
      for (size_t P = 0; P < Current.Partitions.size(); ++P)
        if (Current.Partitions[P].Core >= 0)
          Load[static_cast<size_t>(Current.Partitions[P].Core)] +=
              Current.partitionUtilization(static_cast<int>(P));
      int Lightest = 0;
      for (size_t C = 1; C < Load.size(); ++C)
        if (Load[C] < Load[static_cast<size_t>(Lightest)])
          Lightest = static_cast<int>(C);
      Current.Partitions[static_cast<size_t>(Worst)].Core = Lightest;
    }
  }
  return Res;
}
