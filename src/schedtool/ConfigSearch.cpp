//===- schedtool/ConfigSearch.cpp - Model-in-the-loop config search ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "schedtool/ConfigSearch.h"

#include "analysis/Analyzer.h"
#include "analysis/ModelArena.h"
#include "config/Decompose.h"
#include "config/Fingerprint.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "obs/Timer.h"
#include "schedtool/Exchange.h"
#include "schedtool/Snapshot.h"
#include "schedtool/Strategy.h"
#include "schedtool/VerdictCache.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

using namespace swa;
using namespace swa::schedtool;

bool swa::schedtool::bindFirstFitDecreasing(cfg::Config &Config) {
  // Order partitions by demand (utilization with type-0 WCETs).
  std::vector<std::pair<double, int>> Order;
  for (size_t P = 0; P < Config.Partitions.size(); ++P) {
    double U = 0;
    for (const cfg::Task &T : Config.Partitions[P].Tasks)
      U += static_cast<double>(T.Wcet[0]) /
           static_cast<double>(T.Period);
    Order.push_back({U, static_cast<int>(P)});
  }
  std::sort(Order.begin(), Order.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });

  std::vector<double> CoreLoad(Config.Cores.size(), 0.0);
  for (auto &[U, P] : Order) {
    int Best = -1;
    for (size_t C = 0; C < Config.Cores.size(); ++C) {
      int Type = Config.Cores[C].CoreType;
      double UC = 0;
      for (const cfg::Task &T :
           Config.Partitions[static_cast<size_t>(P)].Tasks)
        UC += static_cast<double>(T.Wcet[static_cast<size_t>(Type)]) /
              static_cast<double>(T.Period);
      if (CoreLoad[C] + UC <= 1.0 &&
          (Best < 0 || CoreLoad[C] < CoreLoad[static_cast<size_t>(Best)]))
        Best = static_cast<int>(C);
    }
    if (Best < 0)
      return false;
    Config.Partitions[static_cast<size_t>(P)].Core = Best;
    int Type = Config.Cores[static_cast<size_t>(Best)].CoreType;
    for (const cfg::Task &T :
         Config.Partitions[static_cast<size_t>(P)].Tasks)
      CoreLoad[static_cast<size_t>(Best)] +=
          static_cast<double>(T.Wcet[static_cast<size_t>(Type)]) /
          static_cast<double>(T.Period);
  }
  return true;
}

void swa::schedtool::synthesizeWindows(cfg::Config &Config,
                                       const std::vector<double> &Boost) {
  cfg::TimeValue L = Config.hyperperiod();
  for (cfg::Partition &P : Config.Partitions)
    P.Windows.clear();

  for (size_t C = 0; C < Config.Cores.size(); ++C) {
    std::vector<int> Parts;
    cfg::TimeValue Minor = L;
    for (size_t P = 0; P < Config.Partitions.size(); ++P) {
      if (Config.Partitions[P].Core != static_cast<int>(C))
        continue;
      Parts.push_back(static_cast<int>(P));
      for (const cfg::Task &T : Config.Partitions[P].Tasks)
        Minor = std::min(Minor, T.Period);
    }
    if (Parts.empty())
      continue;

    std::vector<double> Raw;
    double RawSum = 0;
    for (int P : Parts) {
      double B = static_cast<size_t>(P) < Boost.size()
                     ? Boost[static_cast<size_t>(P)]
                     : 1.5;
      double Slice = std::max(
          1.0, Config.partitionUtilization(P) *
                   static_cast<double>(Minor) * B);
      Raw.push_back(Slice);
      RawSum += Slice;
    }
    double Scale = RawSum > static_cast<double>(Minor)
                       ? static_cast<double>(Minor) / RawSum
                       : 1.0;

    cfg::TimeValue Cursor = 0;
    for (size_t I = 0; I < Parts.size(); ++I) {
      cfg::TimeValue Len = std::max<cfg::TimeValue>(
          1, static_cast<cfg::TimeValue>(Raw[I] * Scale));
      if (Cursor + Len > Minor)
        Len = Minor - Cursor;
      if (Len <= 0)
        break;
      for (cfg::TimeValue Off = 0; Off < L; Off += Minor)
        Config.Partitions[static_cast<size_t>(Parts[I])]
            .Windows.push_back({Off + Cursor, Off + Cursor + Len});
      Cursor += Len;
    }
  }
}

namespace {

/// One candidate of a round: a concrete binding + window layout plus the
/// boost vector that produced it.
struct Candidate {
  cfg::Config Config;
  std::vector<double> Boost;
  bool Valid = false;
  std::string InvalidReason;
};

/// Evaluation slot; written by exactly one worker (or filled serially
/// from the cache / an intra-batch duplicate), read only after the whole
/// batch finished.
struct Eval {
  bool Ok = false;
  std::string ErrMsg;
  analysis::VerdictOutcome V;
};

/// One unit of parallel work: a candidate evaluated monolithically
/// (Comp == kMonolithic), one decomposed component of it (Comp >= 0), a
/// whole decomposed candidate whose components run sequentially inside
/// the item under a shrinking first-miss horizon cap (Comp ==
/// kCappedChain, used when early exit and decomposition combine without
/// the component cache), or one deduplicated component shared by every
/// candidate in the batch that needs it (Comp == kUniqueComp, Unique
/// indexes the round's unique-sim list). The flattened item list keeps
/// ThreadPool::parallelFor non-reentrant while work of different
/// candidates still overlaps.
struct WorkItem {
  static constexpr int kMonolithic = -1;
  static constexpr int kCappedChain = -2;
  static constexpr int kUniqueComp = -3;
  int Cand = -1;
  int Comp = kMonolithic;
  int Unique = -1;
};

/// One component of a candidate's evaluation plan. Sub/GidMap point into
/// round-stable storage (the candidate's own Decomposition or Owned list,
/// or the round base's component list); Hit/Unique record how the
/// component cache resolved it.
struct PlannedComp {
  const cfg::Config *Sub = nullptr;
  const std::vector<int32_t> *GidMap = nullptr;
  /// Cache hit: the verdict replays from this entry (stable address —
  /// see VerdictCache.h on entry immutability).
  const VerdictCache::ComponentEntry *Hit = nullptr;
  /// Cache miss: index into the round's unique-sim list.
  int Unique = -1;
  /// Clean component reused from the round base (>= 0 = base component
  /// id, shares the base's fingerprints); -1 = candidate-owned.
  int BaseComp = -1;
};

/// A candidate's evaluation plan: not decomposed (monolithic item), or a
/// component list backed by either a full cfg::Decomposition (dirty
/// tracking off) or the Owned deque plus base-round references (dirty
/// tracking on; deque for pointer stability under growth).
struct CandPlan {
  bool Decomposed = false;
  std::vector<PlannedComp> Comps;
  cfg::Decomposition D;
  std::deque<cfg::Component> Owned;
};

/// One deduplicated component simulation of a round: the first candidate
/// needing the fingerprint contributes the sub-config pointer; every
/// later one shares the verdict.
struct UniqueSim {
  const cfg::Config *Sub = nullptr;
  cfg::Fingerprint Canon, Raw;
  int FirstCand = -1;
  int ItemSlot = -1;
};

// The per-candidate mutation delta (schedtool::Mutation, Strategy.h) is
// recorded by Strategy::perturb during generation without touching the
// RNG call sequence, so candidate configs are byte-identical with dirty
// tracking on or off.

/// The round base's decomposition state, computed lazily on the first
/// candidate that plans incrementally: component structure of candidate
/// 0, its materialized components, and their fingerprints (filled on
/// first need when the component cache is on).
struct BaseRound {
  bool Ready = false;
  cfg::ComponentStructure S;
  std::vector<cfg::Component> Comps;
  std::vector<char> Ok;
  std::vector<cfg::Fingerprint> Canon, Raw;
  std::vector<char> FpReady;
};

/// A pool of model arenas for instance reuse. ThreadPool::parallelFor
/// exposes no worker identity, so items lease an arena per evaluation;
/// with W workers at most W arenas ever exist and the steady state is
/// one per worker. Verdicts are arena-independent (ModelArena.h), so
/// which item draws which arena — a timing fact — cannot influence any
/// result.
class ArenaPool {
public:
  std::unique_ptr<analysis::ModelArena> acquire() {
    std::lock_guard<std::mutex> Lock(M);
    if (Free.empty()) {
      // Every arena of the pool shares one compiled-bytecode cache:
      // compilation is shape-keyed and its output immutable, so one
      // worker's compile pays for every worker's rebuild of that shape
      // (core::BytecodeCache — wall-clock only, never verdicts).
      auto A = std::make_unique<analysis::ModelArena>();
      A->setSharedBytecode(&Bytecode);
      return A;
    }
    std::unique_ptr<analysis::ModelArena> A = std::move(Free.back());
    Free.pop_back();
    return A;
  }
  void release(std::unique_ptr<analysis::ModelArena> A) {
    std::lock_guard<std::mutex> Lock(M);
    Free.push_back(std::move(A));
  }

private:
  std::mutex M;
  std::vector<std::unique_ptr<analysis::ModelArena>> Free;
  core::BytecodeCache Bytecode;
};

/// RAII lease of one arena for one work item (no-op on a null pool).
class ArenaLease {
public:
  explicit ArenaLease(ArenaPool *Pool) : Pool(Pool) {
    if (Pool)
      A = Pool->acquire();
  }
  ~ArenaLease() {
    if (Pool && A)
      Pool->release(std::move(A));
  }
  ArenaLease(const ArenaLease &) = delete;
  ArenaLease &operator=(const ArenaLease &) = delete;
  analysis::ModelArena *get() const { return A.get(); }

private:
  ArenaPool *Pool;
  std::unique_ptr<analysis::ModelArena> A;
};

/// Deterministic evaluation order for a capped chain: most-starved
/// component first (largest demand-to-window-share ratio over its
/// partitions), so the earliest deadline miss is usually discovered
/// before the comfortably-provisioned components run — their horizons
/// then collapse to that miss instant. A pure function of the
/// decomposition: worker count and batch order cannot change it, and any
/// order yields the same merged verdict (the heuristic only moves cost).
std::vector<size_t> chainOrder(const std::vector<PlannedComp> &Comps) {
  std::vector<double> Score(Comps.size(), 0.0);
  for (size_t K = 0; K < Comps.size(); ++K) {
    const cfg::Config &Sub = *Comps[K].Sub;
    for (size_t P = 0; P < Sub.Partitions.size(); ++P) {
      double Demand = Sub.partitionUtilization(static_cast<int>(P));
      double Supply = Sub.windowShare(static_cast<int>(P));
      double S = Supply > 0.0 ? Demand / Supply
                              : (Demand > 0.0 ? 1e18 : 0.0);
      Score[K] = std::max(Score[K], S);
    }
  }
  std::vector<size_t> Order(Comps.size());
  for (size_t K = 0; K < Order.size(); ++K)
    Order[K] = K;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Score[A] > Score[B];
  });
  return Order;
}

/// Per-candidate perturbation seed: a pure function of (Seed, Round, J),
/// never of the thread that evaluates the candidate.
uint64_t candidateSeed(uint64_t Seed, int Round, int J) {
  uint64_t X = static_cast<uint64_t>(Round) * 0x100000001b3ULL +
               static_cast<uint64_t>(J) + 1;
  return Seed ^ (X * 0x9e3779b97f4a7c15ULL);
}

} // namespace

Result<SearchResult>
swa::schedtool::searchConfiguration(const SearchProblem &Problem) {
  obs::ScopedTimer Timer("schedtool.search");
  SearchResult Res;
  Rng R(Problem.Seed);

  // The metaheuristic: explicit (portfolio worker) or the built-in local
  // search, which reproduces the historical loop draw for draw.
  std::unique_ptr<Strategy> DefaultStrat;
  Strategy *Strat = Problem.Strat;
  if (!Strat) {
    DefaultStrat = makeStrategy("local");
    Strat = DefaultStrat.get();
  }

  // Counters live in the registry (stable addresses within this thread's
  // shard), cached here so the loop pays one pointer test per event when
  // metrics are off. Only the calling thread touches these; workers
  // publish engine-level counters into their own shards, and the merged
  // totals are identical for every Workers value because the work-item
  // set and each item's publications are fixed by (Seed, BatchSize).
  obs::Counter *CandC = nullptr, *SimC = nullptr, *SchedC = nullptr;
  obs::Counter *HitC = nullptr, *MissC = nullptr, *FoldC = nullptr;
  obs::Counter *DecompC = nullptr, *CompC = nullptr;
  obs::Counter *CompHitC = nullptr, *CompMissC = nullptr;
  obs::Counter *DirtyC = nullptr, *CleanC = nullptr;
  obs::Counter *SnapHitC = nullptr, *CkptC = nullptr;
  if (obs::enabled()) {
    obs::Registry &Reg = obs::Registry::global();
    CandC = &Reg.counter("schedtool.candidates.evaluated");
    SimC = &Reg.counter("schedtool.simulations.run");
    SchedC = &Reg.counter("schedtool.schedulable.seen");
    HitC = &Reg.counter("schedtool.cache.hits");
    MissC = &Reg.counter("schedtool.cache.misses");
    FoldC = &Reg.counter("schedtool.cache.folds");
    DecompC = &Reg.counter("schedtool.decomposed.candidates");
    CompC = &Reg.counter("schedtool.components.simulated");
    CompHitC = &Reg.counter("schedtool.component_cache.hits");
    CompMissC = &Reg.counter("schedtool.component_cache.misses");
    DirtyC = &Reg.counter("schedtool.components.dirty");
    CleanC = &Reg.counter("schedtool.components.clean_reused");
    // Warm-from-disk hits vs same-run memoization, and checkpoints
    // actually written — durable-search traffic, outside SearchResult.
    SnapHitC = &Reg.counter("verdict_cache.snapshot_hits");
    CkptC = &Reg.counter("schedtool.checkpoints.written");
  }

  cfg::Config Current = Problem.Base;
  if (!bindFirstFitDecreasing(Current)) {
    Res.Log.push_back("initial binding failed: insufficient capacity");
    return Res;
  }
  std::vector<double> Boost(Current.Partitions.size(), 1.5);

  const int Batch = std::max(1, Problem.BatchSize);
  ThreadPool Pool(std::max(1, Problem.Workers));

  std::vector<Candidate> Cands;
  std::vector<Eval> Evals;

  // Candidate badness is L - FirstMissTime + 1 (0 when schedulable): a
  // metric both a full run and a first-miss early exit compute exactly,
  // so flipping UseEarlyExit cannot change the SearchResult. L depends
  // only on the task periods, which no search move touches.
  const int64_t L = Current.hyperperiod();
  auto BadnessOf = [L](const analysis::VerdictOutcome &V) -> int64_t {
    if (V.Schedulable)
      return 0;
    return V.FirstMissTime >= 0 ? L - V.FirstMissTime + 1 : L + 2;
  };

  VerdictCache Cache;
  // Per-round scratch for the cache / decomposition pipeline.
  std::vector<cfg::Fingerprint> Canon, Raw;
  std::vector<int> DupOf;
  // Verdict provenance per candidate, for the "candidate" span: 0 =
  // simulated, 1 = cache hit, 2 = symmetry fold, 3 = intra-batch dup.
  std::vector<int> Src;
  std::vector<int> SimList;
  std::vector<CandPlan> Plans;
  std::vector<Mutation> Deltas;
  std::vector<UniqueSim> UniqueSims;
  std::unordered_map<cfg::Fingerprint, int, cfg::FingerprintHash> UniqueOf;
  BaseRound Base;
  std::vector<WorkItem> Items;
  std::vector<Eval> ItemEvals;

  // Incremental-structure state. Message groups depend only on the
  // message topology, which no search move touches, so they are computed
  // once per search; the per-candidate union-find runs over the grouped
  // edges (one unite per partition) against this scratch instance.
  const bool Incremental = Problem.UseDecomposition && Problem.UseDirtyTracking;
  const bool CompCache = Problem.UseDecomposition && Problem.UseComponentCache;
  const bool LDecomposable = L > 0 && L != std::numeric_limits<int64_t>::max();
  cfg::MessageGroups MsgGroups;
  support::UnionFind UFScratch(Current.Cores.size());
  if (Incremental)
    MsgGroups = cfg::messageGroups(Current);
  ArenaPool Arenas;

  // Guard rails handed to every candidate simulation. When neither is set
  // the options are all-default and the evaluation path is bit-for-bit
  // the pre-guard-rail one.
  nsa::SimOptions CandOpts;
  CandOpts.WallClockBudgetMs = Problem.CandidateBudgetMs;
  CandOpts.Cancel = Problem.Cancel;

  // --- Durable search: resume + checkpoint plumbing --------------------
  // The identity CRC guards both directions: a snapshot resumes only the
  // (Seed, BatchSize, Base) search that wrote it.
  const bool Checkpointing = !Problem.CheckpointPath.empty();
  const uint32_t BaseCrc =
      (Checkpointing || (Problem.Resume && Problem.Resume->HasSearchState))
          ? snapshotBaseCrc(Problem.Base)
          : 0;

  Res.BestBadness = -1;
  int Iter = 0;
  int Round = 0;
  if (Problem.Resume) {
    const Snapshot &S = *Problem.Resume;
    if (S.HasSearchState) {
      if (S.Seed != Problem.Seed || S.BatchSize != Batch ||
          S.BaseCrc != BaseCrc)
        return Error::failure(
            ErrorCode::SnapshotMismatch,
            formatString("snapshot belongs to a different search: snapshot "
                         "(seed=%llu batch=%d base=%08x) vs problem "
                         "(seed=%llu batch=%d base=%08x)",
                         static_cast<unsigned long long>(S.Seed), S.BatchSize,
                         S.BaseCrc,
                         static_cast<unsigned long long>(Problem.Seed), Batch,
                         BaseCrc));
      // Restore the full loop state: incumbent, boosts, the RNG
      // mid-stream, the partial result, and the loop position. The
      // remaining rounds then recompute exactly what the uninterrupted
      // run computed — the headline byte-identity contract.
      Current = S.Current;
      Boost = S.Boost;
      R.restoreState(S.RngState);
      Res = S.Res;
      Iter = S.Iter;
      Round = S.NextRound;
      // The strategy resumes mid-stream too: a snapshot written under a
      // different metaheuristic must not silently continue as this one
      // (the candidate stream would diverge from both runs). Pre-PR-10
      // snapshots carry no name; they were always the local strategy.
      std::string SnapStrat =
          S.StrategyName.empty() ? "local" : S.StrategyName;
      if (SnapStrat != Strat->name())
        return Error::failure(
            ErrorCode::SnapshotMismatch,
            formatString("snapshot strategy '%s' does not match this "
                         "search's strategy '%s'",
                         SnapStrat.c_str(), Strat->name()));
      if (!Strat->loadState(S.StrategyState.data(), S.StrategyState.size()))
        return Error::failure(ErrorCode::SnapshotCorrupt,
                              "malformed strategy state in snapshot");
    }
    auto [NCfg, NComp] = S.seedCache(Cache);
    if (Problem.CkptStats) {
      Problem.CkptStats->ConfigEntriesMerged += NCfg;
      Problem.CkptStats->ComponentEntriesMerged += NComp;
    }
    // A snapshot of a *finished* search restores a final result; nothing
    // is left to run, and replaying the finding round would double-count
    // its candidates into the restored counters.
    if (S.HasSearchState && Res.Found)
      return Res;
  }

  // One checkpoint = cache contents + loop state at a round boundary,
  // written atomically (old-or-new, never torn). A write failure is
  // recorded and swallowed: a full disk or read-only filesystem must not
  // change what the search computes — durability is best-effort, results
  // are not. Nothing here touches Res: checkpoint cadence is wall-clock
  // dependent, and SearchResult stays byte-identical with checkpointing
  // on, off, or failing.
  auto WriteCheckpoint = [&](int NextRound) {
    obs::Span CkptSpan("checkpoint", "search");
    CkptSpan.arg("iter", Iter);
    Snapshot S;
    S.captureCache(Cache);
    S.HasSearchState = true;
    S.Seed = Problem.Seed;
    S.BatchSize = Batch;
    S.BaseCrc = BaseCrc;
    S.NextRound = NextRound;
    S.Iter = Iter;
    S.RngState = R.saveState();
    S.Current = Current;
    S.Boost = Boost;
    S.Res = Res;
    S.StrategyName = Strat->name();
    Strat->saveState(S.StrategyState);
    if (Error E =
            saveSnapshot(S, Problem.CheckpointPath, Problem.CkptStats)) {
      if (Problem.CkptStats) {
        ++Problem.CkptStats->WriteFailures;
        Problem.CkptStats->LastError = E.message();
      }
      return;
    }
    if (CkptC)
      CkptC->add(1);
  };
  auto LastCkpt = std::chrono::steady_clock::now();

  for (; Iter < Problem.MaxIterations; ++Round) {
    if (Problem.Cancel && Problem.Cancel->isCancelled()) {
      Res.Cancelled = true;
      Res.Log.push_back(
          formatString("search cancelled before iter %d", Iter));
      break;
    }
    // Periodic checkpoint at the round boundary (the top of the loop is
    // one for round == NextRound), throttled by CheckpointEveryMs; 0
    // checkpoints every round.
    if (Checkpointing) {
      auto Now = std::chrono::steady_clock::now();
      if (Problem.CheckpointEveryMs <= 0 ||
          std::chrono::duration_cast<std::chrono::milliseconds>(Now - LastCkpt)
                  .count() >= Problem.CheckpointEveryMs) {
        WriteCheckpoint(Round);
        LastCkpt = Now;
      }
    }
    int N = std::min(Batch, Problem.MaxIterations - Iter);
    obs::Span RoundSpan("batch", "search");
    RoundSpan.arg("round", Round);
    RoundSpan.arg("n", N);

    // Candidate 0 is the current adaptive state; candidates 1..N-1 are
    // seeded perturbations of it, delegated to the strategy. Generation
    // is serial and depends only on (Seed, Round, J) and the strategy's
    // deterministic state.
    Cands.assign(static_cast<size_t>(N), Candidate());
    Evals.assign(static_cast<size_t>(N), Eval());
    Deltas.assign(static_cast<size_t>(N), Mutation());
    for (int J = 0; J < N; ++J) {
      Candidate &C = Cands[static_cast<size_t>(J)];
      Mutation &DJ = Deltas[static_cast<size_t>(J)];
      C.Config = Current;
      C.Boost = Boost;
      if (J > 0) {
        Rng PJ(candidateSeed(Problem.Seed, Round, J));
        Strat->perturb(PJ, Problem, C.Config, C.Boost, DJ);
      }
      synthesizeWindows(C.Config, C.Boost);
      if (Error E = C.Config.validate())
        C.InvalidReason = E.message();
      else
        C.Valid = true;
    }

    // Cache consultation — strictly serial and against the pre-batch
    // cache state, so the hit pattern is a pure function of the candidate
    // sequence (independent of Workers/BatchSize timing). Intra-batch
    // fingerprint collisions are marked as duplicates and resolved after
    // the batch from the first occurrence's verdict.
    const int RoundHits0 = Res.CacheHits, RoundMisses0 = Res.CacheMisses;
    const int RoundFolds0 = Res.SymmetryFolds;
    const int RoundDups0 = Res.DuplicateCandidates;
    const int RoundDecomp0 = Res.DecomposedCandidates;
    const int RoundComps0 = Res.ComponentsSimulated;
    const int RoundSims0 = Res.SimulationsRun;
    const int RoundCompHits0 = Res.ComponentCacheHits;
    const int RoundCompMisses0 = Res.ComponentCacheMisses;
    const int RoundDirty0 = Res.DirtyComponents;
    const int RoundClean0 = Res.CleanComponentsReused;

    // Per-round acceleration statistics: round-summary log lines plus
    // the matching obs counter deltas. One flush per round, invoked both
    // at the normal round end and on the found-and-returning path — the
    // finding round's deltas used to be dropped on the latter, leaving
    // the schedtool.* counters short of the SearchResult stats the
    // report prints (the BENCH_PR9 stats-vs-counters skew). Only emitted
    // when the matching layer is on, so a layers-off log is exactly the
    // per-iteration lines — and the values themselves are serial-path
    // facts, identical for every Workers/BatchSize.
    auto FlushRoundStats = [&]() {
      if (Problem.UseVerdictCache) {
        Res.Log.push_back(formatString(
            "round %d: cache %d hits / %d misses / %d folds / %d dups "
            "(%d entries)",
            Round, Res.CacheHits - RoundHits0, Res.CacheMisses - RoundMisses0,
            Res.SymmetryFolds - RoundFolds0,
            Res.DuplicateCandidates - RoundDups0,
            static_cast<int>(Cache.size())));
        if (HitC) {
          HitC->add(static_cast<uint64_t>(Res.CacheHits - RoundHits0));
          MissC->add(static_cast<uint64_t>(Res.CacheMisses - RoundMisses0));
          FoldC->add(static_cast<uint64_t>(Res.SymmetryFolds - RoundFolds0));
        }
      }
      if (Problem.UseDecomposition) {
        Res.Log.push_back(formatString(
            "round %d: decomposed %d/%d simulated candidates into %d "
            "components",
            Round, Res.DecomposedCandidates - RoundDecomp0,
            static_cast<int>(SimList.size()),
            Res.ComponentsSimulated - RoundComps0));
        if (DecompC) {
          DecompC->add(
              static_cast<uint64_t>(Res.DecomposedCandidates - RoundDecomp0));
          CompC->add(
              static_cast<uint64_t>(Res.ComponentsSimulated - RoundComps0));
        }
      }
      if (CompCache) {
        Res.Log.push_back(formatString(
            "round %d: component cache %d hits / %d misses / %d simulated "
            "(%d entries)",
            Round, Res.ComponentCacheHits - RoundCompHits0,
            Res.ComponentCacheMisses - RoundCompMisses0,
            Res.ComponentsSimulated - RoundComps0,
            static_cast<int>(Cache.componentSize())));
        if (CompHitC) {
          CompHitC->add(
              static_cast<uint64_t>(Res.ComponentCacheHits - RoundCompHits0));
          CompMissC->add(static_cast<uint64_t>(Res.ComponentCacheMisses -
                                               RoundCompMisses0));
        }
      }
      if (Incremental) {
        Res.Log.push_back(formatString(
            "round %d: incremental %d dirty / %d clean components", Round,
            Res.DirtyComponents - RoundDirty0,
            Res.CleanComponentsReused - RoundClean0));
        if (DirtyC) {
          DirtyC->add(
              static_cast<uint64_t>(Res.DirtyComponents - RoundDirty0));
          CleanC->add(
              static_cast<uint64_t>(Res.CleanComponentsReused - RoundClean0));
        }
      }
      if (SimC)
        SimC->add(
            static_cast<uint64_t>(Res.SimulationsRun - RoundSims0) +
            static_cast<uint64_t>(Res.ComponentsSimulated - RoundComps0));
    };
    SimList.clear();
    DupOf.assign(static_cast<size_t>(N), -1);
    Src.assign(static_cast<size_t>(N), 0);
    if (Problem.UseVerdictCache) {
      Canon.assign(static_cast<size_t>(N), {});
      Raw.assign(static_cast<size_t>(N), {});
      for (int J = 0; J < N; ++J) {
        Candidate &C = Cands[static_cast<size_t>(J)];
        if (!C.Valid)
          continue;
        Canon[static_cast<size_t>(J)] = cfg::fingerprintConfig(C.Config);
        Raw[static_cast<size_t>(J)] =
            cfg::fingerprintConfig(C.Config, /*CanonicalizeCores=*/false);
        int Dup = -1;
        for (int I = 0; I < J; ++I)
          if (Cands[static_cast<size_t>(I)].Valid &&
              Canon[static_cast<size_t>(I)] == Canon[static_cast<size_t>(J)]) {
            Dup = I;
            break;
          }
        if (Dup >= 0) {
          DupOf[static_cast<size_t>(J)] = Dup;
          Src[static_cast<size_t>(J)] = 3;
          ++Res.DuplicateCandidates;
          continue;
        }
        if (const VerdictCache::Entry *E =
                Cache.lookup(Canon[static_cast<size_t>(J)])) {
          Eval &EV = Evals[static_cast<size_t>(J)];
          EV.Ok = true;
          EV.V = E->Verdict;
          if (E->FromSnapshot) {
            // Warm-from-disk hit: counted outside SearchResult (the
            // provenance depends on resume, which the result must not).
            if (Problem.CkptStats)
              ++Problem.CkptStats->SnapshotHits;
            if (SnapHitC)
              SnapHitC->add(1);
          }
          ++Res.CacheHits;
          Src[static_cast<size_t>(J)] = 1;
          if (E->Raw != Raw[static_cast<size_t>(J)]) {
            ++Res.SymmetryFolds;
            Src[static_cast<size_t>(J)] = 2;
          }
        } else {
          ++Res.CacheMisses;
          SimList.push_back(J);
        }
      }
    } else {
      for (int J = 0; J < N; ++J)
        if (Cands[static_cast<size_t>(J)].Valid)
          SimList.push_back(J);
    }

    // Component planning — also serial: the component structure of each
    // to-be-simulated candidate is fixed before any thread runs. With
    // dirty tracking the structure is derived from the mutation delta
    // (clean components reuse the round base's sub-configs outright);
    // otherwise cfg::decomposeConfig recomputes it from scratch —
    // byte-identical components either way. With the component cache the
    // planned components are then resolved against the cache and misses
    // deduplicated into one unique-sim list for the round, in order of
    // first need, so the fill order — like the hit pattern — is a pure
    // function of the candidate sequence. Finally one flattened item
    // list (monolithic candidates, individual components, capped chains
    // and unique sims side by side) is dispatched in a single
    // parallelFor, so the pool is never re-entered and small components
    // of different candidates overlap freely.
    Plans.assign(static_cast<size_t>(N), CandPlan());
    Base = BaseRound();
    UniqueSims.clear();
    UniqueOf.clear();
    Items.clear();

    // Lazy round base for the incremental planner: candidate 0 carries
    // the round's shared binding, so its structure and components are
    // the reuse substrate for every un-rebound candidate.
    auto EnsureBase = [&]() {
      if (Base.Ready)
        return;
      Base.Ready = true;
      Base.S = cfg::componentStructureFromGroups(Cands[0].Config, MsgGroups,
                                                 UFScratch);
      if (!Base.S.Valid || Base.S.NumComps < 2)
        return;
      size_t NK = static_cast<size_t>(Base.S.NumComps);
      Base.Comps.assign(NK, cfg::Component());
      Base.Ok.assign(NK, 0);
      for (size_t K = 0; K < NK; ++K)
        Base.Ok[K] = cfg::materializeComponent(Cands[0].Config, Base.S,
                                               static_cast<int32_t>(K), L,
                                               Base.Comps[K])
                         ? 1
                         : 0;
      Base.Canon.assign(NK, {});
      Base.Raw.assign(NK, {});
      Base.FpReady.assign(NK, 0);
    };

    // Incremental plan for candidate J. Returns false when the candidate
    // does not decompose (monolithic fallback) — the same condition
    // cfg::decomposeConfig reports, because the mutated-core set is
    // conservative: a boost resample only moves window shares on the
    // resampled partition's core, and a rebind changes membership of
    // exactly the components containing its endpoint cores (the rebound
    // partition's message group follows it). Any component with no
    // mutated core is therefore byte-identical to its base counterpart
    // (matched through CompOfCore, which the rebind cannot have touched
    // for clean cores) — including materialization failure, so declining
    // when the base counterpart failed is exact parity.
    auto PlanIncremental = [&](int J) -> bool {
      if (!LDecomposable)
        return false;
      EnsureBase();
      const Candidate &C = Cands[static_cast<size_t>(J)];
      const Mutation &DJ = Deltas[static_cast<size_t>(J)];
      CandPlan &Plan = Plans[static_cast<size_t>(J)];
      const cfg::ComponentStructure *S = &Base.S;
      cfg::ComponentStructure LocalS;
      if (DJ.RebindPart >= 0) {
        LocalS = cfg::componentStructureFromGroups(C.Config, MsgGroups,
                                                   UFScratch);
        S = &LocalS;
      }
      if (!S->Valid || S->NumComps < 2)
        return false;

      std::vector<char> DirtyCore(C.Config.Cores.size(), 0);
      for (int32_t P : DJ.BoostChanged)
        DirtyCore[static_cast<size_t>(
            C.Config.Partitions[static_cast<size_t>(P)].Core)] = 1;
      if (DJ.RebindPart >= 0) {
        DirtyCore[static_cast<size_t>(DJ.OldCore)] = 1;
        DirtyCore[static_cast<size_t>(DJ.NewCore)] = 1;
      }

      size_t NK = static_cast<size_t>(S->NumComps);
      std::vector<char> CompDirty(NK, 0);
      std::vector<int32_t> RepCore(NK, -1);
      for (size_t Core = 0; Core < S->CompOfCore.size(); ++Core) {
        int32_t K = S->CompOfCore[Core];
        if (K < 0)
          continue;
        if (RepCore[static_cast<size_t>(K)] < 0)
          RepCore[static_cast<size_t>(K)] = static_cast<int32_t>(Core);
        if (DirtyCore[Core])
          CompDirty[static_cast<size_t>(K)] = 1;
      }

      int NewDirty = 0, NewClean = 0;
      Plan.Comps.assign(NK, PlannedComp());
      for (size_t K = 0; K < NK; ++K) {
        PlannedComp &PC = Plan.Comps[K];
        if (!CompDirty[K]) {
          int32_t B = Base.S.CompOfCore[static_cast<size_t>(
              RepCore[K])];
          if (B < 0 || static_cast<size_t>(B) >= Base.Ok.size() ||
              !Base.Ok[static_cast<size_t>(B)])
            return false;
          PC.Sub = &Base.Comps[static_cast<size_t>(B)].Sub;
          PC.GidMap = &Base.Comps[static_cast<size_t>(B)].GidMap;
          PC.BaseComp = B;
          ++NewClean;
          continue;
        }
        Plan.Owned.emplace_back();
        if (!cfg::materializeComponent(C.Config, *S, static_cast<int32_t>(K),
                                       L, Plan.Owned.back()))
          return false; // window pattern not sub-periodic: decline whole
        PC.Sub = &Plan.Owned.back().Sub;
        PC.GidMap = &Plan.Owned.back().GidMap;
        ++NewDirty;
      }
      Res.DirtyComponents += NewDirty;
      Res.CleanComponentsReused += NewClean;
      return true;
    };

    for (int J : SimList) {
      CandPlan &Plan = Plans[static_cast<size_t>(J)];
      if (Problem.UseDecomposition) {
        if (Incremental) {
          Plan.Decomposed = PlanIncremental(J);
        } else {
          Plan.D = cfg::decomposeConfig(Cands[static_cast<size_t>(J)].Config);
          if (Plan.D.Decomposed) {
            Plan.Decomposed = true;
            Plan.Comps.assign(Plan.D.Components.size(), PlannedComp());
            for (size_t K = 0; K < Plan.D.Components.size(); ++K) {
              Plan.Comps[K].Sub = &Plan.D.Components[K].Sub;
              Plan.Comps[K].GidMap = &Plan.D.Components[K].GidMap;
            }
          }
        }
      }
      if (!Plan.Decomposed) {
        ++Res.SimulationsRun;
        Items.push_back({J, WorkItem::kMonolithic, -1});
        continue;
      }
      ++Res.DecomposedCandidates;
      if (CompCache) {
        // Resolve each component against the cache. Misses join the
        // round's unique-sim list (first occurrence wins the slot); the
        // candidate contributes no work item of its own — its verdict is
        // stitched from hits and shared sims after the batch.
        for (size_t K = 0; K < Plan.Comps.size(); ++K) {
          PlannedComp &PC = Plan.Comps[K];
          cfg::Fingerprint CanonK, RawK;
          if (PC.BaseComp >= 0) {
            // Clean components share the base sub-config — and its
            // fingerprints, computed once per base component per round.
            size_t B = static_cast<size_t>(PC.BaseComp);
            if (!Base.FpReady[B]) {
              Base.Canon[B] = cfg::fingerprintComponent(*PC.Sub, L);
              Base.Raw[B] = cfg::fingerprintComponent(
                  *PC.Sub, L, /*CanonicalizeCores=*/false);
              Base.FpReady[B] = 1;
            }
            CanonK = Base.Canon[B];
            RawK = Base.Raw[B];
          } else {
            CanonK = cfg::fingerprintComponent(*PC.Sub, L);
            RawK = cfg::fingerprintComponent(*PC.Sub, L,
                                             /*CanonicalizeCores=*/false);
          }
          if (const VerdictCache::ComponentEntry *CE =
                  Cache.lookupComponent(CanonK)) {
            PC.Hit = CE;
            if (CE->FromSnapshot) {
              if (Problem.CkptStats)
                ++Problem.CkptStats->SnapshotHits;
              if (SnapHitC)
                SnapHitC->add(1);
            }
            ++Res.ComponentCacheHits;
            continue;
          }
          ++Res.ComponentCacheMisses;
          auto Ins =
              UniqueOf.emplace(CanonK, static_cast<int>(UniqueSims.size()));
          if (Ins.second) {
            UniqueSims.push_back({PC.Sub, CanonK, RawK, J, -1});
            ++Res.ComponentsSimulated;
          }
          PC.Unique = Ins.first->second;
        }
        continue;
      }
      Res.ComponentsSimulated += static_cast<int>(Plan.Comps.size());
      // With early exit on, the candidate's components run sequentially
      // in one item so each later component inherits the earliest miss
      // found so far as its horizon cap — a passing component then costs
      // min(first miss, L) instead of L, exactly what the monolithic
      // early-exit run pays.
      if (Problem.UseEarlyExit) {
        Items.push_back({J, WorkItem::kCappedChain, -1});
      } else {
        for (size_t K = 0; K < Plan.Comps.size(); ++K)
          Items.push_back({J, static_cast<int>(K), -1});
      }
    }
    // Unique sims run full-horizon with the early exit the flags allow:
    // the verdict's invariant fields are cap-free, so the entry is valid
    // for any future candidate regardless of what its siblings miss.
    for (size_t U = 0; U < UniqueSims.size(); ++U) {
      UniqueSims[U].ItemSlot = static_cast<int>(Items.size());
      Items.push_back({UniqueSims[U].FirstCand, WorkItem::kUniqueComp,
                       static_cast<int>(U)});
    }

    // Evaluate the batch. Each worker builds its own model and simulator
    // (no shared mutable state) and publishes counters, phase timings and
    // spans into its own thread shard, so attaching more workers cannot
    // race on the registry — and the merged totals stay identical because
    // every item publishes the same numbers on whichever thread runs it.
    ItemEvals.assign(Items.size(), Eval());
    auto RunItem = [&](int I) {
      const WorkItem &It = Items[static_cast<size_t>(I)];
      obs::Span ItemSpan(It.Comp == WorkItem::kMonolithic
                             ? "simulate.monolithic"
                             : (It.Comp == WorkItem::kCappedChain
                                    ? "simulate.chain"
                                    : "simulate.component"),
                         "search");
      ItemSpan.arg("cand", It.Cand);
      if (It.Comp >= 0)
        ItemSpan.arg("comp", It.Comp);
      if (It.Unique >= 0)
        ItemSpan.arg("unique", It.Unique);
      // Each item leases a model arena for instance reuse and returns it
      // for whatever item runs next. Verdicts are arena-independent, so
      // the lease pattern — a timing fact — only moves wall-clock.
      ArenaLease Lease(Problem.UseInstanceReuse ? &Arenas : nullptr);
      analysis::ModelArena *Arena = Lease.get();
      nsa::SimOptions Opt = CandOpts;
      Opt.StopOnFirstMiss = Problem.UseEarlyExit;
      Eval &E = ItemEvals[static_cast<size_t>(I)];
      if (It.Unique >= 0) {
        // One deduplicated component at the full global horizon: the
        // verdict must be cap-free so the component cache can serve it
        // to any candidate.
        Opt.Horizon = L;
        Result<analysis::VerdictOutcome> Out = analysis::analyzeVerdictOnly(
            *UniqueSims[static_cast<size_t>(It.Unique)].Sub, Opt, Arena);
        if (Out.ok()) {
          E.Ok = true;
          E.V = std::move(*Out);
        } else {
          E.ErrMsg = Out.error().message();
        }
        return;
      }
      if (It.Comp == WorkItem::kCappedChain) {
        // Early exit + decomposition: run the components in index order,
        // shrinking the horizon to the earliest miss seen so far. A miss
        // at exactly the horizon is still detected (the simulator treats
        // actions at the horizon as inside the window), so the merged
        // FirstMissTime/FirstMissTasks are identical to independent
        // full-horizon component runs — later misses that the cap hides
        // cannot win the min and are invisible to the merge.
        const CandPlan &Plan = Plans[static_cast<size_t>(It.Cand)];
        std::vector<analysis::ComponentVerdict> Parts;
        Parts.reserve(Plan.Comps.size());
        int64_t Cap = L;
        bool AllOk = true;
        for (size_t K : chainOrder(Plan.Comps)) {
          const PlannedComp &Comp = Plan.Comps[K];
          obs::Span CompSpan("simulate.component", "search");
          CompSpan.arg("cand", It.Cand);
          CompSpan.arg("comp", static_cast<int64_t>(K));
          nsa::SimOptions ChainOpt = Opt;
          ChainOpt.Horizon = Cap;
          Result<analysis::VerdictOutcome> Out =
              analysis::analyzeVerdictOnly(*Comp.Sub, ChainOpt, Arena);
          if (!Out.ok()) {
            if (AllOk) // first failing component wins, deterministically
              E.ErrMsg = Out.error().message();
            AllOk = false;
            continue;
          }
          if (Out->FirstMissTime >= 0 && Out->FirstMissTime < Cap)
            Cap = Out->FirstMissTime;
          bool Decided = Out->decided();
          Parts.push_back({std::move(*Out), *Comp.GidMap});
          // A guard-rail stop (budget, cancel) already makes the merged
          // verdict undecided with this component's StopReason — running
          // the rest of the chain would spend a fresh per-run budget per
          // remaining component (a K-component candidate could take K×
          // CandidateBudgetMs) and would keep simulating after a cancel.
          if (!Decided)
            break;
        }
        if (AllOk) {
          E.Ok = true;
          E.V = analysis::mergeComponentVerdicts(
              Parts,
              Cands[static_cast<size_t>(It.Cand)].Config.numTasks());
        }
        return;
      }
      const cfg::Config *Cfg;
      if (It.Comp >= 0) {
        Cfg = Plans[static_cast<size_t>(It.Cand)]
                  .Comps[static_cast<size_t>(It.Comp)]
                  .Sub;
        // Components carry their own (smaller) hyperperiod; simulate to
        // the global one so backlog beyond it is observed exactly as the
        // monolithic run observes it.
        Opt.Horizon = L;
      } else {
        Cfg = &Cands[static_cast<size_t>(It.Cand)].Config;
      }
      Result<analysis::VerdictOutcome> Out =
          analysis::analyzeVerdictOnly(*Cfg, Opt, Arena);
      if (Out.ok()) {
        E.Ok = true;
        E.V = std::move(*Out);
      } else {
        E.ErrMsg = Out.error().message();
      }
    };

    if (!Problem.Ex) {
      Pool.parallelFor(static_cast<int>(Items.size()), RunItem);
    } else {
      // Fleet exchange (Exchange.h). An item's verdict can come from a
      // peer's publication instead of a local simulation; since the
      // simulator is deterministic, the fetched verdict equals the one
      // RunItem would compute, and since every SearchResult statistic
      // was fixed on the serial consult/planning path above, swapping
      // execution for a fetch is observationally invisible — the result
      // stays byte-identical to the exchange-free run.
      //
      // Exchangeable items are those a peer publishes under a cache key:
      // monolithic and capped-chain items under the candidate's config
      // fingerprint (the whole-config cache already equates a merged
      // chain verdict with the monolithic one — see the insert on the
      // assembly path below), unique components under their component
      // fingerprint. Per-component items (decomposition without early
      // exit or component cache) have no cache line of their own and are
      // executed by every shard; likewise config-level items when the
      // verdict cache is off (no fingerprints were computed).
      Exchange &Ex = *Problem.Ex;
      struct ExKey {
        char Kind = 0; // 0 = not exchangeable, 1 = config, 2 = component
        cfg::Fingerprint Canon, Raw;
      };
      std::vector<ExKey> Keys(Items.size());
      for (size_t I = 0; I < Items.size(); ++I) {
        const WorkItem &It = Items[I];
        if (It.Comp == WorkItem::kUniqueComp) {
          const UniqueSim &U = UniqueSims[static_cast<size_t>(It.Unique)];
          Keys[I] = {2, U.Canon, U.Raw};
        } else if ((It.Comp == WorkItem::kMonolithic ||
                    It.Comp == WorkItem::kCappedChain) &&
                   Problem.UseVerdictCache) {
          Keys[I] = {1, Canon[static_cast<size_t>(It.Cand)],
                     Raw[static_cast<size_t>(It.Cand)]};
        }
      }
      auto FetchInto = [&](size_t I) -> bool {
        const ExKey &K = Keys[I];
        const analysis::VerdictOutcome *V = nullptr;
        if (K.Kind == 1) {
          if (const VerdictCache::Entry *E = Ex.fetchConfig(K.Canon))
            V = &E->Verdict;
        } else if (K.Kind == 2) {
          if (const VerdictCache::ComponentEntry *E =
                  Ex.fetchComponent(K.Canon))
            V = &E->Verdict;
        }
        if (!V)
          return false;
        Eval &E = ItemEvals[I];
        E.Ok = true;
        E.V = *V;
        return true;
      };
      auto RecordItem = [&](size_t I) {
        const ExKey &K = Keys[I];
        const Eval &E = ItemEvals[I];
        if (!E.Ok)
          return; // errors and undecided verdicts are never published
        if (K.Kind == 1)
          Ex.recordConfig(K.Canon, K.Raw, E.V);
        else if (K.Kind == 2)
          Ex.recordComponent(K.Canon, K.Raw, E.V);
      };
      if (Ex.mode() == Exchange::Mode::Shard) {
        // Deterministic ownership split: planning is serial, so every
        // shard sees the identical item list and computes the identical
        // partition. Own items run locally and are published; foreign
        // items are awaited (bounded), then recomputed locally as the
        // liveness fallback — a slow or SIGKILLed peer costs wall-clock,
        // never a different verdict.
        std::vector<int> Owned, Foreign;
        for (size_t I = 0; I < Items.size(); ++I)
          if (Keys[I].Kind == 0 || Ex.ownsItem(Round, static_cast<int>(I)))
            Owned.push_back(static_cast<int>(I));
          else
            Foreign.push_back(static_cast<int>(I));
        Ex.Stats.ItemsOwned += Owned.size();
        Pool.parallelFor(static_cast<int>(Owned.size()), [&](int K) {
          RunItem(Owned[static_cast<size_t>(K)]);
        });
        for (int I : Owned)
          RecordItem(static_cast<size_t>(I));
        Ex.publish();
        std::vector<int> Pending = std::move(Foreign);
        auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Ex.FallbackMs);
        while (!Pending.empty()) {
          Ex.refresh();
          size_t W = 0;
          for (int I : Pending) {
            if (FetchInto(static_cast<size_t>(I)))
              ++Ex.Stats.ItemsFetched;
            else
              Pending[W++] = I;
          }
          Pending.resize(W);
          if (Pending.empty() ||
              (Problem.Cancel && Problem.Cancel->isCancelled()) ||
              std::chrono::steady_clock::now() >= Deadline)
            break;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          Ex.Stats.WaitMs += 2;
        }
        if (!Pending.empty()) {
          // Fallback: simulate the unresolved foreign items here, and
          // publish them too — if their owner died, this shard's work
          // keeps the survivors from each paying the same fallback.
          Ex.Stats.FallbackSimulations += Pending.size();
          Pool.parallelFor(static_cast<int>(Pending.size()), [&](int K) {
            RunItem(Pending[static_cast<size_t>(K)]);
          });
          for (int I : Pending)
            RecordItem(static_cast<size_t>(I));
          Ex.publish();
        }
      } else {
        // Share mode (racing portfolio): every item belongs to this
        // worker, but a verdict some peer already published is adopted
        // instead of simulated. The side cache is refreshed serially
        // here and only read inside the parallelFor (write-once,
        // node-stable entries), so the loop stays race-free.
        Ex.refresh();
        std::vector<char> Fetched(Items.size(), 0);
        Pool.parallelFor(static_cast<int>(Items.size()), [&](int I) {
          if (FetchInto(static_cast<size_t>(I)))
            Fetched[static_cast<size_t>(I)] = 1;
          else
            RunItem(I);
        });
        for (size_t I = 0; I < Items.size(); ++I)
          if (Fetched[I])
            ++Ex.Stats.ItemsFetched;
          else
            RecordItem(I);
        Ex.publish();
      }
    }

    // Fill the component cache from the round's unique sims, in order of
    // first need — like the whole-config fills, a serial-path fact.
    // Undecided verdicts (guard-rail stops) are rejected by insertComponent
    // itself; failed items simply leave no entry.
    if (CompCache)
      for (const UniqueSim &U : UniqueSims) {
        const Eval &UE = ItemEvals[static_cast<size_t>(U.ItemSlot)];
        if (UE.Ok)
          Cache.insertComponent(U.Canon, U.Raw, UE.V);
      }

    // Assemble per-candidate verdicts in candidate order: merge component
    // results, insert decided verdicts into the cache, then resolve
    // intra-batch duplicates from their first occurrence.
    {
      size_t ItemAt = 0;
      for (int J : SimList) {
        Eval &E = Evals[static_cast<size_t>(J)];
        CandPlan &Plan = Plans[static_cast<size_t>(J)];
        if (Plan.Decomposed && CompCache) {
          // Stitch the verdict from cache hits and shared unique sims —
          // the candidate had no work item of its own. Verdicts are
          // copied, never moved: a unique sim's result may serve several
          // candidates of the batch.
          std::vector<analysis::ComponentVerdict> Parts;
          Parts.reserve(Plan.Comps.size());
          bool AllOk = true;
          for (const PlannedComp &PC : Plan.Comps) {
            if (PC.Hit) {
              Parts.push_back({PC.Hit->Verdict, *PC.GidMap});
              continue;
            }
            const Eval &IE = ItemEvals[static_cast<size_t>(
                UniqueSims[static_cast<size_t>(PC.Unique)].ItemSlot)];
            if (!IE.Ok) {
              if (AllOk) // first failing component wins, deterministically
                E.ErrMsg = IE.ErrMsg;
              AllOk = false;
              continue;
            }
            Parts.push_back({IE.V, *PC.GidMap});
          }
          if (AllOk) {
            E.Ok = true;
            E.V = analysis::mergeComponentVerdicts(
                Parts, Cands[static_cast<size_t>(J)].Config.numTasks());
          }
        } else if (Plan.Decomposed && Problem.UseEarlyExit) {
          // Capped-chain items merged their components inside the worker;
          // the single slot already holds the candidate verdict.
          E = std::move(ItemEvals[ItemAt]);
          ++ItemAt;
        } else if (Plan.Decomposed) {
          std::vector<analysis::ComponentVerdict> Parts;
          Parts.reserve(Plan.Comps.size());
          bool AllOk = true;
          for (size_t K = 0; K < Plan.Comps.size(); ++K, ++ItemAt) {
            Eval &IE = ItemEvals[ItemAt];
            if (!IE.Ok) {
              if (AllOk) // first failing component wins, deterministically
                E.ErrMsg = IE.ErrMsg;
              AllOk = false;
              continue;
            }
            Parts.push_back({std::move(IE.V), *Plan.Comps[K].GidMap});
          }
          if (AllOk) {
            E.Ok = true;
            E.V = analysis::mergeComponentVerdicts(
                Parts, Cands[static_cast<size_t>(J)].Config.numTasks());
          }
        } else {
          E = std::move(ItemEvals[ItemAt]);
          ++ItemAt;
        }
        if (Problem.UseVerdictCache && E.Ok)
          Cache.insert(Canon[static_cast<size_t>(J)],
                       Raw[static_cast<size_t>(J)], E.V);
      }
    }
    for (int J = 0; J < N; ++J)
      if (DupOf[static_cast<size_t>(J)] >= 0)
        Evals[static_cast<size_t>(J)] =
            Evals[static_cast<size_t>(DupOf[static_cast<size_t>(J)])];

    // Reduce in candidate order: logs, counters, best-so-far and the
    // returned error (if any) are those of the lowest-index candidate,
    // independent of evaluation order. Every logged quantity (badness,
    // first-miss instant, first-miss task count) is invariant under the
    // three acceleration layers, so the per-iteration log is identical
    // for any flag combination.
    int RoundBest = -1;
    int64_t RoundBestBadness = -1;
    for (int J = 0; J < N; ++J) {
      int IterJ = Iter + J;
      const Candidate &C = Cands[static_cast<size_t>(J)];
      if (!C.Valid) {
        Res.Log.push_back(formatString("iter %d: invalid candidate (%s)",
                                       IterJ, C.InvalidReason.c_str()));
        continue;
      }
      Eval &E = Evals[static_cast<size_t>(J)];
      if (!E.Ok)
        return Error::failure(E.ErrMsg);
      // Per-candidate metadata span: fingerprint, verdict provenance
      // (src: 0 sim / 1 hit / 2 fold / 3 dup), stop reason, badness. The
      // span rides the serial reduce, so its args — like the counters —
      // are identical for any worker count.
      obs::Span CandSpan("candidate", "search");
      if (Problem.UseVerdictCache) {
        CandSpan.arg("fp_hi", static_cast<int64_t>(
                                  Canon[static_cast<size_t>(J)].Hi));
        CandSpan.arg("fp_lo", static_cast<int64_t>(
                                  Canon[static_cast<size_t>(J)].Lo));
      }
      CandSpan.arg("src", Src[static_cast<size_t>(J)]);
      CandSpan.arg("stop", static_cast<int64_t>(E.V.Stop));
      ++Res.StopReasonCounts[static_cast<size_t>(E.V.Stop)];
      if (!E.V.decided()) {
        // The guard rails (per-candidate budget / cancellation) ended the
        // run before a verdict existed: record the reason and move on —
        // a timed-out candidate never aborts the batch.
        ++Res.CandidatesSkipped;
        Res.Log.push_back(formatString(
            "iter %d: skipped (%s after %llu actions)", IterJ,
            nsa::stopReasonName(E.V.Stop),
            static_cast<unsigned long long>(E.V.ActionCount)));
        continue;
      }
      ++Res.ConfigurationsEvaluated;
      if (CandC)
        CandC->add(1);
      int64_t Badness = BadnessOf(E.V);
      CandSpan.arg("badness", Badness);
      if (E.V.Schedulable)
        Res.Log.push_back(formatString("iter %d: schedulable", IterJ));
      else
        Res.Log.push_back(formatString(
            "iter %d: unschedulable (badness %lld, first miss at t=%lld, "
            "%d tasks)",
            IterJ, static_cast<long long>(Badness),
            static_cast<long long>(E.V.FirstMissTime),
            static_cast<int>(E.V.FirstMissTasks.size())));

      if (E.V.Schedulable) {
        ++Res.SchedulableSeen;
        if (SchedC)
          SchedC->add(1);
        Res.Found = true;
        Res.Best = C.Config;
        Res.BestBadness = 0;
        Res.BestTrajectory.push_back({IterJ, 0});
        // The finding round's statistics flush like any other round's:
        // the schedtool.* counters stay equal to the SearchResult stats
        // even when the search returns mid-reduce.
        FlushRoundStats();
        // Terminal flush: persist the finished result (and every verdict
        // earned) so a later --resume returns it without re-running.
        if (Checkpointing)
          WriteCheckpoint(Round);
        return Res;
      }
      if (Res.BestBadness < 0 || Badness < Res.BestBadness) {
        Res.BestBadness = Badness;
        Res.Best = C.Config;
        Res.BestTrajectory.push_back({IterJ, Badness});
      }
      if (RoundBest < 0 || Badness < RoundBestBadness) {
        RoundBest = J;
        RoundBestBadness = Badness;
      }
    }
    Iter += N;
    FlushRoundStats();

    if (RoundBest < 0) {
      // Every candidate in the round was invalid; the strategy's escape
      // move (the default resamples all boosts).
      Strat->adaptAllInvalid(R, Problem, Boost);
      continue;
    }

    // Adapt from the round's best candidate — the strategy's move (the
    // default greedily adopts it, grows the windows of the partitions
    // whose tasks miss at the first-miss instant, and occasionally
    // rebinds the worst partition to the least-loaded core).
    schedtool::RoundBest RB;
    RB.Config = &Cands[static_cast<size_t>(RoundBest)].Config;
    RB.Boost = &Cands[static_cast<size_t>(RoundBest)].Boost;
    RB.Verdict = &Evals[static_cast<size_t>(RoundBest)].V;
    RB.Badness = RoundBestBadness;
    Strat->adapt(R, Problem, RB, Current, Boost);
  }
  // The round-top poll only sees a cancel that fired *between* rounds; one
  // that fired during the final round left its mark as skipped candidates
  // but never set the flag. Record it so callers can tell "search ended
  // because it was told to" from "search exhausted its iterations".
  if (!Res.Cancelled && Problem.Cancel && Problem.Cancel->isCancelled()) {
    Res.Cancelled = true;
    Res.Log.push_back("search cancelled during final round");
  }
  // Terminal flush, throttle-free: a cancelled or exhausted run always
  // leaves its latest state (including the cancel marks and StopReason
  // tallies above) on disk. Resuming a cancelled snapshot continues the
  // search from the cancel point; the cancel log line stays in the
  // result as a record of the interruption.
  if (Checkpointing)
    WriteCheckpoint(Round);
  return Res;
}

void swa::schedtool::fillSearchReport(obs::RunReport &Report,
                                      const SearchResult &Res,
                                      double ElapsedSec) {
  Report.addCount("found", Res.Found ? 1 : 0);
  Report.addCount("cancelled", Res.Cancelled ? 1 : 0);
  Report.addCount("candidates.evaluated",
                  static_cast<uint64_t>(Res.ConfigurationsEvaluated));
  Report.addCount("candidates.skipped",
                  static_cast<uint64_t>(Res.CandidatesSkipped));
  Report.addCount("schedulable.seen",
                  static_cast<uint64_t>(Res.SchedulableSeen));
  Report.addCount("cache.hits", static_cast<uint64_t>(Res.CacheHits));
  Report.addCount("cache.misses", static_cast<uint64_t>(Res.CacheMisses));
  Report.addCount("cache.folds", static_cast<uint64_t>(Res.SymmetryFolds));
  Report.addCount("cache.duplicates",
                  static_cast<uint64_t>(Res.DuplicateCandidates));
  int Lookups = Res.CacheHits + Res.CacheMisses;
  if (Lookups > 0)
    Report.addStat("cache.hit_rate",
                   static_cast<double>(Res.CacheHits) /
                       static_cast<double>(Lookups));
  Report.addCount("decomposed.candidates",
                  static_cast<uint64_t>(Res.DecomposedCandidates));
  Report.addCount("components.simulated",
                  static_cast<uint64_t>(Res.ComponentsSimulated));
  Report.addCount("component_cache.hits",
                  static_cast<uint64_t>(Res.ComponentCacheHits));
  Report.addCount("component_cache.misses",
                  static_cast<uint64_t>(Res.ComponentCacheMisses));
  int CompLookups = Res.ComponentCacheHits + Res.ComponentCacheMisses;
  if (CompLookups > 0)
    Report.addStat("component_cache.hit_rate",
                   static_cast<double>(Res.ComponentCacheHits) /
                       static_cast<double>(CompLookups));
  Report.addCount("components.dirty",
                  static_cast<uint64_t>(Res.DirtyComponents));
  Report.addCount("components.clean_reused",
                  static_cast<uint64_t>(Res.CleanComponentsReused));
  if (Res.DirtyComponents + Res.CleanComponentsReused > 0 &&
      Res.ConfigurationsEvaluated > 0)
    Report.addStat("components.dirty_per_candidate",
                   static_cast<double>(Res.DirtyComponents) /
                       static_cast<double>(Res.ConfigurationsEvaluated));
  Report.addCount("simulations.run",
                  static_cast<uint64_t>(Res.SimulationsRun));
  Report.addStat("best.badness", static_cast<double>(Res.BestBadness));
  for (int R = 0; R < nsa::NumStopReasons; ++R)
    if (Res.StopReasonCounts[static_cast<size_t>(R)] > 0)
      Report.addCount(
          std::string("stop.") +
              nsa::stopReasonName(static_cast<nsa::StopReason>(R)),
          static_cast<uint64_t>(
              Res.StopReasonCounts[static_cast<size_t>(R)]));
  if (ElapsedSec > 0)
    Report.addStat("candidates_per_sec",
                   static_cast<double>(Res.ConfigurationsEvaluated) /
                       ElapsedSec);
}
