//===- schedtool/ConfigSearch.cpp - Model-in-the-loop config search ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "schedtool/ConfigSearch.h"

#include "analysis/Analyzer.h"
#include "obs/Metrics.h"
#include "obs/Timer.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>

using namespace swa;
using namespace swa::schedtool;

bool swa::schedtool::bindFirstFitDecreasing(cfg::Config &Config) {
  // Order partitions by demand (utilization with type-0 WCETs).
  std::vector<std::pair<double, int>> Order;
  for (size_t P = 0; P < Config.Partitions.size(); ++P) {
    double U = 0;
    for (const cfg::Task &T : Config.Partitions[P].Tasks)
      U += static_cast<double>(T.Wcet[0]) /
           static_cast<double>(T.Period);
    Order.push_back({U, static_cast<int>(P)});
  }
  std::sort(Order.begin(), Order.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });

  std::vector<double> CoreLoad(Config.Cores.size(), 0.0);
  for (auto &[U, P] : Order) {
    int Best = -1;
    for (size_t C = 0; C < Config.Cores.size(); ++C) {
      int Type = Config.Cores[C].CoreType;
      double UC = 0;
      for (const cfg::Task &T :
           Config.Partitions[static_cast<size_t>(P)].Tasks)
        UC += static_cast<double>(T.Wcet[static_cast<size_t>(Type)]) /
              static_cast<double>(T.Period);
      if (CoreLoad[C] + UC <= 1.0 &&
          (Best < 0 || CoreLoad[C] < CoreLoad[static_cast<size_t>(Best)]))
        Best = static_cast<int>(C);
    }
    if (Best < 0)
      return false;
    Config.Partitions[static_cast<size_t>(P)].Core = Best;
    int Type = Config.Cores[static_cast<size_t>(Best)].CoreType;
    for (const cfg::Task &T :
         Config.Partitions[static_cast<size_t>(P)].Tasks)
      CoreLoad[static_cast<size_t>(Best)] +=
          static_cast<double>(T.Wcet[static_cast<size_t>(Type)]) /
          static_cast<double>(T.Period);
  }
  return true;
}

void swa::schedtool::synthesizeWindows(cfg::Config &Config,
                                       const std::vector<double> &Boost) {
  cfg::TimeValue L = Config.hyperperiod();
  for (cfg::Partition &P : Config.Partitions)
    P.Windows.clear();

  for (size_t C = 0; C < Config.Cores.size(); ++C) {
    std::vector<int> Parts;
    cfg::TimeValue Minor = L;
    for (size_t P = 0; P < Config.Partitions.size(); ++P) {
      if (Config.Partitions[P].Core != static_cast<int>(C))
        continue;
      Parts.push_back(static_cast<int>(P));
      for (const cfg::Task &T : Config.Partitions[P].Tasks)
        Minor = std::min(Minor, T.Period);
    }
    if (Parts.empty())
      continue;

    std::vector<double> Raw;
    double RawSum = 0;
    for (int P : Parts) {
      double B = static_cast<size_t>(P) < Boost.size()
                     ? Boost[static_cast<size_t>(P)]
                     : 1.5;
      double Slice = std::max(
          1.0, Config.partitionUtilization(P) *
                   static_cast<double>(Minor) * B);
      Raw.push_back(Slice);
      RawSum += Slice;
    }
    double Scale = RawSum > static_cast<double>(Minor)
                       ? static_cast<double>(Minor) / RawSum
                       : 1.0;

    cfg::TimeValue Cursor = 0;
    for (size_t I = 0; I < Parts.size(); ++I) {
      cfg::TimeValue Len = std::max<cfg::TimeValue>(
          1, static_cast<cfg::TimeValue>(Raw[I] * Scale));
      if (Cursor + Len > Minor)
        Len = Minor - Cursor;
      if (Len <= 0)
        break;
      for (cfg::TimeValue Off = 0; Off < L; Off += Minor)
        Config.Partitions[static_cast<size_t>(Parts[I])]
            .Windows.push_back({Off + Cursor, Off + Cursor + Len});
      Cursor += Len;
    }
  }
}

namespace {

/// One candidate of a round: a concrete binding + window layout plus the
/// boost vector that produced it.
struct Candidate {
  cfg::Config Config;
  std::vector<double> Boost;
  bool Valid = false;
  std::string InvalidReason;
};

/// Evaluation slot; written by exactly one worker, read only after the
/// whole batch finished.
struct Eval {
  bool Ok = false;
  std::string ErrMsg;
  analysis::VerdictOutcome V;
};

/// Per-candidate perturbation seed: a pure function of (Seed, Round, J),
/// never of the thread that evaluates the candidate.
uint64_t candidateSeed(uint64_t Seed, int Round, int J) {
  uint64_t X = static_cast<uint64_t>(Round) * 0x100000001b3ULL +
               static_cast<uint64_t>(J) + 1;
  return Seed ^ (X * 0x9e3779b97f4a7c15ULL);
}

} // namespace

Result<SearchResult>
swa::schedtool::searchConfiguration(const SearchProblem &Problem) {
  obs::ScopedTimer Timer("schedtool.search");
  SearchResult Res;
  Rng R(Problem.Seed);

  // Counters live in the registry (stable addresses), cached here so the
  // loop pays one pointer test per event when metrics are off. Only the
  // calling thread touches them; workers run with observability
  // suppressed, so registry contents are identical for every Workers
  // value.
  obs::Counter *CandC = nullptr, *SimC = nullptr, *SchedC = nullptr;
  if (obs::enabled()) {
    obs::Registry &Reg = obs::Registry::global();
    CandC = &Reg.counter("schedtool.candidates.evaluated");
    SimC = &Reg.counter("schedtool.simulations.run");
    SchedC = &Reg.counter("schedtool.schedulable.seen");
  }

  cfg::Config Current = Problem.Base;
  if (!bindFirstFitDecreasing(Current)) {
    Res.Log.push_back("initial binding failed: insufficient capacity");
    return Res;
  }
  std::vector<double> Boost(Current.Partitions.size(), 1.5);

  const int Batch = std::max(1, Problem.BatchSize);
  ThreadPool Pool(std::max(1, Problem.Workers));

  std::vector<Candidate> Cands;
  std::vector<Eval> Evals;

  // Guard rails handed to every candidate simulation. When neither is set
  // the options are all-default and the evaluation path is bit-for-bit
  // the pre-guard-rail one.
  nsa::SimOptions CandOpts;
  CandOpts.WallClockBudgetMs = Problem.CandidateBudgetMs;
  CandOpts.Cancel = Problem.Cancel;

  Res.BestBadness = -1;
  int Iter = 0;
  for (int Round = 0; Iter < Problem.MaxIterations; ++Round) {
    if (Problem.Cancel && Problem.Cancel->isCancelled()) {
      Res.Cancelled = true;
      Res.Log.push_back(
          formatString("search cancelled before iter %d", Iter));
      break;
    }
    int N = std::min(Batch, Problem.MaxIterations - Iter);

    // Candidate 0 is the current adaptive state; candidates 1..N-1 are
    // seeded perturbations of it (boost resampling, an occasional random
    // rebind). Generation is serial and depends only on (Seed, Round, J).
    Cands.assign(static_cast<size_t>(N), Candidate());
    Evals.assign(static_cast<size_t>(N), Eval());
    for (int J = 0; J < N; ++J) {
      Candidate &C = Cands[static_cast<size_t>(J)];
      C.Config = Current;
      C.Boost = Boost;
      if (J > 0) {
        Rng PJ(candidateSeed(Problem.Seed, Round, J));
        for (double &B : C.Boost)
          if (PJ.chance(0.4))
            B = Problem.MinBoost +
                PJ.uniformDouble() * (Problem.MaxBoost - Problem.MinBoost);
        if (!C.Config.Partitions.empty() && !C.Config.Cores.empty() &&
            PJ.chance(0.3)) {
          size_t P = PJ.index(C.Config.Partitions.size());
          C.Config.Partitions[P].Core =
              static_cast<int>(PJ.index(C.Config.Cores.size()));
        }
      }
      synthesizeWindows(C.Config, C.Boost);
      if (Error E = C.Config.validate())
        C.InvalidReason = E.message();
      else
        C.Valid = true;
    }

    // Evaluate the batch. Each worker builds its own model and simulator
    // (no shared mutable state) and suppresses observability for the
    // duration, so attaching more workers can neither race on the
    // registry nor change what gets published.
    Pool.parallelFor(N, [&](int J) {
      obs::ThreadSuppressGuard Guard;
      Candidate &C = Cands[static_cast<size_t>(J)];
      if (!C.Valid)
        return;
      Result<analysis::VerdictOutcome> Out =
          analysis::analyzeVerdictOnly(C.Config, CandOpts);
      Eval &E = Evals[static_cast<size_t>(J)];
      if (Out.ok()) {
        E.Ok = true;
        E.V = std::move(*Out);
      } else {
        E.ErrMsg = Out.error().message();
      }
    });

    // Reduce in candidate order: logs, counters, best-so-far and the
    // returned error (if any) are those of the lowest-index candidate,
    // independent of evaluation order.
    int RoundBest = -1;
    for (int J = 0; J < N; ++J) {
      int IterJ = Iter + J;
      const Candidate &C = Cands[static_cast<size_t>(J)];
      if (!C.Valid) {
        Res.Log.push_back(formatString("iter %d: invalid candidate (%s)",
                                       IterJ, C.InvalidReason.c_str()));
        continue;
      }
      Eval &E = Evals[static_cast<size_t>(J)];
      if (!E.Ok)
        return Error::failure(E.ErrMsg);
      if (!E.V.decided()) {
        // The guard rails (per-candidate budget / cancellation) ended the
        // run before a verdict existed: record the reason and move on —
        // a timed-out candidate never aborts the batch.
        ++Res.CandidatesSkipped;
        Res.Log.push_back(formatString(
            "iter %d: skipped (%s after %llu actions)", IterJ,
            nsa::stopReasonName(E.V.Stop),
            static_cast<unsigned long long>(E.V.ActionCount)));
        continue;
      }
      ++Res.ConfigurationsEvaluated;
      if (CandC) {
        CandC->add(1);
        SimC->add(1); // One simulated run per candidate.
      }
      Res.Log.push_back(formatString(
          "iter %d: %s (%lld failed tasks)", IterJ,
          E.V.Schedulable ? "schedulable" : "unschedulable",
          static_cast<long long>(E.V.FailedTasks)));

      if (E.V.Schedulable) {
        ++Res.SchedulableSeen;
        if (SchedC)
          SchedC->add(1);
        Res.Found = true;
        Res.Best = C.Config;
        Res.BestBadness = 0;
        Res.BestTrajectory.push_back({IterJ, 0});
        return Res;
      }
      if (Res.BestBadness < 0 || E.V.FailedTasks < Res.BestBadness) {
        Res.BestBadness = E.V.FailedTasks;
        Res.Best = C.Config;
        Res.BestTrajectory.push_back({IterJ, E.V.FailedTasks});
      }
      if (RoundBest < 0 ||
          E.V.FailedTasks < Evals[static_cast<size_t>(RoundBest)].V.FailedTasks)
        RoundBest = J;
    }
    Iter += N;

    if (RoundBest < 0) {
      // Every candidate in the round was invalid; resample all boosts.
      for (double &B : Boost)
        B = Problem.MinBoost +
            R.uniformDouble() * (Problem.MaxBoost - Problem.MinBoost);
      continue;
    }

    // Adapt from the round's best candidate: grow the windows of its
    // failed partitions; occasionally rebind the worst partition to the
    // least-loaded core.
    Current = Cands[static_cast<size_t>(RoundBest)].Config;
    Boost = Cands[static_cast<size_t>(RoundBest)].Boost;
    const analysis::VerdictOutcome &V =
        Evals[static_cast<size_t>(RoundBest)].V;
    std::vector<int64_t> FailedPerPartition(Current.Partitions.size(), 0);
    for (size_t G = 0; G < V.TaskFailed.size(); ++G)
      if (V.TaskFailed[G])
        ++FailedPerPartition[static_cast<size_t>(
            Current.taskRefOf(static_cast<int>(G)).Partition)];

    int Worst = -1;
    for (size_t P = 0; P < FailedPerPartition.size(); ++P) {
      if (FailedPerPartition[P] == 0)
        continue;
      Boost[P] = std::min(Problem.MaxBoost, Boost[P] * 1.25);
      if (Worst < 0 || FailedPerPartition[P] >
                           FailedPerPartition[static_cast<size_t>(Worst)])
        Worst = static_cast<int>(P);
    }
    if (Worst >= 0 && R.chance(0.3)) {
      // Rebind the worst partition to the core with the lowest load.
      std::vector<double> Load(Current.Cores.size(), 0.0);
      for (size_t P = 0; P < Current.Partitions.size(); ++P)
        if (Current.Partitions[P].Core >= 0)
          Load[static_cast<size_t>(Current.Partitions[P].Core)] +=
              Current.partitionUtilization(static_cast<int>(P));
      int Lightest = 0;
      for (size_t C = 1; C < Load.size(); ++C)
        if (Load[C] < Load[static_cast<size_t>(Lightest)])
          Lightest = static_cast<int>(C);
      Current.Partitions[static_cast<size_t>(Worst)].Core = Lightest;
    }
  }
  return Res;
}
