//===- schedtool/ConfigSearch.cpp - Model-in-the-loop config search ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "schedtool/ConfigSearch.h"

#include "analysis/Analyzer.h"
#include "config/Decompose.h"
#include "config/Fingerprint.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "obs/Timer.h"
#include "schedtool/VerdictCache.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>

using namespace swa;
using namespace swa::schedtool;

bool swa::schedtool::bindFirstFitDecreasing(cfg::Config &Config) {
  // Order partitions by demand (utilization with type-0 WCETs).
  std::vector<std::pair<double, int>> Order;
  for (size_t P = 0; P < Config.Partitions.size(); ++P) {
    double U = 0;
    for (const cfg::Task &T : Config.Partitions[P].Tasks)
      U += static_cast<double>(T.Wcet[0]) /
           static_cast<double>(T.Period);
    Order.push_back({U, static_cast<int>(P)});
  }
  std::sort(Order.begin(), Order.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });

  std::vector<double> CoreLoad(Config.Cores.size(), 0.0);
  for (auto &[U, P] : Order) {
    int Best = -1;
    for (size_t C = 0; C < Config.Cores.size(); ++C) {
      int Type = Config.Cores[C].CoreType;
      double UC = 0;
      for (const cfg::Task &T :
           Config.Partitions[static_cast<size_t>(P)].Tasks)
        UC += static_cast<double>(T.Wcet[static_cast<size_t>(Type)]) /
              static_cast<double>(T.Period);
      if (CoreLoad[C] + UC <= 1.0 &&
          (Best < 0 || CoreLoad[C] < CoreLoad[static_cast<size_t>(Best)]))
        Best = static_cast<int>(C);
    }
    if (Best < 0)
      return false;
    Config.Partitions[static_cast<size_t>(P)].Core = Best;
    int Type = Config.Cores[static_cast<size_t>(Best)].CoreType;
    for (const cfg::Task &T :
         Config.Partitions[static_cast<size_t>(P)].Tasks)
      CoreLoad[static_cast<size_t>(Best)] +=
          static_cast<double>(T.Wcet[static_cast<size_t>(Type)]) /
          static_cast<double>(T.Period);
  }
  return true;
}

void swa::schedtool::synthesizeWindows(cfg::Config &Config,
                                       const std::vector<double> &Boost) {
  cfg::TimeValue L = Config.hyperperiod();
  for (cfg::Partition &P : Config.Partitions)
    P.Windows.clear();

  for (size_t C = 0; C < Config.Cores.size(); ++C) {
    std::vector<int> Parts;
    cfg::TimeValue Minor = L;
    for (size_t P = 0; P < Config.Partitions.size(); ++P) {
      if (Config.Partitions[P].Core != static_cast<int>(C))
        continue;
      Parts.push_back(static_cast<int>(P));
      for (const cfg::Task &T : Config.Partitions[P].Tasks)
        Minor = std::min(Minor, T.Period);
    }
    if (Parts.empty())
      continue;

    std::vector<double> Raw;
    double RawSum = 0;
    for (int P : Parts) {
      double B = static_cast<size_t>(P) < Boost.size()
                     ? Boost[static_cast<size_t>(P)]
                     : 1.5;
      double Slice = std::max(
          1.0, Config.partitionUtilization(P) *
                   static_cast<double>(Minor) * B);
      Raw.push_back(Slice);
      RawSum += Slice;
    }
    double Scale = RawSum > static_cast<double>(Minor)
                       ? static_cast<double>(Minor) / RawSum
                       : 1.0;

    cfg::TimeValue Cursor = 0;
    for (size_t I = 0; I < Parts.size(); ++I) {
      cfg::TimeValue Len = std::max<cfg::TimeValue>(
          1, static_cast<cfg::TimeValue>(Raw[I] * Scale));
      if (Cursor + Len > Minor)
        Len = Minor - Cursor;
      if (Len <= 0)
        break;
      for (cfg::TimeValue Off = 0; Off < L; Off += Minor)
        Config.Partitions[static_cast<size_t>(Parts[I])]
            .Windows.push_back({Off + Cursor, Off + Cursor + Len});
      Cursor += Len;
    }
  }
}

namespace {

/// One candidate of a round: a concrete binding + window layout plus the
/// boost vector that produced it.
struct Candidate {
  cfg::Config Config;
  std::vector<double> Boost;
  bool Valid = false;
  std::string InvalidReason;
};

/// Evaluation slot; written by exactly one worker (or filled serially
/// from the cache / an intra-batch duplicate), read only after the whole
/// batch finished.
struct Eval {
  bool Ok = false;
  std::string ErrMsg;
  analysis::VerdictOutcome V;
};

/// One unit of parallel work: a candidate evaluated monolithically
/// (Comp == kMonolithic), one decomposed component of it (Comp >= 0), or
/// a whole decomposed candidate whose components run sequentially inside
/// the item under a shrinking first-miss horizon cap (Comp ==
/// kCappedChain, used when early exit and decomposition combine). The
/// flattened item list keeps ThreadPool::parallelFor non-reentrant while
/// work of different candidates still overlaps.
struct WorkItem {
  static constexpr int kMonolithic = -1;
  static constexpr int kCappedChain = -2;
  int Cand = -1;
  int Comp = kMonolithic;
};

/// Deterministic evaluation order for a capped chain: most-starved
/// component first (largest demand-to-window-share ratio over its
/// partitions), so the earliest deadline miss is usually discovered
/// before the comfortably-provisioned components run — their horizons
/// then collapse to that miss instant. A pure function of the
/// decomposition: worker count and batch order cannot change it, and any
/// order yields the same merged verdict (the heuristic only moves cost).
std::vector<size_t> chainOrder(const cfg::Decomposition &D) {
  std::vector<double> Score(D.Components.size(), 0.0);
  for (size_t K = 0; K < D.Components.size(); ++K) {
    const cfg::Config &Sub = D.Components[K].Sub;
    for (size_t P = 0; P < Sub.Partitions.size(); ++P) {
      double Demand = Sub.partitionUtilization(static_cast<int>(P));
      double Supply = Sub.windowShare(static_cast<int>(P));
      double S = Supply > 0.0 ? Demand / Supply
                              : (Demand > 0.0 ? 1e18 : 0.0);
      Score[K] = std::max(Score[K], S);
    }
  }
  std::vector<size_t> Order(D.Components.size());
  for (size_t K = 0; K < Order.size(); ++K)
    Order[K] = K;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Score[A] > Score[B];
  });
  return Order;
}

/// Per-candidate perturbation seed: a pure function of (Seed, Round, J),
/// never of the thread that evaluates the candidate.
uint64_t candidateSeed(uint64_t Seed, int Round, int J) {
  uint64_t X = static_cast<uint64_t>(Round) * 0x100000001b3ULL +
               static_cast<uint64_t>(J) + 1;
  return Seed ^ (X * 0x9e3779b97f4a7c15ULL);
}

} // namespace

Result<SearchResult>
swa::schedtool::searchConfiguration(const SearchProblem &Problem) {
  obs::ScopedTimer Timer("schedtool.search");
  SearchResult Res;
  Rng R(Problem.Seed);

  // Counters live in the registry (stable addresses within this thread's
  // shard), cached here so the loop pays one pointer test per event when
  // metrics are off. Only the calling thread touches these; workers
  // publish engine-level counters into their own shards, and the merged
  // totals are identical for every Workers value because the work-item
  // set and each item's publications are fixed by (Seed, BatchSize).
  obs::Counter *CandC = nullptr, *SimC = nullptr, *SchedC = nullptr;
  obs::Counter *HitC = nullptr, *MissC = nullptr, *FoldC = nullptr;
  obs::Counter *DecompC = nullptr, *CompC = nullptr;
  if (obs::enabled()) {
    obs::Registry &Reg = obs::Registry::global();
    CandC = &Reg.counter("schedtool.candidates.evaluated");
    SimC = &Reg.counter("schedtool.simulations.run");
    SchedC = &Reg.counter("schedtool.schedulable.seen");
    HitC = &Reg.counter("schedtool.cache.hits");
    MissC = &Reg.counter("schedtool.cache.misses");
    FoldC = &Reg.counter("schedtool.cache.folds");
    DecompC = &Reg.counter("schedtool.decomposed.candidates");
    CompC = &Reg.counter("schedtool.components.simulated");
  }

  cfg::Config Current = Problem.Base;
  if (!bindFirstFitDecreasing(Current)) {
    Res.Log.push_back("initial binding failed: insufficient capacity");
    return Res;
  }
  std::vector<double> Boost(Current.Partitions.size(), 1.5);

  const int Batch = std::max(1, Problem.BatchSize);
  ThreadPool Pool(std::max(1, Problem.Workers));

  std::vector<Candidate> Cands;
  std::vector<Eval> Evals;

  // Candidate badness is L - FirstMissTime + 1 (0 when schedulable): a
  // metric both a full run and a first-miss early exit compute exactly,
  // so flipping UseEarlyExit cannot change the SearchResult. L depends
  // only on the task periods, which no search move touches.
  const int64_t L = Current.hyperperiod();
  auto BadnessOf = [L](const analysis::VerdictOutcome &V) -> int64_t {
    if (V.Schedulable)
      return 0;
    return V.FirstMissTime >= 0 ? L - V.FirstMissTime + 1 : L + 2;
  };

  VerdictCache Cache;
  // Per-round scratch for the cache / decomposition pipeline.
  std::vector<cfg::Fingerprint> Canon, Raw;
  std::vector<int> DupOf;
  // Verdict provenance per candidate, for the "candidate" span: 0 =
  // simulated, 1 = cache hit, 2 = symmetry fold, 3 = intra-batch dup.
  std::vector<int> Src;
  std::vector<int> SimList;
  std::vector<cfg::Decomposition> Decs;
  std::vector<WorkItem> Items;
  std::vector<Eval> ItemEvals;

  // Guard rails handed to every candidate simulation. When neither is set
  // the options are all-default and the evaluation path is bit-for-bit
  // the pre-guard-rail one.
  nsa::SimOptions CandOpts;
  CandOpts.WallClockBudgetMs = Problem.CandidateBudgetMs;
  CandOpts.Cancel = Problem.Cancel;

  Res.BestBadness = -1;
  int Iter = 0;
  for (int Round = 0; Iter < Problem.MaxIterations; ++Round) {
    if (Problem.Cancel && Problem.Cancel->isCancelled()) {
      Res.Cancelled = true;
      Res.Log.push_back(
          formatString("search cancelled before iter %d", Iter));
      break;
    }
    int N = std::min(Batch, Problem.MaxIterations - Iter);
    obs::Span RoundSpan("batch", "search");
    RoundSpan.arg("round", Round);
    RoundSpan.arg("n", N);

    // Candidate 0 is the current adaptive state; candidates 1..N-1 are
    // seeded perturbations of it (boost resampling, an occasional random
    // rebind). Generation is serial and depends only on (Seed, Round, J).
    Cands.assign(static_cast<size_t>(N), Candidate());
    Evals.assign(static_cast<size_t>(N), Eval());
    for (int J = 0; J < N; ++J) {
      Candidate &C = Cands[static_cast<size_t>(J)];
      C.Config = Current;
      C.Boost = Boost;
      if (J > 0) {
        Rng PJ(candidateSeed(Problem.Seed, Round, J));
        for (double &B : C.Boost)
          if (PJ.chance(0.4))
            B = Problem.MinBoost +
                PJ.uniformDouble() * (Problem.MaxBoost - Problem.MinBoost);
        if (!C.Config.Partitions.empty() && !C.Config.Cores.empty() &&
            PJ.chance(0.3)) {
          size_t P = PJ.index(C.Config.Partitions.size());
          C.Config.Partitions[P].Core =
              static_cast<int>(PJ.index(C.Config.Cores.size()));
        }
      }
      synthesizeWindows(C.Config, C.Boost);
      if (Error E = C.Config.validate())
        C.InvalidReason = E.message();
      else
        C.Valid = true;
    }

    // Cache consultation — strictly serial and against the pre-batch
    // cache state, so the hit pattern is a pure function of the candidate
    // sequence (independent of Workers/BatchSize timing). Intra-batch
    // fingerprint collisions are marked as duplicates and resolved after
    // the batch from the first occurrence's verdict.
    const int RoundHits0 = Res.CacheHits, RoundMisses0 = Res.CacheMisses;
    const int RoundFolds0 = Res.SymmetryFolds;
    const int RoundDups0 = Res.DuplicateCandidates;
    const int RoundDecomp0 = Res.DecomposedCandidates;
    const int RoundComps0 = Res.ComponentsSimulated;
    const int RoundSims0 = Res.SimulationsRun;
    SimList.clear();
    DupOf.assign(static_cast<size_t>(N), -1);
    Src.assign(static_cast<size_t>(N), 0);
    if (Problem.UseVerdictCache) {
      Canon.assign(static_cast<size_t>(N), {});
      Raw.assign(static_cast<size_t>(N), {});
      for (int J = 0; J < N; ++J) {
        Candidate &C = Cands[static_cast<size_t>(J)];
        if (!C.Valid)
          continue;
        Canon[static_cast<size_t>(J)] = cfg::fingerprintConfig(C.Config);
        Raw[static_cast<size_t>(J)] =
            cfg::fingerprintConfig(C.Config, /*CanonicalizeCores=*/false);
        int Dup = -1;
        for (int I = 0; I < J; ++I)
          if (Cands[static_cast<size_t>(I)].Valid &&
              Canon[static_cast<size_t>(I)] == Canon[static_cast<size_t>(J)]) {
            Dup = I;
            break;
          }
        if (Dup >= 0) {
          DupOf[static_cast<size_t>(J)] = Dup;
          Src[static_cast<size_t>(J)] = 3;
          ++Res.DuplicateCandidates;
          continue;
        }
        if (const VerdictCache::Entry *E =
                Cache.lookup(Canon[static_cast<size_t>(J)])) {
          Eval &EV = Evals[static_cast<size_t>(J)];
          EV.Ok = true;
          EV.V = E->Verdict;
          ++Res.CacheHits;
          Src[static_cast<size_t>(J)] = 1;
          if (E->Raw != Raw[static_cast<size_t>(J)]) {
            ++Res.SymmetryFolds;
            Src[static_cast<size_t>(J)] = 2;
          }
        } else {
          ++Res.CacheMisses;
          SimList.push_back(J);
        }
      }
    } else {
      for (int J = 0; J < N; ++J)
        if (Cands[static_cast<size_t>(J)].Valid)
          SimList.push_back(J);
    }

    // Decomposition — also serial: the component structure of each
    // to-be-simulated candidate is fixed before any thread runs, then one
    // flattened item list (monolithic candidates and individual
    // components side by side) is dispatched in a single parallelFor, so
    // the pool is never re-entered and small components of different
    // candidates overlap freely.
    Decs.assign(static_cast<size_t>(N), cfg::Decomposition());
    Items.clear();
    for (int J : SimList) {
      if (Problem.UseDecomposition) {
        Decs[static_cast<size_t>(J)] =
            cfg::decomposeConfig(Cands[static_cast<size_t>(J)].Config);
        if (Decs[static_cast<size_t>(J)].Decomposed) {
          ++Res.DecomposedCandidates;
          Res.ComponentsSimulated += static_cast<int>(
              Decs[static_cast<size_t>(J)].Components.size());
          // With early exit on, the candidate's components run
          // sequentially in one item so each later component inherits the
          // earliest miss found so far as its horizon cap — a passing
          // component then costs min(first miss, L) instead of L, exactly
          // what the monolithic early-exit run pays.
          if (Problem.UseEarlyExit) {
            Items.push_back({J, WorkItem::kCappedChain});
          } else {
            for (size_t K = 0;
                 K < Decs[static_cast<size_t>(J)].Components.size(); ++K)
              Items.push_back({J, static_cast<int>(K)});
          }
          continue;
        }
      }
      ++Res.SimulationsRun;
      Items.push_back({J, -1});
    }

    // Evaluate the batch. Each worker builds its own model and simulator
    // (no shared mutable state) and publishes counters, phase timings and
    // spans into its own thread shard, so attaching more workers cannot
    // race on the registry — and the merged totals stay identical because
    // every item publishes the same numbers on whichever thread runs it.
    ItemEvals.assign(Items.size(), Eval());
    Pool.parallelFor(static_cast<int>(Items.size()), [&](int I) {
      const WorkItem &It = Items[static_cast<size_t>(I)];
      obs::Span ItemSpan(It.Comp == WorkItem::kMonolithic
                             ? "simulate.monolithic"
                             : (It.Comp == WorkItem::kCappedChain
                                    ? "simulate.chain"
                                    : "simulate.component"),
                         "search");
      ItemSpan.arg("cand", It.Cand);
      if (It.Comp >= 0)
        ItemSpan.arg("comp", It.Comp);
      nsa::SimOptions Opt = CandOpts;
      Opt.StopOnFirstMiss = Problem.UseEarlyExit;
      Eval &E = ItemEvals[static_cast<size_t>(I)];
      if (It.Comp == WorkItem::kCappedChain) {
        // Early exit + decomposition: run the components in index order,
        // shrinking the horizon to the earliest miss seen so far. A miss
        // at exactly the horizon is still detected (the simulator treats
        // actions at the horizon as inside the window), so the merged
        // FirstMissTime/FirstMissTasks are identical to independent
        // full-horizon component runs — later misses that the cap hides
        // cannot win the min and are invisible to the merge.
        const cfg::Decomposition &D = Decs[static_cast<size_t>(It.Cand)];
        std::vector<analysis::ComponentVerdict> Parts;
        Parts.reserve(D.Components.size());
        int64_t Cap = D.Horizon;
        bool AllOk = true;
        for (size_t K : chainOrder(D)) {
          const cfg::Component &Comp = D.Components[K];
          obs::Span CompSpan("simulate.component", "search");
          CompSpan.arg("cand", It.Cand);
          CompSpan.arg("comp", static_cast<int64_t>(K));
          nsa::SimOptions ChainOpt = Opt;
          ChainOpt.Horizon = Cap;
          Result<analysis::VerdictOutcome> Out =
              analysis::analyzeVerdictOnly(Comp.Sub, ChainOpt);
          if (!Out.ok()) {
            if (AllOk) // first failing component wins, deterministically
              E.ErrMsg = Out.error().message();
            AllOk = false;
            continue;
          }
          if (Out->FirstMissTime >= 0 && Out->FirstMissTime < Cap)
            Cap = Out->FirstMissTime;
          Parts.push_back({std::move(*Out), Comp.GidMap});
        }
        if (AllOk) {
          E.Ok = true;
          E.V = analysis::mergeComponentVerdicts(
              Parts,
              Cands[static_cast<size_t>(It.Cand)].Config.numTasks());
        }
        return;
      }
      const cfg::Config *Cfg;
      if (It.Comp >= 0) {
        const cfg::Decomposition &D = Decs[static_cast<size_t>(It.Cand)];
        Cfg = &D.Components[static_cast<size_t>(It.Comp)].Sub;
        // Components carry their own (smaller) hyperperiod; simulate to
        // the global one so backlog beyond it is observed exactly as the
        // monolithic run observes it.
        Opt.Horizon = D.Horizon;
      } else {
        Cfg = &Cands[static_cast<size_t>(It.Cand)].Config;
      }
      Result<analysis::VerdictOutcome> Out =
          analysis::analyzeVerdictOnly(*Cfg, Opt);
      if (Out.ok()) {
        E.Ok = true;
        E.V = std::move(*Out);
      } else {
        E.ErrMsg = Out.error().message();
      }
    });

    // Assemble per-candidate verdicts in candidate order: merge component
    // results, insert decided verdicts into the cache, then resolve
    // intra-batch duplicates from their first occurrence.
    {
      size_t ItemAt = 0;
      for (int J : SimList) {
        Eval &E = Evals[static_cast<size_t>(J)];
        const cfg::Decomposition &D = Decs[static_cast<size_t>(J)];
        if (D.Decomposed && Problem.UseEarlyExit) {
          // Capped-chain items merged their components inside the worker;
          // the single slot already holds the candidate verdict.
          E = std::move(ItemEvals[ItemAt]);
          ++ItemAt;
        } else if (D.Decomposed) {
          std::vector<analysis::ComponentVerdict> Parts;
          Parts.reserve(D.Components.size());
          bool AllOk = true;
          for (size_t K = 0; K < D.Components.size(); ++K, ++ItemAt) {
            Eval &IE = ItemEvals[ItemAt];
            if (!IE.Ok) {
              if (AllOk) // first failing component wins, deterministically
                E.ErrMsg = IE.ErrMsg;
              AllOk = false;
              continue;
            }
            Parts.push_back(
                {std::move(IE.V), D.Components[K].GidMap});
          }
          if (AllOk) {
            E.Ok = true;
            E.V = analysis::mergeComponentVerdicts(
                Parts, Cands[static_cast<size_t>(J)].Config.numTasks());
          }
        } else {
          E = std::move(ItemEvals[ItemAt]);
          ++ItemAt;
        }
        if (Problem.UseVerdictCache && E.Ok)
          Cache.insert(Canon[static_cast<size_t>(J)],
                       Raw[static_cast<size_t>(J)], E.V);
      }
    }
    for (int J = 0; J < N; ++J)
      if (DupOf[static_cast<size_t>(J)] >= 0)
        Evals[static_cast<size_t>(J)] =
            Evals[static_cast<size_t>(DupOf[static_cast<size_t>(J)])];

    // Reduce in candidate order: logs, counters, best-so-far and the
    // returned error (if any) are those of the lowest-index candidate,
    // independent of evaluation order. Every logged quantity (badness,
    // first-miss instant, first-miss task count) is invariant under the
    // three acceleration layers, so the per-iteration log is identical
    // for any flag combination.
    int RoundBest = -1;
    int64_t RoundBestBadness = -1;
    for (int J = 0; J < N; ++J) {
      int IterJ = Iter + J;
      const Candidate &C = Cands[static_cast<size_t>(J)];
      if (!C.Valid) {
        Res.Log.push_back(formatString("iter %d: invalid candidate (%s)",
                                       IterJ, C.InvalidReason.c_str()));
        continue;
      }
      Eval &E = Evals[static_cast<size_t>(J)];
      if (!E.Ok)
        return Error::failure(E.ErrMsg);
      // Per-candidate metadata span: fingerprint, verdict provenance
      // (src: 0 sim / 1 hit / 2 fold / 3 dup), stop reason, badness. The
      // span rides the serial reduce, so its args — like the counters —
      // are identical for any worker count.
      obs::Span CandSpan("candidate", "search");
      if (Problem.UseVerdictCache) {
        CandSpan.arg("fp_hi", static_cast<int64_t>(
                                  Canon[static_cast<size_t>(J)].Hi));
        CandSpan.arg("fp_lo", static_cast<int64_t>(
                                  Canon[static_cast<size_t>(J)].Lo));
      }
      CandSpan.arg("src", Src[static_cast<size_t>(J)]);
      CandSpan.arg("stop", static_cast<int64_t>(E.V.Stop));
      ++Res.StopReasonCounts[static_cast<size_t>(E.V.Stop)];
      if (!E.V.decided()) {
        // The guard rails (per-candidate budget / cancellation) ended the
        // run before a verdict existed: record the reason and move on —
        // a timed-out candidate never aborts the batch.
        ++Res.CandidatesSkipped;
        Res.Log.push_back(formatString(
            "iter %d: skipped (%s after %llu actions)", IterJ,
            nsa::stopReasonName(E.V.Stop),
            static_cast<unsigned long long>(E.V.ActionCount)));
        continue;
      }
      ++Res.ConfigurationsEvaluated;
      if (CandC)
        CandC->add(1);
      int64_t Badness = BadnessOf(E.V);
      CandSpan.arg("badness", Badness);
      if (E.V.Schedulable)
        Res.Log.push_back(formatString("iter %d: schedulable", IterJ));
      else
        Res.Log.push_back(formatString(
            "iter %d: unschedulable (badness %lld, first miss at t=%lld, "
            "%d tasks)",
            IterJ, static_cast<long long>(Badness),
            static_cast<long long>(E.V.FirstMissTime),
            static_cast<int>(E.V.FirstMissTasks.size())));

      if (E.V.Schedulable) {
        ++Res.SchedulableSeen;
        if (SchedC)
          SchedC->add(1);
        Res.Found = true;
        Res.Best = C.Config;
        Res.BestBadness = 0;
        Res.BestTrajectory.push_back({IterJ, 0});
        return Res;
      }
      if (Res.BestBadness < 0 || Badness < Res.BestBadness) {
        Res.BestBadness = Badness;
        Res.Best = C.Config;
        Res.BestTrajectory.push_back({IterJ, Badness});
      }
      if (RoundBest < 0 || Badness < RoundBestBadness) {
        RoundBest = J;
        RoundBestBadness = Badness;
      }
    }
    Iter += N;

    // Per-round acceleration statistics. Only emitted when the matching
    // layer is on, so a layers-off log is exactly the per-iteration lines
    // — and the values themselves are serial-path facts, identical for
    // every Workers/BatchSize.
    if (Problem.UseVerdictCache) {
      Res.Log.push_back(formatString(
          "round %d: cache %d hits / %d misses / %d folds / %d dups "
          "(%d entries)",
          Round, Res.CacheHits - RoundHits0, Res.CacheMisses - RoundMisses0,
          Res.SymmetryFolds - RoundFolds0,
          Res.DuplicateCandidates - RoundDups0,
          static_cast<int>(Cache.size())));
      if (HitC) {
        HitC->add(static_cast<uint64_t>(Res.CacheHits - RoundHits0));
        MissC->add(static_cast<uint64_t>(Res.CacheMisses - RoundMisses0));
        FoldC->add(static_cast<uint64_t>(Res.SymmetryFolds - RoundFolds0));
      }
    }
    if (Problem.UseDecomposition) {
      Res.Log.push_back(formatString(
          "round %d: decomposed %d/%d simulated candidates into %d "
          "components",
          Round, Res.DecomposedCandidates - RoundDecomp0,
          static_cast<int>(SimList.size()),
          Res.ComponentsSimulated - RoundComps0));
      if (DecompC) {
        DecompC->add(
            static_cast<uint64_t>(Res.DecomposedCandidates - RoundDecomp0));
        CompC->add(
            static_cast<uint64_t>(Res.ComponentsSimulated - RoundComps0));
      }
    }
    if (SimC)
      SimC->add(static_cast<uint64_t>(Res.SimulationsRun - RoundSims0) +
                static_cast<uint64_t>(Res.ComponentsSimulated - RoundComps0));

    if (RoundBest < 0) {
      // Every candidate in the round was invalid; resample all boosts.
      for (double &B : Boost)
        B = Problem.MinBoost +
            R.uniformDouble() * (Problem.MaxBoost - Problem.MinBoost);
      continue;
    }

    // Adapt from the round's best candidate: grow the windows of the
    // partitions whose tasks miss at the first-miss instant (the only
    // failure set every evaluation mode computes identically);
    // occasionally rebind the worst partition to the least-loaded core.
    Current = Cands[static_cast<size_t>(RoundBest)].Config;
    Boost = Cands[static_cast<size_t>(RoundBest)].Boost;
    const analysis::VerdictOutcome &V =
        Evals[static_cast<size_t>(RoundBest)].V;
    std::vector<int64_t> FailedPerPartition(Current.Partitions.size(), 0);
    for (int32_t G : V.FirstMissTasks)
      if (G >= 0 && G < Current.numTasks())
        ++FailedPerPartition[static_cast<size_t>(
            Current.taskRefOf(G).Partition)];

    int Worst = -1;
    for (size_t P = 0; P < FailedPerPartition.size(); ++P) {
      if (FailedPerPartition[P] == 0)
        continue;
      Boost[P] = std::min(Problem.MaxBoost, Boost[P] * 1.25);
      if (Worst < 0 || FailedPerPartition[P] >
                           FailedPerPartition[static_cast<size_t>(Worst)])
        Worst = static_cast<int>(P);
    }
    if (Worst >= 0 && R.chance(0.3)) {
      // Rebind the worst partition to the core with the lowest load.
      std::vector<double> Load(Current.Cores.size(), 0.0);
      for (size_t P = 0; P < Current.Partitions.size(); ++P)
        if (Current.Partitions[P].Core >= 0)
          Load[static_cast<size_t>(Current.Partitions[P].Core)] +=
              Current.partitionUtilization(static_cast<int>(P));
      int Lightest = 0;
      for (size_t C = 1; C < Load.size(); ++C)
        if (Load[C] < Load[static_cast<size_t>(Lightest)])
          Lightest = static_cast<int>(C);
      Current.Partitions[static_cast<size_t>(Worst)].Core = Lightest;
    }
  }
  return Res;
}

void swa::schedtool::fillSearchReport(obs::RunReport &Report,
                                      const SearchResult &Res,
                                      double ElapsedSec) {
  Report.addCount("found", Res.Found ? 1 : 0);
  Report.addCount("cancelled", Res.Cancelled ? 1 : 0);
  Report.addCount("candidates.evaluated",
                  static_cast<uint64_t>(Res.ConfigurationsEvaluated));
  Report.addCount("candidates.skipped",
                  static_cast<uint64_t>(Res.CandidatesSkipped));
  Report.addCount("schedulable.seen",
                  static_cast<uint64_t>(Res.SchedulableSeen));
  Report.addCount("cache.hits", static_cast<uint64_t>(Res.CacheHits));
  Report.addCount("cache.misses", static_cast<uint64_t>(Res.CacheMisses));
  Report.addCount("cache.folds", static_cast<uint64_t>(Res.SymmetryFolds));
  Report.addCount("cache.duplicates",
                  static_cast<uint64_t>(Res.DuplicateCandidates));
  int Lookups = Res.CacheHits + Res.CacheMisses;
  if (Lookups > 0)
    Report.addStat("cache.hit_rate",
                   static_cast<double>(Res.CacheHits) /
                       static_cast<double>(Lookups));
  Report.addCount("decomposed.candidates",
                  static_cast<uint64_t>(Res.DecomposedCandidates));
  Report.addCount("components.simulated",
                  static_cast<uint64_t>(Res.ComponentsSimulated));
  Report.addCount("simulations.run",
                  static_cast<uint64_t>(Res.SimulationsRun));
  Report.addStat("best.badness", static_cast<double>(Res.BestBadness));
  for (int R = 0; R < nsa::NumStopReasons; ++R)
    if (Res.StopReasonCounts[static_cast<size_t>(R)] > 0)
      Report.addCount(
          std::string("stop.") +
              nsa::stopReasonName(static_cast<nsa::StopReason>(R)),
          static_cast<uint64_t>(
              Res.StopReasonCounts[static_cast<size_t>(R)]));
  if (ElapsedSec > 0)
    Report.addStat("candidates_per_sec",
                   static_cast<double>(Res.ConfigurationsEvaluated) /
                       ElapsedSec);
}
