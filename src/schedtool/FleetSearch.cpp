//===- schedtool/FleetSearch.cpp - Sharded/portfolio fleet search -----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "schedtool/FleetSearch.h"

#include "schedtool/Exchange.h"
#include "schedtool/Snapshot.h"
#include "schedtool/Strategy.h"
#include "support/AtomicFile.h"
#include "support/Crc32.h"
#include "support/StringUtils.h"
#include "support/Subprocess.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sys/stat.h>
#include <thread>

using namespace swa;
using namespace swa::schedtool;

//===----------------------------------------------------------------------===//
// Manifest: the fleet's SearchProblem on disk, so a worker process
// rebuilds the coordinator's problem bit-for-bit. Little-endian,
// CRC-tailed, bounds-checked — same discipline as the snapshot codec,
// but a separate tiny format (the manifest is coordinator-to-worker
// plumbing, not a durability artifact).
//===----------------------------------------------------------------------===//

namespace {

constexpr char kManifestMagic[8] = {'S', 'W', 'A', 'F', 'L', 'E', 'E', 'T'};
constexpr uint32_t kManifestVersion = 1;

struct FleetManifest {
  cfg::Config Base;
  uint64_t Seed = 1;
  int32_t MaxIterations = 100;
  double MinBoost = 1.1;
  double MaxBoost = 2.5;
  int32_t Workers = 1;
  int32_t BatchSize = 4;
  int64_t CandidateBudgetMs = -1;
  uint8_t UseVerdictCache = 1, UseEarlyExit = 1, UseDecomposition = 1,
          UseComponentCache = 1, UseDirtyTracking = 1, UseInstanceReuse = 1;
  int32_t Shards = 1;
  uint8_t Portfolio = 0;
  int64_t FallbackMs = 2000;
  int64_t CheckpointEveryMs = 0;
  std::vector<std::string> Strategies;
};

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putI64(std::string &Out, int64_t V) {
  putU64(Out, static_cast<uint64_t>(V));
}
void putF64(std::string &Out, double V) {
  uint64_t U;
  std::memcpy(&U, &V, sizeof(U));
  putU64(Out, U);
}
void putStr(std::string &Out, const std::string &S) {
  putU64(Out, S.size());
  Out.append(S);
}

class ManifestReader {
public:
  ManifestReader(const char *Data, size_t Len) : P(Data), N(Len) {}
  uint8_t u8() { return need(1) ? static_cast<uint8_t>(P[Off++]) : 0; }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(P[Off + I]))
           << (8 * I);
    Off += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(P[Off + I]))
           << (8 * I);
    Off += 8;
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  double f64() {
    uint64_t U = u64();
    double V;
    std::memcpy(&V, &U, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t L = u64();
    if (Fail || L > N - Off) {
      Fail = true;
      return std::string();
    }
    std::string S(P + Off, static_cast<size_t>(L));
    Off += static_cast<size_t>(L);
    return S;
  }
  bool ok() const { return !Fail; }
  bool done() const { return !Fail && Off == N; }

private:
  bool need(size_t K) {
    if (Fail || N - Off < K) {
      Fail = true;
      return false;
    }
    return true;
  }
  const char *P;
  size_t N;
  size_t Off = 0;
  bool Fail = false;
};

std::string manifestPath(const std::string &Dir) { return Dir + "/manifest"; }
std::string ckptPath(const std::string &Dir, int Shard) {
  return Dir + "/shard_" + std::to_string(Shard) + ".ckpt";
}
std::string donePath(const std::string &Dir, int Shard) {
  return Dir + "/shard_" + std::to_string(Shard) + ".done";
}

Error writeManifest(const std::string &Dir, const FleetManifest &M) {
  std::string Body;
  Body.append(kManifestMagic, sizeof(kManifestMagic));
  putU32(Body, kManifestVersion);
  putU64(Body, M.Seed);
  putU32(Body, static_cast<uint32_t>(M.MaxIterations));
  putF64(Body, M.MinBoost);
  putF64(Body, M.MaxBoost);
  putU32(Body, static_cast<uint32_t>(M.Workers));
  putU32(Body, static_cast<uint32_t>(M.BatchSize));
  putI64(Body, M.CandidateBudgetMs);
  Body.push_back(static_cast<char>(M.UseVerdictCache));
  Body.push_back(static_cast<char>(M.UseEarlyExit));
  Body.push_back(static_cast<char>(M.UseDecomposition));
  Body.push_back(static_cast<char>(M.UseComponentCache));
  Body.push_back(static_cast<char>(M.UseDirtyTracking));
  Body.push_back(static_cast<char>(M.UseInstanceReuse));
  putU32(Body, static_cast<uint32_t>(M.Shards));
  Body.push_back(static_cast<char>(M.Portfolio));
  putI64(Body, M.FallbackMs);
  putI64(Body, M.CheckpointEveryMs);
  putU64(Body, M.Strategies.size());
  for (const std::string &S : M.Strategies)
    putStr(Body, S);
  std::string Cfg;
  encodeConfigBytes(M.Base, Cfg);
  putStr(Body, Cfg);
  putU32(Body, support::crc32(Body.data(), Body.size()));

  support::AtomicFile F;
  if (Error E = F.open(manifestPath(Dir)))
    return E;
  if (Error E = F.append(Body.data(), Body.size()))
    return E;
  return F.commit();
}

Error readManifest(const std::string &Dir, FleetManifest &M) {
  std::ifstream IS(manifestPath(Dir), std::ios::binary);
  if (!IS)
    return Error::failure(ErrorCode::Io,
                          "cannot open fleet manifest in " + Dir);
  std::string Data((std::istreambuf_iterator<char>(IS)),
                   std::istreambuf_iterator<char>());
  auto Bad = [&](const char *What) {
    return Error::failure(ErrorCode::SnapshotCorrupt,
                          std::string("fleet manifest: ") + What);
  };
  if (Data.size() < sizeof(kManifestMagic) + 8 ||
      std::memcmp(Data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0)
    return Bad("bad magic");
  ManifestReader Tail(Data.data() + Data.size() - 4, 4);
  if (Tail.u32() != support::crc32(Data.data(), Data.size() - 4))
    return Bad("checksum mismatch");

  ManifestReader R(Data.data() + sizeof(kManifestMagic),
                   Data.size() - sizeof(kManifestMagic) - 4);
  if (R.u32() != kManifestVersion)
    return Error::failure(ErrorCode::SnapshotVersionSkew,
                          "fleet manifest: version skew");
  M.Seed = R.u64();
  M.MaxIterations = R.i32();
  M.MinBoost = R.f64();
  M.MaxBoost = R.f64();
  M.Workers = R.i32();
  M.BatchSize = R.i32();
  M.CandidateBudgetMs = R.i64();
  M.UseVerdictCache = R.u8();
  M.UseEarlyExit = R.u8();
  M.UseDecomposition = R.u8();
  M.UseComponentCache = R.u8();
  M.UseDirtyTracking = R.u8();
  M.UseInstanceReuse = R.u8();
  M.Shards = R.i32();
  M.Portfolio = R.u8();
  M.FallbackMs = R.i64();
  M.CheckpointEveryMs = R.i64();
  uint64_t NS = R.u64();
  if (NS > 4096)
    return Bad("absurd strategy count");
  for (uint64_t I = 0; R.ok() && I < NS; ++I)
    M.Strategies.push_back(R.str());
  std::string Cfg = R.str();
  if (!R.done())
    return Bad("malformed body");
  if (!decodeConfigBytes(Cfg, M.Base))
    return Bad("malformed base config");
  return Error::success();
}

/// The strategy shard \p Shard runs under manifest \p M.
std::string shardStrategyName(const FleetManifest &M, int Shard) {
  if (M.Portfolio)
    return static_cast<size_t>(Shard) < M.Strategies.size()
               ? M.Strategies[static_cast<size_t>(Shard)]
               : std::string("local");
  return M.Strategies.empty() ? std::string("local") : M.Strategies.front();
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// The finding iteration of a successful result (the trajectory's last
/// entry is (finding iteration, 0) when Found).
int findIteration(const SearchResult &R) {
  if (!R.Found || R.BestTrajectory.empty())
    return INT32_MAX;
  return R.BestTrajectory.back().first;
}

} // namespace

//===----------------------------------------------------------------------===//
// Worker side.
//===----------------------------------------------------------------------===//

Result<SearchResult> schedtool::runFleetShard(const std::string &Dir,
                                              int Shard,
                                              const CancelToken *Cancel,
                                              ExchangeStats *ExStats) {
  FleetManifest M;
  if (Error E = readManifest(Dir, M))
    return E;
  if (Shard < 0 || Shard >= M.Shards)
    return Error::failure(formatString(
        "fleet shard %d out of range (fleet of %d)", Shard, M.Shards));

  SearchProblem P;
  P.Base = M.Base;
  P.Seed = M.Seed;
  P.MaxIterations = M.MaxIterations;
  P.MinBoost = M.MinBoost;
  P.MaxBoost = M.MaxBoost;
  P.Workers = M.Workers;
  P.BatchSize = M.BatchSize;
  P.CandidateBudgetMs = M.CandidateBudgetMs;
  P.UseVerdictCache = M.UseVerdictCache != 0;
  P.UseEarlyExit = M.UseEarlyExit != 0;
  P.UseDecomposition = M.UseDecomposition != 0;
  P.UseComponentCache = M.UseComponentCache != 0;
  P.UseDirtyTracking = M.UseDirtyTracking != 0;
  P.UseInstanceReuse = M.UseInstanceReuse != 0;
  P.Cancel = Cancel;
  P.CheckpointPath = ckptPath(Dir, Shard);
  P.CheckpointEveryMs = M.CheckpointEveryMs;

  std::unique_ptr<Strategy> Strat = makeStrategy(shardStrategyName(M, Shard));
  if (!Strat)
    return Error::failure("unknown fleet strategy '" +
                          shardStrategyName(M, Shard) + "'");
  P.Strat = Strat.get();

  Exchange Ex;
  if (M.Shards > 1) {
    if (Error E = Ex.init(Dir, Shard, M.Shards,
                          M.Portfolio ? Exchange::Mode::Share
                                      : Exchange::Mode::Shard))
      return E;
    Ex.FallbackMs = M.FallbackMs;
    P.Ex = &Ex;
  }

  // Auto-resume: a respawned worker finds its own checkpoint and picks
  // up mid-stream (the PR 9 byte-identity contract). A missing or
  // unreadable checkpoint is a cold start — never a wrong answer; an
  // *identity-mismatched* one is a typed error from the search itself.
  Snapshot Resume;
  if (fileExists(P.CheckpointPath)) {
    Result<Snapshot> S = loadSnapshot(P.CheckpointPath);
    if (S.ok()) {
      Resume = std::move(*S);
      P.Resume = &Resume;
    }
  }

  Result<SearchResult> R = searchConfiguration(P);
  if (ExStats)
    *ExStats = Ex.Stats;
  return R;
}

int schedtool::runFleetWorker(const std::string &Dir, int Shard) {
  Result<SearchResult> Res = runFleetShard(Dir, Shard);
  if (!Res.ok()) {
    std::fprintf(stderr, "fleet worker %d: %s\n", Shard,
                 Res.error().message().c_str());
    return 1;
  }
  // The done envelope: a snapshot whose search state carries the final
  // SearchResult (plus the identity triple, so a coordinator resuming a
  // half-finished fleet can sanity-check it against the manifest).
  FleetManifest M;
  if (Error E = readManifest(Dir, M)) {
    std::fprintf(stderr, "fleet worker %d: %s\n", Shard, E.message().c_str());
    return 1;
  }
  Snapshot S;
  S.HasSearchState = true;
  S.Seed = M.Seed;
  S.BatchSize = M.BatchSize;
  S.BaseCrc = snapshotBaseCrc(M.Base);
  S.Current = M.Base;
  S.StrategyName = shardStrategyName(M, Shard);
  S.Res = std::move(*Res);
  if (Error E = saveSnapshot(S, donePath(Dir, Shard))) {
    std::fprintf(stderr, "fleet worker %d: %s\n", Shard, E.message().c_str());
    return 1;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Coordinator.
//===----------------------------------------------------------------------===//

namespace {

/// Loads a finished worker's result from its done envelope.
Result<SearchResult> loadDone(const std::string &Dir, int Shard) {
  Result<Snapshot> S = loadSnapshot(donePath(Dir, Shard));
  if (!S.ok())
    return S.takeError().withContext(
        formatString("loading result of fleet shard %d", Shard));
  if (!S->HasSearchState)
    return Error::failure(
        ErrorCode::SnapshotCorrupt,
        formatString("fleet shard %d result envelope has no search state",
                     Shard));
  return std::move(S->Res);
}

Error clearShardFiles(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Error::failure(ErrorCode::Io,
                          "cannot open exchange directory " + Dir);
  std::vector<std::string> Victims;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.rfind("shard_", 0) == 0 || Name == "manifest" ||
        Name == "manifest.tmp")
      Victims.push_back(Name);
  }
  ::closedir(D);
  for (const std::string &V : Victims)
    ::unlink((Dir + "/" + V).c_str());
  return Error::success();
}

/// Portfolio winner: Found beats not-found; among found, earliest
/// finding iteration, then lowest shard; among all-unfound, lowest
/// badness, then lowest shard. A pure function of the results — every
/// coordinator run picks the same winner.
int pickWinner(const std::vector<SearchResult> &Results) {
  int Win = 0;
  for (int I = 1; I < static_cast<int>(Results.size()); ++I) {
    const SearchResult &A = Results[static_cast<size_t>(I)];
    const SearchResult &B = Results[static_cast<size_t>(Win)];
    if (A.Found != B.Found) {
      if (A.Found)
        Win = I;
      continue;
    }
    if (A.Found) {
      if (findIteration(A) < findIteration(B))
        Win = I;
    } else if (A.BestBadness < B.BestBadness) {
      Win = I;
    }
  }
  return Win;
}

} // namespace

Result<FleetResult> schedtool::runFleetSearch(const FleetProblem &FP) {
  if (FP.Shards < 1)
    return Error::failure("fleet needs at least one shard");
  if (FP.M == FleetProblem::Mode::Shard && FP.Strategies.size() > 1)
    return Error::failure("shard mode runs one strategy fleet-wide; pass at "
                          "most one strategy name");
  if (FP.ExchangeDir.empty())
    return Error::failure("fleet needs an exchange directory");

  // The exchange directory: create if missing; scrub stale state unless
  // resuming.
  ::mkdir(FP.ExchangeDir.c_str(), 0777);
  struct stat St;
  if (::stat(FP.ExchangeDir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
    return Error::failure(ErrorCode::Io,
                          "cannot create exchange directory " + FP.ExchangeDir);
  if (!FP.Resume) {
    if (Error E = clearShardFiles(FP.ExchangeDir))
      return E;
  }

  FleetManifest M;
  M.Base = FP.Problem.Base;
  M.Seed = FP.Problem.Seed;
  M.MaxIterations = FP.Problem.MaxIterations;
  M.MinBoost = FP.Problem.MinBoost;
  M.MaxBoost = FP.Problem.MaxBoost;
  M.Workers = FP.Problem.Workers;
  M.BatchSize = FP.Problem.BatchSize;
  M.CandidateBudgetMs = FP.Problem.CandidateBudgetMs;
  M.UseVerdictCache = FP.Problem.UseVerdictCache;
  M.UseEarlyExit = FP.Problem.UseEarlyExit;
  M.UseDecomposition = FP.Problem.UseDecomposition;
  M.UseComponentCache = FP.Problem.UseComponentCache;
  M.UseDirtyTracking = FP.Problem.UseDirtyTracking;
  M.UseInstanceReuse = FP.Problem.UseInstanceReuse;
  M.Shards = FP.Shards;
  M.Portfolio = FP.M == FleetProblem::Mode::Portfolio ? 1 : 0;
  M.FallbackMs = FP.FallbackMs;
  M.CheckpointEveryMs = FP.CheckpointEveryMs;
  M.Strategies = FP.Strategies;
  if (Error E = writeManifest(FP.ExchangeDir, M))
    return E;

  FleetResult Out;
  Out.ShardResults.resize(static_cast<size_t>(FP.Shards));
  Out.ShardExchange.resize(static_cast<size_t>(FP.Shards));
  Out.ShardStrategies.reserve(static_cast<size_t>(FP.Shards));
  for (int I = 0; I < FP.Shards; ++I)
    Out.ShardStrategies.push_back(shardStrategyName(M, I));

  std::vector<char> Have(static_cast<size_t>(FP.Shards), 0);

  if (FP.WorkerCommand.empty()) {
    // In-process backend: one thread per shard, each running the same
    // worker code path a spawned process would (manifest and all).
    std::vector<std::thread> Threads;
    std::vector<Result<SearchResult>> Results;
    Results.reserve(static_cast<size_t>(FP.Shards));
    for (int I = 0; I < FP.Shards; ++I)
      Results.push_back(Error::failure("shard did not run"));
    for (int I = 0; I < FP.Shards; ++I)
      Threads.emplace_back([&, I] {
        // A finished shard of a resumed fleet short-circuits through
        // its done envelope instead of re-searching.
        if (FP.Resume && fileExists(donePath(FP.ExchangeDir, I))) {
          Result<SearchResult> R = loadDone(FP.ExchangeDir, I);
          if (R.ok()) {
            Results[static_cast<size_t>(I)] = std::move(R);
            return;
          }
        }
        Results[static_cast<size_t>(I)] =
            runFleetShard(FP.ExchangeDir, I, FP.Problem.Cancel,
                          &Out.ShardExchange[static_cast<size_t>(I)]);
      });
    for (std::thread &T : Threads)
      T.join();
    for (int I = 0; I < FP.Shards; ++I) {
      if (!Results[static_cast<size_t>(I)].ok())
        return Results[static_cast<size_t>(I)].takeError().withContext(
            formatString("fleet shard %d", I));
      Out.ShardResults[static_cast<size_t>(I)] =
          std::move(*Results[static_cast<size_t>(I)]);
      Have[static_cast<size_t>(I)] = 1;
    }
  } else {
    // Process backend: spawn, monitor, respawn. A worker that exits
    // non-zero (or dies by signal) is restarted and auto-resumes from
    // its checkpoint; MaxRestarts bounds the respawn budget per shard.
    std::vector<support::Subprocess> Procs(static_cast<size_t>(FP.Shards));
    std::vector<int> Restarts(static_cast<size_t>(FP.Shards), 0);
    std::vector<char> Killed(static_cast<size_t>(FP.Shards), 0);
    auto Spawn = [&](int I, bool First) -> Error {
      std::vector<std::string> Argv = FP.WorkerCommand;
      Argv.push_back("--fleet-worker");
      Argv.push_back(FP.ExchangeDir);
      Argv.push_back("--fleet-shard");
      Argv.push_back(std::to_string(I));
      return Procs[static_cast<size_t>(I)].start(
          Argv, First ? FP.WorkerEnv : std::vector<std::string>());
    };
    for (int I = 0; I < FP.Shards; ++I) {
      if (FP.Resume && fileExists(donePath(FP.ExchangeDir, I))) {
        Result<SearchResult> R = loadDone(FP.ExchangeDir, I);
        if (R.ok()) {
          Out.ShardResults[static_cast<size_t>(I)] = std::move(*R);
          Have[static_cast<size_t>(I)] = 1;
          continue;
        }
      }
      if (Error E = Spawn(I, /*First=*/true))
        return E.withContext(formatString("spawning fleet shard %d", I));
    }

    for (;;) {
      bool AllDone = true;
      for (int I = 0; I < FP.Shards; ++I) {
        if (Have[static_cast<size_t>(I)])
          continue;
        AllDone = false;
        support::Subprocess &Proc = Procs[static_cast<size_t>(I)];
        if (Proc.running()) {
          // The crash drill: SIGKILL the victim the first time its
          // checkpoint exists, so the respawn resumes mid-search.
          if (I == FP.KillShardOnFirstCheckpoint &&
              !Killed[static_cast<size_t>(I)] &&
              fileExists(ckptPath(FP.ExchangeDir, I))) {
            Proc.kill(SIGKILL);
            Killed[static_cast<size_t>(I)] = 1;
          }
          continue;
        }
        int Code = Proc.wait();
        if (Code == 0) {
          Result<SearchResult> R = loadDone(FP.ExchangeDir, I);
          if (!R.ok())
            return R.takeError();
          Out.ShardResults[static_cast<size_t>(I)] = std::move(*R);
          Have[static_cast<size_t>(I)] = 1;
          continue;
        }
        if (Restarts[static_cast<size_t>(I)] >= FP.MaxRestarts)
          return Error::failure(formatString(
              "fleet shard %d failed with status %d after %d restarts", I,
              Code, Restarts[static_cast<size_t>(I)]));
        ++Restarts[static_cast<size_t>(I)];
        ++Out.Restarts;
        if (Error E = Spawn(I, /*First=*/false))
          return E.withContext(formatString("respawning fleet shard %d", I));
      }
      if (AllDone)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  if (FP.M == FleetProblem::Mode::Shard) {
    // Every shard replayed the full deterministic loop; their results
    // must agree byte for byte, and the fleet's answer is that result.
    std::string Ref = encodeSearchResultBytes(Out.ShardResults[0]);
    for (int I = 1; I < FP.Shards; ++I)
      if (encodeSearchResultBytes(Out.ShardResults[static_cast<size_t>(I)]) !=
          Ref)
        return Error::failure(
            ErrorCode::SnapshotMismatch,
            formatString("fleet shard %d's result diverges from shard 0's — "
                         "the byte-identity contract is broken",
                         I));
    Out.WinnerShard = 0;
    Out.WinnerStrategy = Out.ShardStrategies[0];
    Out.Res = Out.ShardResults[0];
  } else {
    Out.WinnerShard = pickWinner(Out.ShardResults);
    Out.WinnerStrategy =
        Out.ShardStrategies[static_cast<size_t>(Out.WinnerShard)];
    Out.Res = Out.ShardResults[static_cast<size_t>(Out.WinnerShard)];
  }
  return Out;
}
