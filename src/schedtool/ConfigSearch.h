//===- schedtool/ConfigSearch.h - Model-in-the-loop config search -*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The integration the paper describes in §4: an IMA scheduling tool
/// iterates over candidate configurations (partition-to-core bindings and
/// window layouts); each candidate is handed to the parametric model,
/// whose trace yields the schedulability verdict; unschedulable candidates
/// are discarded and drive the next move.
///
/// The search here is a greedy first-fit-decreasing binding followed by a
/// seeded local search over bindings and per-partition window shares —
/// deliberately simple, since the subject of the reproduction is the
/// model-in-the-loop protocol and its cost, not the optimizer.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SCHEDTOOL_CONFIGSEARCH_H
#define SWA_SCHEDTOOL_CONFIGSEARCH_H

#include "analysis/Schedulability.h"
#include "config/Config.h"
#include "nsa/Simulator.h"
#include "obs/RunReport.h"
#include "support/CancelToken.h"

#include <array>
#include <string>
#include <vector>

namespace swa {
namespace schedtool {

struct Snapshot;      // schedtool/Snapshot.h
struct SnapshotStats; // schedtool/Snapshot.h
class Strategy;       // schedtool/Strategy.h
class Exchange;       // schedtool/Exchange.h

struct SearchProblem {
  /// Cores/partitions/tasks/messages; bindings (Partition::Core) and
  /// windows are ignored and chosen by the search.
  cfg::Config Base;
  uint64_t Seed = 1;
  int MaxIterations = 100;
  /// Window over-provisioning range explored by the search.
  double MinBoost = 1.1;
  double MaxBoost = 2.5;
  /// Threads used to evaluate each candidate batch (1 = fully serial, no
  /// threads spawned). The result is byte-identical for every value: the
  /// candidate sequence is fixed by (Seed, BatchSize) alone and batch
  /// results are reduced in candidate order.
  int Workers = 1;
  /// Candidates generated and evaluated per round. Deliberately
  /// independent of Workers so changing the thread count never changes
  /// which configurations are explored.
  int BatchSize = 4;
  /// Per-candidate wall-clock budget in milliseconds; negative = none. A
  /// candidate whose simulation outlives the budget is recorded as
  /// skipped (with the reason in the log) and the search continues — the
  /// batch is never aborted. When no budget ever fires, the SearchResult
  /// is byte-identical to a run without a budget, for any worker count.
  int64_t CandidateBudgetMs = -1;
  /// Cooperative cancellation for the whole search: polled between rounds
  /// and passed to every candidate simulation, so an in-flight batch winds
  /// down quickly.
  const CancelToken *Cancel = nullptr;
  /// Memoize verdicts under the canonical structural fingerprint
  /// (cfg::fingerprintConfig): revisited and symmetry-equivalent
  /// candidates skip the simulation. Hits are observationally identical
  /// to re-evaluation — the SearchResult is byte-identical with the cache
  /// on or off, for any Workers/BatchSize (the cache is consulted and
  /// filled only on the serial reduce path).
  bool UseVerdictCache = true;
  /// Stop each candidate simulation at the first deadline miss
  /// (nsa::SimOptions::StopOnFirstMiss) instead of running to the
  /// hyperperiod. The verdict, badness and adaptive move are derived
  /// from first-miss data that a full run computes identically.
  bool UseEarlyExit = true;
  /// Split candidates along the inter-core message graph
  /// (cfg::decomposeConfig) and simulate the independent components as
  /// separate, smaller NSA instances — in parallel across the worker
  /// pool — then merge (analysis::mergeComponentVerdicts). Candidates
  /// that do not decompose fall back to the monolithic run.
  bool UseDecomposition = true;
  /// Memoize *component* verdicts under cfg::fingerprintComponent (the
  /// second cache level): a mutation dirties one or two components, and
  /// every clean component's verdict replays from the cache — a
  /// candidate whose components all hit never constructs a simulator.
  /// Missing components are simulated once per distinct fingerprint per
  /// round (full horizon, so the verdict is cap-free and cacheable) and
  /// shared by every candidate in the batch that needs them. Like the
  /// whole-config cache, lookups and fills ride the serial path only, so
  /// the hit pattern — and the SearchResult — is Workers-independent.
  /// No effect unless UseDecomposition is on.
  bool UseComponentCache = true;
  /// Derive each candidate's component structure incrementally from the
  /// mutation delta instead of re-running the union-find and
  /// re-materializing every sub-config per candidate: message groups are
  /// computed once per search (mutations never touch messages), the
  /// round's base decomposition once per round, and only components
  /// containing a mutated core are re-materialized — clean components
  /// reuse the base round's sub-configs (and their fingerprints)
  /// outright. Produces byte-identical components to
  /// cfg::decomposeConfig, so every SearchResult field except the
  /// DirtyComponents/CleanComponentsReused counters (and their log line)
  /// is identical with the flag on or off. No effect unless
  /// UseDecomposition is on.
  bool UseDirtyTracking = true;
  /// Reuse NSA instances across candidates: each worker leases an arena
  /// of built models keyed by cfg::fingerprintShape and retargets a
  /// same-shape model by patching its CoreScheduler window tables
  /// (core::rebindWindows) instead of rebuilding — Algorithm 1 drops out
  /// of the steady-state per-candidate cost. Verdicts are identical with
  /// the flag on or off (the simulator fully resets per run), and no
  /// SearchResult field depends on arena state, so flipping this flag
  /// alone never changes the result byte-wise.
  bool UseInstanceReuse = true;
  /// Durable search (schedtool/Snapshot.h). When non-empty, the search
  /// checkpoints to this path at round boundaries — atomically (see
  /// support::AtomicFile), so a crash at any instant leaves the previous
  /// checkpoint intact. A checkpoint captures the verdict cache (both
  /// levels) and the full loop state; resuming from it replays the
  /// remaining rounds exactly, so a search killed at any checkpoint and
  /// resumed produces a SearchResult byte-identical to the uninterrupted
  /// run, for any Workers value and any acceleration-layer mask. A
  /// checkpoint *write* failure is recorded in CkptStats and the search
  /// continues unchanged: durability is best-effort, results are not.
  std::string CheckpointPath;
  /// Minimum milliseconds between periodic checkpoints; 0 writes one at
  /// every round boundary. The terminal flush (found / iterations
  /// exhausted / cancelled) ignores the throttle, so a cancelled run
  /// always leaves its latest state on disk.
  int64_t CheckpointEveryMs = 0;
  /// A previously loaded snapshot to start from. With search state, the
  /// identity triple (Seed, BatchSize, CRC of the encoded Base) must
  /// match this problem — a foreign snapshot is a typed
  /// ErrorCode::SnapshotMismatch, never a silent wrong answer — and the
  /// search resumes mid-stream. Without search state the snapshot only
  /// pre-warms the verdict cache: the verdict stream, Found/Best and
  /// trajectory are invariant (hits replay identical verdicts); only
  /// the cache-statistics fields and their log lines can differ.
  const Snapshot *Resume = nullptr;
  /// Checkpoint/snapshot traffic of this run (optional out-param).
  /// Deliberately separate from SearchResult: checkpoint cadence is
  /// wall-clock dependent, and SearchResult stays byte-identical
  /// whether, and how often, a run checkpoints.
  SnapshotStats *CkptStats = nullptr;
  /// The metaheuristic driving perturbation and adaptation (Strategy.h);
  /// null = the built-in "local" strategy, draw-for-draw identical to
  /// the historical loop. The search mutates the strategy (adapt moves
  /// its internal state), so one instance serves one search at a time.
  /// A checkpoint records the strategy's name and opaque state; resuming
  /// under a different strategy is a typed SnapshotMismatch.
  Strategy *Strat = nullptr;
  /// Fleet verdict exchange (Exchange.h); null = single-process search.
  /// In Shard mode the worker simulates only the work items it owns and
  /// adopts the rest from peers' publications (recomputing any item a
  /// peer has not published within Exchange::FallbackMs, so a dead shard
  /// only costs time); in Share mode it consults peers before simulating
  /// each item. Either way the SearchResult is byte-identical to the
  /// exchange-free run: a fetched verdict equals what the deterministic
  /// simulator would compute, and every SearchResult statistic is a
  /// serial-path fact fixed before execution begins.
  Exchange *Ex = nullptr;
};

struct SearchResult {
  bool Found = false;
  cfg::Config Best;              ///< Schedulable configuration when Found.
  /// Decided candidates (verdict obtained by simulation *or* cache hit);
  /// invalid and guard-rail-skipped candidates are excluded.
  int ConfigurationsEvaluated = 0;
  int SchedulableSeen = 0;
  /// Badness of the best candidate seen: 0 when schedulable, otherwise
  /// L - FirstMissTime + 1 (hyperperiod minus the first-miss instant, so
  /// "misses later" is "less bad" and the value is positive). Chosen
  /// because a first-miss early-exit run computes it exactly — unlike the
  /// full-run failed-task count earlier revisions used (the field has
  /// been renamed/redefined before: BestMissedJobs -> BestBadness as
  /// failed tasks -> this first-miss metric).
  int64_t BestBadness = 0;
  /// Best-so-far trajectory: (iteration, badness of the best candidate
  /// seen up to then), appended whenever the best improves. The last entry
  /// is (finding iteration, 0) when Found.
  std::vector<std::pair<int, int64_t>> BestTrajectory;
  /// Candidates whose evaluation the guard rails ended (per-candidate
  /// budget or cancellation) before a verdict existed. Each is logged with
  /// its reason; none aborts the batch.
  int CandidatesSkipped = 0;
  /// The search stopped because SearchProblem::Cancel fired.
  bool Cancelled = false;
  /// Verdict-cache statistics (all zero when UseVerdictCache is off).
  /// Hits + Misses == cache lookups (one per valid, non-duplicate
  /// candidate); SymmetryFolds counts the hits that only exist because of
  /// core-relabeling canonicalization and DuplicateCandidates the
  /// intra-batch fingerprint collisions resolved without a lookup.
  int CacheHits = 0;
  int CacheMisses = 0;
  int SymmetryFolds = 0;
  int DuplicateCandidates = 0;
  /// Compositional-evaluation statistics (zero when UseDecomposition is
  /// off): candidates that split, and component NSA instances *actually
  /// simulated* for them — with UseComponentCache on, component-cache
  /// hits and intra-round duplicate components are excluded, so the
  /// count can be far below DecomposedCandidates times the component
  /// count.
  int DecomposedCandidates = 0;
  int ComponentsSimulated = 0;
  /// Component-cache statistics (zero unless UseComponentCache and
  /// UseDecomposition are both on). Hits + Misses is the total component
  /// count over decomposed candidates; Misses >= ComponentsSimulated
  /// because intra-round duplicates are simulated once.
  int ComponentCacheHits = 0;
  int ComponentCacheMisses = 0;
  /// Incremental-structure statistics (zero unless UseDirtyTracking and
  /// UseDecomposition are both on): components re-materialized because a
  /// mutation touched one of their cores, and components reused verbatim
  /// from the round's base decomposition.
  int DirtyComponents = 0;
  int CleanComponentsReused = 0;
  /// Monolithic simulations actually run (cache misses that did not
  /// decompose). SimulationsRun + ComponentsSimulated is the number of
  /// Simulator::run calls the search made.
  int SimulationsRun = 0;
  /// How candidate evaluations ended, indexed by nsa::StopReason: decided
  /// candidates land on Completed/DeadlineMiss, guard-rail skips on
  /// Cancelled/BudgetExceeded. Tallied on the serial reduce path (cache
  /// hits replay the cached verdict's reason), so the taxonomy — like
  /// every other field — is identical for any Workers/BatchSize.
  std::array<int, nsa::NumStopReasons> StopReasonCounts{};
  std::vector<std::string> Log;
};

/// Assigns partitions to cores first-fit-decreasing by utilization.
/// Returns false when some partition fits on no core.
bool bindFirstFitDecreasing(cfg::Config &Config);

/// Synthesizes windows: per core, each minor frame (shortest period on
/// the core) is carved into slices proportional to partition utilization
/// times its boost factor (indexed by partition).
void synthesizeWindows(cfg::Config &Config,
                       const std::vector<double> &Boost);

/// Runs the search.
Result<SearchResult> searchConfiguration(const SearchProblem &Problem);

/// Populates \p Report with the search outcome: evaluation counts, cache
/// hit/miss/fold numbers and rates, decomposition stats, the StopReason
/// taxonomy, and candidates/s when \p ElapsedSec is positive. The numbers
/// are read from \p Res alone, so the report matches the stats the search
/// prints whether or not observability was on.
void fillSearchReport(obs::RunReport &Report, const SearchResult &Res,
                      double ElapsedSec);

} // namespace schedtool
} // namespace swa

#endif // SWA_SCHEDTOOL_CONFIGSEARCH_H
