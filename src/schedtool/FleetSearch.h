//===- schedtool/FleetSearch.h - Sharded/portfolio fleet search -*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-scale configuration search: a coordinator runs N workers —
/// in-process threads or spawned worker processes (support::Subprocess)
/// — against one exchange directory (schedtool::Exchange), in one of
/// two modes:
///
///  - **Shard**: the candidate space of every round is deterministically
///    partitioned across the fleet ((Round + item) % Shards). Each
///    worker simulates only the items it owns, publishes their verdicts,
///    and adopts the rest from its peers — so one shard's simulation
///    pays for every shard's cache hit, and the fleet's aggregate
///    decided-verdict throughput scales with the shard count. Every
///    worker still replays the *full* deterministic round loop
///    serially (planning, cache, reduce), so each per-shard
///    SearchResult — and therefore the merged fleet result — is
///    byte-identical to the single-process run for any fleet size, any
///    per-worker thread count, and any crash/respawn history. The
///    coordinator verifies this literally: all shard results must have
///    equal wire encodings (encodeSearchResultBytes) or the merge fails
///    with a typed SnapshotMismatch.
///
///  - **Portfolio**: every worker runs the full candidate space under a
///    *different* metaheuristic (schedtool::Strategy — "local",
///    "annealing", "genetic"), racing on the shared verdict exchange:
///    a verdict any strategy earns is adopted by the others instead of
///    re-simulated. Each worker's result is byte-identical to its solo
///    run (decided verdicts under one fingerprint are interchangeable);
///    the winner is picked by a deterministic tie-break — Found first,
///    then earliest finding iteration, then lowest shard index (and for
///    all-unsuccessful fleets: lowest badness, then lowest shard).
///
/// Crash tolerance (process backend): each worker checkpoints to
/// `shard_<i>.ckpt` in the exchange directory (the PR 9 durable-search
/// machinery); a worker that dies (non-zero exit or signal) is
/// respawned up to MaxRestarts times and resumes from its own
/// checkpoint — byte-identity of its result is the PR 9 crash/resume
/// contract. While the shard is down, Shard-mode peers fall back to
/// simulating its items locally after Exchange::FallbackMs, so a dead
/// shard costs wall-clock, never the answer.
///
/// Exchange-directory layout (see DESIGN.md):
///
///   manifest        the fleet's SearchProblem + mode + strategies,
///                   written once by the coordinator (AtomicFile)
///   shard_<i>.pub   worker i's published verdict snapshot
///   shard_<i>.ckpt  worker i's durable-search checkpoint
///   shard_<i>.done  worker i's final result envelope (a Snapshot whose
///                   search state carries the finished SearchResult)
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SCHEDTOOL_FLEETSEARCH_H
#define SWA_SCHEDTOOL_FLEETSEARCH_H

#include "schedtool/ConfigSearch.h"
#include "schedtool/Exchange.h"

#include <string>
#include <vector>

namespace swa {
namespace schedtool {

struct FleetProblem {
  /// The search every worker runs. The fleet owns the orchestration
  /// fields: CheckpointPath, Resume, Strat and Ex are ignored here and
  /// installed per worker by the coordinator/worker machinery.
  SearchProblem Problem;

  /// Fleet size (>= 1).
  int Shards = 1;

  enum class Mode { Shard, Portfolio };
  Mode M = Mode::Shard;

  /// Strategy names per shard. Portfolio mode: entry i drives shard i
  /// (missing entries default to "local" — but a portfolio of
  /// duplicates is pointless, so pass a full list). Shard mode: at most
  /// one entry, applied to every shard (they must agree or the results
  /// cannot be byte-identical).
  std::vector<std::string> Strategies;

  /// The exchange directory. Created if missing. A fresh run (Resume
  /// false) clears stale shard_* files first.
  std::string ExchangeDir;

  /// Shard mode: how long a worker waits for a peer's verdict before
  /// simulating the item itself (Exchange::FallbackMs).
  int64_t FallbackMs = 2000;

  /// Worker checkpoint cadence (SearchProblem::CheckpointEveryMs).
  int64_t CheckpointEveryMs = 0;

  /// Process backend: the command prefix to spawn one worker —
  /// typically {argv[0]} of a binary that dispatches to
  /// runFleetWorker() on --fleet-worker. The coordinator appends
  /// "--fleet-worker <dir> --fleet-shard <i>". Empty: workers run as
  /// in-process threads (no crash tolerance, same results).
  std::vector<std::string> WorkerCommand;

  /// Extra environment ("KEY=VALUE") for each worker's *first* spawn
  /// only — respawns after a crash run clean. Lets tests inject
  /// SWA_CRASH_AFTER-style faults that happen exactly once.
  std::vector<std::string> WorkerEnv;

  /// Respawn budget per shard (process backend).
  int MaxRestarts = 2;

  /// Test hook (process backend): SIGKILL this shard the first time its
  /// checkpoint file appears, exactly once; it is then respawned and
  /// resumes. -1 = off. Exercises the mid-round crash drill of the
  /// fleet-equality contract.
  int KillShardOnFirstCheckpoint = -1;

  /// Resume a previously interrupted fleet: keep the exchange
  /// directory's shard files, so workers resume from their checkpoints
  /// and finished shards short-circuit via their done files.
  bool Resume = false;
};

struct FleetResult {
  /// The fleet's answer: the (verified byte-identical) shard result in
  /// Shard mode, the winning strategy's result in Portfolio mode.
  SearchResult Res;
  /// Which shard produced Res (always 0 in Shard mode).
  int WinnerShard = 0;
  /// The winning shard's strategy name.
  std::string WinnerStrategy;
  /// Every shard's full result, by shard index.
  std::vector<SearchResult> ShardResults;
  /// Every shard's strategy name, by shard index.
  std::vector<std::string> ShardStrategies;
  /// Every shard's exchange traffic (peer fetches, fallbacks, wait
  /// time), by shard index — in-process backend only; a spawned
  /// worker's stats die with its process, and a resumed shard that
  /// short-circuited through its done file has none. Wall-clock facts,
  /// deliberately outside SearchResult (see ExchangeStats).
  std::vector<ExchangeStats> ShardExchange;
  /// Worker respawns performed (process backend).
  int Restarts = 0;
};

/// Runs the fleet: writes the manifest, starts the workers, monitors
/// and respawns them (process backend), and merges the results. The
/// coordinator itself never simulates.
Result<FleetResult> runFleetSearch(const FleetProblem &FP);

/// Runs shard \p Shard of the fleet described by \p Dir's manifest in
/// this process (reads the manifest, installs strategy + exchange +
/// checkpoint, auto-resumes from shard_<i>.ckpt when present) and
/// returns its SearchResult. The building block of both backends.
/// \p ExStats, when non-null, receives the shard's exchange traffic.
Result<SearchResult> runFleetShard(const std::string &Dir, int Shard,
                                   const CancelToken *Cancel = nullptr,
                                   ExchangeStats *ExStats = nullptr);

/// Process-backend entry point: runFleetShard + write the
/// shard_<i>.done result envelope. Returns a process exit code (0 on
/// success) and prints errors to stderr — call it from main() when
/// --fleet-worker style flags are present.
int runFleetWorker(const std::string &Dir, int Shard);

} // namespace schedtool
} // namespace swa

#endif // SWA_SCHEDTOOL_FLEETSEARCH_H
