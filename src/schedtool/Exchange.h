//===- schedtool/Exchange.h - Shared verdict exchange directory -*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict exchange a fleet of searches shares: each worker
/// periodically publishes the verdicts it computed as a cache-only
/// snapshot (`shard_<i>.pub` in the exchange directory, written with
/// support::AtomicFile so a reader can never see a torn file — old or
/// new, never a mixture), and refreshes a read-only side cache from its
/// peers' publications, so one shard's simulation pays for every
/// shard's cache hit.
///
/// Two modes, both observationally silent:
///
///  - Shard: the work-item list of every round is identical across
///    workers (planning is serial and deterministic), so items are
///    deterministically partitioned by (Round + item index) % ShardCount.
///    A worker simulates its own items, publishes their verdicts, then
///    waits (bounded by FallbackMs) for peers to publish the rest —
///    falling back to simulating a foreign item locally when its owner
///    is slow or dead, which yields the *same* verdict (the simulator is
///    deterministic), so a worker's SearchResult is byte-identical to
///    the single-process run whether an item's verdict was simulated
///    here, fetched, or recomputed after a peer crashed.
///
///  - Share: every worker runs its full candidate stream (a portfolio of
///    different strategies); before executing a round's items it
///    consults the side cache, and an item whose verdict a peer already
///    published is adopted instead of simulated. Decided verdicts under
///    the same fingerprint are interchangeable (the whole-config cache
///    contract), so each worker's SearchResult is byte-identical to its
///    solo run — the exchange only moves wall-clock.
///
/// All exchange traffic rides the serial path of the round loop (never
/// inside parallelFor, except read-only fetches from the immutable side
/// cache), mirroring how the verdict cache itself stays
/// Workers-invariant. Exchange statistics are deliberately outside
/// SearchResult: how many verdicts arrived from peers is a timing fact.
///
/// Directory layout (see DESIGN.md): `shard_<i>.pub` per worker, plus
/// FleetSearch's `manifest`, `shard_<i>.ckpt` and `shard_<i>.done`.
/// AtomicFile temp files (`*.tmp`) are never read — refresh() opens only
/// the exact publication names.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SCHEDTOOL_EXCHANGE_H
#define SWA_SCHEDTOOL_EXCHANGE_H

#include "schedtool/VerdictCache.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swa {
namespace schedtool {

/// Exchange traffic counters. Wall-clock dependent (how often peers
/// publish, how many fetches hit), so they live outside SearchResult —
/// the result stays byte-identical however the exchange behaves.
struct ExchangeStats {
  uint64_t Publications = 0;      ///< Snapshot publications written.
  uint64_t PublishFailures = 0;   ///< Failed publication writes (swallowed).
  uint64_t Refreshes = 0;         ///< refresh() sweeps over peer files.
  uint64_t PeerSnapshotsLoaded = 0; ///< Changed peer publications loaded.
  uint64_t PeerLoadErrors = 0;    ///< Peer publications that failed to load.
  uint64_t ConfigEntriesFetched = 0;    ///< New config verdicts adopted.
  uint64_t ComponentEntriesFetched = 0; ///< New component verdicts adopted.
  uint64_t ItemsOwned = 0;        ///< Work items this shard simulated as owner.
  uint64_t ItemsFetched = 0;      ///< Work items resolved from peers.
  uint64_t FallbackSimulations = 0; ///< Foreign items simulated locally.
  uint64_t WaitMs = 0;            ///< Milliseconds spent polling peers.
};

/// One worker's handle on the exchange directory. Not thread-safe as a
/// whole — publish/refresh/record are serial-path calls — but fetches
/// against the side cache are const and safe from inside a parallelFor
/// once the serial refresh that filled it returned (VerdictCache entries
/// are write-once and node-stable).
class Exchange {
public:
  enum class Mode { Shard, Share };

  /// Binds this exchange to \p Dir as shard \p ShardIndex of
  /// \p ShardCount. The directory must exist.
  Error init(std::string Dir, int ShardIndex, int ShardCount, Mode M);

  Mode mode() const { return M; }
  int shardIndex() const { return Idx; }
  int shardCount() const { return N; }

  /// Deterministic ownership rule of Shard mode: item \p Item of round
  /// \p Round is simulated by shard (Round + Item) % ShardCount. A pure
  /// function of serial-path facts, so every worker computes the same
  /// partition.
  bool ownsItem(int Round, int Item) const {
    return (static_cast<long long>(Round) + Item) % N == Idx;
  }

  /// Bounded wait for a foreign item's verdict before simulating it
  /// locally (Shard mode), in milliseconds.
  int64_t FallbackMs = 2000;

  /// Records a locally computed, decided config-level verdict for the
  /// next publication. Undecided verdicts are rejected by the cache
  /// itself (guard-rail stops are not facts about the config).
  void recordConfig(const cfg::Fingerprint &Canon,
                    const cfg::Fingerprint &Raw,
                    const analysis::VerdictOutcome &V) {
    Out.insert(Canon, Raw, V);
  }
  /// Component-level counterpart of recordConfig.
  void recordComponent(const cfg::Fingerprint &Canon,
                       const cfg::Fingerprint &Raw,
                       const analysis::VerdictOutcome &V) {
    Out.insertComponent(Canon, Raw, V);
  }

  /// Publishes the recorded verdicts as this shard's `.pub` snapshot.
  /// Skipped when nothing new was recorded since the last publication;
  /// write failures are counted and swallowed (a full disk must not
  /// change what the search computes).
  void publish();

  /// Loads every peer publication that changed since the last refresh
  /// into the side cache. Serial-path only.
  void refresh();

  /// Side-cache lookups; null when no peer published the key yet.
  const VerdictCache::Entry *fetchConfig(const cfg::Fingerprint &Canon) const {
    return In.lookup(Canon);
  }
  const VerdictCache::ComponentEntry *
  fetchComponent(const cfg::Fingerprint &Canon) const {
    return In.lookupComponent(Canon);
  }

  ExchangeStats Stats;

private:
  std::string Dir;
  int Idx = 0;
  int N = 1;
  Mode M = Mode::Shard;
  VerdictCache Out; ///< Verdicts this worker computed (to publish).
  VerdictCache In;  ///< Verdicts adopted from peers (read-only side cache).
  size_t PublishedCfg = 0, PublishedComp = 0;
  /// Per-peer change detection: (size, mtime ns, inode) of the last
  /// loaded publication. A rename-replace changes the inode even when
  /// size and timestamp collide.
  struct PeerFile {
    long long Size = -1;
    long long MtimeNs = -1;
    unsigned long long Inode = 0;
  };
  std::vector<PeerFile> Peers;
};

} // namespace schedtool
} // namespace swa

#endif // SWA_SCHEDTOOL_EXCHANGE_H
