//===- sa/Printer.h - Textual dumps of automata and networks ----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable renderings of bound networks: a structured text dump
/// (locations, invariants, edges with their labels re-rendered from the
/// bound trees) and a Graphviz DOT form of single automata. Used by tests
/// and for model debugging; the expression printer is also the basis of
/// error messages elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SA_PRINTER_H
#define SWA_SA_PRINTER_H

#include "sa/Network.h"

#include <string>

namespace swa {
namespace sa {

/// Renders a bound expression back to USL-like text (slots shown as
/// `s<slot>`/`f<slot>` since names are erased by binding, constants shown
/// folded).
std::string printExpr(const usl::Expr &E);

/// Renders one statement (an update fragment).
std::string printStmt(const usl::Stmt &S);

/// Structured text dump of one automaton.
std::string printAutomaton(const Network &Net, const Automaton &A);

/// Summary dump of the whole network (one block per automaton).
std::string printNetwork(const Network &Net);

/// Graphviz DOT rendering of one automaton.
std::string toDot(const Network &Net, const Automaton &A);

} // namespace sa
} // namespace swa

#endif // SWA_SA_PRINTER_H
