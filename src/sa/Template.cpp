//===- sa/Template.cpp - Parametric automaton templates --------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "sa/Template.h"

#include "support/StringUtils.h"

using namespace swa;
using namespace swa::sa;

TemplateBuilder &TemplateBuilder::location(std::string LocName,
                                           std::string Invariant,
                                           bool Committed) {
  RawLocations.push_back(
      {std::move(LocName), std::move(Invariant), Committed});
  return *this;
}

TemplateBuilder &TemplateBuilder::edge(std::string Src, std::string Dst,
                                       EdgeSpec Spec) {
  RawEdges.push_back({std::move(Src), std::move(Dst), std::move(Spec)});
  return *this;
}

TemplateBuilder &TemplateBuilder::readRange(std::string Array,
                                            std::string BaseSrc,
                                            std::string CountSrc) {
  RawHints.push_back(
      {std::move(Array), std::move(BaseSrc), std::move(CountSrc), ""});
  return *this;
}

TemplateBuilder &TemplateBuilder::readElems(std::string Array,
                                            std::string IdxParam,
                                            std::string CountSrc) {
  RawHints.push_back(
      {std::move(Array), "", std::move(CountSrc), std::move(IdxParam)});
  return *this;
}

Result<std::unique_ptr<Template>> TemplateBuilder::build() {
  auto T = std::make_unique<Template>(Name, Globals);
  auto Context = [&](const std::string &What) {
    return "template '" + Name + "' " + What;
  };

  if (!ParamsSrc.empty())
    if (Error E = usl::parseTemplateParams(ParamsSrc, T->Decls))
      return E.withContext(Context("parameters"));
  if (!DeclsSrc.empty())
    if (Error E =
            usl::parseDeclarations(DeclsSrc, T->Decls, /*IsTemplate=*/true))
      return E.withContext(Context("declarations"));

  if (RawLocations.empty())
    return Error::failure(Context("has no locations"));

  for (const RawLocation &RL : RawLocations) {
    if (T->LocationIndex.count(RL.Name))
      return Error::failure(Context("redefines location '" + RL.Name + "'"));
    Template::LocationDef LD;
    LD.Name = RL.Name;
    LD.Committed = RL.Committed;
    if (!RL.Invariant.empty()) {
      Result<usl::InvariantAst> Inv =
          usl::parseInvariant(RL.Invariant, T->Decls);
      if (!Inv.ok())
        return Inv.takeError().withContext(
            Context("location '" + RL.Name + "'"));
      LD.Invariant = std::move(*Inv);
    }
    T->LocationIndex[RL.Name] = static_cast<int>(T->Locations.size());
    T->Locations.push_back(std::move(LD));
  }

  if (!InitialName.empty()) {
    int Idx = T->locationIndex(InitialName);
    if (Idx < 0)
      return Error::failure(
          Context("initial location '" + InitialName + "' does not exist"));
    T->Initial = Idx;
  }

  for (const RawEdge &RE : RawEdges) {
    Template::EdgeDef ED;
    ED.Src = T->locationIndex(RE.Src);
    ED.Dst = T->locationIndex(RE.Dst);
    if (ED.Src < 0 || ED.Dst < 0)
      return Error::failure(Context("edge references unknown location '" +
                                    (ED.Src < 0 ? RE.Src : RE.Dst) + "'"));
    Result<usl::EdgeLabelsAst> Labels =
        usl::parseEdgeLabels(RE.Spec.Select, RE.Spec.Guard, RE.Spec.Sync,
                             RE.Spec.Update, T->Decls);
    if (!Labels.ok())
      return Labels.takeError().withContext(
          Context(formatString("edge %s -> %s", RE.Src.c_str(),
                               RE.Dst.c_str())));
    ED.Labels = std::move(*Labels);
    T->Edges.push_back(std::move(ED));
  }

  for (const RawHint &RH : RawHints) {
    Template::ReadHintDef HD;
    HD.Array = RH.Array;
    const usl::Symbol *ArraySym = T->Decls.lookup(RH.Array);
    if (!ArraySym || ArraySym->Kind != usl::SymbolKind::GlobalVar ||
        !ArraySym->Ty.isArray())
      return Error::failure(Context("read hint targets '" + RH.Array +
                                    "', which is not a global array"));
    Result<usl::ExprPtr> Count = usl::parseIntExpr(RH.CountSrc, T->Decls);
    if (!Count.ok())
      return Count.takeError().withContext(Context("read hint count"));
    if (!RH.IdxParam.empty()) {
      const usl::Symbol *P = T->Decls.lookup(RH.IdxParam);
      if (!P || P->Kind != usl::SymbolKind::TemplateParam ||
          !P->Ty.isArray())
        return Error::failure(Context("read hint index parameter '" +
                                      RH.IdxParam +
                                      "' is not an int[] parameter"));
      HD.ElemsParam = RH.IdxParam;
      HD.ElemsCount = Count.takeValue();
    } else {
      Result<usl::ExprPtr> Base = usl::parseIntExpr(RH.BaseSrc, T->Decls);
      if (!Base.ok())
        return Base.takeError().withContext(Context("read hint base"));
      HD.Base = Base.takeValue();
      HD.Count = Count.takeValue();
    }
    T->ReadHints.push_back(std::move(HD));
  }

  return T;
}
