//===- sa/Validate.h - Structural network validation ------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural sanity checks over a bound network, aimed at user-supplied
/// templates (the registry and the UPPAAL-like XML reader accept arbitrary
/// models). Violations here are almost always authoring mistakes that
/// would otherwise surface as runtime deadlocks or silent misbehaviour:
///
///  * locations unreachable from the initial location;
///  * committed locations with no outgoing edges (guaranteed deadlock the
///    moment they are entered);
///  * binary channels with senders but no receiver anywhere in the
///    network (the send can never fire), and vice versa;
///  * edges out of committed locations labelled with receive actions only
///    (the component cannot make progress on its own) — reported as a
///    warning since an external sender may exist.
///
/// Findings are returned as a list; callers decide which severities to
/// enforce.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SA_VALIDATE_H
#define SWA_SA_VALIDATE_H

#include "sa/Network.h"

#include <string>
#include <vector>

namespace swa {
namespace sa {

enum class FindingSeverity { Warning, Error };

struct Finding {
  FindingSeverity Severity = FindingSeverity::Warning;
  std::string Automaton; ///< Empty for network-level findings.
  std::string Message;
};

/// Runs all checks; findings are ordered by automaton then check.
std::vector<Finding> validateNetwork(const Network &Net);

/// Convenience: returns a failure listing all Error-severity findings, or
/// success when there are none.
Error checkNetwork(const Network &Net);

} // namespace sa
} // namespace swa

#endif // SWA_SA_VALIDATE_H
