//===- sa/Network.h - A bound network of stopwatch automata -----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Network is a fully instantiated NSA: the flat variable store layout
/// with initial values, the channel table, the clock table, the bound
/// function/constant tables shared by all expressions, and the automaton
/// instances. Networks are produced by NetworkBuilder and executed by the
/// nsa::Simulator or explored by the mc::ModelChecker.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SA_NETWORK_H
#define SWA_SA_NETWORK_H

#include "sa/Automaton.h"
#include "usl/Binder.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace swa {
namespace sa {

/// A channel or channel array. Ids [Base, Base+Count) are flat channel
/// identifiers unique across the network.
struct ChannelInfo {
  std::string Name;
  int Base = 0;
  int Count = 1;
  bool Broadcast = false;
};

/// Debug/test metadata for one store variable (global or instance-local).
struct VarInfo {
  std::string Name; ///< Instance-locals are qualified: "inst.var".
  int Base = 0;
  int Size = 1;
};

class Network {
public:
  usl::BindTarget Bind;
  /// Compiled bodies of Bind.FuncTable entries; filled by compileNetwork()
  /// (empty until then; the engines fall back to the tree interpreter).
  std::vector<usl::Code> FuncCode;
  std::vector<int64_t> InitialStore;
  std::vector<VarInfo> Vars;
  std::vector<ChannelInfo> Channels;
  int NumChannelIds = 0;
  std::vector<std::string> ClockNames;
  std::vector<std::unique_ptr<Automaton>> Automata;
  /// Free-form network metadata (e.g. the hyperperiod under key "horizon").
  std::map<std::string, int64_t> Meta;

  int numClocks() const { return static_cast<int>(ClockNames.size()); }
  int numAutomata() const { return static_cast<int>(Automata.size()); }

  /// Returns the base store slot of a variable by (qualified) name, or -1.
  int slotOf(const std::string &Name) const {
    for (const VarInfo &V : Vars)
      if (V.Name == Name)
        return V.Base;
    return -1;
  }

  /// Returns the flat channel id for Name[Offset], or -1.
  int channelId(const std::string &Name, int Offset = 0) const {
    for (const ChannelInfo &C : Channels)
      if (C.Name == Name)
        return Offset < C.Count ? C.Base + Offset : -1;
    return -1;
  }

  /// Channel metadata for a flat channel id.
  const ChannelInfo *channelOf(int Id) const {
    for (const ChannelInfo &C : Channels)
      if (Id >= C.Base && Id < C.Base + C.Count)
        return &C;
    return nullptr;
  }

  /// Formats a flat channel id as "name" or "name[i]".
  std::string channelIdName(int Id) const;

  /// Returns the automaton instance with the given name, or null.
  const Automaton *automatonByName(const std::string &Name) const {
    for (const std::unique_ptr<Automaton> &A : Automata)
      if (A->Name == Name)
        return A.get();
    return nullptr;
  }

  int64_t metaOr(const std::string &Key, int64_t Default) const {
    auto It = Meta.find(Key);
    return It == Meta.end() ? Default : It->second;
  }
};

} // namespace sa
} // namespace swa

#endif // SWA_SA_NETWORK_H
