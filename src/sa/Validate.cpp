//===- sa/Validate.cpp - Structural network validation ----------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "sa/Validate.h"

#include "support/StringUtils.h"

#include <deque>

using namespace swa;
using namespace swa::sa;

std::vector<Finding> swa::sa::validateNetwork(const Network &Net) {
  std::vector<Finding> Out;

  // Channel usage: which channel *families* have any send/receive edge.
  // Runtime indices make per-id precision impossible statically, so the
  // check is per family — exactly the right granularity for authoring
  // mistakes like a sender on a channel no component ever listens to.
  size_t NumFamilies = Net.Channels.size();
  std::vector<char> FamilyHasSend(NumFamilies, 0);
  std::vector<char> FamilyHasRecv(NumFamilies, 0);
  auto FamilyOf = [&](int ChannelBase) -> int {
    for (size_t F = 0; F < NumFamilies; ++F)
      if (ChannelBase >= Net.Channels[F].Base &&
          ChannelBase < Net.Channels[F].Base + Net.Channels[F].Count)
        return static_cast<int>(F);
    return -1;
  };

  for (const std::unique_ptr<Automaton> &A : Net.Automata) {
    // Reachability over the location graph.
    std::vector<char> Reached(A->Locations.size(), 0);
    std::deque<int> Queue;
    Queue.push_back(A->InitialLocation);
    Reached[static_cast<size_t>(A->InitialLocation)] = 1;
    while (!Queue.empty()) {
      int L = Queue.front();
      Queue.pop_front();
      for (int EI : A->Locations[static_cast<size_t>(L)].OutEdges) {
        int Dst = A->Edges[static_cast<size_t>(EI)].Dst;
        if (!Reached[static_cast<size_t>(Dst)]) {
          Reached[static_cast<size_t>(Dst)] = 1;
          Queue.push_back(Dst);
        }
      }
    }
    for (size_t L = 0; L < A->Locations.size(); ++L)
      if (!Reached[L])
        Out.push_back({FindingSeverity::Warning, A->Name,
                       formatString("location '%s' is unreachable from "
                                    "the initial location",
                                    A->Locations[L].Name.c_str())});

    for (size_t L = 0; L < A->Locations.size(); ++L) {
      const Location &Loc = A->Locations[L];
      if (!Loc.Committed || !Reached[L])
        continue;
      if (Loc.OutEdges.empty()) {
        Out.push_back({FindingSeverity::Error, A->Name,
                       formatString("committed location '%s' has no "
                                    "outgoing edges (deadlock when "
                                    "entered)",
                                    Loc.Name.c_str())});
        continue;
      }
      bool AnySelfInitiated = false;
      for (int EI : Loc.OutEdges) {
        const Edge &E = A->Edges[static_cast<size_t>(EI)];
        if (!E.Sync || E.Sync->IsSend)
          AnySelfInitiated = true;
      }
      if (!AnySelfInitiated)
        Out.push_back(
            {FindingSeverity::Warning, A->Name,
             formatString("committed location '%s' can only progress via "
                          "receive actions (depends on an external "
                          "sender)",
                          Loc.Name.c_str())});
    }

    for (const Edge &E : A->Edges) {
      if (!E.Sync)
        continue;
      int F = FamilyOf(E.Sync->ChannelBase);
      if (F < 0)
        continue;
      if (E.Sync->IsSend)
        FamilyHasSend[static_cast<size_t>(F)] = 1;
      else
        FamilyHasRecv[static_cast<size_t>(F)] = 1;
    }
  }

  for (size_t F = 0; F < NumFamilies; ++F) {
    const ChannelInfo &C = Net.Channels[F];
    bool Broadcast = C.Broadcast;
    if (FamilyHasSend[F] && !FamilyHasRecv[F] && !Broadcast)
      Out.push_back({FindingSeverity::Error, "",
                     formatString("binary channel '%s' has senders but no "
                                  "receiver anywhere (sends can never "
                                  "fire)",
                                  C.Name.c_str())});
    if (FamilyHasRecv[F] && !FamilyHasSend[F])
      Out.push_back({FindingSeverity::Warning, "",
                     formatString("channel '%s' has receivers but no "
                                  "sender",
                                  C.Name.c_str())});
  }
  return Out;
}

Error swa::sa::checkNetwork(const Network &Net) {
  std::vector<Finding> Findings = validateNetwork(Net);
  std::string Msg;
  for (const Finding &F : Findings) {
    if (F.Severity != FindingSeverity::Error)
      continue;
    if (!Msg.empty())
      Msg += "; ";
    if (!F.Automaton.empty())
      Msg += F.Automaton + ": ";
    Msg += F.Message;
  }
  if (Msg.empty())
    return Error::success();
  return Error::failure(Msg);
}
