//===- sa/Compile.h - Compile a network's USL code to bytecode --*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles every guard, update, invariant bound, rate condition, sync
/// index and function of a bound network to bytecode (see usl/Bytecode.h).
/// The simulator and model checker then execute the VM code instead of
/// walking trees; networks that skip this pass still run (the engines
/// fall back to the interpreter per site), which is what the
/// interpreter-vs-VM ablation in bench_engine exploits.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SA_COMPILE_H
#define SWA_SA_COMPILE_H

#include "sa/Network.h"

namespace swa {
namespace sa {

/// Compiles all USL code of \p Net in place.
Error compileNetwork(Network &Net);

/// Strips all bytecode from \p Net so the engines fall back to the
/// tree-walking interpreter per site. The inverse ablation of
/// compileNetwork: used by the interpreter-vs-VM benchmarks and by the
/// differential harness's VM-vs-interpreter oracle pair.
void stripBytecode(Network &Net);

/// A network's compiled bytecode, detached from the network: every code
/// site in the deterministic walk order of compileNetwork (functions,
/// then per automaton: location invariants/bounds/rates, then edge
/// guards/bounds/sync indices/updates). Two networks built from configs
/// with the same *shape fingerprint* (cfg::fingerprintShape) have
/// identical site walks and identical USL sources — their bytecode is
/// interchangeable, which is what core::BytecodeCache exploits to skip
/// recompilation across candidate evaluations.
struct NetworkBytecode {
  std::vector<usl::Code> Sites;
};

/// Copies all bytecode of \p Net (which must have been compiled) into
/// \p Out in walk order.
void extractBytecode(const Network &Net, NetworkBytecode &Out);

/// Installs \p BC into \p Net, site by site in walk order. Returns false
/// (leaving Net without bytecode — the caller recompiles) when the site
/// walks disagree, i.e. the cached bytecode is from a different shape.
bool injectBytecode(Network &Net, const NetworkBytecode &BC);

} // namespace sa
} // namespace swa

#endif // SWA_SA_COMPILE_H
