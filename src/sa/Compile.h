//===- sa/Compile.h - Compile a network's USL code to bytecode --*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles every guard, update, invariant bound, rate condition, sync
/// index and function of a bound network to bytecode (see usl/Bytecode.h).
/// The simulator and model checker then execute the VM code instead of
/// walking trees; networks that skip this pass still run (the engines
/// fall back to the interpreter per site), which is what the
/// interpreter-vs-VM ablation in bench_engine exploits.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SA_COMPILE_H
#define SWA_SA_COMPILE_H

#include "sa/Network.h"

namespace swa {
namespace sa {

/// Compiles all USL code of \p Net in place.
Error compileNetwork(Network &Net);

/// Strips all bytecode from \p Net so the engines fall back to the
/// tree-walking interpreter per site. The inverse ablation of
/// compileNetwork: used by the interpreter-vs-VM benchmarks and by the
/// differential harness's VM-vs-interpreter oracle pair.
void stripBytecode(Network &Net);

} // namespace sa
} // namespace swa

#endif // SWA_SA_COMPILE_H
