//===- sa/Automaton.h - Bound stopwatch automaton IR ------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime representation of one stopwatch automaton instance inside a
/// network, corresponding to the paper's tuple
///   <L, l0, U, C, V, v0, AU, AS, E, I, P>:
///
///  * L, l0, U  — Locations / InitialLocation / the Committed flags;
///  * C         — Clocks (absolute indices into the network clock array);
///  * V, v0     — slots of the network store (allocated by NetworkBuilder);
///  * AU, AS    — edge update statements and synchronization actions;
///  * I         — location invariants (data part + clock upper bounds);
///  * P         — progress conditions: per-location stopwatch rate
///                conditions (rate 0 stops a clock in that location).
///
/// All expressions and statements are *bound* USL trees (see usl/Binder.h):
/// evaluation needs only the network store, constant table and function
/// table.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SA_AUTOMATON_H
#define SWA_SA_AUTOMATON_H

#include "usl/Ast.h"
#include "usl/Bytecode.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace swa {
namespace sa {

/// Invariant term `clock <= bound` (or `<` when Strict).
struct ClockUpper {
  int Clock = -1;
  bool Strict = false;
  usl::ExprPtr Bound;
  usl::Code BoundCode; ///< Filled by sa::compileNetwork (optional).
};

/// Stopwatch progress condition: in this location, Clock advances iff
/// Rate evaluates to nonzero. Clocks without a rate condition advance.
struct RateCond {
  int Clock = -1;
  usl::ExprPtr Rate;
  usl::Code RateCode;
};

struct Location {
  std::string Name;
  bool Committed = false;
  usl::ExprPtr DataInvariant; ///< Null means true.
  usl::Code DataInvariantCode;
  std::vector<ClockUpper> Uppers;
  std::vector<RateCond> Rates;
  std::vector<int> OutEdges; ///< Indices into Automaton::Edges.
};

/// Guard term `clock <op> bound` with op in {Lt, Le, Gt, Ge, Eq}.
struct ClockGuard {
  int Clock = -1;
  usl::BinaryOp Op = usl::BinaryOp::Ge;
  usl::ExprPtr Bound;
  usl::Code BoundCode;
};

/// One nondeterministic select binding `name : int[Lo, Hi]` (bounds folded
/// at instantiation). The value occupies FrameSlot of the edge frame.
struct SelectBinding {
  int FrameSlot = 0;
  int64_t Lo = 0;
  int64_t Hi = 0;
};

/// Synchronization action of an edge.
struct SyncAction {
  int ChannelBase = -1;     ///< First channel id of the (array) channel.
  int ChannelCount = 1;     ///< Array size (1 for scalar channels).
  usl::ExprPtr Index;       ///< Runtime index for channel arrays; may ref
                            ///< select variables. Null for scalars.
  usl::Code IndexCode;
  bool IsSend = false;
  bool Broadcast = false;
};

struct Edge {
  int Src = -1;
  int Dst = -1;
  std::vector<SelectBinding> Selects;
  usl::ExprPtr DataGuard; ///< Null means true. May reference selects.
  usl::Code DataGuardCode;
  std::vector<ClockGuard> ClockGuards;
  std::optional<SyncAction> Sync;
  std::vector<usl::StmtPtr> Update;
  usl::Code UpdateCode;
  std::vector<int> ClockResets; ///< Absolute clock indices reset to 0.
};

/// A fully instantiated automaton.
struct Automaton {
  std::string Name;
  std::string TemplateName;
  int InitialLocation = 0;
  std::vector<Location> Locations;
  std::vector<Edge> Edges;
  /// Absolute indices of this instance's clocks, in declaration order.
  std::vector<int> Clocks;
  /// Store slots of guard-relevant shared variables this automaton reads
  /// (union over all edges/invariants); used for dirty tracking.
  std::vector<int32_t> StaticReads;
  /// Free-form metadata set by instance builders (e.g. global task id) and
  /// consumed by trace mapping.
  std::map<std::string, int64_t> Meta;

  int64_t metaOr(const std::string &Key, int64_t Default) const {
    auto It = Meta.find(Key);
    return It == Meta.end() ? Default : It->second;
  }
};

} // namespace sa
} // namespace swa

#endif // SWA_SA_AUTOMATON_H
