//===- sa/Template.h - Parametric automaton templates -----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Template is the paper's *parametric stopwatch automaton* (concrete
/// automata type): locations and edges whose labels are type-checked USL
/// trees over the template's parameters, local declarations and the
/// network's global declarations. NetworkBuilder::addInstance turns a
/// template plus parameter values into a bound sa::Automaton.
///
/// TemplateBuilder offers the authoring API used by the component model
/// library (src/models) and by the UPPAAL-like XML reader (src/configio):
/// locations, invariants and edges are supplied as USL source snippets and
/// parsed/checked in build().
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SA_TEMPLATE_H
#define SWA_SA_TEMPLATE_H

#include "support/Error.h"
#include "usl/Decls.h"
#include "usl/Parser.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace swa {
namespace sa {

/// A parsed, type-checked automaton template.
class Template {
public:
  struct LocationDef {
    std::string Name;
    bool Committed = false;
    usl::InvariantAst Invariant;
  };

  struct EdgeDef {
    int Src = -1;
    int Dst = -1;
    usl::EdgeLabelsAst Labels;
  };

  /// A read hint tightens the conservative dirty-tracking read set for one
  /// global array: instances of this template promise to only read the
  /// hinted elements of it. Either a contiguous range [Base, Base+Count)
  /// or the elements listed in an int[] parameter (first ElemsCount
  /// entries). Expressions fold at instantiation.
  struct ReadHintDef {
    std::string Array;
    usl::ExprPtr Base;   ///< Range form.
    usl::ExprPtr Count;  ///< Range form.
    std::string ElemsParam; ///< Elems form: int[] parameter name.
    usl::ExprPtr ElemsCount;

    bool isRange() const { return Base != nullptr; }
  };

  Template(std::string Name, const usl::Declarations &Globals)
      : Name(std::move(Name)), Decls(&Globals) {}

  Template(const Template &) = delete;
  Template &operator=(const Template &) = delete;

  const std::string &name() const { return Name; }
  usl::Declarations &decls() { return Decls; }
  const usl::Declarations &decls() const { return Decls; }

  int initialLocation() const { return Initial; }
  const std::vector<LocationDef> &locations() const { return Locations; }
  const std::vector<EdgeDef> &edges() const { return Edges; }

  int locationIndex(const std::string &LocName) const {
    auto It = LocationIndex.find(LocName);
    return It == LocationIndex.end() ? -1 : It->second;
  }

  const std::vector<ReadHintDef> &readHints() const { return ReadHints; }

private:
  friend class TemplateBuilder;

  std::string Name;
  usl::Declarations Decls;
  std::vector<LocationDef> Locations;
  std::vector<EdgeDef> Edges;
  std::vector<ReadHintDef> ReadHints;
  std::unordered_map<std::string, int> LocationIndex;
  int Initial = 0;
};

/// Collects template source snippets and parses them in build().
class TemplateBuilder {
public:
  /// \p Globals are the network declarations templates may reference.
  TemplateBuilder(std::string Name, const usl::Declarations &Globals)
      : Name(std::move(Name)), Globals(Globals) {}

  /// Sets the formal parameter list, e.g. `int partId, int[] wcet`.
  TemplateBuilder &params(std::string Source) {
    ParamsSrc = std::move(Source);
    return *this;
  }

  /// Adds local declarations (variables, clocks, functions). May be called
  /// multiple times; blocks are concatenated.
  TemplateBuilder &decls(std::string Source) {
    DeclsSrc += Source;
    DeclsSrc += "\n";
    return *this;
  }

  /// Adds a location. \p Invariant may be empty.
  TemplateBuilder &location(std::string LocName, std::string Invariant = "",
                            bool Committed = false);

  /// Adds a committed location.
  TemplateBuilder &committed(std::string LocName) {
    return location(std::move(LocName), "", /*Committed=*/true);
  }

  /// Selects the initial location (defaults to the first added).
  TemplateBuilder &initial(std::string LocName) {
    InitialName = std::move(LocName);
    return *this;
  }

  /// Edge label bundle; all fields optional.
  struct EdgeSpec {
    std::string Select;
    std::string Guard;
    std::string Sync;
    std::string Update;
  };

  /// Adds an edge between named locations.
  TemplateBuilder &edge(std::string Src, std::string Dst, EdgeSpec Spec);

  /// Read hint: instances only read elements [base, base+count) of the
  /// global array \p Array. \p BaseSrc / \p CountSrc are int expressions
  /// over the template's parameters/constants, folded at instantiation.
  TemplateBuilder &readRange(std::string Array, std::string BaseSrc,
                             std::string CountSrc);

  /// Read hint: instances only read the elements of \p Array whose indices
  /// are the first `count` entries of the int[] parameter \p IdxParam.
  TemplateBuilder &readElems(std::string Array, std::string IdxParam,
                             std::string CountSrc);

  /// Parses everything and produces the template.
  Result<std::unique_ptr<Template>> build();

private:
  struct RawLocation {
    std::string Name;
    std::string Invariant;
    bool Committed;
  };
  struct RawEdge {
    std::string Src;
    std::string Dst;
    EdgeSpec Spec;
  };
  struct RawHint {
    std::string Array;
    std::string BaseSrc;  ///< Range form (empty for elems form).
    std::string CountSrc;
    std::string IdxParam; ///< Elems form.
  };

  std::string Name;
  const usl::Declarations &Globals;
  std::string ParamsSrc;
  std::string DeclsSrc;
  std::vector<RawLocation> RawLocations;
  std::vector<RawEdge> RawEdges;
  std::vector<RawHint> RawHints;
  std::string InitialName;
};

} // namespace sa
} // namespace swa

#endif // SWA_SA_TEMPLATE_H
