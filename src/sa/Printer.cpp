//===- sa/Printer.cpp - Textual dumps of automata and networks --------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "sa/Printer.h"

#include "support/StringUtils.h"

using namespace swa;
using namespace swa::sa;
using usl::BinaryOp;
using usl::Expr;
using usl::ExprKind;
using usl::RefKind;
using usl::Stmt;
using usl::StmtKind;

namespace {

const char *binOpText(BinaryOp B) {
  switch (B) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  case BinaryOp::Min:
    return "min";
  case BinaryOp::Max:
    return "max";
  }
  return "?";
}

std::string refText(const Expr &E) {
  switch (E.Ref) {
  case RefKind::Const:
    return formatString("%lld", static_cast<long long>(E.ConstValue));
  case RefKind::Store:
    return formatString("s%d", E.Slot);
  case RefKind::Frame:
    return formatString("f%d", E.Slot);
  case RefKind::ConstArray:
    return formatString("k%d", E.Slot);
  case RefKind::ClockRef:
    return formatString("c%d", E.Slot);
  case RefKind::Unresolved:
    return E.Sym ? E.Sym->Name : "<unresolved>";
  }
  return "?";
}

} // namespace

std::string swa::sa::printExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return formatString("%lld", static_cast<long long>(E.Literal));
  case ExprKind::BoolLit:
    return E.Literal ? "true" : "false";
  case ExprKind::VarRef:
    return refText(E);
  case ExprKind::Index:
    return refText(E) + "[" + printExpr(*E.Children[0]) + "]";
  case ExprKind::Call: {
    // Bound calls must not touch E.Sym: the symbol lives in the template's
    // declarations, which may be gone by the time a network is printed.
    std::string Out =
        (E.FuncIndex >= 0 ? formatString("fn%d", E.FuncIndex)
                          : (E.Sym ? E.Sym->Name : "<fn>")) +
        "(";
    for (size_t I = 0; I < E.Children.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(*E.Children[I]);
    }
    return Out + ")";
  }
  case ExprKind::Unary:
    return std::string(E.UOp == usl::UnaryOp::Neg ? "-" : "!") + "(" +
           printExpr(*E.Children[0]) + ")";
  case ExprKind::Binary:
    return "(" + printExpr(*E.Children[0]) + " " +
           binOpText(E.BOp) + " " + printExpr(*E.Children[1]) + ")";
  case ExprKind::Ternary:
    return "(" + printExpr(*E.Children[0]) + " ? " +
           printExpr(*E.Children[1]) + " : " + printExpr(*E.Children[2]) +
           ")";
  }
  return "?";
}

std::string swa::sa::printStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Assign: {
    const char *Op = S.AOp == usl::AssignOp::Set   ? " = "
                     : S.AOp == usl::AssignOp::Add ? " += "
                                                   : " -= ";
    return printExpr(*S.Target) + Op + printExpr(*S.Value);
  }
  case StmtKind::ExprStmt:
    return printExpr(*S.Value);
  case StmtKind::Block: {
    std::string Out = "{ ";
    for (const usl::StmtPtr &B : S.Body)
      Out += printStmt(*B) + "; ";
    return Out + "}";
  }
  case StmtKind::LocalDecl:
    return formatString("local f%d", S.DeclFrameSlot);
  case StmtKind::If:
    return "if (" + printExpr(*S.Cond) + ") " + printStmt(*S.Then) +
           (S.Else ? " else " + printStmt(*S.Else) : "");
  case StmtKind::While:
    return "while (" + printExpr(*S.Cond) + ") " + printStmt(*S.Then);
  case StmtKind::For:
    return "for (...) " + printStmt(*S.Then);
  case StmtKind::Return:
    return S.Value ? "return " + printExpr(*S.Value) : "return";
  }
  return "?";
}

namespace {

std::string edgeLabel(const Network &Net, const Edge &E) {
  std::string Out;
  if (!E.Selects.empty()) {
    Out += "select ";
    for (size_t I = 0; I < E.Selects.size(); ++I) {
      if (I)
        Out += ", ";
      Out += formatString("f%d:[%lld,%lld]", E.Selects[I].FrameSlot,
                          static_cast<long long>(E.Selects[I].Lo),
                          static_cast<long long>(E.Selects[I].Hi));
    }
    Out += "; ";
  }
  bool AnyGuard = false;
  for (const ClockGuard &CG : E.ClockGuards) {
    Out += formatString("c%d ", CG.Clock);
    Out += binOpText(CG.Op);
    Out += " " + printExpr(*CG.Bound);
    Out += " && ";
    AnyGuard = true;
  }
  if (E.DataGuard) {
    Out += printExpr(*E.DataGuard);
    AnyGuard = true;
  } else if (AnyGuard) {
    Out.erase(Out.size() - 4); // Trailing " && ".
  }
  if (E.Sync) {
    Out += AnyGuard || !E.Selects.empty() ? "; " : "";
    const ChannelInfo *CI = Net.channelOf(E.Sync->ChannelBase);
    Out += CI ? CI->Name : formatString("<chan:%d>", E.Sync->ChannelBase);
    if (E.Sync->Index)
      Out += "[" + printExpr(*E.Sync->Index) + "]";
    else if (CI && CI->Count > 1)
      Out += formatString("[%d]", E.Sync->ChannelBase - CI->Base);
    Out += E.Sync->IsSend ? "!" : "?";
  }
  if (!E.Update.empty() || !E.ClockResets.empty()) {
    Out += "; ";
    for (size_t I = 0; I < E.Update.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printStmt(*E.Update[I]);
    }
    for (int C : E.ClockResets)
      Out += formatString("%sc%d = 0", E.Update.empty() ? "" : ", ", C);
  }
  return Out;
}

} // namespace

std::string swa::sa::printAutomaton(const Network &Net, const Automaton &A) {
  std::string Out =
      formatString("automaton %s (template %s)\n", A.Name.c_str(),
                   A.TemplateName.c_str());
  for (size_t L = 0; L < A.Locations.size(); ++L) {
    const Location &Loc = A.Locations[L];
    Out += formatString("  %s%s%s", Loc.Name.c_str(),
                        Loc.Committed ? " [committed]" : "",
                        static_cast<int>(L) == A.InitialLocation
                            ? " [initial]"
                            : "");
    std::string Inv;
    for (const ClockUpper &U : Loc.Uppers)
      Inv += formatString("c%d %s %s && ", U.Clock, U.Strict ? "<" : "<=",
                          printExpr(*U.Bound).c_str());
    for (const RateCond &R : Loc.Rates)
      Inv += formatString("c%d' == %s && ", R.Clock,
                          printExpr(*R.Rate).c_str());
    if (Loc.DataInvariant)
      Inv += printExpr(*Loc.DataInvariant) + " && ";
    if (!Inv.empty()) {
      Inv.erase(Inv.size() - 4);
      Out += " inv: " + Inv;
    }
    Out += "\n";
    for (int EI : Loc.OutEdges) {
      const Edge &E = A.Edges[static_cast<size_t>(EI)];
      Out += formatString("    -> %s : %s\n",
                          A.Locations[static_cast<size_t>(E.Dst)]
                              .Name.c_str(),
                          edgeLabel(Net, E).c_str());
    }
  }
  return Out;
}

std::string swa::sa::printNetwork(const Network &Net) {
  std::string Out = formatString(
      "network: %d automata, %zu store slots, %d clocks, %d channel ids\n",
      Net.numAutomata(), Net.InitialStore.size(), Net.numClocks(),
      Net.NumChannelIds);
  for (const std::unique_ptr<Automaton> &A : Net.Automata)
    Out += printAutomaton(Net, *A);
  return Out;
}

std::string swa::sa::toDot(const Network &Net, const Automaton &A) {
  std::string Out = "digraph \"" + A.Name + "\" {\n"
                    "  rankdir=LR;\n  node [shape=ellipse];\n";
  for (size_t L = 0; L < A.Locations.size(); ++L) {
    const Location &Loc = A.Locations[L];
    Out += formatString(
        "  n%zu [label=\"%s\"%s%s];\n", L, Loc.Name.c_str(),
        Loc.Committed ? ", peripheries=2" : "",
        static_cast<int>(L) == A.InitialLocation ? ", style=bold" : "");
  }
  for (const Edge &E : A.Edges) {
    std::string Label = edgeLabel(Net, E);
    // Escape quotes for DOT.
    std::string Escaped;
    for (char C : Label) {
      if (C == '"')
        Escaped += "\\\"";
      else
        Escaped += C;
    }
    Out += formatString("  n%d -> n%d [label=\"%s\"];\n", E.Src, E.Dst,
                        Escaped.c_str());
  }
  Out += "}\n";
  return Out;
}
