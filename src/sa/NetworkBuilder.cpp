//===- sa/NetworkBuilder.cpp - NSA instance construction -------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "sa/NetworkBuilder.h"

#include "support/StringUtils.h"
#include "usl/Interp.h"
#include "usl/Parser.h"

#include <algorithm>
#include <unordered_map>

using namespace swa;
using namespace swa::sa;

std::string Network::channelIdName(int Id) const {
  const ChannelInfo *C = channelOf(Id);
  if (!C)
    return formatString("<chan:%d>", Id);
  if (C->Count == 1)
    return C->Name;
  return formatString("%s[%d]", C->Name.c_str(), Id - C->Base);
}

NetworkBuilder::NetworkBuilder() : Net(std::make_unique<Network>()) {
  GlobalBinder = std::make_unique<usl::Binder>(Net->Bind);
}

Error NetworkBuilder::addGlobals(std::string_view Source) {
  if (GlobalsLaidOut)
    return Error::failure(
        "global declarations must be added before instances");
  return usl::parseDeclarations(Source, Globals, /*IsTemplate=*/false);
}

Error NetworkBuilder::layoutGlobals() {
  if (GlobalsLaidOut)
    return Error::success();
  GlobalsLaidOut = true;

  // Variables: decl order, arrays contiguous.
  for (const usl::Declarations::VarInit &VI : Globals.Vars) {
    int Base = static_cast<int>(Net->InitialStore.size());
    int Size = VI.Sym->Ty.isArray() ? VI.Sym->Ty.Size : 1;
    for (int I = 0; I < Size; ++I) {
      int64_t Init = 0;
      if (static_cast<size_t>(I) < VI.Init.size()) {
        Result<int64_t> V = usl::foldConst(*VI.Init[static_cast<size_t>(I)]);
        if (!V.ok())
          return V.takeError().withContext(
              "initializer of global '" + VI.Sym->Name + "'");
        Init = *V;
      }
      Net->InitialStore.push_back(Init);
    }
    Net->Vars.push_back({VI.Sym->Name, Base, Size});
    GlobalBinder->mapStore(VI.Sym, Base);
  }

  // Clocks.
  for (const usl::Symbol *C : Globals.Clocks) {
    GlobalBinder->mapClock(C, static_cast<int>(Net->ClockNames.size()));
    Net->ClockNames.push_back(C->Name);
  }

  // Channels.
  for (const usl::Symbol *Ch : Globals.Channels) {
    ChannelInfo CI;
    CI.Name = Ch->Name;
    CI.Base = Net->NumChannelIds;
    CI.Count = Ch->Ty.Kind == usl::TypeKind::ChanArray ? Ch->Ty.Size : 1;
    CI.Broadcast = Ch->Broadcast;
    Net->NumChannelIds += CI.Count;
    Net->Channels.push_back(std::move(CI));
  }
  return Error::success();
}

namespace {

/// Rejects direct frame references (select variables) in an expression that
/// will be evaluated outside an edge frame (clock guard bounds).
bool hasDirectFrameRef(const usl::Expr &E) {
  if (E.Ref == usl::RefKind::Frame)
    return true;
  for (const usl::ExprPtr &C : E.Children)
    if (hasDirectFrameRef(*C))
      return true;
  return false;
}

} // namespace

Result<Automaton *> NetworkBuilder::addInstance(const Template &T,
                                                const std::string &InstName,
                                                const ParamMap &Params) {
  assert(!Finished && "builder already finished");
  if (Error E = layoutGlobals())
    return E;

  auto Context = [&](const std::string &What) {
    return "instance '" + InstName + "' of template '" + T.name() + "' " +
           What;
  };

  usl::Binder Binder(Net->Bind, *GlobalBinder);

  // Bind parameters.
  std::unordered_map<std::string, const std::vector<int64_t> *> Provided;
  for (const auto &[Name, Values] : Params)
    Provided[Name] = &Values;
  for (const usl::Symbol *P : T.decls().Params) {
    auto It = Provided.find(P->Name);
    if (It == Provided.end())
      return Error::failure(Context("is missing parameter '" + P->Name +
                                    "'"));
    if (!P->Ty.isArray() && It->second->size() != 1)
      return Error::failure(Context("parameter '" + P->Name +
                                    "' expects a scalar value"));
    if (P->Ty.isArray() && It->second->empty())
      return Error::failure(Context("parameter '" + P->Name +
                                    "' expects a non-empty array"));
    Binder.mapParam(P, *It->second);
    Provided.erase(It);
  }
  if (!Provided.empty())
    return Error::failure(Context("got unknown parameter '" +
                                  Provided.begin()->first + "'"));

  // Allocate instance-local variables.
  for (const usl::Declarations::VarInit &VI : T.decls().Vars) {
    int Base = static_cast<int>(Net->InitialStore.size());
    int Size = VI.Sym->Ty.isArray() ? VI.Sym->Ty.Size : 1;
    Binder.mapStore(VI.Sym, Base);
    for (int I = 0; I < Size; ++I) {
      int64_t Init = 0;
      if (static_cast<size_t>(I) < VI.Init.size()) {
        Result<int64_t> V =
            Binder.bindAndFold(*VI.Init[static_cast<size_t>(I)]);
        if (!V.ok())
          return V.takeError().withContext(
              Context("initializer of '" + VI.Sym->Name + "'"));
        Init = *V;
      }
      Net->InitialStore.push_back(Init);
    }
    Net->Vars.push_back({InstName + "." + VI.Sym->Name, Base, Size});
  }

  auto A = std::make_unique<Automaton>();
  A->Name = InstName;
  A->TemplateName = T.name();
  A->InitialLocation = T.initialLocation();

  // Instance-local clocks.
  for (const usl::Symbol *C : T.decls().Clocks) {
    int Index = static_cast<int>(Net->ClockNames.size());
    Binder.mapClock(C, Index);
    Net->ClockNames.push_back(InstName + "." + C->Name);
    A->Clocks.push_back(Index);
  }

  // Locations.
  for (const Template::LocationDef &LD : T.locations()) {
    Location L;
    L.Name = LD.Name;
    L.Committed = LD.Committed;
    if (LD.Invariant.DataPart) {
      Result<usl::ExprPtr> B = Binder.bindExpr(*LD.Invariant.DataPart);
      if (!B.ok())
        return B.takeError().withContext(Context("location " + LD.Name));
      L.DataInvariant = B.takeValue();
    }
    for (const usl::InvariantAst::ClockUpper &U : LD.Invariant.Uppers) {
      ClockUpper CU;
      Result<int> CI = Binder.clockIndex(U.Clock);
      if (!CI.ok())
        return CI.takeError().withContext(Context("location " + LD.Name));
      CU.Clock = *CI;
      CU.Strict = U.Strict;
      Result<usl::ExprPtr> B = Binder.bindExpr(*U.Bound);
      if (!B.ok())
        return B.takeError().withContext(Context("location " + LD.Name));
      CU.Bound = B.takeValue();
      L.Uppers.push_back(std::move(CU));
    }
    for (const usl::InvariantAst::RateCond &R : LD.Invariant.Rates) {
      RateCond RC;
      Result<int> CI = Binder.clockIndex(R.Clock);
      if (!CI.ok())
        return CI.takeError().withContext(Context("location " + LD.Name));
      RC.Clock = *CI;
      Result<usl::ExprPtr> B = Binder.bindExpr(*R.Rate);
      if (!B.ok())
        return B.takeError().withContext(Context("location " + LD.Name));
      RC.Rate = B.takeValue();
      L.Rates.push_back(std::move(RC));
    }
    A->Locations.push_back(std::move(L));
  }

  // Edges.
  for (const Template::EdgeDef &ED : T.edges()) {
    Edge E;
    E.Src = ED.Src;
    E.Dst = ED.Dst;

    for (const usl::SelectAst &S : ED.Labels.Selects) {
      SelectBinding SB;
      SB.FrameSlot = S.Var->Index;
      Result<int64_t> Lo = Binder.bindAndFold(*S.Lo);
      Result<int64_t> Hi = Binder.bindAndFold(*S.Hi);
      if (!Lo.ok())
        return Lo.takeError().withContext(Context("select bound"));
      if (!Hi.ok())
        return Hi.takeError().withContext(Context("select bound"));
      SB.Lo = *Lo;
      SB.Hi = *Hi;
      if (SB.Lo > SB.Hi)
        return Error::failure(Context("has an empty select range"));
      E.Selects.push_back(SB);
    }

    if (ED.Labels.Guard.DataPart) {
      Result<usl::ExprPtr> B = Binder.bindExpr(*ED.Labels.Guard.DataPart);
      if (!B.ok())
        return B.takeError().withContext(Context("guard"));
      E.DataGuard = B.takeValue();
    }
    for (const usl::GuardAst::ClockRel &CR : ED.Labels.Guard.Clocks) {
      ClockGuard CG;
      Result<int> CI = Binder.clockIndex(CR.Clock);
      if (!CI.ok())
        return CI.takeError().withContext(Context("guard"));
      CG.Clock = *CI;
      CG.Op = CR.Op;
      Result<usl::ExprPtr> B = Binder.bindExpr(*CR.Bound);
      if (!B.ok())
        return B.takeError().withContext(Context("guard"));
      if (hasDirectFrameRef(**B))
        return Error::failure(
            Context("clock guard bounds may not reference select "
                    "variables"));
      CG.Bound = B.takeValue();
      E.ClockGuards.push_back(std::move(CG));
    }

    if (ED.Labels.Sync.Chan) {
      const usl::Symbol *Ch = ED.Labels.Sync.Chan;
      const ChannelInfo *CI = nullptr;
      for (const ChannelInfo &C : Net->Channels)
        if (C.Name == Ch->Name) {
          CI = &C;
          break;
        }
      if (!CI)
        return Error::failure(Context("references unknown channel '" +
                                      Ch->Name + "'"));
      SyncAction SA;
      SA.ChannelBase = CI->Base;
      SA.ChannelCount = CI->Count;
      SA.IsSend = ED.Labels.Sync.IsSend;
      SA.Broadcast = CI->Broadcast;
      if (ED.Labels.Sync.IndexExpr) {
        Result<usl::ExprPtr> B = Binder.bindExpr(*ED.Labels.Sync.IndexExpr);
        if (!B.ok())
          return B.takeError().withContext(Context("sync"));
        SA.Index = B.takeValue();
      }
      E.Sync = std::move(SA);
    }

    for (const usl::StmtPtr &S : ED.Labels.Update.Stmts) {
      Result<usl::StmtPtr> B = Binder.bindStmt(*S);
      if (!B.ok())
        return B.takeError().withContext(Context("update"));
      E.Update.push_back(B.takeValue());
    }
    for (const usl::Symbol *CS : ED.Labels.Update.ClockResets) {
      Result<int> CI = Binder.clockIndex(CS);
      if (!CI.ok())
        return CI.takeError().withContext(Context("update"));
      E.ClockResets.push_back(*CI);
    }

    A->Locations[static_cast<size_t>(E.Src)].OutEdges.push_back(
        static_cast<int>(A->Edges.size()));
    A->Edges.push_back(std::move(E));
  }

  // Static read set for dirty tracking.
  if (!ReadSets)
    ReadSets = std::make_unique<usl::ReadSetCollector>(Net->Bind.FuncTable);
  else
    ReadSets->refresh();
  std::vector<int32_t> Reads;
  for (const Edge &E : A->Edges) {
    if (E.DataGuard)
      ReadSets->collect(*E.DataGuard, Reads);
    if (E.Sync && E.Sync->Index)
      ReadSets->collect(*E.Sync->Index, Reads);
    for (const ClockGuard &CG : E.ClockGuards)
      ReadSets->collect(*CG.Bound, Reads);
  }
  for (const Location &L : A->Locations) {
    if (L.DataInvariant)
      ReadSets->collect(*L.DataInvariant, Reads);
    for (const ClockUpper &U : L.Uppers)
      ReadSets->collect(*U.Bound, Reads);
    for (const RateCond &R : L.Rates)
      ReadSets->collect(*R.Rate, Reads);
  }

  // Apply the template's read hints: for each hinted global array, drop
  // the conservative whole-array contribution and substitute the promised
  // elements.
  for (const Template::ReadHintDef &HD : T.readHints()) {
    int ArrBase = -1, ArrSize = 0;
    for (const VarInfo &V : Net->Vars)
      if (V.Name == HD.Array) {
        ArrBase = V.Base;
        ArrSize = V.Size;
        break;
      }
    if (ArrBase < 0)
      return Error::failure(Context("read hint references unknown array '" +
                                    HD.Array + "'"));
    Reads.erase(std::remove_if(Reads.begin(), Reads.end(),
                               [&](int32_t S) {
                                 return S >= ArrBase &&
                                        S < ArrBase + ArrSize;
                               }),
                Reads.end());
    if (HD.isRange()) {
      Result<int64_t> Base = Binder.bindAndFold(*HD.Base);
      Result<int64_t> Count = Binder.bindAndFold(*HD.Count);
      if (!Base.ok() || !Count.ok())
        return Error::failure(Context("read hint bounds must fold at "
                                      "instantiation"));
      for (int64_t I = 0; I < *Count; ++I) {
        int64_t Idx = *Base + I;
        if (Idx >= 0 && Idx < ArrSize)
          Reads.push_back(static_cast<int32_t>(ArrBase + Idx));
      }
    } else {
      Result<int64_t> Count = Binder.bindAndFold(*HD.ElemsCount);
      if (!Count.ok())
        return Error::failure(Context("read hint count must fold at "
                                      "instantiation"));
      const std::vector<int64_t> *Values = nullptr;
      for (const auto &[PName, PValues] : Params)
        if (PName == HD.ElemsParam)
          Values = &PValues;
      if (!Values)
        return Error::failure(Context("read hint parameter '" +
                                      HD.ElemsParam + "' was not bound"));
      for (int64_t I = 0; I < *Count &&
                          I < static_cast<int64_t>(Values->size());
           ++I) {
        int64_t Idx = (*Values)[static_cast<size_t>(I)];
        if (Idx >= 0 && Idx < ArrSize)
          Reads.push_back(static_cast<int32_t>(ArrBase + Idx));
      }
    }
  }

  std::sort(Reads.begin(), Reads.end());
  Reads.erase(std::unique(Reads.begin(), Reads.end()), Reads.end());
  A->StaticReads = std::move(Reads);

  // Record which ConstArrays slot each array parameter was interned at,
  // so post-build passes (core::WindowRebinder) can patch an instance's
  // array parameters in place. Slots are per-instance by construction.
  for (const usl::Symbol *P : T.decls().Params) {
    if (!P->Ty.isArray())
      continue;
    auto It = Binder.constArraySlots().find(P);
    if (It != Binder.constArraySlots().end())
      A->Meta["carr." + P->Name] = It->second;
  }

  Net->Automata.push_back(std::move(A));
  return Net->Automata.back().get();
}

Result<std::unique_ptr<Network>> NetworkBuilder::finish() {
  assert(!Finished && "builder already finished");
  if (Error E = layoutGlobals())
    return E;
  Finished = true;
  return std::move(Net);
}
