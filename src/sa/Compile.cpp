//===- sa/Compile.cpp - Compile a network's USL code to bytecode ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "sa/Compile.h"

#include "obs/Timer.h"
#include "usl/Compiler.h"

using namespace swa;
using namespace swa::sa;

Error swa::sa::compileNetwork(Network &Net) {
  obs::ScopedTimer Timer("compile");
  Net.FuncCode.clear();
  Net.FuncCode.reserve(Net.Bind.FuncTable.size());
  for (const usl::FuncDecl *F : Net.Bind.FuncTable) {
    Result<usl::Code> C = usl::compileFunction(*F);
    if (!C.ok())
      return C.takeError().withContext("compiling function '" +
                                       (F->Sym ? F->Sym->Name : "?") + "'");
    Net.FuncCode.push_back(C.takeValue());
  }

  for (std::unique_ptr<Automaton> &A : Net.Automata) {
    auto Context = [&](const char *What) {
      return "compiling " + A->Name + " " + What;
    };
    for (Location &L : A->Locations) {
      if (L.DataInvariant) {
        Result<usl::Code> C = usl::compileExpr(*L.DataInvariant);
        if (!C.ok())
          return C.takeError().withContext(Context("invariant"));
        L.DataInvariantCode = C.takeValue();
      }
      for (ClockUpper &U : L.Uppers) {
        Result<usl::Code> C = usl::compileExpr(*U.Bound);
        if (!C.ok())
          return C.takeError().withContext(Context("invariant bound"));
        U.BoundCode = C.takeValue();
      }
      for (RateCond &R : L.Rates) {
        Result<usl::Code> C = usl::compileExpr(*R.Rate);
        if (!C.ok())
          return C.takeError().withContext(Context("rate condition"));
        R.RateCode = C.takeValue();
      }
    }
    for (Edge &E : A->Edges) {
      if (E.DataGuard) {
        Result<usl::Code> C = usl::compileExpr(*E.DataGuard);
        if (!C.ok())
          return C.takeError().withContext(Context("guard"));
        E.DataGuardCode = C.takeValue();
      }
      for (ClockGuard &CG : E.ClockGuards) {
        Result<usl::Code> C = usl::compileExpr(*CG.Bound);
        if (!C.ok())
          return C.takeError().withContext(Context("clock guard bound"));
        CG.BoundCode = C.takeValue();
      }
      if (E.Sync && E.Sync->Index) {
        Result<usl::Code> C = usl::compileExpr(*E.Sync->Index);
        if (!C.ok())
          return C.takeError().withContext(Context("sync index"));
        E.Sync->IndexCode = C.takeValue();
      }
      if (!E.Update.empty()) {
        Result<usl::Code> C = usl::compileStmts(E.Update);
        if (!C.ok())
          return C.takeError().withContext(Context("update"));
        E.UpdateCode = C.takeValue();
      }
    }
  }
  return Error::success();
}

// The one definition of the cacheable-site walk: visits every bytecode
// slot of the network in the exact order compileNetwork fills them, so
// extract and inject can never disagree with each other or with the
// compiler about which sites exist.
template <typename Fn> static void forEachCodeSite(sa::Network &Net, Fn F) {
  for (usl::Code &C : Net.FuncCode)
    F(C);
  for (std::unique_ptr<Automaton> &A : Net.Automata) {
    for (Location &L : A->Locations) {
      if (L.DataInvariant)
        F(L.DataInvariantCode);
      for (ClockUpper &U : L.Uppers)
        F(U.BoundCode);
      for (RateCond &R : L.Rates)
        F(R.RateCode);
    }
    for (Edge &E : A->Edges) {
      if (E.DataGuard)
        F(E.DataGuardCode);
      for (ClockGuard &CG : E.ClockGuards)
        F(CG.BoundCode);
      if (E.Sync && E.Sync->Index)
        F(E.Sync->IndexCode);
      if (!E.Update.empty())
        F(E.UpdateCode);
    }
  }
}

void swa::sa::extractBytecode(const Network &Net, NetworkBytecode &Out) {
  Out.Sites.clear();
  // compileNetwork sized FuncCode to FuncTable; walking needs mutable
  // references only for the inject direction.
  forEachCodeSite(const_cast<Network &>(Net),
                  [&](usl::Code &C) { Out.Sites.push_back(C); });
}

bool swa::sa::injectBytecode(Network &Net, const NetworkBytecode &BC) {
  // compileNetwork fills FuncCode itself; the walk below only visits
  // existing slots, so size it first exactly as the compiler would.
  Net.FuncCode.assign(Net.Bind.FuncTable.size(), usl::Code());
  size_t I = 0;
  bool Ok = true;
  forEachCodeSite(Net, [&](usl::Code &C) {
    if (I < BC.Sites.size())
      C = BC.Sites[I];
    else
      Ok = false;
    ++I;
  });
  if (Ok && I == BC.Sites.size())
    return true;
  stripBytecode(Net);
  return false;
}

void swa::sa::stripBytecode(Network &Net) {
  Net.FuncCode.clear();
  for (auto &A : Net.Automata) {
    for (Location &L : A->Locations) {
      L.DataInvariantCode.clear();
      for (ClockUpper &U : L.Uppers)
        U.BoundCode.clear();
      for (RateCond &R : L.Rates)
        R.RateCode.clear();
    }
    for (Edge &E : A->Edges) {
      E.DataGuardCode.clear();
      E.UpdateCode.clear();
      for (ClockGuard &CG : E.ClockGuards)
        CG.BoundCode.clear();
      if (E.Sync)
        E.Sync->IndexCode.clear();
    }
  }
}
