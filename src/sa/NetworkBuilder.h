//===- sa/NetworkBuilder.h - NSA instance construction ----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NetworkBuilder assembles a bound Network from global USL declarations
/// and template instantiations. It implements the mechanical part of the
/// paper's Algorithm 1: the core layer decides *which* instances to create
/// for a configuration; this builder performs slot/clock/channel layout,
/// parameter substitution and label binding for each of them.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_SA_NETWORKBUILDER_H
#define SWA_SA_NETWORKBUILDER_H

#include "sa/Network.h"
#include "sa/Template.h"
#include "usl/Binder.h"
#include "usl/Decls.h"
#include "usl/Interp.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace swa {
namespace sa {

class NetworkBuilder {
public:
  NetworkBuilder();

  /// Parses and appends global declarations. Must precede addInstance.
  Error addGlobals(std::string_view Source);

  /// The global declaration scope (for templates to chain to).
  const usl::Declarations &globalDecls() const { return Globals; }

  /// Named parameter values for one instantiation; scalars are single-
  /// element vectors.
  using ParamMap =
      std::vector<std::pair<std::string, std::vector<int64_t>>>;

  /// Instantiates \p T as \p InstanceName with \p Params.
  ///
  /// \returns the new automaton (owned by the network under construction)
  /// for metadata tagging, or a failure describing the first bind error.
  Result<Automaton *> addInstance(const Template &T,
                                  const std::string &InstanceName,
                                  const ParamMap &Params);

  /// Finalizes and returns the network. The builder must not be reused.
  Result<std::unique_ptr<Network>> finish();

private:
  Error layoutGlobals();

  usl::Declarations Globals;
  std::unique_ptr<Network> Net;
  std::unique_ptr<usl::Binder> GlobalBinder;
  /// Incremental per-function read-set cache shared by all instances.
  std::unique_ptr<usl::ReadSetCollector> ReadSets;
  bool GlobalsLaidOut = false;
  bool Finished = false;
};

} // namespace sa
} // namespace swa

#endif // SWA_SA_NETWORKBUILDER_H
