//===- config/Decompose.h - Message-graph config decomposition --*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitions a bound configuration into independent sub-configurations
/// along the inter-core message graph — the compositional-analysis idea of
/// Han et al. applied to the paper's NSA model. Two cores belong to the
/// same component when a message connects tasks bound to them; partitions
/// sharing a core are trivially coupled. Components exchange nothing, so
/// the NSA of the whole system is the disjoint product of the components'
/// NSAs and the monolithic trace restricted to a component equals the
/// component's own trace — simulating each component separately (smaller
/// nets, smaller heaps, parallel across cores) and merging verdicts
/// (analysis::mergeComponentVerdicts) reproduces the monolithic verdict
/// exactly. The difftest campaign carries an oracle for precisely this
/// claim.
///
/// Window truncation: a component's own hyperperiod L_sub divides the
/// global L, but windows live on the global [0, L) axis and
/// Config::validate requires them inside the (sub)hyperperiod. Truncation
/// to the block [0, L_sub) is only sound when the component's window
/// pattern is L_sub-periodic with no window straddling a block boundary —
/// then the CoreScheduler's modulo-hyper cycling replays the global
/// schedule exactly. When any component fails that check, decomposition is
/// declined (Decomposed == false) and the caller evaluates monolithically;
/// splitting a straddling window instead would insert extra window-edge
/// events (sleep/wake, forced preemption) and change the trace.
///
/// Each component must still be simulated to the *global* hyperperiod
/// (Decomposition::Horizon) so carried-over backlog beyond L_sub is
/// observed exactly as the monolithic run observes it.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CONFIG_DECOMPOSE_H
#define SWA_CONFIG_DECOMPOSE_H

#include "config/Config.h"
#include "support/UnionFind.h"

#include <cstdint>
#include <vector>

namespace swa {
namespace cfg {

/// One independent component: a self-contained Config plus the map from
/// its task gids back to the original config's gids.
struct Component {
  Config Sub;
  /// GidMap[sub gid] = original gid.
  std::vector<int32_t> GidMap;
};

struct Decomposition {
  /// False when the config cannot (or need not) be decomposed: a
  /// partition is unbound, everything is one component, or a component's
  /// windows are not sub-hyperperiod-periodic. Components is then empty
  /// and the caller evaluates the original config monolithically.
  bool Decomposed = false;
  std::vector<Component> Components;
  /// The original config's hyperperiod: simulate every component with
  /// SimOptions::Horizon set to this.
  int64_t Horizon = 0;
};

/// Binding-independent connectivity: groups of partitions connected by
/// messages. The incremental search computes this once per search —
/// mutations move bindings and windows, never messages — and derives each
/// candidate's core-level components from it without rescanning messages.
struct MessageGroups {
  /// False when a message references a partition out of range; the config
  /// is then not decomposable (leave the error to validate()).
  bool Valid = false;
  int32_t NumGroups = 0;
  /// GroupOfPart[partition] = group id, numbered by first appearance
  /// scanning partitions by index.
  std::vector<int32_t> GroupOfPart;
};

MessageGroups messageGroups(const Config &Config);

/// The core-level component structure of one bound config: which
/// component each partition and each used core belongs to. Components are
/// numbered by first appearance scanning partitions by index, so the
/// numbering is canonical regardless of how the union-find arrived at it.
struct ComponentStructure {
  /// False when a partition is unbound/dangling or a message dangles.
  bool Valid = false;
  int32_t NumComps = 0;
  std::vector<int32_t> CompOfPart; // one entry per partition
  std::vector<int32_t> CompOfCore; // one entry per core; -1 = unused
};

/// Computes the component structure of \p Config from scratch, using
/// \p UF as reusable scratch space (it is reset; it must have
/// Config.Cores.size() slots).
ComponentStructure componentStructure(const Config &Config,
                                      support::UnionFind &UF);

/// Derives the component structure from precomputed partition groups and
/// the candidate's bindings — one union per partition, no message scan.
/// Equivalent to componentStructure() for any config whose message graph
/// matches the one \p G was computed from.
ComponentStructure componentStructureFromGroups(const Config &Config,
                                                const MessageGroups &G,
                                                support::UnionFind &UF);

/// Materializes component \p Comp of \p Config (per structure \p S) as a
/// standalone sub-config, truncating windows to the component
/// hyperperiod. Returns false when the component's window pattern is not
/// LSub-periodic or its hyperperiod does not divide \p LGlobal — the
/// whole decomposition must then be declined.
bool materializeComponent(const Config &Config, const ComponentStructure &S,
                          int32_t Comp, int64_t LGlobal, Component &Out);

/// Decomposes \p Config along the inter-core message graph. Never fails:
/// an undecomposable config simply returns Decomposed == false.
Decomposition decomposeConfig(const Config &Config);

} // namespace cfg
} // namespace swa

#endif // SWA_CONFIG_DECOMPOSE_H
