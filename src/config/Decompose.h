//===- config/Decompose.h - Message-graph config decomposition --*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitions a bound configuration into independent sub-configurations
/// along the inter-core message graph — the compositional-analysis idea of
/// Han et al. applied to the paper's NSA model. Two cores belong to the
/// same component when a message connects tasks bound to them; partitions
/// sharing a core are trivially coupled. Components exchange nothing, so
/// the NSA of the whole system is the disjoint product of the components'
/// NSAs and the monolithic trace restricted to a component equals the
/// component's own trace — simulating each component separately (smaller
/// nets, smaller heaps, parallel across cores) and merging verdicts
/// (analysis::mergeComponentVerdicts) reproduces the monolithic verdict
/// exactly. The difftest campaign carries an oracle for precisely this
/// claim.
///
/// Window truncation: a component's own hyperperiod L_sub divides the
/// global L, but windows live on the global [0, L) axis and
/// Config::validate requires them inside the (sub)hyperperiod. Truncation
/// to the block [0, L_sub) is only sound when the component's window
/// pattern is L_sub-periodic with no window straddling a block boundary —
/// then the CoreScheduler's modulo-hyper cycling replays the global
/// schedule exactly. When any component fails that check, decomposition is
/// declined (Decomposed == false) and the caller evaluates monolithically;
/// splitting a straddling window instead would insert extra window-edge
/// events (sleep/wake, forced preemption) and change the trace.
///
/// Each component must still be simulated to the *global* hyperperiod
/// (Decomposition::Horizon) so carried-over backlog beyond L_sub is
/// observed exactly as the monolithic run observes it.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CONFIG_DECOMPOSE_H
#define SWA_CONFIG_DECOMPOSE_H

#include "config/Config.h"

#include <cstdint>
#include <vector>

namespace swa {
namespace cfg {

/// One independent component: a self-contained Config plus the map from
/// its task gids back to the original config's gids.
struct Component {
  Config Sub;
  /// GidMap[sub gid] = original gid.
  std::vector<int32_t> GidMap;
};

struct Decomposition {
  /// False when the config cannot (or need not) be decomposed: a
  /// partition is unbound, everything is one component, or a component's
  /// windows are not sub-hyperperiod-periodic. Components is then empty
  /// and the caller evaluates the original config monolithically.
  bool Decomposed = false;
  std::vector<Component> Components;
  /// The original config's hyperperiod: simulate every component with
  /// SimOptions::Horizon set to this.
  int64_t Horizon = 0;
};

/// Decomposes \p Config along the inter-core message graph. Never fails:
/// an undecomposable config simply returns Decomposed == false.
Decomposition decomposeConfig(const Config &Config);

} // namespace cfg
} // namespace swa

#endif // SWA_CONFIG_DECOMPOSE_H
